// The dataflow executor: parallel execution, errors, ordering, nesting,
// virtual-time bookkeeping.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "api/tfe.h"
#include "executor/executor.h"
#include "graph/graph_function.h"
#include "runtime/eager_context.h"
#include "staging/trace_context.h"

namespace tfe {
namespace {

// Builds a function by tracing `body` with float scalar args.
std::shared_ptr<GraphFunction> Build(
    const std::string& name, int num_args,
    std::function<std::vector<Tensor>(const std::vector<Tensor>&)> body) {
  auto fn = std::make_shared<GraphFunction>(name);
  TraceContext trace(fn, EagerContext::Global());
  std::vector<Tensor> params;
  for (int i = 0; i < num_args; ++i) {
    params.push_back(
        trace.AddParameter(DType::kFloat32, Shape()).value());
  }
  for (Tensor& out : body(params)) {
    fn->outputs().push_back({out.node_id(), out.output_index()});
  }
  return fn;
}

TEST(ExecutorTest, RunsSimpleGraph) {
  auto fn = Build("exec_simple", 2, [](const std::vector<Tensor>& args) {
    return std::vector<Tensor>{ops::add(args[0], ops::mul(args[1], args[1]))};
  });
  Executor executor(EagerContext::Global());
  auto result = executor.Run(*fn, {ops::scalar<float>(1), ops::scalar<float>(3)},
                             nullptr, 0, false);
  ASSERT_TRUE(result.ok());
  EXPECT_FLOAT_EQ(result->outputs[0].scalar<float>(), 10.0f);
}

TEST(ExecutorTest, ParallelAndInlineAgree) {
  auto fn = Build("exec_modes", 1, [](const std::vector<Tensor>& args) {
    // A diamond with plenty of parallel branches.
    std::vector<Tensor> branches;
    for (int i = 0; i < 16; ++i) {
      branches.push_back(ops::exp(ops::mul(
          args[0], ops::fill(DType::kFloat32, {}, 0.1 * i))));
    }
    Tensor sum = branches[0];
    for (size_t i = 1; i < branches.size(); ++i) {
      sum = ops::add(sum, branches[i]);
    }
    return std::vector<Tensor>{sum};
  });
  Executor executor(EagerContext::Global());
  auto parallel = executor.Run(*fn, {ops::scalar<float>(0.5f)}, nullptr, 0,
                               false, /*parallel=*/true);
  auto inline_run = executor.Run(*fn, {ops::scalar<float>(0.5f)}, nullptr, 0,
                                 false, /*parallel=*/false);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(inline_run.ok());
  EXPECT_FLOAT_EQ(parallel->outputs[0].scalar<float>(),
                  inline_run->outputs[0].scalar<float>());
}

TEST(ExecutorTest, ArgCountMismatchFails) {
  auto fn = Build("exec_argc", 2, [](const std::vector<Tensor>& args) {
    return std::vector<Tensor>{ops::add(args[0], args[1])};
  });
  Executor executor(EagerContext::Global());
  EXPECT_FALSE(
      executor.Run(*fn, {ops::scalar<float>(1)}, nullptr, 0, false).ok());
}

TEST(ExecutorTest, ArgTypeMismatchFails) {
  auto fn = Build("exec_argt", 1, [](const std::vector<Tensor>& args) {
    return std::vector<Tensor>{ops::identity(args[0])};
  });
  Executor executor(EagerContext::Global());
  EXPECT_FALSE(
      executor.Run(*fn, {tensor_util::Scalar<int32_t>(1)}, nullptr, 0, false)
          .ok());
  EXPECT_FALSE(executor
                   .Run(*fn, {ops::ones(DType::kFloat32, {2})}, nullptr, 0,
                        false)
                   .ok());
}

TEST(ExecutorTest, KernelErrorPropagatesFromParallelRun) {
  // Gather with out-of-range index fails at execution time.
  auto fn = Build("exec_error", 1, [](const std::vector<Tensor>& args) {
    Tensor params = ops::constant<float>({1, 2}, {2});
    Tensor bad_index = ops::constant<int32_t>({7}, {1});
    Tensor gathered = ops::gather(params, bad_index);
    return std::vector<Tensor>{ops::add(args[0],
                                        ops::reduce_sum(gathered))};
  });
  Executor executor(EagerContext::Global());
  auto result = executor.Run(*fn, {ops::scalar<float>(1)}, nullptr, 0, false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kOutOfRange);
}

TEST(ExecutorTest, VirtualTimeAdvancesOnSimDevices) {
  EagerContext* ctx = EagerContext::Global();
  auto fn = Build("exec_vtime", 1, [](const std::vector<Tensor>& args) {
    return std::vector<Tensor>{ops::exp(ops::add(args[0], args[0]))};
  });
  Device* gpu = ctx->devices().FindDevice("/gpu:0").value();
  uint64_t before = gpu->timeline().busy_ns();
  Executor executor(ctx);
  auto result = executor.Run(*fn, {ops::scalar<float>(1)}, gpu, 0, false);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(gpu->timeline().busy_ns(), before);
  EXPECT_GT(result->finish_ns, 0u);
}

TEST(ExecutorTest, FinishCoversSideEffects) {
  // A function whose only "result" is an assignment still reports a finish
  // time covering the write.
  Variable v(ops::scalar<float>(0.0f));
  Function f = function(
      [&v](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        v.assign(ops::mul(args[0], args[0]));
        return {};
      },
      "side_effect_finish");
  f({ops::scalar<float>(4.0f)});
  EXPECT_FLOAT_EQ(v.value().scalar<float>(), 16.0f);
}

TEST(ExecutorTest, DeeplyNestedFunctionsRunInline) {
  // Three levels of nesting exercise the inline (non-pool) path and must
  // not deadlock on the executor pool.
  Function level1 = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args[0], ops::scalar<float>(1.0f))};
      },
      "level1");
  Function level2 = function(
      [&level1](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(level1({args[0]})[0], ops::scalar<float>(2.0f))};
      },
      "level2");
  Function level3 = function(
      [&level2](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(level2({args[0]})[0], level2({args[0]})[0])};
      },
      "level3");
  EXPECT_FLOAT_EQ(level3({ops::scalar<float>(3.0f)})[0].scalar<float>(),
                  16.0f);
}

TEST(ExecutorTest, ManyConcurrentTopLevelCalls) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::tanh(ops::mul(args[0], args[0]))};
      },
      "concurrent_calls");
  f({ops::scalar<float>(1.0f)});  // trace once up front
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&f, &failures, t] {
      for (int i = 0; i < 50; ++i) {
        float x = 0.1f * t + 0.01f * i;
        float got = f({ops::scalar<float>(x)})[0].scalar<float>();
        if (std::abs(got - std::tanh(x * x)) > 1e-5) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace tfe
