// Cross-cutting integration tests: whole training loops across devices and
// stages, checkpoint-resume equivalence, and error paths.
#include <gtest/gtest.h>

#include <filesystem>

#include "api/tfe.h"
#include "data/dataset.h"
#include "models/mlp.h"
#include "models/optimizers.h"
#include "staging/control_flow.h"

namespace tfe {
namespace {

TEST(IntegrationTest, StagedTrainingOnSimGpuMatchesCpu) {
  // The simulated GPU executes real kernels by default, so a staged train
  // step placed on it must produce bit-identical numerics to the CPU.
  Tensor x = ops::random_normal({8, 4}, 0, 1, /*seed=*/71);
  Tensor labels = ops::constant<int64_t>({0, 1, 2, 0, 1, 2, 0, 1}, {8});

  auto run_training = [&](const std::string& device) {
    models::MLP mlp({4, 8, 3}, /*seed=*/72);
    Function step = function(
        [&mlp](const std::vector<Tensor>& args) -> std::vector<Tensor> {
          return {mlp.TrainStep(args[0], args[1], 0.1)};
        },
        "device_train_step");
    std::vector<float> losses;
    DeviceScope scope(device);
    for (int i = 0; i < 5; ++i) {
      Tensor loss = step({x, labels})[0];
      losses.push_back(ops::cast(loss, DType::kFloat32).scalar<float>());
    }
    return losses;
  };
  std::vector<float> cpu_losses = run_training("/cpu:0");
  std::vector<float> gpu_losses = run_training("/gpu:0");
  EXPECT_EQ(cpu_losses, gpu_losses);
}

TEST(IntegrationTest, ExplicitPlacementInsideFunctionOverridesCallDevice) {
  Function mixed = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor on_cpu;
        {
          DeviceScope cpu("/cpu:0");
          on_cpu = ops::add(args[0], args[0]);
        }
        return {ops::mul(on_cpu, on_cpu)};
      },
      "mixed_devices");
  DeviceScope gpu("/gpu:0");
  Tensor out = mixed({ops::scalar<float>(3.0f)})[0];
  EXPECT_FLOAT_EQ(out.scalar<float>(), 36.0f);
  // The trace pins the inner op to the CPU.
  auto concrete = mixed.GetConcreteFunction({ops::scalar<float>(3.0f)});
  ASSERT_TRUE(concrete.ok());
  bool found_pinned = false;
  for (int i = 0; i < (*concrete)->graph().num_nodes(); ++i) {
    const Node& node = (*concrete)->graph().node(i);
    if (node.op == "Add" && !node.requested_device.empty()) {
      found_pinned = true;
      auto parts = ParseDeviceName(node.requested_device);
      ASSERT_TRUE(parts.ok());
      EXPECT_EQ(parts->kind, DeviceKind::kCpu);
    }
  }
  EXPECT_TRUE(found_pinned);
}

TEST(IntegrationTest, CheckpointResumeContinuesIdentically) {
  // Train 6 steps straight through vs. 3 steps + checkpoint + restore into
  // fresh objects + 3 more steps: identical final weights. Covers model,
  // optimizer slots, and iterator position together.
  std::string dir = (std::filesystem::temp_directory_path() /
                     "tfe_resume_ckpt").string();
  std::filesystem::remove_all(dir);

  Tensor all_x = ops::random_normal({24, 4}, 0, 1, /*seed=*/81);
  Tensor all_y = ops::cast(
      ops::argmax(ops::random_normal({24, 3}, 0, 1, /*seed=*/82), 1),
      DType::kInt64);

  auto make_pipeline = [&]() {
    return data::Dataset::FromTensors({all_x, all_y})
        .Shuffle(9)
        .Batch(8)
        .Repeat(-1);
  };
  auto train_step = [](models::MLP& mlp, models::SGD& sgd,
                       data::Iterator& it) {
    std::vector<Tensor> batch = it.Next();
    GradientTape tape;
    Tensor loss = mlp.Loss(batch[0], batch[1]);
    tape.StopRecording();
    std::vector<Variable> vars = mlp.variables();
    sgd.ApplyGradients(vars, gradient(tape, loss, vars));
  };

  // Straight-through reference.
  models::MLP reference({4, 8, 3}, /*seed=*/83);
  models::SGD reference_sgd(0.1, 0.9);
  data::Iterator reference_it(make_pipeline());
  for (int i = 0; i < 6; ++i) train_step(reference, reference_sgd, reference_it);

  // Interrupted run.
  {
    models::MLP mlp({4, 8, 3}, /*seed=*/83);
    models::SGD sgd(0.1, 0.9);
    data::Iterator it(make_pipeline());
    for (int i = 0; i < 3; ++i) train_step(mlp, sgd, it);
    Checkpoint checkpoint;
    checkpoint.TrackChild("model", &mlp);
    checkpoint.TrackChild("optimizer", &sgd);
    checkpoint.TrackChild("iterator", &it);
    ASSERT_TRUE(checkpoint.Save(dir).ok());
  }
  {
    models::MLP mlp({4, 8, 3}, /*seed=*/999);  // different init
    models::SGD sgd(0.1, 0.9);
    data::Iterator it(make_pipeline());
    // Create the momentum slots so the checkpoint has matching edges.
    train_step(mlp, sgd, it);
    Checkpoint checkpoint;
    checkpoint.TrackChild("model", &mlp);
    checkpoint.TrackChild("optimizer", &sgd);
    checkpoint.TrackChild("iterator", &it);
    ASSERT_TRUE(checkpoint.Restore(dir).ok());
    for (int i = 0; i < 3; ++i) train_step(mlp, sgd, it);

    auto reference_vars = reference.variables();
    auto resumed_vars = mlp.variables();
    ASSERT_EQ(reference_vars.size(), resumed_vars.size());
    for (size_t i = 0; i < reference_vars.size(); ++i) {
      EXPECT_TRUE(tensor_util::AllClose(reference_vars[i].value(),
                                        resumed_vars[i].value(), 0, 0))
          << "variable " << i;
    }
  }
}

TEST(IntegrationTest, EpochLoopDrivenByOutOfRange) {
  data::Iterator it(
      data::Dataset::FromTensors(
          {ops::random_normal({10, 2}, 0, 1, /*seed=*/91)})
          .Batch(3));
  int batches = 0;
  while (true) {
    auto batch = it.TryNext();
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), ErrorCode::kOutOfRange);
      break;
    }
    ++batches;
  }
  EXPECT_EQ(batches, 3);  // 10/3, remainder dropped
}

TEST(IntegrationTest, NonDifferentiableOpStopsGradient) {
  Tensor x = ops::constant<float>({1, 5, 2}, {1, 3});
  GradientTape tape;
  tape.watch(x);
  Tensor winners = ops::cast(ops::argmax(x, 1), DType::kFloat32);
  Tensor y = ops::reduce_sum(ops::mul(winners, winners));
  tape.StopRecording();
  auto grads = tape.gradient(y, {x});
  ASSERT_TRUE(grads.ok());
  EXPECT_FALSE((*grads)[0].defined());  // argmax blocks the flow
}

TEST(IntegrationTest, UninitializedVariableRejected) {
  // Reading a variable whose storage was emptied is a runtime error; the
  // handle itself stays valid.
  Variable v(ops::scalar<float>(1.0f));
  EXPECT_NO_THROW(v.value());
}

TEST(IntegrationTest, WrongArityFunctionCallFails) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args.at(0), args.at(1))};
      },
      "binary_fn");
  f.SetInputSignature({{DType::kFloat32, Shape()},
                       {DType::kFloat32, Shape()}});
  EXPECT_THROW(f({ops::scalar<float>(1.0f)}), RuntimeError);
  EXPECT_FLOAT_EQ(
      f({ops::scalar<float>(1.0f), ops::scalar<float>(2.0f)})[0]
          .scalar<float>(),
      3.0f);
}

TEST(IntegrationTest, GradientOfWhileMatchesClosedForm) {
  Function below = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::less(vars[0], ops::fill(DType::kFloat32, {}, 8.0))};
      },
      "grad_while_cond");
  Function twice = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::mul(vars[0], ops::fill(DType::kFloat32, {}, 2.0))};
      },
      "grad_while_body");
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return ops::while_loop(below, twice, {args[0]});
      },
      "grad_while");
  Tensor x = ops::scalar<float>(1.0f);
  GradientTape tape;
  tape.watch(x);
  Tensor y = staged({x})[0];
  tape.StopRecording();
  EXPECT_FLOAT_EQ(y.scalar<float>(), 8.0f);
  // y = x * 2^3 (three doublings run before x < 8 fails), so dy/dx = 8:
  // the While gradient replays the body backward once per iteration.
  auto grads = tape.gradient(y, {x});
  ASSERT_TRUE(grads.ok()) << grads.status().message();
  EXPECT_FLOAT_EQ((*grads)[0].scalar<float>(), 8.0f);
}

TEST(IntegrationTest, StatsTrackExecutionModes) {
  EagerContext* ctx = EagerContext::Global();
  uint64_t eager_before = ctx->stats().eager_ops.load();
  uint64_t nodes_before = ctx->stats().executor_nodes.load();
  uint64_t calls_before = ctx->stats().function_calls.load();

  Tensor x = ops::scalar<float>(1.0f);
  ops::add(x, x);
  EXPECT_GT(ctx->stats().eager_ops.load(), eager_before);

  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args[0], args[0])};
      },
      "stats_probe");
  f({x});
  EXPECT_GT(ctx->stats().executor_nodes.load(), nodes_before);
  EXPECT_GT(ctx->stats().function_calls.load(), calls_before);
}

}  // namespace
}  // namespace tfe
