// Unit tests for dtype, Shape, Buffer, Tensor, tensor_util.
#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "tensor/tensor_util.h"

namespace tfe {
namespace {

TEST(DTypeTest, SizesAndNames) {
  EXPECT_EQ(DTypeSize(DType::kFloat32), 4u);
  EXPECT_EQ(DTypeSize(DType::kFloat64), 8u);
  EXPECT_EQ(DTypeSize(DType::kInt32), 4u);
  EXPECT_EQ(DTypeSize(DType::kInt64), 8u);
  EXPECT_EQ(DTypeSize(DType::kBool), 1u);
  EXPECT_STREQ(DTypeName(DType::kFloat32), "float32");
  EXPECT_EQ(DTypeFromName("int64"), DType::kInt64);
  EXPECT_EQ(DTypeFromName("garbage"), DType::kInvalid);
}

TEST(DTypeTest, Predicates) {
  EXPECT_TRUE(IsFloating(DType::kFloat32));
  EXPECT_TRUE(IsFloating(DType::kFloat64));
  EXPECT_FALSE(IsFloating(DType::kInt32));
  EXPECT_TRUE(IsInteger(DType::kInt64));
  EXPECT_FALSE(IsInteger(DType::kBool));
}

TEST(ShapeTest, Basics) {
  Shape scalar;
  EXPECT_TRUE(scalar.IsScalar());
  EXPECT_EQ(scalar.rank(), 0);
  EXPECT_EQ(scalar.num_elements(), 1);

  Shape matrix({2, 3});
  EXPECT_EQ(matrix.rank(), 2);
  EXPECT_EQ(matrix.num_elements(), 6);
  EXPECT_EQ(matrix.ToString(), "[2,3]");
}

TEST(ShapeTest, PartialShapes) {
  Shape partial({kUnknownDim, 3});
  EXPECT_FALSE(partial.IsFullyDefined());
  EXPECT_EQ(partial.ToString(), "[?,3]");
  EXPECT_TRUE(partial.IsCompatibleWith(Shape({5, 3})));
  EXPECT_FALSE(partial.IsCompatibleWith(Shape({5, 4})));
  EXPECT_FALSE(partial.IsCompatibleWith(Shape({5})));
}

TEST(ShapeTest, Merge) {
  auto merged = Shape::Merge(Shape({kUnknownDim, 3}), Shape({5, kUnknownDim}));
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, Shape({5, 3}));
  EXPECT_FALSE(Shape::Merge(Shape({2}), Shape({3})).ok());
}

TEST(ShapeTest, Broadcasting) {
  auto result = BroadcastShapes(Shape({4, 1}), Shape({3}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, Shape({4, 3}));

  result = BroadcastShapes(Shape(), Shape({2, 2}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, Shape({2, 2}));

  EXPECT_FALSE(BroadcastShapes(Shape({2}), Shape({3})).ok());
}

TEST(BufferTest, ZeroInitializedAndAligned) {
  auto buffer = Buffer::Allocate(100);
  EXPECT_EQ(buffer->bytes(), 100u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buffer->data()) % 64, 0u);
  const char* data = static_cast<const char*>(buffer->data());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(data[i], 0);
}

TEST(TensorTest, ConcreteRoundTrip) {
  Tensor t = tensor_util::FromVector<float>({1, 2, 3, 4}, Shape({2, 2}));
  EXPECT_TRUE(t.defined());
  EXPECT_FALSE(t.is_symbolic());
  EXPECT_FALSE(t.is_resource());
  EXPECT_EQ(t.dtype(), DType::kFloat32);
  EXPECT_EQ(t.num_elements(), 4);
  EXPECT_EQ(t.data<float>()[3], 4.0f);
}

TEST(TensorTest, UniqueIds) {
  Tensor a = tensor_util::Scalar<float>(1);
  Tensor b = tensor_util::Scalar<float>(1);
  EXPECT_NE(a.id(), b.id());
}

TEST(TensorTest, ScalarAccessor) {
  EXPECT_EQ(tensor_util::Scalar<int32_t>(7).scalar<int32_t>(), 7);
}

TEST(TensorTest, OpaqueRefusesDataAccess) {
  Tensor t = Tensor::Opaque(DType::kFloat32, Shape({8}), nullptr);
  EXPECT_TRUE(t.is_opaque());
  EXPECT_EQ(t.num_elements(), 8);
  EXPECT_DEATH({ (void)t.raw_data(); }, "opaque");
}

TEST(TensorUtilTest, FullZerosOnes) {
  Tensor full = tensor_util::Full(DType::kFloat64, Shape({3}), 2.5);
  EXPECT_EQ(full.data<double>()[2], 2.5);
  Tensor ones = tensor_util::Ones(DType::kInt32, Shape({2}));
  EXPECT_EQ(ones.data<int32_t>()[1], 1);
  Tensor zeros = tensor_util::Zeros(DType::kFloat32, Shape({2}));
  EXPECT_EQ(zeros.data<float>()[0], 0.0f);
}

TEST(TensorUtilTest, DeepCopyIsIndependent) {
  Tensor a = tensor_util::FromVector<float>({1, 2}, Shape({2}));
  Tensor b = tensor_util::DeepCopy(a);
  b.mutable_data<float>()[0] = 9;
  EXPECT_EQ(a.data<float>()[0], 1.0f);
  EXPECT_EQ(b.data<float>()[0], 9.0f);
}

TEST(TensorUtilTest, AllClose) {
  Tensor a = tensor_util::FromVector<float>({1.0f, 2.0f}, Shape({2}));
  Tensor b = tensor_util::FromVector<float>({1.0f + 1e-7f, 2.0f}, Shape({2}));
  EXPECT_TRUE(tensor_util::AllClose(a, b));
  Tensor c = tensor_util::FromVector<float>({1.5f, 2.0f}, Shape({2}));
  EXPECT_FALSE(tensor_util::AllClose(a, c));
  // Shape mismatch.
  Tensor d = tensor_util::FromVector<float>({1.0f, 2.0f}, Shape({2, 1}));
  EXPECT_FALSE(tensor_util::AllClose(a, d));
  // Integer exact compare.
  Tensor e = tensor_util::FromVector<int32_t>({1, 2}, Shape({2}));
  Tensor f = tensor_util::FromVector<int32_t>({1, 2}, Shape({2}));
  EXPECT_TRUE(tensor_util::AllClose(e, f));
}

TEST(TensorUtilTest, ElementAccessors) {
  Tensor t = tensor_util::FromVector<int64_t>({5, 6}, Shape({2}));
  EXPECT_EQ(tensor_util::ElementAsDouble(t, 1), 6.0);
  tensor_util::SetElementFromDouble(t, 0, 9.0);
  EXPECT_EQ(t.data<int64_t>()[0], 9);
}

TEST(TensorUtilTest, ToStringTruncates) {
  Tensor t = tensor_util::Full(DType::kFloat32, Shape({100}), 1.0);
  std::string text = tensor_util::ToString(t, 4);
  EXPECT_NE(text.find("..."), std::string::npos);
  EXPECT_NE(text.find("[100]"), std::string::npos);
}

}  // namespace
}  // namespace tfe
