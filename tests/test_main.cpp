#include <gtest/gtest.h>

#include "runtime/eager_context.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // Materialize the default runtime up front so device pointers are stable
  // across all tests.
  tfe::EagerContext::Global();
  return RUN_ALL_TESTS();
}
