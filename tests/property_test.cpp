// Randomized property tests:
//  * eager and staged execution agree on random op DAGs (the core
//    multi-stage invariant),
//  * shape inference agrees with kernel-produced shapes,
//  * trace-cache keying laws,
//  * gradients of random DAGs match finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "api/tfe.h"
#include "graph/serialization.h"
#include "support/random.h"

namespace tfe {
namespace {

// A deterministic random program: a chain/DAG of elementwise + matmul ops
// over [4,4] float tensors, parameterized by a seed.
std::vector<Tensor> RandomProgram(uint64_t seed,
                                  const std::vector<Tensor>& args) {
  random::Philox gen(seed, 0);
  std::vector<Tensor> values = args;
  auto pick = [&](size_t n) { return gen.NextUint64() % n; };
  for (int step = 0; step < 12; ++step) {
    const Tensor& a = values[pick(values.size())];
    const Tensor& b = values[pick(values.size())];
    Tensor next;
    switch (pick(7)) {
      case 0:
        next = ops::add(a, b);
        break;
      case 1:
        next = ops::sub(a, b);
        break;
      case 2:
        next = ops::mul(a, b);
        break;
      case 3:
        next = ops::matmul(a, b);
        break;
      case 4:
        next = ops::tanh(a);
        break;
      case 5:
        next = ops::relu(a);
        break;
      default:
        next = ops::mul(ops::sigmoid(a), b);
        break;
    }
    values.push_back(next);
  }
  return {ops::reduce_sum(values.back()),
          ops::reduce_mean(values[values.size() / 2])};
}

class RandomProgramEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramEquivalence, EagerAndStagedAgree) {
  uint64_t seed = GetParam();
  Tensor x = ops::random_normal({4, 4}, 0, 0.5, /*seed=*/seed + 1);
  Tensor y = ops::random_normal({4, 4}, 0, 0.5, /*seed=*/seed + 2);

  std::vector<Tensor> eager = RandomProgram(seed, {x, y});
  Function staged = function(
      [seed](const std::vector<Tensor>& args) {
        return RandomProgram(seed, args);
      },
      "random_program");
  std::vector<Tensor> graph = staged({x, y});

  ASSERT_EQ(eager.size(), graph.size());
  for (size_t i = 0; i < eager.size(); ++i) {
    EXPECT_TRUE(tensor_util::AllClose(eager[i], graph[i], 1e-5, 1e-6))
        << "output " << i << " of seed " << seed;
  }
}

TEST_P(RandomProgramEquivalence, GradientsAgreeAcrossStages) {
  uint64_t seed = GetParam();
  Tensor x = ops::random_normal({4, 4}, 0, 0.3, /*seed=*/seed + 3);
  Tensor y = ops::random_normal({4, 4}, 0, 0.3, /*seed=*/seed + 4);

  GradientTape eager_tape(/*persistent=*/false);
  eager_tape.watch(x);
  eager_tape.watch(y);
  Tensor eager_out = RandomProgram(seed, {x, y})[0];
  eager_tape.StopRecording();
  auto eager_grads = std::move(eager_tape.gradient(eager_out, {x, y})).value();

  Function staged = function(
      [seed](const std::vector<Tensor>& args) {
        return RandomProgram(seed, args);
      },
      "random_program_grad");
  GradientTape staged_tape;
  staged_tape.watch(x);
  staged_tape.watch(y);
  Tensor staged_out = staged({x, y})[0];
  staged_tape.StopRecording();
  auto staged_grads =
      std::move(staged_tape.gradient(staged_out, {x, y})).value();

  for (int i = 0; i < 2; ++i) {
    if (!eager_grads[i].defined()) {
      // "No dependence" may surface as an undefined gradient (eager tape
      // pruning) or as an explicit zero tensor (staged backward); both mean
      // zero.
      if (staged_grads[i].defined()) {
        EXPECT_TRUE(tensor_util::AllClose(
            staged_grads[i], ops::zeros_like(staged_grads[i])));
      }
      continue;
    }
    ASSERT_TRUE(staged_grads[i].defined());
    EXPECT_TRUE(
        tensor_util::AllClose(eager_grads[i], staged_grads[i], 1e-4, 1e-5))
        << "grad " << i << " of seed " << seed;
  }
}

TEST_P(RandomProgramEquivalence, AsyncAgreesWithSync) {
  uint64_t seed = GetParam();
  Tensor x = ops::random_normal({4, 4}, 0, 0.5, /*seed=*/seed + 1);
  Tensor y = ops::random_normal({4, 4}, 0, 0.5, /*seed=*/seed + 2);

  std::vector<Tensor> sync_out = RandomProgram(seed, {x, y});

  EagerContext::Global()->set_async(true);
  std::vector<Tensor> async_out = RandomProgram(seed, {x, y});
  Status drained = EagerContext::Global()->Sync();
  EagerContext::Global()->set_async(false);
  ASSERT_TRUE(drained.ok()) << drained.message();

  ASSERT_EQ(sync_out.size(), async_out.size());
  for (size_t i = 0; i < sync_out.size(); ++i) {
    EXPECT_TRUE(tensor_util::AllClose(sync_out[i], async_out[i], 0, 0))
        << "output " << i << " of seed " << seed;
  }
}

TEST_P(RandomProgramEquivalence, AsyncHandleLifetimesDrainCleanly) {
  // Random DAGs where most intermediates are dropped before they ever
  // materialize: queue nodes must keep the handles alive until their ops
  // retire, and nothing may deadlock or leak (the tier-1 script re-runs
  // this under ASan/TSan via TFE_SANITIZE).
  uint64_t seed = GetParam();
  random::Philox gen(seed * 31 + 7, 1);
  EagerContext::Global()->set_async(true);
  Tensor survivor;
  {
    std::vector<Tensor> live = {
        ops::random_normal({4, 4}, 0, 0.5, /*seed=*/seed + 1),
        ops::random_normal({4, 4}, 0, 0.5, /*seed=*/seed + 2)};
    std::vector<Tensor> program = RandomProgram(seed, live);
    for (int round = 0; round < 8; ++round) {
      live.push_back(ops::mul(live[gen.NextUint64() % live.size()],
                              live[gen.NextUint64() % live.size()]));
      // Drop a random tensor — possibly one whose op is still queued.
      live.erase(live.begin() + gen.NextUint64() % live.size());
    }
    survivor = live[gen.NextUint64() % live.size()];
    // `program` and the rest of `live` die here, resolved or not.
  }
  EXPECT_TRUE(survivor.Materialize().ok());
  Status drained = EagerContext::Global()->Sync();
  EagerContext::Global()->set_async(false);
  EXPECT_TRUE(drained.ok()) << drained.message();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEquivalence,
                         ::testing::Range<uint64_t>(1, 13));

// Shape inference must agree with what kernels actually produce.
struct ShapeAgreementCase {
  std::string name;
  std::function<Tensor()> run;
};

class ShapeInferenceAgreement
    : public ::testing::TestWithParam<ShapeAgreementCase> {};

TEST_P(ShapeInferenceAgreement, TracedShapeEqualsKernelShape) {
  // Run eagerly for the kernel shape; trace for the inferred shape.
  Tensor eager = GetParam().run();
  Function staged = function(
      [&](const std::vector<Tensor>&) -> std::vector<Tensor> {
        return {GetParam().run()};
      },
      "shape_probe");
  auto concrete = staged.GetConcreteFunction({});
  ASSERT_TRUE(concrete.ok());
  TypeAndShape inferred = (*concrete)->output_type(0);
  EXPECT_EQ(inferred.dtype, eager.dtype()) << GetParam().name;
  ASSERT_TRUE(inferred.shape.IsCompatibleWith(eager.shape()))
      << GetParam().name << ": inferred " << inferred.shape.ToString()
      << " vs kernel " << eager.shape().ToString();
}

Tensor Probe(int64_t seed, const Shape& shape) {
  return ops::random_normal(shape, 0, 1, seed);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, ShapeInferenceAgreement,
    ::testing::Values(
        ShapeAgreementCase{"conv_same",
                           [] {
                             return ops::conv2d(Probe(1, {2, 9, 9, 3}),
                                                Probe(2, {3, 3, 3, 8}),
                                                {2, 2}, "SAME");
                           }},
        ShapeAgreementCase{"conv_valid",
                           [] {
                             return ops::conv2d(Probe(3, {1, 8, 8, 2}),
                                                Probe(4, {3, 3, 2, 4}),
                                                {1, 1}, "VALID");
                           }},
        ShapeAgreementCase{"maxpool",
                           [] {
                             return ops::max_pool(Probe(5, {2, 7, 7, 3}),
                                                  {3, 3}, {2, 2}, "SAME");
                           }},
        ShapeAgreementCase{"avgpool",
                           [] {
                             return ops::avg_pool(Probe(6, {2, 8, 8, 3}),
                                                  {2, 2}, {2, 2}, "VALID");
                           }},
        ShapeAgreementCase{"matmul_t",
                           [] {
                             return ops::matmul(Probe(7, {3, 5}),
                                                Probe(8, {7, 5}), false,
                                                true);
                           }},
        ShapeAgreementCase{"reduce_keepdims",
                           [] {
                             return ops::reduce_sum(Probe(9, {2, 3, 4}),
                                                    {0, 2}, true);
                           }},
        ShapeAgreementCase{"concat_axis1",
                           [] {
                             return ops::concat({Probe(10, {2, 3}),
                                                 Probe(11, {2, 5})},
                                                1);
                           }},
        ShapeAgreementCase{"pad",
                           [] {
                             return ops::pad(Probe(12, {2, 2}),
                                             {1, 0, 2, 3});
                           }},
        ShapeAgreementCase{"tile",
                           [] {
                             return ops::tile(Probe(13, {2, 3}), {2, 4});
                           }},
        ShapeAgreementCase{"batchnorm",
                           [] {
                             auto result = ops::fused_batch_norm(
                                 Probe(14, {2, 4, 4, 3}),
                                 ops::ones(DType::kFloat32, {3}),
                                 ops::zeros(DType::kFloat32, {3}),
                                 ops::zeros(DType::kFloat32, {3}),
                                 ops::ones(DType::kFloat32, {3}), true);
                             return result.y;
                           }},
        ShapeAgreementCase{"argmax_then_cast",
                           [] {
                             return ops::cast(
                                 ops::argmax(Probe(15, {4, 6}), 1),
                                 DType::kFloat32);
                           }}),
    [](const ::testing::TestParamInfo<ShapeAgreementCase>& info) {
      return info.param.name;
    });

TEST_P(RandomProgramEquivalence, SerializeRoundTripPreservesSemantics) {
  // Serialization is semantics-preserving on arbitrary traced programs.
  uint64_t seed = GetParam();
  Tensor x = ops::random_normal({4, 4}, 0, 0.4, /*seed=*/seed + 5);
  Tensor y = ops::random_normal({4, 4}, 0, 0.4, /*seed=*/seed + 6);
  Function staged = function(
      [seed](const std::vector<Tensor>& args) {
        return RandomProgram(seed, args);
      },
      "random_program_serialize");
  std::vector<Tensor> expected = staged({x, y});

  auto concrete = staged.GetConcreteFunction({x, y});
  ASSERT_TRUE(concrete.ok());
  auto serialized = SerializeFunctionBundle(
      **concrete, EagerContext::Global()->functions());
  ASSERT_TRUE(serialized.ok());
  auto bundle = DeserializeFunctionBundle(*serialized);
  ASSERT_TRUE(bundle.ok());

  EagerContext::Options options;
  options.register_sim_gpu = false;
  options.register_sim_tpu = false;
  EagerContext fresh(options);
  for (const auto& fn : *bundle) {
    ASSERT_TRUE(fresh.functions().Register(fn).ok());
  }
  std::vector<Tensor> inputs = {x, y};
  for (const Capture& capture : bundle->front()->captures()) {
    inputs.push_back(capture.tensor);
  }
  AttrMap attrs;
  attrs["function"] = AttrValue(bundle->front()->name());
  auto outputs = fresh.RunPrimitive("Call", inputs, attrs, "");
  ASSERT_TRUE(outputs.ok());
  ASSERT_EQ(outputs->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(tensor_util::AllClose(expected[i], (*outputs)[i], 0, 0))
        << "seed " << seed << " output " << i;
  }
}

TEST(TraceCacheLaws, SameSignatureNeverRetraces) {
  random::Philox gen(99, 0);
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::reduce_sum(args[0])};
      },
      "cache_law");
  std::set<std::string> shapes_seen;
  int expected_traces = 0;
  for (int i = 0; i < 40; ++i) {
    int64_t rows = 1 + gen.NextUint64() % 4;
    int64_t cols = 1 + gen.NextUint64() % 4;
    Shape shape({rows, cols});
    if (shapes_seen.insert(shape.ToString()).second) ++expected_traces;
    f({ops::random_normal(shape, 0, 1, /*seed=*/static_cast<int64_t>(i) + 1)});
    ASSERT_EQ(f.num_traces(), expected_traces)
        << "iteration " << i << " shape " << shape.ToString();
  }
}

TEST(BroadcastLaws, AddCommutes) {
  random::Philox gen(7, 7);
  for (int trial = 0; trial < 20; ++trial) {
    auto random_dims = [&](int max_rank) {
      std::vector<int64_t> dims(1 + gen.NextUint64() % max_rank);
      for (auto& d : dims) d = 1 + gen.NextUint64() % 3;
      return dims;
    };
    Tensor a = ops::random_normal(Shape(random_dims(3)), 0, 1,
                                  /*seed=*/trial * 2 + 1);
    std::vector<int64_t> b_dims = a.shape().dims();
    // Make some dims 1 so broadcasting kicks in.
    for (auto& d : b_dims) {
      if (gen.NextUint64() % 2 == 0) d = 1;
    }
    Tensor b = ops::random_normal(Shape(b_dims), 0, 1,
                                  /*seed=*/trial * 2 + 2);
    EXPECT_TRUE(tensor_util::AllClose(ops::add(a, b), ops::add(b, a)));
    EXPECT_TRUE(tensor_util::AllClose(ops::mul(a, b), ops::mul(b, a)));
  }
}

TEST(ExecutorInvariants, BufferSharingOpsDontCorruptUnderParallelRuns) {
  // Reshape/Identity share buffers; running a graph that fans a reshaped
  // tensor into many parallel consumers must not corrupt values.
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor flat = ops::reshape(args[0], {16});
        std::vector<Tensor> branches;
        for (int i = 0; i < 8; ++i) {
          branches.push_back(ops::reduce_sum(ops::mul(flat, flat)));
        }
        Tensor total = branches[0];
        for (size_t i = 1; i < branches.size(); ++i) {
          total = ops::add(total, branches[i]);
        }
        return {total};
      },
      "buffer_sharing");
  Tensor x = ops::random_normal({4, 4}, 0, 1, /*seed=*/31);
  float expected =
      8.0f * ops::reduce_sum(ops::mul(x, x)).scalar<float>();
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(f({x})[0].scalar<float>(), expected, 1e-3);
  }
}

}  // namespace
}  // namespace tfe
