// Static memory planning for staged functions (graph/memory_planner.*,
// DESIGN.md §17). The contract under test: planning changes *which storage*
// a staged run's intermediates land in — one packed slab plus forwarded
// retired blocks instead of per-op arena allocations — and nothing else.
// Outputs must stay bitwise-identical with planning on, off, or bypassed,
// and every bypass (TFE_MEMORY_PLAN=off, a non-arena allocator) must fully
// disable the machinery so sanitizers keep true per-buffer lifetimes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "api/tfe.h"
#include "graph/memory_planner.h"
#include "graph/passes.h"
#include "kernels/kernel_util.h"
#include "profiler/metrics.h"
#include "runtime/eager_context.h"
#include "staging/control_flow.h"
#include "tensor/allocator.h"
#include "tensor/buffer.h"

namespace tfe {
namespace {

using tensor_util::ToVector;

::testing::AssertionResult BitwiseEqual(const std::vector<float>& a,
                                        const std::vector<float>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

class MemoryPlanTest : public ::testing::Test {
 protected:
  void TearDown() override {
    memplan::ClearMemoryPlanningOverride();
    ClearAllocatorKindOverride();
    EagerContext::ResetGlobal(EagerContext::Options());
  }
};

// A residual-tower-ish step: matmuls keep the elementwise segments from
// fusing into one node, so the variant has planned intermediates (matmul
// outputs feeding fused segments and vice versa).
Function MakeTower(const std::string& name) {
  return function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor x = args[0];
        Tensor w = args[1];
        Tensor h = x;
        for (int layer = 0; layer < 3; ++layer) {
          Tensor z = ops::matmul(h, w);
          h = ops::add(ops::relu(z), h);  // residual join
        }
        return {ops::matmul(h, w)};
      },
      name);
}

TEST_F(MemoryPlanTest, BufferViewSharesSlabStorage) {
  EagerContext::ResetGlobal(EagerContext::Options());
  const std::shared_ptr<Allocator>& allocator = ProcessAllocator();
  const uint64_t deallocs_before = allocator->stats().deallocations.load();
  std::shared_ptr<Buffer> slab = Buffer::Allocate(1024, allocator);
  {
    std::shared_ptr<Buffer> view = Buffer::View(slab, 128, 256);
    EXPECT_TRUE(view->is_view());
    EXPECT_FALSE(slab->is_view());
    EXPECT_EQ(view->bytes(), 256u);
    EXPECT_EQ(static_cast<char*>(view->data()),
              static_cast<char*>(slab->data()) + 128);
    EXPECT_EQ(view->base().get(), slab.get());
    // The view keeps the slab alive.
    EXPECT_EQ(slab.use_count(), 2);
  }
  // Destroying the view returned nothing to the allocator.
  EXPECT_EQ(allocator->stats().deallocations.load(), deallocs_before);
  EXPECT_EQ(slab.use_count(), 1);
}

TEST_F(MemoryPlanTest, PlanPacksIntermediatesAndReusesBlocks) {
  EagerContext::ResetGlobal(EagerContext::Options());
  Tensor x = ops::mul(ops::random_normal({16, 16}, 0, 1, /*seed=*/11),
                      ops::scalar<float>(0.1f));
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor h = ops::matmul(args[0], args[0]);
        h = ops::relu(h);
        h = ops::matmul(h, args[0]);
        h = ops::relu(h);
        h = ops::matmul(h, args[0]);
        return {ops::reduce_sum(h)};
      },
      "plan_chain");
  auto concrete = f.GetConcreteFunction({x});
  ASSERT_TRUE(concrete.ok());
  std::shared_ptr<const memplan::MemoryPlan> plan =
      memplan::BuildPlan(*concrete.value());
  ASSERT_NE(plan, nullptr);
  // Five same-sized intermediates (3 matmuls + 2 relus) minus the escaping
  // chain tail; lifetimes form a chain, so blocks must be recycled and the
  // slab must be smaller than five full tensors.
  EXPECT_GE(plan->num_slots(), 4);
  EXPECT_GE(plan->reused_blocks(), 1);
  EXPECT_GT(plan->slab_bytes(), 0u);
  EXPECT_LT(plan->slab_bytes(), 5 * 16 * 16 * sizeof(float));
  // Function outputs always escape.
  for (const Endpoint& e : concrete.value()->outputs()) {
    EXPECT_EQ(plan->Find(e.node_id, e.index), nullptr);
  }
  // Every slot lies within the slab.
  for (const memplan::PlannedSlot& slot : plan->slots()) {
    EXPECT_LE(slot.offset + slot.bytes, plan->slab_bytes());
  }
}

TEST_F(MemoryPlanTest, FusedVariantProvesSkipZeroStores) {
  EagerContext::ResetGlobal(EagerContext::Options());
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::mul(ops::random_normal({8, 8}, 0, 1, /*seed=*/5),
                      ops::scalar<float>(0.1f));
  Function f = MakeTower("skip_zero_tower");
  auto concrete = f.GetConcreteFunction({x, x});
  ASSERT_TRUE(concrete.ok());
  std::shared_ptr<GraphFunction> variant =
      passes::FusedExecutionVariant(ctx, ctx->HostCpu(), concrete.value());
  ASSERT_NE(variant, nullptr);
  std::shared_ptr<const memplan::MemoryPlan> plan =
      memplan::BuildPlan(*variant);
  ASSERT_NE(plan, nullptr);
  // The fused relu+add segments store their planned outputs over the full
  // evaluation space, so at least one handout memset is provably elided.
  EXPECT_GE(plan->num_skip_zero_slots(), 1);
}

// Runs `steps` staged tower steps and returns the outputs of the last one,
// plus the allocator calls per steady-state step.
std::vector<float> RunTower(bool planning, int steps,
                            uint64_t* alloc_calls_per_step) {
  memplan::OverrideMemoryPlanning(planning);
  // Pin the arena so the measurement survives a TFE_ALLOCATOR=system
  // environment (the tier-2 sanitizer sweep): the point here is the planned
  // vs per-op allocation delta, not the allocator family.
  OverrideDefaultAllocatorKind(AllocatorKind::kArena);
  EagerContext::ResetGlobal(EagerContext::Options());
  Tensor x = ops::mul(ops::random_normal({32, 32}, 0, 1, /*seed=*/21),
                      ops::scalar<float>(0.05f));
  Tensor w = ops::mul(ops::random_normal({32, 32}, 0, 1, /*seed=*/22),
                      ops::scalar<float>(0.05f));
  Function step = MakeTower("tower_ab");
  Tensor y;
  for (int i = 0; i < 3; ++i) y = step({x, w})[0];  // warm up: trace + slab
  EXPECT_TRUE(EagerContext::Global()->Sync().ok());
  profiler::Counter* alloc_calls =
      profiler::Metrics().GetCounter("allocator.alloc_calls");
  const uint64_t before = alloc_calls->value();
  for (int i = 0; i < steps; ++i) y = step({x, w})[0];
  EXPECT_TRUE(EagerContext::Global()->Sync().ok());
  if (alloc_calls_per_step != nullptr) {
    *alloc_calls_per_step =
        (alloc_calls->value() - before) / static_cast<uint64_t>(steps);
  }
  std::vector<float> values = ToVector<float>(y);
  memplan::ClearMemoryPlanningOverride();
  return values;
}

TEST_F(MemoryPlanTest, OutputsBitwiseIdenticalAndFewerAllocatorCalls) {
  uint64_t unplanned_calls = 0;
  uint64_t planned_calls = 0;
  std::vector<float> baseline = RunTower(false, 6, &unplanned_calls);
  std::vector<float> planned = RunTower(true, 6, &planned_calls);
  EXPECT_TRUE(BitwiseEqual(baseline, planned));
  // The steady-state planned step must allocate dramatically less — the
  // bench gates 30%; the chain here plans nearly every intermediate.
  EXPECT_GT(unplanned_calls, 0u);
  EXPECT_LE(planned_calls * 10, unplanned_calls * 7)
      << "planned " << planned_calls << " vs unplanned " << unplanned_calls;
}

TEST_F(MemoryPlanTest, OverrideAndSystemAllocatorBypassPlanning) {
  profiler::Counter* plan_runs =
      profiler::Metrics().GetCounter("allocator.plan.runs");

  // Planning off: the staged run must never touch the planner.
  memplan::OverrideMemoryPlanning(false);
  EagerContext::ResetGlobal(EagerContext::Options());
  {
    Tensor x = ops::random_normal({16, 16}, 0, 1, /*seed=*/7);
    Function step = MakeTower("bypass_off");
    const uint64_t before = plan_runs->value();
    for (int i = 0; i < 2; ++i) (void)step({x, x});
    ASSERT_TRUE(EagerContext::Global()->Sync().ok());
    EXPECT_EQ(plan_runs->value(), before);
  }

  // Planning on but a system allocator (the TFE_ALLOCATOR=system
  // configuration): still fully bypassed.
  memplan::OverrideMemoryPlanning(true);
  OverrideDefaultAllocatorKind(AllocatorKind::kSystem);
  EagerContext::ResetGlobal(EagerContext::Options());
  {
    Tensor x = ops::random_normal({16, 16}, 0, 1, /*seed=*/7);
    Function step = MakeTower("bypass_system");
    const uint64_t before = plan_runs->value();
    for (int i = 0; i < 2; ++i) (void)step({x, x});
    ASSERT_TRUE(EagerContext::Global()->Sync().ok());
    EXPECT_EQ(plan_runs->value(), before);
  }

  // Planning on, arena allocator (forced, so a TFE_ALLOCATOR=system
  // environment cannot mask the positive control): the plan activates.
  OverrideDefaultAllocatorKind(AllocatorKind::kArena);
  EagerContext::ResetGlobal(EagerContext::Options());
  {
    Tensor x = ops::random_normal({16, 16}, 0, 1, /*seed=*/7);
    Function step = MakeTower("bypass_arena");
    const uint64_t before = plan_runs->value();
    for (int i = 0; i < 2; ++i) (void)step({x, x});
    ASSERT_TRUE(EagerContext::Global()->Sync().ok());
    EXPECT_GT(plan_runs->value(), before);
  }
}

TEST_F(MemoryPlanTest, CrossRunForwardingClaimsRetiredOutputs) {
  memplan::OverrideMemoryPlanning(true);
  OverrideDefaultAllocatorKind(AllocatorKind::kArena);
  EagerContext::ResetGlobal(EagerContext::Options());
  Tensor x = ops::mul(ops::random_normal({32, 32}, 0, 1, /*seed=*/31),
                      ops::scalar<float>(0.05f));
  Tensor w = ops::mul(ops::random_normal({32, 32}, 0, 1, /*seed=*/32),
                      ops::scalar<float>(0.05f));
  Function step = MakeTower("forward_tower");
  profiler::Counter* forwarded =
      profiler::Metrics().GetCounter("allocator.plan.forwarded_buffers");
  const uint64_t before = forwarded->value();
  // x = step(x): generation N-1's escaping output dies when `h` rebinds,
  // so generation N+1 claims its block from the forwarding pool.
  Tensor h = x;
  for (int i = 0; i < 6; ++i) h = step({h, w})[0];
  ASSERT_TRUE(EagerContext::Global()->Sync().ok());
  EXPECT_GT(forwarded->value(), before);

  // And the forwarded storage computed the same values as planning off.
  std::vector<float> got = ToVector<float>(h);
  memplan::OverrideMemoryPlanning(false);
  EagerContext::ResetGlobal(EagerContext::Options());
  Tensor x2 = ops::mul(ops::random_normal({32, 32}, 0, 1, /*seed=*/31),
                       ops::scalar<float>(0.05f));
  Tensor w2 = ops::mul(ops::random_normal({32, 32}, 0, 1, /*seed=*/32),
                       ops::scalar<float>(0.05f));
  Function step2 = MakeTower("forward_tower_base");
  Tensor h2 = x2;
  for (int i = 0; i < 6; ++i) h2 = step2({h2, w2})[0];
  EXPECT_TRUE(BitwiseEqual(ToVector<float>(h2), got));
}

TEST_F(MemoryPlanTest, DonationNeverTargetsPlanSlabViews) {
  EagerContext::ResetGlobal(EagerContext::Options());
  EagerContext* ctx = EagerContext::Global();
  Device* cpu = ctx->HostCpu();

  std::shared_ptr<Buffer> slab =
      Buffer::Allocate(1024, cpu->allocator_shared());
  std::shared_ptr<Buffer> view = Buffer::View(slab, 0, 64 * sizeof(float));
  Tensor view_donor =
      Tensor::Concrete(DType::kFloat32, Shape({64}), view, cpu);

  AttrMap attrs;
  KernelContext kctx(ctx, cpu, {view_donor}, &attrs);
  Tensor out =
      kernels::DonateOutput(&kctx, 0, DType::kFloat32, Shape({64}), view_donor);
  // The guard must substitute a fresh allocation: a slab view's bytes belong
  // to the plan's block-reuse schedule, never to a published output.
  ASSERT_NE(out.buffer(), nullptr);
  EXPECT_NE(out.buffer().get(), view.get());
  EXPECT_FALSE(out.buffer()->is_view());

  // A normal owning donor still aliases (the PR 6/7/8 fast path is intact).
  Tensor owning_donor = ops::random_normal({64}, 0, 1, /*seed=*/3);
  ASSERT_TRUE(owning_donor.Materialize().ok());
  KernelContext kctx2(ctx, cpu, {owning_donor}, &attrs);
  Tensor out2 = kernels::DonateOutput(&kctx2, 0, DType::kFloat32, Shape({64}),
                                      owning_donor);
  EXPECT_EQ(out2.buffer().get(), owning_donor.buffer().get());
}

TEST_F(MemoryPlanTest, WhileGradientBitwiseWithPlanning) {
  // The While gradient replays the staged body off per-iteration snapshot
  // stacks (PR 9). Snapshots retain body *outputs*, which always escape the
  // body's plan — so planning must not perturb the gradient bitwise.
  auto run_grad = [](bool planning) -> std::vector<float> {
    memplan::OverrideMemoryPlanning(planning);
    EagerContext::ResetGlobal(EagerContext::Options());
    Tensor x0 = ops::mul(ops::random_normal({8, 8}, 0, 1, /*seed=*/41),
                         ops::scalar<float>(0.1f));
    Tensor w = ops::mul(ops::random_normal({8, 8}, 0, 1, /*seed=*/42),
                        ops::scalar<float>(0.1f));
    Function below = function(
        [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
          return {ops::less(vars[0], ops::fill(DType::kFloat32, {}, 4.0))};
        },
        planning ? "wg_plan_below" : "wg_base_below");
    Function body = function(
        [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
          return {ops::add(vars[0], ops::fill(DType::kFloat32, {}, 1.0)),
                  ops::tanh(ops::matmul(vars[1], vars[2])), vars[2]};
        },
        planning ? "wg_plan_body" : "wg_base_body");
    Function staged = function(
        [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
          auto vars = ops::while_loop(
              below, body, {ops::scalar<float>(0.0f), args[0], args[1]});
          return {ops::reduce_sum(vars[1])};
        },
        planning ? "wg_plan_staged" : "wg_base_staged");
    GradientTape tape;
    tape.watch(x0);
    tape.watch(w);
    Tensor y = staged({x0, w})[0];
    tape.StopRecording();
    std::vector<Tensor> grads = std::move(tape.gradient(y, {x0, w})).value();
    std::vector<float> flat = ToVector<float>(grads[0]);
    std::vector<float> gw = ToVector<float>(grads[1]);
    flat.insert(flat.end(), gw.begin(), gw.end());
    memplan::ClearMemoryPlanningOverride();
    return flat;
  };
  std::vector<float> baseline = run_grad(false);
  std::vector<float> planned = run_grad(true);
  EXPECT_TRUE(BitwiseEqual(baseline, planned));
}

}  // namespace
}  // namespace tfe
