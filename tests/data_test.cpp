// Dataset/iterator tests: batching, shuffling, epoch semantics, staged
// iteration, and — the paper's §4.3 point — checkpointable iterator
// position with mid-epoch resumption.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "api/tfe.h"
#include "data/dataset.h"

namespace tfe {
namespace {

using tensor_util::ToVector;

data::Dataset SequenceDataset(int64_t n) {
  std::vector<float> values(n);
  for (int64_t i = 0; i < n; ++i) values[i] = static_cast<float>(i);
  std::vector<int64_t> labels(n);
  for (int64_t i = 0; i < n; ++i) labels[i] = i * 10;
  return data::Dataset::FromTensors(
      {tensor_util::FromVector<float>(values, Shape({n, 1})),
       tensor_util::FromVector<int64_t>(labels, Shape({n}))});
}

TEST(DatasetTest, SequentialBatches) {
  data::Iterator it(SequenceDataset(6).Batch(2));
  auto first = it.Next();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].shape(), Shape({2, 1}));
  EXPECT_EQ(ToVector<float>(first[0]), (std::vector<float>{0, 1}));
  EXPECT_EQ(ToVector<int64_t>(first[1]), (std::vector<int64_t>{0, 10}));
  EXPECT_EQ(ToVector<float>(it.Next()[0]), (std::vector<float>{2, 3}));
  EXPECT_EQ(ToVector<float>(it.Next()[0]), (std::vector<float>{4, 5}));
  // Single epoch by default.
  auto end = it.TryNext();
  ASSERT_FALSE(end.ok());
  EXPECT_EQ(end.status().code(), ErrorCode::kOutOfRange);
}

TEST(DatasetTest, PartialBatchDropped) {
  data::Iterator it(SequenceDataset(7).Batch(3));
  it.Next();
  it.Next();
  EXPECT_FALSE(it.TryNext().ok());  // 7th element dropped
}

TEST(DatasetTest, RepeatProducesEpochs) {
  data::Iterator it(SequenceDataset(2).Batch(1).Repeat(3));
  for (int epoch = 0; epoch < 3; ++epoch) {
    EXPECT_EQ(it.Next()[0].data<float>()[0], 0.0f);
    EXPECT_EQ(it.Next()[0].data<float>()[0], 1.0f);
  }
  EXPECT_FALSE(it.TryNext().ok());
}

TEST(DatasetTest, ShuffleIsAPermutationAndVariesPerEpoch) {
  data::Iterator it(SequenceDataset(8).Batch(1).Shuffle(42).Repeat(2));
  std::vector<float> epoch1, epoch2;
  for (int i = 0; i < 8; ++i) epoch1.push_back(it.Next()[0].data<float>()[0]);
  for (int i = 0; i < 8; ++i) epoch2.push_back(it.Next()[0].data<float>()[0]);
  std::set<float> seen1(epoch1.begin(), epoch1.end());
  EXPECT_EQ(seen1.size(), 8u);  // a permutation
  std::set<float> seen2(epoch2.begin(), epoch2.end());
  EXPECT_EQ(seen2.size(), 8u);
  EXPECT_NE(epoch1, epoch2);  // reshuffled between epochs
}

TEST(DatasetTest, ShuffleIsDeterministicPerSeed) {
  data::Iterator a(SequenceDataset(16).Batch(1).Shuffle(7));
  data::Iterator b(SequenceDataset(16).Batch(1).Shuffle(7));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.Next()[0].data<float>()[0], b.Next()[0].data<float>()[0]);
  }
}

TEST(DatasetTest, IterationInsideStagedFunction) {
  // Each execution of the staged function pulls the next batch — the
  // iterator is stateful, like a variable.
  data::Iterator it(SequenceDataset(6).Batch(2).Repeat(-1));
  Function step = function(
      [&it](const std::vector<Tensor>&) -> std::vector<Tensor> {
        std::vector<Tensor> batch = it.Next();
        return {ops::reduce_sum(batch[0])};
      },
      "dataset_step");
  EXPECT_FLOAT_EQ(step({})[0].scalar<float>(), 1.0f);   // 0 + 1
  EXPECT_FLOAT_EQ(step({})[0].scalar<float>(), 5.0f);   // 2 + 3
  EXPECT_FLOAT_EQ(step({})[0].scalar<float>(), 9.0f);   // 4 + 5
  EXPECT_FLOAT_EQ(step({})[0].scalar<float>(), 1.0f);   // next epoch
  EXPECT_EQ(step.num_traces(), 1);
}

TEST(DatasetTest, IteratorPositionCheckpointsMidEpoch) {
  // Paper §4.3: "an iterator over input data whose position in a dataset is
  // serialized".
  std::string dir = (std::filesystem::temp_directory_path() /
                     "tfe_iterator_ckpt").string();
  std::filesystem::remove_all(dir);

  data::Dataset dataset = SequenceDataset(8).Batch(2).Shuffle(5).Repeat(2);
  std::vector<float> expected_rest;
  {
    data::Iterator it(dataset);
    it.Next();
    it.Next();  // consume two batches
    Checkpoint checkpoint;
    checkpoint.TrackChild("iterator", &it);
    ASSERT_TRUE(checkpoint.Save(dir).ok());
    // What the original iterator would produce next.
    while (true) {
      auto batch = it.TryNext();
      if (!batch.ok()) break;
      for (float v : tensor_util::ToVector<float>((*batch)[0])) {
        expected_rest.push_back(v);
      }
    }
  }
  {
    data::Iterator it(dataset);  // fresh iterator at position 0
    Checkpoint checkpoint;
    checkpoint.TrackChild("iterator", &it);
    ASSERT_TRUE(checkpoint.Restore(dir).ok());
    std::vector<float> rest;
    while (true) {
      auto batch = it.TryNext();
      if (!batch.ok()) break;
      for (float v : tensor_util::ToVector<float>((*batch)[0])) {
        rest.push_back(v);
      }
    }
    EXPECT_EQ(rest, expected_rest);  // identical stream resumption
  }
}

TEST(DatasetTest, EmptyAndMismatchedComponentsRejected) {
  Tensor a = tensor_util::FromVector<float>({1, 2, 3}, Shape({3}));
  Tensor b = tensor_util::FromVector<float>({1, 2}, Shape({2}));
  EXPECT_DEATH(data::Dataset::FromTensors({a, b}), "dimension 0");
}

}  // namespace
}  // namespace tfe
