// Cross-op elementwise fusion (op-queue drain + graph pass) and
// threadpool-parallel kernels. The contract under test everywhere: the
// optimized path is *bitwise* identical to the op-at-a-time serial path —
// both sides evaluate the same scalar expressions (elementwise_functors.h)
// in the same order, so not even the last ulp may move.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "api/tfe.h"
#include "kernels/fused_elementwise.h"
#include "kernels/program_cache.h"
#include "runtime/dispatch.h"
#include "runtime/eager_context.h"
#include "tensor/tensor_handle.h"

namespace tfe {
namespace {

using tensor_util::ToVector;

// Bitwise comparison: NaN payloads and signed zeros must match too.
::testing::AssertionResult BitwiseEqual(const std::vector<float>& a,
                                        const std::vector<float>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// Fusion on the drain is opportunistic: it needs queue depth, and an idle
// drain thread would otherwise pop each op the moment it is enqueued. A
// slow op at the head of the in-order queue keeps the drain busy while the
// producer enqueues the chain, making the window deterministic in practice.
void BlockQueueHead() {
  Tensor a = ops::random_normal({192, 192}, 0, 1, /*seed=*/97);
  Tensor b = ops::random_normal({192, 192}, 0, 1, /*seed=*/98);
  ASSERT_TRUE(EagerContext::Global()->Sync().ok());  // inputs ready
  (void)ops::matmul(a, b);
}

class FusionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EagerContext::Options options;
    options.async = true;
    EagerContext::ResetGlobal(options);
  }
  void TearDown() override {
    EagerContext::ResetGlobal(EagerContext::Options());
  }
};

// A randomized elementwise chain over a closed, NaN-free op set (inputs stay
// finite, no div/log/sqrt) so bitwise comparison is meaningful.
Tensor RandomChain(const Tensor& x, const Tensor& scalar, int length,
                   unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, 7);
  Tensor h = x;
  for (int i = 0; i < length; ++i) {
    switch (pick(rng)) {
      case 0: h = ops::add(h, x); break;
      case 1: h = ops::sub(h, scalar); break;
      case 2: h = ops::mul(h, scalar); break;
      case 3: h = ops::maximum(h, x); break;
      case 4: h = ops::minimum(h, scalar); break;
      case 5: h = ops::tanh(h); break;
      case 6: h = ops::relu(h); break;
      default: h = ops::neg(h); break;
    }
  }
  return h;
}

TEST_F(FusionTest, RandomChainsBitwiseMatchUnfused) {
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({33, 17}, 0, 1, /*seed=*/3);
  Tensor s = ops::scalar<float>(0.25f);
  for (unsigned seed = 1; seed <= 5; ++seed) {
    const uint64_t runs_before = ctx->stats().fused_runs.load();
    ctx->set_fuse_elementwise(true);
    ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
    Tensor fused = RandomChain(x, s, 40, seed);
    ASSERT_TRUE(ctx->Sync().ok());
    EXPECT_GT(ctx->stats().fused_runs.load(), runs_before)
        << "drain fuser never fired (seed " << seed << ")";

    ctx->set_fuse_elementwise(false);
    Tensor plain = RandomChain(x, s, 40, seed);
    ASSERT_TRUE(ctx->Sync().ok());
    EXPECT_TRUE(BitwiseEqual(ToVector<float>(fused), ToVector<float>(plain)))
        << "seed " << seed;
  }
}

TEST_F(FusionTest, BroadcastScalarOperandsFuse) {
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::constant<float>({1, -2, 3, -4, 5, -6}, {2, 3});
  Tensor half = ops::scalar<float>(0.5f);
  Tensor two = ops::scalar<float>(2.0f);

  const uint64_t runs_before = ctx->stats().fused_runs.load();
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  // scalar on the left, on the right, and chained between tensor ops.
  Tensor h = ops::mul(two, ops::add(x, half));
  h = ops::sub(h, half);
  h = ops::maximum(h, x);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_GT(ctx->stats().fused_runs.load(), runs_before);
  std::vector<float> fused = ToVector<float>(h);

  ctx->set_fuse_elementwise(false);
  Tensor g = ops::mul(two, ops::add(x, half));
  g = ops::sub(g, half);
  g = ops::maximum(g, x);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_TRUE(BitwiseEqual(fused, ToVector<float>(g)));
}

TEST_F(FusionTest, MidChainReductionSplitsOrTerminatesButValuesAgree) {
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({4, 4}, 0, 1, /*seed=*/11);
  // reduce_sum mid-chain may only *terminate* a run (add/relu/sum fuse into
  // one map-reduce pass; mul/tanh restart a fresh run downstream) — either
  // way the values may not move a single ulp.
  Tensor h = ops::relu(ops::add(x, x));
  Tensor r = ops::reduce_sum(h, {1}, /*keep_dims=*/true);
  Tensor out = ops::tanh(ops::mul(h, r));
  ASSERT_TRUE(ctx->Sync().ok());
  std::vector<float> fused = ToVector<float>(out);

  ctx->set_fuse_elementwise(false);
  Tensor h2 = ops::relu(ops::add(x, x));
  Tensor r2 = ops::reduce_sum(h2, {1}, /*keep_dims=*/true);
  Tensor out2 = ops::tanh(ops::mul(h2, r2));
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_TRUE(BitwiseEqual(fused, ToVector<float>(out2)));
}

TEST_F(FusionTest, PoisonedProducerCutsRunAndPreservesErrorSemantics) {
  EagerContext* ctx = EagerContext::Global();
  Tensor params = ops::constant<float>({10, 20, 30}, {3});
  // Exact values computed before the failure must still be exact.
  Tensor good = ops::mul(ops::add(params, params), ops::scalar<float>(0.5f));
  // The gather fails at kernel time; everything downstream is poisoned.
  Tensor bad = ops::gather(params, ops::constant<int64_t>({7}, {1}));
  Tensor down = ops::add(ops::relu(bad), bad);

  EXPECT_EQ(ToVector<float>(good), (std::vector<float>{10, 20, 30}));
  Status status = down.Materialize();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOutOfRange);

  // The deferred error surfaces once at Sync; afterwards the context (and
  // the fuser) keep working.
  ASSERT_FALSE(ctx->Sync().ok());
  ASSERT_TRUE(ctx->Sync().ok());
  Tensor again = ops::add(ops::add(params, params), params);
  EXPECT_EQ(ToVector<float>(again), (std::vector<float>{30, 60, 90}));
}

TEST_F(FusionTest, TapeGradientsBitwiseMatchUnfused) {
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({8, 8}, 0, 1, /*seed=*/21);
  auto grads = [&](bool fuse) {
    ctx->set_fuse_elementwise(fuse);
    GradientTape tape;
    tape.watch(x);
    Tensor y = ops::tanh(ops::mul(ops::add(x, x), x));
    Tensor loss = ops::reduce_sum(ops::square(y));
    auto dx = tape.gradient(loss, {x});
    EXPECT_TRUE(dx.ok());
    EXPECT_TRUE(ctx->Sync().ok());
    return ToVector<float>((*dx)[0]);
  };
  EXPECT_TRUE(BitwiseEqual(grads(true), grads(false)));
}

TEST_F(FusionTest, StagedFunctionFusesStatically) {
  EagerContext* ctx = EagerContext::Global();
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor h = ops::relu(ops::add(args[0], args[0]));
        h = ops::tanh(ops::mul(h, h));
        h = ops::sub(h, args[0]);
        return {h};
      },
      "fusion_staged_chain");
  Tensor x = ops::random_normal({16}, 0, 1, /*seed=*/5);

  const uint64_t runs_before = ctx->stats().fused_runs.load();
  std::vector<float> fused = ToVector<float>(f({x})[0]);
  ASSERT_TRUE(ctx->Sync().ok());
  // The execution variant replaced the elementwise span with one
  // FusedElementwise node.
  EXPECT_GT(ctx->stats().fused_runs.load(), runs_before);

  ctx->set_fuse_elementwise(false);
  std::vector<float> plain = ToVector<float>(f({x})[0]);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_TRUE(BitwiseEqual(fused, plain));
}

TEST_F(FusionTest, StagedFunctionWithCastFusesStatically) {
  // The static pass admits Cast like the drain does: a staged function whose
  // chain converts an int32 argument mid-run still collapses to one
  // FusedElementwise node, and values match the unfused execution bitwise.
  EagerContext* ctx = EagerContext::Global();
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor h = ops::add(ops::cast(args[0], DType::kFloat32), args[1]);
        h = ops::relu(ops::mul(h, ops::scalar<float>(0.5f)));
        return {ops::sub(h, args[1])};
      },
      "fusion_staged_cast_chain");
  Tensor xi = ops::cast(ops::random_normal({16}, 0, 8, /*seed=*/6),
                        DType::kInt32);
  Tensor xf = ops::random_normal({16}, 0, 1, /*seed=*/7);
  ASSERT_TRUE(ctx->Sync().ok());

  const uint64_t runs_before = ctx->stats().fused_runs.load();
  std::vector<float> fused = ToVector<float>(f({xi, xf})[0]);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_GT(ctx->stats().fused_runs.load(), runs_before)
      << "cast-bearing staged chain never fused";

  ctx->set_fuse_elementwise(false);
  std::vector<float> plain = ToVector<float>(f({xi, xf})[0]);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_TRUE(BitwiseEqual(fused, plain));
}

TEST_F(FusionTest, StagedFunctionGradientUnaffectedByFusion) {
  // BuildBackward differentiates the *original* graph — the fused execution
  // variant must never leak into autodiff.
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::constant<float>({0.5f, -1.5f, 2.0f}, {3});
  auto run = [&](bool fuse) {
    ctx->set_fuse_elementwise(fuse);
    Function f = function(
        [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
          return {ops::reduce_sum(
              ops::mul(ops::tanh(args[0]), ops::add(args[0], args[0])))};
        },
        fuse ? "fusion_grad_on" : "fusion_grad_off");
    GradientTape tape;
    tape.watch(x);
    Tensor loss = f({x})[0];
    auto dx = tape.gradient(loss, {x});
    EXPECT_TRUE(dx.ok());
    return ToVector<float>((*dx)[0]);
  };
  EXPECT_TRUE(BitwiseEqual(run(true), run(false)));
}

TEST_F(FusionTest, AsyncVariableOpsStayOrdered) {
  EagerContext* ctx = EagerContext::Global();
  Variable v(ops::constant<float>({0, 0}, {2}));
  Tensor delta = ops::constant<float>({1, 2}, {2});
  // Updates flow through the op queue; in-order draining must make the
  // final read observe every one of them.
  for (int i = 0; i < 50; ++i) v.assign_add(delta);
  Tensor value = v.read_value();
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_EQ(ToVector<float>(value), (std::vector<float>{50, 100}));
}

TEST_F(FusionTest, PoisonedAssignLeavesOldValue) {
  EagerContext* ctx = EagerContext::Global();
  Variable v(ops::constant<float>({5, 6}, {2}));
  Tensor params = ops::constant<float>({1, 2}, {2});
  Tensor bad = ops::gather(params, ops::constant<int64_t>({9, 9}, {2}));
  v.assign(bad);  // enqueued; the kernel fails before the buffer swap
  ASSERT_FALSE(ctx->Sync().ok());
  EXPECT_EQ(ToVector<float>(v.read_value()), (std::vector<float>{5, 6}));
}

// --- cast folding ----------------------------------------------------------

TEST_F(FusionTest, CastOperandsFoldIntoTheRun) {
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({33, 17}, 0, 1, /*seed=*/13);
  // A full-shape int32 operand: its cast matches the run shape, so the
  // drain folds it as a kCast micro-op. (Scalar casts join too — see
  // ScalarCastJoinsTheRun.)
  Tensor i32 = ops::cast(ops::mul(x, ops::scalar<float>(4.0f)), DType::kInt32);
  ASSERT_TRUE(ctx->Sync().ok());  // i32 concrete before the chain
  auto chain = [&] {
    // Two casts interleaved with float arithmetic: both must ride inside
    // the same fused run as pre-converted foreign operands.
    Tensor h = ops::add(x, ops::cast(i32, DType::kFloat32));
    h = ops::mul(h, ops::scalar<float>(0.5f));
    h = ops::relu(ops::sub(h, ops::cast(i32, DType::kFloat32)));
    return ops::maximum(h, x);
  };

  // The drain records every popped run's length; a cast-cut chain could at
  // best reach 3 consecutive fusable ops, so max >= 5 proves the casts
  // folded into one run.
  profiler::Histogram* run_length =
      profiler::Metrics().GetHistogram("fusion.run_length");
  run_length->Reset();
  const uint64_t runs_before = ctx->stats().fused_runs.load();
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor fused = chain();
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_GT(ctx->stats().fused_runs.load(), runs_before)
      << "cast-bearing chain never fused";
  EXPECT_GE(run_length->Snapshot().max, 5u)
      << "casts cut the run instead of folding";

  ctx->set_fuse_elementwise(false);
  Tensor plain = chain();
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_TRUE(BitwiseEqual(ToVector<float>(fused), ToVector<float>(plain)));
}

TEST_F(FusionTest, CastToDifferentDtypeCutsRunButValuesAgree) {
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({5, 7}, 0, 4, /*seed=*/17);
  auto chain = [&] {
    Tensor h = ops::mul(ops::add(x, x), x);       // float run
    Tensor i = ops::cast(h, DType::kInt32);       // dtype changes: run splits
    Tensor j = ops::add(ops::add(i, i), i);       // int32 run
    return ops::cast(j, DType::kFloat32);
  };
  Tensor fused = chain();
  ASSERT_TRUE(ctx->Sync().ok());

  ctx->set_fuse_elementwise(false);
  Tensor plain = chain();
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_TRUE(BitwiseEqual(ToVector<float>(fused), ToVector<float>(plain)));
}

TEST_F(FusionTest, HandcraftedCastProgramConvertsOperand) {
  // Exercise the kernel directly: reg1 is int32 (foreign), kCast folds it
  // into the float run, then kAdd consumes the converted value.
  kernels::MicroProgram program;
  program.num_operands = 2;
  program.insts.push_back({kernels::MicroOpCode::kCast, 1, 0});
  program.insts.push_back({kernels::MicroOpCode::kAdd, 0, 2});
  program.outputs = {3};
  AttrMap attrs;
  attrs.emplace("program", AttrValue(program.Encode()));
  attrs.emplace("dtype", AttrValue(DType::kFloat32));
  Tensor xf = ops::constant<float>({0.5f, -1.25f, 2.0f}, {3});
  Tensor xi = ops::constant<int32_t>({1, -2, 3}, {3});
  auto result = DispatchSingle({.op_name = "FusedElementwise",
                                .inputs = {xf, xi},
                                .attrs = attrs});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(EagerContext::Global()->Sync().ok());
  EXPECT_EQ(ToVector<float>(*result),
            (std::vector<float>{1.5f, -3.25f, 5.0f}));
}

TEST_F(FusionTest, ForeignOperandReadByNonCastIsRejected) {
  // A non-cast instruction reading a foreign-dtype operand is a malformed
  // program: only kCast may consume registers that need conversion.
  kernels::MicroProgram program;
  program.num_operands = 2;
  program.insts.push_back({kernels::MicroOpCode::kAdd, 0, 1});
  program.outputs = {2};
  AttrMap attrs;
  attrs.emplace("program", AttrValue(program.Encode()));
  attrs.emplace("dtype", AttrValue(DType::kFloat32));
  Tensor xf = ops::constant<float>({1, 2}, {2});
  Tensor xi = ops::constant<int32_t>({1, 2}, {2});
  auto result = Dispatch({.op_name = "FusedElementwise",
                          .inputs = {xf, xi},
                          .attrs = attrs});
  // Async execution defers the kernel failure to the sync point.
  Status status =
      result.ok() ? (*result)[0].Materialize() : result.status();
  EXPECT_FALSE(status.ok());
  (void)EagerContext::Global()->Sync();  // absorb the deferred error
}

// --- map-reduce fusion: layout members, reduce epilogues, scalar casts -----

TEST_F(FusionTest, TransposeAndBiasAddRideInsideTheRun) {
  // Layout ops fold into the run as indexed loads instead of cutting it: an
  // interleaved transpose/bias-add/elementwise chain pops as one long run.
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({24, 24}, 0, 1, /*seed=*/41);
  Tensor bias = ops::random_normal({24}, 0, 1, /*seed=*/42);
  ASSERT_TRUE(ctx->Sync().ok());
  auto chain = [&] {
    Tensor h = ops::add(x, bias);            // bias-add (row broadcast)
    h = ops::transpose(h, {1, 0});
    h = ops::mul(h, ops::scalar<float>(0.5f));
    h = ops::transpose(h, {1, 0});
    h = ops::relu(ops::add(h, bias));
    return ops::sub(h, x);
  };

  profiler::Histogram* run_length =
      profiler::Metrics().GetHistogram("fusion.run_length");
  run_length->Reset();
  const uint64_t runs_before = ctx->stats().fused_runs.load();
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor fused = chain();
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_GT(ctx->stats().fused_runs.load(), runs_before)
      << "layout-interleaved chain never fused";
  // Transpose-cut runs could reach at most 2; >= 5 proves layout members
  // joined.
  EXPECT_GE(run_length->Snapshot().max, 5u)
      << "transposes cut the run instead of folding";

  ctx->set_fuse_elementwise(false);
  Tensor plain = chain();
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_TRUE(BitwiseEqual(ToVector<float>(fused), ToVector<float>(plain)));
}

TEST_F(FusionTest, ReduceEpilogueFusesAndMatchesUnfusedBitwise) {
  // elementwise-chain -> reduction executes as one blocked map-reduce pass;
  // partial accumulators + the deterministic tree combine keep it bitwise
  // identical to the standalone reduction kernel.
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({64, 32}, 0, 1, /*seed=*/43);
  Tensor bias = ops::random_normal({32}, 0, 1, /*seed=*/44);
  ASSERT_TRUE(ctx->Sync().ok());
  profiler::Counter* reduce_runs =
      profiler::Metrics().GetCounter("fusion.reduce_runs");

  struct Case {
    const char* name;
    std::function<Tensor()> build;
  };
  const Case cases[] = {
      {"row_sum",
       [&] {
         return ops::reduce_sum(ops::relu(ops::mul(ops::add(x, bias), x)),
                                {1});
       }},
      {"full_mean",
       [&] { return ops::reduce_mean(ops::tanh(ops::add(x, x))); }},
      {"row_max_keepdims",
       [&] {
         return ops::reduce_max(ops::sub(ops::mul(x, x), bias), {1},
                                /*keep_dims=*/true);
       }},
  };
  for (const Case& c : cases) {
    ctx->set_fuse_elementwise(true);
    const uint64_t reduce_before = reduce_runs->value();
    ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
    Tensor fused = c.build();
    ASSERT_TRUE(ctx->Sync().ok());
    EXPECT_GT(reduce_runs->value(), reduce_before)
        << c.name << ": no fused map-reduce pass ran";

    ctx->set_fuse_elementwise(false);
    Tensor plain = c.build();
    ASSERT_TRUE(ctx->Sync().ok());
    EXPECT_TRUE(BitwiseEqual(ToVector<float>(fused), ToVector<float>(plain)))
        << c.name;
  }
}

TEST_F(FusionTest, FusedReduceShardsBitwiseMatchSerial) {
  // Large enough that the fused pass shards across the intra-op pool; the
  // per-shard partials and tree combine must reproduce the serial pass
  // exactly (acceptance: fused bitwise identical, serial AND sharded).
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({256, 512}, 0, 1, /*seed=*/45);
  ASSERT_TRUE(ctx->Sync().ok());
  auto compute = [&] {
    return ops::reduce_sum(ops::mul(ops::tanh(ops::add(x, x)), x), {1});
  };
  ctx->set_intra_op_parallelism(true);
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor sharded = compute();
  ASSERT_TRUE(ctx->Sync().ok());
  std::vector<float> sharded_v = ToVector<float>(sharded);

  ctx->set_intra_op_parallelism(false);
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor serial = compute();
  ASSERT_TRUE(ctx->Sync().ok());
  ctx->set_intra_op_parallelism(true);
  EXPECT_TRUE(BitwiseEqual(sharded_v, ToVector<float>(serial)));
}

TEST_F(FusionTest, TapeGradientsThroughFusedReduceBitwiseMatchUnfused) {
  // The tape records primitive ops before the drain fuses them, so the
  // backward graph is identical either way — and the fused forward values
  // feeding it must be too.
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({16, 8}, 0, 1, /*seed=*/46);
  Tensor bias = ops::random_normal({8}, 0, 1, /*seed=*/47);
  ASSERT_TRUE(ctx->Sync().ok());
  auto grads = [&](bool fuse) {
    ctx->set_fuse_elementwise(fuse);
    GradientTape tape;
    tape.watch(x);
    Tensor y = ops::reduce_mean(ops::mul(ops::add(x, bias), x), {1});
    Tensor loss = ops::reduce_sum(ops::square(y));
    auto dx = tape.gradient(loss, {x});
    EXPECT_TRUE(dx.ok());
    EXPECT_TRUE(ctx->Sync().ok());
    return ToVector<float>((*dx)[0]);
  };
  EXPECT_TRUE(BitwiseEqual(grads(true), grads(false)));
}

TEST_F(FusionTest, PoisonPropagatesThroughFusedReduce) {
  // A poisoned producer feeding a chain that ends in a fused reduction
  // surfaces the *original* status, same as op-at-a-time execution.
  EagerContext* ctx = EagerContext::Global();
  Tensor params = ops::constant<float>({1, 2, 3}, {3});
  Tensor bad = ops::gather(params, ops::constant<int64_t>({9}, {1}));
  Tensor loss = ops::reduce_sum(ops::relu(ops::add(bad, bad)));
  Status status = loss.Materialize();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOutOfRange);
  ASSERT_FALSE(ctx->Sync().ok());  // deferred error surfaces once
  ASSERT_TRUE(ctx->Sync().ok());
}

TEST_F(FusionTest, ScalarCastJoinsTheRun) {
  // A scalar cast no longer cuts the run: it folds as a kCast micro-op over
  // a broadcast (scalar-slot) foreign operand.
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({33, 17}, 0, 1, /*seed=*/48);
  Tensor three = ops::constant<int32_t>({3}, {1});
  ASSERT_TRUE(ctx->Sync().ok());
  auto chain = [&] {
    Tensor h = ops::mul(x, ops::cast(three, DType::kFloat32));
    h = ops::add(h, x);
    h = ops::relu(ops::sub(h, ops::cast(three, DType::kFloat32)));
    return ops::minimum(h, x);
  };

  profiler::Histogram* run_length =
      profiler::Metrics().GetHistogram("fusion.run_length");
  run_length->Reset();
  const uint64_t runs_before = ctx->stats().fused_runs.load();
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor fused = chain();
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_GT(ctx->stats().fused_runs.load(), runs_before)
      << "scalar-cast chain never fused";
  EXPECT_GE(run_length->Snapshot().max, 5u)
      << "scalar casts cut the run instead of joining";

  ctx->set_fuse_elementwise(false);
  Tensor plain = chain();
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_TRUE(BitwiseEqual(ToVector<float>(fused), ToVector<float>(plain)));
}

TEST_F(FusionTest, StagedMapReduceFusesStaticallyAndMatchesBitwise) {
  // The static pass applies identical recognition: a staged
  // transpose/bias-add chain with a reduction epilogue collapses into one
  // FusedElementwise node whose execution matches the unfused variant
  // bitwise.
  EagerContext* ctx = EagerContext::Global();
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor h = ops::add(args[0], args[1]);   // bias-add
        h = ops::transpose(h, {1, 0});
        h = ops::mul(h, ops::scalar<float>(0.25f));
        h = ops::transpose(h, {1, 0});
        return {ops::reduce_sum(ops::relu(h), {1})};
      },
      "fusion_staged_map_reduce");
  Tensor x = ops::random_normal({12, 20}, 0, 1, /*seed=*/49);
  Tensor bias = ops::random_normal({20}, 0, 1, /*seed=*/50);
  ASSERT_TRUE(ctx->Sync().ok());

  profiler::Counter* reduce_runs =
      profiler::Metrics().GetCounter("fusion.reduce_runs");
  const uint64_t reduce_before = reduce_runs->value();
  std::vector<float> fused = ToVector<float>(f({x, bias})[0]);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_GT(reduce_runs->value(), reduce_before)
      << "static pass did not form a fused map-reduce node";

  ctx->set_fuse_elementwise(false);
  std::vector<float> plain = ToVector<float>(f({x, bias})[0]);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_TRUE(BitwiseEqual(fused, plain));
}

TEST_F(FusionTest, DonatingRunsBitwiseMatchCopyingRuns) {
  // Buffer donation hands a uniquely-owned input buffer to the fused run as
  // its in-place output. The interpreter's block order (all loads of a block
  // precede its stores) makes the overwrite invisible to the computation:
  // the donating path must agree with fresh-allocation fused runs bitwise.
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({40, 24}, 0, 1, /*seed=*/61);
  Tensor s = ops::scalar<float>(0.5f);

  profiler::Counter* donations =
      profiler::Metrics().GetCounter("allocator.donations");
  const uint64_t donations_before = donations->value();
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor donated = RandomChain(x, s, 120, /*seed=*/8);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_GT(donations->value(), donations_before)
      << "no fused run donated an input buffer";

  ctx->set_buffer_donation(false);
  const uint64_t donations_off = donations->value();
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor copied = RandomChain(x, s, 120, /*seed=*/8);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_EQ(donations->value(), donations_off)
      << "donation fired while disabled";

  EXPECT_TRUE(BitwiseEqual(ToVector<float>(donated), ToVector<float>(copied)));
}

// --- threadpool-parallel kernels -------------------------------------------

class ParallelKernelsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    EagerContext::Global()->set_intra_op_parallelism(true);
  }
};

template <typename Fn>
void ExpectParallelBitwiseEqual(Fn compute) {
  EagerContext* ctx = EagerContext::Global();
  ctx->set_intra_op_parallelism(true);
  std::vector<float> parallel = ToVector<float>(compute());
  ctx->set_intra_op_parallelism(false);
  std::vector<float> serial = ToVector<float>(compute());
  EXPECT_TRUE(BitwiseEqual(parallel, serial));
}

TEST_F(ParallelKernelsTest, MatMulBitwise) {
  // Big enough to cross the parallel threshold (m*n*k >= 2^21).
  Tensor a = ops::random_normal({160, 160}, 0, 1, /*seed=*/31);
  Tensor b = ops::random_normal({160, 160}, 0, 1, /*seed=*/32);
  ExpectParallelBitwiseEqual([&] { return ops::matmul(a, b); });
}

TEST_F(ParallelKernelsTest, Conv2DAndGradsBitwise) {
  Tensor x = ops::random_normal({2, 24, 24, 8}, 0, 1, /*seed=*/41);
  Tensor f = ops::random_normal({3, 3, 8, 16}, 0, 1, /*seed=*/42);
  ExpectParallelBitwiseEqual([&] { return ops::conv2d(x, f, {1, 1}, "SAME"); });
  ExpectParallelBitwiseEqual([&] {
    GradientTape tape;
    tape.watch(x);
    Tensor y = ops::reduce_sum(ops::conv2d(x, f, {1, 1}, "SAME"));
    return (*tape.gradient(y, {x}))[0];
  });
}

TEST_F(ParallelKernelsTest, ConvBackpropFilterBitwise) {
  // Large enough that ConvBackpropFilter takes the chunked path (total
  // multiply-adds ~23M >> the 2^20 shard threshold, so 16 partial
  // accumulators engage). Chunking and the reduction tree depend only on
  // the geometry, so serial and parallel runs must agree bitwise.
  Tensor x = ops::random_normal({2, 32, 32, 8}, 0, 1, /*seed=*/43);
  Tensor f = ops::random_normal({3, 3, 8, 16}, 0, 1, /*seed=*/44);
  ExpectParallelBitwiseEqual([&] {
    GradientTape tape;
    tape.watch(f);
    Tensor y = ops::reduce_sum(ops::conv2d(x, f, {1, 1}, "SAME"));
    return (*tape.gradient(y, {f}))[0];
  });
}

TEST_F(ParallelKernelsTest, PoolingBitwise) {
  Tensor x = ops::random_normal({4, 32, 32, 4}, 0, 1, /*seed=*/51);
  ExpectParallelBitwiseEqual([&] { return ops::max_pool(x, {2, 2}, {2, 2}); });
  ExpectParallelBitwiseEqual([&] { return ops::avg_pool(x, {2, 2}, {2, 2}); });
  ExpectParallelBitwiseEqual([&] {
    GradientTape tape;
    tape.watch(x);
    Tensor y = ops::reduce_sum(ops::max_pool(x, {2, 2}, {2, 2}));
    return (*tape.gradient(y, {x}))[0];
  });
}

TEST_F(ParallelKernelsTest, TrailingReductionBitwise) {
  Tensor x = ops::random_normal({64, 1024}, 0, 1, /*seed=*/61);
  ExpectParallelBitwiseEqual([&] { return ops::reduce_sum(x, {1}); });
  ExpectParallelBitwiseEqual([&] { return ops::reduce_mean(x, {1}); });
  // Non-trailing axes take the serial path; values must still agree.
  ExpectParallelBitwiseEqual([&] { return ops::reduce_sum(x, {0}); });
}

TEST_F(ParallelKernelsTest, LargeElementwiseBitwise) {
  Tensor x = ops::random_normal({512, 256}, 0, 1, /*seed=*/71);
  ExpectParallelBitwiseEqual([&] { return ops::tanh(ops::add(x, x)); });
}

// --- micro-op program encoding ---------------------------------------------

TEST(MicroProgramTest, EncodeDecodeRoundTrip) {
  kernels::MicroProgram program;
  program.num_operands = 2;
  program.insts.push_back({kernels::MicroOpCode::kAdd, 0, 1});
  program.insts.push_back({kernels::MicroOpCode::kTanh, 2, 0});
  program.outputs = {3};
  auto decoded = kernels::MicroProgram::Decode(program.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_operands, 2);
  ASSERT_EQ(decoded->insts.size(), 2u);
  EXPECT_EQ(decoded->insts[1].opcode, kernels::MicroOpCode::kTanh);
  EXPECT_EQ(decoded->outputs, std::vector<int32_t>{3});
}

TEST(MicroProgramTest, DecodeRejectsMalformedPrograms) {
  EXPECT_FALSE(kernels::MicroProgram::Decode({}).ok());
  // Forward reference: inst 0 reads register 2 (its own result).
  EXPECT_FALSE(kernels::MicroProgram::Decode({2, 1, 0, 2, 0, 1, 2}).ok());
  // Unknown opcode.
  EXPECT_FALSE(kernels::MicroProgram::Decode({1, 1, 99, 0, 0, 1, 1}).ok());
  // Output register out of range.
  EXPECT_FALSE(kernels::MicroProgram::Decode({1, 1, 0, 0, 0, 1, 5}).ok());
}

TEST(MicroProgramTest, CastOpcodeDecodesAndBoundsTheOpcodeRange) {
  const int64_t cast_code = static_cast<int64_t>(kernels::MicroOpCode::kCast);
  auto decoded = kernels::MicroProgram::Decode({1, 1, cast_code, 0, 0, 1, 1});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->insts[0].opcode, kernels::MicroOpCode::kCast);
  EXPECT_EQ(kernels::MicroOpArity(kernels::MicroOpCode::kCast), 1);
  // kCast is the last opcode; one past it is unknown.
  EXPECT_FALSE(
      kernels::MicroProgram::Decode({1, 1, cast_code + 1, 0, 0, 1, 1}).ok());
}

// Builds the minimal extended program around `insts` (one slot per operand,
// contiguous {n}-element evaluation, one contiguous output per entry of
// `outputs`), the shape CompileFusedRun emits before compaction.
kernels::MicroProgram MakeExtendedProgram(
    int64_t num_operands, int64_t n, std::vector<kernels::MicroInst> insts,
    std::vector<int32_t> outputs) {
  kernels::MicroProgram p;
  p.num_operands = num_operands;
  p.extended = true;
  p.eval_dims = {n};
  for (int64_t i = 0; i < num_operands; ++i) {
    kernels::MicroOperandSlot slot;
    slot.input = i;
    slot.access.kind = kernels::MicroAccessKind::kContiguous;
    p.slots.push_back(slot);
  }
  for (size_t i = 0; i < insts.size(); ++i) {
    insts[i].dst = static_cast<int32_t>(num_operands + i);
  }
  p.insts = std::move(insts);
  p.outputs = outputs;
  for (int32_t reg : p.outputs) {
    kernels::MicroOutputSpec spec;
    spec.reg = reg;
    spec.shape = {n};
    spec.store.kind = kernels::MicroAccessKind::kContiguous;
    p.output_specs.push_back(spec);
  }
  return p;
}

TEST(MicroProgramTest, V3RoundTripKeepsDstAndRowCount) {
  // add → relu in one reused row: dst of both instructions is row 0.
  kernels::MicroProgram p = MakeExtendedProgram(
      2, 8,
      {{kernels::MicroOpCode::kAdd, 0, 1},
       {kernels::MicroOpCode::kRelu, 2, 0}},
      {3});
  p.compact = true;
  p.num_rows = 1;
  p.insts[0].dst = 2;
  p.insts[1].dst = 2;
  p.outputs = {2};
  p.output_specs[0].reg = 2;

  auto decoded = kernels::MicroProgram::Decode(p.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->compact);
  EXPECT_EQ(decoded->num_rows, 1);
  EXPECT_EQ(decoded->num_registers(), 3);
  ASSERT_EQ(decoded->insts.size(), 2u);
  EXPECT_EQ(decoded->insts[0].dst, 2);
  EXPECT_EQ(decoded->insts[1].dst, 2);
  EXPECT_EQ(decoded->outputs, std::vector<int32_t>{2});
}

TEST(MicroProgramTest, V3RejectsRowMisuse) {
  auto make = [](int32_t inst1_a, int32_t inst1_dst,
                 int32_t out_reg) -> std::vector<int64_t> {
    kernels::MicroProgram p = MakeExtendedProgram(
        2, 8,
        {{kernels::MicroOpCode::kAdd, 0, 1},
         {kernels::MicroOpCode::kRelu, inst1_a, 0}},
        {3});
    p.compact = true;
    p.num_rows = 2;
    p.insts[0].dst = 2;
    p.insts[1].dst = inst1_dst;
    p.outputs = {out_reg};
    p.output_specs[0].reg = out_reg;
    return p.Encode();
  };
  // The valid baseline decodes.
  ASSERT_TRUE(kernels::MicroProgram::Decode(make(2, 3, 3)).ok());
  // Reading row 1 before any instruction wrote it.
  EXPECT_FALSE(kernels::MicroProgram::Decode(make(3, 3, 3)).ok());
  // dst out of the declared row range.
  EXPECT_FALSE(kernels::MicroProgram::Decode(make(2, 4, 3)).ok());
  // Output naming a row no instruction wrote.
  kernels::MicroProgram unwritten = MakeExtendedProgram(
      2, 8, {{kernels::MicroOpCode::kAdd, 0, 1}}, {3});
  unwritten.compact = true;
  unwritten.num_rows = 2;
  unwritten.insts[0].dst = 2;
  EXPECT_FALSE(kernels::MicroProgram::Decode(unwritten.Encode()).ok());
}

TEST(MicroProgramTest, CompactProgramDedupsAndReusesRows) {
  // add(0,1) computed twice (a shared subexpression), then multiplied with
  // itself. CSE must merge the duplicate and liveness must recycle its row.
  kernels::MicroProgram p = MakeExtendedProgram(
      2, 8,
      {{kernels::MicroOpCode::kAdd, 0, 1},
       {kernels::MicroOpCode::kAdd, 0, 1},
       {kernels::MicroOpCode::kMul, 2, 3}},
      {4});
  kernels::CompactProgram(&p);
  EXPECT_TRUE(p.compact);
  ASSERT_EQ(p.insts.size(), 2u);  // duplicate add merged
  EXPECT_EQ(p.insts[1].opcode, kernels::MicroOpCode::kMul);
  // Both mul operands read the single shared add row.
  EXPECT_EQ(p.insts[1].a, p.insts[0].dst);
  EXPECT_EQ(p.insts[1].b, p.insts[0].dst);
  EXPECT_LE(p.num_rows, 2);
  ASSERT_EQ(p.outputs.size(), 1u);
  EXPECT_EQ(p.outputs[0], p.insts[1].dst);
  EXPECT_EQ(p.output_specs[0].reg, p.insts[1].dst);
  // Compaction is idempotent.
  const auto encoded = p.Encode();
  kernels::CompactProgram(&p);
  EXPECT_EQ(p.Encode(), encoded);
}

TEST(MicroProgramTest, CompactProgramBoundsRowsOnLongChains) {
  // A 32-op chain needs a constant number of rows once dead rows recycle,
  // not one per instruction (the v1/v2 regime).
  std::vector<kernels::MicroInst> insts;
  insts.push_back({kernels::MicroOpCode::kAdd, 0, 1});
  for (int i = 1; i < 32; ++i) {
    insts.push_back({kernels::MicroOpCode::kRelu,
                     static_cast<int32_t>(2 + i - 1), 0});
  }
  kernels::MicroProgram p = MakeExtendedProgram(
      2, 8, std::move(insts), {static_cast<int32_t>(2 + 31)});
  kernels::CompactProgram(&p);
  EXPECT_TRUE(p.compact);
  EXPECT_EQ(p.insts.size(), 32u);
  EXPECT_LE(p.num_rows, 2);
}

// --- compiled-program cache -------------------------------------------------

// A minimal compilable segment: add(o0, o1) → relu, operands of `n` floats.
void MakeCacheRun(int64_t n, std::vector<kernels::FusedRunOp>* ops,
                  std::vector<kernels::FusedRunOperand>* operands) {
  kernels::FusedRunOp add;
  add.op = "Add";
  add.shape = Shape({n});
  add.args = {{-1, 0}, {-1, 1}};
  kernels::FusedRunOp relu;
  relu.op = "Relu";
  relu.shape = Shape({n});
  relu.args = {{0, -1}};
  relu.materialize = true;
  *ops = {add, relu};
  operands->assign(2, kernels::FusedRunOperand{DType::kFloat32, Shape({n})});
}

TEST(ProgramCacheTest, MissThenHitOnSameSignature) {
  kernels::FusedProgramCache cache(/*capacity=*/8);
  std::vector<kernels::FusedRunOp> ops;
  std::vector<kernels::FusedRunOperand> operands;
  MakeCacheRun(16, &ops, &operands);

  auto first = cache.GetOrCompile(ops, operands, DType::kFloat32);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  auto second = cache.GetOrCompile(ops, operands, DType::kFloat32);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  // The cached artifact is the same program, not a recompile of a different
  // shape: same encoding, same output wiring.
  EXPECT_EQ(second->program.Encode(), first->program.Encode());
  EXPECT_EQ(second->output_members, first->output_members);

  // A different shape is a different signature.
  MakeCacheRun(32, &ops, &operands);
  ASSERT_TRUE(cache.GetOrCompile(ops, operands, DType::kFloat32).ok());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ProgramCacheTest, DonationBitIsPartOfTheSignature) {
  // The compile result's donation plan depends on may_donate, so two runs
  // differing only in ownership proofs must not share an entry.
  kernels::FusedProgramCache cache(/*capacity=*/8);
  std::vector<kernels::FusedRunOp> ops;
  std::vector<kernels::FusedRunOperand> operands;
  MakeCacheRun(16, &ops, &operands);
  ASSERT_TRUE(cache.GetOrCompile(ops, operands, DType::kFloat32).ok());
  operands[0].may_donate = true;
  ASSERT_TRUE(cache.GetOrCompile(ops, operands, DType::kFloat32).ok());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ProgramCacheTest, LruEvictsColdestEntry) {
  kernels::FusedProgramCache cache(/*capacity=*/2);
  std::vector<kernels::FusedRunOp> ops;
  std::vector<kernels::FusedRunOperand> operands;

  MakeCacheRun(8, &ops, &operands);
  ASSERT_TRUE(cache.GetOrCompile(ops, operands, DType::kFloat32).ok());
  MakeCacheRun(16, &ops, &operands);
  ASSERT_TRUE(cache.GetOrCompile(ops, operands, DType::kFloat32).ok());
  // Touch {8} so {16} is coldest.
  MakeCacheRun(8, &ops, &operands);
  ASSERT_TRUE(cache.GetOrCompile(ops, operands, DType::kFloat32).ok());
  EXPECT_EQ(cache.hits(), 1u);

  MakeCacheRun(32, &ops, &operands);
  ASSERT_TRUE(cache.GetOrCompile(ops, operands, DType::kFloat32).ok());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  // {8} survived, {16} was evicted.
  MakeCacheRun(8, &ops, &operands);
  ASSERT_TRUE(cache.GetOrCompile(ops, operands, DType::kFloat32).ok());
  EXPECT_EQ(cache.hits(), 2u);
  MakeCacheRun(16, &ops, &operands);
  ASSERT_TRUE(cache.GetOrCompile(ops, operands, DType::kFloat32).ok());
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(ProgramCacheTest, FailedCompilesAreCached) {
  // A rejected segment is rejected identically every step; the cache must
  // remember the failure instead of re-running the compile walk.
  kernels::FusedProgramCache cache(/*capacity=*/8);
  std::vector<kernels::FusedRunOp> ops;
  std::vector<kernels::FusedRunOperand> operands;
  MakeCacheRun(16, &ops, &operands);
  ops[1].op = "MatMul";  // not a micro-op: compilation fails
  EXPECT_FALSE(cache.GetOrCompile(ops, operands, DType::kFloat32).ok());
  EXPECT_FALSE(cache.GetOrCompile(ops, operands, DType::kFloat32).ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

// --- DAG segments on the drain ---------------------------------------------

// A tower of residual diamonds: t = relu(h * s); h = t + h. Every block's h
// is consumed by both the mul and the join add, so a run spanning a block
// boundary carries an in-run value with two readers — a DAG, not a chain.
Tensor ResidualTower(const Tensor& x, const Tensor& s, int blocks) {
  Tensor h = x;
  for (int i = 0; i < blocks; ++i) {
    Tensor t = ops::relu(ops::mul(h, s));
    h = ops::add(t, h);
  }
  return h;
}

TEST_F(FusionTest, DiamondDagFusesAndMatchesUnfused) {
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({48, 32}, 0, 1, /*seed=*/5);
  Tensor s = ops::scalar<float>(0.5f);

  const uint64_t dag_before = ctx->stats().fused_dag_runs.load();
  ctx->set_fuse_elementwise(true);
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor fused = ResidualTower(x, s, 12);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_GT(ctx->stats().fused_dag_runs.load(), dag_before)
      << "no window was recognized as a DAG segment";

  ctx->set_fuse_elementwise(false);
  Tensor plain = ResidualTower(x, s, 12);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_TRUE(BitwiseEqual(ToVector<float>(fused), ToVector<float>(plain)));
}

TEST_F(FusionTest, MultiOutputRunMatchesUnfused) {
  // Intermediates held by the test escape the run and must materialize as
  // extra fused outputs; every escaping value must match the unfused bits.
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({31, 9}, 0, 1, /*seed=*/19);
  Tensor s = ops::scalar<float>(0.25f);

  auto build = [&](std::vector<Tensor>* kept) {
    Tensor a = ops::add(x, s);
    Tensor b = ops::relu(ops::mul(a, s));
    Tensor c = ops::sub(ops::add(b, a), s);  // a consumed twice (diamond)
    kept->assign({a, b, c});
  };

  ctx->set_fuse_elementwise(true);
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  std::vector<Tensor> fused;
  build(&fused);
  ASSERT_TRUE(ctx->Sync().ok());

  ctx->set_fuse_elementwise(false);
  std::vector<Tensor> plain;
  build(&plain);
  ASSERT_TRUE(ctx->Sync().ok());

  ASSERT_EQ(fused.size(), plain.size());
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_TRUE(
        BitwiseEqual(ToVector<float>(fused[i]), ToVector<float>(plain[i])))
        << "escaping value " << i;
  }
}

}  // namespace
}  // namespace tfe
