// Graph optimization passes: pruning, CSE, constant folding (paper §5).
#include <gtest/gtest.h>

#include <cmath>

#include "api/tfe.h"
#include "graph/passes.h"
#include "staging/trace_context.h"

namespace tfe {
namespace {

int CountOps(const GraphFunction& fn, const std::string& op) {
  int count = 0;
  for (int i = 0; i < fn.graph().num_nodes(); ++i) {
    if (fn.graph().node(i).op == op) ++count;
  }
  return count;
}

// Traces `body` WITHOUT running the optimizer, so passes can be tested in
// isolation.
std::shared_ptr<GraphFunction> TraceRaw(
    const std::string& name, int num_args,
    std::function<std::vector<Tensor>(const std::vector<Tensor>&)> body) {
  auto fn = std::make_shared<GraphFunction>(name);
  TraceContext trace(fn, EagerContext::Global());
  std::vector<Tensor> params;
  for (int i = 0; i < num_args; ++i) {
    params.push_back(trace.AddParameter(DType::kFloat32, Shape()).value());
  }
  for (Tensor& out : body(params)) {
    fn->outputs().push_back({out.node_id(), out.output_index()});
  }
  return fn;
}

TEST(PassesTest, PruneRemovesDeadNonStatefulOps) {
  auto fn = TraceRaw("prune_dead", 1, [](const std::vector<Tensor>& args) {
    Tensor dead = ops::exp(args[0]);   // unused
    Tensor dead2 = ops::mul(dead, dead);  // unused
    (void)dead2;
    return std::vector<Tensor>{ops::add(args[0], args[0])};
  });
  passes::PassStats stats;
  ASSERT_TRUE(passes::Prune(*fn, &stats).ok());
  EXPECT_EQ(stats.pruned_nodes, 2);
  EXPECT_EQ(CountOps(*fn, "Exp"), 0);
  EXPECT_EQ(CountOps(*fn, "Add"), 1);
}

TEST(PassesTest, PruneKeepsStatefulOps) {
  // "non-stateful operations that are not reachable from the outputs of a
  // function are pruned" — stateful ones are NOT.
  Variable v(ops::scalar<float>(0.0f));
  auto fn = TraceRaw("prune_stateful", 1, [&](const std::vector<Tensor>& args) {
    v.assign(args[0]);  // side effect, unreachable from outputs
    Tensor dead = ops::exp(args[0]);
    (void)dead;
    return std::vector<Tensor>{ops::add(args[0], args[0])};
  });
  passes::PassStats stats;
  ASSERT_TRUE(passes::Prune(*fn, &stats).ok());
  EXPECT_EQ(CountOps(*fn, "AssignVariableOp"), 1);
  EXPECT_EQ(CountOps(*fn, "Exp"), 0);
}

TEST(PassesTest, PruneKeepsArgs) {
  auto fn = TraceRaw("prune_args", 2, [](const std::vector<Tensor>& args) {
    return std::vector<Tensor>{ops::identity(args[0])};  // args[1] unused
  });
  ASSERT_TRUE(passes::Prune(*fn).ok());
  EXPECT_EQ(CountOps(*fn, "Arg"), 2);  // call signature unchanged
  EXPECT_EQ(fn->num_args(), 2);
}

TEST(PassesTest, CseMergesIdenticalOps) {
  auto fn = TraceRaw("cse", 1, [](const std::vector<Tensor>& args) {
    Tensor a = ops::exp(args[0]);
    Tensor b = ops::exp(args[0]);  // identical
    return std::vector<Tensor>{ops::add(a, b)};
  });
  passes::PassStats stats;
  ASSERT_TRUE(passes::EliminateCommonSubexpressions(*fn, &stats).ok());
  EXPECT_EQ(stats.cse_merged, 1);
  EXPECT_EQ(CountOps(*fn, "Exp"), 1);
}

TEST(PassesTest, CseRespectsAttrs) {
  auto fn = TraceRaw("cse_attrs", 1, [](const std::vector<Tensor>& args) {
    Tensor m = ops::expand_dims(args[0], 0);
    Tensor a = ops::reduce_sum(m, {0}, true);
    Tensor b = ops::reduce_sum(m, {0}, false);  // different attrs
    return std::vector<Tensor>{a, b};
  });
  passes::PassStats stats;
  ASSERT_TRUE(passes::EliminateCommonSubexpressions(*fn, &stats).ok());
  EXPECT_EQ(stats.cse_merged, 0);
  EXPECT_EQ(CountOps(*fn, "Sum"), 2);
}

TEST(PassesTest, CseNeverMergesStatefulOps) {
  auto fn = TraceRaw("cse_random", 0, [](const std::vector<Tensor>&) {
    Tensor a = ops::random_normal({2});
    Tensor b = ops::random_normal({2});  // must stay distinct draws!
    return std::vector<Tensor>{ops::add(a, b)};
  });
  passes::PassStats stats;
  ASSERT_TRUE(passes::EliminateCommonSubexpressions(*fn, &stats).ok());
  EXPECT_EQ(CountOps(*fn, "RandomNormal"), 2);
}

TEST(PassesTest, ConstantFolding) {
  auto fn = TraceRaw("fold", 1, [](const std::vector<Tensor>& args) {
    Tensor c = ops::add(ops::scalar<float>(2.0f), ops::scalar<float>(3.0f));
    return std::vector<Tensor>{ops::mul(args[0], c)};
  });
  EXPECT_EQ(CountOps(*fn, "Add"), 1);
  passes::PassStats stats;
  ASSERT_TRUE(passes::FoldConstants(*fn, &stats).ok());
  ASSERT_TRUE(passes::Prune(*fn, &stats).ok());
  EXPECT_EQ(stats.folded_constants, 1);
  EXPECT_EQ(CountOps(*fn, "Add"), 0);
  // Folded payload is correct.
  bool found = false;
  for (int i = 0; i < fn->graph().num_nodes(); ++i) {
    const Node& node = fn->graph().node(i);
    if (node.op == "Const" && node.constant_value.defined() &&
        node.constant_value.num_elements() == 1 &&
        node.constant_value.dtype() == DType::kFloat32 &&
        node.constant_value.scalar<float>() == 5.0f) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PassesTest, FoldingCascades) {
  auto fn = TraceRaw("fold_chain", 1, [](const std::vector<Tensor>& args) {
    Tensor c1 = ops::add(ops::scalar<float>(1.0f), ops::scalar<float>(1.0f));
    Tensor c2 = ops::mul(c1, ops::scalar<float>(3.0f));  // foldable after c1
    return std::vector<Tensor>{ops::add(args[0], c2)};
  });
  passes::PassStats stats;
  ASSERT_TRUE(passes::FoldConstants(*fn, &stats).ok());
  EXPECT_EQ(stats.folded_constants, 2);
}

TEST(PassesTest, FuseElementwiseAbsorbsCast) {
  // Cast rides inside a static fused run as a kCast micro-op: the int32
  // argument feeds the run as a foreign operand and the fused node carries
  // the run dtype so the kernel knows what to convert to.
  auto fn = std::make_shared<GraphFunction>("fuse_cast_static");
  {
    TraceContext trace(fn, EagerContext::Global());
    Tensor xi = trace.AddParameter(DType::kInt32, Shape({4})).value();
    Tensor xf = trace.AddParameter(DType::kFloat32, Shape({4})).value();
    Tensor h = ops::add(ops::cast(xi, DType::kFloat32), xf);
    h = ops::relu(ops::mul(h, h));
    fn->outputs().push_back({h.node_id(), h.output_index()});
  }
  passes::PassStats stats;
  ASSERT_TRUE(passes::FuseElementwise(*fn, &stats).ok());
  EXPECT_EQ(stats.fused_runs, 1);
  EXPECT_EQ(stats.fused_nodes, 4);
  EXPECT_EQ(CountOps(*fn, "Cast"), 0);
  EXPECT_EQ(CountOps(*fn, "FusedElementwise"), 1);
  for (int i = 0; i < fn->graph().num_nodes(); ++i) {
    const Node& node = fn->graph().node(i);
    if (node.op != "FusedElementwise") continue;
    EXPECT_EQ(node.attrs.count("dtype"), 1u)
        << "cast-bearing program must pin the run dtype";
  }
}

TEST(PassesTest, FuseElementwiseSplitsRunsAtDtypeChange) {
  // A dtype change splits the run: the cast heads the run of its *output*
  // dtype and reads the earlier run's result as a foreign operand.
  auto fn = std::make_shared<GraphFunction>("fuse_cast_cut");
  {
    TraceContext trace(fn, EagerContext::Global());
    Tensor xf = trace.AddParameter(DType::kFloat32, Shape({4})).value();
    Tensor f_chain = ops::mul(ops::add(xf, xf), xf);       // float run
    Tensor i = ops::cast(f_chain, DType::kInt32);          // dtype changes
    Tensor i_chain = ops::add(ops::add(i, i), i);          // int32 run
    fn->outputs().push_back({i_chain.node_id(), i_chain.output_index()});
  }
  passes::PassStats stats;
  ASSERT_TRUE(passes::FuseElementwise(*fn, &stats).ok());
  // Two runs: [add, mul] float and [cast, add, add] int32 — the cast joins
  // the run of its *output* dtype, never the float run it reads from.
  EXPECT_EQ(stats.fused_runs, 2);
  EXPECT_EQ(CountOps(*fn, "Cast"), 0);
  EXPECT_EQ(CountOps(*fn, "FusedElementwise"), 2);
}

TEST(PassesTest, FuseElementwiseAbsorbsLayoutAndReduction) {
  // The widened recognition: transposes and the bias-add broadcast ride
  // inside the run as indexed loads, and the trailing reduce_sum joins as
  // the run's map-reduce epilogue — one FusedElementwise node remains.
  auto fn = std::make_shared<GraphFunction>("fuse_map_reduce_static");
  {
    TraceContext trace(fn, EagerContext::Global());
    Tensor x = trace.AddParameter(DType::kFloat32, Shape({6, 10})).value();
    Tensor bias = trace.AddParameter(DType::kFloat32, Shape({10})).value();
    Tensor h = ops::add(x, bias);
    h = ops::transpose(h, {1, 0});
    h = ops::mul(h, ops::scalar<float>(0.5f));
    h = ops::transpose(h, {1, 0});
    Tensor r = ops::reduce_sum(ops::relu(h), {1});
    fn->outputs().push_back({r.node_id(), r.output_index()});
  }
  passes::PassStats stats;
  ASSERT_TRUE(passes::FuseElementwise(*fn, &stats).ok());
  EXPECT_EQ(stats.fused_runs, 1);
  EXPECT_EQ(stats.fused_reduce_runs, 1);
  EXPECT_EQ(CountOps(*fn, "Transpose"), 0);
  EXPECT_EQ(CountOps(*fn, "Sum"), 0);
  EXPECT_EQ(CountOps(*fn, "FusedElementwise"), 1);
}

TEST(PassesTest, FuseElementwiseLongInterleavedChainStaysOneRun) {
  // Acceptance gate for the widened window: a 60-op chain alternating
  // elementwise with transposes/bias-adds must keep a mean run length above
  // 16 (layout cuts previously capped it around 2).
  auto fn = std::make_shared<GraphFunction>("fuse_interleaved_long");
  {
    TraceContext trace(fn, EagerContext::Global());
    Tensor x = trace.AddParameter(DType::kFloat32, Shape({8, 8})).value();
    Tensor bias = trace.AddParameter(DType::kFloat32, Shape({8})).value();
    Tensor h = x;
    for (int i = 0; i < 20; ++i) {
      h = ops::add(h, bias);          // bias-add
      h = ops::transpose(h, {1, 0});  // layout
      h = ops::relu(h);               // elementwise
    }
    fn->outputs().push_back({h.node_id(), h.output_index()});
  }
  passes::PassStats stats;
  ASSERT_TRUE(passes::FuseElementwise(*fn, &stats).ok());
  ASSERT_GT(stats.fused_runs, 0);
  EXPECT_GT(stats.fused_nodes / stats.fused_runs, 16)
      << "fused_nodes=" << stats.fused_nodes
      << " fused_runs=" << stats.fused_runs;
  EXPECT_EQ(CountOps(*fn, "Transpose"), 0);
}

TEST(PassesTest, FuseElementwiseCapturesNonContiguousDagSegments) {
  // A non-fusable MatMul interleaved in a diamond no longer cuts the run:
  // the scan steps over the hole and fuses {add, relu, add} around it. The
  // final add reads the MatMul — a skipped node — so it must stay out of
  // the run (joining would hoist it above its producer).
  auto fn = std::make_shared<GraphFunction>("fuse_dag_holes");
  {
    TraceContext trace(fn, EagerContext::Global());
    Tensor x = trace.AddParameter(DType::kFloat32, Shape({4, 4})).value();
    Tensor a = ops::add(x, x);
    Tensor m = ops::matmul(x, x);  // the hole
    Tensor b = ops::relu(a);
    Tensor c = ops::add(b, a);     // diamond join: a has two in-run readers
    Tensor out = ops::add(c, m);   // reads the skipped node
    fn->outputs().push_back({out.node_id(), out.output_index()});
  }
  passes::PassStats stats;
  ASSERT_TRUE(passes::FuseElementwise(*fn, &stats).ok());
  EXPECT_EQ(stats.fused_runs, 1);
  EXPECT_EQ(stats.fused_nodes, 3);
  EXPECT_EQ(stats.fused_dag_runs, 1);
  EXPECT_EQ(CountOps(*fn, "FusedElementwise"), 1);
  EXPECT_EQ(CountOps(*fn, "MatMul"), 1);
  EXPECT_EQ(CountOps(*fn, "Relu"), 0);
  EXPECT_EQ(CountOps(*fn, "Add"), 1);  // only the MatMul consumer survives
}

TEST(PassesTest, FuseElementwiseEmitsMultiOutputDiamonds) {
  // Both the diamond's intermediate and its join are function outputs, so
  // the single fused node must publish two values.
  auto fn = std::make_shared<GraphFunction>("fuse_multi_output");
  {
    TraceContext trace(fn, EagerContext::Global());
    Tensor x = trace.AddParameter(DType::kFloat32, Shape({8})).value();
    Tensor a = ops::add(x, x);
    Tensor b = ops::relu(a);
    Tensor c = ops::add(b, a);
    fn->outputs().push_back({b.node_id(), b.output_index()});
    fn->outputs().push_back({c.node_id(), c.output_index()});
  }
  passes::PassStats stats;
  ASSERT_TRUE(passes::FuseElementwise(*fn, &stats).ok());
  EXPECT_EQ(stats.fused_runs, 1);
  EXPECT_EQ(stats.fused_nodes, 3);
  EXPECT_EQ(stats.fused_dag_runs, 1);
  EXPECT_EQ(CountOps(*fn, "FusedElementwise"), 1);
  for (int i = 0; i < fn->graph().num_nodes(); ++i) {
    const Node& node = fn->graph().node(i);
    if (node.op != "FusedElementwise") continue;
    EXPECT_EQ(node.outputs.size(), 2u);
  }
}

TEST(PassesTest, DagFusedFunctionComputesTheSameValues) {
  // End-to-end through the staged executor: a residual diamond tower with a
  // MatMul hole must produce exactly the bits eager op-at-a-time execution
  // produces (the fused interpreter applies identical scalar expressions).
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor m = ops::matmul(args[0], args[0]);
        Tensor h = args[0];
        for (int i = 0; i < 4; ++i) {
          Tensor t = ops::relu(ops::mul(h, ops::scalar<float>(0.5f)));
          h = ops::add(t, h);
        }
        return {ops::add(h, m)};
      },
      "dag_e2e");
  Tensor x = ops::random_normal({4, 4}, 0, 1, /*seed=*/23);
  std::vector<float> staged = tensor_util::ToVector<float>(f({x})[0]);

  Tensor m = ops::matmul(x, x);
  Tensor h = x;
  for (int i = 0; i < 4; ++i) {
    Tensor t = ops::relu(ops::mul(h, ops::scalar<float>(0.5f)));
    h = ops::add(t, h);
  }
  std::vector<float> eager = tensor_util::ToVector<float>(ops::add(h, m));
  EXPECT_EQ(staged, eager);
}

TEST(PassesTest, OptimizedFunctionStillComputesCorrectly) {
  // End-to-end: the default pipeline must preserve semantics.
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor waste = ops::exp(ops::exp(args[0]));  // dead
        (void)waste;
        Tensor c = ops::mul(ops::scalar<float>(2.0f),
                            ops::scalar<float>(4.0f));  // folds to 8
        Tensor a = ops::tanh(args[0]);
        Tensor b = ops::tanh(args[0]);  // CSE with a
        return {ops::add(ops::mul(a, c), b)};
      },
      "optimized_e2e");
  float x = 0.5f;
  float expected = std::tanh(x) * 8.0f + std::tanh(x);
  EXPECT_NEAR(f({ops::scalar<float>(x)})[0].scalar<float>(), expected, 1e-5);
  auto concrete = f.GetConcreteFunction({ops::scalar<float>(x)});
  ASSERT_TRUE(concrete.ok());
  EXPECT_EQ(CountOps(**concrete, "Exp"), 0);   // pruned
  EXPECT_EQ(CountOps(**concrete, "Tanh"), 1);  // merged
  EXPECT_EQ(CountOps(**concrete, "Mul"), 1);   // constant folded away
}

}  // namespace
}  // namespace tfe
