// Direct numeric verification of the structured kernels (conv, pooling,
// batch norm) against hand-computed values, plus finite-difference gradient
// checks at the tensor level.
#include <gtest/gtest.h>

#include <cmath>

#include "api/tfe.h"

namespace tfe {
namespace {

using tensor_util::ToVector;

TEST(ConvKernelTest, HandComputedValid) {
  // 1x3x3x1 input, 2x2x1x1 filter of ones, VALID, stride 1:
  // each output = sum of the 2x2 window.
  Tensor x = ops::constant<float>({1, 2, 3, 4, 5, 6, 7, 8, 9}, {1, 3, 3, 1});
  Tensor filter = ops::constant<float>({1, 1, 1, 1}, {2, 2, 1, 1});
  Tensor y = ops::conv2d(x, filter, {1, 1}, "VALID");
  EXPECT_EQ(y.shape(), Shape({1, 2, 2, 1}));
  EXPECT_EQ(ToVector<float>(y), (std::vector<float>{12, 16, 24, 28}));
}

TEST(ConvKernelTest, HandComputedSameWithPadding) {
  // Same setup, SAME padding: output 3x3; bottom-right windows run off the
  // edge and see zeros.
  Tensor x = ops::constant<float>({1, 2, 3, 4, 5, 6, 7, 8, 9}, {1, 3, 3, 1});
  Tensor filter = ops::constant<float>({1, 1, 1, 1}, {2, 2, 1, 1});
  Tensor y = ops::conv2d(x, filter, {1, 1}, "SAME");
  EXPECT_EQ(y.shape(), Shape({1, 3, 3, 1}));
  EXPECT_EQ(ToVector<float>(y),
            (std::vector<float>{12, 16, 9, 24, 28, 15, 15, 17, 9}));
}

TEST(ConvKernelTest, StrideTwoAndChannels) {
  // 1x4x4x1, 1x1 filter with weight 2, stride 2: picks every other pixel.
  std::vector<float> values(16);
  for (int i = 0; i < 16; ++i) values[i] = static_cast<float>(i);
  Tensor x = tensor_util::FromVector<float>(values, Shape({1, 4, 4, 1}));
  Tensor filter = ops::constant<float>({2}, {1, 1, 1, 1});
  Tensor y = ops::conv2d(x, filter, {2, 2}, "VALID");
  EXPECT_EQ(y.shape(), Shape({1, 2, 2, 1}));
  EXPECT_EQ(ToVector<float>(y), (std::vector<float>{0, 4, 16, 20}));

  // Multi-channel contraction: cin=2 summed into one output channel.
  Tensor x2 = ops::constant<float>({1, 10, 2, 20}, {1, 1, 2, 2});
  Tensor f2 = ops::constant<float>({1, 1}, {1, 1, 2, 1});
  Tensor y2 = ops::conv2d(x2, f2, {1, 1}, "VALID");
  EXPECT_EQ(ToVector<float>(y2), (std::vector<float>{11, 22}));
}

TEST(ConvKernelTest, GradientMatchesFiniteDifference) {
  Tensor x = ops::random_normal({1, 4, 4, 2}, 0, 1, /*seed=*/101);
  Tensor filter = ops::random_normal({3, 3, 2, 2}, 0, 0.5, /*seed=*/102);
  auto loss_of = [&](const Tensor& xv, const Tensor& fv) {
    return ops::reduce_sum(
        ops::mul(ops::conv2d(xv, fv, {1, 1}, "SAME"),
                 ops::conv2d(xv, fv, {1, 1}, "SAME")));
  };
  GradientTape tape;
  tape.watch(x);
  tape.watch(filter);
  Tensor loss = loss_of(x, filter);
  tape.StopRecording();
  auto grads = std::move(tape.gradient(loss, {x, filter})).value();

  const float eps = 1e-2f;
  // Probe a few coordinates of each gradient.
  for (int64_t index : {0L, 7L, 21L}) {
    Tensor up = tensor_util::DeepCopy(x);
    Tensor down = tensor_util::DeepCopy(x);
    up.mutable_data<float>()[index] += eps;
    down.mutable_data<float>()[index] -= eps;
    float numeric = (loss_of(up, filter).scalar<float>() -
                     loss_of(down, filter).scalar<float>()) /
                    (2 * eps);
    EXPECT_NEAR(grads[0].data<float>()[index], numeric,
                2e-2 * (1 + std::abs(numeric)))
        << "dx[" << index << "]";
  }
  for (int64_t index : {0L, 5L, 17L}) {
    Tensor up = tensor_util::DeepCopy(filter);
    Tensor down = tensor_util::DeepCopy(filter);
    up.mutable_data<float>()[index] += eps;
    down.mutable_data<float>()[index] -= eps;
    float numeric = (loss_of(x, up).scalar<float>() -
                     loss_of(x, down).scalar<float>()) /
                    (2 * eps);
    EXPECT_NEAR(grads[1].data<float>()[index], numeric,
                2e-2 * (1 + std::abs(numeric)))
        << "dfilter[" << index << "]";
  }
}

TEST(PoolKernelTest, MaxPoolHandComputed) {
  Tensor x = ops::constant<float>({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                   14, 15, 16},
                                  {1, 4, 4, 1});
  Tensor y = ops::max_pool(x, {2, 2}, {2, 2}, "VALID");
  EXPECT_EQ(ToVector<float>(y), (std::vector<float>{6, 8, 14, 16}));
}

TEST(PoolKernelTest, AvgPoolHandComputedWithSamePadding) {
  Tensor x = ops::constant<float>({1, 2, 3, 4, 5, 6, 7, 8, 9}, {1, 3, 3, 1});
  Tensor y = ops::avg_pool(x, {2, 2}, {2, 2}, "SAME");
  EXPECT_EQ(y.shape(), Shape({1, 2, 2, 1}));
  // Windows: {1,2,4,5}, {3,6}, {7,8}, {9} — averaged over VALID members.
  EXPECT_EQ(ToVector<float>(y), (std::vector<float>{3, 4.5, 7.5, 9}));
}

TEST(PoolKernelTest, MaxPoolGradientRoutesToArgmax) {
  Tensor x = ops::constant<float>({1, 9, 2, 3}, {1, 2, 2, 1});
  GradientTape tape;
  tape.watch(x);
  Tensor y = ops::reduce_sum(ops::max_pool(x, {2, 2}, {2, 2}, "VALID"));
  tape.StopRecording();
  auto grads = std::move(tape.gradient(y, {x})).value();
  EXPECT_EQ(ToVector<float>(grads[0]), (std::vector<float>{0, 1, 0, 0}));
}

TEST(PoolKernelTest, AvgPoolGradientSpreadsEvenly) {
  Tensor x = ops::constant<float>({1, 2, 3, 4}, {1, 2, 2, 1});
  GradientTape tape;
  tape.watch(x);
  Tensor y = ops::reduce_sum(ops::avg_pool(x, {2, 2}, {2, 2}, "VALID"));
  tape.StopRecording();
  auto grads = std::move(tape.gradient(y, {x})).value();
  EXPECT_EQ(ToVector<float>(grads[0]),
            (std::vector<float>{0.25, 0.25, 0.25, 0.25}));
}

TEST(BatchNormKernelTest, TrainingNormalizesToUnitStatistics) {
  Tensor x = ops::random_normal({4, 3, 3, 2}, 5.0, 3.0, /*seed=*/111);
  Tensor scale = ops::ones(DType::kFloat32, {2});
  Tensor offset = ops::zeros(DType::kFloat32, {2});
  auto result = ops::fused_batch_norm(x, scale, offset, offset, scale,
                                      /*is_training=*/true, /*epsilon=*/1e-5);
  // Per-channel output mean ~0 and variance ~1.
  Tensor mean = ops::reduce_mean(result.y, {0, 1, 2});
  Tensor variance =
      ops::reduce_mean(ops::square(result.y), {0, 1, 2});
  for (float m : ToVector<float>(mean)) EXPECT_NEAR(m, 0.0f, 1e-4);
  for (float v : ToVector<float>(variance)) EXPECT_NEAR(v, 1.0f, 1e-2);
  // Reported batch stats match the input's.
  Tensor input_mean = ops::reduce_mean(x, {0, 1, 2});
  EXPECT_TRUE(tensor_util::AllClose(result.batch_mean, input_mean, 1e-4,
                                    1e-4));
}

TEST(BatchNormKernelTest, InferenceUsesMovingStatistics) {
  Tensor x = ops::constant<float>({10, 20}, {1, 1, 1, 2});
  Tensor scale = ops::constant<float>({2, 2}, {2});
  Tensor offset = ops::constant<float>({1, 1}, {2});
  Tensor moving_mean = ops::constant<float>({10, 10}, {2});
  Tensor moving_var = ops::constant<float>({4, 4}, {2});
  auto result = ops::fused_batch_norm(x, scale, offset, moving_mean,
                                      moving_var, /*is_training=*/false,
                                      /*epsilon=*/0.0);
  // y = scale * (x - mean)/sqrt(var) + offset = 2*(x-10)/2 + 1.
  EXPECT_NEAR(ToVector<float>(result.y)[0], 1.0f, 1e-4);
  EXPECT_NEAR(ToVector<float>(result.y)[1], 11.0f, 1e-4);
}

TEST(BatchNormKernelTest, GradientMatchesFiniteDifference) {
  Tensor x = ops::random_normal({2, 2, 2, 2}, 0, 1, /*seed=*/121);
  Tensor scale = ops::constant<float>({1.5f, 0.5f}, {2});
  Tensor offset = ops::constant<float>({0.1f, -0.2f}, {2});
  Tensor zeros = ops::zeros(DType::kFloat32, {2});
  Tensor ones = ops::ones(DType::kFloat32, {2});
  auto loss_of = [&](const Tensor& xv, const Tensor& sv, const Tensor& ov) {
    auto result = ops::fused_batch_norm(xv, sv, ov, zeros, ones, true, 1e-3);
    return ops::reduce_sum(ops::mul(result.y, result.y));
  };
  GradientTape tape;
  tape.watch(x);
  tape.watch(scale);
  tape.watch(offset);
  Tensor loss = loss_of(x, scale, offset);
  tape.StopRecording();
  auto grads = std::move(tape.gradient(loss, {x, scale, offset})).value();

  const float eps = 1e-2f;
  for (int64_t index : {0L, 9L}) {
    Tensor up = tensor_util::DeepCopy(x);
    Tensor down = tensor_util::DeepCopy(x);
    up.mutable_data<float>()[index] += eps;
    down.mutable_data<float>()[index] -= eps;
    float numeric = (loss_of(up, scale, offset).scalar<float>() -
                     loss_of(down, scale, offset).scalar<float>()) /
                    (2 * eps);
    EXPECT_NEAR(grads[0].data<float>()[index], numeric,
                5e-2 * (1 + std::abs(numeric)));
  }
  for (int64_t index : {0L, 1L}) {
    Tensor up = tensor_util::DeepCopy(scale);
    Tensor down = tensor_util::DeepCopy(scale);
    up.mutable_data<float>()[index] += eps;
    down.mutable_data<float>()[index] -= eps;
    float numeric = (loss_of(x, up, offset).scalar<float>() -
                     loss_of(x, down, offset).scalar<float>()) /
                    (2 * eps);
    EXPECT_NEAR(grads[1].data<float>()[index], numeric,
                5e-2 * (1 + std::abs(numeric)));
  }
}

TEST(XentKernelTest, GradientIsSoftmaxMinusOneHot) {
  Tensor logits = ops::constant<float>({2, 1, 0, 0, 0, 3}, {2, 3});
  Tensor labels = ops::constant<int64_t>({0, 2}, {2});
  GradientTape tape;
  tape.watch(logits);
  Tensor loss = ops::reduce_sum(
      ops::sparse_softmax_cross_entropy_with_logits(logits, labels));
  tape.StopRecording();
  auto grads = std::move(tape.gradient(loss, {logits})).value();
  Tensor expected =
      ops::sub(ops::softmax(logits), ops::one_hot(labels, 3));
  EXPECT_TRUE(tensor_util::AllClose(grads[0], expected, 1e-5, 1e-6));
}

TEST(Float64KernelTest, DoublePrecisionPath) {
  // The float64 path matters for scientific workloads (L2HMC lineage).
  Tensor a = ops::constant<double>({1.0, 2.0}, {2});
  Tensor b = ops::constant<double>({3.0, 4.0}, {2});
  Tensor y = ops::add(ops::mul(a, b), ops::sqrt(a));
  EXPECT_EQ(y.dtype(), DType::kFloat64);
  EXPECT_NEAR(ToVector<double>(y)[1], 8.0 + std::sqrt(2.0), 1e-12);

  GradientTape tape;
  tape.watch(a);
  Tensor loss = ops::reduce_sum(ops::mul(a, a));
  tape.StopRecording();
  auto grads = std::move(tape.gradient(loss, {a})).value();
  EXPECT_EQ(grads[0].dtype(), DType::kFloat64);
  EXPECT_NEAR(ToVector<double>(grads[0])[1], 4.0, 1e-12);
}

}  // namespace
}  // namespace tfe
