// GraphFunction serialization: the deployment path (paper §4.3/§5).
#include <gtest/gtest.h>

#include "api/tfe.h"
#include "graph/serialization.h"
#include "runtime/eager_context.h"
#include "staging/control_flow.h"

namespace tfe {
namespace {

TEST(SerializationTest, RoundTripExecutes) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor scaled = ops::mul(args[0], ops::fill(DType::kFloat32, {2}, 3.0));
        return {ops::reduce_sum(ops::tanh(scaled)), scaled};
      },
      "serialize_me");
  Tensor x = ops::constant<float>({0.1f, 0.2f}, {2});
  std::vector<Tensor> expected = f({x});

  auto concrete = f.GetConcreteFunction({x});
  ASSERT_TRUE(concrete.ok());
  auto serialized = SerializeFunction(**concrete);
  ASSERT_TRUE(serialized.ok());
  EXPECT_GT(serialized->size(), 0u);

  auto restored = DeserializeFunction(*serialized);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->name(), (*concrete)->name());
  EXPECT_EQ((*restored)->num_args(), (*concrete)->num_args());
  EXPECT_EQ((*restored)->num_outputs(), (*concrete)->num_outputs());

  // Execute the deserialized function in a separate runtime ("a production
  // environment that executes the trace using the C++ API").
  EagerContext::Options options;
  options.register_sim_gpu = false;
  options.register_sim_tpu = false;
  EagerContext production(options);
  ASSERT_TRUE(production.functions().Register(*restored).ok());
  std::vector<Tensor> inputs = {x};
  for (const Capture& capture : (*restored)->captures()) {
    inputs.push_back(capture.tensor);
  }
  AttrMap attrs;
  attrs["function"] = AttrValue((*restored)->name());
  auto outputs = production.RunPrimitive("Call", inputs, attrs, "");
  ASSERT_TRUE(outputs.ok());
  ASSERT_EQ(outputs->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(tensor_util::AllClose(expected[i], (*outputs)[i]));
  }
}

TEST(SerializationTest, AllAttrKindsRoundTrip) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor t = ops::transpose(
            ops::reshape(args[0], {2, 3}), {1, 0});          // vec<int64>
        Tensor m = ops::matmul(t, t, /*transpose_a=*/false,
                               /*transpose_b=*/true);        // bool attrs
        Tensor c = ops::cast(m, DType::kFloat64);             // dtype attr
        Tensor r = ops::random_normal({3, 3}, 1.0, 2.0, 77);  // shape+double
        Tensor back = ops::cast(c, DType::kFloat32);
        return {ops::reduce_sum(ops::add(back, r), {0, 1})};
      },
      "attr_kinds");
  Tensor x = ops::constant<float>({1, 2, 3, 4, 5, 6}, {6});
  Tensor expected = f({x})[0];

  auto concrete = f.GetConcreteFunction({x});
  ASSERT_TRUE(concrete.ok());
  auto serialized = SerializeFunction(**concrete);
  ASSERT_TRUE(serialized.ok());
  auto restored = DeserializeFunction(*serialized);
  ASSERT_TRUE(restored.ok());

  // Same runtime this time; re-register under the deserialized name fails
  // (already present), so rename by deserializing into a fresh context.
  EagerContext isolated{EagerContext::Options{}};
  ASSERT_TRUE(isolated.functions().Register(*restored).ok());
  std::vector<Tensor> inputs = {x};
  for (const Capture& capture : (*restored)->captures()) {
    inputs.push_back(capture.tensor);
  }
  AttrMap attrs;
  attrs["function"] = AttrValue((*restored)->name());
  auto outputs = isolated.RunPrimitive("Call", inputs, attrs, "");
  ASSERT_TRUE(outputs.ok());
  EXPECT_TRUE(tensor_util::AllClose(expected, (*outputs)[0]));
}

TEST(SerializationTest, VariableCapturesRejected) {
  Variable v(ops::scalar<float>(1.0f));
  Function f = function(
      [&v](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(args[0], v.value())};
      },
      "captures_var");
  auto concrete = f.GetConcreteFunction({ops::scalar<float>(1.0f)});
  ASSERT_TRUE(concrete.ok());
  auto serialized = SerializeFunction(**concrete);
  EXPECT_FALSE(serialized.ok());
  EXPECT_EQ(serialized.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(SerializationTest, HostFuncRejected) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return host_func(
            "cb",
            [](const std::vector<Tensor>& ins)
                -> StatusOr<std::vector<Tensor>> {
              return std::vector<Tensor>{ins[0]};
            },
            {args[0]}, {{DType::kFloat32, Shape()}});
      },
      "hostfunc_serialize");
  auto concrete = f.GetConcreteFunction({ops::scalar<float>(1.0f)});
  ASSERT_TRUE(concrete.ok());
  EXPECT_FALSE(SerializeFunction(**concrete).ok());
}

TEST(SerializationTest, CorruptDataRejected) {
  EXPECT_FALSE(DeserializeFunction("").ok());
  EXPECT_FALSE(DeserializeFunction("garbage").ok());
  EXPECT_FALSE(DeserializeFunction("tfe_function_v1 5:hello 9999999").ok());
}

TEST(SerializationTest, BundleCarriesNestedCallees) {
  Function inner = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::tanh(args[0])};
      },
      "bundle_inner");
  Function outer = function(
      [&inner](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(inner({args[0]})[0], args[0])};
      },
      "bundle_outer");
  Tensor x = ops::scalar<float>(0.7f);
  Tensor expected = outer({x})[0];

  auto concrete = outer.GetConcreteFunction({x});
  ASSERT_TRUE(concrete.ok());
  auto serialized = SerializeFunctionBundle(
      **concrete, EagerContext::Global()->functions());
  ASSERT_TRUE(serialized.ok());

  auto bundle = DeserializeFunctionBundle(*serialized);
  ASSERT_TRUE(bundle.ok());
  ASSERT_EQ(bundle->size(), 2u);  // outer + inner

  // Execute in a fresh runtime with no pre-registered functions.
  EagerContext::Options options;
  options.register_sim_gpu = false;
  options.register_sim_tpu = false;
  EagerContext production(options);
  for (const auto& fn : *bundle) {
    ASSERT_TRUE(production.functions().Register(fn).ok());
  }
  std::vector<Tensor> inputs = {x};
  for (const Capture& capture : bundle->front()->captures()) {
    inputs.push_back(capture.tensor);
  }
  AttrMap attrs;
  attrs["function"] = AttrValue(bundle->front()->name());
  auto outputs = production.RunPrimitive("Call", inputs, attrs, "");
  ASSERT_TRUE(outputs.ok());
  EXPECT_TRUE(tensor_util::AllClose(expected, (*outputs)[0]));
}

TEST(SerializationTest, CondBundleRoundTrips) {
  // A traced Cond node references its branch functions by name; the bundle
  // must carry both so a fresh runtime can take either branch.
  Function double_it = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(args[0], ops::fill(DType::kFloat32, {}, 2.0))};
      },
      "ser_cond_then");
  Function negate_it = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::neg(args[0])};
      },
      "ser_cond_else");
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor pred = ops::less(ops::fill(DType::kFloat32, {}, 0.0), args[0]);
        return ops::cond(pred, double_it, negate_it, {args[0]});
      },
      "ser_cond_outer");
  Tensor pos = ops::scalar<float>(3.0f);
  Tensor neg = ops::scalar<float>(-3.0f);
  Tensor want_pos = staged({pos})[0];
  ASSERT_EQ(staged.num_traces(), 1);

  auto concrete = staged.GetConcreteFunction({pos});
  ASSERT_TRUE(concrete.ok());
  auto serialized = SerializeFunctionBundle(
      **concrete, EagerContext::Global()->functions());
  ASSERT_TRUE(serialized.ok());
  auto bundle = DeserializeFunctionBundle(*serialized);
  ASSERT_TRUE(bundle.ok());
  ASSERT_EQ(bundle->size(), 3u);  // outer + both branches

  EagerContext::Options options;
  options.register_sim_gpu = false;
  options.register_sim_tpu = false;
  EagerContext production(options);
  for (const auto& fn : *bundle) {
    ASSERT_TRUE(production.functions().Register(fn).ok());
  }
  AttrMap attrs;
  attrs["function"] = AttrValue(bundle->front()->name());
  auto run = [&](const Tensor& x) {
    std::vector<Tensor> inputs = {x};
    for (const Capture& capture : bundle->front()->captures()) {
      inputs.push_back(capture.tensor);
    }
    auto out = production.RunPrimitive("Call", inputs, attrs, "");
    EXPECT_TRUE(out.ok()) << out.status().message();
    return (*out)[0];
  };
  EXPECT_FLOAT_EQ(run(pos).scalar<float>(), want_pos.scalar<float>());
  EXPECT_FLOAT_EQ(run(neg).scalar<float>(), 3.0f);  // untaken-at-trace branch
}

TEST(SerializationTest, WhileBundleRoundTrips) {
  // The While node references cond/body functions; the deserialized loop
  // must still iterate a data-dependent number of times.
  Function below = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::less(vars[0], vars[1])};
      },
      "ser_while_cond");
  Function twice = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::mul(vars[0], ops::fill(DType::kFloat32, {}, 2.0)),
                vars[1]};
      },
      "ser_while_body");
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return ops::while_loop(below, twice, {args[0], args[1]});
      },
      "ser_while_outer");
  Tensor one = ops::scalar<float>(1.0f);
  Tensor limit = ops::scalar<float>(10.0f);
  EXPECT_FLOAT_EQ(staged({one, limit})[0].scalar<float>(), 16.0f);

  auto concrete = staged.GetConcreteFunction({one, limit});
  ASSERT_TRUE(concrete.ok());
  auto serialized = SerializeFunctionBundle(
      **concrete, EagerContext::Global()->functions());
  ASSERT_TRUE(serialized.ok());
  auto bundle = DeserializeFunctionBundle(*serialized);
  ASSERT_TRUE(bundle.ok());
  ASSERT_EQ(bundle->size(), 3u);  // outer + cond + body

  EagerContext::Options options;
  options.register_sim_gpu = false;
  options.register_sim_tpu = false;
  EagerContext production(options);
  for (const auto& fn : *bundle) {
    ASSERT_TRUE(production.functions().Register(fn).ok());
  }
  AttrMap attrs;
  attrs["function"] = AttrValue(bundle->front()->name());
  auto run = [&](float init, float lim) {
    std::vector<Tensor> inputs = {ops::scalar<float>(init),
                                  ops::scalar<float>(lim)};
    for (const Capture& capture : bundle->front()->captures()) {
      inputs.push_back(capture.tensor);
    }
    auto out = production.RunPrimitive("Call", inputs, attrs, "");
    EXPECT_TRUE(out.ok()) << out.status().message();
    return (*out)[0].scalar<float>();
  };
  EXPECT_FLOAT_EQ(run(1.0f, 10.0f), 16.0f);
  EXPECT_FLOAT_EQ(run(1.0f, 100.0f), 128.0f);  // more iterations than traced
}

TEST(SerializationTest, RecursiveCallBundleRoundTrips) {
  // A recursive function's graph Calls itself by name: the bundle's
  // transitive-closure walk must terminate on the cycle and the restored
  // function must recurse in the fresh runtime.
  std::vector<TypeAndShape> sig = {{DType::kFloat32, Shape({})}};
  auto fact = DefineRecursiveFunction(
      "ser_factorial", sig, sig,
      [](const std::vector<Tensor>& args)
          -> StatusOr<std::vector<Tensor>> {
        Tensor n = args[0];
        Function base = function(
            [](const std::vector<Tensor>& a) -> std::vector<Tensor> {
              return {ops::fill(DType::kFloat32, {}, 1.0)};
            },
            "ser_fact_base");
        Function recurse = function(
            [](const std::vector<Tensor>& a) -> std::vector<Tensor> {
              Tensor n_minus_1 =
                  ops::sub(a[0], ops::fill(DType::kFloat32, {}, 1.0));
              std::vector<Tensor> rec = ops::call(
                  "ser_factorial", {n_minus_1},
                  {{DType::kFloat32, Shape({})}});
              return {ops::mul(a[0], rec[0])};
            },
            "ser_fact_recurse");
        Tensor is_base =
            ops::less(n, ops::fill(DType::kFloat32, {}, 1.5));
        return ops::cond(is_base, base, recurse, {n});
      });
  ASSERT_TRUE(fact.ok()) << fact.status().message();

  auto serialized = SerializeFunctionBundle(
      **fact, EagerContext::Global()->functions());
  ASSERT_TRUE(serialized.ok()) << serialized.status().message();
  auto bundle = DeserializeFunctionBundle(*serialized);
  ASSERT_TRUE(bundle.ok());
  // factorial + cond branches (+ their callees, if any): the self-reference
  // must not duplicate the root.
  int roots = 0;
  for (const auto& fn : *bundle) {
    if (fn->name() == "ser_factorial") ++roots;
  }
  EXPECT_EQ(roots, 1);

  EagerContext::Options options;
  options.register_sim_gpu = false;
  options.register_sim_tpu = false;
  EagerContext production(options);
  for (const auto& fn : *bundle) {
    ASSERT_TRUE(production.functions().Register(fn).ok());
  }
  AttrMap attrs;
  attrs["function"] = AttrValue("ser_factorial");
  auto out = production.RunPrimitive(
      "Call", {ops::scalar<float>(5.0f)}, attrs, "");
  ASSERT_TRUE(out.ok()) << out.status().message();
  EXPECT_FLOAT_EQ((*out)[0].scalar<float>(), 120.0f);
}

TEST(SerializationTest, BundleRejectsGarbage) {
  EXPECT_FALSE(DeserializeFunctionBundle("").ok());
  EXPECT_FALSE(DeserializeFunctionBundle("tfe_bundle_v1").ok());
  EXPECT_FALSE(DeserializeFunctionBundle("tfe_bundle_v1 1 5:xxxxx").ok());
}

TEST(SerializationTest, ValueCapturesShipWithTheFunction) {
  Tensor weights = ops::constant<float>({2.0f, 4.0f}, {2});
  Function f = function(
      [weights](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(args[0], weights)};
      },
      "value_capture_ship");
  Tensor x = ops::constant<float>({10.0f, 10.0f}, {2});
  auto concrete = f.GetConcreteFunction({x});
  ASSERT_TRUE(concrete.ok());
  ASSERT_EQ((*concrete)->captures().size(), 1u);
  auto serialized = SerializeFunction(**concrete);
  ASSERT_TRUE(serialized.ok());
  auto restored = DeserializeFunction(*serialized);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ((*restored)->captures().size(), 1u);
  EXPECT_TRUE(tensor_util::AllClose(weights,
                                    (*restored)->captures()[0].tensor));
}

}  // namespace
}  // namespace tfe
