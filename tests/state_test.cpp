// Variables and checkpointing with graph-based state matching (paper §4.3).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "api/tfe.h"
#include "models/mlp.h"

namespace tfe {
namespace {

std::string TempDir(const std::string& tag) {
  std::string path =
      (std::filesystem::temp_directory_path() / ("tfe_ckpt_" + tag)).string();
  std::filesystem::remove_all(path);
  return path;
}

TEST(VariableTest, CreateReadAssign) {
  Variable v(ops::constant<float>({1, 2}, {2}), "v");
  EXPECT_EQ(v.name(), "v");
  EXPECT_EQ(v.shape(), Shape({2}));
  EXPECT_EQ(v.dtype(), DType::kFloat32);
  EXPECT_EQ(tensor_util::ToVector<float>(v.value()),
            (std::vector<float>{1, 2}));
  v.assign(ops::constant<float>({3, 4}, {2}));
  EXPECT_EQ(tensor_util::ToVector<float>(v.value()),
            (std::vector<float>{3, 4}));
  v.assign_add(ops::constant<float>({1, 1}, {2}));
  EXPECT_EQ(tensor_util::ToVector<float>(v.value()),
            (std::vector<float>{4, 5}));
  v.assign_sub(ops::constant<float>({2, 2}, {2}));
  EXPECT_EQ(tensor_util::ToVector<float>(v.value()),
            (std::vector<float>{2, 3}));
}

TEST(VariableTest, AssignShapeMismatchRejected) {
  Variable v(ops::scalar<float>(1.0f));
  EXPECT_THROW(v.assign(ops::constant<float>({1, 2}, {2})), RuntimeError);
  EXPECT_THROW(v.assign(ops::scalar<double>(1.0)), RuntimeError);
}

TEST(VariableTest, ReadsSnapshotOldValue) {
  // Buffer-swap semantics: a read taken before an assign keeps its value.
  Variable v(ops::scalar<float>(1.0f));
  Tensor before = v.value();
  v.assign(ops::scalar<float>(2.0f));
  EXPECT_FLOAT_EQ(before.scalar<float>(), 1.0f);
  EXPECT_FLOAT_EQ(v.value().scalar<float>(), 2.0f);
}

TEST(VariableTest, UniqueStoragePerObject) {
  Variable a(ops::scalar<float>(1.0f));
  Variable b(ops::scalar<float>(1.0f));
  a.assign(ops::scalar<float>(9.0f));
  EXPECT_FLOAT_EQ(b.value().scalar<float>(), 1.0f);
  EXPECT_NE(a.storage()->resource_id(), b.storage()->resource_id());
}

TEST(VariableTest, HandleIdentityIsStable) {
  Variable v(ops::scalar<float>(1.0f));
  int64_t id = v.handle().id();
  v.assign(ops::scalar<float>(2.0f));
  EXPECT_EQ(v.handle().id(), id);
}

// The Net model from the paper's Listing 3: a variable plus a dense layer,
// tracked as named edges.
class ListingThreeNet : public Checkpointable {
 public:
  ListingThreeNet()
      : v(ops::scalar<float>(1.0f), "net_v"), out(1, 1, false, 11, "out") {
    TrackVariable("v", v);
    TrackChild("out", &out);
  }
  Variable v;
  models::Dense out;
};

TEST(CheckpointTest, SaveRestoreRoundTrip) {
  std::string dir = TempDir("roundtrip");
  {
    Checkpoint checkpoint;
    ListingThreeNet net;
    checkpoint.TrackChild("net", &net);
    net.v.assign(ops::scalar<float>(42.0f));
    net.out.kernel().assign(ops::constant<float>({7.0f}, {1, 1}));
    ASSERT_TRUE(checkpoint.Save(dir).ok());
  }
  {
    Checkpoint checkpoint;
    ListingThreeNet net;  // fresh, default-initialized
    checkpoint.TrackChild("net", &net);
    EXPECT_FLOAT_EQ(net.v.value().scalar<float>(), 1.0f);
    auto report = checkpoint.Restore(dir);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->restored_variables, 3);  // v + kernel + bias
    EXPECT_FLOAT_EQ(net.v.value().scalar<float>(), 42.0f);
    EXPECT_FLOAT_EQ(net.out.kernel().value().scalar<float>(), 7.0f);
  }
}

TEST(CheckpointTest, MatchingIsLocalAndByEdgeName) {
  // Matching depends only on edge names from the root, not variable names
  // or creation order.
  std::string dir = TempDir("matching");
  {
    Checkpoint checkpoint;
    Variable a(ops::scalar<float>(10.0f), "completely_unrelated_name_1");
    Variable b(ops::scalar<float>(20.0f), "completely_unrelated_name_2");
    checkpoint.TrackVariable("alpha", a);
    checkpoint.TrackVariable("beta", b);
    ASSERT_TRUE(checkpoint.Save(dir).ok());
  }
  {
    Checkpoint checkpoint;
    // Created in the opposite order, with different variable names.
    Variable b(ops::scalar<float>(0.0f), "other_2");
    Variable a(ops::scalar<float>(0.0f), "other_1");
    checkpoint.TrackVariable("beta", b);
    checkpoint.TrackVariable("alpha", a);
    ASSERT_TRUE(checkpoint.Restore(dir).ok());
    EXPECT_FLOAT_EQ(a.value().scalar<float>(), 10.0f);
    EXPECT_FLOAT_EQ(b.value().scalar<float>(), 20.0f);
  }
}

TEST(CheckpointTest, PartialMatchesReported) {
  std::string dir = TempDir("partial");
  {
    Checkpoint checkpoint;
    Variable keep(ops::scalar<float>(1.0f));
    Variable dropped(ops::scalar<float>(2.0f));
    checkpoint.TrackVariable("keep", keep);
    checkpoint.TrackVariable("dropped", dropped);
    ASSERT_TRUE(checkpoint.Save(dir).ok());
  }
  {
    Checkpoint checkpoint;
    Variable keep(ops::scalar<float>(0.0f));
    Variable added(ops::scalar<float>(3.0f));
    checkpoint.TrackVariable("keep", keep);
    checkpoint.TrackVariable("added", added);
    auto report = checkpoint.Restore(dir);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->restored_variables, 1);
    ASSERT_EQ(report->unmatched_saved.size(), 1u);
    ASSERT_EQ(report->unmatched_live.size(), 1u);
    EXPECT_FLOAT_EQ(keep.value().scalar<float>(), 1.0f);
    EXPECT_FLOAT_EQ(added.value().scalar<float>(), 3.0f);  // untouched
  }
}

TEST(CheckpointTest, TwoModelCopiesRestoreIndependently) {
  // The paper's motivating scenario: "creating two copies of the same model
  // requires special consideration" under name-based matching; graph-based
  // matching handles it naturally.
  std::string dir = TempDir("two_copies");
  {
    Checkpoint checkpoint;
    ListingThreeNet first;
    ListingThreeNet second;
    first.v.assign(ops::scalar<float>(100.0f));
    second.v.assign(ops::scalar<float>(200.0f));
    checkpoint.TrackChild("first", &first);
    checkpoint.TrackChild("second", &second);
    ASSERT_TRUE(checkpoint.Save(dir).ok());
  }
  {
    Checkpoint checkpoint;
    ListingThreeNet first;
    ListingThreeNet second;
    checkpoint.TrackChild("first", &first);
    checkpoint.TrackChild("second", &second);
    ASSERT_TRUE(checkpoint.Restore(dir).ok());
    EXPECT_FLOAT_EQ(first.v.value().scalar<float>(), 100.0f);
    EXPECT_FLOAT_EQ(second.v.value().scalar<float>(), 200.0f);
  }
}

TEST(CheckpointTest, SharedObjectsSerializeOnce) {
  std::string dir = TempDir("diamond");
  Checkpoint checkpoint;
  ListingThreeNet shared;
  shared.v.assign(ops::scalar<float>(5.0f));
  checkpoint.TrackChild("left", &shared);
  checkpoint.TrackChild("right", &shared);  // diamond edge
  ASSERT_TRUE(checkpoint.Save(dir).ok());

  Checkpoint restore_checkpoint;
  ListingThreeNet fresh;
  restore_checkpoint.TrackChild("left", &fresh);
  restore_checkpoint.TrackChild("right", &fresh);
  ASSERT_TRUE(restore_checkpoint.Restore(dir).ok());
  EXPECT_FLOAT_EQ(fresh.v.value().scalar<float>(), 5.0f);
}

TEST(CheckpointTest, RestoreFromMissingDirectoryFails) {
  Checkpoint checkpoint;
  EXPECT_FALSE(checkpoint.Restore("/nonexistent/tfe/path").ok());
}

TEST(CheckpointTest, MlpTrainingStateRoundTrips) {
  std::string dir = TempDir("mlp");
  Tensor x = ops::random_normal({8, 4}, 0, 1, /*seed=*/21);
  Tensor labels = ops::constant<int64_t>({0, 1, 2, 0, 1, 2, 0, 1}, {8});
  std::vector<float> saved_logits;
  {
    models::MLP mlp({4, 16, 3}, /*seed=*/5);
    Checkpoint checkpoint;
    checkpoint.TrackChild("model", &mlp);
    for (int i = 0; i < 5; ++i) mlp.TrainStep(x, labels, 0.1);
    saved_logits = tensor_util::ToVector<float>(mlp(x));
    ASSERT_TRUE(checkpoint.Save(dir).ok());
  }
  {
    models::MLP mlp({4, 16, 3}, /*seed=*/77);  // different init
    Checkpoint checkpoint;
    checkpoint.TrackChild("model", &mlp);
    ASSERT_TRUE(checkpoint.Restore(dir).ok());
    EXPECT_EQ(tensor_util::ToVector<float>(mlp(x)), saved_logits);
  }
}

TEST(ObjectGraphTest, SerializeDeserializeRoundTrip) {
  Checkpoint root;
  ListingThreeNet net;
  root.TrackChild("net", &net);
  SavedObjectGraph graph = BuildObjectGraph(root, nullptr);
  std::string text = graph.Serialize();
  auto parsed = SavedObjectGraph::Deserialize(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->nodes.size(), graph.nodes.size());
  EXPECT_EQ(parsed->nodes[0].children, graph.nodes[0].children);
  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    EXPECT_EQ(parsed->nodes[i].variables, graph.nodes[i].variables);
  }
}

TEST(ObjectGraphTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(SavedObjectGraph::Deserialize("not a graph").ok());
  EXPECT_FALSE(
      SavedObjectGraph::Deserialize("object_graph_v1 1\nchild x 0\n").ok());
}

}  // namespace
}  // namespace tfe
