// GradientTape behavior (paper §4.2), including the paper's Listings 1 & 2.
#include <gtest/gtest.h>

#include <cmath>

#include "api/tfe.h"

namespace tfe {
namespace {

using tensor_util::ToVector;

Tensor Scalar(float v) { return ops::scalar<float>(v); }

TEST(TapeTest, SimpleSquare) {
  Tensor x = Scalar(3.0f);
  GradientTape tape;
  tape.watch(x);
  Tensor y = ops::mul(x, x);
  tape.StopRecording();
  auto grads = tape.gradient(y, {x});
  ASSERT_TRUE(grads.ok());
  EXPECT_FLOAT_EQ((*grads)[0].scalar<float>(), 6.0f);
}

TEST(TapeTest, Listing1NestedTapesSecondDerivative) {
  // Paper Listing 1, verbatim semantics: d2(x*x)/dx2 == 2.
  Tensor x = Scalar(3.0f);
  GradientTape t1;
  GradientTape t2;
  t1.watch(x);
  t2.watch(x);
  Tensor y = ops::mul(x, x);
  auto dy_dx = t2.gradient(y, {x});
  ASSERT_TRUE(dy_dx.ok());
  EXPECT_FLOAT_EQ((*dy_dx)[0].scalar<float>(), 6.0f);
  auto d2y_dx2 = t1.gradient((*dy_dx)[0], {x});
  ASSERT_TRUE(d2y_dx2.ok());
  EXPECT_FLOAT_EQ((*d2y_dx2)[0].scalar<float>(), 2.0f);
}

TEST(TapeTest, Listing2VariablesAutoWatched) {
  // Paper Listing 2: variables are watched automatically.
  Variable x(Scalar(3.0f));
  GradientTape t1;
  GradientTape t2;
  Tensor y = ops::mul(x.value(), x.value());
  auto dy_dx = t2.gradient(y, {x.handle()});
  ASSERT_TRUE(dy_dx.ok());
  EXPECT_FLOAT_EQ((*dy_dx)[0].scalar<float>(), 6.0f);
  auto d2y_dx2 = t1.gradient((*dy_dx)[0], {x.handle()});
  ASSERT_TRUE(d2y_dx2.ok());
  EXPECT_FLOAT_EQ((*d2y_dx2)[0].scalar<float>(), 2.0f);
}

TEST(TapeTest, ThirdDerivative) {
  Tensor x = Scalar(2.0f);
  GradientTape t1;
  GradientTape t2;
  GradientTape t3;
  t1.watch(x);
  t2.watch(x);
  t3.watch(x);
  Tensor y = ops::mul(ops::mul(x, x), x);  // x^3
  Tensor d1 = std::move(t3.gradient(y, {x})).value()[0];   // 3x^2 = 12
  Tensor d2 = std::move(t2.gradient(d1, {x})).value()[0];  // 6x = 12
  Tensor d3 = std::move(t1.gradient(d2, {x})).value()[0];  // 6
  EXPECT_FLOAT_EQ(d1.scalar<float>(), 12.0f);
  EXPECT_FLOAT_EQ(d2.scalar<float>(), 12.0f);
  EXPECT_FLOAT_EQ(d3.scalar<float>(), 6.0f);
}

TEST(TapeTest, UnwatchedSourceYieldsUndefined) {
  Tensor x = Scalar(1.0f);
  Tensor z = Scalar(2.0f);
  GradientTape tape;
  tape.watch(x);
  Tensor y = ops::mul(x, x);
  tape.StopRecording();
  auto grads = tape.gradient(y, {z});
  ASSERT_TRUE(grads.ok());
  EXPECT_FALSE((*grads)[0].defined());
}

TEST(TapeTest, NonPersistentSingleUse) {
  Tensor x = Scalar(1.0f);
  GradientTape tape;
  tape.watch(x);
  Tensor y = ops::mul(x, x);
  tape.StopRecording();
  ASSERT_TRUE(tape.gradient(y, {x}).ok());
  EXPECT_FALSE(tape.gradient(y, {x}).ok());
}

TEST(TapeTest, PersistentAllowsMultipleGradients) {
  Tensor x = Scalar(2.0f);
  GradientTape tape(/*persistent=*/true);
  tape.watch(x);
  Tensor y = ops::mul(x, x);
  Tensor z = ops::mul(y, x);
  tape.StopRecording();
  EXPECT_FLOAT_EQ(std::move(tape.gradient(y, {x})).value()[0].scalar<float>(),
                  4.0f);
  EXPECT_FLOAT_EQ(std::move(tape.gradient(z, {x})).value()[0].scalar<float>(),
                  12.0f);
}

TEST(TapeTest, FineGrainedControlOverTracing) {
  // "Exposing the tape lets users control which parts of the computation
  // are traced" (§4.2): ops outside any tape are not recorded.
  Tensor x = Scalar(2.0f);
  Tensor untracked = ops::mul(x, x);  // before the tape: not recorded
  GradientTape tape;
  tape.watch(x);
  Tensor y = ops::mul(untracked, x);
  tape.StopRecording();
  // d y/dx treats `untracked` as a constant 4: grad = 4, not 12.
  EXPECT_FLOAT_EQ(std::move(tape.gradient(y, {x})).value()[0].scalar<float>(),
                  4.0f);
  EXPECT_EQ(tape.num_entries(), 1);
}

TEST(TapeTest, StopGradientBlocksFlow) {
  Tensor x = Scalar(3.0f);
  GradientTape tape;
  tape.watch(x);
  Tensor y = ops::add(ops::mul(x, x), ops::stop_gradient(ops::mul(x, x)));
  tape.StopRecording();
  EXPECT_FLOAT_EQ(std::move(tape.gradient(y, {x})).value()[0].scalar<float>(),
                  6.0f);  // only the unblocked branch contributes
}

TEST(TapeTest, OutputGradientSeed) {
  Tensor x = Scalar(3.0f);
  GradientTape tape;
  tape.watch(x);
  Tensor y = ops::mul(x, x);
  tape.StopRecording();
  auto grads = tape.gradient(y, {x}, {Scalar(10.0f)});
  ASSERT_TRUE(grads.ok());
  EXPECT_FLOAT_EQ((*grads)[0].scalar<float>(), 60.0f);
}

TEST(TapeTest, FanOutAccumulates) {
  Tensor x = Scalar(2.0f);
  GradientTape tape;
  tape.watch(x);
  Tensor y = ops::add(ops::mul(x, x), ops::mul(x, x));
  tape.StopRecording();
  EXPECT_FLOAT_EQ(std::move(tape.gradient(y, {x})).value()[0].scalar<float>(),
                  8.0f);
}

TEST(TapeTest, NonScalarTargetSumsImplicitly) {
  Tensor x = ops::constant<float>({1, 2, 3}, {3});
  GradientTape tape;
  tape.watch(x);
  Tensor y = ops::mul(x, x);
  tape.StopRecording();
  EXPECT_EQ(ToVector<float>(std::move(tape.gradient(y, {x})).value()[0]),
            (std::vector<float>{2, 4, 6}));
}

TEST(TapeTest, BroadcastGradientsReduceCorrectly) {
  Tensor matrix = ops::constant<float>({1, 2, 3, 4}, {2, 2});
  Tensor row = ops::constant<float>({1, 1}, {2});
  GradientTape tape;
  tape.watch(matrix);
  tape.watch(row);
  Tensor y = ops::reduce_sum(ops::mul(matrix, row));
  tape.StopRecording();
  auto grads = std::move(tape.gradient(y, {matrix, row})).value();
  EXPECT_EQ(grads[0].shape(), Shape({2, 2}));
  EXPECT_EQ(grads[1].shape(), Shape({2}));
  EXPECT_EQ(ToVector<float>(grads[1]), (std::vector<float>{4, 6}));
}

TEST(TapeTest, MatMulGradient) {
  Tensor a = ops::constant<float>({1, 2, 3, 4}, {2, 2});
  Tensor b = ops::constant<float>({5, 6, 7, 8}, {2, 2});
  GradientTape tape;
  tape.watch(a);
  tape.watch(b);
  Tensor y = ops::reduce_sum(ops::matmul(a, b));
  tape.StopRecording();
  auto grads = std::move(tape.gradient(y, {a, b})).value();
  // d/dA sum(AB) = ones @ B^T
  EXPECT_EQ(ToVector<float>(grads[0]), (std::vector<float>{11, 15, 11, 15}));
  EXPECT_EQ(ToVector<float>(grads[1]), (std::vector<float>{4, 4, 6, 6}));
}

TEST(TapeTest, VariableUpdateThenGradientSeesNewValue) {
  Variable v(Scalar(2.0f));
  v.assign(Scalar(5.0f));
  GradientTape tape;
  Tensor y = ops::mul(v.value(), v.value());
  tape.StopRecording();
  EXPECT_FLOAT_EQ(y.scalar<float>(), 25.0f);
  EXPECT_FLOAT_EQ(std::move(gradient(tape, y, {v}))[0].scalar<float>(),
                  10.0f);
}

TEST(TapeTest, MultipleVariableReadsAccumulate) {
  Variable v(Scalar(3.0f));
  GradientTape tape;
  // Two separate reads of the same variable.
  Tensor y = ops::mul(v.value(), v.value());
  tape.StopRecording();
  EXPECT_FLOAT_EQ(std::move(gradient(tape, y, {v}))[0].scalar<float>(),
                  6.0f);
}

TEST(TapeTest, GradThroughXent) {
  Tensor logits = ops::constant<float>({1, 2}, {1, 2});
  Tensor labels = ops::constant<int64_t>({1}, {1});
  GradientTape tape;
  tape.watch(logits);
  Tensor loss = ops::reduce_mean(
      ops::sparse_softmax_cross_entropy_with_logits(logits, labels));
  tape.StopRecording();
  auto grads = std::move(tape.gradient(loss, {logits})).value();
  std::vector<float> g = ToVector<float>(grads[0]);
  float p0 = std::exp(1.0f) / (std::exp(1.0f) + std::exp(2.0f));
  EXPECT_NEAR(g[0], p0, 1e-5);
  EXPECT_NEAR(g[1], (1 - p0) - 1, 1e-5);
}

TEST(TapeTest, GatherGradientScattersIntoParams) {
  Tensor params = ops::constant<float>({1, 2, 3}, {3});
  Tensor indices = ops::constant<int32_t>({2, 2, 0}, {3});
  GradientTape tape;
  tape.watch(params);
  Tensor y = ops::reduce_sum(ops::gather(params, indices));
  tape.StopRecording();
  auto grads = std::move(tape.gradient(y, {params})).value();
  EXPECT_EQ(ToVector<float>(grads[0]), (std::vector<float>{1, 0, 2}));
}

TEST(TapeTest, HigherOrderThroughExp) {
  Tensor x = Scalar(0.5f);
  GradientTape outer;
  outer.watch(x);
  Tensor d1;
  {
    GradientTape inner;
    inner.watch(x);
    Tensor y = ops::exp(x);
    inner.StopRecording();
    d1 = std::move(inner.gradient(y, {x})).value()[0];
  }
  outer.StopRecording();
  Tensor d2 = std::move(outer.gradient(d1, {x})).value()[0];
  EXPECT_NEAR(d2.scalar<float>(), std::exp(0.5f), 1e-5);
}

// ---- Finite-difference property tests over the differentiable op set. -----

struct UnaryGradCase {
  std::string name;
  std::function<Tensor(const Tensor&)> fn;
  std::vector<float> probe_points;
};

class UnaryGradientCheck : public ::testing::TestWithParam<UnaryGradCase> {};

TEST_P(UnaryGradientCheck, MatchesFiniteDifference) {
  const UnaryGradCase& test_case = GetParam();
  for (float point : test_case.probe_points) {
    Tensor x = ops::scalar<float>(point);
    GradientTape tape;
    tape.watch(x);
    Tensor y = test_case.fn(x);
    tape.StopRecording();
    Tensor grad = std::move(tape.gradient(y, {x})).value()[0];
    ASSERT_TRUE(grad.defined()) << test_case.name;

    const float eps = 1e-3f;
    float up = test_case.fn(ops::scalar<float>(point + eps)).scalar<float>();
    float down = test_case.fn(ops::scalar<float>(point - eps)).scalar<float>();
    float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(grad.scalar<float>(), numeric,
                1e-2 * (1 + std::abs(numeric)))
        << test_case.name << " at " << point;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradientCheck,
    ::testing::Values(
        UnaryGradCase{"neg", [](const Tensor& x) { return ops::neg(x); },
                      {-1.5f, 2.0f}},
        UnaryGradCase{"abs", [](const Tensor& x) { return ops::abs(x); },
                      {-1.5f, 2.0f}},
        UnaryGradCase{"exp", [](const Tensor& x) { return ops::exp(x); },
                      {-1.0f, 0.5f}},
        UnaryGradCase{"log", [](const Tensor& x) { return ops::log(x); },
                      {0.5f, 2.0f}},
        UnaryGradCase{"sqrt", [](const Tensor& x) { return ops::sqrt(x); },
                      {0.25f, 4.0f}},
        UnaryGradCase{"rsqrt", [](const Tensor& x) { return ops::rsqrt(x); },
                      {0.25f, 4.0f}},
        UnaryGradCase{"square",
                      [](const Tensor& x) { return ops::square(x); },
                      {-2.0f, 3.0f}},
        UnaryGradCase{"tanh", [](const Tensor& x) { return ops::tanh(x); },
                      {-0.7f, 0.3f}},
        UnaryGradCase{"sigmoid",
                      [](const Tensor& x) { return ops::sigmoid(x); },
                      {-1.0f, 1.0f}},
        UnaryGradCase{"relu", [](const Tensor& x) { return ops::relu(x); },
                      {-1.0f, 2.0f}},
        UnaryGradCase{"sin", [](const Tensor& x) { return ops::sin(x); },
                      {0.3f, 1.2f}},
        UnaryGradCase{"cos", [](const Tensor& x) { return ops::cos(x); },
                      {0.3f, 1.2f}},
        UnaryGradCase{"reciprocal",
                      [](const Tensor& x) { return ops::reciprocal(x); },
                      {0.5f, 2.0f}},
        UnaryGradCase{"softplus_composite",
                      [](const Tensor& x) {
                        return ops::log(ops::add(ops::exp(x),
                                                 ops::ones_like(x)));
                      },
                      {-1.0f, 1.0f}}),
    [](const ::testing::TestParamInfo<UnaryGradCase>& info) {
      return info.param.name;
    });

struct BinaryGradCase {
  std::string name;
  std::function<Tensor(const Tensor&, const Tensor&)> fn;
  float a, b;
};

class BinaryGradientCheck : public ::testing::TestWithParam<BinaryGradCase> {};

TEST_P(BinaryGradientCheck, MatchesFiniteDifference) {
  const BinaryGradCase& test_case = GetParam();
  Tensor a = ops::scalar<float>(test_case.a);
  Tensor b = ops::scalar<float>(test_case.b);
  GradientTape tape;
  tape.watch(a);
  tape.watch(b);
  Tensor y = test_case.fn(a, b);
  tape.StopRecording();
  auto grads = std::move(tape.gradient(y, {a, b})).value();

  const float eps = 1e-3f;
  auto eval = [&](float va, float vb) {
    return test_case.fn(ops::scalar<float>(va), ops::scalar<float>(vb))
        .scalar<float>();
  };
  float da = (eval(test_case.a + eps, test_case.b) -
              eval(test_case.a - eps, test_case.b)) /
             (2 * eps);
  float db = (eval(test_case.a, test_case.b + eps) -
              eval(test_case.a, test_case.b - eps)) /
             (2 * eps);
  ASSERT_TRUE(grads[0].defined());
  ASSERT_TRUE(grads[1].defined());
  EXPECT_NEAR(grads[0].scalar<float>(), da, 1e-2 * (1 + std::abs(da)))
      << test_case.name;
  EXPECT_NEAR(grads[1].scalar<float>(), db, 1e-2 * (1 + std::abs(db)))
      << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBinaryOps, BinaryGradientCheck,
    ::testing::Values(
        BinaryGradCase{"add", ops::add, 1.5f, -2.0f},
        BinaryGradCase{"sub", ops::sub, 1.5f, -2.0f},
        BinaryGradCase{"mul", ops::mul, 1.5f, -2.0f},
        BinaryGradCase{"div", ops::div, 1.5f, -2.0f},
        BinaryGradCase{"pow", ops::pow, 1.5f, 2.5f},
        BinaryGradCase{"maximum", ops::maximum, 1.5f, -2.0f},
        BinaryGradCase{"minimum", ops::minimum, 1.5f, -2.0f},
        BinaryGradCase{"squared_difference", ops::squared_difference, 1.5f,
                       -2.0f}),
    [](const ::testing::TestParamInfo<BinaryGradCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tfe
