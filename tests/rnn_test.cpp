// LSTM / RNN drivers: unrolled (host loop, differentiable) vs. dynamic
// (staged while_loop with data-dependent iteration count).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "api/tfe.h"
#include "models/mlp.h"
#include "models/rnn.h"

namespace tfe {
namespace {

TEST(LstmTest, SingleStepShapesAndBounds) {
  models::LSTMCell cell(3, 4, /*seed=*/9);
  Tensor x = ops::random_normal({2, 3}, 0, 1, /*seed=*/10);
  auto state = cell(x, cell.ZeroState(2));
  EXPECT_EQ(state.h.shape(), Shape({2, 4}));
  EXPECT_EQ(state.c.shape(), Shape({2, 4}));
  for (float value : tensor_util::ToVector<float>(state.h)) {
    EXPECT_GE(value, -1.0f);  // h = o * tanh(c)
    EXPECT_LE(value, 1.0f);
  }
}

TEST(LstmTest, ForgetEverythingWithZeroInput) {
  // With zero kernel/bias, gates sit at sigmoid(0)=0.5, candidate tanh(0)=0:
  // c' = 0.5*c, h' = 0.5*tanh(c').
  models::LSTMCell cell(2, 2, /*seed=*/1);
  cell.variables()[0].assign(ops::zeros(DType::kFloat32, {4, 8}));
  cell.variables()[1].assign(ops::zeros(DType::kFloat32, {8}));
  Tensor x = ops::zeros(DType::kFloat32, {1, 2});
  models::LSTMCell::State state;
  state.h = ops::zeros(DType::kFloat32, {1, 2});
  state.c = ops::constant<float>({2.0f, -2.0f}, {1, 2});
  auto next = cell(x, state);
  EXPECT_NEAR(next.c.data<float>()[0], 1.0f, 1e-5);
  EXPECT_NEAR(next.c.data<float>()[1], -1.0f, 1e-5);
  EXPECT_NEAR(next.h.data<float>()[0], 0.5f * std::tanh(1.0f), 1e-5);
}

TEST(RnnTest, DynamicMatchesUnrolledAtFullLength) {
  models::LSTMCell cell(3, 5, /*seed=*/21);
  Tensor sequence = ops::random_normal({2, 6, 3}, 0, 1, /*seed=*/22);
  Tensor unrolled = models::UnrolledRnn(cell, sequence);
  Tensor dynamic = models::DynamicRnn(cell, sequence,
                                      ops::fill(DType::kInt32, {}, 6.0));
  EXPECT_TRUE(tensor_util::AllClose(unrolled, dynamic, 1e-5, 1e-6));
}

TEST(RnnTest, DynamicStopsAtRuntimeLength) {
  models::LSTMCell cell(3, 5, /*seed=*/31);
  Tensor sequence = ops::random_normal({1, 8, 3}, 0, 1, /*seed=*/32);
  // Truncated run == unrolled run over the prefix.
  Tensor prefix = ops::slice(sequence, {0, 0, 3 - 3}, {-1, 3, -1});
  Tensor expected = models::UnrolledRnn(cell, prefix);
  Tensor dynamic = models::DynamicRnn(cell, sequence,
                                      ops::fill(DType::kInt32, {}, 3.0));
  EXPECT_TRUE(tensor_util::AllClose(expected, dynamic, 1e-5, 1e-6));
}

TEST(RnnTest, DynamicRnnInsideOneStagedTrace) {
  // One trace serves every sequence length — the tf.while payoff.
  models::LSTMCell cell(2, 3, /*seed=*/41);
  Tensor sequence = ops::random_normal({1, 10, 2}, 0, 1, /*seed=*/42);
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {models::DynamicRnn(cell, sequence, args[0])};
      },
      "staged_dynamic_rnn");
  Tensor short_run = staged({ops::fill(DType::kInt32, {}, 2.0)})[0];
  Tensor long_run = staged({ops::fill(DType::kInt32, {}, 9.0)})[0];
  EXPECT_EQ(staged.num_traces(), 1);
  EXPECT_FALSE(tensor_util::AllClose(short_run, long_run));
  // Matches the eager dynamic run.
  Tensor eager = models::DynamicRnn(cell, sequence,
                                    ops::fill(DType::kInt32, {}, 9.0));
  EXPECT_TRUE(tensor_util::AllClose(eager, long_run, 1e-5, 1e-6));
}

TEST(RnnTest, DynamicRnnGradientMatchesUnrolled) {
  // DynamicRnn is differentiable now: the While gradient replays the step
  // function's backward per executed time step, threading the cell-variable
  // and sequence-capture gradients through accumulators. At full length the
  // gradients must match the unrolled host loop's tape gradients.
  models::LSTMCell cell(2, 3, /*seed=*/71);
  Tensor sequence = ops::random_normal({2, 5, 2}, 0, 1, /*seed=*/72);
  std::vector<Variable> vars = cell.variables();

  auto grads_of = [&](const std::function<Tensor()>& forward) {
    GradientTape tape;
    Tensor loss = ops::reduce_sum(forward());
    tape.StopRecording();
    return gradient(tape, loss, vars);
  };
  std::vector<Tensor> want =
      grads_of([&] { return models::UnrolledRnn(cell, sequence); });

  // Eager dynamic loop: per-iteration staged Calls on the tape.
  std::vector<Tensor> eager_grads = grads_of([&] {
    return models::DynamicRnn(cell, sequence,
                              ops::fill(DType::kInt32, {}, 5.0));
  });
  // Fully staged: ONE graph containing the While node; differentiating the
  // enclosing function goes through the While gradient.
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {models::DynamicRnn(cell, sequence, args[0])};
      },
      "grad_dynamic_rnn");
  std::vector<Tensor> staged_grads =
      grads_of([&] { return staged({ops::fill(DType::kInt32, {}, 5.0)})[0]; });

  ASSERT_EQ(want.size(), eager_grads.size());
  ASSERT_EQ(want.size(), staged_grads.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(tensor_util::AllClose(want[i], eager_grads[i], 1e-5, 1e-6))
        << "eager dynamic grad " << i;
    EXPECT_TRUE(tensor_util::AllClose(want[i], staged_grads[i], 1e-5, 1e-6))
        << "staged dynamic grad " << i;
  }
}

TEST(RnnTest, UnrolledRnnTrainable) {
  // Fit the final hidden state toward a target via the unrolled driver.
  models::LSTMCell cell(2, 2, /*seed=*/51);
  Tensor sequence = ops::random_normal({4, 5, 2}, 0, 1, /*seed=*/52);
  Tensor target = ops::fill(DType::kFloat32, {4, 2}, 0.5);
  auto loss_of = [&]() {
    return ops::reduce_mean(
        ops::square(ops::sub(models::UnrolledRnn(cell, sequence), target)));
  };
  float first = loss_of().scalar<float>();
  for (int i = 0; i < 40; ++i) {
    GradientTape tape;
    Tensor loss = loss_of();
    tape.StopRecording();
    std::vector<Variable> vars = cell.variables();
    models::ApplySgd(vars, gradient(tape, loss, vars), 0.5);
  }
  EXPECT_LT(loss_of().scalar<float>(), first * 0.5f);
}

TEST(RnnTest, StagedUnrolledGraphContainsTimeSteps) {
  models::LSTMCell cell(2, 2, /*seed=*/61);
  Tensor sequence = ops::random_normal({1, 4, 2}, 0, 1, /*seed=*/62);
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {models::UnrolledRnn(cell, args[0])};
      },
      "staged_unrolled_rnn");
  auto concrete = staged.GetConcreteFunction({sequence});
  ASSERT_TRUE(concrete.ok());
  int matmuls = 0;
  for (int i = 0; i < (*concrete)->graph().num_nodes(); ++i) {
    if ((*concrete)->graph().node(i).op == "MatMul") ++matmuls;
  }
  EXPECT_EQ(matmuls, 4);  // one per unrolled step (paper §4.1)
  EXPECT_TRUE(tensor_util::AllClose(models::UnrolledRnn(cell, sequence),
                                    staged({sequence})[0], 1e-5, 1e-6));
}

}  // namespace
}  // namespace tfe
