// Staged control flow (tf.cond / tf.while_loop analogs, paper §4.1) and the
// mutable hash table (§4.3).
#include <gtest/gtest.h>

#include <filesystem>

#include "api/tfe.h"
#include "staging/control_flow.h"
#include "state/hash_table.h"
#include "models/optimizers.h"

namespace tfe {
namespace {

using tensor_util::ToVector;

Function DoubleFn() {
  return function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(args[0], ops::fill(DType::kFloat32, {}, 2.0))};
      },
      "double_branch");
}

Function SquareFn() {
  return function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::square(args[0])};
      },
      "square_branch");
}

TEST(CondTest, EagerPicksBranchByValue) {
  Function t = DoubleFn();
  Function f = SquareFn();
  Tensor x = ops::scalar<float>(3.0f);
  EXPECT_FLOAT_EQ(
      ops::cond(ops::constant<bool>({true}, {}), t, f, {x})[0].scalar<float>(),
      6.0f);
  EXPECT_FLOAT_EQ(
      ops::cond(ops::constant<bool>({false}, {}), t, f, {x})[0].scalar<float>(),
      9.0f);
}

TEST(CondTest, StagedCondChoosesAtExecutionTime) {
  // Unlike baked host conditionals, a staged cond re-decides per execution.
  Function t = DoubleFn();
  Function f = SquareFn();
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor is_positive = ops::greater(args[0], ops::zeros_like(args[0]));
        return ops::cond(is_positive, t, f, {args[0]});
      },
      "staged_cond");
  EXPECT_FLOAT_EQ(staged({ops::scalar<float>(3.0f)})[0].scalar<float>(),
                  6.0f);  // positive -> doubled
  EXPECT_FLOAT_EQ(staged({ops::scalar<float>(-3.0f)})[0].scalar<float>(),
                  9.0f);  // negative -> squared
  EXPECT_EQ(staged.num_traces(), 1);  // ONE graph serves both outcomes
}

TEST(CondTest, BranchesWithCaptures) {
  Tensor bonus = ops::scalar<float>(100.0f);
  Function with_bonus = function(
      [bonus](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args[0], bonus)};
      },
      "with_bonus");
  Function plain = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::identity(args[0])};
      },
      "plain");
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor big = ops::greater(args[0], ops::fill(DType::kFloat32, {}, 10.0));
        return ops::cond(big, with_bonus, plain, {args[0]});
      },
      "cond_captures");
  EXPECT_FLOAT_EQ(staged({ops::scalar<float>(20.0f)})[0].scalar<float>(),
                  120.0f);
  EXPECT_FLOAT_EQ(staged({ops::scalar<float>(5.0f)})[0].scalar<float>(),
                  5.0f);
}

TEST(CondTest, MismatchedBranchesRejected) {
  Function one_out = DoubleFn();
  Function two_out = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {args[0], args[0]};
      },
      "two_out");
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor pred = ops::greater(args[0], ops::zeros_like(args[0]));
        return ops::cond(pred, one_out, two_out, {args[0]});
      },
      "bad_cond");
  EXPECT_THROW(staged({ops::scalar<float>(1.0f)}), RuntimeError);
}

TEST(CondTest, GradientFlowsThroughTakenBranch) {
  Function t = DoubleFn();   // d/dx = 2
  Function f = SquareFn();   // d/dx = 2x
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor pred = ops::greater(args[0], ops::zeros_like(args[0]));
        return ops::cond(pred, t, f, {args[0]});
      },
      "grad_cond");
  for (float x_value : {3.0f, -3.0f}) {
    Tensor x = ops::scalar<float>(x_value);
    GradientTape tape;
    tape.watch(x);
    Tensor y = staged({x})[0];
    tape.StopRecording();
    Tensor grad = std::move(tape.gradient(y, {x})).value()[0];
    float expected = x_value > 0 ? 2.0f : 2.0f * x_value;
    EXPECT_FLOAT_EQ(grad.scalar<float>(), expected) << "at x=" << x_value;
  }
}

TEST(WhileTest, EagerLoop) {
  Function below_100 = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::less(vars[0], ops::fill(DType::kFloat32, {}, 100.0))};
      },
      "below_100");
  Function double_it = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::mul(vars[0], ops::fill(DType::kFloat32, {}, 2.0))};
      },
      "double_it");
  std::vector<Tensor> result =
      ops::while_loop(below_100, double_it, {ops::scalar<float>(3.0f)});
  EXPECT_FLOAT_EQ(result[0].scalar<float>(), 192.0f);  // 3*2^6
}

TEST(WhileTest, StagedLoopRunsDataDependentIterations) {
  Function below = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        // vars = {value, limit}
        return {ops::less(vars[0], vars[1])};
      },
      "below_limit");
  Function body = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::mul(vars[0], ops::fill(DType::kFloat32, {}, 2.0)),
                vars[1]};
      },
      "double_body");
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return ops::while_loop(below, body, {args[0], args[1]});
      },
      "staged_while");
  // Iteration count depends on the runtime values — impossible with an
  // unrolled host loop, exactly the paper's point about tf.while.
  EXPECT_FLOAT_EQ(
      staged({ops::scalar<float>(1.0f), ops::scalar<float>(10.0f)})[0]
          .scalar<float>(),
      16.0f);
  EXPECT_FLOAT_EQ(
      staged({ops::scalar<float>(1.0f), ops::scalar<float>(1000.0f)})[0]
          .scalar<float>(),
      1024.0f);
  EXPECT_EQ(staged.num_traces(), 1);
}

TEST(WhileTest, MaximumIterationsGuards) {
  Function always = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::constant<bool>({true}, {})};
      },
      "always_true");
  Function id_body = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {vars[0]};
      },
      "id_body");
  EXPECT_THROW(
      ops::while_loop(always, id_body, {ops::scalar<float>(1.0f)}, 10),
      RuntimeError);
}

TEST(HashTableTest, InsertLookupSize) {
  HashTable table(DType::kFloat32, Shape({2}));
  EXPECT_EQ(table.size().scalar<int64_t>(), 0);
  table.insert(ops::constant<int64_t>({1, 2}, {2}),
               ops::constant<float>({10, 11, 20, 21}, {2, 2}));
  EXPECT_EQ(table.size().scalar<int64_t>(), 2);
  Tensor found = table.lookup(ops::constant<int64_t>({2, 5, 1}, {3}),
                              ops::constant<float>({-1, -1}, {2}));
  EXPECT_EQ(ToVector<float>(found),
            (std::vector<float>{20, 21, -1, -1, 10, 11}));
}

TEST(HashTableTest, InsertOverwrites) {
  HashTable table(DType::kFloat32, Shape({}));
  table.insert(ops::constant<int64_t>({7}, {1}), ops::constant<float>({1}, {1}));
  table.insert(ops::constant<int64_t>({7}, {1}), ops::constant<float>({2}, {1}));
  EXPECT_EQ(table.size().scalar<int64_t>(), 1);
  Tensor found = table.lookup(ops::constant<int64_t>({7}, {1}),
                              ops::scalar<float>(0));
  EXPECT_FLOAT_EQ(found.data<float>()[0], 2.0f);
}

TEST(HashTableTest, WorksInsideStagedFunctions) {
  HashTable table(DType::kFloat32, Shape({}));
  Function remember = function(
      [&table](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor keys = ops::cast(args[0], DType::kInt64);
        table.insert(keys, args[1]);
        return {table.size()};
      },
      "remember");
  remember({ops::constant<int64_t>({1, 2}, {2}),
            ops::constant<float>({1.5f, 2.5f}, {2})});
  Tensor size = remember({ops::constant<int64_t>({3, 4}, {2}),
                          ops::constant<float>({3.5f, 4.5f}, {2})})[0];
  EXPECT_EQ(size.scalar<int64_t>(), 4);
  Tensor found = table.lookup(ops::constant<int64_t>({3}, {1}),
                              ops::scalar<float>(-1));
  EXPECT_FLOAT_EQ(found.data<float>()[0], 3.5f);
}

TEST(HashTableTest, CheckpointRoundTrip) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "tfe_table_ckpt").string();
  std::filesystem::remove_all(dir);
  {
    HashTable table(DType::kFloat32, Shape({2}));
    table.insert(ops::constant<int64_t>({5, 9}, {2}),
                 ops::constant<float>({1, 2, 3, 4}, {2, 2}));
    Checkpoint checkpoint;
    checkpoint.TrackChild("table", &table);
    ASSERT_TRUE(checkpoint.Save(dir).ok());
  }
  {
    HashTable table(DType::kFloat32, Shape({2}));
    Checkpoint checkpoint;
    checkpoint.TrackChild("table", &table);
    ASSERT_TRUE(checkpoint.Restore(dir).ok());
    EXPECT_EQ(table.size().scalar<int64_t>(), 2);
    Tensor found = table.lookup(ops::constant<int64_t>({9}, {1}),
                                ops::constant<float>({0, 0}, {2}));
    EXPECT_EQ(ToVector<float>(found), (std::vector<float>{3, 4}));
  }
}

TEST(OptimizerTest, SgdMomentumConverges) {
  // Minimize (w - 3)^2 with momentum; slots are created lazily.
  Variable w(ops::scalar<float>(0.0f));
  models::SGD sgd(0.1, 0.9);
  for (int i = 0; i < 200; ++i) {
    GradientTape tape;
    Tensor loss = ops::square(ops::sub(w.value(), ops::scalar<float>(3.0f)));
    tape.StopRecording();
    sgd.ApplyGradients({w}, gradient(tape, loss, {w}));
  }
  EXPECT_NEAR(w.value().scalar<float>(), 3.0f, 0.1f);
  EXPECT_EQ(sgd.tracked_variables().size(), 1u);  // one momentum slot
}

TEST(OptimizerTest, AdamInsideStagedTrainStep) {
  Variable w(ops::constant<float>({0, 0}, {2}));
  models::Adam adam(0.1);
  Tensor target = ops::constant<float>({1.0f, -2.0f}, {2});
  Function step = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        GradientTape tape;
        Tensor loss =
            ops::reduce_sum(ops::square(ops::sub(w.value(), args[0])));
        tape.StopRecording();
        adam.ApplyGradients({w}, gradient(tape, loss, {w}));
        return {loss};
      },
      "adam_step");
  float first = step({target})[0].scalar<float>();
  for (int i = 0; i < 100; ++i) step({target});
  float last = step({target})[0].scalar<float>();
  EXPECT_LT(last, first * 0.01f);
  EXPECT_EQ(step.num_traces(), 1);
  EXPECT_EQ(adam.tracked_variables().size(), 3u);  // step + m + v
}

TEST(OptimizerTest, OptimizerStateCheckpoints) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "tfe_opt_ckpt").string();
  std::filesystem::remove_all(dir);
  Variable w(ops::scalar<float>(0.0f));
  models::SGD sgd(0.1, 0.9);
  {
    GradientTape tape;
    Tensor loss = ops::square(ops::sub(w.value(), ops::scalar<float>(3.0f)));
    tape.StopRecording();
    sgd.ApplyGradients({w}, gradient(tape, loss, {w}));
  }
  Checkpoint checkpoint;
  checkpoint.TrackChild("optimizer", &sgd);
  ASSERT_TRUE(checkpoint.Save(dir).ok());

  models::SGD restored_sgd(0.1, 0.9);
  Variable w2(ops::scalar<float>(0.0f));
  // Slots match by tracked edge name; create the slot first.
  {
    GradientTape tape;
    Tensor loss = ops::square(ops::sub(w2.value(), ops::scalar<float>(3.0f)));
    tape.StopRecording();
    restored_sgd.ApplyGradients({w2}, gradient(tape, loss, {w2}));
  }
  Checkpoint restore_checkpoint;
  restore_checkpoint.TrackChild("optimizer", &restored_sgd);
  auto report = restore_checkpoint.Restore(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->restored_variables, 1);
}

}  // namespace
}  // namespace tfe
