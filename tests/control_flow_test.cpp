// Staged control flow (tf.cond / tf.while_loop analogs, paper §4.1) and the
// mutable hash table (§4.3).
#include <gtest/gtest.h>

#include <filesystem>

#include "api/tfe.h"
#include "profiler/metrics.h"
#include "staging/control_flow.h"
#include "state/hash_table.h"
#include "models/optimizers.h"

namespace tfe {
namespace {

using tensor_util::ToVector;

Function DoubleFn() {
  return function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(args[0], ops::fill(DType::kFloat32, {}, 2.0))};
      },
      "double_branch");
}

Function SquareFn() {
  return function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::square(args[0])};
      },
      "square_branch");
}

TEST(CondTest, EagerPicksBranchByValue) {
  Function t = DoubleFn();
  Function f = SquareFn();
  Tensor x = ops::scalar<float>(3.0f);
  EXPECT_FLOAT_EQ(
      ops::cond(ops::constant<bool>({true}, {}), t, f, {x})[0].scalar<float>(),
      6.0f);
  EXPECT_FLOAT_EQ(
      ops::cond(ops::constant<bool>({false}, {}), t, f, {x})[0].scalar<float>(),
      9.0f);
}

TEST(CondTest, StagedCondChoosesAtExecutionTime) {
  // Unlike baked host conditionals, a staged cond re-decides per execution.
  Function t = DoubleFn();
  Function f = SquareFn();
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor is_positive = ops::greater(args[0], ops::zeros_like(args[0]));
        return ops::cond(is_positive, t, f, {args[0]});
      },
      "staged_cond");
  EXPECT_FLOAT_EQ(staged({ops::scalar<float>(3.0f)})[0].scalar<float>(),
                  6.0f);  // positive -> doubled
  EXPECT_FLOAT_EQ(staged({ops::scalar<float>(-3.0f)})[0].scalar<float>(),
                  9.0f);  // negative -> squared
  EXPECT_EQ(staged.num_traces(), 1);  // ONE graph serves both outcomes
}

TEST(CondTest, BranchesWithCaptures) {
  Tensor bonus = ops::scalar<float>(100.0f);
  Function with_bonus = function(
      [bonus](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args[0], bonus)};
      },
      "with_bonus");
  Function plain = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::identity(args[0])};
      },
      "plain");
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor big = ops::greater(args[0], ops::fill(DType::kFloat32, {}, 10.0));
        return ops::cond(big, with_bonus, plain, {args[0]});
      },
      "cond_captures");
  EXPECT_FLOAT_EQ(staged({ops::scalar<float>(20.0f)})[0].scalar<float>(),
                  120.0f);
  EXPECT_FLOAT_EQ(staged({ops::scalar<float>(5.0f)})[0].scalar<float>(),
                  5.0f);
}

TEST(CondTest, MismatchedBranchesRejected) {
  Function one_out = DoubleFn();
  Function two_out = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {args[0], args[0]};
      },
      "two_out");
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor pred = ops::greater(args[0], ops::zeros_like(args[0]));
        return ops::cond(pred, one_out, two_out, {args[0]});
      },
      "bad_cond");
  EXPECT_THROW(staged({ops::scalar<float>(1.0f)}), RuntimeError);
}

TEST(CondTest, GradientFlowsThroughTakenBranch) {
  Function t = DoubleFn();   // d/dx = 2
  Function f = SquareFn();   // d/dx = 2x
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor pred = ops::greater(args[0], ops::zeros_like(args[0]));
        return ops::cond(pred, t, f, {args[0]});
      },
      "grad_cond");
  for (float x_value : {3.0f, -3.0f}) {
    Tensor x = ops::scalar<float>(x_value);
    GradientTape tape;
    tape.watch(x);
    Tensor y = staged({x})[0];
    tape.StopRecording();
    Tensor grad = std::move(tape.gradient(y, {x})).value()[0];
    float expected = x_value > 0 ? 2.0f : 2.0f * x_value;
    EXPECT_FLOAT_EQ(grad.scalar<float>(), expected) << "at x=" << x_value;
  }
}

TEST(WhileTest, EagerLoop) {
  Function below_100 = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::less(vars[0], ops::fill(DType::kFloat32, {}, 100.0))};
      },
      "below_100");
  Function double_it = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::mul(vars[0], ops::fill(DType::kFloat32, {}, 2.0))};
      },
      "double_it");
  std::vector<Tensor> result =
      ops::while_loop(below_100, double_it, {ops::scalar<float>(3.0f)});
  EXPECT_FLOAT_EQ(result[0].scalar<float>(), 192.0f);  // 3*2^6
}

TEST(WhileTest, StagedLoopRunsDataDependentIterations) {
  Function below = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        // vars = {value, limit}
        return {ops::less(vars[0], vars[1])};
      },
      "below_limit");
  Function body = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::mul(vars[0], ops::fill(DType::kFloat32, {}, 2.0)),
                vars[1]};
      },
      "double_body");
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return ops::while_loop(below, body, {args[0], args[1]});
      },
      "staged_while");
  // Iteration count depends on the runtime values — impossible with an
  // unrolled host loop, exactly the paper's point about tf.while.
  EXPECT_FLOAT_EQ(
      staged({ops::scalar<float>(1.0f), ops::scalar<float>(10.0f)})[0]
          .scalar<float>(),
      16.0f);
  EXPECT_FLOAT_EQ(
      staged({ops::scalar<float>(1.0f), ops::scalar<float>(1000.0f)})[0]
          .scalar<float>(),
      1024.0f);
  EXPECT_EQ(staged.num_traces(), 1);
}

TEST(WhileTest, MaximumIterationsGuards) {
  Function always = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::constant<bool>({true}, {})};
      },
      "always_true");
  Function id_body = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {vars[0]};
      },
      "id_body");
  EXPECT_THROW(
      ops::while_loop(always, id_body, {ops::scalar<float>(1.0f)}, 10),
      RuntimeError);
}

TEST(WhileGradTest, BitwiseMatchesUnrolledTapeGradient) {
  // The acceptance bar for the While gradient: replaying the staged body
  // backward per iteration (with capture grads threaded through zero-seeded
  // accumulators) must reproduce the eager tape's gradient BITWISE, because
  // both reduce to the same flat left-fold of per-op contributions in the
  // same reverse order. `w` is used twice per iteration so accumulation
  // order inside an iteration matters too.
  Tensor w = ops::scalar<float>(1.1f);
  Tensor b = ops::scalar<float>(0.25f);
  const int kIters = 5;
  auto step = [&](const Tensor& x) {
    return ops::add(ops::add(ops::mul(x, w), b),
                    ops::mul(ops::square(x), w));
  };

  // Unrolled baseline: the same body math applied eagerly, op by op, under
  // a tape.
  Tensor x0 = ops::scalar<float>(0.5f);
  GradientTape unrolled;
  unrolled.watch(x0);
  unrolled.watch(w);
  unrolled.watch(b);
  Tensor x = x0;
  for (int i = 0; i < kIters; ++i) x = step(x);
  unrolled.StopRecording();
  std::vector<Tensor> want =
      std::move(unrolled.gradient(x, {x0, w, b})).value();

  // Staged: one While node over vars {counter, x}; w and b ride along as
  // value captures of the body function.
  Function below = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::less(vars[0], ops::fill(DType::kFloat32, {}, 5.0))};
      },
      "wg_below");
  Function body = function(
      [&](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::add(vars[0], ops::fill(DType::kFloat32, {}, 1.0)),
                step(vars[1])};
      },
      "wg_body");
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::while_loop(below, body, {args[0], args[1]})[1]};
      },
      "wg_staged");
  GradientTape tape;
  tape.watch(x0);
  tape.watch(w);
  tape.watch(b);
  Tensor y = staged({ops::scalar<float>(0.0f), x0})[0];
  tape.StopRecording();
  std::vector<Tensor> got = std::move(tape.gradient(y, {x0, w, b})).value();

  EXPECT_EQ(y.scalar<float>(), x.scalar<float>());  // forward parity first
  ASSERT_EQ(got.size(), want.size());
  const char* names[] = {"dx0", "dw", "db"};
  for (size_t i = 0; i < got.size(); ++i) {
    float g = got[i].scalar<float>();
    float e = want[i].scalar<float>();
    EXPECT_EQ(g, e) << names[i] << " diverged: staged=" << g
                    << " unrolled=" << e;
  }
}

TEST(WhileGradTest, DataDependentIterationCount) {
  // One staged trace; the gradient replays however many iterations the
  // forward pass actually ran — 2^N with N decided at execution time.
  Function below = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::less(vars[0], vars[1])};  // {value, limit}
      },
      "wgd_below");
  Function body = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::mul(vars[0], ops::fill(DType::kFloat32, {}, 2.0)),
                vars[1]};
      },
      "wgd_body");
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::while_loop(below, body, {args[0], args[1]})[0]};
      },
      "wgd_staged");
  struct Case { float limit; float expected_grad; };
  for (const Case& c : {Case{10.0f, 16.0f}, Case{1000.0f, 1024.0f}}) {
    Tensor x = ops::scalar<float>(1.0f);
    GradientTape tape;
    tape.watch(x);
    Tensor y = staged({x, ops::scalar<float>(c.limit)})[0];
    tape.StopRecording();
    Tensor grad = std::move(tape.gradient(y, {x})).value()[0];
    EXPECT_FLOAT_EQ(grad.scalar<float>(), c.expected_grad)
        << "limit=" << c.limit;
  }
  EXPECT_EQ(staged.num_traces(), 1);
}

TEST(WhileGradTest, OneGraphTrainingStep) {
  // Forward while_loop AND its gradient staged into a single graph
  // function: the tape lives inside the trace, so tape.gradient records a
  // WhileGrad node instead of running one. `w` is threaded as a loop
  // variable (passes through each iteration unchanged), exercising
  // loop-variable gradient accumulation across iterations.
  const int kIters = 4;
  auto step = [](const Tensor& x, const Tensor& w) {
    return ops::add(ops::mul(x, w), ops::mul(ops::square(x), w));
  };
  Function below = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::less(vars[0], ops::fill(DType::kFloat32, {}, 4.0))};
      },
      "wgt_below");
  Function body = function(
      [&](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::add(vars[0], ops::fill(DType::kFloat32, {}, 1.0)),
                step(vars[1], vars[2]), vars[2]};
      },
      "wgt_body");
  Function train = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        // args = {x0, w}
        GradientTape tape;
        tape.watch(args[0]);
        tape.watch(args[1]);
        Tensor zero = ops::fill(DType::kFloat32, {}, 0.0);
        std::vector<Tensor> out =
            ops::while_loop(below, body, {zero, args[0], args[1]});
        Tensor y = out[1];
        tape.StopRecording();
        std::vector<Tensor> grads =
            std::move(tape.gradient(y, {args[0], args[1]})).value();
        return {y, grads[0], grads[1]};
      },
      "wgt_train");

  auto eager_reference = [&](float x0v, float wv) {
    Tensor x0 = ops::scalar<float>(x0v);
    Tensor w = ops::scalar<float>(wv);
    GradientTape tape;
    tape.watch(x0);
    tape.watch(w);
    Tensor x = x0;
    for (int i = 0; i < kIters; ++i) x = step(x, w);
    tape.StopRecording();
    std::vector<Tensor> grads =
        std::move(tape.gradient(x, {x0, w})).value();
    return std::vector<float>{x.scalar<float>(), grads[0].scalar<float>(),
                              grads[1].scalar<float>()};
  };

  struct Case { float x0, w; };
  for (const Case& c : {Case{0.5f, 1.1f}, Case{0.25f, 0.9f}}) {
    std::vector<Tensor> got =
        train({ops::scalar<float>(c.x0), ops::scalar<float>(c.w)});
    std::vector<float> want = eager_reference(c.x0, c.w);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_FLOAT_EQ(got[i].scalar<float>(), want[i])
          << "output " << i << " at x0=" << c.x0;
    }
  }
  EXPECT_EQ(train.num_traces(), 1);  // forward + backward in ONE graph
}

TEST(WhileTest, LoopMetricsAndBodyCacheHits) {
  profiler::Counter* iters =
      profiler::Metrics().GetCounter("loop.iterations");
  profiler::Counter* hits =
      profiler::Metrics().GetCounter("loop.body_cache_hit");
  uint64_t iters_before = iters->value();
  uint64_t hits_before = hits->value();

  Function below = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::less(vars[0], ops::fill(DType::kFloat32, {}, 8.0))};
      },
      "lm_below");
  Function body = function(
      [](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::add(vars[0], ops::fill(DType::kFloat32, {}, 1.0))};
      },
      "lm_body");
  Function staged = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return ops::while_loop(below, body, {args[0]});
      },
      "lm_staged");
  Tensor out = staged({ops::scalar<float>(0.0f)})[0];
  EXPECT_FLOAT_EQ(out.scalar<float>(), 8.0f);

  uint64_t ran = iters->value() - iters_before;
  uint64_t hit = hits->value() - hits_before;
  EXPECT_EQ(ran, 8u);
  // The body's execution variant is resolved once, before the loop; at
  // worst the first iteration pays the build, all later ones hit (the
  // >=90% steady-state acceptance bar).
  EXPECT_GE(hit, ran - 1);
}

TEST(RecursionTest, FactorialViaRecursiveCall) {
  // The recursive self-call records against the *declared* signature —
  // "fact_rt" is not in the library yet while its own body is tracing.
  std::vector<TypeAndShape> sig = {{DType::kFloat32, Shape({})}};
  auto fact = DefineRecursiveFunction(
      "fact_rt", sig, sig,
      [&](const std::vector<Tensor>& args)
          -> StatusOr<std::vector<Tensor>> {
        // Constants come from ops::fill so the branches stay capture-free
        // (an eager constant would become a capture, which recursive
        // functions reject).
        Function base = function(
            [](const std::vector<Tensor>& a) -> std::vector<Tensor> {
              return {ops::fill(DType::kFloat32, {}, 1.0)};
            },
            "fact_rt_base");
        Function rec = function(
            [&](const std::vector<Tensor>& a) -> std::vector<Tensor> {
              Tensor one = ops::fill(DType::kFloat32, {}, 1.0);
              Tensor smaller = ops::call("fact_rt", {ops::sub(a[0], one)},
                                         {{DType::kFloat32, Shape({})}})[0];
              return {ops::mul(a[0], smaller)};
            },
            "fact_rt_rec");
        Tensor pred =
            ops::greater(args[0], ops::fill(DType::kFloat32, {}, 1.0));
        return ops::cond(pred, rec, base, {args[0]});
      });
  ASSERT_TRUE(fact.ok()) << fact.status().message();

  Tensor five = ops::scalar<float>(5.0f);
  Tensor out = ops::call("fact_rt", {five}, {{DType::kFloat32, Shape({})}})[0];
  EXPECT_FLOAT_EQ(out.scalar<float>(), 120.0f);
  Tensor one = ops::scalar<float>(1.0f);
  EXPECT_FLOAT_EQ(
      ops::call("fact_rt", {one}, {{DType::kFloat32, Shape({})}})[0]
          .scalar<float>(),
      1.0f);
}

TEST(RecursionTest, MutualRecursion) {
  // is_even / is_odd defined in terms of each other; the first definition
  // calls a sibling that does not exist yet.
  std::vector<TypeAndShape> sig = {{DType::kFloat32, Shape({})}};
  auto parity_body = [](const char* other, double base_value) {
    return [other, base_value](const std::vector<Tensor>& args)
               -> StatusOr<std::vector<Tensor>> {
      Function base = function(
          [base_value](const std::vector<Tensor>& a) -> std::vector<Tensor> {
            return {ops::fill(DType::kFloat32, {}, base_value)};
          },
          std::string("parity_base_") + other);
      Function rec = function(
          [other](const std::vector<Tensor>& a) -> std::vector<Tensor> {
            Tensor one = ops::fill(DType::kFloat32, {}, 1.0);
            return {ops::call(other, {ops::sub(a[0], one)},
                              {{DType::kFloat32, Shape({})}})[0]};
          },
          std::string("parity_rec_") + other);
      Tensor pred =
          ops::greater(args[0], ops::fill(DType::kFloat32, {}, 0.0));
      return ops::cond(pred, rec, base, {args[0]});
    };
  };
  auto is_even =
      DefineRecursiveFunction("rt_is_even", sig, sig,
                              parity_body("rt_is_odd", 1.0));
  ASSERT_TRUE(is_even.ok()) << is_even.status().message();
  auto is_odd =
      DefineRecursiveFunction("rt_is_odd", sig, sig,
                              parity_body("rt_is_even", 0.0));
  ASSERT_TRUE(is_odd.ok()) << is_odd.status().message();

  auto run = [](const char* name, float n) {
    return ops::call(name, {ops::scalar<float>(n)},
                     {{DType::kFloat32, Shape({})}})[0]
        .scalar<float>();
  };
  EXPECT_FLOAT_EQ(run("rt_is_even", 6.0f), 1.0f);
  EXPECT_FLOAT_EQ(run("rt_is_even", 3.0f), 0.0f);
  EXPECT_FLOAT_EQ(run("rt_is_odd", 7.0f), 1.0f);
  EXPECT_FLOAT_EQ(run("rt_is_odd", 0.0f), 0.0f);
}

TEST(RecursionTest, DepthOverflowPoisonsOutputs) {
  // No base case: execution recurses until TFE_MAX_CALL_DEPTH and the
  // FailedPrecondition poisons the output like any deferred kernel error.
  std::vector<TypeAndShape> sig = {{DType::kFloat32, Shape({})}};
  auto inf = DefineRecursiveFunction(
      "rt_infinite", sig, sig,
      [](const std::vector<Tensor>& args) -> StatusOr<std::vector<Tensor>> {
        return std::vector<Tensor>{
            ops::call("rt_infinite", {args[0]},
                      {{DType::kFloat32, Shape({})}})[0]};
      });
  ASSERT_TRUE(inf.ok()) << inf.status().message();
  EXPECT_THROW(
      {
        Tensor out = ops::call("rt_infinite", {ops::scalar<float>(1.0f)},
                               {{DType::kFloat32, Shape({})}})[0];
        out.scalar<float>();
      },
      RuntimeError);
}

TEST(RecursionTest, CapturingRecursiveFunctionRejected) {
  // Implicit value captures would change the recursive call's signature
  // mid-trace; they must be passed as explicit arguments instead.
  Tensor outside = ops::scalar<float>(2.0f);
  std::vector<TypeAndShape> sig = {{DType::kFloat32, Shape({})}};
  auto bad = DefineRecursiveFunction(
      "rt_capturing", sig, sig,
      [&](const std::vector<Tensor>& args) -> StatusOr<std::vector<Tensor>> {
        return std::vector<Tensor>{ops::mul(args[0], outside)};
      });
  EXPECT_FALSE(bad.ok());
}

TEST(HashTableTest, InsertLookupSize) {
  HashTable table(DType::kFloat32, Shape({2}));
  EXPECT_EQ(table.size().scalar<int64_t>(), 0);
  table.insert(ops::constant<int64_t>({1, 2}, {2}),
               ops::constant<float>({10, 11, 20, 21}, {2, 2}));
  EXPECT_EQ(table.size().scalar<int64_t>(), 2);
  Tensor found = table.lookup(ops::constant<int64_t>({2, 5, 1}, {3}),
                              ops::constant<float>({-1, -1}, {2}));
  EXPECT_EQ(ToVector<float>(found),
            (std::vector<float>{20, 21, -1, -1, 10, 11}));
}

TEST(HashTableTest, InsertOverwrites) {
  HashTable table(DType::kFloat32, Shape({}));
  table.insert(ops::constant<int64_t>({7}, {1}), ops::constant<float>({1}, {1}));
  table.insert(ops::constant<int64_t>({7}, {1}), ops::constant<float>({2}, {1}));
  EXPECT_EQ(table.size().scalar<int64_t>(), 1);
  Tensor found = table.lookup(ops::constant<int64_t>({7}, {1}),
                              ops::scalar<float>(0));
  EXPECT_FLOAT_EQ(found.data<float>()[0], 2.0f);
}

TEST(HashTableTest, WorksInsideStagedFunctions) {
  HashTable table(DType::kFloat32, Shape({}));
  Function remember = function(
      [&table](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor keys = ops::cast(args[0], DType::kInt64);
        table.insert(keys, args[1]);
        return {table.size()};
      },
      "remember");
  remember({ops::constant<int64_t>({1, 2}, {2}),
            ops::constant<float>({1.5f, 2.5f}, {2})});
  Tensor size = remember({ops::constant<int64_t>({3, 4}, {2}),
                          ops::constant<float>({3.5f, 4.5f}, {2})})[0];
  EXPECT_EQ(size.scalar<int64_t>(), 4);
  Tensor found = table.lookup(ops::constant<int64_t>({3}, {1}),
                              ops::scalar<float>(-1));
  EXPECT_FLOAT_EQ(found.data<float>()[0], 3.5f);
}

TEST(HashTableTest, CheckpointRoundTrip) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "tfe_table_ckpt").string();
  std::filesystem::remove_all(dir);
  {
    HashTable table(DType::kFloat32, Shape({2}));
    table.insert(ops::constant<int64_t>({5, 9}, {2}),
                 ops::constant<float>({1, 2, 3, 4}, {2, 2}));
    Checkpoint checkpoint;
    checkpoint.TrackChild("table", &table);
    ASSERT_TRUE(checkpoint.Save(dir).ok());
  }
  {
    HashTable table(DType::kFloat32, Shape({2}));
    Checkpoint checkpoint;
    checkpoint.TrackChild("table", &table);
    ASSERT_TRUE(checkpoint.Restore(dir).ok());
    EXPECT_EQ(table.size().scalar<int64_t>(), 2);
    Tensor found = table.lookup(ops::constant<int64_t>({9}, {1}),
                                ops::constant<float>({0, 0}, {2}));
    EXPECT_EQ(ToVector<float>(found), (std::vector<float>{3, 4}));
  }
}

TEST(OptimizerTest, SgdMomentumConverges) {
  // Minimize (w - 3)^2 with momentum; slots are created lazily.
  Variable w(ops::scalar<float>(0.0f));
  models::SGD sgd(0.1, 0.9);
  for (int i = 0; i < 200; ++i) {
    GradientTape tape;
    Tensor loss = ops::square(ops::sub(w.value(), ops::scalar<float>(3.0f)));
    tape.StopRecording();
    sgd.ApplyGradients({w}, gradient(tape, loss, {w}));
  }
  EXPECT_NEAR(w.value().scalar<float>(), 3.0f, 0.1f);
  EXPECT_EQ(sgd.tracked_variables().size(), 1u);  // one momentum slot
}

TEST(OptimizerTest, AdamInsideStagedTrainStep) {
  Variable w(ops::constant<float>({0, 0}, {2}));
  models::Adam adam(0.1);
  Tensor target = ops::constant<float>({1.0f, -2.0f}, {2});
  Function step = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        GradientTape tape;
        Tensor loss =
            ops::reduce_sum(ops::square(ops::sub(w.value(), args[0])));
        tape.StopRecording();
        adam.ApplyGradients({w}, gradient(tape, loss, {w}));
        return {loss};
      },
      "adam_step");
  float first = step({target})[0].scalar<float>();
  for (int i = 0; i < 100; ++i) step({target});
  float last = step({target})[0].scalar<float>();
  EXPECT_LT(last, first * 0.01f);
  EXPECT_EQ(step.num_traces(), 1);
  EXPECT_EQ(adam.tracked_variables().size(), 3u);  // step + m + v
}

TEST(OptimizerTest, OptimizerStateCheckpoints) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "tfe_opt_ckpt").string();
  std::filesystem::remove_all(dir);
  Variable w(ops::scalar<float>(0.0f));
  models::SGD sgd(0.1, 0.9);
  {
    GradientTape tape;
    Tensor loss = ops::square(ops::sub(w.value(), ops::scalar<float>(3.0f)));
    tape.StopRecording();
    sgd.ApplyGradients({w}, gradient(tape, loss, {w}));
  }
  Checkpoint checkpoint;
  checkpoint.TrackChild("optimizer", &sgd);
  ASSERT_TRUE(checkpoint.Save(dir).ok());

  models::SGD restored_sgd(0.1, 0.9);
  Variable w2(ops::scalar<float>(0.0f));
  // Slots match by tracked edge name; create the slot first.
  {
    GradientTape tape;
    Tensor loss = ops::square(ops::sub(w2.value(), ops::scalar<float>(3.0f)));
    tape.StopRecording();
    restored_sgd.ApplyGradients({w2}, gradient(tape, loss, {w2}));
  }
  Checkpoint restore_checkpoint;
  restore_checkpoint.TrackChild("optimizer", &restored_sgd);
  auto report = restore_checkpoint.Restore(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->restored_variables, 1);
}

}  // namespace
}  // namespace tfe
