// Unit tests for the support substrate: Status/StatusOr, strings, Philox,
// ThreadPool, Timeline.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "support/random.h"
#include "support/status.h"
#include "support/strings.h"
#include "support/threadpool.h"
#include "support/timeline.h"

namespace tfe {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgument("bad tensor");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad tensor");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad tensor");
}

TEST(StatusTest, ThrowIfErrorThrows) {
  EXPECT_THROW(NotFound("missing").ThrowIfError(), RuntimeError);
  EXPECT_NO_THROW(Status::OK().ThrowIfError());
}

TEST(StatusTest, EveryCodeHasName) {
  for (ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kAlreadyExists, ErrorCode::kFailedPrecondition,
        ErrorCode::kOutOfRange, ErrorCode::kUnimplemented,
        ErrorCode::kInternal, ErrorCode::kUnavailable}) {
    EXPECT_STRNE(ErrorCodeName(code), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFound("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  EXPECT_THROW(std::move(result).ValueOrThrow(), RuntimeError);
}

TEST(StatusOrTest, MacrosPropagate) {
  auto inner = []() -> StatusOr<int> { return OutOfRange("boom"); };
  auto outer = [&]() -> StatusOr<int> {
    TFE_ASSIGN_OR_RETURN(int value, inner());
    return value + 1;
  };
  EXPECT_EQ(outer().status().code(), ErrorCode::kOutOfRange);
}

TEST(StringsTest, StrCatMixesTypes) {
  EXPECT_EQ(strings::StrCat("a", 1, "-", 2.5), "a1-2.5");
}

TEST(StringsTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> pieces = {"a", "", "bc"};
  EXPECT_EQ(strings::Join(pieces, ","), "a,,bc");
  EXPECT_EQ(strings::Split("a,,bc", ','), pieces);
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(strings::StartsWith("/job:w", "/job"));
  EXPECT_FALSE(strings::StartsWith("job", "/job"));
  EXPECT_TRUE(strings::EndsWith("fn__fwd", "__fwd"));
  EXPECT_FALSE(strings::EndsWith("fwd", "__fwd"));
}

TEST(StringsTest, ParseNonNegativeInt) {
  EXPECT_EQ(strings::ParseNonNegativeInt("0"), 0);
  EXPECT_EQ(strings::ParseNonNegativeInt("123"), 123);
  EXPECT_EQ(strings::ParseNonNegativeInt(""), -1);
  EXPECT_EQ(strings::ParseNonNegativeInt("-3"), -1);
  EXPECT_EQ(strings::ParseNonNegativeInt("1a"), -1);
}

TEST(PhiloxTest, DeterministicForSeed) {
  random::Philox a(7, 9);
  random::Philox b(7, 9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(PhiloxTest, DifferentSeedsDiffer) {
  random::Philox a(7, 9);
  random::Philox b(8, 9);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(PhiloxTest, FloatsInUnitInterval) {
  random::Philox gen(123, 0);
  for (int i = 0; i < 1000; ++i) {
    float value = gen.NextFloat();
    EXPECT_GE(value, 0.0f);
    EXPECT_LT(value, 1.0f);
  }
}

TEST(PhiloxTest, GaussianMoments) {
  random::Philox gen(5, 5);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double value = gen.NextGaussian();
    sum += value;
    sum_sq += value * value;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(PhiloxTest, SkipMatchesSequentialDraws) {
  random::Philox a(11, 0);
  random::Philox b(11, 0);
  for (int i = 0; i < 3; ++i) a.Next4();
  b.Skip(3);
  EXPECT_EQ(a.Next4(), b.Next4());
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool("test", 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool("empty", 2);
  pool.WaitIdle();  // must not hang
}

TEST(TimelineTest, SchedulesSerially) {
  Timeline timeline("gpu");
  EXPECT_EQ(timeline.Schedule(0, 100), 100u);
  // Resource busy until 100 even though ready at 50.
  EXPECT_EQ(timeline.Schedule(50, 10), 110u);
  // Idle gap honored.
  EXPECT_EQ(timeline.Schedule(200, 10), 210u);
  EXPECT_EQ(timeline.busy_ns(), 120u);
  EXPECT_EQ(timeline.items(), 3u);
}

TEST(TimelineTest, ResetClears) {
  Timeline timeline;
  timeline.Schedule(0, 5);
  timeline.Reset();
  EXPECT_EQ(timeline.free_at_ns(), 0u);
  EXPECT_EQ(timeline.busy_ns(), 0u);
}

}  // namespace
}  // namespace tfe
