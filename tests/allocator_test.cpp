// Memory subsystem: the Allocator interface (arena size-class freelists,
// system pass-through, per-device ownership) and fused-run buffer donation.
// The donation contract under test: a buffer is donated only when provably
// exclusive — a value watched by the gradient tape, aliased by a second
// Tensor, or held by a pending TensorHandle is never overwritten — and a
// donated run's outputs are bitwise identical to the copying path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/tfe.h"
#include "kernels/fused_elementwise.h"
#include "profiler/profiler.h"
#include "runtime/eager_context.h"
#include "tensor/allocator.h"
#include "tensor/buffer.h"
#include "tensor/tensor_handle.h"

namespace tfe {
namespace {

using tensor_util::ToVector;

bool AllZero(const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

TEST(AllocatorTest, ArenaReusesFreedBlocksAndRezeroes) {
  ArenaAllocator arena("test");
  void* p1 = arena.AllocateRaw(1000);
  ASSERT_NE(p1, nullptr);
  EXPECT_TRUE(AllZero(p1, 1000));
  EXPECT_EQ(arena.stats().freelist_hits.load(), 0u);
  EXPECT_EQ(arena.stats().freelist_misses.load(), 1u);
  std::memset(p1, 0xAB, 1000);
  arena.DeallocateRaw(p1, 1000);
  EXPECT_GT(arena.retained_bytes(), 0u);

  // Same size class (1000 and 900 both round into the 1024 class): the
  // freed block comes back, scrubbed to zero.
  void* p2 = arena.AllocateRaw(900);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2, p1);
  EXPECT_EQ(arena.stats().freelist_hits.load(), 1u);
  EXPECT_TRUE(AllZero(p2, 900));
  arena.DeallocateRaw(p2, 900);
}

TEST(AllocatorTest, ArenaStatsTrackInUseAndHighWater) {
  ArenaAllocator arena("stats");
  void* a = arena.AllocateRaw(100);
  void* b = arena.AllocateRaw(5000);
  const int64_t peak = arena.stats().in_use_bytes.load();
  EXPECT_GT(peak, 0);
  EXPECT_EQ(arena.stats().high_water_bytes.load(), peak);
  EXPECT_EQ(arena.stats().bytes_requested.load(), 5100u);
  arena.DeallocateRaw(a, 100);
  arena.DeallocateRaw(b, 5000);
  EXPECT_EQ(arena.stats().in_use_bytes.load(), 0);
  // High water survives the frees.
  EXPECT_EQ(arena.stats().high_water_bytes.load(), peak);
}

TEST(AllocatorTest, ArenaRespectsRetainedBytesCap) {
  ArenaAllocator arena("cap", /*max_retained_bytes=*/2048);
  void* a = arena.AllocateRaw(1024);
  void* b = arena.AllocateRaw(1024);
  void* c = arena.AllocateRaw(1024);
  arena.DeallocateRaw(a, 1024);
  arena.DeallocateRaw(b, 1024);
  arena.DeallocateRaw(c, 1024);  // over the cap: released to the system
  EXPECT_LE(arena.retained_bytes(), 2048u);
}

TEST(AllocatorTest, ArenaIsThreadSafe) {
  ArenaAllocator arena("threads");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&arena, t] {
      for (int i = 0; i < 500; ++i) {
        size_t bytes = static_cast<size_t>(64 + 64 * ((i + t) % 8));
        void* p = arena.AllocateRaw(bytes);
        static_cast<char*>(p)[0] = 1;
        arena.DeallocateRaw(p, bytes);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(arena.stats().in_use_bytes.load(), 0);
  EXPECT_EQ(arena.stats().allocations.load(), 2000u);
  EXPECT_EQ(arena.stats().deallocations.load(), 2000u);
}

TEST(AllocatorTest, SystemAllocatorPassesThrough) {
  SystemAllocator system("test");
  void* p = system.AllocateRaw(256);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(AllZero(p, 256));
  system.DeallocateRaw(p, 256);
  EXPECT_EQ(system.stats().freelist_hits.load(), 0u);
  EXPECT_EQ(system.stats().freelist_misses.load(), 1u);
  EXPECT_EQ(system.stats().in_use_bytes.load(), 0);
}

TEST(AllocatorTest, KindSelectionHonorsOverrideAndEnv) {
  const char* saved = std::getenv("TFE_ALLOCATOR");
  std::string saved_value = saved != nullptr ? saved : "";

  ClearAllocatorKindOverride();
  unsetenv("TFE_ALLOCATOR");
  EXPECT_EQ(DefaultAllocatorKind(), AllocatorKind::kArena);  // default
  setenv("TFE_ALLOCATOR", "system", 1);
  EXPECT_EQ(DefaultAllocatorKind(), AllocatorKind::kSystem);
  setenv("TFE_ALLOCATOR", "arena", 1);
  EXPECT_EQ(DefaultAllocatorKind(), AllocatorKind::kArena);
  setenv("TFE_ALLOCATOR", "bogus", 1);
  EXPECT_EQ(DefaultAllocatorKind(), AllocatorKind::kArena);
  // The programmatic override wins over the environment.
  setenv("TFE_ALLOCATOR", "system", 1);
  OverrideDefaultAllocatorKind(AllocatorKind::kArena);
  EXPECT_EQ(DefaultAllocatorKind(), AllocatorKind::kArena);
  ClearAllocatorKindOverride();
  EXPECT_EQ(DefaultAllocatorKind(), AllocatorKind::kSystem);

  if (saved != nullptr) {
    setenv("TFE_ALLOCATOR", saved_value.c_str(), 1);
  } else {
    unsetenv("TFE_ALLOCATOR");
  }
}

TEST(AllocatorTest, EachDeviceOwnsAnAccountingAllocator) {
  EagerContext::ResetGlobal(EagerContext::Options());
  Device* cpu = EagerContext::Global()->HostCpu();
  ASSERT_NE(cpu->allocator(), nullptr);
  EXPECT_EQ(cpu->allocator()->name(), cpu->name());

  const uint64_t before = cpu->allocator()->stats().bytes_requested.load();
  Tensor t = Tensor::Empty(DType::kFloat32, Shape({64, 64}), cpu);
  const uint64_t after = cpu->allocator()->stats().bytes_requested.load();
  EXPECT_GE(after - before, 64u * 64u * sizeof(float));

  // Device-less tensors route through the process allocator instead.
  Tensor detached = Tensor::Empty(DType::kFloat32, Shape({8}), nullptr);
  EXPECT_EQ(detached.buffer()->allocator().get(), ProcessAllocator().get());
}

TEST(AllocatorTest, BufferKeepsItsAllocatorAlive) {
  std::shared_ptr<Buffer> buffer;
  {
    auto arena = std::make_shared<ArenaAllocator>("scoped");
    buffer = Buffer::Allocate(512, arena);
  }  // the test's only direct ref dies; the buffer keeps the arena alive
  std::memset(buffer->data(), 0x5A, buffer->bytes());
  EXPECT_EQ(static_cast<unsigned char*>(buffer->data())[511], 0x5A);
  buffer.reset();  // returns storage through (and then releases) the arena
}

// ---- Buffer donation -------------------------------------------------------

uint64_t Donations() {
  return profiler::Metrics().GetCounter("allocator.donations")->value();
}

// Fusion on the drain needs queue depth; a slow op at the head of the
// in-order queue keeps the drain busy while the producer enqueues the chain
// (same trick as fusion_test.cpp).
void BlockQueueHead() {
  Tensor a = ops::random_normal({192, 192}, 0, 1, /*seed=*/97);
  Tensor b = ops::random_normal({192, 192}, 0, 1, /*seed=*/98);
  ASSERT_TRUE(EagerContext::Global()->Sync().ok());
  (void)ops::matmul(a, b);
}

// Unary chain: every fused run reads exactly one external operand (the
// previous run's tip), the donation candidate.
Tensor UnaryChain(const Tensor& x, int length) {
  Tensor h = x;
  for (int i = 0; i < length; ++i) {
    h = (i % 2 == 0) ? ops::abs(h) : ops::neg(h);
  }
  return h;
}

class DonationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EagerContext::Options options;
    options.async = true;
    EagerContext::ResetGlobal(options);
  }
  void TearDown() override {
    EagerContext::ResetGlobal(EagerContext::Options());
  }
};

TEST_F(DonationTest, FusedRunsDonateAndMatchTheCopyingPathBitwise) {
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({64, 64}, 0, 1, /*seed=*/5);

  const uint64_t donations_before = Donations();
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor donated = UnaryChain(x, 160);  // > kMaxFusedRun: several runs form
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_GT(Donations(), donations_before)
      << "no fused run donated a uniquely-owned input buffer";

  ctx->set_buffer_donation(false);
  const uint64_t donations_off = Donations();
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor copied = UnaryChain(x, 160);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_EQ(Donations(), donations_off) << "donation fired while disabled";

  EXPECT_EQ(ToVector<float>(donated), ToVector<float>(copied));
}

TEST_F(DonationTest, TapeWatchedBuffersAreNeverDonated) {
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({32, 32}, 0, 1, /*seed=*/9);
  ASSERT_TRUE(ctx->Sync().ok());

  const uint64_t donations_before = Donations();
  GradientTape tape;
  tape.watch(x);
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  // Every intermediate is recorded on the tape (TapeEntry holds the whole
  // Tensor), so none is exclusively owned and none may be donated.
  Tensor h = x;
  for (int i = 0; i < 96; ++i) h = ops::tanh(h);
  Tensor loss = ops::reduce_sum(h);
  EXPECT_EQ(Donations(), donations_before)
      << "a tape-watched buffer was donated";

  auto grads = tape.gradient(loss, {x});
  ASSERT_TRUE(grads.ok());
  ASSERT_TRUE((*grads)[0].Materialize().ok());
}

TEST_F(DonationTest, AliasedTensorsSurviveDonatingRuns) {
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::random_normal({48, 48}, 0, 1, /*seed=*/13);

  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor mid = UnaryChain(x, 100);
  // `kept` aliases the chain's tip while it is still a pending handle; both
  // the alias and the held handle must block donation of this buffer even
  // though 100 more ops consume it.
  Tensor kept = mid;
  Tensor out = UnaryChain(mid, 100);
  ASSERT_TRUE(ctx->Sync().ok());
  std::vector<float> kept_values = ToVector<float>(kept);
  std::vector<float> out_values = ToVector<float>(out);

  // Recompute without fusion (no runs, no donation) as ground truth.
  ctx->set_fuse_elementwise(false);
  Tensor mid_ref = UnaryChain(x, 100);
  Tensor out_ref = UnaryChain(mid_ref, 100);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_EQ(kept_values, ToVector<float>(mid_ref))
      << "an aliased buffer was overwritten by a donating run";
  EXPECT_EQ(out_values, ToVector<float>(out_ref));
}

TEST_F(DonationTest, CompilerAssignsDonationOnlyWhenProvablySafe) {
  using kernels::CompileFusedRun;
  using kernels::FusedRunOp;
  using kernels::FusedRunOperand;

  // Unary chain over one donatable operand: the output may reuse it.
  std::vector<FusedRunOp> chain(2);
  chain[0] = {"Abs", DType::kFloat32, Shape({64}), {{-1, 0}}, {}, {}, false};
  chain[1] = {"Neg", DType::kFloat32, Shape({64}), {{0, -1}}, {}, {}, true};
  std::vector<FusedRunOperand> donatable = {
      {DType::kFloat32, Shape({64}), /*may_donate=*/true}};
  auto compiled = CompileFusedRun(chain, donatable, DType::kFloat32);
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled->donations.size(), 1u);
  EXPECT_EQ(compiled->donations[0], 0);

  // Same run without the may_donate bit: no donation.
  std::vector<FusedRunOperand> held = {
      {DType::kFloat32, Shape({64}), /*may_donate=*/false}};
  compiled = CompileFusedRun(chain, held, DType::kFloat32);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->donations[0], -1);

  // A transposed (strided) read of the operand crosses block boundaries:
  // overwriting it in place would clobber rows a later block still reads.
  std::vector<FusedRunOp> transposed(2);
  transposed[0] = {"Transpose", DType::kFloat32, Shape({8, 8}),
                   {{-1, 0}}, {1, 0}, {}, false};
  transposed[1] = {"Abs", DType::kFloat32, Shape({8, 8}),
                   {{0, -1}}, {}, {}, true};
  std::vector<FusedRunOperand> matrix = {
      {DType::kFloat32, Shape({8, 8}), /*may_donate=*/true}};
  compiled = CompileFusedRun(transposed, matrix, DType::kFloat32);
  ASSERT_TRUE(compiled.ok());
  for (int donor : compiled->donations) EXPECT_EQ(donor, -1);

  // A materialized layout view of the operand publishes the operand's slot
  // as an output store, which reads the buffer *after* in-block stores; the
  // operand must not be donated to the other output.
  std::vector<FusedRunOp> viewed(2);
  viewed[0] = {"Reshape", DType::kFloat32, Shape({64}),
               {{-1, 0}}, {}, {}, true};
  viewed[1] = {"Abs", DType::kFloat32, Shape({64}), {{-1, 0}}, {}, {}, true};
  compiled = CompileFusedRun(viewed, donatable, DType::kFloat32);
  ASSERT_TRUE(compiled.ok());
  for (int donor : compiled->donations) EXPECT_EQ(donor, -1);
}

TEST_F(DonationTest, DonatedKernelOutputIsInPlaceAndBitwiseIdentical) {
  using kernels::CompileFusedRun;
  using kernels::FusedRunOp;
  using kernels::FusedRunOperand;
  EagerContext* ctx = EagerContext::Global();
  Device* cpu = ctx->HostCpu();

  std::vector<FusedRunOp> run(2);
  run[0] = {"Abs", DType::kFloat32, Shape({256}), {{-1, 0}}, {}, {}, false};
  run[1] = {"Neg", DType::kFloat32, Shape({256}), {{0, -1}}, {}, {}, true};
  std::vector<FusedRunOperand> operands = {
      {DType::kFloat32, Shape({256}), /*may_donate=*/true}};
  auto compiled = CompileFusedRun(run, operands, DType::kFloat32);
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled->donations[0], 0);

  auto make_input = [&] {
    Tensor t = Tensor::Empty(DType::kFloat32, Shape({256}), cpu);
    float* data = t.mutable_data<float>();
    for (int i = 0; i < 256; ++i) data[i] = (i % 2 == 0 ? 1.f : -1.f) * i;
    return t;
  };

  AttrMap attrs;
  attrs.emplace("program", AttrValue(compiled->program.Encode()));
  attrs.emplace("dtype", AttrValue(DType::kFloat32));

  Tensor plain_in = make_input();
  auto plain = ctx->ExecuteKernel("FusedElementwise", {plain_in}, attrs, cpu,
                                  /*compiled=*/false, /*start_ns=*/0);
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->outputs.size(), 1u);
  EXPECT_NE(plain->outputs[0].buffer().get(), plain_in.buffer().get());

  attrs.emplace("donate", AttrValue(std::vector<int64_t>{0}));
  Tensor donated_in = make_input();
  auto donated = ctx->ExecuteKernel("FusedElementwise", {donated_in}, attrs,
                                    cpu, /*compiled=*/false, /*start_ns=*/0);
  ASSERT_TRUE(donated.ok());
  ASSERT_EQ(donated->outputs.size(), 1u);
  // In place: the output IS the input's storage...
  EXPECT_EQ(donated->outputs[0].buffer().get(), donated_in.buffer().get());
  // ...and the values match the copying path bit for bit.
  EXPECT_EQ(ToVector<float>(donated->outputs[0]),
            ToVector<float>(plain->outputs[0]));
}

TEST_F(DonationTest, KernelRejectsUnsafeDonationAttr) {
  using kernels::CompileFusedRun;
  using kernels::FusedRunOp;
  using kernels::FusedRunOperand;
  EagerContext* ctx = EagerContext::Global();
  Device* cpu = ctx->HostCpu();

  // Transposed read: the compiler refuses to donate, and a forged "donate"
  // attr naming the operand anyway must be rejected, not honored.
  std::vector<FusedRunOp> run(2);
  run[0] = {"Transpose", DType::kFloat32, Shape({16, 16}),
            {{-1, 0}}, {1, 0}, {}, false};
  run[1] = {"Abs", DType::kFloat32, Shape({16, 16}), {{0, -1}}, {}, {}, true};
  std::vector<FusedRunOperand> operands = {
      {DType::kFloat32, Shape({16, 16}), /*may_donate=*/true}};
  auto compiled = CompileFusedRun(run, operands, DType::kFloat32);
  ASSERT_TRUE(compiled.ok());

  AttrMap attrs;
  attrs.emplace("program", AttrValue(compiled->program.Encode()));
  attrs.emplace("dtype", AttrValue(DType::kFloat32));
  attrs.emplace("donate", AttrValue(std::vector<int64_t>{0}));
  Tensor input = Tensor::Empty(DType::kFloat32, Shape({16, 16}), cpu);
  auto result = ctx->ExecuteKernel("FusedElementwise", {input}, attrs, cpu,
                                   /*compiled=*/false, /*start_ns=*/0);
  EXPECT_FALSE(result.ok());
}

TEST_F(DonationTest, OpAtATimeUnaryOpsDonate) {
  // With fusion off the drain executes ops one at a time; a unary op whose
  // input buffer is uniquely owned (producer handle dropped, no aliases, no
  // tape) writes its output in place under the same ownership proof the
  // fused path uses.
  EagerContext* ctx = EagerContext::Global();
  ctx->set_fuse_elementwise(false);
  Tensor x = ops::random_normal({64, 64}, 0, 1, /*seed=*/33);
  ASSERT_TRUE(ctx->Sync().ok());

  const uint64_t donations_before = Donations();
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor donated = UnaryChain(x, 64);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_GT(Donations(), donations_before)
      << "no op-at-a-time unary op donated its input buffer";

  ctx->set_buffer_donation(false);
  Tensor copied = UnaryChain(x, 64);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_EQ(ToVector<float>(donated), ToVector<float>(copied));
}

// Binary chain alternating which side the pending (uniquely-owned) operand
// sits on, so both donate=0 and donate=1 assignments are exercised. `y` is
// held by the caller throughout and must never be overwritten.
Tensor BinaryChain(const Tensor& x, const Tensor& y, int length) {
  Tensor h = ops::abs(x);
  for (int i = 0; i < length; ++i) {
    switch (i % 4) {
      case 0: h = ops::add(h, y); break;
      case 1: h = ops::mul(y, h); break;
      case 2: h = ops::sub(h, y); break;
      default: h = ops::add(y, h); break;
    }
  }
  return h;
}

TEST_F(DonationTest, OpAtATimeBinaryOpsDonateEitherExactShapeOperand) {
  // Binary elementwise ops donate whichever operand passes the ownership
  // proof and matches the output shape exactly — left or right. The
  // caller-held operand fails the use-count proof and survives; the donated
  // path stays bitwise identical to the copying path.
  EagerContext* ctx = EagerContext::Global();
  ctx->set_fuse_elementwise(false);
  Tensor x = ops::random_normal({64, 64}, 0, 1, /*seed=*/43);
  Tensor y = ops::random_normal({64, 64}, 0, 1, /*seed=*/44);
  ASSERT_TRUE(ctx->Sync().ok());
  std::vector<float> y_bits = ToVector<float>(y);

  const uint64_t donations_before = Donations();
  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor donated = BinaryChain(x, y, 64);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_GT(Donations(), donations_before)
      << "no op-at-a-time binary op donated its exclusive operand";
  EXPECT_EQ(ToVector<float>(y), y_bits)
      << "the caller-held operand was overwritten in place";

  ctx->set_buffer_donation(false);
  Tensor copied = BinaryChain(x, y, 64);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_EQ(ToVector<float>(donated), ToVector<float>(copied));
}

TEST_F(DonationTest, BroadcastOperandsAreNeverDonated) {
  // A broadcasting operand is smaller than the output; writing the result
  // into it would run off the end of the buffer. Here the only exclusively
  // owned value is the [1, 64] row — shape-mismatched with the [64, 64]
  // output — and the full-size operand is caller-held, so nothing donates.
  EagerContext* ctx = EagerContext::Global();
  ctx->set_fuse_elementwise(false);
  Tensor row = ops::random_normal({1, 64}, 0, 1, /*seed=*/45);
  Tensor big = ops::random_normal({64, 64}, 0, 1, /*seed=*/46);
  ASSERT_TRUE(ctx->Sync().ok());

  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  const uint64_t donations_before = Donations();
  Tensor out = ops::add(ops::neg(row), big);  // neg(row): unique but small
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_EQ(Donations(), donations_before)
      << "a broadcasting operand was donated";

  ctx->set_buffer_donation(false);
  Tensor reference = ops::add(ops::neg(row), big);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_EQ(ToVector<float>(out), ToVector<float>(reference));
}

TEST_F(DonationTest, EscapingMultiConsumerValueBlocksOpAtATimeDonation) {
  // A value held by the test and consumed by two later ops is never
  // uniquely owned: neither consumer may overwrite it, and the held handle
  // must still read the original bits after both consumers ran.
  EagerContext* ctx = EagerContext::Global();
  ctx->set_fuse_elementwise(false);
  Tensor x = ops::random_normal({32, 32}, 0, 1, /*seed=*/37);
  ASSERT_TRUE(ctx->Sync().ok());

  ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
  Tensor mid = ops::abs(x);
  Tensor kept = mid;  // escapes: a second handle to the same value
  const uint64_t donations_before = Donations();
  Tensor a = ops::neg(mid);
  Tensor b = ops::abs(mid);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_EQ(Donations(), donations_before)
      << "a consumer donated a multi-consumer value that escapes the queue";

  // Ground truth without donation anywhere.
  ctx->set_buffer_donation(false);
  Tensor mid_ref = ops::abs(x);
  Tensor a_ref = ops::neg(mid_ref);
  Tensor b_ref = ops::abs(mid_ref);
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_EQ(ToVector<float>(kept), ToVector<float>(mid_ref))
      << "the escaping value was overwritten in place";
  EXPECT_EQ(ToVector<float>(a), ToVector<float>(a_ref));
  EXPECT_EQ(ToVector<float>(b), ToVector<float>(b_ref));
}

TEST_F(DonationTest, ArenaAndSystemAllocatorsAgreeBitwise) {
  auto compute = [](std::vector<float>* out_values) {
    ASSERT_NO_FATAL_FAILURE(BlockQueueHead());
    Tensor x = ops::random_normal({64, 64}, 0, 1, /*seed=*/21);
    Tensor out = ops::reduce_sum(UnaryChain(x, 128));
    ASSERT_TRUE(EagerContext::Global()->Sync().ok());
    *out_values = ToVector<float>(out);
  };
  EagerContext::Options options;
  options.async = true;

  // Copying system-allocator baseline...
  OverrideDefaultAllocatorKind(AllocatorKind::kSystem);
  EagerContext::ResetGlobal(options);
  EagerContext::Global()->set_buffer_donation(false);
  std::vector<float> system_values;
  compute(&system_values);

  // ...vs recycled arena buffers with in-place donation. Same bits.
  OverrideDefaultAllocatorKind(AllocatorKind::kArena);
  EagerContext::ResetGlobal(options);
  std::vector<float> arena_values;
  compute(&arena_values);
  ClearAllocatorKindOverride();

  ASSERT_EQ(system_values.size(), arena_values.size());
  for (size_t i = 0; i < arena_values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&system_values[i], &arena_values[i], sizeof(float)),
              0)
        << "element " << i;
  }
}

}  // namespace
}  // namespace tfe
