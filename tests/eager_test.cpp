// Imperative execution: the op surface, broadcasting, placement, devices.
#include <gtest/gtest.h>

#include <cmath>

#include "api/tfe.h"

namespace tfe {
namespace {

using tensor_util::FromVector;
using tensor_util::ToVector;

TEST(EagerTest, PaperIntroExample) {
  // The select() example from §4.1 of the paper.
  Tensor a = ops::constant<float>({1.0f, 0.0f}, {1, 2});
  Tensor x = ops::constant<float>({2.0f, -2.0f}, {2, 1});
  Tensor result = ops::matmul(a, x);
  EXPECT_EQ(result.shape(), Shape({1, 1}));
  EXPECT_FLOAT_EQ(result.scalar<float>(), 2.0f);
}

TEST(EagerTest, BinaryOpsElementwise) {
  Tensor a = ops::constant<float>({1, 2, 3}, {3});
  Tensor b = ops::constant<float>({4, 5, 6}, {3});
  EXPECT_EQ(ToVector<float>(ops::add(a, b)), (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(ToVector<float>(ops::sub(a, b)), (std::vector<float>{-3, -3, -3}));
  EXPECT_EQ(ToVector<float>(ops::mul(a, b)), (std::vector<float>{4, 10, 18}));
  EXPECT_EQ(ToVector<float>(ops::maximum(a, b)), ToVector<float>(b));
  EXPECT_EQ(ToVector<float>(ops::minimum(a, b)), ToVector<float>(a));
  EXPECT_EQ(ToVector<float>(ops::squared_difference(a, b)),
            (std::vector<float>{9, 9, 9}));
}

TEST(EagerTest, BroadcastingMatchesNumpyRules) {
  Tensor matrix = ops::constant<float>({1, 2, 3, 4}, {2, 2});
  Tensor row = ops::constant<float>({10, 20}, {2});
  Tensor column = ops::constant<float>({100, 200}, {2, 1});
  Tensor scalar = ops::scalar<float>(5);

  EXPECT_EQ(ToVector<float>(ops::add(matrix, row)),
            (std::vector<float>{11, 22, 13, 24}));
  EXPECT_EQ(ToVector<float>(ops::add(matrix, column)),
            (std::vector<float>{101, 102, 203, 204}));
  EXPECT_EQ(ToVector<float>(ops::add(matrix, scalar)),
            (std::vector<float>{6, 7, 8, 9}));
  // Broadcast both ways: [2,1] + [2] -> [2,2].
  EXPECT_EQ(ToVector<float>(ops::add(column, row)),
            (std::vector<float>{110, 120, 210, 220}));
}

TEST(EagerTest, BroadcastErrorSurfaces) {
  Tensor a = ops::constant<float>({1, 2}, {2});
  Tensor b = ops::constant<float>({1, 2, 3}, {3});
  EXPECT_THROW(ops::add(a, b), RuntimeError);
}

TEST(EagerTest, DTypeMismatchRejected) {
  Tensor a = ops::constant<float>({1}, {1});
  Tensor b = ops::constant<double>({1}, {1});
  EXPECT_THROW(ops::add(a, b), RuntimeError);
}

TEST(EagerTest, UnaryMath) {
  Tensor x = ops::constant<float>({-1, 0, 4}, {3});
  EXPECT_EQ(ToVector<float>(ops::neg(x)), (std::vector<float>{1, 0, -4}));
  EXPECT_EQ(ToVector<float>(ops::abs(x)), (std::vector<float>{1, 0, 4}));
  EXPECT_EQ(ToVector<float>(ops::relu(x)), (std::vector<float>{0, 0, 4}));
  EXPECT_EQ(ToVector<float>(ops::sign(x)), (std::vector<float>{-1, 0, 1}));
  EXPECT_EQ(ToVector<float>(ops::square(x)), (std::vector<float>{1, 0, 16}));
  EXPECT_FLOAT_EQ(ToVector<float>(ops::sqrt(x))[2], 2.0f);
  EXPECT_NEAR(ToVector<float>(ops::exp(ops::scalar<float>(1)))[0], 2.71828f,
              1e-4);
  EXPECT_NEAR(ToVector<float>(ops::tanh(ops::scalar<float>(100)))[0], 1.0f,
              1e-6);
  EXPECT_NEAR(ToVector<float>(ops::sigmoid(ops::scalar<float>(0)))[0], 0.5f,
              1e-6);
}

TEST(EagerTest, ComparisonsAndSelect) {
  Tensor a = ops::constant<float>({1, 5}, {2});
  Tensor b = ops::constant<float>({3, 3}, {2});
  Tensor less = ops::less(a, b);
  EXPECT_EQ(less.dtype(), DType::kBool);
  EXPECT_EQ(ToVector<bool>(less), (std::vector<bool>{true, false}));
  Tensor picked = ops::select(less, a, b);
  EXPECT_EQ(ToVector<float>(picked), (std::vector<float>{1, 3}));
}

TEST(EagerTest, CastBetweenTypes) {
  Tensor x = ops::constant<float>({1.7f, -2.3f}, {2});
  Tensor ints = ops::cast(x, DType::kInt32);
  EXPECT_EQ(ToVector<int32_t>(ints), (std::vector<int32_t>{1, -2}));
  Tensor mask = ops::cast(ops::greater(x, ops::zeros_like(x)),
                          DType::kFloat32);
  EXPECT_EQ(ToVector<float>(mask), (std::vector<float>{1, 0}));
}

TEST(EagerTest, MatMulVariants) {
  Tensor a = ops::constant<float>({1, 2, 3, 4}, {2, 2});
  Tensor b = ops::constant<float>({5, 6, 7, 8}, {2, 2});
  EXPECT_EQ(ToVector<float>(ops::matmul(a, b)),
            (std::vector<float>{19, 22, 43, 50}));
  EXPECT_EQ(ToVector<float>(ops::matmul(a, b, true, false)),
            (std::vector<float>{26, 30, 38, 44}));
  EXPECT_EQ(ToVector<float>(ops::matmul(a, b, false, true)),
            (std::vector<float>{17, 23, 39, 53}));
  EXPECT_EQ(ToVector<float>(ops::matmul(a, b, true, true)),
            (std::vector<float>{23, 31, 34, 46}));
}

TEST(EagerTest, Reductions) {
  Tensor x = ops::constant<float>({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_FLOAT_EQ(ops::reduce_sum(x).scalar<float>(), 21.0f);
  EXPECT_FLOAT_EQ(ops::reduce_mean(x).scalar<float>(), 3.5f);
  EXPECT_EQ(ToVector<float>(ops::reduce_sum(x, {0})),
            (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(ToVector<float>(ops::reduce_sum(x, {1})),
            (std::vector<float>{6, 15}));
  EXPECT_EQ(ToVector<float>(ops::reduce_max(x, {1})),
            (std::vector<float>{3, 6}));
  EXPECT_EQ(ToVector<float>(ops::reduce_min(x, {0})),
            (std::vector<float>{1, 2, 3}));
  Tensor keep = ops::reduce_sum(x, {1}, /*keep_dims=*/true);
  EXPECT_EQ(keep.shape(), Shape({2, 1}));
  // Negative axis.
  EXPECT_EQ(ToVector<float>(ops::reduce_sum(x, {-1})),
            (std::vector<float>{6, 15}));
}

TEST(EagerTest, ArgMax) {
  Tensor x = ops::constant<float>({1, 9, 3, 8, 2, 7}, {2, 3});
  EXPECT_EQ(ToVector<int64_t>(ops::argmax(x, 1)),
            (std::vector<int64_t>{1, 0}));
  EXPECT_EQ(ToVector<int64_t>(ops::argmax(x, 0)),
            (std::vector<int64_t>{1, 0, 1}));
}

TEST(EagerTest, ShapeOps) {
  Tensor x = ops::constant<float>({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(ops::reshape(x, {3, 2}).shape(), Shape({3, 2}));
  EXPECT_EQ(ops::reshape(x, {-1}).shape(), Shape({6}));
  EXPECT_EQ(ops::reshape(x, {3, -1}).shape(), Shape({3, 2}));
  EXPECT_THROW(ops::reshape(x, {4, 2}), RuntimeError);

  Tensor transposed = ops::transpose(x, {1, 0});
  EXPECT_EQ(transposed.shape(), Shape({3, 2}));
  EXPECT_EQ(ToVector<float>(transposed), (std::vector<float>{1, 4, 2, 5, 3, 6}));

  EXPECT_EQ(ops::expand_dims(x, 0).shape(), Shape({1, 2, 3}));
  EXPECT_EQ(ops::expand_dims(x, -1).shape(), Shape({2, 3, 1}));
  EXPECT_EQ(ops::squeeze(ops::expand_dims(x, 1)).shape(), Shape({2, 3}));

  Tensor sliced = ops::slice(x, {0, 1}, {2, 2});
  EXPECT_EQ(ToVector<float>(sliced), (std::vector<float>{2, 3, 5, 6}));
  Tensor tail = ops::slice(x, {1, 0}, {-1, -1});
  EXPECT_EQ(ToVector<float>(tail), (std::vector<float>{4, 5, 6}));

  Tensor padded = ops::pad(ops::constant<float>({1, 2}, {2}), {1, 2});
  EXPECT_EQ(ToVector<float>(padded), (std::vector<float>{0, 1, 2, 0, 0}));

  Tensor tiled = ops::tile(ops::constant<float>({1, 2}, {2}), {3});
  EXPECT_EQ(ToVector<float>(tiled), (std::vector<float>{1, 2, 1, 2, 1, 2}));

  Tensor stacked = ops::concat({x, x}, 0);
  EXPECT_EQ(stacked.shape(), Shape({4, 3}));
  Tensor wide = ops::concat({x, x}, 1);
  EXPECT_EQ(wide.shape(), Shape({2, 6}));
  EXPECT_EQ(ToVector<float>(wide),
            (std::vector<float>{1, 2, 3, 1, 2, 3, 4, 5, 6, 4, 5, 6}));
}

TEST(EagerTest, GatherAndSegmentSum) {
  Tensor params = ops::constant<float>({10, 20, 30, 40, 50, 60}, {3, 2});
  Tensor indices = ops::constant<int32_t>({2, 0, 2}, {3});
  Tensor gathered = ops::gather(params, indices);
  EXPECT_EQ(gathered.shape(), Shape({3, 2}));
  EXPECT_EQ(ToVector<float>(gathered),
            (std::vector<float>{50, 60, 10, 20, 50, 60}));
  EXPECT_THROW(ops::gather(params, ops::constant<int32_t>({5}, {1})),
               RuntimeError);
}

TEST(EagerTest, RangeStackUnstackSplit) {
  Tensor r = ops::range(0, 5);
  EXPECT_EQ(ToVector<int64_t>(r), (std::vector<int64_t>{0, 1, 2, 3, 4}));
  Tensor stepped = ops::range(1, 8, 3, DType::kFloat32);
  EXPECT_EQ(ToVector<float>(stepped), (std::vector<float>{1, 4, 7}));
  EXPECT_EQ(ops::range(5, 0).num_elements(), 0);

  Tensor a = ops::constant<float>({1, 2}, {2});
  Tensor b = ops::constant<float>({3, 4}, {2});
  Tensor stacked = ops::stack({a, b});
  EXPECT_EQ(stacked.shape(), Shape({2, 2}));
  EXPECT_EQ(ToVector<float>(stacked), (std::vector<float>{1, 2, 3, 4}));
  Tensor stacked1 = ops::stack({a, b}, 1);
  EXPECT_EQ(ToVector<float>(stacked1), (std::vector<float>{1, 3, 2, 4}));

  std::vector<Tensor> rows = ops::unstack(stacked, 0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(tensor_util::AllClose(rows[0], a));
  EXPECT_TRUE(tensor_util::AllClose(rows[1], b));

  Tensor wide = ops::constant<float>({1, 2, 3, 4, 5, 6}, {1, 6});
  std::vector<Tensor> thirds = ops::split(wide, 3, 1);
  ASSERT_EQ(thirds.size(), 3u);
  EXPECT_EQ(ToVector<float>(thirds[1]), (std::vector<float>{3, 4}));
}

TEST(EagerTest, OneHot) {
  Tensor indices = ops::constant<int64_t>({0, 2, 1}, {3});
  Tensor encoded = ops::one_hot(indices, 3);
  EXPECT_EQ(encoded.shape(), Shape({3, 3}));
  EXPECT_EQ(ToVector<float>(encoded),
            (std::vector<float>{1, 0, 0, 0, 0, 1, 0, 1, 0}));
  Tensor custom = ops::one_hot(indices, 3, DType::kFloat32, 5.0, -1.0);
  EXPECT_EQ(ToVector<float>(custom)[0], 5.0f);
  EXPECT_EQ(ToVector<float>(custom)[1], -1.0f);
}

TEST(EagerTest, StackGradientFlows) {
  Tensor a = ops::scalar<float>(2.0f);
  Tensor b = ops::scalar<float>(3.0f);
  GradientTape tape;
  tape.watch(a);
  tape.watch(b);
  Tensor y = ops::reduce_sum(ops::mul(ops::stack({a, b}),
                                      ops::constant<float>({10, 100}, {2})));
  tape.StopRecording();
  auto grads = std::move(tape.gradient(y, {a, b})).value();
  EXPECT_FLOAT_EQ(grads[0].scalar<float>(), 10.0f);
  EXPECT_FLOAT_EQ(grads[1].scalar<float>(), 100.0f);
}

TEST(EagerTest, SoftmaxFamily) {
  Tensor logits = ops::constant<float>({0, 0, 1000, 0}, {2, 2});
  Tensor probs = ops::softmax(logits);
  EXPECT_NEAR(ToVector<float>(probs)[0], 0.5f, 1e-6);
  EXPECT_NEAR(ToVector<float>(probs)[2], 1.0f, 1e-6);  // stable at 1000
  Tensor log_probs = ops::log_softmax(logits);
  EXPECT_NEAR(ToVector<float>(log_probs)[1], std::log(0.5f), 1e-5);

  Tensor labels = ops::constant<int64_t>({0, 0}, {2});
  Tensor losses =
      ops::sparse_softmax_cross_entropy_with_logits(logits, labels);
  EXPECT_EQ(losses.shape(), Shape({2}));
  EXPECT_NEAR(ToVector<float>(losses)[0], -std::log(0.5f), 1e-5);
  EXPECT_NEAR(ToVector<float>(losses)[1], 0.0f, 1e-5);
}

TEST(EagerTest, RandomSeededIsDeterministic) {
  Tensor a = ops::random_normal({16}, 0, 1, /*seed=*/1234);
  Tensor b = ops::random_normal({16}, 0, 1, /*seed=*/1234);
  EXPECT_TRUE(tensor_util::AllClose(a, b));
  Tensor c = ops::random_normal({16}, 0, 1, /*seed=*/99);
  EXPECT_FALSE(tensor_util::AllClose(a, c));
}

TEST(EagerTest, RandomStatefulDraws) {
  Tensor a = ops::random_uniform({32});
  Tensor b = ops::random_uniform({32});
  EXPECT_FALSE(tensor_util::AllClose(a, b));
  for (float value : ToVector<float>(a)) {
    EXPECT_GE(value, 0.0f);
    EXPECT_LT(value, 1.0f);
  }
}

TEST(EagerTest, RandomUniformRange) {
  Tensor x = ops::random_uniform({64}, -2.0, 3.0, /*seed=*/5);
  for (float value : ToVector<float>(x)) {
    EXPECT_GE(value, -2.0f);
    EXPECT_LT(value, 3.0f);
  }
}

TEST(EagerTest, DevicePlacementAndTransparentCopies) {
  // Listing 5 from the paper: inputs on CPU, op on GPU, result fetched.
  EagerContext* ctx = EagerContext::Global();
  Tensor a = ops::scalar<float>(1.0f);
  Tensor b = ops::scalar<float>(2.0f);
  uint64_t copies_before = ctx->stats().device_copies.load();
  Tensor c;
  {
    DeviceScope scope("/gpu:0");
    c = ops::add(a, b);
  }
  EXPECT_EQ(c.device()->kind(), DeviceKind::kGpu);
  EXPECT_FLOAT_EQ(c.scalar<float>(), 3.0f);
  EXPECT_GT(ctx->stats().device_copies.load(), copies_before);
}

TEST(EagerTest, AcceleratorStickiness) {
  // Outputs of a GPU op stay on the GPU; later ops follow their inputs.
  Tensor a = ops::scalar<float>(1.0f);
  Tensor on_gpu;
  {
    DeviceScope scope("/gpu:0");
    on_gpu = ops::add(a, a);
  }
  Tensor follow = ops::mul(on_gpu, on_gpu);
  EXPECT_EQ(follow.device()->kind(), DeviceKind::kGpu);
  EXPECT_FLOAT_EQ(follow.scalar<float>(), 4.0f);
}

TEST(EagerTest, UnknownDeviceFails) {
  Tensor a = ops::scalar<float>(1.0f);
  DeviceScope scope("/gpu:7");
  EXPECT_THROW(ops::add(a, a), RuntimeError);
}

TEST(EagerTest, ListDevices) {
  std::vector<Device*> devices = list_devices();
  ASSERT_GE(devices.size(), 3u);  // CPU + sim GPU + sim TPU
  bool has_cpu = false, has_gpu = false, has_tpu = false;
  for (Device* device : devices) {
    if (device->kind() == DeviceKind::kCpu) has_cpu = true;
    if (device->kind() == DeviceKind::kGpu) has_gpu = true;
    if (device->kind() == DeviceKind::kTpu) has_tpu = true;
  }
  EXPECT_TRUE(has_cpu && has_gpu && has_tpu);
}

TEST(EagerTest, NestedDeviceScopes) {
  Tensor a = ops::scalar<float>(1.0f);
  DeviceScope outer("/gpu:0");
  {
    DeviceScope inner("/cpu:0");
    Tensor c = ops::add(a, a);
    EXPECT_EQ(c.device()->kind(), DeviceKind::kCpu);
  }
  Tensor c = ops::add(a, a);
  EXPECT_EQ(c.device()->kind(), DeviceKind::kGpu);
}

}  // namespace
}  // namespace tfe
