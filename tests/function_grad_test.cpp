// Differentiating staged functions (paper §4.2): forward variants, staged
// backward functions, higher-order gradients through Call ops, variables
// inside functions, host_func gradients, gradients computed *inside* traces.
#include <gtest/gtest.h>

#include <cmath>

#include "api/tfe.h"
#include "autodiff/function_grad.h"
#include "runtime/eager_context.h"
#include "support/strings.h"

namespace tfe {
namespace {

TEST(FunctionGradTest, GradThroughStagedFunctionMatchesEager) {
  auto body = [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
    return {ops::mul(ops::mul(args[0], args[0]), args[0])};  // x^3
  };
  Function staged = function(body, "cube");
  Tensor x = ops::scalar<float>(2.0f);

  GradientTape eager_tape;
  eager_tape.watch(x);
  Tensor eager_y = body({x})[0];
  eager_tape.StopRecording();
  Tensor eager_grad = std::move(eager_tape.gradient(eager_y, {x})).value()[0];

  GradientTape staged_tape;
  staged_tape.watch(x);
  Tensor staged_y = staged({x})[0];
  staged_tape.StopRecording();
  Tensor staged_grad =
      std::move(staged_tape.gradient(staged_y, {x})).value()[0];

  EXPECT_FLOAT_EQ(eager_y.scalar<float>(), staged_y.scalar<float>());
  EXPECT_FLOAT_EQ(eager_grad.scalar<float>(), 12.0f);
  EXPECT_FLOAT_EQ(staged_grad.scalar<float>(), 12.0f);
}

TEST(FunctionGradTest, ForwardVariantOnlyBuiltUnderTape) {
  EagerContext* ctx = EagerContext::Global();
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::square(args[0])};
      },
      "fwd_variant_probe");
  Tensor x = ops::scalar<float>(3.0f);
  f({x});  // no tape: plain call
  auto concrete = f.GetConcreteFunction({x});
  ASSERT_TRUE(concrete.ok());
  EXPECT_FALSE(ctx->functions().Contains((*concrete)->name() + "__fwd"));

  GradientTape tape;
  tape.watch(x);
  f({x});
  tape.StopRecording();
  EXPECT_TRUE(ctx->functions().Contains((*concrete)->name() + "__fwd"));
}

TEST(FunctionGradTest, BackwardIsItselfAGraphFunction) {
  // "if a computation was staged in the forward pass, its corresponding
  // backward pass will also be staged" — the gradient of a Call comes back
  // through another Call, visible as a registered __grad function.
  EagerContext* ctx = EagerContext::Global();
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::tanh(args[0])};
      },
      "staged_backward_probe");
  Tensor x = ops::scalar<float>(0.3f);
  GradientTape tape;
  tape.watch(x);
  Tensor y = f({x})[0];
  tape.StopRecording();
  Tensor grad = std::move(tape.gradient(y, {x})).value()[0];
  float expected = 1.0f - std::tanh(0.3f) * std::tanh(0.3f);
  EXPECT_NEAR(grad.scalar<float>(), expected, 1e-5);

  bool found_grad_function = false;
  for (const std::string& name : ctx->functions().ListFunctions()) {
    if (name.find("staged_backward_probe") != std::string::npos &&
        name.find("__grad") != std::string::npos) {
      found_grad_function = true;
    }
  }
  EXPECT_TRUE(found_grad_function);
}

TEST(FunctionGradTest, HigherOrderThroughStagedFunction) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(args[0], ops::mul(args[0], args[0]))};
      },
      "cube_ho");
  Tensor x = ops::scalar<float>(2.0f);
  GradientTape t1;
  GradientTape t2;
  t1.watch(x);
  t2.watch(x);
  Tensor y = f({x})[0];
  Tensor d1 = std::move(t2.gradient(y, {x})).value()[0];
  EXPECT_FLOAT_EQ(d1.scalar<float>(), 12.0f);  // 3x^2
  Tensor d2 = std::move(t1.gradient(d1, {x})).value()[0];
  EXPECT_FLOAT_EQ(d2.scalar<float>(), 12.0f);  // 6x
}

TEST(FunctionGradTest, VariablesInsideFunctions) {
  Variable v(ops::scalar<float>(3.0f));
  Function f = function(
      [&v](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(args[0], ops::mul(v.value(), v.value()))};
      },
      "var_grad");
  Tensor x = ops::scalar<float>(2.0f);
  GradientTape tape;
  Tensor y = f({x})[0];
  tape.StopRecording();
  EXPECT_FLOAT_EQ(y.scalar<float>(), 18.0f);
  // d(x*v^2)/dv = 2xv = 12.
  std::vector<Tensor> grads = gradient(tape, y, {v});
  ASSERT_TRUE(grads[0].defined());
  EXPECT_FLOAT_EQ(grads[0].scalar<float>(), 12.0f);
}

TEST(FunctionGradTest, MultiArgMultiOutput) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(args[0], args[1]), ops::add(args[0], args[1])};
      },
      "multi_grad");
  Tensor a = ops::scalar<float>(3.0f);
  Tensor b = ops::scalar<float>(4.0f);
  GradientTape tape(/*persistent=*/true);
  tape.watch(a);
  tape.watch(b);
  auto outs = f({a, b});
  tape.StopRecording();
  auto grads_mul = std::move(tape.gradient(outs[0], {a, b})).value();
  EXPECT_FLOAT_EQ(grads_mul[0].scalar<float>(), 4.0f);
  EXPECT_FLOAT_EQ(grads_mul[1].scalar<float>(), 3.0f);
  auto grads_add = std::move(tape.gradient(outs[1], {a, b})).value();
  EXPECT_FLOAT_EQ(grads_add[0].scalar<float>(), 1.0f);
  EXPECT_FLOAT_EQ(grads_add[1].scalar<float>(), 1.0f);
}

TEST(FunctionGradTest, GradientComputedInsideTrace) {
  // Staging the *gradient computation itself* (paper §4.2: "gradient
  // computation is itself expressed as a function ... so it is possible to
  // stage it or not").
  Function grad_fn = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        GradientTape tape;
        tape.watch(args[0]);
        Tensor y = ops::mul(args[0], args[0]);
        tape.StopRecording();
        auto grads = tape.gradient(y, {args[0]});
        grads.status().ThrowIfError();
        return {(*grads)[0]};
      },
      "staged_grad");
  Tensor x = ops::scalar<float>(5.0f);
  EXPECT_FLOAT_EQ(grad_fn({x})[0].scalar<float>(), 10.0f);
  EXPECT_FLOAT_EQ(grad_fn({ops::scalar<float>(-1.5f)})[0].scalar<float>(),
                  -3.0f);
  EXPECT_EQ(grad_fn.num_traces(), 1);
}

TEST(FunctionGradTest, NestedFunctionGradient) {
  // Gradient through a function that calls another function: the backward
  // builder meets a plain Call node and rematerializes its intermediates.
  Function inner = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::square(args[0])};
      },
      "nested_inner");
  Function outer = function(
      [&inner](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(inner({args[0]})[0], args[0])};  // x^3
      },
      "nested_outer");
  Tensor x = ops::scalar<float>(2.0f);
  GradientTape tape;
  tape.watch(x);
  Tensor y = outer({x})[0];
  tape.StopRecording();
  EXPECT_FLOAT_EQ(y.scalar<float>(), 8.0f);
  Tensor grad = std::move(tape.gradient(y, {x})).value()[0];
  EXPECT_FLOAT_EQ(grad.scalar<float>(), 12.0f);
}

TEST(FunctionGradTest, HostFuncGradientInsideGraph) {
  // py_func "executes under a gradient tape and as such it is
  // differentiable" (§4.7) — including when staged.
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        std::vector<Tensor> outs = host_func(
            "square_host",
            [](const std::vector<Tensor>& ins)
                -> StatusOr<std::vector<Tensor>> {
              return std::vector<Tensor>{ops::mul(ins[0], ins[0])};
            },
            {args[0]}, {{DType::kFloat32, Shape()}});
        return {ops::mul(outs[0], args[0])};  // x^3 overall
      },
      "hostfunc_grad");
  Tensor x = ops::scalar<float>(2.0f);
  GradientTape tape;
  tape.watch(x);
  Tensor y = f({x})[0];
  tape.StopRecording();
  EXPECT_FLOAT_EQ(y.scalar<float>(), 8.0f);
  Tensor grad = std::move(tape.gradient(y, {x})).value()[0];
  EXPECT_FLOAT_EQ(grad.scalar<float>(), 12.0f);
}

TEST(FunctionGradTest, EagerHostFuncGradient) {
  // Eagerly, the callback's internal ops are taped directly.
  Tensor x = ops::scalar<float>(3.0f);
  GradientTape tape;
  tape.watch(x);
  std::vector<Tensor> outs = host_func(
      "square_eager",
      [](const std::vector<Tensor>& ins) -> StatusOr<std::vector<Tensor>> {
        return std::vector<Tensor>{ops::mul(ins[0], ins[0])};
      },
      {x}, {{DType::kFloat32, Shape()}});
  tape.StopRecording();
  Tensor grad = std::move(tape.gradient(outs[0], {x})).value()[0];
  EXPECT_FLOAT_EQ(grad.scalar<float>(), 6.0f);
}

TEST(FunctionGradTest, StagedTrainingStepUpdatesVariables) {
  // The whole train step — forward, backward, SGD update — as one staged
  // function (the L2HMC/ResNet benchmark pattern).
  Variable w(ops::scalar<float>(1.0f));
  Function train_step = function(
      [&w](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        GradientTape tape;
        Tensor y = ops::square(ops::sub(ops::mul(w.value(), args[0]),
                                        args[1]));
        tape.StopRecording();
        std::vector<Tensor> grads = gradient(tape, y, {w});
        w.assign_sub(ops::mul(grads[0], ops::fill(DType::kFloat32, {}, 0.1)));
        return {y};
      },
      "train_step");
  Tensor x = ops::scalar<float>(1.0f);
  Tensor target = ops::scalar<float>(3.0f);
  float prev = 1e30f;
  for (int i = 0; i < 20; ++i) {
    float loss = train_step({x, target})[0].scalar<float>();
    EXPECT_LE(loss, prev + 1e-5f);
    prev = loss;
  }
  EXPECT_LT(prev, 0.05f);
  EXPECT_NEAR(w.value().scalar<float>(), 3.0f, 0.2f);
  EXPECT_EQ(train_step.num_traces(), 1);
}

TEST(FunctionGradTest, FiniteDifferenceThroughStagedComposite) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor h = ops::tanh(ops::mul(args[0], args[0]));
        return {ops::add(ops::exp(h), ops::sigmoid(args[0]))};
      },
      "composite_fd");
  const float point = 0.7f;
  Tensor x = ops::scalar<float>(point);
  GradientTape tape;
  tape.watch(x);
  Tensor y = f({x})[0];
  tape.StopRecording();
  Tensor grad = std::move(tape.gradient(y, {x})).value()[0];

  const float eps = 1e-3f;
  float up = f({ops::scalar<float>(point + eps)})[0].scalar<float>();
  float down = f({ops::scalar<float>(point - eps)})[0].scalar<float>();
  EXPECT_NEAR(grad.scalar<float>(), (up - down) / (2 * eps), 1e-2);
}

}  // namespace
}  // namespace tfe
