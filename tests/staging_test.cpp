// Staging (tracing JIT) behavior: paper §4.1 and §4.6, including Listings
// 6, 7, 8, the add_noise semantics, the trace cache, captures, the
// state-creation contract, input signatures, init_scope, and host_func.
#include <gtest/gtest.h>

#include <memory>

#include "api/tfe.h"

namespace tfe {
namespace {

using tensor_util::ToVector;

TEST(FunctionTest, StagedMatchesEager) {
  auto select = [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
    Tensor a = ops::constant<float>({1.0f, 0.0f}, {1, 2});
    return {ops::matmul(a, args[0])};
  };
  Tensor x = ops::constant<float>({2.0f, -2.0f}, {2, 1});

  std::vector<Tensor> eager = select({x});
  Function staged = function(select, "select");
  std::vector<Tensor> graph = staged({x});
  EXPECT_TRUE(tensor_util::AllClose(eager[0], graph[0]));
}

TEST(FunctionTest, TraceCacheHitsForSameSignature) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args[0], args[0])};
      },
      "cache_test");
  Tensor x = ops::constant<float>({1, 2}, {2});
  f({x});
  f({x});
  f({ops::constant<float>({5, 6}, {2})});  // same dtype/shape: cache hit
  EXPECT_EQ(f.num_traces(), 1);
}

TEST(FunctionTest, PolymorphicOnShape) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args[0], args[0])};
      },
      "shape_poly");
  f({ops::constant<float>({1, 2}, {2})});
  f({ops::constant<float>({1, 2, 3}, {3})});
  f({ops::constant<float>({1, 2}, {1, 2})});
  EXPECT_EQ(f.num_traces(), 3);
}

TEST(FunctionTest, PolymorphicOnDType) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args[0], args[0])};
      },
      "dtype_poly");
  f({ops::constant<float>({1}, {1})});
  f({ops::constant<double>({1}, {1})});
  EXPECT_EQ(f.num_traces(), 2);
}

TEST(FunctionTest, Listing6NonTensorArgumentsSpecialize) {
  // lossy_matmul with a `training` flag: one graph per boolean value.
  Function lossy_matmul = function(
      [](const std::vector<Tensor>& args,
         const AttrMap& options) -> std::vector<Tensor> {
        Tensor outputs = ops::matmul(args[0], args[1]);
        auto it = options.find("training");
        if (it != options.end() && it->second.Get<bool>()) {
          // Stand-in for dropout: scale by 0.8.
          outputs = ops::mul(outputs, ops::fill(DType::kFloat32, {}, 0.8));
        }
        return {outputs};
      },
      "lossy_matmul");
  Tensor w = ops::random_normal({3, 5}, 0, 1, /*seed=*/3);
  Tensor x = ops::random_normal({5, 1}, 0, 1, /*seed=*/4);
  AttrMap training_true, training_false;
  training_true["training"] = AttrValue(true);
  training_false["training"] = AttrValue(false);

  Tensor lossy = lossy_matmul({w, x}, training_true)[0];
  Tensor exact = lossy_matmul({w, x}, training_false)[0];
  EXPECT_EQ(lossy_matmul.num_traces(), 2);  // two graph functions
  EXPECT_TRUE(tensor_util::AllClose(
      lossy, ops::mul(exact, ops::fill(DType::kFloat32, {}, 0.8)), 1e-4));
  // Repeat calls hit the cache.
  lossy_matmul({w, x}, training_true);
  EXPECT_EQ(lossy_matmul.num_traces(), 2);
}

TEST(FunctionTest, DeviceIsPartOfTheCacheKey) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args[0], args[0])};
      },
      "device_key");
  Tensor x = ops::constant<float>({1, 2}, {2});
  f({x});
  {
    DeviceScope scope("/gpu:0");
    f({x});
  }
  EXPECT_EQ(f.num_traces(), 2);
}

TEST(FunctionTest, LexicalCaptureByValue) {
  // Closed-over tensors are captured at trace time and silently forwarded.
  Tensor captured = ops::constant<float>({10.0f}, {1});
  Function f = function(
      [captured](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args[0], captured)};
      },
      "capture_value");
  Tensor result = f({ops::constant<float>({1.0f}, {1})})[0];
  EXPECT_FLOAT_EQ(result.data<float>()[0], 11.0f);
}

TEST(FunctionTest, Listing7VariableCaptureByReference) {
  // Paper Listing 7, step by step.
  Variable v(ops::scalar<float>(0.0f));
  Function mutate = function(
      [&v](const std::vector<Tensor>&) -> std::vector<Tensor> {
        v.assign_add(ops::fill(DType::kFloat32, {}, 1.0));
        return {v.read_value()};
      },
      "mutate");
  mutate({});
  EXPECT_FLOAT_EQ(v.read_value().scalar<float>(), 1.0f);
  v.assign_add(ops::scalar<float>(1.0f));
  EXPECT_FLOAT_EQ(v.read_value().scalar<float>(), 2.0f);
  mutate({});
  EXPECT_FLOAT_EQ(v.read_value().scalar<float>(), 3.0f);
  EXPECT_EQ(mutate.num_traces(), 1);  // one trace, fresh state every call
}

TEST(FunctionTest, Listing8Composition) {
  // Nested graph functions: outer's graph contains a call to inner's.
  Function inner = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::relu(args[0])};
      },
      "inner");
  Function outer = function(
      [&inner](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {inner({ops::matmul(args[0], args[1])})[0]};
      },
      "outer");
  Tensor a = ops::constant<float>({1, 0, 0, 0, 1, 0, 0, 0, 1}, {3, 3});
  Tensor b = ops::constant<float>({-1, 0, 0, 0, 1, 0, 0, 0, 2}, {3, 3});
  Tensor result = outer({a, b})[0];
  EXPECT_EQ(ToVector<float>(result),
            (std::vector<float>{0, 0, 0, 0, 1, 0, 0, 0, 2}));

  // The outer graph contains a Call node, not inner's flattened body.
  auto concrete = outer.GetConcreteFunction({a, b});
  ASSERT_TRUE(concrete.ok());
  bool has_call = false;
  const Graph& graph = (*concrete)->graph();
  for (int i = 0; i < graph.num_nodes(); ++i) {
    if (graph.node(i).op == "Call") has_call = true;
  }
  EXPECT_TRUE(has_call);
}

TEST(FunctionTest, AddNoiseSemantics) {
  // Paper §4.1: host-language randomness is frozen at trace time...
  random::Philox host_rng(42, 0);
  auto add_noise_host = [&host_rng]() {
    std::vector<float> noise(4);
    for (float& value : noise) value = host_rng.NextGaussian();
    return tensor_util::FromVector<float>(noise, Shape({4}));
  };
  Function frozen = function(
      [&](const std::vector<Tensor>&) -> std::vector<Tensor> {
        // np.random.randn analog: runs once, at trace time.
        return {ops::identity(add_noise_host())};
      },
      "add_noise_frozen");
  Tensor first = frozen({})[0];
  Tensor second = frozen({})[0];
  EXPECT_TRUE(tensor_util::AllClose(first, second));  // constant forever

  // ...but a primitive random op stays random when staged.
  Function fresh = function(
      [](const std::vector<Tensor>&) -> std::vector<Tensor> {
        return {ops::random_normal({4})};
      },
      "add_noise_fresh");
  Tensor a = fresh({})[0];
  Tensor b = fresh({})[0];
  EXPECT_FALSE(tensor_util::AllClose(a, b));
}

TEST(FunctionTest, PythonSideEffectsRunAtTraceTimeOnly) {
  int counter = 0;
  Function f = function(
      [&counter](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        ++counter;  // host-language side effect
        return {ops::add(args[0], args[0])};
      },
      "side_effect");
  Tensor x = ops::constant<float>({1}, {1});
  f({x});
  f({x});
  f({x});
  EXPECT_EQ(counter, 1);  // executed only while tracing
}

TEST(FunctionTest, StateCreationContract) {
  // Variables may be created on the first trace only; the function is
  // traced a second time to record steady-state behavior (paper §4.6).
  int host_calls = 0;
  auto model_state = std::make_shared<std::unique_ptr<Variable>>();
  Function f = function(
      [model_state, &host_calls](
          const std::vector<Tensor>& args) -> std::vector<Tensor> {
        ++host_calls;
        if (*model_state == nullptr) {
          InitScope init;
          *model_state =
              std::make_unique<Variable>(ops::scalar<float>(10.0f));
        }
        return {ops::mul(args[0], (*model_state)->value())};
      },
      "creates_state");
  Tensor x = ops::constant<float>({2}, {1});
  Tensor result = f({x})[0];
  EXPECT_FLOAT_EQ(result.data<float>()[0], 20.0f);
  EXPECT_EQ(host_calls, 1);  // InitScope creation does not force a retrace
  (*model_state)->assign(ops::scalar<float>(3.0f));
  EXPECT_FLOAT_EQ(f({x})[0].data<float>()[0], 6.0f);  // reads fresh state
}

TEST(FunctionTest, VariableCreationInsideTraceTriggersRetrace) {
  int host_calls = 0;
  auto state = std::make_shared<std::unique_ptr<Variable>>();
  Function f = function(
      [state, &host_calls](const std::vector<Tensor>& args)
          -> std::vector<Tensor> {
        ++host_calls;
        if (*state == nullptr) {
          // Created in the tracing context (no init_scope): first trace
          // creates, second trace records.
          *state = std::make_unique<Variable>(
              tensor_util::Scalar<float>(4.0f));
        }
        return {ops::mul(args[0], (*state)->value())};
      },
      "retrace_state");
  Tensor x = ops::constant<float>({3}, {1});
  EXPECT_FLOAT_EQ(f({x})[0].data<float>()[0], 12.0f);
  EXPECT_EQ(host_calls, 2);  // the paper's two-trace protocol
  EXPECT_EQ(f.num_traces(), 1);  // only the second trace is kept
}

TEST(FunctionTest, UnconditionalVariableCreationViolatesContract) {
  // A callable that creates a variable on EVERY execution breaks the
  // two-trace protocol: the second (recording) trace must fail loudly.
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Variable fresh(tensor_util::Scalar<float>(1.0f));
        return {ops::mul(args[0], fresh.value())};
      },
      "always_creates");
  EXPECT_THROW(f({ops::scalar<float>(2.0f)}), RuntimeError);
}

TEST(FunctionTest, InputSignatureSingleTraceManyShapes) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::reduce_sum(args[0], {1})};
      },
      "sig");
  f.SetInputSignature({{DType::kFloat32, Shape({kUnknownDim, 3})}});
  Tensor small = ops::ones(DType::kFloat32, {2, 3});
  Tensor large = ops::ones(DType::kFloat32, {7, 3});
  EXPECT_EQ(f({small})[0].shape(), Shape({2}));
  EXPECT_EQ(f({large})[0].shape(), Shape({7}));
  EXPECT_EQ(f.num_traces(), 1);  // one graph handles all batch sizes

  // Incompatible argument rejected.
  EXPECT_THROW(f({ops::ones(DType::kFloat32, {2, 4})}), RuntimeError);
  EXPECT_THROW(f({ops::ones(DType::kFloat64, {2, 3})}), RuntimeError);
}

TEST(FunctionTest, HostLoopsUnrollIntoTheGraph) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor x = args[0];
        for (int i = 0; i < 5; ++i) {
          x = ops::add(x, args[0]);  // unrolled 5 times
        }
        return {x};
      },
      "unroll");
  auto concrete = f.GetConcreteFunction({ops::scalar<float>(1.0f)});
  ASSERT_TRUE(concrete.ok());
  int add_nodes = 0;
  for (int i = 0; i < (*concrete)->graph().num_nodes(); ++i) {
    if ((*concrete)->graph().node(i).op == "Add") ++add_nodes;
  }
  EXPECT_EQ(add_nodes, 5);
  EXPECT_FLOAT_EQ(f({ops::scalar<float>(2.0f)})[0].scalar<float>(), 12.0f);
}

TEST(FunctionTest, HostConditionalsAreBakedIn) {
  bool flag = true;
  Function f = function(
      [&flag](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        if (flag) return {ops::add(args[0], args[0])};
        return {ops::mul(args[0], args[0])};
      },
      "baked_branch");
  Tensor x = ops::scalar<float>(3.0f);
  EXPECT_FLOAT_EQ(f({x})[0].scalar<float>(), 6.0f);
  flag = false;  // too late: the taken branch is baked into the trace
  EXPECT_FLOAT_EQ(f({x})[0].scalar<float>(), 6.0f);
}

TEST(FunctionTest, SymbolicLeakIsRejected) {
  Tensor leaked;
  Function f = function(
      [&leaked](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        leaked = ops::add(args[0], args[0]);
        return {leaked};
      },
      "leak");
  f({ops::scalar<float>(1.0f)});
  ASSERT_TRUE(leaked.is_symbolic());
  EXPECT_THROW(ops::add(leaked, leaked), RuntimeError);
}

TEST(FunctionTest, MultiOutputFunctions) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args[0], args[1]), ops::mul(args[0], args[1]),
                args[0]};
      },
      "multi_out");
  auto outs = f({ops::scalar<float>(3.0f), ops::scalar<float>(4.0f)});
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_FLOAT_EQ(outs[0].scalar<float>(), 7.0f);
  EXPECT_FLOAT_EQ(outs[1].scalar<float>(), 12.0f);
  EXPECT_FLOAT_EQ(outs[2].scalar<float>(), 3.0f);  // pass-through arg
}

TEST(FunctionTest, ZeroOutputSideEffectOnlyFunction) {
  Variable counter(ops::scalar<float>(0.0f));
  Function bump = function(
      [&counter](const std::vector<Tensor>&) -> std::vector<Tensor> {
        counter.assign_add(ops::fill(DType::kFloat32, {}, 1.0));
        return {};
      },
      "bump");
  bump({});
  bump({});
  EXPECT_FLOAT_EQ(counter.value().scalar<float>(), 2.0f);
}

TEST(FunctionTest, StatefulOrderPreservedInGraph) {
  // Two assignments in program order must execute in order.
  Variable v(ops::scalar<float>(0.0f));
  Function f = function(
      [&v](const std::vector<Tensor>&) -> std::vector<Tensor> {
        v.assign(ops::fill(DType::kFloat32, {}, 1.0));
        v.assign(ops::fill(DType::kFloat32, {}, 2.0));
        return {v.read_value()};
      },
      "ordered_writes");
  for (int i = 0; i < 20; ++i) {
    EXPECT_FLOAT_EQ(f({})[0].scalar<float>(), 2.0f);
  }
}

TEST(InitScopeTest, PausesTracing) {
  Tensor eager_result;
  Function f = function(
      [&eager_result](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        {
          InitScope imperative;
          // Executed NOW, imperatively, despite the active trace.
          eager_result = ops::add(ops::scalar<float>(20.0f),
                                  ops::scalar<float>(22.0f));
          EXPECT_FALSE(eager_result.is_symbolic());
        }
        return {ops::add(args[0], eager_result)};
      },
      "init_scope");
  Tensor out = f({ops::scalar<float>(1.0f)})[0];
  EXPECT_FLOAT_EQ(out.scalar<float>(), 43.0f);
  EXPECT_FLOAT_EQ(eager_result.scalar<float>(), 42.0f);
}

TEST(HostFuncTest, EagerIsTransparent) {
  // "When executing in imperative mode, wrapping a Python function in a
  // py_func has essentially no effect" (§4.7).
  Tensor x = ops::scalar<float>(2.0f);
  std::vector<Tensor> outs = host_func(
      "double",
      [](const std::vector<Tensor>& ins) -> StatusOr<std::vector<Tensor>> {
        return std::vector<Tensor>{ops::add(ins[0], ins[0])};
      },
      {x}, {{DType::kFloat32, Shape()}});
  EXPECT_FLOAT_EQ(outs[0].scalar<float>(), 4.0f);
}

TEST(HostFuncTest, EmbedsImperativeCodeInGraphs) {
  // A data-dependent host computation (collatz-ish recursion on the tensor
  // VALUE) cannot be traced — but host_func embeds it in the graph.
  std::function<int(int)> collatz_steps = [&](int n) {
    if (n <= 1) return 0;
    return 1 + collatz_steps(n % 2 == 0 ? n / 2 : 3 * n + 1);
  };
  Function f = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor doubled = ops::mul(args[0], ops::fill(DType::kInt32, {}, 2));
        std::vector<Tensor> outs = host_func(
            "collatz",
            [&collatz_steps](const std::vector<Tensor>& ins)
                -> StatusOr<std::vector<Tensor>> {
              int32_t value = ins[0].scalar<int32_t>();
              return std::vector<Tensor>{tensor_util::Scalar<int32_t>(
                  collatz_steps(value))};
            },
            {doubled}, {{DType::kInt32, Shape()}});
        return {ops::add(outs[0], ops::fill(DType::kInt32, {}, 100))};
      },
      "with_host_func");
  // collatz_steps(6) == 8  ->  108.
  Tensor result = f({tensor_util::Scalar<int32_t>(3)})[0];
  EXPECT_EQ(result.scalar<int32_t>(), 108);
  // The graph re-executes the host callback with fresh values each call.
  Tensor result2 = f({tensor_util::Scalar<int32_t>(5)})[0];
  EXPECT_EQ(result2.scalar<int32_t>(), 100 + collatz_steps(10));
}

TEST(HostFuncTest, MakesGraphUnserializable) {
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return host_func(
            "identity",
            [](const std::vector<Tensor>& ins)
                -> StatusOr<std::vector<Tensor>> {
              return std::vector<Tensor>{ins[0]};
            },
            {args[0]}, {{DType::kFloat32, Shape()}});
      },
      "unserializable");
  auto concrete = f.GetConcreteFunction({ops::scalar<float>(1.0f)});
  ASSERT_TRUE(concrete.ok());
  EXPECT_FALSE((*concrete)->IsSerializable());
}

}  // namespace
}  // namespace tfe
