// Device naming, manager, cost model, and simulated-device behavior.
#include <gtest/gtest.h>

#include "device/cost_model.h"
#include "device/device.h"
#include "device/device_manager.h"

namespace tfe {
namespace {

TEST(DeviceNameTest, FullNameRoundTrip) {
  auto parts = ParseDeviceName("/job:training/task:2/device:GPU:1");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->job, "training");
  EXPECT_EQ(parts->task, 2);
  EXPECT_EQ(parts->kind, DeviceKind::kGpu);
  EXPECT_EQ(parts->index, 1);
  EXPECT_EQ(parts->ToString(), "/job:training/task:2/device:GPU:1");
}

TEST(DeviceNameTest, ShortForms) {
  EXPECT_EQ(ParseDeviceName("/gpu:0")->kind, DeviceKind::kGpu);
  EXPECT_EQ(ParseDeviceName("gpu:1")->index, 1);
  EXPECT_EQ(ParseDeviceName("TPU")->kind, DeviceKind::kTpu);
  EXPECT_EQ(ParseDeviceName("/device:CPU:0")->kind, DeviceKind::kCpu);
  EXPECT_EQ(ParseDeviceName("cpu")->job, "localhost");
}

TEST(DeviceNameTest, Malformed) {
  EXPECT_FALSE(ParseDeviceName("").ok());
  EXPECT_FALSE(ParseDeviceName("/job:").ok());
  EXPECT_FALSE(ParseDeviceName("/task:x/device:CPU:0").ok());
  EXPECT_FALSE(ParseDeviceName("/device:NPU:0").ok());
  EXPECT_FALSE(ParseDeviceName("/device:GPU:0:9").ok());
}

TEST(DeviceManagerTest, AddFindList) {
  DeviceManager manager;
  auto cpu = manager.AddDevice(MakeCpuDevice());
  ASSERT_TRUE(cpu.ok());
  auto gpu = manager.AddDevice(MakeSimGpuDevice());
  ASSERT_TRUE(gpu.ok());

  EXPECT_EQ(manager.ListDevices().size(), 2u);
  EXPECT_EQ(*manager.FindDevice("/gpu:0"), *gpu);
  EXPECT_EQ(*manager.FindDevice("/job:localhost/task:0/device:CPU:0"), *cpu);
  EXPECT_FALSE(manager.FindDevice("/gpu:1").ok());
  EXPECT_EQ(manager.HostCpu(), *cpu);
  EXPECT_EQ(*manager.FirstDeviceOfKind(DeviceKind::kGpu), *gpu);
  EXPECT_FALSE(manager.FirstDeviceOfKind(DeviceKind::kTpu).ok());
}

TEST(DeviceManagerTest, RejectsDuplicates) {
  DeviceManager manager;
  ASSERT_TRUE(manager.AddDevice(MakeCpuDevice()).ok());
  EXPECT_FALSE(manager.AddDevice(MakeCpuDevice()).ok());
}

TEST(CostModelTest, MatMulFlops) {
  // [8,16] x [16,32] -> [8,32]: 2*8*32*16 = 8192 FLOPs.
  OpCost cost = EstimateOpCost("MatMul", {Shape({8, 16}), Shape({16, 32})},
                               {Shape({8, 32})}, 4);
  EXPECT_DOUBLE_EQ(cost.flops, 8192.0);
  EXPECT_GT(cost.bytes, 0.0);
}

TEST(CostModelTest, Conv2DFlops) {
  // out 1x8x8x4, window 3*3*2 -> 2*256*18 FLOPs.
  OpCost cost = EstimateOpCost(
      "Conv2D", {Shape({1, 8, 8, 2}), Shape({3, 3, 2, 4})},
      {Shape({1, 8, 8, 4})}, 4);
  EXPECT_DOUBLE_EQ(cost.flops, 2.0 * (1 * 8 * 8 * 4) * (3 * 3 * 2));
}

TEST(CostModelTest, ElementwiseDefault) {
  OpCost cost = EstimateOpCost("Add", {Shape({10}), Shape({10})},
                               {Shape({10})}, 4);
  EXPECT_DOUBLE_EQ(cost.flops, 10.0);
  EXPECT_DOUBLE_EQ(cost.bytes, 30.0 * 4);
}

TEST(CostModelTest, RooflineComputeVsMemoryBound) {
  DeviceCostParams params;
  params.flops_per_second = 1e12;
  params.bytes_per_second = 1e11;
  params.efficiency = 1.0;
  OpCost compute_bound{1e9, 1e3};
  OpCost memory_bound{1e3, 1e9};
  EXPECT_EQ(KernelTimeNs(compute_bound, params, false), 1'000'000u);
  EXPECT_EQ(KernelTimeNs(memory_bound, params, false), 10'000'000u);
}

TEST(CostModelTest, CompiledDiscountAndDispatch) {
  DeviceCostParams params;
  params.flops_per_second = 1e12;
  params.bytes_per_second = 1e12;
  params.efficiency = 1.0;
  params.eager_dispatch_ns = 500;
  params.fused_discount = 0.5;
  OpCost cost{1e6, 0};
  uint64_t eager = KernelTimeNs(cost, params, /*compiled=*/false);
  uint64_t compiled = KernelTimeNs(cost, params, /*compiled=*/true);
  EXPECT_EQ(eager, 1000u + 500u);
  EXPECT_EQ(compiled, 500u);
}

TEST(SimDeviceTest, CompileCacheChargesOnce) {
  auto tpu = MakeSimTpuDevice();
  uint64_t first = tpu->CompileCostNs("MatMul;[2,2];[2,2]");
  EXPECT_GT(first, 0u);
  EXPECT_EQ(tpu->CompileCostNs("MatMul;[2,2];[2,2]"), 0u);
  EXPECT_GT(tpu->CompileCostNs("MatMul;[4,4];[4,4]"), 0u);
  // Timer resets preserve warmed compilations (the paper excludes one-time
  // build costs)...
  tpu->ResetSimulation();
  EXPECT_EQ(tpu->CompileCostNs("MatMul;[2,2];[2,2]"), 0u);
  // ...while a full cold-start clears them.
  tpu->ResetCompileCache();
  EXPECT_GT(tpu->CompileCostNs("MatMul;[2,2];[2,2]"), 0u);
}

TEST(SimDeviceTest, Presets) {
  auto cpu = MakeCpuDevice();
  EXPECT_TRUE(cpu->synchronous());
  EXPECT_TRUE(cpu->executes_kernels());
  EXPECT_FALSE(cpu->is_accelerator());

  auto gpu = MakeSimGpuDevice(0, /*executes_kernels=*/false);
  EXPECT_FALSE(gpu->synchronous());  // async stream
  EXPECT_FALSE(gpu->executes_kernels());
  EXPECT_TRUE(gpu->is_accelerator());

  auto tpu = MakeSimTpuDevice();
  EXPECT_TRUE(tpu->synchronous());
  EXPECT_GT(tpu->cost_params().per_op_compile_ns, 0u);
  EXPECT_LT(tpu->cost_params().fused_discount, 1.0);
}

}  // namespace
}  // namespace tfe
