// Virtual-time semantics of the simulated accelerators — the mechanism
// behind Figure 3 / Table 1 (DESIGN.md §2).
#include <gtest/gtest.h>

#include "api/tfe.h"
#include "models/mlp.h"

namespace tfe {
namespace {

// These tests reconfigure the global context; each fixture restores the
// default afterwards so other tests see the standard runtime.
class SimTimeTest : public ::testing::Test {
 protected:
  static void Configure(bool execute_kernels, HostProfile profile) {
    EagerContext::Options options;
    options.accelerators_execute_kernels = execute_kernels;
    options.host_profile = profile;
    EagerContext::ResetGlobal(options);
  }
  void TearDown() override {
    EagerContext::ResetGlobal(EagerContext::Options());
  }
};

TEST_F(SimTimeTest, EagerGpuOverlapsHostAndDevice) {
  Configure(true, HostProfile{/*per_op=*/10'000, /*call=*/10'000});
  EagerContext* ctx = EagerContext::Global();
  ctx->ResetVirtualTime();
  Tensor x = ops::random_normal({64, 64}, 0, 1, /*seed=*/1);
  {
    DeviceScope gpu("/gpu:0");
    Tensor h = ops::matmul(x, x);
    for (int i = 0; i < 9; ++i) h = ops::matmul(h, x);
  }
  // Host ran ahead of the async device: host time reflects dispatch cost,
  // device timeline holds the kernels.
  Device* gpu = ctx->devices().FindDevice("/gpu:0").value();
  EXPECT_GE(ctx->host_now_ns(), 10u * 10'000u);
  EXPECT_GT(gpu->timeline().busy_ns(), 0u);
  uint64_t synced = ctx->SyncAllDevices();
  EXPECT_GE(synced, gpu->timeline().free_at_ns());
}

TEST_F(SimTimeTest, TimingOnlyModeProducesOpaque) {
  Configure(/*execute_kernels=*/false, HostProfile::Native());
  Tensor x = ops::random_normal({8, 8}, 0, 1, /*seed=*/2);
  DeviceScope gpu("/gpu:0");
  Tensor y = ops::matmul(ops::identity(x), ops::identity(x));
  EXPECT_TRUE(y.is_opaque());
  EXPECT_EQ(y.shape(), Shape({8, 8}));
  // Opaque tensors still flow through further ops and training-style code.
  Tensor z = ops::add(y, y);
  EXPECT_TRUE(z.is_opaque());
}

TEST_F(SimTimeTest, TimingOnlyVariablesTrainWithoutNumerics) {
  Configure(/*execute_kernels=*/false, HostProfile::Native());
  DeviceScope gpu("/gpu:0");
  Tensor init = ops::random_normal({4, 4}, 0, 1, /*seed=*/3);
  ASSERT_TRUE(init.is_opaque());
  Variable w(init);
  GradientTape tape;
  Tensor loss = ops::reduce_sum(ops::mul(w.value(), w.value()));
  tape.StopRecording();
  std::vector<Tensor> grads = gradient(tape, loss, {w});
  ASSERT_TRUE(grads[0].defined());
  w.assign_sub(grads[0]);
  EXPECT_TRUE(w.value().is_opaque());
}

TEST_F(SimTimeTest, TpuEagerPaysCompileOncePerSignature) {
  Configure(true, HostProfile::Native());
  EagerContext* ctx = EagerContext::Global();
  ctx->ResetVirtualTime();
  Tensor x = ops::random_normal({16, 16}, 0, 1, /*seed=*/4);
  DeviceScope tpu("/tpu:0");

  Tensor y = ops::matmul(x, x);
  uint64_t after_first = ctx->host_now_ns();
  y = ops::matmul(y, y);
  uint64_t second_delta = ctx->host_now_ns() - after_first;
  // First op paid the per-op compile cost; the second hit the cache.
  Device* tpu_device = ctx->devices().FindDevice("/tpu:0").value();
  EXPECT_GE(after_first, tpu_device->cost_params().per_op_compile_ns);
  EXPECT_LT(second_delta, after_first);
}

TEST_F(SimTimeTest, StagedTpuBeatsEagerTpuByAnOrderOfMagnitude) {
  // The Table 1 mechanism, in miniature: a chain of small matmuls on the
  // simulated TPU, eager vs. staged.
  Configure(true, HostProfile::Native());
  EagerContext* ctx = EagerContext::Global();

  // Large enough that per-op dispatch dominates the fixed per-call launch
  // cost of the compiled function (paper: amortized "over a large graph").
  auto body = [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
    Tensor h = args[0];
    for (int i = 0; i < 1000; ++i) h = ops::matmul(h, args[0]);
    return {h};
  };
  Tensor x = ops::random_normal({8, 8}, 0, 0.1, /*seed=*/5);

  // Eager on TPU (warm the compile cache first, as the paper excludes
  // one-time build costs).
  uint64_t eager_ns = 0;
  {
    DeviceScope tpu("/tpu:0");
    body({x});
    ctx->ResetVirtualTime();
    body({x});
    eager_ns = ctx->SyncAllDevices();
  }

  Function staged = function(body, "tpu_chain");
  uint64_t staged_ns = 0;
  {
    DeviceScope tpu("/tpu:0");
    staged({x});  // trace + compile
    ctx->ResetVirtualTime();
    staged({x});
    staged_ns = ctx->SyncAllDevices();
  }
  EXPECT_GT(eager_ns, 10 * staged_ns)
      << "eager " << eager_ns << "ns vs staged " << staged_ns << "ns";
}

TEST_F(SimTimeTest, HostProfileMakesEagerDispatchBound) {
  // The Figure 4 mechanism: with an interpreter-like per-op cost, staging a
  // many-small-op function removes the host bottleneck.
  Configure(true, HostProfile::Python());
  EagerContext* ctx = EagerContext::Global();

  auto body = [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
    Tensor h = args[0];
    for (int i = 0; i < 50; ++i) {
      h = ops::add(ops::mul(h, args[0]), args[0]);
    }
    return {h};
  };
  Tensor x = ops::random_normal({4}, 0, 0.01, /*seed=*/6);

  ctx->ResetVirtualTime();
  body({x});
  uint64_t eager_ns = ctx->SyncAllDevices();

  Function staged = function(body, "cpu_chain");
  staged({x});  // trace
  ctx->ResetVirtualTime();
  staged({x});
  uint64_t staged_ns = ctx->SyncAllDevices();

  EXPECT_GT(eager_ns, 5 * staged_ns)
      << "eager " << eager_ns << "ns vs staged " << staged_ns << "ns";
  // ~100 ops at the Python-profile per-op cost each.
  EXPECT_GE(eager_ns, 100u * HostProfile::Python().per_op_dispatch_ns);
}

TEST_F(SimTimeTest, CopiesChargeTransferTime) {
  Configure(true, HostProfile::Native());
  EagerContext* ctx = EagerContext::Global();
  ctx->ResetVirtualTime();
  Tensor big = ops::random_normal({1024, 1024}, 0, 1, /*seed=*/7);  // 4MB
  uint64_t before = ctx->host_now_ns();
  {
    DeviceScope gpu("/gpu:0");
    ops::identity(big);  // forces a host->device copy
  }
  // 4MB over the 12GB/s interconnect ~ 350us.
  EXPECT_GE(ctx->host_now_ns() - before, 300'000u);
}

TEST_F(SimTimeTest, ResetVirtualTimeClearsEverything) {
  Configure(true, HostProfile::Python());
  EagerContext* ctx = EagerContext::Global();
  Tensor x = ops::scalar<float>(1.0f);
  ops::add(x, x);
  EXPECT_GT(ctx->host_now_ns(), 0u);
  ctx->ResetVirtualTime();
  EXPECT_EQ(ctx->host_now_ns(), 0u);
  EXPECT_EQ(ctx->stats().eager_ops.load(), 0u);
}

}  // namespace
}  // namespace tfe
