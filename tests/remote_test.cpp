// Remote devices as first-class Devices (paper §4.5 unified with §5's async
// dispatch): ops scoped to a connected worker's device flow through the
// ordinary dispatch -> OpQueue path, return pending handles immediately, and
// resolve via the pending-handle RPC protocol. Failures — unknown device
// names, workers dying mid-flight, cross-worker transfers — surface as
// deferred poisoned-handle errors at the next sync point: no crash, no hang.
#include <gtest/gtest.h>

#include <vector>

#include "api/tfe.h"
#include "distrib/cluster.h"
#include "tensor/tensor_handle.h"

namespace tfe {
namespace {

using tensor_util::ToVector;

constexpr char kTask0[] = "/job:worker/task:0/device:CPU:0";
constexpr char kTask1[] = "/job:worker/task:1/device:CPU:0";

// Each test connects a fresh cluster into a fresh global context; the
// teardown reset drops the RemoteDevice registrations before the next test.
class RemoteExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EagerContext::ResetGlobal(EagerContext::Options());
    cluster_ = std::make_unique<Cluster>(Cluster::Options{});
    ASSERT_TRUE(cluster_->Connect(EagerContext::Global()).ok());
  }
  void TearDown() override {
    cluster_.reset();
    EagerContext::ResetGlobal(EagerContext::Options());
  }

  std::unique_ptr<Cluster> cluster_;
};
using RemoteFailureTest = RemoteExecutionTest;

TEST_F(RemoteExecutionTest, DeviceScopeWithRemoteNameRunsOps) {
  // "The user uses the same syntax as for local devices but a remote device
  // name" — and, unlike the blocking Cluster API, gets a pending handle back
  // without waiting for the worker.
  Tensor a = ops::constant<float>({1, 2}, {2});
  Tensor b = ops::constant<float>({10, 20}, {2});
  Tensor sum;
  {
    tfe::device scope(kTask1);
    sum = ops::add(a, b);
  }
  ASSERT_NE(sum.pending_handle(), nullptr);
  ASSERT_NE(sum.pending_handle()->remote_info(), nullptr);
  ASSERT_NE(sum.device(), nullptr);
  EXPECT_TRUE(sum.device()->IsRemote());
  EXPECT_EQ(sum.device()->name(), kTask1);
  // Metadata is known at dispatch time; the value fetches on first read.
  EXPECT_EQ(sum.dtype(), DType::kFloat32);
  EXPECT_EQ(sum.shape(), Shape({2}));
  EXPECT_EQ(ToVector<float>(sum), (std::vector<float>{11, 22}));
}

TEST_F(RemoteExecutionTest, ChainStaysRemoteAndPassesByStoreId) {
  // A dependent chain dispatched back-to-back: consumers reference producer
  // results by pre-assigned store id, so no intermediate value ever crosses
  // back to the client.
  Tensor x = ops::constant<float>({1, 2, 3, 4}, {4});
  Tensor h = x;
  {
    tfe::device scope(kTask0);
    for (int i = 0; i < 20; ++i) {
      h = ops::add(ops::mul(h, ops::scalar<float>(0.5f)), x);
    }
  }
  ASSERT_TRUE(EagerContext::Global()->Sync().ok());
  ASSERT_NE(h.device(), nullptr);
  EXPECT_TRUE(h.device()->IsRemote());
  std::vector<float> remote_values = ToVector<float>(h);

  // Same chain locally: values must agree.
  Tensor hs = x;
  for (int i = 0; i < 20; ++i) {
    hs = ops::add(ops::mul(hs, ops::scalar<float>(0.5f)), x);
  }
  std::vector<float> local_values = ToVector<float>(hs);
  ASSERT_EQ(remote_values.size(), local_values.size());
  for (size_t i = 0; i < local_values.size(); ++i) {
    EXPECT_NEAR(remote_values[i], local_values[i], 1e-5) << "element " << i;
  }
}

TEST_F(RemoteExecutionTest, UnscopedOpFollowsRemoteInput) {
  // Data attraction (paper §4.4 applied to §4.5): an op outside any scope
  // whose input lives remotely runs on that worker, so results stay remote.
  Tensor a = ops::constant<float>({3, 4}, {2});
  Tensor remote_sum;
  {
    tfe::device scope(kTask1);
    remote_sum = ops::add(a, a);
  }
  Tensor doubled = ops::mul(remote_sum, ops::scalar<float>(2.0f));
  ASSERT_NE(doubled.device(), nullptr);
  EXPECT_TRUE(doubled.device()->IsRemote());
  EXPECT_EQ(doubled.device()->name(), kTask1);
  EXPECT_EQ(ToVector<float>(doubled), (std::vector<float>{12, 16}));
}

TEST_F(RemoteExecutionTest, StagedFunctionRunsAsOneRemoteOp) {
  // A staged function under a remote scope ships its serialized graph once
  // and runs as a single remote op per call.
  Function f = function([](const std::vector<Tensor>& args) {
    Tensor prod = ops::matmul(args[0], args[1]);
    return std::vector<Tensor>{ops::add(prod, args[0])};
  });
  Tensor a = ops::constant<float>({1, 2, 3, 4}, {2, 2});
  Tensor b = ops::constant<float>({1, 0, 0, 1}, {2, 2});
  std::vector<float> expected = ToVector<float>(f({a, b})[0]);

  Tensor remote_result;
  {
    tfe::device scope(kTask1);
    remote_result = f({a, b})[0];
    // Second call: the function is already registered on the worker.
    remote_result = f({remote_result, b})[0];
  }
  ASSERT_NE(remote_result.device(), nullptr);
  EXPECT_TRUE(remote_result.device()->IsRemote());
  Tensor local_twice = f({f({a, b})[0], b})[0];
  EXPECT_EQ(ToVector<float>(remote_result), ToVector<float>(local_twice));
  (void)expected;
}

TEST_F(RemoteExecutionTest, SyncDrainsRemoteQueues) {
  Tensor x = ops::constant<float>({2.0f}, {1});
  Tensor y;
  {
    tfe::device scope(kTask0);
    y = ops::mul(x, x);
  }
  ASSERT_TRUE(tfe::sync().ok());
  // After a sync every remote op has resolved (not merely been sent).
  ASSERT_NE(y.pending_handle(), nullptr);
  EXPECT_TRUE(y.pending_handle()->resolved());
  EXPECT_EQ(ToVector<float>(y), (std::vector<float>{4.0f}));
}

TEST_F(RemoteFailureTest, UnknownRemoteDeviceDefersToSyncPoint) {
  // An unknown worker name is not an eager throw: the op returns poisoned
  // outputs and the error surfaces at the next sync point, exactly like a
  // worker failing mid-op.
  Tensor a = ops::constant<float>({1, 2}, {2});
  Tensor b;
  {
    tfe::device scope("/job:worker/task:9/device:CPU:0");
    b = ops::add(a, a);
  }
  ASSERT_NE(b.pending_handle(), nullptr);
  Status status = EagerContext::Global()->Sync();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  // Sync cleared the deferred error; the context stays usable.
  EXPECT_TRUE(EagerContext::Global()->Sync().ok());
  EXPECT_EQ(ToVector<float>(ops::add(a, a)), (std::vector<float>{2, 4}));
}

TEST_F(RemoteFailureTest, WorkerShutdownPoisonsInFlightOps) {
  // Ops dispatched against a dead worker surface Unavailable at the next
  // sync point — no crash, no hang. The shutdown happens with a chain in
  // flight; everything the worker never got to is poisoned.
  Tensor x = ops::constant<float>({1.0f}, {1});
  Tensor h = x;
  {
    tfe::device scope(kTask1);
    for (int i = 0; i < 8; ++i) h = ops::add(h, x);
  }
  ASSERT_TRUE(cluster_->ShutdownWorker("worker", 1).ok());
  Tensor after;
  {
    tfe::device scope(kTask1);
    after = ops::add(h, x);
  }
  Status status = EagerContext::Global()->Sync();
  EXPECT_FALSE(status.ok()) << "post-shutdown op must fail";
  // Reading the poisoned value reports an error rather than blocking.
  ASSERT_NE(after.pending_handle(), nullptr);
  EXPECT_FALSE(after.pending_handle()->status().ok());
  // The context survives: local work continues after the failure.
  EXPECT_EQ(ToVector<float>(ops::add(x, x)), (std::vector<float>{2.0f}));
}

TEST_F(RemoteFailureTest, ShutdownWithOpsInFlightDoesNotHang) {
  // A long dependent chain racing a shutdown: whatever the exact cut point,
  // the sync must return and the process must not crash.
  Tensor x = ops::constant<float>({1.0f, 2.0f}, {2});
  Tensor h = x;
  {
    tfe::device scope(kTask0);
    for (int i = 0; i < 64; ++i) h = ops::add(h, x);
  }
  ASSERT_TRUE(cluster_->ShutdownWorker("worker", 0).ok());
  (void)EagerContext::Global()->Sync();  // must return, status depends on race
  SUCCEED();
}

TEST_F(RemoteFailureTest, CrossWorkerInputPoisonsWithInvalidArgument) {
  // Tensors do not implicitly hop between workers (the paper's explicit-copy
  // model); the violation is a deferred InvalidArgument, not a crash.
  Tensor a = ops::constant<float>({5, 6}, {2});
  Tensor on_task0;
  {
    tfe::device scope(kTask0);
    on_task0 = ops::add(a, a);
  }
  Tensor cross;
  {
    tfe::device scope(kTask1);
    cross = ops::add(on_task0, a);
  }
  Status status = EagerContext::Global()->Sync();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  ASSERT_NE(cross.pending_handle(), nullptr);
  EXPECT_FALSE(cross.pending_handle()->status().ok());
}

TEST_F(RemoteFailureTest, PoisonPropagatesThroughDependentRemoteOps) {
  // A poisoned producer poisons its consumers with the *original* status.
  Tensor a = ops::constant<float>({1, 2}, {2});
  Tensor bad, downstream;
  {
    tfe::device scope("/job:worker/task:7/device:CPU:0");
    bad = ops::add(a, a);
  }
  {
    tfe::device scope(kTask0);
    downstream = ops::mul(bad, a);
  }
  Status status = EagerContext::Global()->Sync();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound) << status.ToString();
  ASSERT_NE(downstream.pending_handle(), nullptr);
  EXPECT_FALSE(downstream.pending_handle()->status().ok());
}

TEST_F(RemoteExecutionTest, BlockingClusterApiStillWorksAlongside) {
  // The pre-existing blocking RPC API and the dispatch path share worker
  // stores without interfering.
  auto put = cluster_->Put(kTask1, ops::constant<float>({7, 8}, {2}));
  ASSERT_TRUE(put.ok());
  auto sums = cluster_->RunOp(kTask1, "Add", {*put, *put});
  ASSERT_TRUE(sums.ok());
  auto fetched = cluster_->Fetch((*sums)[0]);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(ToVector<float>(*fetched), (std::vector<float>{14, 16}));

  Tensor dispatched;
  {
    tfe::device scope(kTask1);
    dispatched = ops::add(ops::constant<float>({1, 1}, {2}),
                          ops::constant<float>({2, 2}, {2}));
  }
  EXPECT_EQ(ToVector<float>(dispatched), (std::vector<float>{3, 3}));
}

TEST_F(RemoteExecutionTest, CopyToShipsLocalTensorToWorker) {
  // copy_to places a local value in a worker's store; ops scoped there
  // consume it by store id with no further transfer.
  Tensor local = ops::constant<float>({1, 2, 3}, {3});
  Tensor shipped = tfe::copy_to(local, kTask1);
  ASSERT_NE(shipped.pending_handle(), nullptr);
  ASSERT_NE(shipped.pending_handle()->remote_info(), nullptr);
  EXPECT_EQ(shipped.device()->name(), kTask1);
  Tensor doubled;
  {
    tfe::device scope(kTask1);
    doubled = ops::add(shipped, shipped);
  }
  EXPECT_EQ(ToVector<float>(doubled), (std::vector<float>{2, 4, 6}));
}

TEST_F(RemoteExecutionTest, CopyToBringsRemoteValueHome) {
  Tensor remote;
  {
    tfe::device scope(kTask0);
    remote = ops::mul(ops::constant<float>({2, 3}, {2}),
                      ops::constant<float>({10, 10}, {2}));
  }
  Tensor home = tfe::copy_to(remote, EagerContext::Global()->HostCpu());
  EXPECT_EQ(home.pending_handle(), nullptr);
  EXPECT_FALSE(home.device() != nullptr && home.device()->IsRemote());
  EXPECT_EQ(ToVector<float>(home), (std::vector<float>{20, 30}));
}

TEST_F(RemoteExecutionTest, CopyToMovesTensorBetweenWorkers) {
  // The explicit hop the cross-worker InvalidArgument directs users to:
  // fetch from task 0's store, re-put into task 1's, consume on task 1.
  Tensor a = ops::constant<float>({5, 6}, {2});
  Tensor on_task0;
  {
    tfe::device scope(kTask0);
    on_task0 = ops::add(a, a);
  }
  Tensor on_task1 = tfe::copy_to(on_task0, kTask1);
  ASSERT_NE(on_task1.pending_handle(), nullptr);
  ASSERT_NE(on_task1.pending_handle()->remote_info(), nullptr);
  EXPECT_EQ(on_task1.device()->name(), kTask1);
  Tensor cross;
  {
    tfe::device scope(kTask1);
    cross = ops::add(on_task1, a);
  }
  ASSERT_TRUE(EagerContext::Global()->Sync().ok());
  EXPECT_EQ(ToVector<float>(cross), (std::vector<float>{15, 18}));
}

TEST_F(RemoteExecutionTest, CopyToSameDeviceIsANoOp) {
  Tensor remote;
  {
    tfe::device scope(kTask1);
    remote = ops::add(ops::constant<float>({1, 1}, {2}),
                      ops::constant<float>({1, 1}, {2}));
  }
  Tensor same = tfe::copy_to(remote, kTask1);
  ASSERT_NE(same.pending_handle(), nullptr);
  ASSERT_NE(same.pending_handle()->remote_info(), nullptr);
  EXPECT_EQ(same.pending_handle()->remote_info()->handle_id,
            remote.pending_handle()->remote_info()->handle_id);
}

TEST_F(RemoteFailureTest, CopyToSurfacesPoisonedSourceStatus) {
  // Moving a poisoned tensor reports the original failure instead of
  // shipping garbage.
  Tensor bad;
  {
    tfe::device scope("/job:worker/task:9/device:CPU:0");
    bad = ops::add(ops::constant<float>({1}, {1}),
                   ops::constant<float>({1}, {1}));
  }
  auto moved = EagerContext::Global()->CopyTo(
      bad, EagerContext::Global()->devices().FindDevice(kTask0).value());
  EXPECT_FALSE(moved.ok());
  (void)EagerContext::Global()->Sync();  // clear the deferred error
}

}  // namespace
}  // namespace tfe
