// Distributed execution (paper §4.5): worker servers, remote device names,
// remote tensors, remote graph-function execution.
#include <gtest/gtest.h>

#include <thread>

#include "api/tfe.h"
#include "distrib/cluster.h"
#include "staging/control_flow.h"

namespace tfe {
namespace {

Cluster::Options TwoWorkerOptions() {
  Cluster::Options options;
  options.jobs = {{"training", 2}};
  return options;
}

TEST(ClusterTest, WorkersAddDevicesToThePool) {
  Cluster cluster(TwoWorkerOptions());
  std::vector<std::string> devices = cluster.ListRemoteDevices();
  ASSERT_GE(devices.size(), 2u);
  bool task0 = false, task1 = false;
  for (const std::string& name : devices) {
    if (name == "/job:training/task:0/device:CPU:0") task0 = true;
    if (name == "/job:training/task:1/device:CPU:0") task1 = true;
  }
  EXPECT_TRUE(task0);
  EXPECT_TRUE(task1);
}

TEST(ClusterTest, RemoteOpWithRemoteName) {
  // "To run an operation on a remote device, the user uses the same syntax
  // as for local devices but a remote device name."
  Cluster cluster(TwoWorkerOptions());
  const std::string device = "/job:training/task:1/device:CPU:0";
  auto a = cluster.Put(device, ops::constant<float>({1, 2}, {2}));
  ASSERT_TRUE(a.ok());
  auto b = cluster.Put(device, ops::constant<float>({10, 20}, {2}));
  ASSERT_TRUE(b.ok());
  auto sums = cluster.RunOp(device, "Add", {*a, *b});
  ASSERT_TRUE(sums.ok());
  ASSERT_EQ(sums->size(), 1u);
  // Result stays on the remote device...
  EXPECT_EQ((*sums)[0].device, device);
  // ...until explicitly copied to the central server.
  auto fetched = cluster.Fetch((*sums)[0]);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(tensor_util::ToVector<float>(*fetched),
            (std::vector<float>{11, 22}));
}

TEST(ClusterTest, RemoteTensorsStayRemoteAcrossChains) {
  Cluster cluster(TwoWorkerOptions());
  const std::string device = "/job:training/task:0/device:CPU:0";
  auto x = cluster.Put(device, ops::scalar<float>(2.0f));
  ASSERT_TRUE(x.ok());
  RemoteTensor current = *x;
  for (int i = 0; i < 4; ++i) {
    auto next = cluster.RunOp(device, "Mul", {current, current});
    ASSERT_TRUE(next.ok());
    current = (*next)[0];
  }
  auto value = cluster.Fetch(current);
  ASSERT_TRUE(value.ok());
  EXPECT_FLOAT_EQ(value->scalar<float>(), 65536.0f);  // 2^16
}

TEST(ClusterTest, CrossWorkerInputsNeedExplicitCopies) {
  Cluster cluster(TwoWorkerOptions());
  auto on_zero =
      cluster.Put("/job:training/task:0/device:CPU:0", ops::scalar<float>(1));
  auto on_one =
      cluster.Put("/job:training/task:1/device:CPU:0", ops::scalar<float>(2));
  ASSERT_TRUE(on_zero.ok());
  ASSERT_TRUE(on_one.ok());
  auto bad = cluster.RunOp("/job:training/task:0/device:CPU:0", "Add",
                           {*on_zero, *on_one});
  EXPECT_FALSE(bad.ok());

  // Explicit Fetch + Put makes it work.
  auto hauled = cluster.Put("/job:training/task:0/device:CPU:0",
                            cluster.Fetch(*on_one).value());
  ASSERT_TRUE(hauled.ok());
  auto sum = cluster.RunOp("/job:training/task:0/device:CPU:0", "Add",
                           {*on_zero, *hauled});
  ASSERT_TRUE(sum.ok());
  EXPECT_FLOAT_EQ(cluster.Fetch((*sum)[0])->scalar<float>(), 3.0f);
}

TEST(ClusterTest, RunWholeGraphFunctionRemotely) {
  // "The main program can then execute operations or whole graph functions
  // on remote devices through the worker servers."
  Cluster cluster(TwoWorkerOptions());
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor h = ops::tanh(args[0]);
        return {ops::add(ops::mul(h, h), ops::fill(DType::kFloat32, {}, 1.0))};
      },
      "remote_fn");
  Tensor x = ops::constant<float>({0.5f, -0.25f}, {2});
  Tensor local_result = f({x})[0];

  auto concrete = f.GetConcreteFunction({x});
  ASSERT_TRUE(concrete.ok());
  const std::string device = "/job:training/task:1/device:CPU:0";
  auto remote_x = cluster.Put(device, x);
  ASSERT_TRUE(remote_x.ok());
  auto remote_result = cluster.RunFunction(device, **concrete, {*remote_x});
  ASSERT_TRUE(remote_result.ok());
  auto fetched = cluster.Fetch((*remote_result)[0]);
  ASSERT_TRUE(fetched.ok());
  EXPECT_TRUE(tensor_util::AllClose(local_result, *fetched));
}

TEST(ClusterTest, RemoteFunctionWithNestedCalleesAndCond) {
  // The shipped bundle must include nested Call and Cond callees.
  Cluster cluster(TwoWorkerOptions());
  Function inner = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::square(args[0])};
      },
      "remote_nested_inner");
  Function halve = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(args[0], ops::fill(DType::kFloat32, {}, 0.5))};
      },
      "remote_halve");
  Function negate = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::neg(args[0])};
      },
      "remote_negate");
  Function outer = function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor squared = inner({args[0]})[0];
        Tensor big = ops::greater(squared, ops::fill(DType::kFloat32, {}, 4.0));
        return ops::cond(big, halve, negate, {squared});
      },
      "remote_nested_outer");
  Tensor small = ops::scalar<float>(1.0f);
  Tensor large = ops::scalar<float>(10.0f);
  float expected_small = outer({small})[0].scalar<float>();  // -(1)
  float expected_large = outer({large})[0].scalar<float>();  // 50

  auto concrete = outer.GetConcreteFunction({small});
  ASSERT_TRUE(concrete.ok());
  const std::string device = "/job:training/task:0/device:CPU:0";
  for (auto [input, expected] :
       {std::make_pair(small, expected_small),
        std::make_pair(large, expected_large)}) {
    auto remote_in = cluster.Put(device, input);
    ASSERT_TRUE(remote_in.ok());
    auto remote_out = cluster.RunFunction(device, **concrete, {*remote_in});
    ASSERT_TRUE(remote_out.ok());
    EXPECT_FLOAT_EQ(cluster.Fetch((*remote_out)[0])->scalar<float>(),
                    expected);
  }
}

TEST(ClusterTest, MissingHandleAndUnknownDeviceFail) {
  Cluster cluster(TwoWorkerOptions());
  RemoteTensor bogus;
  bogus.device = "/job:training/task:0/device:CPU:0";
  bogus.handle_id = 123456;
  EXPECT_FALSE(cluster.Fetch(bogus).ok());
  EXPECT_FALSE(
      cluster.Put("/job:nosuch/task:0/device:CPU:0", ops::scalar<float>(1))
          .ok());
}

TEST(ClusterTest, DeleteReleasesHandles) {
  Cluster cluster(TwoWorkerOptions());
  const std::string device = "/job:training/task:0/device:CPU:0";
  auto handle = cluster.Put(device, ops::scalar<float>(5));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(cluster.Delete(*handle).ok());
  EXPECT_FALSE(cluster.Fetch(*handle).ok());
  EXPECT_FALSE(cluster.Delete(*handle).ok());
}

TEST(ClusterTest, ConcurrentClientsFromThreads) {
  // "developers need to start these computations concurrently, e.g. using
  // [host] threads."
  Cluster cluster(TwoWorkerOptions());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&cluster, &failures, t] {
      std::string device =
          "/job:training/task:" + std::to_string(t) + "/device:CPU:0";
      for (int i = 1; i <= 25; ++i) {
        auto x = cluster.Put(device, tensor_util::Scalar<float>(i));
        if (!x.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto squared = cluster.RunOp(device, "Mul", {*x, *x});
        if (!squared.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto value = cluster.Fetch((*squared)[0]);
        if (!value.ok() || value->scalar<float>() != i * i) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ClusterTest, MultipleJobs) {
  Cluster::Options options;
  options.jobs = {{"ps", 1}, {"worker", 2}};
  Cluster cluster(options);
  EXPECT_TRUE(cluster.Put("/job:ps/task:0/device:CPU:0",
                          ops::scalar<float>(1))
                  .ok());
  EXPECT_TRUE(cluster.Put("/job:worker/task:1/device:CPU:0",
                          ops::scalar<float>(1))
                  .ok());
  EXPECT_FALSE(cluster.Put("/job:worker/task:2/device:CPU:0",
                           ops::scalar<float>(1))
                   .ok());
}

}  // namespace
}  // namespace tfe
