// Asynchronous eager execution (paper §5): per-device in-order op queues,
// TensorHandle futures, sync points, and deferred error propagation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "api/tfe.h"
#include "distrib/cluster.h"
#include "tensor/tensor_handle.h"

namespace tfe {
namespace {

using tensor_util::ToVector;

// Async mode is a context-wide switch; each fixture restores the default
// synchronous runtime so other tests are unaffected.
class AsyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EagerContext::Options options;
    options.async = true;
    EagerContext::ResetGlobal(options);
  }
  void TearDown() override {
    EagerContext::ResetGlobal(EagerContext::Options());
  }
};

TEST(AsyncDefaultTest, SynchronousByDefault) {
  EagerContext::ResetGlobal(EagerContext::Options());
  EXPECT_FALSE(EagerContext::Global()->async());
  Tensor a = ops::constant<float>({1, 2}, {2});
  Tensor b = ops::add(a, a);
  // Synchronous dispatch returns materialized values, never futures.
  EXPECT_EQ(b.pending_handle(), nullptr);
  EXPECT_EQ(ToVector<float>(b), (std::vector<float>{2, 4}));
}

TEST_F(AsyncTest, DispatchReturnsFutureWithMetadata) {
  Tensor a = ops::constant<float>({1, 2, 3, 4}, {2, 2});
  Tensor b = ops::matmul(a, a);
  // The handle carries dtype/shape from shape inference; metadata reads do
  // not block on the kernel.
  EXPECT_NE(b.pending_handle(), nullptr);
  EXPECT_EQ(b.dtype(), DType::kFloat32);
  EXPECT_EQ(b.shape(), Shape({2, 2}));
  // Reading the value is the sync point.
  EXPECT_EQ(ToVector<float>(b), (std::vector<float>{7, 10, 15, 22}));
  EXPECT_TRUE(b.pending_handle()->resolved());
}

TEST_F(AsyncTest, ChainMatchesSynchronousValues) {
  Tensor x = ops::constant<float>({1, -2, 3, -4}, {4});
  Tensor h = x;
  for (int i = 0; i < 50; ++i) {
    h = ops::add(ops::mul(h, ops::scalar<float>(0.5f)), x);
  }
  ASSERT_TRUE(EagerContext::Global()->Sync().ok());
  std::vector<float> async_values = ToVector<float>(h);

  EagerContext::Global()->set_async(false);
  Tensor hs = x;
  for (int i = 0; i < 50; ++i) {
    hs = ops::add(ops::mul(hs, ops::scalar<float>(0.5f)), x);
  }
  std::vector<float> sync_values = ToVector<float>(hs);
  ASSERT_EQ(async_values.size(), sync_values.size());
  for (size_t i = 0; i < sync_values.size(); ++i) {
    EXPECT_NEAR(async_values[i], sync_values[i], 1e-5) << "element " << i;
  }
}

TEST_F(AsyncTest, CrossDeviceChainParksAndResumes) {
  // cpu -> gpu -> cpu -> gpu: each hop makes one queue wait on a handle the
  // other queue resolves, exercising the continuation-style park/re-arm path.
  Tensor x = ops::constant<float>({1, 2, 3, 4}, {2, 2});
  Tensor g1, c1, g2;
  {
    DeviceScope gpu("/gpu:0");
    g1 = ops::add(x, x);
  }
  {
    DeviceScope cpu("/cpu:0");
    c1 = ops::mul(g1, g1);
  }
  {
    DeviceScope gpu("/gpu:0");
    g2 = ops::sub(c1, x);
  }
  EXPECT_EQ(ToVector<float>(g2), (std::vector<float>{3, 14, 33, 60}));
}

TEST_F(AsyncTest, DeferredErrorReachesDownstreamHandles) {
  Tensor params = ops::constant<float>({10, 20, 30}, {3});
  Tensor bad_index = ops::constant<int64_t>({5}, {1});
  // Shape inference accepts this call (output shape [1] is known), so the
  // kernel-time OutOfRange is discovered after dispatch has returned.
  Tensor bad = ops::gather(params, bad_index);
  Tensor down1 = ops::add(bad, bad);
  Tensor down2 = ops::mul(down1, down1);  // two ops downstream of the failure

  Status status = down2.Materialize();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOutOfRange);
  EXPECT_NE(status.message().find("Gather index out of range"),
            std::string::npos)
      << status.message();
}

TEST_F(AsyncTest, SyncSurfacesErrorOnceAndContextStaysUsable) {
  Tensor params = ops::constant<float>({10, 20, 30}, {3});
  Tensor bad = ops::gather(params, ops::constant<int64_t>({7}, {1}));
  (void)bad;
  Status first = EagerContext::Global()->Sync();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), ErrorCode::kOutOfRange);
  // The error was consumed; the context is reusable.
  EXPECT_TRUE(EagerContext::Global()->Sync().ok());
  Tensor ok = ops::add(params, params);
  EXPECT_EQ(ToVector<float>(ok), (std::vector<float>{20, 40, 60}));
}

TEST_F(AsyncTest, PoisonedInputToSyncPointThrowsOriginalStatus) {
  Tensor params = ops::constant<float>({1, 2}, {2});
  Tensor bad = ops::gather(params, ops::constant<int64_t>({9}, {1}));
  // A staged call materializes its arguments (sync point); the original
  // kernel Status surfaces there as this call's error.
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args[0], args[0])};
      },
      "async_poisoned_arg");
  EXPECT_THROW(f({bad}), RuntimeError);
  (void)EagerContext::Global()->Sync();  // clear the noted error
}

TEST_F(AsyncTest, DroppedPendingTensorsDrainCleanly) {
  for (int i = 0; i < 100; ++i) {
    Tensor t = ops::add(ops::constant<float>({1.0f * i}, {1}),
                        ops::scalar<float>(1));
    // `t` is dropped while possibly still pending; the queue node keeps the
    // handle alive until the op retires.
  }
  EXPECT_TRUE(EagerContext::Global()->Sync().ok());
}

TEST_F(AsyncTest, SetAsyncFalseIsASyncPoint) {
  Tensor a = ops::constant<float>({2, 3}, {2});
  Tensor b = ops::mul(a, a);
  EagerContext::Global()->set_async(false);
  // Disabling async drained the queues: the handle must be resolved.
  ASSERT_NE(b.pending_handle(), nullptr);
  EXPECT_TRUE(b.pending_handle()->resolved());
  EXPECT_EQ(ToVector<float>(b), (std::vector<float>{4, 9}));
}

TEST_F(AsyncTest, VariableInitIsASyncPoint) {
  Tensor params = ops::constant<float>({10, 20, 30}, {3});
  Tensor bad = ops::gather(params, ops::constant<int64_t>({9}, {1}));
  Tensor poisoned = ops::add(bad, bad);
  // Variable state is long-lived and shared: initialization must surface the
  // original deferred Status rather than storing a poisoned value.
  EXPECT_THROW(Variable v(poisoned), RuntimeError);
  (void)EagerContext::Global()->Sync();  // clear the noted error
  Variable ok(ops::constant<float>({1, 2}, {2}));
  EXPECT_TRUE(ok.defined());
}

TEST_F(AsyncTest, TapeGradientIsASyncPoint) {
  Tensor x = ops::constant<float>({1, 2, 3}, {3});
  GradientTape tape;
  tape.watch(x);
  Tensor y = ops::reduce_sum(ops::mul(x, x));
  auto grads = tape.gradient(y, {x});
  ASSERT_TRUE(grads.ok());
  EXPECT_EQ(ToVector<float>((*grads)[0]), (std::vector<float>{2, 4, 6}));
}

TEST_F(AsyncTest, GradientOfPoisonedTargetReturnsOriginalStatus) {
  Tensor x = ops::constant<float>({1, 2, 3}, {3});
  GradientTape tape;
  tape.watch(x);
  Tensor y = ops::gather(x, ops::constant<int64_t>({11}, {1}));
  auto grads = tape.gradient(y, {x});
  ASSERT_FALSE(grads.ok());
  EXPECT_EQ(grads.status().code(), ErrorCode::kOutOfRange);
  (void)EagerContext::Global()->Sync();
}

TEST_F(AsyncTest, StagedCallMaterializesPendingArguments) {
  Tensor x = ops::constant<float>({1, 2, 3, 4}, {2, 2});
  Tensor pending = ops::add(x, x);  // future-backed argument
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::matmul(args[0], args[0])};
      },
      "async_staged_arg");
  std::vector<Tensor> out = f({pending});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(ToVector<float>(out[0]),
            (std::vector<float>{28, 40, 60, 88}));
}

TEST_F(AsyncTest, RemoteFetchAsyncResolvesThroughHandleProtocol) {
  Cluster cluster(Cluster::Options{.jobs = {{"worker", 1}}});
  Tensor value = ops::constant<float>({5, 6, 7}, {3});
  auto remote = cluster.Put("/job:worker/task:0/device:CPU:0", value);
  ASSERT_TRUE(remote.ok());
  Tensor fetched = cluster.FetchAsync(*remote);
  // Metadata travels with the RemoteTensor.
  EXPECT_EQ(fetched.dtype(), DType::kFloat32);
  EXPECT_EQ(fetched.shape(), Shape({3}));
  ASSERT_TRUE(fetched.Materialize().ok());
  EXPECT_EQ(ToVector<float>(fetched), (std::vector<float>{5, 6, 7}));

  // A dangling handle id poisons the future instead of failing the call.
  RemoteTensor missing = *remote;
  missing.handle_id = 987654;
  Tensor lost = cluster.FetchAsync(missing);
  Status status = lost.Materialize();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST_F(AsyncTest, AsyncOverlapBeatsSynchronousVirtualTime) {
  // A dispatch-bound chain on a synchronous timing-only device: sync mode
  // pays dispatch + kernel per op, async mode overlaps the kernel with the
  // next op's dispatch. Deterministic in virtual time.
  EagerContext* ctx = EagerContext::Global();
  DeviceNameParts parts;
  parts.kind = DeviceKind::kGpu;
  parts.index = 7;
  DeviceCostParams params;
  params.flops_per_second = 1e18;  // roofline ~ 0: launch cost dominates
  params.bytes_per_second = 1e18;
  params.kernel_launch_ns = 20'000;
  ASSERT_TRUE(ctx->devices()
                  .AddDevice(std::make_unique<Device>(
                      parts, params, /*executes_kernels=*/false,
                      /*synchronous=*/true))
                  .ok());
  constexpr int kOps = 128;
  auto run_chain = [&] {
    DeviceScope device("/gpu:7");
    Tensor h = ops::constant<float>({1, 2, 3, 4}, {2, 2});
    for (int i = 0; i < kOps; ++i) h = ops::add(h, h);
  };
  ctx->set_host_profile(HostProfile::Python());  // fixture TearDown restores

  ctx->set_async(false);
  ctx->ResetVirtualTime();
  run_chain();
  uint64_t sync_ns = ctx->SyncAllDevices();

  ctx->set_async(true);
  ctx->ResetVirtualTime();
  run_chain();
  uint64_t async_ns = ctx->SyncAllDevices();

  // 25us dispatch + 20us kernel serialized vs. overlapped: ~1.8x.
  EXPECT_GE(static_cast<double>(sync_ns) / static_cast<double>(async_ns), 1.5)
      << "sync " << sync_ns << "ns vs async " << async_ns << "ns";
}

}  // namespace
}  // namespace tfe
