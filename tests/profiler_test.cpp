// Runtime observability subsystem: per-thread ring-buffer event collection,
// the metrics registry, and the Chrome trace exporter. The concurrency tests
// double as the TSan targets for the lock-free record/flush pair.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/tfe.h"
#include "profiler/chrome_trace.h"
#include "runtime/eager_context.h"

namespace tfe {
namespace {

using profiler::CollectedEvent;
using profiler::Event;
using profiler::EventKind;

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    profiler::Stop();
    (void)profiler::Collect();  // drain anything a prior test left buffered
  }
  void TearDown() override {
    profiler::Stop();
    (void)profiler::Collect();
    EagerContext::ResetGlobal(EagerContext::Options());
  }
};

// Minimal structural JSON validator: balanced braces/brackets outside
// strings, no unescaped control characters inside strings, single root.
::testing::AssertionResult JsonWellFormed(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return ::testing::AssertionFailure()
               << "raw control char 0x" << std::hex << int(c)
               << " inside string at offset " << std::dec << i;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) {
          return ::testing::AssertionFailure()
                 << "unbalanced close at offset " << i;
        }
        break;
      default: break;
    }
  }
  if (in_string) return ::testing::AssertionFailure() << "unterminated string";
  if (depth != 0) {
    return ::testing::AssertionFailure() << "unbalanced depth " << depth;
  }
  return ::testing::AssertionSuccess();
}

TEST_F(ProfilerTest, RecordIsNoOpWhileStopped) {
  profiler::RecordInstant(EventKind::kEnqueue, profiler::Intern("off"), 1);
  EXPECT_TRUE(profiler::Collect().empty());
}

TEST_F(ProfilerTest, StartStopAreIdempotentAndEventsSurviveStop) {
  profiler::Start();
  profiler::Start();  // second Start must not reset buffers
  profiler::RecordInstant(EventKind::kEnqueue, profiler::Intern("one"), 1);
  profiler::Stop();
  profiler::Stop();
  profiler::RecordInstant(EventKind::kEnqueue, profiler::Intern("two"), 2);
  // Recorded-before-Stop stays buffered; recorded-after-Stop is dropped.
  std::vector<CollectedEvent> events = profiler::Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(profiler::InternedString(events[0].event.name), "one");
  EXPECT_EQ(events[0].event.arg, 1);
}

TEST_F(ProfilerTest, EventsWithinAThreadKeepRecordOrder) {
  profiler::Start();
  for (int i = 0; i < 100; ++i) {
    profiler::RecordInstant(EventKind::kEnqueue, profiler::Intern("seq"), i);
  }
  std::vector<CollectedEvent> events = profiler::Collect();
  ASSERT_EQ(events.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(events[i].event.arg, i);
    if (i > 0) {
      EXPECT_GE(events[i].event.start_ns, events[i - 1].event.start_ns);
    }
  }
}

TEST_F(ProfilerTest, CollectMergesThreadsInStartTimeOrder) {
  profiler::Start();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const uint32_t name = profiler::Intern("merge");
      for (int i = 0; i < kPerThread; ++i) {
        profiler::RecordInstant(EventKind::kEnqueue, name, t);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<CollectedEvent> events = profiler::Collect();
  ASSERT_EQ(events.size(), size_t{kThreads} * kPerThread);
  std::set<uint32_t> tids;
  for (size_t i = 0; i < events.size(); ++i) {
    tids.insert(events[i].tid);
    if (i > 0) {
      EXPECT_GE(events[i].event.start_ns, events[i - 1].event.start_ns)
          << "merge not sorted at index " << i;
    }
  }
  EXPECT_EQ(tids.size(), size_t{kThreads});
  // A second Collect returns a disjoint (here: empty) batch.
  EXPECT_TRUE(profiler::Collect().empty());
}

TEST_F(ProfilerTest, FullBufferDropsAndCounts) {
  profiler::Start();
  const uint64_t dropped_before = profiler::DroppedEvents();
  // One thread's ring holds 1<<16 events; everything past that must be
  // dropped (not overwritten — overwrite would race the flush) and counted.
  constexpr uint64_t kRecords = (1u << 16) + 5000;
  const uint32_t name = profiler::Intern("flood");
  for (uint64_t i = 0; i < kRecords; ++i) {
    profiler::RecordInstant(EventKind::kEnqueue, name);
  }
  const uint64_t dropped = profiler::DroppedEvents() - dropped_before;
  EXPECT_GE(dropped, kRecords - (1u << 16));
  EXPECT_EQ(profiler::Collect().size() + dropped, kRecords);
}

TEST_F(ProfilerTest, ConcurrentRecordAndFlush) {
  // TSan target: writers spin on their SPSC rings while this thread flushes.
  profiler::Start();
  const uint64_t dropped_before = profiler::DroppedEvents();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> recorded{0};
  constexpr int kWriters = 3;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      const uint32_t name = profiler::Intern("race");
      while (!stop.load(std::memory_order_relaxed)) {
        profiler::RecordInstant(EventKind::kEnqueue, name);
        recorded.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  uint64_t collected = 0;
  for (int flush = 0; flush < 50; ++flush) {
    collected += profiler::Collect().size();
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  collected += profiler::Collect().size();
  const uint64_t dropped = profiler::DroppedEvents() - dropped_before;
  EXPECT_EQ(collected + dropped, recorded.load());
}

TEST_F(ProfilerTest, CountersGaugesAndHistograms) {
  profiler::MetricsRegistry& metrics = profiler::Metrics();
  profiler::Counter* counter = metrics.GetCounter("test.counter");
  counter->Reset();
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);
  // Get-or-create: same name, same object — cached pointers stay hot.
  EXPECT_EQ(metrics.GetCounter("test.counter"), counter);

  profiler::Gauge* gauge = metrics.GetGauge("test.gauge");
  gauge->Reset();
  gauge->Set(7);
  gauge->Add(5);
  gauge->Set(3);
  EXPECT_EQ(gauge->value(), 3);
  EXPECT_EQ(gauge->max(), 12);

  profiler::Histogram* hist = metrics.GetHistogram("test.hist");
  hist->Reset();
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000ull}) hist->Record(v);
  EXPECT_EQ(hist->count(), 5u);
  EXPECT_EQ(hist->sum(), 1006u);
  EXPECT_DOUBLE_EQ(hist->mean(), 1006.0 / 5.0);
  profiler::HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.max, 1000u);
  uint64_t bucket_total = 0;
  for (const auto& [bound, n] : snap.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, snap.count);
  // Percentiles are upper-bound estimates, monotone, clamped to the max.
  EXPECT_LE(snap.Percentile(0), snap.Percentile(50));
  EXPECT_LE(snap.Percentile(50), snap.Percentile(100));
  EXPECT_EQ(snap.Percentile(100), 1000u);

  profiler::MetricsSnapshot all = metrics.Snapshot();
  EXPECT_EQ(all.counters.at("test.counter"), 42u);
  EXPECT_EQ(all.gauges.at("test.gauge"), 3);
  EXPECT_EQ(all.histograms.at("test.hist").count, 5u);
  EXPECT_TRUE(JsonWellFormed(all.ToJson()));

  // Reset zeroes values but keeps registrations (and cached pointers) alive.
  metrics.Reset();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("test.counter"), counter);
}

TEST_F(ProfilerTest, ChromeTraceJsonEscapesAndBalances) {
  profiler::Start();
  const uint32_t weird = profiler::Intern("we\"ird\\name\nwith\tctl");
  profiler::RecordInstant(EventKind::kEnqueue, weird, 9);
  {
    profiler::Scope span(EventKind::kKernel, "spanned");
    span.set_arg(123);
    span.set_detail(weird);
  }
  std::vector<CollectedEvent> events = profiler::Collect();
  ASSERT_EQ(events.size(), 2u);
  const std::string json =
      profiler::ChromeTraceJson(events, profiler::ThreadNames());
  EXPECT_TRUE(JsonWellFormed(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // the span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // the instant
  // The quote and backslash must arrive escaped, never raw.
  EXPECT_NE(json.find("we\\\"ird\\\\name\\nwith\\tctl"), std::string::npos);
}

TEST_F(ProfilerTest, ExportChromeTraceWritesLoadableFile) {
  profiler::Start();
  profiler::RecordInstant(EventKind::kEnqueue, profiler::Intern("file"), 1);
  const std::string path = ::testing::TempDir() + "profiler_test_trace.json";
  ASSERT_TRUE(profiler::ExportChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(JsonWellFormed(contents));
  EXPECT_NE(contents.find("\"displayTimeUnit\""), std::string::npos);
}

TEST_F(ProfilerTest, AsyncChainEmitsRuntimeEventsAcrossThreads) {
  EagerContext::Options options;
  options.async = true;
  EagerContext::ResetGlobal(options);
  EagerContext* ctx = EagerContext::Global();
  profiler::Start();

  Tensor x = ops::random_normal({32, 32}, 0, 1, /*seed=*/3);
  Tensor h = x;
  for (int i = 0; i < 32; ++i) h = ops::tanh(ops::add(h, x));
  ASSERT_TRUE(ctx->Sync().ok());

  // The drain records its span when it exits the drain loop, which can
  // trail Sync by a moment — poll-collect until every expected kind (and a
  // second thread) has shown up rather than racing a single flush.
  std::set<uint32_t> tids;
  std::set<EventKind> kinds;
  uint64_t span_ns = 0;
  auto satisfied = [&] {
    return tids.size() >= 2 && kinds.count(EventKind::kDispatch) &&
           kinds.count(EventKind::kEnqueue) &&
           kinds.count(EventKind::kQueueDrain) &&
           kinds.count(EventKind::kKernel);
  };
  for (int attempt = 0; attempt < 400 && !satisfied(); ++attempt) {
    for (const CollectedEvent& e : profiler::Collect()) {
      tids.insert(e.tid);
      kinds.insert(e.event.kind);
      // A single span may be shorter than the clock granularity; in
      // aggregate the chain's spans must cover real time.
      if (profiler::EventKindIsSpan(e.event.kind)) span_ns += e.event.dur_ns;
    }
    if (!satisfied()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  profiler::Stop();
  EXPECT_GT(span_ns, 0u);
  // Dispatch + enqueue on the host thread; drain + kernels on pool threads.
  EXPECT_GE(tids.size(), 2u);
  EXPECT_TRUE(kinds.count(EventKind::kDispatch));
  EXPECT_TRUE(kinds.count(EventKind::kEnqueue));
  EXPECT_TRUE(kinds.count(EventKind::kQueueDrain));
  EXPECT_TRUE(kinds.count(EventKind::kKernel));
}

TEST_F(ProfilerTest, TraceCacheEventsRecorded) {
  profiler::Start();
  Function f = function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(args[0], args[0])};
      },
      "profiler_cache_probe");
  Tensor x = ops::constant<float>({1, 2}, {2});
  (void)f({x});  // miss: traces the function
  (void)f({x});  // hit: same signature
  ASSERT_TRUE(EagerContext::Global()->Sync().ok());
  profiler::Stop();

  int misses = 0, hits = 0, stages = 0;
  for (const CollectedEvent& e : profiler::Collect()) {
    switch (e.event.kind) {
      case EventKind::kTraceCacheMiss: ++misses; break;
      case EventKind::kTraceCacheHit: ++hits; break;
      case EventKind::kTraceStage: ++stages; break;
      default: break;
    }
  }
  EXPECT_GE(misses, 1);
  EXPECT_GE(hits, 1);
  EXPECT_GE(stages, 1);
}

}  // namespace
}  // namespace tfe
