// Model-level integration: MLP, tiny ResNet-50 variant, L2HMC — each run
// eagerly and staged, mirroring the paper's "same Model class, decorate two
// functions" workflow (§6).
#include <gtest/gtest.h>

#include <cmath>

#include "api/tfe.h"
#include "models/l2hmc.h"
#include "models/mlp.h"
#include "models/resnet.h"

namespace tfe {
namespace {

TEST(MlpTest, ForwardShapes) {
  models::MLP mlp({4, 8, 3}, /*seed=*/1);
  Tensor x = ops::random_normal({5, 4}, 0, 1, /*seed=*/2);
  Tensor logits = mlp(x);
  EXPECT_EQ(logits.shape(), Shape({5, 3}));
  EXPECT_EQ(mlp.variables().size(), 4u);  // 2 layers x (kernel, bias)
}

TEST(MlpTest, EagerTrainingReducesLoss) {
  models::MLP mlp({4, 16, 3}, /*seed=*/3);
  Tensor x = ops::random_normal({32, 4}, 0, 1, /*seed=*/4);
  Tensor labels = ops::cast(
      ops::argmax(ops::random_normal({32, 3}, 0, 1, /*seed=*/5), 1),
      DType::kInt64);
  float first = mlp.Loss(x, labels).scalar<float>();
  for (int i = 0; i < 30; ++i) mlp.TrainStep(x, labels, 0.5);
  float last = mlp.Loss(x, labels).scalar<float>();
  EXPECT_LT(last, first * 0.7f);
}

TEST(MlpTest, StagedTrainingMatchesEagerExactly) {
  // Two identical models (same seeds); one trained eagerly, one through a
  // staged train step. Losses must match to the last bit: both stages share
  // kernels.
  Tensor x = ops::random_normal({16, 4}, 0, 1, /*seed=*/6);
  Tensor labels = ops::constant<int64_t>(
      {0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0}, {16});

  models::MLP eager_mlp({4, 8, 3}, /*seed=*/7);
  models::MLP staged_mlp({4, 8, 3}, /*seed=*/7);

  Function staged_step = function(
      [&staged_mlp](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {staged_mlp.TrainStep(args[0], args[1], 0.2)};
      },
      "mlp_train_step");

  for (int i = 0; i < 10; ++i) {
    float eager_loss = eager_mlp.TrainStep(x, labels, 0.2).scalar<float>();
    float staged_loss = staged_step({x, labels})[0].scalar<float>();
    ASSERT_FLOAT_EQ(eager_loss, staged_loss) << "step " << i;
  }
  EXPECT_EQ(staged_step.num_traces(), 1);
  // Weights identical afterwards.
  auto eager_vars = eager_mlp.variables();
  auto staged_vars = staged_mlp.variables();
  ASSERT_EQ(eager_vars.size(), staged_vars.size());
  for (size_t i = 0; i < eager_vars.size(); ++i) {
    EXPECT_TRUE(tensor_util::AllClose(eager_vars[i].value(),
                                      staged_vars[i].value(), 0, 0));
  }
}

models::ResNet50::Config TinyResNetConfig() {
  models::ResNet50::Config config;
  config.num_classes = 4;
  config.blocks_per_stage = {1, 1, 1, 1};
  config.width_divisor = 16;
  config.seed = 11;
  return config;
}

TEST(ResNetTest, TinyVariantForwardAndShapes) {
  models::ResNet50 model(TinyResNetConfig());
  Tensor images = ops::random_normal({2, 32, 32, 3}, 0, 1, /*seed=*/12);
  Tensor logits = model(images, /*training=*/false);
  EXPECT_EQ(logits.shape(), Shape({2, 4}));
  EXPECT_GT(model.variables().size(), 30u);  // full bottleneck structure
  for (float value : tensor_util::ToVector<float>(logits)) {
    EXPECT_TRUE(std::isfinite(value));
  }
}

TEST(ResNetTest, FullTopologyHasFiftyConvLayers) {
  // Real ResNet-50 layout: 1 stem + 3*(3+4+6+3) bottleneck convs + head
  // dense = 50 weight layers; with projection shortcuts, 53 conv filters.
  models::ResNet50::Config config;  // default [3,4,6,3]
  config.width_divisor = 64;        // thin but structurally identical
  config.num_classes = 10;
  models::ResNet50 model(config);
  int conv_filters = 0;
  int bn_scales = 0;
  for (const Variable& v : model.variables()) {
    if (v.shape().rank() == 4) ++conv_filters;
    if (v.name().find("/scale") != std::string::npos) ++bn_scales;
  }
  EXPECT_EQ(conv_filters, 1 + 48 + 4);  // stem + 16 blocks x3 + 4 shortcuts
  EXPECT_EQ(bn_scales, 53);
}

TEST(ResNetTest, TrainStepDecreasesLossEagerAndStaged) {
  Tensor images = ops::random_normal({4, 16, 16, 3}, 0, 1, /*seed=*/13);
  Tensor labels = ops::constant<int64_t>({0, 1, 2, 3}, {4});

  models::ResNet50 model(TinyResNetConfig());
  float first = model.Loss(images, labels, true).scalar<float>();
  for (int i = 0; i < 3; ++i) model.TrainStep(images, labels, 0.05);
  float eager_loss = model.Loss(images, labels, true).scalar<float>();
  EXPECT_LT(eager_loss, first);

  // Staged: decorate the train step (the paper's two-decorator workflow).
  Function staged_step = function(
      [&model](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {model.TrainStep(args[0], args[1], 0.05)};
      },
      "resnet_train_step");
  float staged_first = staged_step({images, labels})[0].scalar<float>();
  float staged_second = staged_step({images, labels})[0].scalar<float>();
  EXPECT_LT(staged_second, staged_first);
  EXPECT_EQ(staged_step.num_traces(), 1);
}

TEST(L2hmcTest, TransitionProducesValidProposals) {
  models::L2hmcDynamics::Config config;
  config.leapfrog_steps = 3;
  models::L2hmcDynamics dynamics(config);
  Tensor x = ops::random_normal({10, 2}, 0, 1, /*seed=*/14);
  auto proposal = dynamics.Transition(x);
  EXPECT_EQ(proposal.x_out.shape(), Shape({10, 2}));
  EXPECT_EQ(proposal.accept_prob.shape(), Shape({10}));
  for (float p : tensor_util::ToVector<float>(proposal.accept_prob)) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
  for (float value : tensor_util::ToVector<float>(proposal.x_out)) {
    EXPECT_TRUE(std::isfinite(value));
  }
}

TEST(L2hmcTest, LossIsFiniteAndTrainStepRuns) {
  models::L2hmcDynamics::Config config;
  config.leapfrog_steps = 2;
  models::L2hmcDynamics dynamics(config);
  EXPECT_EQ(dynamics.variables().size(), 24u);  // 2 nets x 6 layers x 2
  Tensor x = ops::random_normal({8, 2}, 0, 1, /*seed=*/15);
  float loss = dynamics.TrainStep(x, 1e-3).scalar<float>();
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(L2hmcTest, StagedSamplerMatchesEagerStructure) {
  // The Figure 4 configuration (10 leapfrog steps), staged as one function.
  // A small step size keeps the untrained integrator stable so acceptance
  // probabilities stay strictly inside (0, 1) — with the default step the
  // integrator can diverge and the acceptance underflows to exactly zero,
  // making consecutive runs legitimately identical (all rejections).
  models::L2hmcDynamics::Config stable_config;
  stable_config.step_size = 0.01;
  models::L2hmcDynamics dynamics(stable_config);
  Function staged = function(
      [&dynamics](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        auto proposal = dynamics.Transition(args[0]);
        return {proposal.x_out, proposal.accept_prob};
      },
      "l2hmc_transition");
  Tensor x = ops::random_normal({10, 2}, 0, 1, /*seed=*/16);
  auto outs = staged({x});
  EXPECT_EQ(outs[0].shape(), Shape({10, 2}));
  for (float p : tensor_util::ToVector<float>(outs[1])) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
  // Re-invocation reuses the trace and produces fresh randomness. Depending
  // on the RNG state an untrained sampler may accept everything (equal
  // accept probs of 1.0) or reject everything (x_out == x0 both times), but
  // never both: fresh momenta always perturb one of the two outputs.
  auto outs2 = staged({x});
  EXPECT_EQ(staged.num_traces(), 1);
  EXPECT_FALSE(tensor_util::AllClose(outs[0], outs2[0]) &&
               tensor_util::AllClose(outs[1], outs2[1]));
}

TEST(L2hmcTest, StagedTrainingReducesLossOnAverage) {
  // Loss improvement over a short window is a statistical property of the
  // momenta stream; pin the context (and its RNG stream counter) so the
  // test sees the same stream whether it runs alone or after the full
  // suite in one process.
  EagerContext::ResetGlobal({});
  models::L2hmcDynamics::Config config;
  config.leapfrog_steps = 2;
  models::L2hmcDynamics dynamics(config);
  Function staged_step = function(
      [&dynamics](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {dynamics.TrainStep(args[0], 5e-3)};
      },
      "l2hmc_train");
  Tensor x = ops::random_normal({16, 2}, 0, 2, /*seed=*/17);
  float early = 0, late = 0;
  for (int i = 0; i < 10; ++i) {
    early += staged_step({x})[0].scalar<float>();
  }
  for (int i = 0; i < 30; ++i) staged_step({x});
  for (int i = 0; i < 10; ++i) {
    late += staged_step({x})[0].scalar<float>();
  }
  EXPECT_LT(late, early);  // ESJD improves
  EXPECT_EQ(staged_step.num_traces(), 1);
}

TEST(L2hmcTest, StagedLoopTransitionBitwiseMatchesUnrolled) {
  // The staged While body is the same LeapfrogStep the host loop runs, so
  // with deterministic sample draws the two integrators must agree
  // BITWISE, not just approximately.
  models::L2hmcDynamics::Config config;
  config.leapfrog_steps = 4;
  config.step_size = 0.01;
  config.sample_seed = 91;
  models::L2hmcDynamics unrolled(config);
  config.staged_loop = true;
  models::L2hmcDynamics staged(config);  // same seed -> identical weights

  Tensor x = ops::random_normal({6, 2}, 0, 1, /*seed=*/18);
  auto a = unrolled.Transition(x);
  auto b = staged.Transition(x);
  std::vector<float> ax = tensor_util::ToVector<float>(a.x_out);
  std::vector<float> bx = tensor_util::ToVector<float>(b.x_out);
  ASSERT_EQ(ax.size(), bx.size());
  for (size_t i = 0; i < ax.size(); ++i) EXPECT_EQ(ax[i], bx[i]) << i;
  std::vector<float> ap = tensor_util::ToVector<float>(a.accept_prob);
  std::vector<float> bp = tensor_util::ToVector<float>(b.accept_prob);
  ASSERT_EQ(ap.size(), bp.size());
  for (size_t i = 0; i < ap.size(); ++i) EXPECT_EQ(ap[i], bp[i]) << i;
}

TEST(L2hmcTest, StagedLoopTrainStepOneGraphMatchesUnrolled) {
  // With staged_loop the whole training step — forward While, the While
  // gradient's per-iteration backward replay, and the SGD updates — stages
  // into ONE graph function, and both the loss and the updated weights
  // must match the unrolled eager step bitwise.
  models::L2hmcDynamics::Config config;
  config.leapfrog_steps = 3;
  config.step_size = 0.01;
  config.sample_seed = 92;
  models::L2hmcDynamics unrolled(config);
  config.staged_loop = true;
  models::L2hmcDynamics staged(config);

  Function staged_step = function(
      [&staged](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {staged.TrainStep(args[0], 1e-3)};
      },
      "l2hmc_staged_loop_train");

  Tensor x = ops::random_normal({8, 2}, 0, 1, /*seed=*/19);
  float eager_loss = unrolled.TrainStep(x, 1e-3).scalar<float>();
  float staged_loss = staged_step({x})[0].scalar<float>();
  EXPECT_EQ(eager_loss, staged_loss);
  EXPECT_EQ(staged_step.num_traces(), 1);

  std::vector<Variable> uvars = unrolled.variables();
  std::vector<Variable> svars = staged.variables();
  ASSERT_EQ(uvars.size(), svars.size());
  for (size_t i = 0; i < uvars.size(); ++i) {
    std::vector<float> uv = tensor_util::ToVector<float>(uvars[i].value());
    std::vector<float> sv = tensor_util::ToVector<float>(svars[i].value());
    ASSERT_EQ(uv.size(), sv.size());
    for (size_t j = 0; j < uv.size(); ++j) {
      EXPECT_EQ(uv[j], sv[j]) << "variable " << i << " element " << j;
    }
  }
}

}  // namespace
}  // namespace tfe
