// The serving subsystem: session workspaces (named variable scopes with
// parent sharing), the dynamic batcher (cross-request coalescing with
// bitwise-identical per-session results), per-session RNG determinism, and
// per-session error poisoning.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/tfe.h"
#include "serving/serving.h"
#include "serving/workspace.h"
#include "tensor/allocator.h"
#include "tensor/tensor_handle.h"

namespace tfe {
namespace {

using tensor_util::ToVector;

class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EagerContext::Options options;
    options.async = true;
    EagerContext::ResetGlobal(options);
  }
  void TearDown() override {
    EagerContext::ResetGlobal(EagerContext::Options());
  }
};

// ---- Workspace layer -------------------------------------------------------

TEST_F(ServingTest, WorkspaceResolvesLocallyThenThroughParentChain) {
  auto& registry = serving::WorkspaceRegistry::Global();
  auto parent = registry.GetOrCreate("ws_test/shared");
  ASSERT_TRUE(parent.ok());
  {
    serving::WorkspaceScope scope(*parent);
    Variable weights(ops::constant<float>({1, 2, 3}, {3}), "weights");
  }
  auto child1 = registry.GetOrCreate("ws_test/s1", "ws_test/shared");
  auto child2 = registry.GetOrCreate("ws_test/s2", "ws_test/shared");
  ASSERT_TRUE(child1.ok() && child2.ok());

  {
    serving::WorkspaceScope scope(*child1);
    Variable state(ops::constant<float>({10}, {1}), "state");
    // Re-creating the parent's variable re-binds to the existing storage:
    // the "initial value" of a re-creation never clobbers shared weights.
    Variable weights(ops::constant<float>({0, 0, 0}, {3}), "weights");
    EXPECT_EQ(ToVector<float>(weights.value()),
              (std::vector<float>{1, 2, 3}));
  }
  {
    serving::WorkspaceScope scope(*child2);
    Variable state(ops::constant<float>({20}, {1}), "state");
  }

  // Same name, independent per-session storage.
  auto s1 = (*child1)->FindLocalVariable("state");
  auto s2 = (*child2)->FindLocalVariable("state");
  ASSERT_TRUE(s1.has_value() && s2.has_value());
  EXPECT_EQ(ToVector<float>(s1->value()), (std::vector<float>{10}));
  EXPECT_EQ(ToVector<float>(s2->value()), (std::vector<float>{20}));
  // Children never leak locals into the parent.
  EXPECT_FALSE((*parent)->FindLocalVariable("state").has_value());
  // Parent resolution is visible through both children.
  EXPECT_TRUE((*child1)->HasVariable("weights"));
  EXPECT_TRUE((*child2)->HasVariable("weights"));

  // A shape-mismatched re-creation is a user error, not a silent rebind.
  {
    serving::WorkspaceScope scope(*child1);
    EXPECT_THROW(Variable(ops::constant<float>({1, 2}, {2}), "weights"),
                 RuntimeError);
  }

  // A nonexistent parent is rejected; removal unregisters.
  EXPECT_FALSE(registry.GetOrCreate("ws_test/s3", "ws_test/nope").ok());
  EXPECT_TRUE(registry.Remove("ws_test/s1"));
  EXPECT_TRUE(registry.Remove("ws_test/s2"));
  EXPECT_TRUE(registry.Remove("ws_test/shared"));
  EXPECT_FALSE(registry.Remove("ws_test/shared"));
}

TEST_F(ServingTest, VariablesOutsideAnyScopeKeepFreshStorageSemantics) {
  // Historical behavior must be untouched: two same-named variables created
  // outside any WorkspaceScope do not share storage.
  Variable a(ops::constant<float>({1}, {1}), "dup");
  Variable b(ops::constant<float>({2}, {1}), "dup");
  EXPECT_NE(a.storage().get(), b.storage().get());
  EXPECT_EQ(ToVector<float>(a.value()), (std::vector<float>{1}));
  EXPECT_EQ(ToVector<float>(b.value()), (std::vector<float>{2}));
}

TEST_F(ServingTest, CloseSessionFreesVariableArenaBlocks) {
  EagerContext* ctx = EagerContext::Global();
  ASSERT_TRUE(ctx->Sync().ok());
  auto& stats = ctx->HostCpu()->allocator()->stats();

  serving::Serving serving;
  auto sid = serving.OpenSession("arena");
  ASSERT_TRUE(sid.ok());
  const int64_t before = stats.in_use_bytes.load();
  {
    auto ws = serving.workspace(*sid);
    ASSERT_TRUE(ws.ok());
    serving::WorkspaceScope scope(*ws);
    // relu() routes the init through a device kernel, so the variable's
    // buffer comes from the HostCpu arena (host literals bypass it).
    Variable big(ops::relu(ops::zeros(DType::kFloat32, {256, 1024})),
                 "big");  // 1 MiB
    ASSERT_TRUE(ctx->Sync().ok());
  }  // the local handle dies; the workspace keeps the storage alive
  const int64_t with_variable = stats.in_use_bytes.load();
  EXPECT_GE(with_variable - before, int64_t{1} << 20)
      << "variable storage not visible in allocator stats";

  const uint64_t deallocations = stats.deallocations.load();
  ASSERT_TRUE(serving.CloseSession(*sid).ok());
  EXPECT_GE(with_variable - stats.in_use_bytes.load(), int64_t{1} << 20)
      << "closing the session did not return the variable's arena block";
  EXPECT_GT(stats.deallocations.load(), deallocations);
}

// ---- Dynamic batching ------------------------------------------------------

TEST_F(ServingTest, CoalescesSameSignatureCallsBitwiseExactly) {
  EagerContext* ctx = EagerContext::Global();
  Tensor W = ops::random_normal({8, 16}, 0, 1, /*seed=*/3);
  Tensor bias = ops::random_normal({16}, 0, 1, /*seed=*/4);
  ASSERT_TRUE(ctx->Sync().ok());
  Function fn = function(
      [W, bias](const std::vector<Tensor>& args) {
        return std::vector<Tensor>{
            ops::softmax(ops::relu(ops::add(ops::matmul(args[0], W), bias)))};
      },
      "serve_mlp");

  serving::ServingOptions options;
  options.max_batch_size = 4;
  options.max_queue_delay_us = 200000;  // the full window forms first
  serving::Serving serving(options);

  auto* batches = profiler::Metrics().GetCounter("serving.batches");
  auto* coalesced = profiler::Metrics().GetCounter("serving.batched_calls");
  const uint64_t batches_before = batches->value();
  const uint64_t coalesced_before = coalesced->value();

  std::vector<serving::SessionId> sessions;
  std::vector<Tensor> inputs;
  for (int s = 0; s < 4; ++s) {
    auto sid = serving.OpenSession();
    ASSERT_TRUE(sid.ok());
    sessions.push_back(*sid);
    inputs.push_back(ops::random_normal({2, 8}, 0, 1, /*seed=*/10 + s));
  }
  ASSERT_TRUE(ctx->Sync().ok());

  std::vector<std::vector<Tensor>> futures;
  for (int s = 0; s < 4; ++s) {
    auto out = serving.Submit(sessions[s], fn, {inputs[s]});
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    futures.push_back(std::move(*out));
  }
  for (auto& f : futures) {
    ASSERT_TRUE(serving::Serving::Await(f).ok());
  }

  EXPECT_GT(batches->value(), batches_before)
      << "no cross-request batch formed";
  EXPECT_GE(coalesced->value() - coalesced_before, 4u);

  // Each session's outputs must be bitwise identical to its own unbatched
  // run — padding rows and batch-mates change nothing.
  for (int s = 0; s < 4; ++s) {
    std::vector<Tensor> direct = fn({inputs[s]});
    ASSERT_TRUE(ctx->Sync().ok());
    EXPECT_EQ(ToVector<float>(futures[s][0]), ToVector<float>(direct[0]))
        << "batched output diverged for session " << s;
  }
}

TEST_F(ServingTest, RowMixingOutputsFallBackToUnbatchedExactly) {
  EagerContext* ctx = EagerContext::Global();
  // x @ xᵀ mixes examples: the batched trace's output is [B, B], not a
  // row-wise stack of [r, r] — the shape proof must reject the group and
  // run every call unbatched, keeping results exact.
  Function fn = function(
      [](const std::vector<Tensor>& args) {
        return std::vector<Tensor>{
            ops::matmul(args[0], args[0], false, /*transpose_b=*/true)};
      },
      "gram");

  serving::ServingOptions options;
  options.max_batch_size = 2;
  options.max_queue_delay_us = 100000;
  serving::Serving serving(options);
  auto* batches = profiler::Metrics().GetCounter("serving.batches");
  const uint64_t batches_before = batches->value();

  auto s1 = serving.OpenSession();
  auto s2 = serving.OpenSession();
  ASSERT_TRUE(s1.ok() && s2.ok());
  Tensor x1 = ops::random_normal({2, 8}, 0, 1, /*seed=*/31);
  Tensor x2 = ops::random_normal({2, 8}, 0, 1, /*seed=*/32);
  ASSERT_TRUE(ctx->Sync().ok());

  auto f1 = serving.Submit(*s1, fn, {x1});
  auto f2 = serving.Submit(*s2, fn, {x2});
  ASSERT_TRUE(f1.ok() && f2.ok());
  ASSERT_TRUE(serving::Serving::Await(*f1).ok());
  ASSERT_TRUE(serving::Serving::Await(*f2).ok());

  EXPECT_EQ(batches->value(), batches_before)
      << "a row-mixing function was coalesced";
  std::vector<Tensor> direct1 = fn({x1});
  std::vector<Tensor> direct2 = fn({x2});
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_EQ(ToVector<float>((*f1)[0]), ToVector<float>(direct1[0]));
  EXPECT_EQ(ToVector<float>((*f2)[0]), ToVector<float>(direct2[0]));
}

TEST_F(ServingTest, PartialWindowFlushesAfterQueueDelay) {
  serving::ServingOptions options;
  options.max_batch_size = 8;
  options.max_queue_delay_us = 2000;  // 2 ms: the window never fills
  serving::Serving serving(options);
  Function fn = function(
      [](const std::vector<Tensor>& args) {
        return std::vector<Tensor>{ops::relu(args[0])};
      },
      "lone_call");
  auto sid = serving.OpenSession();
  ASSERT_TRUE(sid.ok());
  Tensor x = ops::constant<float>({-1, 2, -3, 4}, {2, 2});
  auto out = serving.Submit(*sid, fn, {x});
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(serving::Serving::Await(*out).ok());  // delay flush, not full
  EXPECT_EQ(ToVector<float>((*out)[0]), (std::vector<float>{0, 2, 0, 4}));
}

// ---- Per-session RNG streams -----------------------------------------------

TEST_F(ServingTest, BatchingNeverChangesASessionsSampledValues) {
  EagerContext* ctx = EagerContext::Global();
  // Seed-0 randomness makes the graph batch-unsafe: calls run individually
  // on the session's Philox substream, reserved at submit. The sampled
  // sequence must depend only on (session, submit ordinal) — not on the
  // batching window or on interleaving with other tenants.
  Function fn = function(
      [](const std::vector<Tensor>& args) {
        return std::vector<Tensor>{
            ops::add(args[0], ops::random_normal({2, 4}))};
      },
      "noisy");
  Tensor x = ops::ones(DType::kFloat32, {2, 4});
  ASSERT_TRUE(ctx->Sync().ok());

  auto run = [&](int max_batch,
                 bool interleave) -> std::vector<std::vector<float>> {
    serving::ServingOptions options;
    options.max_batch_size = max_batch;
    options.max_queue_delay_us = 1000;
    serving::Serving serving(options);
    auto a = serving.OpenSession();
    auto b = serving.OpenSession();
    EXPECT_TRUE(a.ok() && b.ok());
    // a1 a2 b1 b2 vs a1 b1 a2 b2: per-session sequences must not care.
    std::vector<std::pair<serving::SessionId, int>> order =
        interleave ? std::vector<std::pair<serving::SessionId, int>>{
                         {*a, 0}, {*b, 2}, {*a, 1}, {*b, 3}}
                   : std::vector<std::pair<serving::SessionId, int>>{
                         {*a, 0}, {*a, 1}, {*b, 2}, {*b, 3}};
    std::vector<std::vector<float>> results(4);
    std::vector<std::vector<Tensor>> futures(4);
    for (const auto& [sid, slot] : order) {
      auto out = serving.Submit(sid, fn, {x});
      EXPECT_TRUE(out.ok());
      futures[slot] = std::move(*out);
    }
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(serving::Serving::Await(futures[i]).ok());
      results[i] = ToVector<float>(futures[i][0]);
    }
    return results;
  };

  auto batched = run(/*max_batch=*/8, /*interleave=*/true);
  auto unbatched = run(/*max_batch=*/1, /*interleave=*/false);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(batched[i], unbatched[i])
        << "sampled values changed with batching config at call " << i;
  }
  // Sanity: the stream advances between a session's calls and differs
  // across sessions.
  EXPECT_NE(batched[0], batched[1]);
  EXPECT_NE(batched[0], batched[2]);
}

// ---- Error poisoning -------------------------------------------------------

TEST_F(ServingTest, PoisonedInputFailsOnlyItsOwnSession) {
  EagerContext* ctx = EagerContext::Global();
  Function fn = function(
      [](const std::vector<Tensor>& args) {
        return std::vector<Tensor>{ops::relu(args[0])};
      },
      "isolated");

  serving::ServingOptions options;
  options.max_batch_size = 2;
  options.max_queue_delay_us = 200000;
  serving::Serving serving(options);
  auto victim = serving.OpenSession("victim");
  auto healthy = serving.OpenSession("healthy");
  ASSERT_TRUE(victim.ok() && healthy.ok());

  Tensor good = ops::constant<float>({-1, 1, -2, 2}, {2, 2});
  auto poisoned_handle = TensorHandle::Pending(
      DType::kFloat32, Shape({2, 2}), ctx->HostCpu(), nullptr);
  Tensor poisoned = Tensor::FromHandle(poisoned_handle);
  // First submit (good args) traces; the poisoned call then lands in the
  // same signature group and the two coalesce into one window.
  auto healthy_out = serving.Submit(*healthy, fn, {good});
  ASSERT_TRUE(healthy_out.ok());
  auto victim_out = serving.Submit(*victim, fn, {poisoned});
  ASSERT_TRUE(victim_out.ok());
  poisoned_handle->SetError(InvalidArgument("injected failure"));

  // The victim's futures poison with the injected error...
  Status victim_status = serving::Serving::Await(*victim_out);
  EXPECT_FALSE(victim_status.ok());
  EXPECT_NE(victim_status.ToString().find("injected failure"),
            std::string::npos);
  // ...its batch-mate is untouched...
  ASSERT_TRUE(serving::Serving::Await(*healthy_out).ok());
  EXPECT_EQ(ToVector<float>((*healthy_out)[0]),
            (std::vector<float>{0, 1, 0, 2}));
  // ...and the deferred per-session error surfaces once, then clears.
  EXPECT_FALSE(serving.SessionStatus(*victim).ok());
  EXPECT_TRUE(serving.SessionStatus(*victim).ok());
  EXPECT_TRUE(serving.SessionStatus(*healthy).ok());
}

// ---- Sessions and lifecycle ------------------------------------------------

TEST_F(ServingTest, StatefulFunctionsKeepPerSessionStateIsolated) {
  EagerContext* ctx = EagerContext::Global();
  // A function that creates and mutates a named variable: batch-unsafe (it
  // writes state), and its variable resolves against the submitting
  // session's workspace. Each session uses its own Function instance — a
  // shared instance would trace once and capture the first session's
  // storage for everyone (shared-weights semantics, which is exactly what
  // shared *pure* model functions want).
  auto make_counter = [] {
    return function(
        [](const std::vector<Tensor>& args) {
          Tensor init = [] {
            InitScope init_scope;
            return ops::zeros(DType::kFloat32, {1});
          }();
          Variable acc(init, "acc");
          acc.assign_add(args[0]);
          return std::vector<Tensor>{acc.value()};
        },
        "counter");
  };
  Function counter1 = make_counter();
  Function counter2 = make_counter();

  serving::Serving serving;
  auto s1 = serving.OpenSession();
  auto s2 = serving.OpenSession();
  ASSERT_TRUE(s1.ok() && s2.ok());
  Tensor one = ops::ones(DType::kFloat32, {1});
  ASSERT_TRUE(ctx->Sync().ok());

  auto r1a = serving.Submit(*s1, counter1, {one});
  ASSERT_TRUE(r1a.ok());
  ASSERT_TRUE(serving::Serving::Await(*r1a).ok());
  auto r1b = serving.Submit(*s1, counter1, {one});
  ASSERT_TRUE(r1b.ok());
  ASSERT_TRUE(serving::Serving::Await(*r1b).ok());
  auto r2 = serving.Submit(*s2, counter2, {one});
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(serving::Serving::Await(*r2).ok());

  EXPECT_EQ(ToVector<float>((*r1a)[0]), (std::vector<float>{1}));
  EXPECT_EQ(ToVector<float>((*r1b)[0]), (std::vector<float>{2}));
  EXPECT_EQ(ToVector<float>((*r2)[0]), (std::vector<float>{1}))
      << "session 2's counter saw session 1's state";

  // The state lives in each session's workspace under the same name.
  auto ws1 = serving.workspace(*s1);
  auto ws2 = serving.workspace(*s2);
  ASSERT_TRUE(ws1.ok() && ws2.ok());
  EXPECT_TRUE((*ws1)->FindLocalVariable("acc").has_value());
  EXPECT_TRUE((*ws2)->FindLocalVariable("acc").has_value());
}

TEST_F(ServingTest, SessionLifecycleAndShutdown) {
  serving::Serving serving;
  auto* gauge = profiler::Metrics().GetGauge("serving.sessions");
  const int64_t sessions_before = gauge->value();
  auto sid = serving.OpenSession("lifecycle");
  ASSERT_TRUE(sid.ok());
  EXPECT_EQ(gauge->value(), sessions_before + 1);
  EXPECT_EQ(serving.num_sessions(), 1);

  auto ws = serving.workspace(*sid);
  ASSERT_TRUE(ws.ok());
  const std::string ws_name = (*ws)->name();
  EXPECT_TRUE(serving::WorkspaceRegistry::Global().Contains(ws_name));

  ASSERT_TRUE(serving.CloseSession(*sid).ok());
  EXPECT_EQ(gauge->value(), sessions_before);
  EXPECT_FALSE(serving::WorkspaceRegistry::Global().Contains(ws_name));
  EXPECT_TRUE(serving.CloseSession(*sid).code() == ErrorCode::kNotFound);

  Function fn = function(
      [](const std::vector<Tensor>& args) {
        return std::vector<Tensor>{ops::relu(args[0])};
      },
      "after_shutdown");
  serving.Shutdown();
  auto reopened = serving.OpenSession();
  EXPECT_FALSE(reopened.ok());
}

TEST_F(ServingTest, SharedWorkspaceGivesEverySessionTheSameWeights) {
  EagerContext* ctx = EagerContext::Global();
  auto& registry = serving::WorkspaceRegistry::Global();
  auto shared = registry.GetOrCreate("serving_test/model");
  ASSERT_TRUE(shared.ok());
  {
    serving::WorkspaceScope scope(*shared);
    Variable weights(ops::constant<float>({5, 5}, {2}), "w");
  }

  serving::ServingOptions options;
  options.shared_workspace = "serving_test/model";
  serving::Serving serving(options);
  auto s1 = serving.OpenSession();
  auto s2 = serving.OpenSession();
  ASSERT_TRUE(s1.ok() && s2.ok());
  auto ws1 = serving.workspace(*s1);
  auto ws2 = serving.workspace(*s2);
  ASSERT_TRUE(ws1.ok() && ws2.ok());

  auto w1 = (*ws1)->FindVariable("w");
  auto w2 = (*ws2)->FindVariable("w");
  ASSERT_TRUE(w1.has_value() && w2.has_value());
  EXPECT_EQ(w1->storage().get(), w2->storage().get())
      << "parent-shared weights duplicated per session";
  ASSERT_TRUE(ctx->Sync().ok());
  EXPECT_TRUE(registry.Remove("serving_test/model"));
}

}  // namespace
}  // namespace tfe
