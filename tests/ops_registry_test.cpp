// Registry invariants: every op has a kernel (or is a construction
// pseudo-op), every differentiable op used by the models has a gradient,
// and shape-inference error paths reject bad programs at trace time.
#include <gtest/gtest.h>

#include <set>

#include "api/tfe.h"
#include "autodiff/gradient_registry.h"
#include "ops/kernel.h"
#include "ops/op_registry.h"

namespace tfe {
namespace {

TEST(OpRegistryTest, CoreOpsAreRegistered) {
  EnsureOpsRegistered();
  for (const char* op :
       {"Add", "MatMul", "Conv2D", "FusedBatchNorm", "Softmax", "Sum",
        "Reshape", "ReadVariableOp", "Call", "HostFunc", "RandomNormal",
        "Cond", "While", "IteratorNext", "HashTableLookup", "Range"}) {
    EXPECT_TRUE(OpRegistry::Global()->Contains(op)) << op;
  }
  EXPECT_FALSE(OpRegistry::Global()->Contains("NoSuchOp"));
  EXPECT_FALSE(OpRegistry::Global()->LookUp("NoSuchOp").ok());
}

TEST(OpRegistryTest, DuplicateRegistrationRejected) {
  EnsureOpsRegistered();
  OpDef dup;
  dup.name = "Add";
  dup.num_inputs = 2;
  dup.shape_fn = shape_fn::BroadcastBinary;
  EXPECT_EQ(OpRegistry::Global()->Register(std::move(dup)).code(),
            ErrorCode::kAlreadyExists);
}

TEST(OpRegistryTest, EveryOpHasAKernelOrIsAPseudoOp) {
  EnsureOpsRegistered();
  // Pseudo-ops are materialized by the tracer/executor, not kernels.
  const std::set<std::string> pseudo = {"Arg", "Const"};
  for (const std::string& op : OpRegistry::Global()->ListOps()) {
    if (pseudo.count(op) > 0) continue;
    EXPECT_TRUE(KernelRegistry::Global()->HasKernel(op, DeviceKind::kCpu))
        << "op without CPU kernel: " << op;
  }
}

TEST(OpRegistryTest, KernelsCoverAllSimulatedDeviceKinds) {
  EnsureOpsRegistered();
  for (const char* op : {"Add", "MatMul", "Conv2D", "Relu"}) {
    for (DeviceKind kind :
         {DeviceKind::kCpu, DeviceKind::kGpu, DeviceKind::kTpu}) {
      EXPECT_TRUE(KernelRegistry::Global()->HasKernel(op, kind))
          << op << " on " << DeviceKindName(kind);
    }
  }
}

TEST(OpRegistryTest, DifferentiableFloatOpsHaveGradients) {
  EnsureOpsRegistered();
  // Ops flagged differentiable that tapes may meet must either have a
  // registered gradient or be deliberate loud-error cases: While and the
  // second-order gradients of conv/pool/batch-norm (differentiating a
  // backward op) raise Unimplemented rather than silently producing zeros.
  const std::set<std::string> loud_error_by_design = {
      "While",          "Conv2DBackpropInput", "Conv2DBackpropFilter",
      "MaxPoolGrad",    "AvgPoolGrad",         "FusedBatchNormGrad"};
  for (const std::string& op : OpRegistry::Global()->ListOps()) {
    auto def = OpRegistry::Global()->LookUp(op);
    ASSERT_TRUE(def.ok());
    if (!(*def)->differentiable) continue;
    if (loud_error_by_design.count(op) > 0) continue;
    EXPECT_NE(GradientRegistry::Global()->Find(op), nullptr)
        << "differentiable op without gradient: " << op;
  }
}

TEST(OpRegistryTest, StatefulnessMatchesSemantics) {
  EnsureOpsRegistered();
  for (const char* op : {"ReadVariableOp", "AssignVariableOp", "RandomNormal",
                         "HostFunc", "Call", "IteratorNext", "SaveTensor"}) {
    EXPECT_TRUE((*OpRegistry::Global()->LookUp(op))->is_stateful) << op;
  }
  for (const char* op : {"Add", "MatMul", "Reshape", "Softmax"}) {
    EXPECT_FALSE((*OpRegistry::Global()->LookUp(op))->is_stateful) << op;
  }
}

// Shape-inference error paths: bad programs must fail when *traced*, before
// any kernel runs (the staged analog of eager kernel validation).
TEST(ShapeInferenceErrors, RejectedAtTraceTime) {
  struct Case {
    const char* name;
    std::function<void()> body;
  };
  std::vector<Case> cases = {
      {"matmul_rank", [] { ops::matmul(ops::ones(DType::kFloat32, {2}),
                                       ops::ones(DType::kFloat32, {2, 2})); }},
      {"matmul_inner", [] { ops::matmul(ops::ones(DType::kFloat32, {2, 3}),
                                        ops::ones(DType::kFloat32, {4, 5})); }},
      {"conv_channels",
       [] {
         ops::conv2d(ops::ones(DType::kFloat32, {1, 4, 4, 3}),
                     ops::ones(DType::kFloat32, {3, 3, 2, 8}));
       }},
      {"reduce_axis", [] { ops::reduce_sum(ops::ones(DType::kFloat32, {2}),
                                           {5}); }},
      {"transpose_perm", [] { ops::transpose(ops::ones(DType::kFloat32, {2, 2}),
                                             {0, 0}); }},
      {"concat_rank",
       [] {
         ops::concat({ops::ones(DType::kFloat32, {2}),
                      ops::ones(DType::kFloat32, {2, 2})},
                     0);
       }},
      {"slice_oob", [] { ops::slice(ops::ones(DType::kFloat32, {3}), {2},
                                    {5}); }},
      {"pad_negative", [] { ops::pad(ops::ones(DType::kFloat32, {2}),
                                     {-1, 0}); }},
      {"squeeze_non_one", [] { ops::squeeze(ops::ones(DType::kFloat32, {2, 3}),
                                            {0}); }},
  };
  for (const Case& test_case : cases) {
    // Eagerly, kernels reject these...
    EXPECT_THROW(test_case.body(), RuntimeError) << test_case.name;
    // ...and under tracing, shape inference rejects them with no kernel run.
    Function staged = function(
        [&](const std::vector<Tensor>&) -> std::vector<Tensor> {
          test_case.body();
          return {ops::scalar<float>(0.0f)};
        },
        "bad_program");
    EXPECT_THROW(staged({}), RuntimeError) << test_case.name << " (traced)";
  }
}

TEST(KernelRegistryTest, DuplicateKernelRejected) {
  EnsureOpsRegistered();
  Status status = KernelRegistry::Global()->Register(
      "Add", [](KernelContext*) { return Status::OK(); });
  EXPECT_EQ(status.code(), ErrorCode::kAlreadyExists);
}

TEST(KernelRegistryTest, LookupMissingKernel) {
  EXPECT_FALSE(
      KernelRegistry::Global()->LookUp("NoSuchOp", DeviceKind::kCpu).ok());
}

}  // namespace
}  // namespace tfe
