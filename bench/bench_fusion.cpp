// Cross-op fusion on the op-queue drain + threadpool-parallel kernels.
//
// Two headline measurements, both real wall time on the host CPU:
//
//   * a 256-op elementwise chain dispatched asynchronously, with drain
//     fusion on vs. off — fusion collapses the whole run into one
//     FusedElementwise kernel launch, so the per-op queue/handle overhead
//     is paid once instead of 256 times;
//   * a 512x512x512 MatMul with the intra-op threadpool on vs. off —
//     sharded by row block, bitwise identical to the serial product.
//
//   build/bench/bench_fusion
#include <thread>

#include "bench/bench_util.h"
#include "runtime/eager_context.h"

using tfe::Tensor;
namespace ops = tfe::ops;
namespace bench = tfe::bench;

namespace {

constexpr int kChainOps = 256;
constexpr int kChainIterations = 20;

// Wall seconds for `iterations` async 256-op chains, draining at the end of
// each chain so queue depth stays bounded and every run is fully executed.
double ChainSeconds(bool fuse) {
  tfe::EagerContext* ctx = tfe::EagerContext::Global();
  ctx->set_fuse_elementwise(fuse);
  ctx->set_async(true);
  Tensor x = ops::random_normal({256, 256}, 0, 1, /*seed=*/7);
  Tensor half = ops::scalar<float>(0.5f);
  auto step = [&] {
    Tensor h = x;
    for (int i = 0; i < kChainOps / 2; ++i) {
      h = ops::mul(ops::add(h, x), half);
    }
    ctx->SyncAllDevices();
  };
  step();  // warm-up: queue threads, allocator
  double seconds = bench::MeasureWallSeconds(step, kChainIterations);
  ctx->set_async(false);
  ctx->set_fuse_elementwise(true);
  return seconds;
}

double MatMulSeconds(bool parallel) {
  tfe::EagerContext* ctx = tfe::EagerContext::Global();
  ctx->set_intra_op_parallelism(parallel);
  Tensor a = ops::random_normal({512, 512}, 0, 1, /*seed=*/1);
  Tensor b = ops::random_normal({512, 512}, 0, 1, /*seed=*/2);
  auto step = [&] { ops::matmul(a, b); };
  step();  // warm-up
  double seconds = bench::MeasureWallSeconds(step, /*iterations=*/5);
  ctx->set_intra_op_parallelism(true);
  return seconds;
}

}  // namespace

int main() {
  tfe::EagerContext::ResetGlobal({});
  tfe::EagerContext* ctx = tfe::EagerContext::Global();

  std::printf("Elementwise fusion + intra-op parallelism (wall time)\n");

  ctx->stats().fused_runs.store(0);
  ctx->stats().fused_ops.store(0);
  double unfused = ChainSeconds(/*fuse=*/false);
  double fused = ChainSeconds(/*fuse=*/true);
  const double fused_runs = static_cast<double>(ctx->stats().fused_runs.load());
  const double fused_ops = static_cast<double>(ctx->stats().fused_ops.load());

  std::printf("\n%d-op elementwise chain, async dispatch, %d iterations\n",
              kChainOps, kChainIterations);
  std::printf("%-22s%10.1f ms\n", "fusion off", unfused * 1e3);
  std::printf("%-22s%10.1f ms\n", "fusion on", fused * 1e3);
  std::printf("%-22s%9.2fx\n", "speedup", unfused / fused);
  std::printf("%-22s%10.0f runs / %.0f ops folded\n", "drain fuser",
              fused_runs, fused_ops);

  double serial = MatMulSeconds(/*parallel=*/false);
  double parallel = MatMulSeconds(/*parallel=*/true);
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("\n512x512x512 MatMul, %u hardware threads\n", hw);
  std::printf("%-22s%10.1f ms\n", "serial", serial * 1e3);
  std::printf("%-22s%10.1f ms\n", "intra-op parallel", parallel * 1e3);
  std::printf("%-22s%9.2fx\n", "speedup", serial / parallel);
  std::printf(
      "\nExpected: >=2x on both (MatMul needs >=4 hardware threads); the\n"
      "parallel product is bitwise identical to the serial one.\n");

  bench::JsonReport report("fusion");
  report.Add("chain_unfused_seconds", unfused);
  report.Add("chain_fused_seconds", fused);
  report.Add("chain_speedup", unfused / fused);
  report.Add("fused_runs", fused_runs);
  report.Add("fused_ops", fused_ops);
  report.Add("matmul_serial_seconds", serial);
  report.Add("matmul_parallel_seconds", parallel);
  report.Add("matmul_speedup", serial / parallel);
  report.Add("hardware_threads", static_cast<double>(hw));
  report.Write();
  return 0;
}
