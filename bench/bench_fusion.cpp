// Cross-op fusion on the op-queue drain + threadpool-parallel kernels.
//
// Two headline measurements, both real wall time on the host CPU:
//
//   * a 256-op elementwise chain dispatched asynchronously, with drain
//     fusion on vs. off — fusion collapses the whole run into one
//     FusedElementwise kernel launch, so the per-op queue/handle overhead
//     is paid once instead of 256 times;
//   * a 512x512x512 MatMul with the intra-op threadpool on vs. off —
//     sharded by row block, bitwise identical to the serial product.
//
//   build/bench/bench_fusion
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "graph/memory_planner.h"
#include "profiler/profiler.h"
#include "runtime/eager_context.h"
#include "tensor/allocator.h"

using tfe::Tensor;
namespace ops = tfe::ops;
namespace bench = tfe::bench;
namespace profiler = tfe::profiler;

namespace {

constexpr int kChainOps = 256;
constexpr int kChainIterations = 20;

// Wall seconds for `iterations` async 256-op chains, draining at the end of
// each chain so queue depth stays bounded and every run is fully executed.
double ChainSeconds(bool fuse) {
  tfe::EagerContext* ctx = tfe::EagerContext::Global();
  ctx->set_fuse_elementwise(fuse);
  ctx->set_async(true);
  Tensor x = ops::random_normal({256, 256}, 0, 1, /*seed=*/7);
  Tensor half = ops::scalar<float>(0.5f);
  auto step = [&] {
    Tensor h = x;
    for (int i = 0; i < kChainOps / 2; ++i) {
      h = ops::mul(ops::add(h, x), half);
    }
    ctx->SyncAllDevices();
  };
  step();  // warm-up: queue threads, allocator
  double seconds = bench::MeasureWallSeconds(step, kChainIterations);
  ctx->set_async(false);
  ctx->set_fuse_elementwise(true);
  return seconds;
}

// Same protocol as ChainSeconds, but every fourth op is a cast: an int32
// tensor enters the float run through ops::cast, which the drain fuser folds
// as a kCast micro-op instead of cutting the run at each dtype boundary.
// (Scalar casts fold too, as broadcast foreign operands.)
double CastChainSeconds(bool fuse) {
  tfe::EagerContext* ctx = tfe::EagerContext::Global();
  ctx->set_fuse_elementwise(fuse);
  ctx->set_async(true);
  Tensor x = ops::random_normal({256, 256}, 0, 1, /*seed=*/7);
  Tensor half = ops::scalar<float>(0.5f);
  Tensor xi =
      ops::cast(ops::mul(x, ops::scalar<float>(8.0f)), tfe::DType::kInt32);
  ctx->SyncAllDevices();  // xi concrete before the measured window
  auto step = [&] {
    Tensor h = x;
    for (int i = 0; i < kChainOps / 4; ++i) {
      h = ops::mul(ops::add(h, x), half);
      h = ops::sub(h, ops::cast(xi, tfe::DType::kFloat32));
    }
    ctx->SyncAllDevices();
  };
  step();  // warm-up
  double seconds = bench::MeasureWallSeconds(step, kChainIterations);
  ctx->set_async(false);
  ctx->set_fuse_elementwise(true);
  return seconds;
}

// A chain where every other op changes layout or broadcasts: add-bias
// ({256} against {256,256}), transpose, relu, transpose, repeated. The
// fuser folds Transpose as an indexed-load micro-op and the bias broadcast
// as a strided operand, so the whole interleaved chain still forms long
// runs instead of cutting at every shape change.
double LayoutChainSeconds(bool fuse) {
  tfe::EagerContext* ctx = tfe::EagerContext::Global();
  ctx->set_fuse_elementwise(fuse);
  ctx->set_async(true);
  Tensor x = ops::random_normal({256, 256}, 0, 1, /*seed=*/7);
  Tensor bias = ops::random_normal({256}, 0, 1, /*seed=*/11);
  auto step = [&] {
    Tensor h = x;
    for (int i = 0; i < kChainOps / 4; ++i) {
      h = ops::add(h, bias);
      h = ops::transpose(h, {1, 0});
      h = ops::relu(h);
      h = ops::transpose(h, {1, 0});
    }
    ctx->SyncAllDevices();
  };
  step();  // warm-up
  double seconds = bench::MeasureWallSeconds(step, kChainIterations);
  ctx->set_async(false);
  ctx->set_fuse_elementwise(true);
  return seconds;
}

// A 63-op elementwise chain ending in a full reduce_sum: one op short of the
// 64-member run cap so the reduction epilogue rides in the same run. Fused,
// the drain executes the whole thing as a single blocked map-reduce pass —
// no intermediate tensors at all; unfused it is 64 kernel launches and 63
// materialized 256KB temporaries.
constexpr int kReduceChainOps = 64;  // 63 elementwise + the reduce

double ReduceChainSeconds(bool fuse) {
  tfe::EagerContext* ctx = tfe::EagerContext::Global();
  ctx->set_fuse_elementwise(fuse);
  ctx->set_async(true);
  Tensor x = ops::random_normal({256, 256}, 0, 1, /*seed=*/7);
  Tensor half = ops::scalar<float>(0.5f);
  auto step = [&] {
    for (int chain = 0; chain < 4; ++chain) {
      Tensor h = x;
      for (int i = 0; i < (kReduceChainOps - 1) / 3; ++i) {
        h = ops::relu(ops::mul(ops::add(h, x), half));
      }
      Tensor total = ops::reduce_sum(h);
      (void)total;
    }
    ctx->SyncAllDevices();
  };
  step();  // warm-up
  double seconds = bench::MeasureWallSeconds(step, kChainIterations);
  ctx->set_async(false);
  ctx->set_fuse_elementwise(true);
  return seconds;
}

// ---- Residual diamond tower: DAG capture + program cache ------------------
//
// Each block computes t = relu(y * half); y = t + y. The skip connection
// makes every block a diamond: y feeds both the mul and the join add, so
// once a run spans a block boundary the in-run y is consumed twice — a true
// DAG segment, not a chain. (relu rather than tanh: the point is dispatch
// overhead removed by fusion, and a transcendental would bury it under pure
// compute on both sides.) The same shapes recur every block and every
// iteration, so after warm-up the drain resolves each window's program from
// the fused-program cache instead of recompiling.
constexpr int kResidualBlocks = 40;  // 3 ops per block

struct ResidualResult {
  double seconds = 0;
  double cache_hit_rate = 0;  // over the measured fused window
  double dag_runs = 0;        // fused DAG segments over the same window
  std::vector<float> values;  // final tower output, for the bitwise check
};

ResidualResult MeasureResidual(bool fuse) {
  tfe::EagerContext* ctx = tfe::EagerContext::Global();
  ctx->set_fuse_elementwise(fuse);
  ctx->set_async(true);
  Tensor x = ops::random_normal({256, 256}, 0, 1, /*seed=*/13);
  Tensor half = ops::scalar<float>(0.5f);
  auto tower = [&] {
    Tensor y = x;
    for (int i = 0; i < kResidualBlocks; ++i) {
      Tensor t = ops::relu(ops::mul(y, half));
      y = ops::add(t, y);
    }
    return y;
  };
  auto step = [&] {
    (void)tower();
    ctx->SyncAllDevices();
  };
  // Run boundaries depend on drain timing, so the set of distinct program
  // keys only saturates after several towers; warm up until lookups stop
  // missing, then measure steady state.
  for (int i = 0; i < 8; ++i) step();
  profiler::Counter* hits =
      profiler::Metrics().GetCounter("fusion.program_cache.hit");
  profiler::Counter* misses =
      profiler::Metrics().GetCounter("fusion.program_cache.miss");
  const uint64_t hits_before = hits->value();
  const uint64_t misses_before = misses->value();
  const uint64_t dag_before = ctx->stats().fused_dag_runs.load();
  ResidualResult out;
  out.seconds = bench::MeasureWallSeconds(step, kChainIterations);
  const double hit_delta = static_cast<double>(hits->value() - hits_before);
  const double miss_delta =
      static_cast<double>(misses->value() - misses_before);
  out.cache_hit_rate = hit_delta + miss_delta > 0
                           ? hit_delta / (hit_delta + miss_delta)
                           : 0.0;
  out.dag_runs =
      static_cast<double>(ctx->stats().fused_dag_runs.load() - dag_before);
  Tensor tip = tower();
  ctx->SyncAllDevices();
  out.values = tfe::tensor_util::ToVector<float>(tip);
  ctx->set_async(false);
  ctx->set_fuse_elementwise(true);
  return out;
}

// ---- Arena allocator + buffer donation A/B --------------------------------
//
// Donation folds a fused run's uniquely-owned input buffer into its output:
// per run the memory system sees one 256KB payload instead of two, so
// device.*.bytes_moved drops ~50% on a unary chain (>=30% is the gate). The
// arena's own wall-clock win is measured on a chain of 64MB tensors: above
// glibc's maximum mmap threshold (32MB) every system allocation is a fresh
// mmap, so each op pays munmap + ~16k page faults re-zeroing the block,
// while the arena hands the same warm, committed pages back per op. (Small
// buffers show no reliable gap — glibc's adaptive threshold absorbs those
// into its own freelists, which is exactly the arena pattern.)

constexpr int kAllocChainOps = 512;
constexpr int kBigChainOps = 6;

Tensor AllocChainTip(const Tensor& x) {
  Tensor h = x;
  for (int i = 0; i < kAllocChainOps; ++i) {
    h = (i % 2 == 0) ? ops::abs(h) : ops::neg(h);
  }
  return h;
}

struct AllocatorVariant {
  double big_chain_seconds = 0;  // 64MB-tensor loop, fusion off
  double fused_seconds = 0;      // fused loop (donation active when enabled)
  double bytes_moved = 0;        // device bytes over the fused measured window
  double donations = 0;          // in-place fused outputs over the same window
  std::vector<float> values;     // final chain tip, for the bitwise check
};

AllocatorVariant MeasureAllocatorVariant(tfe::AllocatorKind kind,
                                         bool donation) {
  // Flip the allocator between contexts (never under live allocating
  // threads), then rebuild devices so each owns an allocator of `kind`.
  tfe::OverrideDefaultAllocatorKind(kind);
  tfe::EagerContext::ResetGlobal({});
  tfe::EagerContext* ctx = tfe::EagerContext::Global();
  ctx->set_buffer_donation(donation);
  ctx->set_async(true);

  AllocatorVariant out;
  Tensor x = ops::random_normal({256, 256}, 0, 1, /*seed=*/7);
  ctx->SyncAllDevices();
  auto step = [&] {
    for (int chain = 0; chain < 2; ++chain) (void)AllocChainTip(x);
    ctx->SyncAllDevices();
  };

  // Allocation-heavy loop: each op materializes a fresh 64MB output.
  Tensor big = ops::random_normal({4096, 4096}, 0, 1, /*seed=*/9);
  ctx->SyncAllDevices();
  auto big_step = [&] {
    Tensor h = big;
    for (int i = 0; i < kBigChainOps; ++i) {
      h = (i % 2 == 0) ? ops::abs(h) : ops::neg(h);
    }
    ctx->SyncAllDevices();
  };
  ctx->set_fuse_elementwise(false);
  big_step();  // warm-up: queue threads, arena freelists
  out.big_chain_seconds = bench::MeasureWallSeconds(big_step, /*iterations=*/5);

  ctx->set_fuse_elementwise(true);
  step();  // warm-up
  // bytes_moved only accumulates while the profiler is on (the kernel
  // observability wrapper early-outs otherwise).
  profiler::Counter* moved = profiler::Metrics().GetCounter(
      "device." + ctx->HostCpu()->name() + ".bytes_moved");
  profiler::Counter* donations =
      profiler::Metrics().GetCounter("allocator.donations");
  const bool was_profiling = profiler::enabled();
  if (!was_profiling) profiler::Start();
  const uint64_t moved_before = moved->value();
  const uint64_t donations_before = donations->value();
  out.fused_seconds = bench::MeasureWallSeconds(step, /*iterations=*/10);
  out.bytes_moved = static_cast<double>(moved->value() - moved_before);
  out.donations = static_cast<double>(donations->value() - donations_before);
  if (!was_profiling) profiler::Stop();

  Tensor tip = AllocChainTip(x);
  ctx->SyncAllDevices();
  out.values = tfe::tensor_util::ToVector<float>(tip);
  ctx->set_async(false);
  return out;
}

// ---- Static memory planning A/B -------------------------------------------
//
// A staged residual tower whose matmuls keep the elementwise segments from
// collapsing into one node, so the execution variant carries real planned
// intermediates. With planning on, one slab acquisition replaces the per-op
// arena calls for every non-escaping intermediate, and chaining h = step(h)
// lets each run claim the previous run's retired output block instead of
// allocating it (cross-run forwarding). Same graph, same bits, either way.

constexpr int kPlanTowerLayers = 8;
constexpr int kPlanSteps = 20;

struct PlanVariant {
  double seconds = 0;
  double alloc_calls_per_step = 0;  // arena/system calls per staged step
  double planned_per_step = 0;      // slab-offset handouts per staged step
  double forwarded_runs = 0;        // runs that claimed a retired block
  std::vector<float> values;        // final tower tip, for the bitwise check
};

PlanVariant MeasurePlanVariant(bool planning) {
  tfe::memplan::OverrideMemoryPlanning(planning);
  tfe::EagerContext::ResetGlobal({});
  tfe::EagerContext* ctx = tfe::EagerContext::Global();

  Tensor x = ops::mul(ops::random_normal({64, 64}, 0, 1, /*seed=*/17),
                      ops::scalar<float>(0.05f));
  Tensor w = ops::mul(ops::random_normal({64, 64}, 0, 1, /*seed=*/18),
                      ops::scalar<float>(0.05f));
  tfe::Function step = tfe::function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor h = args[0];
        for (int i = 0; i < kPlanTowerLayers; ++i) {
          h = ops::add(ops::relu(ops::matmul(h, args[1])), h);
        }
        return {h};
      },
      planning ? "plan_tower_on" : "plan_tower_off");
  ctx->SyncAllDevices();

  PlanVariant out;
  Tensor h = x;
  for (int i = 0; i < 3; ++i) h = step({h, w})[0];  // warm-up: trace + slab
  ctx->SyncAllDevices();

  profiler::Counter* alloc_calls =
      profiler::Metrics().GetCounter("allocator.alloc_calls");
  profiler::Counter* planned =
      profiler::Metrics().GetCounter("allocator.plan.planned_allocs");
  profiler::Counter* forwarded =
      profiler::Metrics().GetCounter("allocator.plan.forwarded_runs");
  const uint64_t alloc_before = alloc_calls->value();
  const uint64_t planned_before = planned->value();
  const uint64_t forwarded_before = forwarded->value();
  int steps = 0;
  out.seconds = bench::MeasureWallSeconds(
      [&] {
        for (int i = 0; i < kPlanSteps; ++i, ++steps) h = step({h, w})[0];
        ctx->SyncAllDevices();
      },
      /*iterations=*/1);
  out.alloc_calls_per_step =
      static_cast<double>(alloc_calls->value() - alloc_before) / steps;
  out.planned_per_step =
      static_cast<double>(planned->value() - planned_before) / steps;
  out.forwarded_runs =
      static_cast<double>(forwarded->value() - forwarded_before);

  // Deterministic tip for the bitwise check: the measured loop above ran a
  // fixed step count from fixed seeds in both variants.
  out.values = tfe::tensor_util::ToVector<float>(h);
  tfe::memplan::ClearMemoryPlanningOverride();
  return out;
}

double MatMulSeconds(bool parallel) {
  tfe::EagerContext* ctx = tfe::EagerContext::Global();
  ctx->set_intra_op_parallelism(parallel);
  Tensor a = ops::random_normal({512, 512}, 0, 1, /*seed=*/1);
  Tensor b = ops::random_normal({512, 512}, 0, 1, /*seed=*/2);
  auto step = [&] { ops::matmul(a, b); };
  step();  // warm-up
  double seconds = bench::MeasureWallSeconds(step, /*iterations=*/5);
  ctx->set_intra_op_parallelism(true);
  return seconds;
}

}  // namespace

int main() {
  tfe::EagerContext::ResetGlobal({});
  tfe::EagerContext* ctx = tfe::EagerContext::Global();

  // Under TFE_PROFILE, land the static planner's trace evidence up front:
  // the per-thread event buffers are bounded and the eager chain series
  // flood them, so the "memory_plan" / "buffer_forward" instants from the
  // A/B series at the end of this binary would be dropped. Every series
  // resets the context before measuring, so these staged warm runs cost
  // nothing downstream.
  if (profiler::enabled()) {
    Tensor x = ops::mul(ops::random_normal({32, 32}, 0, 1, /*seed=*/3),
                        ops::scalar<float>(0.05f));
    tfe::Function warm = tfe::function(
        [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
          Tensor h = ops::add(ops::relu(ops::matmul(args[0], args[0])),
                              args[0]);
          return {ops::matmul(h, args[0])};
        },
        "bench_fusion_plan_warm");
    Tensor h = x;
    for (int i = 0; i < 3; ++i) h = warm({h})[0];  // run 3 forwards run 2
    ctx->SyncAllDevices();
  }

  std::printf("Elementwise fusion + intra-op parallelism (wall time)\n");

  // The drain records every popped run's length here (always-on metric), so
  // resetting it before each fused window gives the mean run length that
  // window achieved.
  profiler::Histogram* run_length =
      profiler::Metrics().GetHistogram("fusion.run_length");

  ctx->stats().fused_runs.store(0);
  ctx->stats().fused_ops.store(0);
  double unfused = ChainSeconds(/*fuse=*/false);
  run_length->Reset();
  double fused = ChainSeconds(/*fuse=*/true);
  const double plain_run_length = run_length->mean();
  const double fused_runs = static_cast<double>(ctx->stats().fused_runs.load());
  const double fused_ops = static_cast<double>(ctx->stats().fused_ops.load());

  std::printf("\n%d-op elementwise chain, async dispatch, %d iterations\n",
              kChainOps, kChainIterations);
  std::printf("%-22s%10.1f ms\n", "fusion off", unfused * 1e3);
  std::printf("%-22s%10.1f ms\n", "fusion on", fused * 1e3);
  std::printf("%-22s%9.2fx\n", "speedup", unfused / fused);
  std::printf("%-22s%10.0f runs / %.0f ops folded\n", "drain fuser",
              fused_runs, fused_ops);
  std::printf("%-22s%10.1f ops\n", "mean run length", plain_run_length);

  double cast_unfused = CastChainSeconds(/*fuse=*/false);
  run_length->Reset();
  double cast_fused = CastChainSeconds(/*fuse=*/true);
  const double cast_run_length = run_length->mean();

  std::printf("\n%d-op chain with a cast every 4th op\n", kChainOps);
  std::printf("%-22s%10.1f ms\n", "fusion off", cast_unfused * 1e3);
  std::printf("%-22s%10.1f ms\n", "fusion on", cast_fused * 1e3);
  std::printf("%-22s%9.2fx\n", "speedup", cast_unfused / cast_fused);
  std::printf("%-22s%10.1f ops (casts fold instead of cutting)\n",
              "mean run length", cast_run_length);

  double layout_unfused = LayoutChainSeconds(/*fuse=*/false);
  run_length->Reset();
  double layout_fused = LayoutChainSeconds(/*fuse=*/true);
  const double layout_run_length = run_length->mean();

  std::printf("\n%d-op chain with transpose / bias-add every other op\n",
              kChainOps);
  std::printf("%-22s%10.1f ms\n", "fusion off", layout_unfused * 1e3);
  std::printf("%-22s%10.1f ms\n", "fusion on", layout_fused * 1e3);
  std::printf("%-22s%9.2fx\n", "speedup", layout_unfused / layout_fused);
  std::printf("%-22s%10.1f ops (layout ops ride inside the run)\n",
              "mean run length", layout_run_length);

  profiler::Counter* reduce_runs =
      profiler::Metrics().GetCounter("fusion.reduce_runs");
  const int64_t reduce_runs_before = reduce_runs->value();
  double reduce_unfused = ReduceChainSeconds(/*fuse=*/false);
  double reduce_fused = ReduceChainSeconds(/*fuse=*/true);
  const double fused_reduce_runs =
      static_cast<double>(reduce_runs->value() - reduce_runs_before);

  std::printf("\n%d-op elementwise chain ending in reduce_sum\n",
              kReduceChainOps);
  std::printf("%-22s%10.1f ms\n", "fusion off", reduce_unfused * 1e3);
  std::printf("%-22s%10.1f ms\n", "fusion on", reduce_fused * 1e3);
  std::printf("%-22s%9.2fx\n", "speedup", reduce_unfused / reduce_fused);
  std::printf("%-22s%10.0f map-reduce passes\n", "fused reduce runs",
              fused_reduce_runs);

  ResidualResult residual_unfused = MeasureResidual(/*fuse=*/false);
  ResidualResult residual_fused = MeasureResidual(/*fuse=*/true);
  const double residual_speedup =
      residual_unfused.seconds / residual_fused.seconds;
  const bool residual_bitwise_equal =
      residual_unfused.values.size() == residual_fused.values.size() &&
      std::memcmp(residual_unfused.values.data(), residual_fused.values.data(),
                  residual_fused.values.size() * sizeof(float)) == 0;

  std::printf("\n%d-block residual tower (diamond DAG per block)\n",
              kResidualBlocks);
  std::printf("%-22s%10.1f ms\n", "fusion off",
              residual_unfused.seconds * 1e3);
  std::printf("%-22s%10.1f ms\n", "fusion + program cache",
              residual_fused.seconds * 1e3);
  std::printf("%-22s%9.2fx\n", "speedup", residual_speedup);
  std::printf("%-22s%9.0f%%\n", "cache hit rate",
              residual_fused.cache_hit_rate * 100.0);
  std::printf("%-22s%10.0f DAG segments\n", "dag fused runs",
              residual_fused.dag_runs);
  std::printf("%-22s%10s\n", "bitwise identical",
              residual_bitwise_equal ? "yes" : "NO");

  // Allocator + donation A/B: the copying system-allocator configuration vs
  // arena recycling with in-place donation, same chain, same bits.
  AllocatorVariant alloc_system =
      MeasureAllocatorVariant(tfe::AllocatorKind::kSystem, /*donation=*/false);
  AllocatorVariant alloc_arena =
      MeasureAllocatorVariant(tfe::AllocatorKind::kArena, /*donation=*/true);
  tfe::ClearAllocatorKindOverride();
  tfe::EagerContext::ResetGlobal({});
  const double bytes_reduction =
      alloc_system.bytes_moved > 0
          ? 1.0 - alloc_arena.bytes_moved / alloc_system.bytes_moved
          : 0.0;
  const bool alloc_bitwise_equal =
      alloc_system.values.size() == alloc_arena.values.size() &&
      std::memcmp(alloc_system.values.data(), alloc_arena.values.data(),
                  alloc_arena.values.size() * sizeof(float)) == 0;

  std::printf("\n%d-op unary chain: system+copy vs arena+donate\n",
              kAllocChainOps);
  std::printf("%-22s%10.1f ms (%d-op 64MB chain)\n", "system allocator",
              alloc_system.big_chain_seconds * 1e3, kBigChainOps);
  std::printf("%-22s%10.1f ms (%d-op 64MB chain)\n", "arena allocator",
              alloc_arena.big_chain_seconds * 1e3, kBigChainOps);
  std::printf("%-22s%9.2fx\n", "arena speedup",
              alloc_system.big_chain_seconds / alloc_arena.big_chain_seconds);
  std::printf("%-22s%10.1f MB -> %.1f MB (-%.0f%%)\n", "fused bytes moved",
              alloc_system.bytes_moved / 1e6, alloc_arena.bytes_moved / 1e6,
              bytes_reduction * 100.0);
  std::printf("%-22s%10.0f in-place outputs\n", "donations",
              alloc_arena.donations);
  std::printf("%-22s%10s\n", "bitwise identical",
              alloc_bitwise_equal ? "yes" : "NO");

  // Static planning A/B: per-op arena calls vs one slab + forwarded blocks.
  PlanVariant plan_off = MeasurePlanVariant(/*planning=*/false);
  PlanVariant plan_on = MeasurePlanVariant(/*planning=*/true);
  tfe::EagerContext::ResetGlobal({});
  const double plan_alloc_reduction =
      plan_off.alloc_calls_per_step > 0
          ? 1.0 - plan_on.alloc_calls_per_step / plan_off.alloc_calls_per_step
          : 0.0;
  const bool plan_bitwise_equal =
      plan_off.values.size() == plan_on.values.size() &&
      std::memcmp(plan_off.values.data(), plan_on.values.data(),
                  plan_on.values.size() * sizeof(float)) == 0;

  std::printf("\n%d-layer staged residual tower: per-op alloc vs memory plan\n",
              kPlanTowerLayers);
  std::printf("%-22s%10.2f ms (%d steps)\n", "planning off",
              plan_off.seconds * 1e3, kPlanSteps);
  std::printf("%-22s%10.2f ms (%d steps)\n", "planning on",
              plan_on.seconds * 1e3, kPlanSteps);
  std::printf("%-22s%10.1f -> %.1f per step (-%.0f%%)\n", "allocator calls",
              plan_off.alloc_calls_per_step, plan_on.alloc_calls_per_step,
              plan_alloc_reduction * 100.0);
  std::printf("%-22s%10.1f slab offsets per step\n", "planned allocs",
              plan_on.planned_per_step);
  std::printf("%-22s%10.0f runs claimed a retired block\n", "forwarded",
              plan_on.forwarded_runs);
  std::printf("%-22s%10s\n", "bitwise identical",
              plan_bitwise_equal ? "yes" : "NO");

  // The MatMul parallel-speedup series only measures anything on a machine
  // with more than one hardware thread; on a single-core host the sharded
  // product degenerates to the serial one plus threadpool overhead, so the
  // series (and its JSON keys) is skipped entirely.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool run_matmul_series = hw > 1;
  double serial = 0.0;
  double parallel = 0.0;
  if (run_matmul_series) {
    serial = MatMulSeconds(/*parallel=*/false);
    parallel = MatMulSeconds(/*parallel=*/true);

    std::printf("\n512x512x512 MatMul, %u hardware threads\n", hw);
    std::printf("%-22s%10.1f ms\n", "serial", serial * 1e3);
    std::printf("%-22s%10.1f ms\n", "intra-op parallel", parallel * 1e3);
    std::printf("%-22s%9.2fx\n", "speedup", serial / parallel);
    std::printf(
        "\nExpected: >=2x on both (MatMul needs >=4 hardware threads); the\n"
        "parallel product is bitwise identical to the serial one.\n");
  } else {
    std::printf(
        "\n512x512x512 MatMul series skipped: 1 hardware thread, no\n"
        "parallel speedup to measure.\n");
  }

  bench::JsonReport report("fusion");
  report.Add("chain_unfused_seconds", unfused);
  report.Add("chain_fused_seconds", fused);
  report.Add("chain_speedup", unfused / fused);
  report.Add("fused_runs", fused_runs);
  report.Add("fused_ops", fused_ops);
  report.Add("chain_mean_run_length", plain_run_length);
  report.Add("cast_chain_unfused_seconds", cast_unfused);
  report.Add("cast_chain_fused_seconds", cast_fused);
  report.Add("cast_chain_speedup", cast_unfused / cast_fused);
  report.Add("cast_chain_mean_run_length", cast_run_length);
  report.Add("layout_chain_unfused_seconds", layout_unfused);
  report.Add("layout_chain_fused_seconds", layout_fused);
  report.Add("layout_chain_speedup", layout_unfused / layout_fused);
  report.Add("layout_chain_mean_run_length", layout_run_length);
  report.Add("reduce_chain_unfused_seconds", reduce_unfused);
  report.Add("reduce_chain_fused_seconds", reduce_fused);
  report.Add("reduce_chain_speedup", reduce_unfused / reduce_fused);
  report.Add("fused_reduce_runs", fused_reduce_runs);
  report.Add("residual_unfused_seconds", residual_unfused.seconds);
  report.Add("residual_fused_seconds", residual_fused.seconds);
  report.Add("residual_speedup", residual_speedup);
  report.Add("residual_cache_hit_rate", residual_fused.cache_hit_rate);
  report.Add("residual_dag_runs", residual_fused.dag_runs);
  report.Add("residual_bitwise_equal", residual_bitwise_equal ? 1.0 : 0.0);
  report.Add("alloc_system_big_chain_seconds", alloc_system.big_chain_seconds);
  report.Add("alloc_arena_big_chain_seconds", alloc_arena.big_chain_seconds);
  report.Add("alloc_arena_speedup",
             alloc_system.big_chain_seconds / alloc_arena.big_chain_seconds);
  report.Add("alloc_system_fused_seconds", alloc_system.fused_seconds);
  report.Add("alloc_arena_fused_seconds", alloc_arena.fused_seconds);
  report.Add("alloc_system_bytes_moved", alloc_system.bytes_moved);
  report.Add("alloc_arena_bytes_moved", alloc_arena.bytes_moved);
  report.Add("alloc_bytes_moved_reduction", bytes_reduction);
  report.Add("alloc_donations", alloc_arena.donations);
  report.Add("alloc_bitwise_equal", alloc_bitwise_equal ? 1.0 : 0.0);
  report.Add("plan_off_seconds", plan_off.seconds);
  report.Add("plan_on_seconds", plan_on.seconds);
  report.Add("plan_off_alloc_calls_per_step", plan_off.alloc_calls_per_step);
  report.Add("plan_on_alloc_calls_per_step", plan_on.alloc_calls_per_step);
  report.Add("plan_alloc_calls_reduction", plan_alloc_reduction);
  report.Add("plan_planned_allocs_per_step", plan_on.planned_per_step);
  report.Add("plan_forwarded_runs", plan_on.forwarded_runs);
  report.Add("plan_bitwise_equal", plan_bitwise_equal ? 1.0 : 0.0);
  if (run_matmul_series) {
    report.Add("matmul_serial_seconds", serial);
    report.Add("matmul_parallel_seconds", parallel);
    report.Add("matmul_speedup", serial / parallel);
  }
  report.Add("hardware_threads", static_cast<double>(hw));
  report.AddProfilerMetrics();
  report.Write();

  // Regression gates for the map-reduce fusion window. Layout ops must not
  // cut runs (mean run length on the interleaved chain stays long), and the
  // fused chain→reduce pass must beat 64 separate kernel launches by >=3x.
  int rc = 0;
  if (layout_run_length <= 16.0) {
    std::fprintf(stderr,
                 "FAIL: mean run length %.1f <= 16 on the transpose/bias-add "
                 "chain — layout ops are cutting fusion runs\n",
                 layout_run_length);
    rc = 1;
  }
  if (reduce_unfused / reduce_fused < 3.0) {
    std::fprintf(stderr,
                 "FAIL: chain->reduce_sum fused speedup %.2fx < 3x\n",
                 reduce_unfused / reduce_fused);
    rc = 1;
  }
  if (fused_reduce_runs < 1.0) {
    std::fprintf(stderr,
                 "FAIL: no fused map-reduce pass ran — the reduce epilogue "
                 "was not recognized on the drain\n");
    rc = 1;
  }
  // DAG-fusion gates: the cached diamond tower must beat op-at-a-time by
  // >=2x, steady-state program lookups must resolve from the cache, at
  // least one window must have been recognized as a true DAG segment, and
  // fusion must not move a single bit of the result.
  if (residual_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: residual tower fused speedup %.2fx < 2x\n",
                 residual_speedup);
    rc = 1;
  }
  if (residual_fused.cache_hit_rate < 0.90) {
    std::fprintf(stderr,
                 "FAIL: steady-state program-cache hit rate %.0f%% < 90%%\n",
                 residual_fused.cache_hit_rate * 100.0);
    rc = 1;
  }
  if (residual_fused.dag_runs < 1.0) {
    std::fprintf(stderr,
                 "FAIL: no DAG segment fused on the residual tower — the "
                 "diamond is being cut into chains\n");
    rc = 1;
  }
  if (!residual_bitwise_equal) {
    std::fprintf(stderr,
                 "FAIL: DAG-fused residual tower differs bitwise from the "
                 "unfused one\n");
    rc = 1;
  }
  // Memory-subsystem gates: donation must cut measured device traffic by
  // >=30% (a donated unary run moves 1 payload instead of 2, ~50%), the
  // arena must beat the system allocator on the allocation-heavy unfused
  // chain, and none of it may move a single bit of the results.
  if (bytes_reduction < 0.30) {
    std::fprintf(stderr,
                 "FAIL: donation cut fused bytes_moved by only %.0f%% < 30%%\n",
                 bytes_reduction * 100.0);
    rc = 1;
  }
  if (alloc_arena.donations < 1.0) {
    std::fprintf(stderr, "FAIL: no fused run donated an input buffer\n");
    rc = 1;
  }
  if (alloc_system.donations > 0.0) {
    std::fprintf(stderr, "FAIL: donation fired with buffer_donation off\n");
    rc = 1;
  }
  if (alloc_arena.big_chain_seconds >= alloc_system.big_chain_seconds) {
    std::fprintf(stderr,
                 "FAIL: arena allocator not faster than system on the "
                 "allocation-heavy chain (%.1f ms vs %.1f ms)\n",
                 alloc_arena.big_chain_seconds * 1e3,
                 alloc_system.big_chain_seconds * 1e3);
    rc = 1;
  }
  if (!alloc_bitwise_equal) {
    std::fprintf(stderr,
                 "FAIL: arena+donation results differ bitwise from "
                 "system+copy\n");
    rc = 1;
  }
  // Static-planning gates: a planned steady-state step must issue >=30%
  // fewer allocator calls than per-op allocation, actually forward retired
  // blocks across runs, cost no wall-clock (10% tolerance for timer noise on
  // a sub-ms step), and not move a single bit of the result.
  if (plan_alloc_reduction < 0.30) {
    std::fprintf(stderr,
                 "FAIL: memory plan cut allocator calls by only %.0f%% < 30%% "
                 "(%.1f -> %.1f per step)\n",
                 plan_alloc_reduction * 100.0, plan_off.alloc_calls_per_step,
                 plan_on.alloc_calls_per_step);
    rc = 1;
  }
  if (plan_on.planned_per_step < 1.0) {
    std::fprintf(stderr,
                 "FAIL: no intermediate was served from the plan slab\n");
    rc = 1;
  }
  if (plan_on.forwarded_runs < 1.0) {
    std::fprintf(stderr,
                 "FAIL: no run claimed a retired output block — cross-run "
                 "forwarding never fired\n");
    rc = 1;
  }
  if (plan_on.seconds > plan_off.seconds * 1.10) {
    std::fprintf(stderr,
                 "FAIL: planning regressed the staged step (%.2f ms vs "
                 "%.2f ms)\n",
                 plan_on.seconds * 1e3, plan_off.seconds * 1e3);
    rc = 1;
  }
  if (!plan_bitwise_equal) {
    std::fprintf(stderr,
                 "FAIL: planned tower differs bitwise from the per-op "
                 "allocated one\n");
    rc = 1;
  }
  return rc;
}
