// Staged-loop RNN benchmark: the dynamic-model workload of paper §4.1/§7
// where one while_loop trace serves every sequence length.
//
// Four series over the same LSTM cell, batch 8, sequence lengths
// {4, 8, 16, 32, 64}:
//  * "TFE"              — eager unrolled host loop: per-op dispatch cost,
//                         the interpreter-bound baseline.
//  * "TFE retrace"      — per-iteration re-tracing: the LSTM step is
//                         staged, but into a FRESH function every time
//                         step, so each iteration pays a full trace. This
//                         is the naive pattern staged loops exist to kill.
//  * "TFE + while"      — DynamicRnn inside ONE traced function: the graph
//                         contains a While node; the body's execution
//                         variant is resolved once per loop and reused
//                         across iterations.
//  * "TFE + unrolled"   — UnrolledRnn traced: the time loop unrolls into
//                         the graph, one trace per length.
//
// BENCH_rnn.json gates: the staged while loop must beat per-call
// re-tracing by >= 3x at the longest sequence, and the loop-body
// execution-variant cache must hit on >= 90% of iterations.
//
//   build/bench/bench_rnn
#include "bench/bench_util.h"
#include "models/rnn.h"
#include "profiler/metrics.h"

using tfe::Tensor;
namespace ops = tfe::ops;
namespace bench = tfe::bench;

int main() {
  tfe::EagerContext::Options options;
  options.host_profile = tfe::HostProfile::Python();
  options.async = true;  // eager baselines dispatch through the op queues
  tfe::EagerContext::ResetGlobal(options);

  constexpr int64_t kBatch = 8;
  constexpr int64_t kInput = 16;
  constexpr int64_t kHidden = 32;
  const std::vector<int64_t> lengths = {4, 8, 16, 32, 64};

  std::printf("LSTM sequence models on CPU: staged while_loop vs "
              "re-tracing vs unrolling\n");
  std::printf("batch %lld, input %lld, hidden %lld; %d iterations averaged "
              "over %d runs\n",
              static_cast<long long>(kBatch), static_cast<long long>(kInput),
              static_cast<long long>(kHidden), bench::kIterations,
              bench::kRuns);

  tfe::models::LSTMCell cell(kInput, kHidden, /*seed=*/7);

  // Under TFE_PROFILE, execute one staged While up front (eager while_loop
  // is just a host loop — only a traced function actually runs the While
  // kernel): the per-thread event buffers are bounded and the measurement
  // sweep floods them, so the "staged_loop" trace evidence must land before
  // the flood, not after.
  {
    Tensor warm_seq =
        ops::random_normal({1, 2, kInput}, 0, 1, /*seed=*/99);
    tfe::Function warm = tfe::function(
        [&cell, warm_seq](const std::vector<Tensor>& args)
            -> std::vector<Tensor> {
          return {tfe::models::DynamicRnn(cell, warm_seq, args[0])};
        },
        "bench_rnn_warm_loop");
    warm({ops::fill(tfe::DType::kInt32, {}, 2.0)});
  }

  bench::Series eager_series{"TFE", {}};
  bench::Series retrace_series{"TFE retrace", {}};
  bench::Series while_series{"TFE + while", {}};
  bench::Series unrolled_series{"TFE + unrolled", {}};

  tfe::profiler::Counter* loop_iterations =
      tfe::profiler::Metrics().GetCounter("loop.iterations");
  tfe::profiler::Counter* loop_body_hits =
      tfe::profiler::Metrics().GetCounter("loop.body_cache_hit");
  uint64_t iters_before = loop_iterations->value();
  uint64_t hits_before = loop_body_hits->value();

  // Static-memory-plan activity over the sweep (graph/memory_planner.h):
  // staged runs that drew from a plan slab, and runs that claimed a retired
  // output block. Recorded in the JSON so plan coverage on a real staged
  // model is trackable, not gated here (bench_fusion owns the A/B gates).
  tfe::profiler::Counter* plan_runs =
      tfe::profiler::Metrics().GetCounter("allocator.plan.runs");
  tfe::profiler::Counter* plan_allocs =
      tfe::profiler::Metrics().GetCounter("allocator.plan.planned_allocs");
  tfe::profiler::Counter* plan_forwarded =
      tfe::profiler::Metrics().GetCounter("allocator.plan.forwarded_runs");
  uint64_t plan_runs_before = plan_runs->value();
  uint64_t plan_allocs_before = plan_allocs->value();
  uint64_t plan_forwarded_before = plan_forwarded->value();

  for (int64_t T : lengths) {
    Tensor sequence =
        ops::random_normal({kBatch, T, kInput}, 0, 1, /*seed=*/100 + T);
    Tensor length = ops::fill(tfe::DType::kInt32, {}, static_cast<double>(T));
    // Sequences (examples) processed per measured window: batch * iterations.
    const double examples = static_cast<double>(kBatch) * bench::kIterations;

    {
      auto step = [&] { tfe::models::UnrolledRnn(cell, sequence); };
      step();
      eager_series.examples_per_second.push_back(
          examples / bench::MeasureVirtualSeconds(step));
    }
    {
      // Per-iteration re-tracing: wrap the cell step in a fresh Function
      // each time step, so every iteration traces anew. No warm-up can
      // amortize it — the trace cost recurs inside the measured window.
      auto step = [&] {
        tfe::models::LSTMCell::State state = cell.ZeroState(kBatch);
        for (int64_t t = 0; t < T; ++t) {
          Tensor x = ops::reshape(
              ops::slice(sequence, {0, t, 0}, {-1, 1, -1}), {kBatch, kInput});
          tfe::Function step_fn = tfe::function(
              [&cell](const std::vector<Tensor>& args)
                  -> std::vector<Tensor> {
                auto next = cell(args[0], {args[1], args[2]});
                return {next.h, next.c};
              },
              "bench_rnn_retrace_step");
          std::vector<Tensor> out = step_fn({x, state.h, state.c});
          state = {out[0], out[1]};
        }
      };
      step();
      retrace_series.examples_per_second.push_back(
          examples / bench::MeasureVirtualSeconds(step));
    }
    {
      tfe::Function staged = tfe::function(
          [&cell, sequence](const std::vector<Tensor>& args)
              -> std::vector<Tensor> {
            return {tfe::models::DynamicRnn(cell, sequence, args[0])};
          },
          "bench_rnn_while");
      auto step = [&] { staged({length}); };
      step();  // trace once; the While node and its body now live in a graph
      while_series.examples_per_second.push_back(
          examples / bench::MeasureVirtualSeconds(step));
    }
    {
      tfe::Function staged = tfe::function(
          [&cell](const std::vector<Tensor>& args) -> std::vector<Tensor> {
            return {tfe::models::UnrolledRnn(cell, args[0])};
          },
          "bench_rnn_unrolled");
      auto step = [&] { staged({sequence}); };
      step();
      unrolled_series.examples_per_second.push_back(
          examples / bench::MeasureVirtualSeconds(step));
    }
    std::printf("  T=%-3lld done\n", static_cast<long long>(T));
  }

  uint64_t loop_iters = loop_iterations->value() - iters_before;
  uint64_t loop_hits = loop_body_hits->value() - hits_before;
  double hit_rate = loop_iters > 0
                        ? static_cast<double>(loop_hits) /
                              static_cast<double>(loop_iters)
                        : 0.0;

  bench::PrintTable("Sequences/second, LSTM over time (Python host model)",
                    "seq length", lengths,
                    {eager_series, retrace_series, while_series,
                     unrolled_series});

  const size_t last = lengths.size() - 1;
  double staged_vs_retrace = while_series.examples_per_second[last] /
                             retrace_series.examples_per_second[last];
  std::printf("\nstaged while vs per-call re-tracing at T=%lld: %.1fx\n",
              static_cast<long long>(lengths[last]), staged_vs_retrace);
  std::printf("loop body execution-variant hit rate: %.1f%% "
              "(%llu of %llu iterations)\n",
              100.0 * hit_rate, static_cast<unsigned long long>(loop_hits),
              static_cast<unsigned long long>(loop_iters));

  bench::JsonReport report("rnn");
  for (const bench::Series& s : {eager_series, retrace_series, while_series,
                                 unrolled_series}) {
    report.AddSeries(lengths, s);
  }
  report.Add("staged_vs_retrace_speedup", staged_vs_retrace);
  report.Add("loop_body_cache_hit_rate", hit_rate);
  report.Add("gate_staged_loop_3x", staged_vs_retrace >= 3.0 ? 1 : 0);
  report.Add("gate_body_cache_90", hit_rate >= 0.9 ? 1 : 0);
  report.Add("plan_runs",
             static_cast<double>(plan_runs->value() - plan_runs_before));
  report.Add("plan_planned_allocs",
             static_cast<double>(plan_allocs->value() - plan_allocs_before));
  report.Add("plan_forwarded_runs",
             static_cast<double>(plan_forwarded->value() -
                                 plan_forwarded_before));
  report.AddProfilerMetrics();
  report.Write();
  return 0;
}
