// Asynchronous eager execution (paper §5): throughput of a dispatch-bound
// op chain with synchronous vs. asynchronous dispatch.
//
// The workload is a 512-op elementwise chain on a synchronous timing-only
// device whose kernels cost 20us each, driven by the calibrated Python-era
// host profile (25us per dispatch). Synchronous dispatch serializes host and
// device (45us/op); asynchronous dispatch overlaps the kernel with the next
// op's host work (25us/op), the exact mechanism the paper describes: "the
// runtime can execute operations asynchronously, keeping the [host] thread
// free while the ops complete on their devices."
//
//   build/bench/bench_async
#include <memory>

#include "bench/bench_util.h"

using tfe::Tensor;
namespace ops = tfe::ops;
namespace bench = tfe::bench;

namespace {

constexpr int kChainOps = 512;

// A device whose kernels block the host when dispatched synchronously —
// the worst case async dispatch is designed to fix. Timing-only: the
// roofline is negligible next to the 20us launch cost.
void AddChainDevice(tfe::EagerContext* ctx) {
  tfe::DeviceNameParts parts;
  parts.kind = tfe::DeviceKind::kGpu;
  parts.index = 1;
  tfe::DeviceCostParams params;
  params.flops_per_second = 1e18;
  params.bytes_per_second = 1e18;
  params.kernel_launch_ns = 20'000;
  auto device = std::make_unique<tfe::Device>(parts, params,
                                              /*executes_kernels=*/false,
                                              /*synchronous=*/true);
  TFE_CHECK(ctx->devices().AddDevice(std::move(device)).ok());
}

double OpsPerVirtualSecond(bool async) {
  tfe::EagerContext* ctx = tfe::EagerContext::Global();
  ctx->set_async(async);
  Tensor x = ops::constant<float>({1, 2, 3, 4}, {2, 2});
  auto step = [&] {
    tfe::DeviceScope device("/gpu:1");
    Tensor h = x;
    for (int i = 0; i < kChainOps; ++i) h = ops::add(h, h);
  };
  step();  // warm-up (device copy of x, queue creation)
  double seconds = bench::MeasureVirtualSeconds(step, /*iterations=*/1);
  ctx->set_async(false);
  return kChainOps / seconds;
}

}  // namespace

int main() {
  tfe::EagerContext::Options options;
  options.host_profile = tfe::HostProfile::Python();
  tfe::EagerContext::ResetGlobal(options);
  AddChainDevice(tfe::EagerContext::Global());

  double sync_ops = OpsPerVirtualSecond(/*async=*/false);
  double async_ops = OpsPerVirtualSecond(/*async=*/true);

  std::printf("\n%d-op dispatch-bound chain, Python host profile\n",
              kChainOps);
  std::printf("%-22s%12.0f ops/s\n", "synchronous dispatch", sync_ops);
  std::printf("%-22s%12.0f ops/s\n", "asynchronous dispatch", async_ops);
  std::printf("%-22s%11.2fx\n", "speedup", async_ops / sync_ops);
  std::printf(
      "\nExpected: ~1.8x. Sync pays dispatch + kernel per op; async\n"
      "overlaps each kernel with the next op's host dispatch and only\n"
      "joins the device timeline at the final sync point.\n");

  bench::JsonReport report("async");
  report.Add("sync_ops_per_second", sync_ops);
  report.Add("async_ops_per_second", async_ops);
  report.Add("speedup", async_ops / sync_ops);
  report.Write();
  return 0;
}
