// Figure 3 reproduction: ResNet-50 training throughput on the simulated
// GTX-1080-class GPU, batch sizes 1..32, for
//   TFE            — imperative execution (Python-profile host dispatch),
//   TFE + function — forward pass and gradient application staged,
//   TF             — classic whole-graph execution (session.run driver).
//
// The simulated GPU runs in timing-only mode (kernels modelled by the
// roofline cost model, numerics validated elsewhere); host dispatch costs
// use the calibrated Python profile. See DESIGN.md §2 / EXPERIMENTS.md.
//
//   build/bench/bench_resnet_gpu
#include "bench/bench_util.h"
#include "models/resnet.h"

using tfe::Tensor;
namespace ops = tfe::ops;
namespace bench = tfe::bench;

namespace {

constexpr int64_t kBatches[] = {1, 2, 4, 8, 16, 32};

struct Workload {
  std::unique_ptr<tfe::models::ResNet50> model;
  std::vector<Tensor> images;  // per batch size
  std::vector<Tensor> labels;
};

Workload MakeWorkload() {
  tfe::DeviceScope gpu("/gpu:0");
  Workload w;
  w.model = std::make_unique<tfe::models::ResNet50>();  // full ResNet-50
  for (int64_t batch : kBatches) {
    // Synthetic ImageNet-shaped data (DESIGN.md §2 substitution).
    w.images.push_back(ops::random_normal({batch, 224, 224, 3}));
    w.labels.push_back(
        ops::cast(ops::argmax(ops::random_normal({batch, 1000}), 1),
                  tfe::DType::kInt64));
  }
  return w;
}

}  // namespace

int main() {
  // Timing-only accelerators + interpreter-class host costs.
  tfe::EagerContext::Options options;
  options.accelerators_execute_kernels = false;
  options.host_profile = tfe::HostProfile::Python();
  tfe::EagerContext::ResetGlobal(options);

  std::printf("ResNet-50 training on simulated GPU (Figure 3)\n");
  std::printf("model: full ResNet-50 v1 [3,4,6,3]; data: synthetic 224x224x3;"
              "\nprotocol: %d iterations averaged over %d runs, virtual time\n",
              bench::kIterations, bench::kRuns);

  Workload w = MakeWorkload();
  const std::vector<int64_t> batches(std::begin(kBatches), std::end(kBatches));

  bench::Series tfe_series{"TFE", {}};
  bench::Series staged_series{"TFE + function", {}};
  bench::Series tf_series{"TF", {}};

  for (size_t i = 0; i < batches.size(); ++i) {
    const Tensor& images = w.images[i];
    const Tensor& labels = w.labels[i];
    const double examples = static_cast<double>(batches[i]) *
                            bench::kIterations;
    tfe::DeviceScope gpu("/gpu:0");

    // --- TFE: imperative ----------------------------------------------------
    auto eager_step = [&] { w.model->TrainStep(images, labels, 1e-4); };
    eager_step();  // warm caches
    tfe_series.examples_per_second.push_back(
        examples / bench::MeasureVirtualSeconds(eager_step));

    // --- TFE + function: staged train step ----------------------------------
    tfe::Function staged = tfe::function(
        [&w](const std::vector<Tensor>& args) -> std::vector<Tensor> {
          return {w.model->TrainStep(args[0], args[1], 1e-4)};
        },
        "resnet_gpu_step");
    auto staged_step = [&] { staged({images, labels}); };
    staged_step();  // trace (excluded)
    staged_series.examples_per_second.push_back(
        examples / bench::MeasureVirtualSeconds(staged_step));

    // --- TF: same graph, session.run-style driver ----------------------------
    {
      tfe::HostProfile classic = tfe::HostProfile::Python();
      classic.function_call_ns = bench::kClassicTfSessionRunNs;
      bench::ScopedHostProfile profile(classic);
      staged_step();  // warm under the new profile
      tf_series.examples_per_second.push_back(
          examples / bench::MeasureVirtualSeconds(staged_step));
    }
    std::printf("  batch %2lld done\n", static_cast<long long>(batches[i]));
  }

  bench::PrintTable("Examples/second training ResNet-50 on GPU (Figure 3, top)",
                    "batch size", batches,
                    {tfe_series, staged_series, tf_series});
  bench::PrintImprovementOver(
      "Figure 3 (bottom)", tfe_series, batches,
      {tfe_series, staged_series, tf_series});
  std::printf(
      "\nExpected shape (paper): staging wins at small batches; the gap\n"
      "vanishes as batch size grows and kernel time dominates Python time.\n");

  bench::JsonReport report("resnet_gpu");
  for (const bench::Series& s : {tfe_series, staged_series, tf_series}) {
    report.AddSeries(batches, s);
  }
  report.Write();
  return 0;
}
