// Multi-tenant serving: cross-request batching throughput and latency.
//
// Eight closed-loop clients, each with its own session, drive the same
// staged MLP inference through tfe::Serving. The batched configuration
// (window of 8, 200us max queue delay) coalesces same-signature calls from
// concurrent sessions into one execution through the async executor; the
// unbatched configuration (window of 1) runs every call individually. The
// contract under test: batching multiplies throughput at equal-or-better
// tail latency while every session's outputs stay bitwise identical to its
// own unbatched run, and an injected failure poisons only its own session.
//
//   build/bench/bench_serving
#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "tensor/tensor_handle.h"

using tfe::Tensor;
namespace ops = tfe::ops;
namespace bench = tfe::bench;
namespace serving = tfe::serving;

namespace {

constexpr int kClients = 8;
constexpr int kWarmupRequests = 5;
constexpr int kMeasuredRequests = 50;
constexpr int kRowsPerRequest = 1;
constexpr int kFeatures = 16;

uint64_t Counter(const char* name) {
  return tfe::profiler::Metrics().GetCounter(name)->value();
}

struct ModeResult {
  double requests_per_second = 0;
  double p99_us = 0;
  double mean_batch_size = 0;
  std::vector<std::vector<float>> outputs;  // last output per client
  bool ok = true;
};

ModeResult RunMode(int max_batch, tfe::Function& fn,
                   const std::vector<Tensor>& inputs) {
  serving::ServingOptions options;
  options.max_batch_size = max_batch;
  options.max_queue_delay_us = 200;
  serving::Serving server(options);

  std::vector<serving::SessionId> sessions(kClients);
  for (int c = 0; c < kClients; ++c) {
    sessions[c] = server.OpenSession().value();
  }

  const uint64_t batches_before = Counter("serving.batches");
  const uint64_t coalesced_before = Counter("serving.batched_calls");

  ModeResult result;
  result.outputs.resize(kClients);
  std::vector<std::vector<double>> latencies_us(kClients);
  std::atomic<bool> failed{false};
  std::barrier gate(kClients + 1);

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto request = [&]() -> bool {
        auto out = server.Submit(sessions[c], fn, {inputs[c]});
        if (!out.ok() || !serving::Serving::Await(*out).ok()) return false;
        result.outputs[c] = tfe::tensor_util::ToVector<float>((*out)[0]);
        return true;
      };
      for (int i = 0; i < kWarmupRequests && !failed.load(); ++i) {
        if (!request()) failed.store(true);
      }
      gate.arrive_and_wait();  // warmup complete everywhere
      gate.arrive_and_wait();  // main started the clock
      for (int i = 0; i < kMeasuredRequests && !failed.load(); ++i) {
        auto begin = std::chrono::steady_clock::now();
        if (!request()) failed.store(true);
        latencies_us[c].push_back(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - begin)
                .count());
      }
      gate.arrive_and_wait();  // measured window complete
    });
  }

  gate.arrive_and_wait();
  auto begin = std::chrono::steady_clock::now();
  gate.arrive_and_wait();
  gate.arrive_and_wait();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  for (auto& t : clients) t.join();

  result.ok = !failed.load();
  result.requests_per_second = kClients * kMeasuredRequests / seconds;
  std::vector<double> all;
  for (auto& l : latencies_us) all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end());
  result.p99_us =
      all.empty() ? 0 : all[static_cast<size_t>(0.99 * (all.size() - 1))];
  const uint64_t batches = Counter("serving.batches") - batches_before;
  const uint64_t coalesced = Counter("serving.batched_calls") - coalesced_before;
  result.mean_batch_size =
      batches == 0 ? 1.0 : static_cast<double>(coalesced) / batches;
  return result;
}

// An injected failure must poison exactly one tenant: the victim's future
// carries the error, its batch-mate's result is unaffected.
bool FailureStaysIsolated(tfe::Function& fn, const Tensor& good_input) {
  serving::ServingOptions options;
  options.max_batch_size = 2;
  options.max_queue_delay_us = 100000;
  serving::Serving server(options);
  auto healthy = server.OpenSession("healthy").value();
  auto victim = server.OpenSession("victim").value();

  auto poisoned_handle = tfe::TensorHandle::Pending(
      tfe::DType::kFloat32, tfe::Shape({kRowsPerRequest, kFeatures}),
      tfe::EagerContext::Global()->HostCpu(), nullptr);
  Tensor poisoned = Tensor::FromHandle(poisoned_handle);

  auto healthy_out = server.Submit(healthy, fn, {good_input});
  auto victim_out = server.Submit(victim, fn, {poisoned});
  if (!healthy_out.ok() || !victim_out.ok()) return false;
  poisoned_handle->SetError(tfe::InvalidArgument("injected failure"));

  const bool victim_poisoned = !serving::Serving::Await(*victim_out).ok();
  const bool healthy_intact = serving::Serving::Await(*healthy_out).ok();
  const bool deferred_surfaced = !server.SessionStatus(victim).ok();
  return victim_poisoned && healthy_intact && deferred_surfaced &&
         server.SessionStatus(healthy).ok();
}

}  // namespace

int main() {
  tfe::EagerContext::Options context_options;
  context_options.async = true;
  tfe::EagerContext::ResetGlobal(context_options);
  tfe::EagerContext* ctx = tfe::EagerContext::Global();

  // One staged MLP shared by every tenant (pure: weights are captured
  // constants, so coalesced execution is provably safe). Deep and narrow:
  // per-request cost is dominated by per-op dispatch through the executor,
  // the overhead batching amortizes — one batched run issues the same ~75
  // ops as a single-request run but serves the whole window.
  Tensor w_in = ops::random_normal({kFeatures, 16}, 0, 0.1, /*seed=*/1);
  std::vector<Tensor> hidden_w, hidden_b;
  for (int layer = 0; layer < 24; ++layer) {
    hidden_w.push_back(ops::random_normal({16, 16}, 0, 0.1, /*seed=*/10 + layer));
    hidden_b.push_back(ops::random_normal({16}, 0, 0.1, /*seed=*/40 + layer));
  }
  Tensor w_out = ops::random_normal({16, 16}, 0, 0.1, /*seed=*/3);
  TFE_CHECK(ctx->Sync().ok());
  tfe::Function fn = tfe::function(
      [w_in, hidden_w, hidden_b, w_out](const std::vector<Tensor>& args) {
        Tensor h = ops::matmul(args[0], w_in);
        for (size_t layer = 0; layer < hidden_w.size(); ++layer) {
          h = ops::relu(
              ops::add(ops::matmul(h, hidden_w[layer]), hidden_b[layer]));
        }
        return std::vector<Tensor>{ops::softmax(ops::matmul(h, w_out))};
      },
      "serve_mlp");

  std::vector<Tensor> inputs;
  for (int c = 0; c < kClients; ++c) {
    inputs.push_back(ops::random_normal({kRowsPerRequest, kFeatures}, 0, 1,
                                        /*seed=*/100 + c));
  }
  TFE_CHECK(ctx->Sync().ok());

  ModeResult unbatched = RunMode(/*max_batch=*/1, fn, inputs);
  ModeResult batched = RunMode(/*max_batch=*/kClients, fn, inputs);
  TFE_CHECK(unbatched.ok && batched.ok);

  // Bitwise identity: per session, batched == unbatched == a direct call.
  bool bitwise_identical = true;
  for (int c = 0; c < kClients; ++c) {
    std::vector<Tensor> direct = fn({inputs[c]});
    TFE_CHECK(ctx->Sync().ok());
    std::vector<float> reference =
        tfe::tensor_util::ToVector<float>(direct[0]);
    bitwise_identical = bitwise_identical &&
                        batched.outputs[c] == reference &&
                        unbatched.outputs[c] == reference;
  }
  const bool failure_isolated = FailureStaysIsolated(fn, inputs[0]);

  const double speedup =
      batched.requests_per_second / unbatched.requests_per_second;
  std::printf("\n%d closed-loop clients, %d requests each, MLP inference\n",
              kClients, kMeasuredRequests);
  std::printf("%-22s%12.0f req/s   p99 %8.1f us\n", "unbatched (window 1)",
              unbatched.requests_per_second, unbatched.p99_us);
  std::printf("%-22s%12.0f req/s   p99 %8.1f us\n", "batched (window 8)",
              batched.requests_per_second, batched.p99_us);
  std::printf("%-22s%11.2fx         mean batch %.2f\n", "throughput gain",
              speedup, batched.mean_batch_size);
  std::printf("%-22s%12s\n", "bitwise identical",
              bitwise_identical ? "yes" : "NO");
  std::printf("%-22s%12s\n", "failure isolated",
              failure_isolated ? "yes" : "NO");
  std::printf(
      "\nExpected: >=3x throughput at equal-or-better p99. Batching\n"
      "amortizes per-call dispatch across the window; per-session\n"
      "outputs and RNG streams are independent of batch-mates.\n");

  bench::JsonReport report("serving");
  report.Add("clients", kClients);
  report.Add("unbatched_requests_per_second", unbatched.requests_per_second);
  report.Add("batched_requests_per_second", batched.requests_per_second);
  report.Add("throughput_speedup", speedup);
  report.Add("unbatched_p99_us", unbatched.p99_us);
  report.Add("batched_p99_us", batched.p99_us);
  report.Add("mean_batch_size", batched.mean_batch_size);
  report.Add("bitwise_identical", bitwise_identical ? 1 : 0);
  report.Add("failure_isolated", failure_isolated ? 1 : 0);
  report.Add("gate_throughput_3x", speedup >= 3.0 ? 1 : 0);
  report.Add("gate_p99_not_worse", batched.p99_us <= unbatched.p99_us ? 1 : 0);
  report.AddProfilerMetrics();
  report.Write();
  return 0;
}
