// Overhead gate for the always-on profiler.
//
// The observability subsystem is compiled in unconditionally and toggled at
// runtime, so its cost when *on* must stay small enough to leave enabled in
// production runs. This binary times the paper's 256-op async elementwise
// chain with profiling off and on and fails (exit 1) if the profiled run is
// more than 5% slower.
//
// Protocol: min of 3 windows per configuration — the minimum is the right
// statistic for an overhead bound, since everything above it is scheduler
// noise that would mask (or fake) a regression.
//
//   build/bench/bench_profiler_overhead
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "profiler/profiler.h"
#include "runtime/eager_context.h"

using tfe::Tensor;
namespace ops = tfe::ops;
namespace bench = tfe::bench;
namespace profiler = tfe::profiler;

namespace {

constexpr int kChainOps = 256;
constexpr int kChainIterations = 20;
constexpr int kWindows = 3;
constexpr double kMaxOverheadPct = 5.0;

// Best (minimum) wall seconds for one window of `iterations` steps.
double MinWindowSeconds(const std::function<void()>& step) {
  double best = 1e30;
  for (int w = 0; w < kWindows; ++w) {
    auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kChainIterations; ++i) step();
    best = std::min(
        best, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            begin)
                  .count());
    // Drain the ring buffers between windows so the recording path keeps
    // writing instead of degenerating into (cheaper) drops.
    (void)profiler::Collect();
  }
  return best;
}

double ChainSeconds(bool profile) {
  tfe::EagerContext* ctx = tfe::EagerContext::Global();
  ctx->set_async(true);
  if (profile) {
    profiler::Start();
  } else {
    profiler::Stop();
  }
  Tensor x = ops::random_normal({256, 256}, 0, 1, /*seed=*/7);
  Tensor half = ops::scalar<float>(0.5f);
  auto step = [&] {
    Tensor h = x;
    for (int i = 0; i < kChainOps / 2; ++i) {
      h = ops::mul(ops::add(h, x), half);
    }
    ctx->SyncAllDevices();
  };
  step();  // warm-up: queue threads, allocator, interner
  double seconds = MinWindowSeconds(step);
  profiler::Stop();
  (void)profiler::Collect();
  ctx->set_async(false);
  return seconds;
}

}  // namespace

int main() {
  tfe::EagerContext::ResetGlobal({});

  std::printf("Profiler overhead on the %d-op async chain (min of %d windows"
              ", %d iterations each)\n",
              kChainOps, kWindows, kChainIterations);

  // off / on / off / on: interleaving makes a frequency ramp or thermal
  // drift hurt both configurations equally instead of biasing one side.
  double off = ChainSeconds(/*profile=*/false);
  double on = ChainSeconds(/*profile=*/true);
  off = std::min(off, ChainSeconds(/*profile=*/false));
  on = std::min(on, ChainSeconds(/*profile=*/true));

  const double overhead_pct = 100.0 * (on / off - 1.0);
  std::printf("%-22s%10.2f ms\n", "profiling off", off * 1e3);
  std::printf("%-22s%10.2f ms\n", "profiling on", on * 1e3);
  std::printf("%-22s%9.2f%%  (budget %.1f%%)\n", "overhead", overhead_pct,
              kMaxOverheadPct);

  bench::JsonReport report("profiler_overhead");
  report.Add("chain_seconds_profiling_off", off);
  report.Add("chain_seconds_profiling_on", on);
  report.Add("overhead_pct", overhead_pct);
  report.Add("budget_pct", kMaxOverheadPct);
  report.Write();

  if (overhead_pct > kMaxOverheadPct) {
    std::fprintf(stderr, "FAIL: profiler overhead %.2f%% exceeds %.1f%%\n",
                 overhead_pct, kMaxOverheadPct);
    return 1;
  }
  std::printf("OK: profiler overhead within budget\n");
  return 0;
}
