// Ablation: the trace cache (paper §4.6 "Polymorphism").
//
//   * cache hit    — signature computation + lookup + call (the steady
//                    state; this is `function`'s per-invocation overhead),
//   * retrace      — a cache miss: trace, optimize, register,
//   * signature    — signature computation alone, for growing arg counts,
//   * input-signature hit — explicit signature: one graph, many shapes.
//
//   build/bench/bench_trace_cache
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "api/tfe.h"
#include "staging/signature.h"

namespace {

using tfe::Tensor;
namespace ops = tfe::ops;

std::vector<Tensor> Body(const std::vector<Tensor>& args) {
  return {ops::add(ops::mul(args[0], args[0]), args[0])};
}

void BM_CacheHit(benchmark::State& state) {
  tfe::Function f = tfe::function(Body, "hit");
  Tensor x = ops::random_normal({4, 4}, 0, 1, /*seed=*/1);
  f({x});  // populate
  for (auto _ : state) {
    benchmark::DoNotOptimize(f({x})[0]);
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheMissRetrace(benchmark::State& state) {
  Tensor x = ops::random_normal({4, 4}, 0, 1, /*seed=*/2);
  for (auto _ : state) {
    state.PauseTiming();
    tfe::Function f = tfe::function(Body, "miss");  // empty cache
    state.ResumeTiming();
    benchmark::DoNotOptimize(f({x})[0]);
  }
}
BENCHMARK(BM_CacheMissRetrace);

void BM_SignatureComputation(benchmark::State& state) {
  std::vector<Tensor> args;
  for (int64_t i = 0; i < state.range(0); ++i) {
    args.push_back(ops::random_normal({4, 4}, 0, 1, /*seed=*/i + 3));
  }
  tfe::AttrMap non_tensor;
  non_tensor["training"] = tfe::AttrValue(true);
  for (auto _ : state) {
    auto key = tfe::ComputeSignature(args, non_tensor, "/gpu:0");
    benchmark::DoNotOptimize(key->size());
  }
}
BENCHMARK(BM_SignatureComputation)->Arg(1)->Arg(4)->Arg(16);

void BM_InputSignatureHitAcrossShapes(benchmark::State& state) {
  tfe::Function f = tfe::function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::reduce_sum(args[0], {1})};
      },
      "input_sig");
  f.SetInputSignature({{tfe::DType::kFloat32,
                        tfe::Shape({tfe::kUnknownDim, 4})}});
  std::vector<Tensor> inputs;
  for (int64_t rows = 1; rows <= 8; ++rows) {
    inputs.push_back(ops::random_normal({rows, 4}, 0, 1, /*seed=*/rows));
  }
  f({inputs[0]});
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f({inputs[i++ % inputs.size()]})[0]);
  }
  // Sanity: one trace despite 8 shapes.
  if (f.num_traces() != 1) state.SkipWithError("unexpected retrace");
}
BENCHMARK(BM_InputSignatureHitAcrossShapes);

}  // namespace

int main(int argc, char** argv) {
  return tfe::bench::RunBenchmarksToJson("trace_cache", argc, argv);
}
