// Table 1 reproduction: ResNet-50 training on the simulated TPU,
// examples/second for batch sizes 1..32, TFE (per-op execution) vs.
// TFE + function (whole-function compilation).
//
// Eager TPU execution pays a per-op-signature compile cost (cached) plus a
// large per-op dispatch cost; a staged function compiles once and executes
// fused (paper §4.4). Steady state is measured: caches are warmed before
// each window, as the paper excludes one-time build costs.
//
//   build/bench/bench_resnet_tpu
#include "bench/bench_util.h"
#include "models/resnet.h"

using tfe::Tensor;
namespace ops = tfe::ops;
namespace bench = tfe::bench;

int main() {
  tfe::EagerContext::Options options;
  options.accelerators_execute_kernels = false;
  options.host_profile = tfe::HostProfile::Python();
  tfe::EagerContext::ResetGlobal(options);

  std::printf("ResNet-50 training on simulated TPU (Table 1)\n");
  std::printf("protocol: %d iterations averaged over %d runs, virtual time, "
              "compile caches warm\n",
              bench::kIterations, bench::kRuns);

  const std::vector<int64_t> batches = {1, 2, 4, 8, 16, 32};
  tfe::DeviceScope tpu("/tpu:0");
  auto model = std::make_shared<tfe::models::ResNet50>();

  bench::Series tfe_series{"TFE", {}};
  bench::Series staged_series{"TFE with function", {}};

  for (int64_t batch : batches) {
    Tensor images = ops::random_normal({batch, 224, 224, 3});
    Tensor labels = ops::cast(
        ops::argmax(ops::random_normal({batch, 1000}), 1), tfe::DType::kInt64);
    const double examples = static_cast<double>(batch) * bench::kIterations;

    auto eager_step = [&] { model->TrainStep(images, labels, 1e-4); };
    eager_step();  // warm per-op compile cache
    tfe_series.examples_per_second.push_back(
        examples / bench::MeasureVirtualSeconds(eager_step));

    tfe::Function staged = tfe::function(
        [&model](const std::vector<Tensor>& args) -> std::vector<Tensor> {
          return {model->TrainStep(args[0], args[1], 1e-4)};
        },
        "resnet_tpu_step");
    auto staged_step = [&] { staged({images, labels}); };
    staged_step();  // trace + whole-function compile (one-time, excluded)
    staged_series.examples_per_second.push_back(
        examples / bench::MeasureVirtualSeconds(staged_step));
    std::printf("  batch %2lld done\n", static_cast<long long>(batch));
  }

  std::printf("\nExamples/second training ResNet-50 on a TPU (Table 1)\n");
  std::printf("%-22s", "batch size");
  for (int64_t b : batches) std::printf("%9lld", static_cast<long long>(b));
  std::printf("\n%-22s", "TensorFlow Eager");
  for (double v : tfe_series.examples_per_second) std::printf("%9.2f", v);
  std::printf("\n%-22s", "TFE with function");
  for (double v : staged_series.examples_per_second) std::printf("%9.2f", v);
  std::printf("\n\nspeedup from staging: ");
  for (size_t i = 0; i < batches.size(); ++i) {
    std::printf("%.1fx ", staged_series.examples_per_second[i] /
                              tfe_series.examples_per_second[i]);
  }
  std::printf(
      "\nExpected shape (paper): ~10-20x; eager scales ~linearly in batch\n"
      "(per-op dispatch bound) while staged throughput saturates.\n");

  bench::JsonReport report("resnet_tpu");
  report.AddSeries(batches, tfe_series);
  report.AddSeries(batches, staged_series);
  report.Write();
  return 0;
}
