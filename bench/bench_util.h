// Shared harness for the paper-reproduction benchmarks.
//
// Measurement protocol mirrors §6: "Each benchmark run was 10 iterations,
// and an average of 3 runs was reported. For staged computations, build and
// optimization times were not included" — we warm up (tracing + compile
// caches) before each measured window and reset only the virtual timers.
#ifndef TFE_BENCH_BENCH_UTIL_H_
#define TFE_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "api/tfe.h"

namespace tfe {
namespace bench {

inline constexpr int kIterations = 10;
inline constexpr int kRuns = 3;

// Virtual seconds consumed by `iterations` calls of `step` (after `step`
// has already been warmed up by the caller), averaged over kRuns.
inline double MeasureVirtualSeconds(const std::function<void()>& step,
                                    int iterations = kIterations) {
  EagerContext* ctx = EagerContext::Global();
  double total = 0;
  for (int run = 0; run < kRuns; ++run) {
    ctx->ResetVirtualTime();
    for (int i = 0; i < iterations; ++i) step();
    total += static_cast<double>(ctx->SyncAllDevices()) / 1e9;
  }
  return total / kRuns;
}

// Wall-clock seconds for `iterations` calls of `step` (native-C++ series:
// with a zero host profile, virtual time would not account for the real
// eager dispatch path at all).
inline double MeasureWallSeconds(const std::function<void()>& step,
                                 int iterations = kIterations) {
  double total = 0;
  for (int run = 0; run < kRuns; ++run) {
    auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) step();
    total += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           begin)
                 .count();
  }
  return total / kRuns;
}

// The classic-TF comparison series: same staged execution, but driven by a
// thinner host binding (session.run has no per-call signature computation /
// trace-cache machinery). DESIGN.md §2 and EXPERIMENTS.md document this
// modelling choice.
inline constexpr uint64_t kClassicTfSessionRunNs = 50'000;

class ScopedHostProfile {
 public:
  explicit ScopedHostProfile(const HostProfile& profile)
      : saved_(EagerContext::Global()->host_profile()) {
    EagerContext::Global()->set_host_profile(profile);
  }
  ~ScopedHostProfile() { EagerContext::Global()->set_host_profile(saved_); }

 private:
  HostProfile saved_;
};

struct Series {
  std::string name;
  std::vector<double> examples_per_second;
};

inline void PrintTable(const std::string& title,
                       const std::string& x_label,
                       const std::vector<int64_t>& x_values,
                       const std::vector<Series>& series) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-18s", x_label.c_str());
  for (int64_t x : x_values) std::printf("%10lld", static_cast<long long>(x));
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("%-18s", s.name.c_str());
    for (double v : s.examples_per_second) std::printf("%10.1f", v);
    std::printf("\n");
  }
}

inline void PrintImprovementOver(const std::string& title,
                                 const Series& baseline,
                                 const std::vector<int64_t>& x_values,
                                 const std::vector<Series>& series) {
  std::printf("\n%s (%% improvement over %s)\n", title.c_str(),
              baseline.name.c_str());
  for (const Series& s : series) {
    if (s.name == baseline.name) continue;
    std::printf("%-18s", s.name.c_str());
    for (size_t i = 0; i < x_values.size(); ++i) {
      double gain = 100.0 * (s.examples_per_second[i] /
                                 baseline.examples_per_second[i] -
                             1.0);
      std::printf("%9.1f%%", gain);
    }
    std::printf("\n");
  }
}

// --- machine-readable output ----------------------------------------------
//
// Every bench binary also writes its headline numbers to BENCH_<name>.json
// in the current working directory, so CI and regression scripts can diff
// runs without scraping the human-oriented tables.

// Accumulates scalar metrics for the hand-rolled (non google-benchmark)
// binaries and writes them as a flat {"metrics": {...}} object.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  // Flattens a table column-wise: one "<series>@<x>" metric per point.
  void AddSeries(const std::vector<int64_t>& x_values, const Series& series) {
    for (size_t i = 0; i < x_values.size() &&
                       i < series.examples_per_second.size();
         ++i) {
      Add(series.name + "@" + std::to_string(x_values[i]),
          series.examples_per_second[i]);
    }
  }

  // Embeds the profiler's metrics snapshot under "profiler." keys: counters
  // and gauges as-is, histograms as .count/.mean/.max. No-op unless the
  // profiler is on (TFE_PROFILE or an explicit profiler::Start), so default
  // bench runs keep their JSON unchanged.
  void AddProfilerMetrics() {
    if (!profiler::enabled()) return;
    const profiler::MetricsSnapshot snap = profiler::Metrics().Snapshot();
    for (const auto& [name, value] : snap.counters) {
      Add("profiler." + name, static_cast<double>(value));
    }
    for (const auto& [name, value] : snap.gauges) {
      Add("profiler." + name, static_cast<double>(value));
    }
    for (const auto& [name, hist] : snap.histograms) {
      Add("profiler." + name + ".count", static_cast<double>(hist.count));
      Add("profiler." + name + ".mean", hist.mean());
      Add("profiler." + name + ".max", static_cast<double>(hist.max));
    }
  }

  // Returns false (after printing a warning) if the file cannot be written.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      return false;
    }
    out << "{\n  \"benchmark\": \"" << name_ << "\",\n  \"metrics\": {";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    \"" << metrics_[i].first
          << "\": " << metrics_[i].second;
    }
    out << "\n  }\n}\n";
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

// main() body for the google-benchmark binaries: console output as usual,
// plus the full JSON report to BENCH_<name>.json.
inline int RunBenchmarksToJson(const std::string& name, int argc,
                               char** argv) {
  // Appended after user flags so an explicit --benchmark_out still wins the
  // parse; the library owns the reporters (a custom file reporter requires
  // the flag anyway).
  const std::string path = "BENCH_" + name + ".json";
  std::string out_flag = "--benchmark_out=" + path;
  std::string format_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  args.push_back(out_flag.data());
  args.push_back(format_flag.data());
  int args_count = static_cast<int>(args.size());
  ::benchmark::Initialize(&args_count, args.data());
  if (::benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace bench
}  // namespace tfe

#endif  // TFE_BENCH_BENCH_UTIL_H_
