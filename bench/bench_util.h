// Shared harness for the paper-reproduction benchmarks.
//
// Measurement protocol mirrors §6: "Each benchmark run was 10 iterations,
// and an average of 3 runs was reported. For staged computations, build and
// optimization times were not included" — we warm up (tracing + compile
// caches) before each measured window and reset only the virtual timers.
#ifndef TFE_BENCH_BENCH_UTIL_H_
#define TFE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "api/tfe.h"

namespace tfe {
namespace bench {

inline constexpr int kIterations = 10;
inline constexpr int kRuns = 3;

// Virtual seconds consumed by `iterations` calls of `step` (after `step`
// has already been warmed up by the caller), averaged over kRuns.
inline double MeasureVirtualSeconds(const std::function<void()>& step,
                                    int iterations = kIterations) {
  EagerContext* ctx = EagerContext::Global();
  double total = 0;
  for (int run = 0; run < kRuns; ++run) {
    ctx->ResetVirtualTime();
    for (int i = 0; i < iterations; ++i) step();
    total += static_cast<double>(ctx->SyncAllDevices()) / 1e9;
  }
  return total / kRuns;
}

// Wall-clock seconds for `iterations` calls of `step` (native-C++ series:
// with a zero host profile, virtual time would not account for the real
// eager dispatch path at all).
inline double MeasureWallSeconds(const std::function<void()>& step,
                                 int iterations = kIterations) {
  double total = 0;
  for (int run = 0; run < kRuns; ++run) {
    auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) step();
    total += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           begin)
                 .count();
  }
  return total / kRuns;
}

// The classic-TF comparison series: same staged execution, but driven by a
// thinner host binding (session.run has no per-call signature computation /
// trace-cache machinery). DESIGN.md §2 and EXPERIMENTS.md document this
// modelling choice.
inline constexpr uint64_t kClassicTfSessionRunNs = 50'000;

class ScopedHostProfile {
 public:
  explicit ScopedHostProfile(const HostProfile& profile)
      : saved_(EagerContext::Global()->host_profile()) {
    EagerContext::Global()->set_host_profile(profile);
  }
  ~ScopedHostProfile() { EagerContext::Global()->set_host_profile(saved_); }

 private:
  HostProfile saved_;
};

struct Series {
  std::string name;
  std::vector<double> examples_per_second;
};

inline void PrintTable(const std::string& title,
                       const std::string& x_label,
                       const std::vector<int64_t>& x_values,
                       const std::vector<Series>& series) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-18s", x_label.c_str());
  for (int64_t x : x_values) std::printf("%10lld", static_cast<long long>(x));
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("%-18s", s.name.c_str());
    for (double v : s.examples_per_second) std::printf("%10.1f", v);
    std::printf("\n");
  }
}

inline void PrintImprovementOver(const std::string& title,
                                 const Series& baseline,
                                 const std::vector<int64_t>& x_values,
                                 const std::vector<Series>& series) {
  std::printf("\n%s (%% improvement over %s)\n", title.c_str(),
              baseline.name.c_str());
  for (const Series& s : series) {
    if (s.name == baseline.name) continue;
    std::printf("%-18s", s.name.c_str());
    for (size_t i = 0; i < x_values.size(); ++i) {
      double gain = 100.0 * (s.examples_per_second[i] /
                                 baseline.examples_per_second[i] -
                             1.0);
      std::printf("%9.1f%%", gain);
    }
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace tfe

#endif  // TFE_BENCH_BENCH_UTIL_H_
