// Ablation: the parallel dataflow executor (paper §5: the staged runtime
// "runs kernels in parallel when possible, across multiple CPU cores").
//
// Compares the ready-queue parallel engine against inline sequential
// execution on (a) a wide embarrassingly-parallel graph and (b) a deep
// serial chain where parallelism cannot help, plus the nested-call path.
//
//   build/bench/bench_executor
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "api/tfe.h"
#include "executor/executor.h"
#include "staging/trace_context.h"

namespace {

using tfe::Tensor;
namespace ops = tfe::ops;

std::shared_ptr<tfe::GraphFunction> WideGraph(int width) {
  auto fn = std::make_shared<tfe::GraphFunction>("wide_" +
                                                 std::to_string(width));
  tfe::TraceContext trace(fn, tfe::EagerContext::Global());
  Tensor x =
      trace.AddParameter(tfe::DType::kFloat32, tfe::Shape({64, 64})).value();
  std::vector<Tensor> branches;
  for (int i = 0; i < width; ++i) {
    // Each branch is independent: matmul + tanh.
    branches.push_back(ops::tanh(ops::matmul(x, x)));
  }
  Tensor sum = branches[0];
  for (int i = 1; i < width; ++i) sum = ops::add(sum, branches[i]);
  Tensor out = ops::reduce_sum(sum);
  fn->outputs().push_back({out.node_id(), out.output_index()});
  return fn;
}

std::shared_ptr<tfe::GraphFunction> DeepGraph(int depth) {
  auto fn = std::make_shared<tfe::GraphFunction>("deep_" +
                                                 std::to_string(depth));
  tfe::TraceContext trace(fn, tfe::EagerContext::Global());
  Tensor x =
      trace.AddParameter(tfe::DType::kFloat32, tfe::Shape({64, 64})).value();
  Tensor h = x;
  for (int i = 0; i < depth; ++i) h = ops::tanh(ops::matmul(h, x));
  Tensor out = ops::reduce_sum(h);
  fn->outputs().push_back({out.node_id(), out.output_index()});
  return fn;
}

void RunGraph(benchmark::State& state,
              const std::shared_ptr<tfe::GraphFunction>& fn, bool parallel) {
  Tensor x = ops::random_normal({64, 64}, 0, 0.05, /*seed=*/3);
  tfe::Executor executor(tfe::EagerContext::Global());
  for (auto _ : state) {
    auto result = executor.Run(*fn, {x}, nullptr, 0, false, parallel);
    if (!result.ok()) state.SkipWithError("executor failed");
    benchmark::DoNotOptimize(result->outputs[0]);
  }
  state.counters["nodes"] = fn->graph().num_nodes();
}

void BM_WideParallel(benchmark::State& state) {
  auto fn = WideGraph(static_cast<int>(state.range(0)));
  RunGraph(state, fn, /*parallel=*/true);
}
BENCHMARK(BM_WideParallel)->Arg(4)->Arg(16);

void BM_WideInline(benchmark::State& state) {
  auto fn = WideGraph(static_cast<int>(state.range(0)));
  RunGraph(state, fn, /*parallel=*/false);
}
BENCHMARK(BM_WideInline)->Arg(4)->Arg(16);

void BM_DeepParallel(benchmark::State& state) {
  auto fn = DeepGraph(static_cast<int>(state.range(0)));
  RunGraph(state, fn, /*parallel=*/true);
}
BENCHMARK(BM_DeepParallel)->Arg(16);

void BM_DeepInline(benchmark::State& state) {
  auto fn = DeepGraph(static_cast<int>(state.range(0)));
  RunGraph(state, fn, /*parallel=*/false);
}
BENCHMARK(BM_DeepInline)->Arg(16);

void BM_NestedCallDepth(benchmark::State& state) {
  // Function-call composition cost: f3(f2(f1(x))).
  tfe::Function f1 = tfe::function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::tanh(args[0])};
      },
      "nest1");
  tfe::Function f2 = tfe::function(
      [&f1](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(f1({args[0]})[0], args[0])};
      },
      "nest2");
  tfe::Function f3 = tfe::function(
      [&f2](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::mul(f2({args[0]})[0], args[0])};
      },
      "nest3");
  Tensor x = ops::random_normal({8}, 0, 1, /*seed=*/4);
  f3({x});
  for (auto _ : state) {
    benchmark::DoNotOptimize(f3({x})[0]);
  }
}
BENCHMARK(BM_NestedCallDepth);

}  // namespace

int main(int argc, char** argv) {
  return tfe::bench::RunBenchmarksToJson("executor", argc, argv);
}
