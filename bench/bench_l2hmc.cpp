// Figure 4 reproduction: L2HMC training throughput on the CPU — the
// many-tiny-ops regime where imperative execution is dispatch-bound and
// staging recovers an order of magnitude (paper §6).
//
// Configuration mirrors the paper: 2-dimensional target distribution, 10
// leapfrog steps, sample-batch sizes {10, 25, 50, 100, 200}. Kernels run
// for real on the host CPU; the TFE series adds the calibrated Python
// per-op dispatch cost (the paper's interpreter bottleneck), and a
// native-C++ pair of series is reported as well so the un-inflated gap is
// visible (DESIGN.md §2).
//
//   build/bench/bench_l2hmc
#include <algorithm>

#include "bench/bench_util.h"
#include "models/l2hmc.h"

using tfe::Tensor;
namespace ops = tfe::ops;
namespace bench = tfe::bench;

namespace {

double MeasureSeries(tfe::models::L2hmcDynamics& dynamics,
                     tfe::Function* staged, const Tensor& samples) {
  auto step = [&]() {
    if (staged != nullptr) {
      (*staged)({samples});
    } else {
      dynamics.TrainStep(samples, 1e-3);
    }
  };
  step();  // warm up (tracing excluded, as in the paper)
  return bench::MeasureVirtualSeconds(step);
}

}  // namespace

int main() {
  tfe::EagerContext::Options options;
  options.host_profile = tfe::HostProfile::Python();
  tfe::EagerContext::ResetGlobal(options);

  std::printf("L2HMC training on CPU (Figure 4)\n");
  std::printf("2-D target, 10 leapfrog steps; %d iterations averaged over "
              "%d runs;\nreal CPU kernels + calibrated host dispatch model\n",
              bench::kIterations, bench::kRuns);

  const std::vector<int64_t> sample_counts = {10, 25, 50, 100, 200};
  tfe::models::L2hmcDynamics dynamics;  // paper configuration

  // Same sampler with the leapfrog integrator staged as one While node:
  // the training-step trace holds a single loop body instead of 10 unrolled
  // copies, and differentiation goes through the While gradient.
  tfe::models::L2hmcDynamics::Config loop_config;
  loop_config.staged_loop = true;
  tfe::models::L2hmcDynamics loop_dynamics(loop_config);

  tfe::Function staged = tfe::function(
      [&dynamics](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {dynamics.TrainStep(args[0], 1e-3)};
      },
      "l2hmc_step");
  tfe::Function staged_loop = tfe::function(
      [&loop_dynamics](const std::vector<Tensor>& args)
          -> std::vector<Tensor> {
        return {loop_dynamics.TrainStep(args[0], 1e-3)};
      },
      "l2hmc_while_step");

  bench::Series tfe_series{"TFE", {}};
  bench::Series staged_series{"TFE + function", {}};
  bench::Series while_series{"TFE + while", {}};
  bench::Series tf_series{"TF", {}};
  bench::Series native_eager{"native C++ eager", {}};
  bench::Series native_staged{"native C++ staged", {}};

  for (int64_t samples : sample_counts) {
    Tensor x = ops::random_normal({samples, 2}, 0, 1, /*seed=*/samples);
    const double examples = static_cast<double>(samples) * bench::kIterations;

    tfe_series.examples_per_second.push_back(
        examples / MeasureSeries(dynamics, nullptr, x));
    staged_series.examples_per_second.push_back(
        examples / MeasureSeries(dynamics, &staged, x));
    while_series.examples_per_second.push_back(
        examples / MeasureSeries(loop_dynamics, &staged_loop, x));
    {
      tfe::HostProfile classic = tfe::HostProfile::Python();
      classic.function_call_ns = bench::kClassicTfSessionRunNs;
      bench::ScopedHostProfile profile(classic);
      tf_series.examples_per_second.push_back(
          examples / MeasureSeries(dynamics, &staged, x));
    }
    {
      // Native series measures WALL time: this is this library's own eager
      // runtime against its own staged executor, no interpreter model.
      bench::ScopedHostProfile profile(tfe::HostProfile::Native());
      auto eager_step = [&] { dynamics.TrainStep(x, 1e-3); };
      auto staged_step = [&] { staged({x}); };
      eager_step();
      native_eager.examples_per_second.push_back(
          examples / bench::MeasureWallSeconds(eager_step));
      staged_step();
      native_staged.examples_per_second.push_back(
          examples / bench::MeasureWallSeconds(staged_step));
    }
    std::printf("  %3lld samples done\n", static_cast<long long>(samples));
  }

  bench::PrintTable(
      "Examples/second training L2HMC on CPU (Figure 4)", "samples",
      sample_counts, {tfe_series, staged_series, while_series, tf_series});
  bench::PrintTable(
      "Reference: native C++ host (no interpreter model)", "samples",
      sample_counts, {native_eager, native_staged});
  std::printf("\nstaging speedup (Python host): ");
  for (size_t i = 0; i < sample_counts.size(); ++i) {
    std::printf("%.0fx ", staged_series.examples_per_second[i] /
                              tfe_series.examples_per_second[i]);
  }
  std::printf("\nstaged-loop speedup (Python host): ");
  for (size_t i = 0; i < sample_counts.size(); ++i) {
    std::printf("%.0fx ", while_series.examples_per_second[i] /
                              tfe_series.examples_per_second[i]);
  }
  std::printf(
      "\nExpected shape (paper): staging yields at least an order of\n"
      "magnitude; TF tracks TFE+function closely.\n");

  // Correctness gate: with seeded draws, the staged-loop transition must be
  // bitwise-identical to the unrolled one — the While path is a pure
  // restaging of the same program, not an approximation.
  bool bitwise = true;
  {
    tfe::models::L2hmcDynamics::Config seeded;
    seeded.sample_seed = 1234;
    tfe::models::L2hmcDynamics unrolled_dyn(seeded);
    seeded.staged_loop = true;
    tfe::models::L2hmcDynamics staged_dyn(seeded);
    Tensor x0 = ops::random_normal({32, 2}, 0, 1, /*seed=*/77);
    auto a = unrolled_dyn.Transition(x0);
    auto b = staged_dyn.Transition(x0);
    for (auto [lhs, rhs] : {std::pair{a.x_out, b.x_out},
                            std::pair{a.accept_prob, b.accept_prob}}) {
      auto lv = tfe::tensor_util::ToVector<float>(lhs);
      auto rv = tfe::tensor_util::ToVector<float>(rhs);
      bitwise = bitwise && lv == rv;
    }
    std::printf("staged-loop transition bitwise == unrolled: %s\n",
                bitwise ? "yes" : "NO");
  }

  // The dispatch-bound regime (small batches) is where the paper's
  // order-of-magnitude claim lives; gate the staged loop on its peak there.
  // (Real CPU kernel time adds run-to-run noise per point; the peak over
  // the batch sweep is the stable signal.)
  double loop_speedup = 0;
  for (size_t i = 0; i < sample_counts.size(); ++i) {
    loop_speedup = std::max(loop_speedup,
                            while_series.examples_per_second[i] /
                                tfe_series.examples_per_second[i]);
  }

  bench::JsonReport report("l2hmc");
  for (const bench::Series& s : {tfe_series, staged_series, while_series,
                                 tf_series, native_eager, native_staged}) {
    report.AddSeries(sample_counts, s);
  }
  report.Add("staged_loop_speedup", loop_speedup);
  report.Add("gate_staged_loop_10x", loop_speedup >= 10.0 ? 1 : 0);
  report.Add("gate_staged_loop_bitwise", bitwise ? 1 : 0);
  report.AddProfilerMetrics();
  report.Write();
  return 0;
}
