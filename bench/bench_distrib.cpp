// Distributed execution (paper §4.5) on the unified async dispatch path:
// a dependent op chain on a remote worker, driven two ways.
//
//   blocking  — the Cluster RPC API: every op is a full client<->worker
//               round trip (Put/RunOp semantics, client waits per op).
//   async     — `tfe::device("/job:worker/...")` dispatch: ops return
//               pending handles immediately, consumers reference producers
//               by pre-assigned store id, and the client joins the worker
//               once at the final sync.
//
// The async series must overlap client dispatch with worker execution well
// enough to beat the per-op round trips by >= 1.5x — the bench exits
// non-zero otherwise. A second section runs a staged function remotely and
// publishes round-trip histograms through the profiler.
//
//   build/bench/bench_distrib
#include <memory>

#include "bench/bench_util.h"
#include "distrib/cluster.h"
#include "tensor/tensor_handle.h"

using tfe::Cluster;
using tfe::Tensor;
namespace ops = tfe::ops;
namespace bench = tfe::bench;
namespace profiler = tfe::profiler;

namespace {

constexpr int kChainOps = 256;
constexpr int kFunctionCalls = 30;
constexpr char kRemote[] = "/job:worker/task:1/device:CPU:0";

// The whole dependent chain over blocking RPCs: the client waits out a
// worker round trip per op.
void BlockingChain(Cluster& cluster, const Tensor& x) {
  auto h = cluster.Put(kRemote, x);
  TFE_CHECK(h.ok());
  tfe::RemoteTensor cur = *h;
  for (int i = 0; i < kChainOps; ++i) {
    auto next = cluster.RunOp(kRemote, "Add", {cur, cur});
    TFE_CHECK(next.ok());
    cur = (*next)[0];
  }
  TFE_CHECK(cluster.Fetch(cur).ok());
}

// The same chain through ordinary dispatch under a remote device scope:
// every op returns a pending handle without waiting.
void AsyncChain(const Tensor& x) {
  Tensor h;
  {
    tfe::device scope(kRemote);
    h = ops::add(x, x);
    for (int i = 1; i < kChainOps; ++i) h = ops::add(h, h);
  }
  TFE_CHECK(tfe::sync().ok());
  TFE_CHECK(h.pending_handle() != nullptr &&
            h.pending_handle()->resolved());
}

}  // namespace

int main() {
  tfe::EagerContext::ResetGlobal(tfe::EagerContext::Options());
  auto cluster = std::make_unique<Cluster>(Cluster::Options{});
  TFE_CHECK(cluster->Connect(tfe::EagerContext::Global()).ok());

  Tensor x = ops::constant<float>({1, 2, 3, 4}, {4});

  BlockingChain(*cluster, x);  // warm-up: store + queue + backend creation
  AsyncChain(x);
  const double blocking_s =
      bench::MeasureWallSeconds([&] { BlockingChain(*cluster, x); },
                                /*iterations=*/3);
  const double async_s =
      bench::MeasureWallSeconds([&] { AsyncChain(x); }, /*iterations=*/3);
  const double overlap_ratio = blocking_s / async_s;

  std::printf("\n%d-op dependent remote chain (wall clock)\n", kChainOps);
  std::printf("%-22s%12.2f ms\n", "blocking RPC per op", blocking_s * 1e3);
  std::printf("%-22s%12.2f ms\n", "async dispatch", async_s * 1e3);
  std::printf("%-22s%11.2fx\n", "overlap ratio", overlap_ratio);

  // Staged-function round trips, photographed by the profiler: the async
  // dispatch-to-sync latency lands in remote.function_roundtrip_ns, and a
  // blocking RunFunction series exercises the worker's rpc.roundtrip_ns.
  profiler::Start();
  tfe::Function f = tfe::function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {ops::add(ops::mul(args[0], args[0]), args[0])};
      },
      "bench_distrib_fn");
  (void)f({x});  // trace locally before timing anything
  profiler::Histogram* fn_roundtrip =
      profiler::Metrics().GetHistogram("remote.function_roundtrip_ns");
  for (int i = 0; i < kFunctionCalls; ++i) {
    const uint64_t begin_ns = profiler::NowNs();
    Tensor out;
    {
      tfe::device scope(kRemote);
      out = f({x})[0];
    }
    TFE_CHECK(tfe::sync().ok());
    fn_roundtrip->Record(profiler::NowNs() - begin_ns);
  }
  auto concrete = f.GetConcreteFunction({x});
  TFE_CHECK(concrete.ok());
  auto remote_x = cluster->Put(kRemote, x);
  TFE_CHECK(remote_x.ok());
  for (int i = 0; i < kFunctionCalls; ++i) {
    TFE_CHECK(cluster->RunFunction(kRemote, **concrete, {*remote_x}).ok());
  }
  const profiler::HistogramSnapshot fn_snap = fn_roundtrip->Snapshot();
  std::printf("\nremote function round trip: mean %.1f us, max %.1f us "
              "(%llu calls)\n",
              fn_snap.mean() / 1e3, static_cast<double>(fn_snap.max) / 1e3,
              static_cast<unsigned long long>(fn_snap.count));

  bench::JsonReport report("distrib");
  report.Add("blocking_chain_seconds", blocking_s);
  report.Add("async_chain_seconds", async_s);
  report.Add("overlap_ratio", overlap_ratio);
  report.Add("function_roundtrip_mean_ns", fn_snap.mean());
  report.Add("function_roundtrip_max_ns", static_cast<double>(fn_snap.max));
  report.AddProfilerMetrics();
  report.Write();
  profiler::Stop();

  if (overlap_ratio < 1.5) {
    std::fprintf(stderr,
                 "FAIL: async dispatch only %.2fx over blocking RPCs "
                 "(needs >= 1.5x)\n",
                 overlap_ratio);
    return 1;
  }
  return 0;
}
