// Ablation: the graph optimization passes (paper §5) — how much dead-op
// pruning, CSE and constant folding shrink a realistic traced graph, and
// what that buys at execution time.
//
//   build/bench/bench_graph_opt
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "api/tfe.h"
#include "executor/executor.h"
#include "graph/passes.h"
#include "staging/trace_context.h"

namespace {

using tfe::Tensor;
namespace ops = tfe::ops;

// A trace with redundancy: repeated subexpressions (CSE fodder), constant
// arithmetic (folding fodder), and dead branches (pruning fodder).
std::shared_ptr<tfe::GraphFunction> TraceRedundant(int repeat) {
  auto fn = std::make_shared<tfe::GraphFunction>(
      "redundant_" + std::to_string(repeat));
  tfe::TraceContext trace(fn, tfe::EagerContext::Global());
  Tensor x = trace.AddParameter(tfe::DType::kFloat32, tfe::Shape({16})).value();
  Tensor acc = ops::zeros_like(x);
  for (int i = 0; i < repeat; ++i) {
    Tensor shared = ops::tanh(x);               // CSE: identical every time
    Tensor constant = ops::mul(ops::scalar<float>(2.0f),
                               ops::scalar<float>(3.0f));  // foldable
    Tensor dead = ops::exp(ops::exp(x));        // never used
    (void)dead;
    acc = ops::add(acc, ops::mul(shared, constant));
  }
  Tensor out = ops::reduce_sum(acc);
  fn->outputs().push_back({out.node_id(), out.output_index()});
  return fn;
}

void BM_OptimizePass(benchmark::State& state) {
  const int repeat = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto fn = TraceRedundant(repeat);
    state.ResumeTiming();
    tfe::passes::PassStats stats;
    if (!tfe::passes::Optimize(*fn, &stats).ok()) {
      state.SkipWithError("optimize failed");
    }
    benchmark::DoNotOptimize(stats.pruned_nodes);
  }
}
BENCHMARK(BM_OptimizePass)->Arg(8)->Arg(64);

void BM_ExecuteUnoptimized(benchmark::State& state) {
  auto fn = TraceRedundant(static_cast<int>(state.range(0)));
  Tensor x = ops::random_normal({16}, 0, 1, /*seed=*/5);
  tfe::Executor executor(tfe::EagerContext::Global());
  for (auto _ : state) {
    auto result = executor.Run(*fn, {x}, nullptr, 0, false);
    benchmark::DoNotOptimize(result->outputs[0]);
  }
  state.counters["nodes"] = fn->graph().num_nodes();
}
BENCHMARK(BM_ExecuteUnoptimized)->Arg(8)->Arg(64);

void BM_ExecuteOptimized(benchmark::State& state) {
  auto fn = TraceRedundant(static_cast<int>(state.range(0)));
  tfe::passes::PassStats stats;
  if (!tfe::passes::Optimize(*fn, &stats).ok()) {
    state.SkipWithError("optimize failed");
    return;
  }
  Tensor x = ops::random_normal({16}, 0, 1, /*seed=*/5);
  tfe::Executor executor(tfe::EagerContext::Global());
  for (auto _ : state) {
    auto result = executor.Run(*fn, {x}, nullptr, 0, false);
    benchmark::DoNotOptimize(result->outputs[0]);
  }
  state.counters["nodes"] = fn->graph().num_nodes();
  state.counters["pruned"] = stats.pruned_nodes;
  state.counters["cse"] = stats.cse_merged;
  state.counters["folded"] = stats.folded_constants;
}
BENCHMARK(BM_ExecuteOptimized)->Arg(8)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return tfe::bench::RunBenchmarksToJson("graph_opt", argc, argv);
}
