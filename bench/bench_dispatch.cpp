// Ablation: per-operation dispatch cost through the runtime's layers
// (wall-clock, google-benchmark).
//
//   * kernel only          — the raw compute,
//   * eager dispatch       — + placement, copies, tape checks, accounting
//                            (the paper's motivation: this is what the
//                            interpreter multiplies),
//   * eager + active tape  — + gradient recording,
//   * staged call          — one Call op executing an N-op graph, i.e. the
//                            per-op cost the executor achieves,
//   * staged per-op        — that call cost divided across its ops.
//
//   build/bench/bench_dispatch
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "api/tfe.h"
#include "ops/kernel.h"
#include "runtime/eager_context.h"

namespace {

using tfe::Tensor;
namespace ops = tfe::ops;

Tensor SmallTensor() {
  static Tensor tensor = ops::random_normal({8}, 0, 1, /*seed=*/11);
  return tensor;
}

void BM_KernelOnly(benchmark::State& state) {
  tfe::EagerContext* ctx = tfe::EagerContext::Global();
  Tensor x = SmallTensor();
  tfe::AttrMap attrs;
  for (auto _ : state) {
    auto run = ctx->ExecuteKernel("Add", {x, x}, attrs, ctx->HostCpu(),
                                  /*compiled=*/false, /*start_ns=*/0);
    benchmark::DoNotOptimize(run->outputs[0]);
  }
}
BENCHMARK(BM_KernelOnly);

void BM_EagerDispatch(benchmark::State& state) {
  Tensor x = SmallTensor();
  for (auto _ : state) {
    Tensor y = ops::add(x, x);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_EagerDispatch);

void BM_EagerDispatchUnderTape(benchmark::State& state) {
  Tensor x = SmallTensor();
  for (auto _ : state) {
    tfe::GradientTape tape;
    tape.watch(x);
    Tensor y = ops::add(x, x);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_EagerDispatchUnderTape);

void BM_StagedCall(benchmark::State& state) {
  const int num_ops = static_cast<int>(state.range(0));
  tfe::Function chain = tfe::function(
      [num_ops](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor h = args[0];
        for (int i = 0; i < num_ops; ++i) h = ops::add(h, args[0]);
        return {h};
      },
      "dispatch_chain");
  Tensor x = SmallTensor();
  chain({x});  // trace
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain({x})[0]);
  }
  state.SetItemsProcessed(state.iterations() * num_ops);
}
BENCHMARK(BM_StagedCall)->Arg(1)->Arg(16)->Arg(256);

void BM_DeviceScopeLookup(benchmark::State& state) {
  Tensor x = SmallTensor();
  tfe::DeviceScope cpu("/cpu:0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::add(x, x));
  }
}
BENCHMARK(BM_DeviceScopeLookup);

}  // namespace

int main(int argc, char** argv) {
  return tfe::bench::RunBenchmarksToJson("dispatch", argc, argv);
}
