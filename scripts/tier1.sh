#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then the async
# runtime's concurrency-sensitive tests under ThreadSanitizer and the
# handle-lifetime tests under AddressSanitizer (separate build trees; see
# TFE_SANITIZE in the top-level CMakeLists.txt).
#
#   scripts/tier1.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "==== tier 1: standard build + ctest ===="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "${1:-}" == "--skip-sanitizers" ]]; then
  echo "==== sanitizer passes skipped ===="
  exit 0
fi

# Concurrency tests only: full-suite sanitizer runs are a tier-2 job.
ASYNC_FILTER='Async*:*Async*'

echo "==== tsan: async execution tests ===="
cmake -B build-tsan -S . -DTFE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target tfe_tests
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/tfe_tests --gtest_filter="$ASYNC_FILTER"

echo "==== asan: async handle-lifetime tests ===="
cmake -B build-asan -S . -DTFE_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" --target tfe_tests
ASAN_OPTIONS="detect_leaks=1" \
  ./build-asan/tests/tfe_tests --gtest_filter="$ASYNC_FILTER"

echo "==== tier 1 ok ===="
