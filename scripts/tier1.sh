#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then the async
# runtime's concurrency-sensitive tests under ThreadSanitizer and the
# handle-lifetime tests under AddressSanitizer (separate build trees; see
# TFE_SANITIZE in the top-level CMakeLists.txt).
#
#   scripts/tier1.sh [--skip-sanitizers | --tier2 | --profile | --serving]
#
# --tier2 runs the FULL test suite under both sanitizers instead of the
# concurrency-focused subset — slower, but it sweeps every kernel now that
# the drain fuser and the intra-op threadpool put real parallelism under
# ordinary ops.
#
# --serving is the multi-tenant serving gate: build, run the serving +
# donation test subset, then bench_serving under TFE_PROFILE — the exported
# trace must carry batched_run evidence (check_trace.py --require-batching)
# and BENCH_serving.json must clear its gates: batched throughput >= 3x
# unbatched at equal-or-better p99, bitwise-identical per-session outputs,
# and an injected failure poisoning only its own session.
#
# --profile is the observability smoke: build, run bench_fusion,
# bench_distrib, and bench_rnn with TFE_PROFILE set, validate the exported
# Chrome traces (the fusion trace must carry fused_reduce_run,
# dag_fused_run, and program_cache_hit instants, the distrib trace remote
# enqueue/resolve spans, the rnn trace a staged_loop instant proving a
# While kernel iterated), then run the profiler-overhead gate (fails
# above 5%).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"
MODE="${1:-}"

echo "==== tier 1: standard build + ctest ===="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

if [[ "$MODE" == "--profile" ]]; then
  TRACE="build/profile_smoke_trace.json"
  echo "==== profile smoke: bench_fusion under TFE_PROFILE ===="
  (cd build && TFE_PROFILE="profile_smoke_trace.json" ./bench/bench_fusion)
  python3 scripts/check_trace.py --require-reduce-fusion --require-allocator \
    --require-dag-fusion --require-memory-plan "$TRACE"
  REMOTE_TRACE="build/profile_smoke_remote_trace.json"
  echo "==== profile smoke: bench_distrib under TFE_PROFILE ===="
  (cd build && TFE_PROFILE="profile_smoke_remote_trace.json" \
    ./bench/bench_distrib)
  python3 scripts/check_trace.py --require-remote "$REMOTE_TRACE"
  LOOP_TRACE="build/profile_smoke_loop_trace.json"
  echo "==== profile smoke: bench_rnn under TFE_PROFILE ===="
  (cd build && TFE_PROFILE="profile_smoke_loop_trace.json" ./bench/bench_rnn)
  python3 scripts/check_trace.py --require-loop "$LOOP_TRACE"
  echo "==== profile smoke: staged-loop bench gates ===="
  python3 - build/BENCH_rnn.json <<'PYEOF'
import json, sys
metrics = json.load(open(sys.argv[1]))["metrics"]
gates = ["gate_staged_loop_3x", "gate_body_cache_90"]
failed = [g for g in gates if metrics.get(g) != 1]
if failed:
    print("rnn staged-loop gates FAILED:", failed)
    print({k: metrics[k] for k in sorted(metrics)
           if not k.startswith("profiler.")})
    sys.exit(1)
print("rnn staged-loop gates ok: %.2fx vs re-tracing, "
      "%.0f%% body-cache hit rate" % (metrics["staged_vs_retrace_speedup"],
                                      100 * metrics["loop_body_cache_hit_rate"]))
PYEOF
  echo "==== profile smoke: overhead gate ===="
  (cd build && ./bench/bench_profiler_overhead)
  echo "==== profile smoke ok ===="
  exit 0
fi

if [[ "$MODE" == "--serving" ]]; then
  echo "==== serving: focused tests ===="
  ./build/tests/tfe_tests --gtest_filter='Serving*:Donation*'
  echo "==== serving: bench_serving under TFE_PROFILE ===="
  TRACE="build/serving_smoke_trace.json"
  (cd build && TFE_PROFILE="serving_smoke_trace.json" ./bench/bench_serving)
  python3 scripts/check_trace.py --require-batching "$TRACE"
  echo "==== serving: bench gates ===="
  python3 - build/BENCH_serving.json <<'PYEOF'
import json, sys
metrics = json.load(open(sys.argv[1]))["metrics"]
gates = ["gate_throughput_3x", "gate_p99_not_worse",
         "bitwise_identical", "failure_isolated"]
failed = [g for g in gates if metrics.get(g) != 1]
if failed:
    print("serving gates FAILED:", failed)
    print({k: metrics[k] for k in sorted(metrics) if not k.startswith("profiler.")})
    sys.exit(1)
print("serving gates ok: %.2fx throughput, p99 %.0fus vs %.0fus, "
      "mean batch %.2f" % (metrics["throughput_speedup"],
                           metrics["batched_p99_us"],
                           metrics["unbatched_p99_us"],
                           metrics["mean_batch_size"]))
PYEOF
  echo "==== serving ok ===="
  exit 0
fi

(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "$MODE" == "--skip-sanitizers" ]]; then
  echo "==== sanitizer passes skipped ===="
  exit 0
fi

if [[ "$MODE" == "--tier2" ]]; then
  # Everything, including the serial kernel tests and the distributed suite
  # (worker service threads + async RPC callbacks are prime TSan territory):
  # sanitizers still catch lifetime bugs there, and the suite is small
  # enough to afford it. The arena would recycle blocks and hide
  # use-after-free behind reuse, so the sweep pins every buffer to a fresh
  # system allocation for byte-level ASan/TSan visibility. The memory plan
  # would likewise pack intermediates into one slab and hide per-tensor
  # bounds; disable it so every staged intermediate is its own allocation.
  FILTER='*'
  export TFE_ALLOCATOR=system
  export TFE_MEMORY_PLAN=off
else
  # Concurrency tests only: the async queues, the drain fuser, the
  # threadpool-parallel kernels, the remote dispatch path, the allocator +
  # donation machinery, the profiler's lock-free record/flush, and the
  # staged control-flow paths (While iteration reuses cached execution
  # variants across the executor pool; recursion runs depth-capped nested
  # calls).
  FILTER='Async*:*Async*:Fusion*:ParallelKernels*:MicroProgram*:Profiler*:Remote*:Cluster*:Allocator*:Donation*:ProgramCache*:Serving*:While*:WhileGrad*:Recursion*:MemoryPlan*'
fi

echo "==== tsan: filter=$FILTER ===="
cmake -B build-tsan -S . -DTFE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target tfe_tests
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/tfe_tests --gtest_filter="$FILTER"

echo "==== asan: filter=$FILTER ===="
cmake -B build-asan -S . -DTFE_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" --target tfe_tests
ASAN_OPTIONS="detect_leaks=1" \
  ./build-asan/tests/tfe_tests --gtest_filter="$FILTER"

if [[ "$MODE" == "--tier2" ]]; then
  # The program cache's enabled/disabled switch is latched once per process,
  # so the full-suite pass above (cache on by default) cannot also cover
  # concurrent drains racing GetOrCompile with the cache pinned on under a
  # focused filter. Run the fusion + cache subset again with the cache
  # explicitly enabled under both sanitizers.
  CACHE_FILTER='Fusion*:MicroProgram*:ProgramCache*:Async*'
  echo "==== tsan: cache-enabled fusion subset ===="
  TSAN_OPTIONS="halt_on_error=1" TFE_FUSION_CACHE=on \
    ./build-tsan/tests/tfe_tests --gtest_filter="$CACHE_FILTER"
  echo "==== asan: cache-enabled fusion subset ===="
  ASAN_OPTIONS="detect_leaks=1" TFE_FUSION_CACHE=on \
    ./build-asan/tests/tfe_tests --gtest_filter="$CACHE_FILTER"

  # The serving subsystem is client threads racing the batcher thread racing
  # the executor: run its subset (plus the donation proofs it leans on)
  # under both sanitizers with a small window so coalescing actually forms.
  SERVING_FILTER='Serving*:Donation*'
  echo "==== tsan: serving subset ===="
  TSAN_OPTIONS="halt_on_error=1" TFE_BATCH_MAX=4 \
    ./build-tsan/tests/tfe_tests --gtest_filter="$SERVING_FILTER"
  echo "==== asan: serving subset ===="
  ASAN_OPTIONS="detect_leaks=1" TFE_BATCH_MAX=4 \
    ./build-asan/tests/tfe_tests --gtest_filter="$SERVING_FILTER"

  # Staged control flow: While iterations drive the executor pool through a
  # cached body variant, the While gradient replays staged backwards off
  # per-iteration snapshot stacks, and recursion nests depth-capped Calls —
  # all lifetime-sensitive paths worth a dedicated sweep.
  CF_FILTER='CondTest*:WhileTest*:WhileGradTest*:RecursionTest*'
  echo "==== tsan: control-flow subset ===="
  TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/tfe_tests --gtest_filter="$CF_FILTER"
  echo "==== asan: control-flow subset ===="
  ASAN_OPTIONS="detect_leaks=1" \
    ./build-asan/tests/tfe_tests --gtest_filter="$CF_FILTER"
fi

echo "==== tier 1 ok ===="
