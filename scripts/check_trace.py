#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file written by the profiler.

Usage: scripts/check_trace.py [--require-remote] [--require-reduce-fusion] \
    [--require-allocator] [--require-dag-fusion] [--require-batching] \
    [--require-loop] [--require-memory-plan] <trace.json>

Checks that the file is loadable the way chrome://tracing / Perfetto loads
it, that every event carries the required keys, and that complete ("X")
spans were recorded from at least two threads — dispatch on the host thread
plus drain/kernel work on the queue's pool thread.

With --require-remote the trace must additionally contain the remote
dispatch spans: a "remote_enqueue" on the client issuing the op over the
pending-handle protocol and a "remote_resolve" where the worker completion
resolves the client's pending handles.

With --require-reduce-fusion the trace must contain at least one
"fused_reduce_run" instant — emitted by the fused kernel each time a
reduction epilogue executes as a blocked map-reduce pass.

With --require-allocator the trace must contain the memory subsystem's
instants: an "allocator_slab" (the arena acquiring a fresh slab from the
system) and a "buffer_donation" (a fused run writing its output in place
into a uniquely-owned input buffer).

With --require-dag-fusion the trace must contain a "dag_fused_run" instant
(a fused window that was a true DAG segment — multi-output or an in-run
value consumed more than once) and a "program_cache_hit" instant (a fused
window that resolved its compiled program from the program cache instead of
recompiling).

With --require-batching the trace must contain the serving subsystem's
evidence that cross-request coalescing actually happened: a "batched_run"
instant (one execution serving a window of >= 2 sessions' calls) and a
"session_open" instant.

With --require-loop the trace must contain a "staged_loop" instant — the
While kernel completing a loop (its arg carries the iteration count), the
evidence that a staged while_loop actually iterated instead of unrolling.

With --require-memory-plan the trace must contain the static planner's
instants: a "memory_plan" (a staged run acquiring its plan slab; arg is the
slab size) and a "buffer_forward" (a retired run's output block claimed as
a later run's allocation; arg is the forwarded byte count).
"""
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    args = sys.argv[1:]
    require_remote = "--require-remote" in args
    require_reduce_fusion = "--require-reduce-fusion" in args
    require_allocator = "--require-allocator" in args
    require_dag_fusion = "--require-dag-fusion" in args
    require_batching = "--require-batching" in args
    require_loop = "--require-loop" in args
    require_memory_plan = "--require-memory-plan" in args
    args = [a for a in args
            if a not in ("--require-remote", "--require-reduce-fusion",
                         "--require-allocator", "--require-dag-fusion",
                         "--require-batching", "--require-loop",
                         "--require-memory-plan")]
    if len(args) != 1:
        fail(f"usage: {sys.argv[0]} [--require-remote] "
             "[--require-reduce-fusion] [--require-allocator] "
             "[--require-dag-fusion] [--require-batching] "
             "[--require-loop] [--require-memory-plan] <trace.json>")
    path = args[0]
    try:
        with open(path) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    span_tids = set()
    categories = set()
    instant_names = set()
    for i, ev in enumerate(events):
        for key in ("ph", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} missing '{key}': {ev}")
        ph = ev["ph"]
        if ph in ("X", "i") and "ts" not in ev:
            fail(f"event {i} missing 'ts': {ev}")
        if ph == "X":
            if "dur" not in ev or "name" not in ev:
                fail(f"X event {i} missing dur/name: {ev}")
            span_tids.add(ev["tid"])
            categories.add(ev.get("cat", ""))
        elif ph == "i":
            instant_names.add(ev.get("name", ""))

    if len(span_tids) < 2:
        fail(f"X spans on {len(span_tids)} thread(s); expected >= 2 "
             "(host dispatch + queue pool)")
    wanted = ["dispatch", "kernel", "queue_drain"]
    if require_remote:
        wanted += ["remote_enqueue", "remote_resolve"]
    for want in wanted:
        if want not in categories:
            fail(f"no '{want}' spans (categories seen: {sorted(categories)})")
    if require_reduce_fusion and "fused_reduce_run" not in instant_names:
        fail("no 'fused_reduce_run' instant — no fused map-reduce pass ran "
             f"(instants seen: {sorted(instant_names)})")
    if require_allocator:
        for want in ("allocator_slab", "buffer_donation"):
            if want not in instant_names:
                fail(f"no '{want}' instant — the memory subsystem left no "
                     f"trace (instants seen: {sorted(instant_names)})")
    if require_dag_fusion:
        if "dag_fused_run" not in instant_names:
            fail("no 'dag_fused_run' instant — no DAG segment executed "
                 f"fused (instants seen: {sorted(instant_names)})")
        if "program_cache_hit" not in instant_names:
            fail("no 'program_cache_hit' instant — every fused window "
                 "recompiled its program "
                 f"(instants seen: {sorted(instant_names)})")

    if require_batching:
        if "batched_run" not in instant_names:
            fail("no 'batched_run' instant — no window coalesced calls from "
                 f"concurrent sessions (instants seen: {sorted(instant_names)})")
        if "session_open" not in instant_names:
            fail("no 'session_open' instant — the serving front end left no "
                 f"trace (instants seen: {sorted(instant_names)})")

    if require_loop and "staged_loop" not in instant_names:
        fail("no 'staged_loop' instant — no While kernel completed a loop "
             f"(instants seen: {sorted(instant_names)})")

    if require_memory_plan:
        if "memory_plan" not in instant_names:
            fail("no 'memory_plan' instant — no staged run acquired a plan "
                 f"slab (instants seen: {sorted(instant_names)})")
        if "buffer_forward" not in instant_names:
            fail("no 'buffer_forward' instant — no retired output block was "
                 "forwarded into a later run "
                 f"(instants seen: {sorted(instant_names)})")

    print(f"check_trace: OK: {len(events)} events, "
          f"{len(span_tids)} span threads, categories {sorted(categories)}")


if __name__ == "__main__":
    main()
