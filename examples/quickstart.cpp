// Quickstart: the paper's programming model in one file.
//
//   build/examples/example_quickstart
//
// Walks through (1) imperative execution, (2) gradient tapes — including
// the paper's Listing 1 & 2, (3) staging with tfe::function — including the
// polymorphic trace cache, and (4) variables captured by reference
// (Listing 7).
#include <cstdio>

#include "api/tfe.h"

using tfe::GradientTape;
using tfe::Tensor;
using tfe::Variable;
namespace ops = tfe::ops;

int main() {
  // --- 1. Imperative execution (paper §4.1) -------------------------------
  // The select() example from the introduction: ops run immediately and
  // return concrete values.
  Tensor a = ops::constant<float>({1.0f, 0.0f}, {1, 2});
  Tensor x = ops::constant<float>({2.0f, -2.0f}, {2, 1});
  Tensor selected = ops::matmul(a, x);
  std::printf("select(x)       = %s\n",
              tfe::tensor_util::ToString(selected).c_str());

  // --- 2. Automatic differentiation (paper §4.2, Listing 1) ---------------
  {
    Tensor value = ops::scalar<float>(3.0f);
    GradientTape t1;
    GradientTape t2;
    t1.watch(value);
    t2.watch(value);
    Tensor y = ops::mul(value, value);
    Tensor dy_dx = std::move(t2.gradient(y, {value})).value()[0];
    Tensor d2y_dx2 = std::move(t1.gradient(dy_dx, {value})).value()[0];
    std::printf("d(x*x)/dx       = %.1f (expected 6.0)\n",
                dy_dx.scalar<float>());
    std::printf("d2(x*x)/dx2     = %.1f (expected 2.0)\n",
                d2y_dx2.scalar<float>());
  }

  // Listing 2: variables are watched automatically.
  {
    Variable v(ops::scalar<float>(3.0f));
    GradientTape tape;
    Tensor y = ops::mul(v.value(), v.value());
    tape.StopRecording();
    Tensor grad = tfe::gradient(tape, y, {v})[0];
    std::printf("d(v*v)/dv       = %.1f (auto-watched variable)\n",
                grad.scalar<float>());
  }

  // --- 3. Staging with tfe::function (paper §4.1/§4.6) --------------------
  int trace_count = 0;
  tfe::Function square_sum = tfe::function(
      [&trace_count](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        ++trace_count;  // host code runs at *trace* time only
        Tensor total = ops::zeros_like(args[0]);
        for (int i = 0; i < 3; ++i) {  // unrolled into the graph
          total = ops::add(total, ops::mul(args[0], args[0]));
        }
        return {ops::reduce_sum(total)};
      },
      "square_sum");

  Tensor small = ops::constant<float>({1, 2}, {2});
  Tensor big = ops::constant<float>({1, 2, 3, 4}, {4});
  std::printf("staged [2]      = %.1f\n",
              square_sum({small})[0].scalar<float>());
  std::printf("staged [2] again= %.1f (cache hit, still %d trace)\n",
              square_sum({small})[0].scalar<float>(), trace_count);
  std::printf("staged [4]      = %.1f (new shape -> retrace, now %d)\n",
              square_sum({big})[0].scalar<float>(), trace_count + 1);

  // --- 4. Variables are captured by reference (Listing 7) ------------------
  Variable counter(ops::scalar<float>(0.0f));
  tfe::Function mutate = tfe::function(
      [&counter](const std::vector<Tensor>&) -> std::vector<Tensor> {
        counter.assign_add(ops::fill(tfe::DType::kFloat32, {}, 1.0));
        return {counter.read_value()};
      },
      "mutate");
  mutate({});
  counter.assign_add(ops::scalar<float>(1.0f));
  mutate({});
  std::printf("counter         = %.1f (graph + eager writes interleave)\n",
              counter.value().scalar<float>());

  // --- 5. Devices (paper §4.4) ---------------------------------------------
  std::printf("devices:\n");
  for (tfe::Device* device : tfe::list_devices()) {
    std::printf("  %s\n", device->name().c_str());
  }
  {
    tfe::DeviceScope gpu("/gpu:0");
    Tensor c = ops::add(ops::scalar<float>(1.0f), ops::scalar<float>(2.0f));
    std::printf("1 + 2 on %s = %.1f (inputs copied transparently)\n",
                c.device()->name().c_str(), c.scalar<float>());
  }
  return 0;
}
