// Devices (paper §4.4): listing, placement scopes, transparent copies,
// staged functions as units of accelerator compilation, and virtual-time
// introspection on the simulated accelerators.
//
//   build/examples/example_multi_device
#include <cstdio>

#include "api/tfe.h"

using tfe::Tensor;
namespace ops = tfe::ops;

int main() {
  tfe::EagerContext* ctx = tfe::EagerContext::Global();

  std::printf("== list_devices ==\n");
  for (tfe::Device* device : tfe::list_devices()) {
    std::printf("  %s%s\n", device->name().c_str(),
                device->is_accelerator() ? "  (simulated)" : "");
  }

  // Listing 5: inputs on the CPU, op executed on the GPU.
  Tensor a = ops::scalar<float>(1.0f);
  Tensor b = ops::scalar<float>(2.0f);
  Tensor c;
  {
    tfe::DeviceScope gpu("/gpu:0");
    c = ops::add(a, b);
  }
  std::printf("\nadd on %s -> %.1f (inputs copied transparently: %llu "
              "copies so far)\n",
              c.device()->name().c_str(), c.scalar<float>(),
              static_cast<unsigned long long>(
                  ctx->stats().device_copies.load()));

  // Placement follows inputs: ops on GPU-resident tensors stay on the GPU.
  Tensor chained = ops::mul(c, c);
  std::printf("follow-up op landed on %s\n",
              chained.device()->name().c_str());

  // Graph functions are a unit of compilation for accelerators (§4.4).
  // Needs enough operations that per-op dispatch dominates the compiled
  // function's fixed launch cost (the paper's "amortized over a large
  // graph function").
  constexpr int kLayers = 200;
  tfe::Function layer = tfe::function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor h = ops::matmul(args[0], args[0]);
        for (int i = 0; i < kLayers; ++i) {
          h = ops::tanh(ops::matmul(h, args[0]));
        }
        return {ops::reduce_sum(h)};
      },
      "tpu_layer");
  Tensor x = ops::random_normal({32, 32}, 0, 0.05, /*seed=*/5);

  // Warm the per-op compile cache first so both modes are measured in
  // steady state ("build and optimization times were not included", §6).
  auto eager_body = [&x]() {
    tfe::DeviceScope tpu("/tpu:0");
    Tensor h = ops::matmul(x, x);
    for (int i = 0; i < kLayers; ++i) h = ops::tanh(ops::matmul(h, x));
    return ops::reduce_sum(h);
  };
  eager_body();
  ctx->ResetVirtualTime();
  Tensor eager_result = eager_body();
  uint64_t eager_ns = ctx->SyncAllDevices();

  {
    tfe::DeviceScope tpu("/tpu:0");
    layer({x});  // compile once (one-time cost, excluded below)
  }
  ctx->ResetVirtualTime();
  Tensor staged_result;
  {
    tfe::DeviceScope tpu("/tpu:0");
    staged_result = layer({x})[0];
  }
  uint64_t staged_ns = ctx->SyncAllDevices();

  std::printf("\n== simulated TPU (virtual time) ==\n");
  std::printf("eager  per-op execution: %8.3f ms  (per-op compile+dispatch)\n",
              eager_ns / 1e6);
  std::printf("staged whole-function:   %8.3f ms  (compiled once, fused)\n",
              staged_ns / 1e6);
  std::printf("speedup: %.1fx — \"when amortized over a large graph "
              "function, this overhead becomes negligible\" (§4.4)\n",
              static_cast<double>(eager_ns) / staged_ns);
  std::printf("results agree: %s\n",
              tfe::tensor_util::AllClose(eager_result, staged_result, 1e-4,
                                         1e-5)
                  ? "yes"
                  : "NO");

  // Explicit per-node placement inside a function overrides the call-time
  // device (§4.4).
  tfe::Function mixed = tfe::function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor on_cpu;
        {
          tfe::DeviceScope cpu("/cpu:0");
          on_cpu = ops::add(args[0], args[0]);
        }
        return {ops::mul(on_cpu, on_cpu)};
      },
      "mixed_placement");
  tfe::DeviceScope gpu("/gpu:0");
  Tensor mixed_out = mixed({ops::scalar<float>(3.0f)})[0];
  std::printf("\nmixed-placement function -> %.1f (inner op pinned to CPU, "
              "outer ran on %s)\n",
              mixed_out.scalar<float>(), "/gpu:0");
  return 0;
}
