// Distributed execution (paper §4.5): a two-worker cluster, remote ops by
// device name, remote tensors that stay remote, whole graph functions
// shipped to workers, and concurrent computations from host threads.
//
//   build/examples/example_distributed
#include <cmath>
#include <cstdio>
#include <thread>

#include "api/tfe.h"
#include "distrib/cluster.h"

using tfe::Tensor;
namespace ops = tfe::ops;

int main() {
  tfe::Cluster::Options options;
  options.jobs = {{"training", 2}};
  tfe::Cluster cluster(options);

  std::printf("== remote device pool ==\n");
  for (const std::string& name : cluster.ListRemoteDevices()) {
    std::printf("  %s\n", name.c_str());
  }

  // Same syntax as local execution, but with a remote device name.
  const std::string task1 = "/job:training/task:1/device:CPU:0";
  auto weights =
      cluster.Put(task1, ops::random_normal({4, 4}, 0, 1, /*seed=*/3));
  weights.status().ThrowIfError();
  auto activations =
      cluster.Put(task1, ops::random_normal({4, 4}, 0, 1, /*seed=*/4));
  activations.status().ThrowIfError();

  auto product = cluster.RunOp(task1, "MatMul", {*weights, *activations});
  product.status().ThrowIfError();
  std::printf("\nMatMul ran on %s; result stayed remote: %s\n", task1.c_str(),
              (*product)[0].DebugString().c_str());

  // Copy to the central server only when the value is needed.
  Tensor fetched = cluster.Fetch((*product)[0]).ValueOrThrow();
  std::printf("fetched to client: %s\n",
              tfe::tensor_util::ToString(fetched, 4).c_str());

  // Ship a whole graph function to a worker (staging enables serializing
  // the program, §4.3/§4.5).
  tfe::Function loss_fn = tfe::function(
      [](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        Tensor err = ops::sub(ops::matmul(args[0], args[1]), args[1]);
        return {ops::reduce_mean(ops::square(err))};
      },
      "remote_loss");
  Tensor w_local = ops::random_normal({4, 4}, 0, 0.5, /*seed=*/5);
  Tensor x_local = ops::random_normal({4, 4}, 0, 0.5, /*seed=*/6);
  float local_value = loss_fn({w_local, x_local})[0].scalar<float>();

  auto concrete = loss_fn.GetConcreteFunction({w_local, x_local});
  concrete.status().ThrowIfError();
  auto remote_w = cluster.Put(task1, w_local).ValueOrThrow();
  auto remote_x = cluster.Put(task1, x_local).ValueOrThrow();
  auto remote_loss =
      cluster.RunFunction(task1, **concrete, {remote_w, remote_x});
  remote_loss.status().ThrowIfError();
  float remote_value =
      cluster.Fetch((*remote_loss)[0]).ValueOrThrow().scalar<float>();
  std::printf("\nloss computed locally: %.6f, on worker: %.6f (match: %s)\n",
              local_value, remote_value,
              std::abs(local_value - remote_value) < 1e-6 ? "yes" : "NO");

  // Concurrent computations on different workers from host threads (§4.5).
  std::printf("\n== concurrent data-parallel shards ==\n");
  std::vector<float> shard_sums(2);
  std::vector<std::thread> threads;
  for (int task = 0; task < 2; ++task) {
    threads.emplace_back([&cluster, &shard_sums, task] {
      std::string device =
          "/job:training/task:" + std::to_string(task) + "/device:CPU:0";
      auto shard = cluster.Put(
          device, ops::random_normal({64}, 1.0, 0.1, /*seed=*/10 + task));
      auto squared = cluster.RunOp(device, "Mul", {*shard, *shard});
      tfe::AttrMap attrs;  // reduce on the worker, fetch only the scalar
      attrs["axis"] = tfe::AttrValue(std::vector<int64_t>{});
      auto total = cluster.RunOp(device, "Sum", {(*squared)[0]}, attrs);
      shard_sums[task] =
          cluster.Fetch((*total)[0]).ValueOrThrow().scalar<float>();
    });
  }
  for (auto& thread : threads) thread.join();
  std::printf("shard 0 sum(x^2) = %.2f (on task 0)\n", shard_sums[0]);
  std::printf("shard 1 sum(x^2) = %.2f (on task 1)\n", shard_sums[1]);
  std::printf("combined on client = %.2f\n", shard_sums[0] + shard_sums[1]);
  return 0;
}
