// Data-dependent models: the workloads the paper's introduction motivates
// ("host-language integration greatly simplifies the implementation of
// data-dependent models like ... recursive neural networks", §3).
//
// A recursive neural network (TreeRNN) over random binary parse trees:
//   * the model is plain recursive host code over an arbitrary data
//     structure — trivial to write imperatively, impossible to trace as a
//     single static graph (every tree has a different shape);
//   * the per-node composition cell IS trace-friendly, so we stage just
//     that (the paper's refactor-into-staging-friendly-helpers advice,
//     §4.7);
//   * alternatively the whole recursion is embedded in a staged function
//     via host_func, the py_func escape hatch.
//
//   build/examples/example_dynamic_models
#include <cstdio>
#include <memory>

#include "api/tfe.h"
#include "models/rnn.h"
#include "support/random.h"

using tfe::Tensor;
namespace ops = tfe::ops;

namespace {

constexpr int64_t kDim = 16;

struct TreeNode {
  std::unique_ptr<TreeNode> left, right;
  Tensor embedding;  // leaves only
  bool is_leaf() const { return left == nullptr; }
};

std::unique_ptr<TreeNode> RandomTree(tfe::random::Philox& gen, int depth) {
  auto node = std::make_unique<TreeNode>();
  if (depth == 0 || gen.NextFloat() < 0.3f) {
    node->embedding = ops::random_normal(
        {1, kDim}, 0, 1, static_cast<int64_t>(gen.NextUint64() % 100000) + 1);
    return node;
  }
  node->left = RandomTree(gen, depth - 1);
  node->right = RandomTree(gen, depth - 1);
  return node;
}

int CountLeaves(const TreeNode& node) {
  if (node.is_leaf()) return 1;
  return CountLeaves(*node.left) + CountLeaves(*node.right);
}

// The composition cell: combine(left, right) = tanh([l, r] W + b).
struct TreeCell {
  TreeCell()
      : weights(ops::random_normal({2 * kDim, kDim}, 0, 0.3, 7), "tree/w"),
        bias(ops::zeros(tfe::DType::kFloat32, {kDim}), "tree/b") {}
  Tensor Combine(const Tensor& left, const Tensor& right) const {
    Tensor joined = ops::concat({left, right}, 1);
    return ops::tanh(
        ops::add(ops::matmul(joined, weights.value()), bias.value()));
  }
  tfe::Variable weights;
  tfe::Variable bias;
};

// 1. Fully imperative recursion: native control flow over host structures.
Tensor EvalTree(const TreeCell& cell, const TreeNode& node) {
  if (node.is_leaf()) return node.embedding;
  return cell.Combine(EvalTree(cell, *node.left), EvalTree(cell, *node.right));
}

}  // namespace

int main() {
  tfe::random::Philox gen(2026, 7);
  TreeCell cell;
  auto tree = RandomTree(gen, 5);
  std::printf("random tree with %d leaves\n", CountLeaves(*tree));

  // --- imperative recursion, differentiable end to end ---------------------
  Tensor root;
  {
    tfe::GradientTape tape;
    root = EvalTree(cell, *tree);
    Tensor loss = ops::reduce_sum(ops::square(root));
    tape.StopRecording();
    auto grads = tfe::gradient(tape, loss, {cell.weights, cell.bias});
    std::printf("imperative TreeRNN: |root|^2 = %.4f, grad defined: %s\n",
                loss.scalar<float>(),
                grads[0].defined() && grads[1].defined() ? "yes" : "no");
  }

  // --- stage the hot cell only (the paper's recommended refactor) ----------
  tfe::Function staged_cell = tfe::function(
      [&cell](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {cell.Combine(args[0], args[1])};
      },
      "tree_cell");
  std::function<Tensor(const TreeNode&)> eval_staged =
      [&](const TreeNode& node) -> Tensor {
    if (node.is_leaf()) return node.embedding;
    return staged_cell(
        {eval_staged(*node.left), eval_staged(*node.right)})[0];
  };
  Tensor staged_root = eval_staged(*tree);
  std::printf("staged-cell TreeRNN matches imperative: %s (cell traced %d "
              "time(s) for the whole tree)\n",
              tfe::tensor_util::AllClose(root, staged_root, 1e-5, 1e-6)
                  ? "yes"
                  : "NO",
              staged_cell.num_traces());

  // --- or embed the whole recursion in a graph via host_func (§4.7) --------
  tfe::Function whole_model = tfe::function(
      [&cell, &tree](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        // Pre/post-processing is staged; the data-dependent recursion runs
        // imperatively inside the graph.
        Tensor scaled_input = ops::mul(args[0], args[0]);
        std::vector<Tensor> rec = tfe::host_func(
            "tree_recursion",
            [&cell, &tree](const std::vector<Tensor>& ins)
                -> tfe::StatusOr<std::vector<Tensor>> {
              Tensor tree_out = EvalTree(cell, *tree);
              return std::vector<Tensor>{
                  ops::add(tree_out, ops::tile(ins[0], {1, kDim}))};
            },
            {scaled_input}, {{tfe::DType::kFloat32, tfe::Shape({1, kDim})}});
        return {ops::reduce_sum(rec[0])};
      },
      "tree_with_host_func");
  Tensor out = whole_model({ops::constant<float>({2.0f}, {1, 1})})[0];
  std::printf("host_func-in-graph output: %.4f (= tree sum + 4 * %lld)\n",
              out.scalar<float>(), static_cast<long long>(kDim));

  // host_func graphs are not serializable — exactly the paper's caveat.
  auto concrete =
      whole_model.GetConcreteFunction({ops::constant<float>({2.0f}, {1, 1})});
  std::printf("graph with host_func serializable: %s (expected: no)\n",
              (*concrete)->IsSerializable() ? "yes" : "no");

  // --- variable-length sequences: while_loop inside one trace --------------
  // The other road for value-dependent control flow (paper §4.1): rewrite
  // the loop with the staged while combinator. One trace, any length.
  tfe::models::LSTMCell lstm(4, 8, /*seed=*/3);
  Tensor sequences = ops::random_normal({2, 12, 4}, 0, 1, /*seed=*/5);
  tfe::Function encode = tfe::function(
      [&](const std::vector<Tensor>& args) -> std::vector<Tensor> {
        return {tfe::models::DynamicRnn(lstm, sequences, args[0])};
      },
      "encode_sequence");
  for (double length : {3.0, 7.0, 12.0}) {
    Tensor h =
        encode({ops::fill(tfe::DType::kInt32, {}, length)})[0];
    std::printf("dynamic LSTM over %2.0f steps -> |h| = %.4f (traces: %d)\n",
                length,
                ops::reduce_sum(ops::square(h)).scalar<float>(),
                encode.num_traces());
  }
  return 0;
}
