// Train an MLP classifier on a synthetic MNIST-like problem, following the
// paper's multi-stage workflow (§4.1): develop imperatively, then stage the
// train step with tfe::function — with an input pipeline (shuffled,
// batched, checkpointable iterator), an Adam optimizer with slot variables,
// and a checkpoint of the whole training state (§4.3).
//
//   build/examples/example_mnist_mlp
#include <cstdio>

#include "api/tfe.h"
#include "data/dataset.h"
#include "models/mlp.h"
#include "models/optimizers.h"

using tfe::Tensor;
namespace ops = tfe::ops;

namespace {

// Synthetic "MNIST": 10 gaussian class prototypes in 64-d, noisy samples.
struct Dataset {
  Tensor images;  // [n, 64]
  Tensor labels;  // [n]
};

Dataset MakeData(int n, int64_t seed) {
  // One fixed set of class prototypes defines the task; train/test draw
  // different noisy samples from it.
  Tensor prototypes = ops::random_normal({10, 64}, 0, 2.0, /*seed=*/4242);
  Tensor labels = ops::cast(
      ops::argmax(ops::random_normal({n, 10}, 0, 1, seed + 1), 1),
      tfe::DType::kInt64);
  Tensor noise = ops::random_normal({n, 64}, 0, 0.5, seed + 2);
  Tensor images = ops::add(ops::gather(prototypes, labels), noise);
  return {images, labels};
}

float AccuracyOf(const tfe::models::MLP& mlp, const Dataset& data) {
  Tensor predictions = ops::argmax(mlp(data.images), 1);
  Tensor correct = ops::cast(ops::equal(predictions, data.labels),
                             tfe::DType::kFloat32);
  return ops::reduce_mean(correct).scalar<float>();
}

}  // namespace

int main() {
  Dataset train = MakeData(256, /*seed=*/100);
  Dataset test = MakeData(128, /*seed=*/200);

  tfe::models::MLP mlp({64, 64, 10}, /*seed=*/1);
  tfe::models::Adam adam(/*learning_rate=*/0.01);
  std::printf("initial accuracy: %.2f\n", AccuracyOf(mlp, test));

  // Input pipeline: shuffled, batched, repeated — the iterator's position
  // is itself checkpointable state (paper §4.3).
  tfe::data::Iterator iterator(
      tfe::data::Dataset::FromTensors({train.images, train.labels})
          .Shuffle(/*seed=*/11)
          .Batch(32)
          .Repeat(-1));

  // Step 1-2 of the paper's workflow: the imperative train step, then
  // identify it as the performance-critical block. Step 3: decorate it.
  // The staged graph pulls its own batches: IteratorNext is a stateful
  // primitive, so each execution sees fresh data.
  tfe::Function train_step = tfe::function(
      [&](const std::vector<Tensor>&) -> std::vector<Tensor> {
        std::vector<Tensor> batch = iterator.Next();
        tfe::GradientTape tape;
        Tensor loss = mlp.Loss(batch[0], batch[1]);
        tape.StopRecording();
        std::vector<tfe::Variable> vars = mlp.variables();
        adam.ApplyGradients(vars, tfe::gradient(tape, loss, vars));
        return {loss};
      },
      "mnist_train_step");

  const int steps_per_epoch = 256 / 32;
  for (int epoch = 0; epoch < 30; ++epoch) {
    float loss = 0;
    for (int step = 0; step < steps_per_epoch; ++step) {
      loss = train_step({})[0].scalar<float>();
    }
    if (epoch % 10 == 9) {
      std::printf("epoch %2d  loss %.4f  test accuracy %.2f\n", epoch + 1,
                  loss, AccuracyOf(mlp, test));
    }
  }
  std::printf("train step traced %d time(s) for 30 epochs\n",
              train_step.num_traces());

  // Checkpoint the FULL training state — model, optimizer slots, iterator
  // position — then restore the model into a fresh instance (graph-based
  // state matching, paper §4.3).
  std::string dir = "/tmp/tfe_example_mnist_ckpt";
  {
    tfe::Checkpoint checkpoint;
    checkpoint.TrackChild("model", &mlp);
    checkpoint.TrackChild("optimizer", &adam);
    checkpoint.TrackChild("iterator", &iterator);
    checkpoint.Save(dir).ThrowIfError();
  }
  tfe::models::MLP restored({64, 64, 10}, /*seed=*/999);  // different init
  {
    tfe::Checkpoint checkpoint;
    checkpoint.TrackChild("model", &restored);
    auto report = checkpoint.Restore(dir);
    report.status().ThrowIfError();
    std::printf("restored %d variables from %s\n",
                report->restored_variables, dir.c_str());
  }
  std::printf("restored model accuracy: %.2f (matches trained model: %s)\n",
              AccuracyOf(restored, test),
              AccuracyOf(restored, test) == AccuracyOf(mlp, test) ? "yes"
                                                                  : "no");
  return 0;
}
