
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/ops_api.cpp" "src/CMakeFiles/tfe.dir/api/ops_api.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/api/ops_api.cpp.o.d"
  "/root/repo/src/api/tfe.cpp" "src/CMakeFiles/tfe.dir/api/tfe.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/api/tfe.cpp.o.d"
  "/root/repo/src/autodiff/function_grad.cpp" "src/CMakeFiles/tfe.dir/autodiff/function_grad.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/autodiff/function_grad.cpp.o.d"
  "/root/repo/src/autodiff/gradient_registry.cpp" "src/CMakeFiles/tfe.dir/autodiff/gradient_registry.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/autodiff/gradient_registry.cpp.o.d"
  "/root/repo/src/autodiff/gradients.cpp" "src/CMakeFiles/tfe.dir/autodiff/gradients.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/autodiff/gradients.cpp.o.d"
  "/root/repo/src/autodiff/tape.cpp" "src/CMakeFiles/tfe.dir/autodiff/tape.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/autodiff/tape.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/tfe.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/data/dataset.cpp.o.d"
  "/root/repo/src/device/cost_model.cpp" "src/CMakeFiles/tfe.dir/device/cost_model.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/device/cost_model.cpp.o.d"
  "/root/repo/src/device/cpu_device.cpp" "src/CMakeFiles/tfe.dir/device/cpu_device.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/device/cpu_device.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/CMakeFiles/tfe.dir/device/device.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/device/device.cpp.o.d"
  "/root/repo/src/device/device_manager.cpp" "src/CMakeFiles/tfe.dir/device/device_manager.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/device/device_manager.cpp.o.d"
  "/root/repo/src/device/device_name.cpp" "src/CMakeFiles/tfe.dir/device/device_name.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/device/device_name.cpp.o.d"
  "/root/repo/src/device/sim_device.cpp" "src/CMakeFiles/tfe.dir/device/sim_device.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/device/sim_device.cpp.o.d"
  "/root/repo/src/distrib/cluster.cpp" "src/CMakeFiles/tfe.dir/distrib/cluster.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/distrib/cluster.cpp.o.d"
  "/root/repo/src/distrib/remote_tensor.cpp" "src/CMakeFiles/tfe.dir/distrib/remote_tensor.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/distrib/remote_tensor.cpp.o.d"
  "/root/repo/src/distrib/worker.cpp" "src/CMakeFiles/tfe.dir/distrib/worker.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/distrib/worker.cpp.o.d"
  "/root/repo/src/executor/executor.cpp" "src/CMakeFiles/tfe.dir/executor/executor.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/executor/executor.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/tfe.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/graph_function.cpp" "src/CMakeFiles/tfe.dir/graph/graph_function.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/graph/graph_function.cpp.o.d"
  "/root/repo/src/graph/passes.cpp" "src/CMakeFiles/tfe.dir/graph/passes.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/graph/passes.cpp.o.d"
  "/root/repo/src/graph/serialization.cpp" "src/CMakeFiles/tfe.dir/graph/serialization.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/graph/serialization.cpp.o.d"
  "/root/repo/src/kernels/batchnorm.cpp" "src/CMakeFiles/tfe.dir/kernels/batchnorm.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/batchnorm.cpp.o.d"
  "/root/repo/src/kernels/call_op.cpp" "src/CMakeFiles/tfe.dir/kernels/call_op.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/call_op.cpp.o.d"
  "/root/repo/src/kernels/control_ops.cpp" "src/CMakeFiles/tfe.dir/kernels/control_ops.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/control_ops.cpp.o.d"
  "/root/repo/src/kernels/conv.cpp" "src/CMakeFiles/tfe.dir/kernels/conv.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/conv.cpp.o.d"
  "/root/repo/src/kernels/elementwise.cpp" "src/CMakeFiles/tfe.dir/kernels/elementwise.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/elementwise.cpp.o.d"
  "/root/repo/src/kernels/host_func_op.cpp" "src/CMakeFiles/tfe.dir/kernels/host_func_op.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/host_func_op.cpp.o.d"
  "/root/repo/src/kernels/matmul.cpp" "src/CMakeFiles/tfe.dir/kernels/matmul.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/matmul.cpp.o.d"
  "/root/repo/src/kernels/pooling.cpp" "src/CMakeFiles/tfe.dir/kernels/pooling.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/pooling.cpp.o.d"
  "/root/repo/src/kernels/random_ops.cpp" "src/CMakeFiles/tfe.dir/kernels/random_ops.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/random_ops.cpp.o.d"
  "/root/repo/src/kernels/reduction.cpp" "src/CMakeFiles/tfe.dir/kernels/reduction.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/reduction.cpp.o.d"
  "/root/repo/src/kernels/register_all.cpp" "src/CMakeFiles/tfe.dir/kernels/register_all.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/register_all.cpp.o.d"
  "/root/repo/src/kernels/shape_ops.cpp" "src/CMakeFiles/tfe.dir/kernels/shape_ops.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/shape_ops.cpp.o.d"
  "/root/repo/src/kernels/softmax.cpp" "src/CMakeFiles/tfe.dir/kernels/softmax.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/softmax.cpp.o.d"
  "/root/repo/src/kernels/variable_ops.cpp" "src/CMakeFiles/tfe.dir/kernels/variable_ops.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/kernels/variable_ops.cpp.o.d"
  "/root/repo/src/models/l2hmc.cpp" "src/CMakeFiles/tfe.dir/models/l2hmc.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/models/l2hmc.cpp.o.d"
  "/root/repo/src/models/mlp.cpp" "src/CMakeFiles/tfe.dir/models/mlp.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/models/mlp.cpp.o.d"
  "/root/repo/src/models/optimizers.cpp" "src/CMakeFiles/tfe.dir/models/optimizers.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/models/optimizers.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "src/CMakeFiles/tfe.dir/models/resnet.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/models/resnet.cpp.o.d"
  "/root/repo/src/models/rnn.cpp" "src/CMakeFiles/tfe.dir/models/rnn.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/models/rnn.cpp.o.d"
  "/root/repo/src/ops/attr_value.cpp" "src/CMakeFiles/tfe.dir/ops/attr_value.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/ops/attr_value.cpp.o.d"
  "/root/repo/src/ops/kernel.cpp" "src/CMakeFiles/tfe.dir/ops/kernel.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/ops/kernel.cpp.o.d"
  "/root/repo/src/ops/op_defs.cpp" "src/CMakeFiles/tfe.dir/ops/op_defs.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/ops/op_defs.cpp.o.d"
  "/root/repo/src/ops/op_registry.cpp" "src/CMakeFiles/tfe.dir/ops/op_registry.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/ops/op_registry.cpp.o.d"
  "/root/repo/src/ops/shape_inference.cpp" "src/CMakeFiles/tfe.dir/ops/shape_inference.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/ops/shape_inference.cpp.o.d"
  "/root/repo/src/runtime/dispatch.cpp" "src/CMakeFiles/tfe.dir/runtime/dispatch.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/runtime/dispatch.cpp.o.d"
  "/root/repo/src/runtime/eager_context.cpp" "src/CMakeFiles/tfe.dir/runtime/eager_context.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/runtime/eager_context.cpp.o.d"
  "/root/repo/src/staging/control_flow.cpp" "src/CMakeFiles/tfe.dir/staging/control_flow.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/staging/control_flow.cpp.o.d"
  "/root/repo/src/staging/function.cpp" "src/CMakeFiles/tfe.dir/staging/function.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/staging/function.cpp.o.d"
  "/root/repo/src/staging/signature.cpp" "src/CMakeFiles/tfe.dir/staging/signature.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/staging/signature.cpp.o.d"
  "/root/repo/src/staging/trace_context.cpp" "src/CMakeFiles/tfe.dir/staging/trace_context.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/staging/trace_context.cpp.o.d"
  "/root/repo/src/state/checkpoint.cpp" "src/CMakeFiles/tfe.dir/state/checkpoint.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/state/checkpoint.cpp.o.d"
  "/root/repo/src/state/hash_table.cpp" "src/CMakeFiles/tfe.dir/state/hash_table.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/state/hash_table.cpp.o.d"
  "/root/repo/src/state/object_graph.cpp" "src/CMakeFiles/tfe.dir/state/object_graph.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/state/object_graph.cpp.o.d"
  "/root/repo/src/state/variable.cpp" "src/CMakeFiles/tfe.dir/state/variable.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/state/variable.cpp.o.d"
  "/root/repo/src/support/logging.cpp" "src/CMakeFiles/tfe.dir/support/logging.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/support/logging.cpp.o.d"
  "/root/repo/src/support/random.cpp" "src/CMakeFiles/tfe.dir/support/random.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/support/random.cpp.o.d"
  "/root/repo/src/support/status.cpp" "src/CMakeFiles/tfe.dir/support/status.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/support/status.cpp.o.d"
  "/root/repo/src/support/strings.cpp" "src/CMakeFiles/tfe.dir/support/strings.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/support/strings.cpp.o.d"
  "/root/repo/src/support/threadpool.cpp" "src/CMakeFiles/tfe.dir/support/threadpool.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/support/threadpool.cpp.o.d"
  "/root/repo/src/support/timeline.cpp" "src/CMakeFiles/tfe.dir/support/timeline.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/support/timeline.cpp.o.d"
  "/root/repo/src/tensor/buffer.cpp" "src/CMakeFiles/tfe.dir/tensor/buffer.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/tensor/buffer.cpp.o.d"
  "/root/repo/src/tensor/dtype.cpp" "src/CMakeFiles/tfe.dir/tensor/dtype.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/tensor/dtype.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/CMakeFiles/tfe.dir/tensor/shape.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/tensor/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/tfe.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/tensor/tensor_util.cpp" "src/CMakeFiles/tfe.dir/tensor/tensor_util.cpp.o" "gcc" "src/CMakeFiles/tfe.dir/tensor/tensor_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
