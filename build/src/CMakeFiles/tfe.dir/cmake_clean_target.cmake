file(REMOVE_RECURSE
  "libtfe.a"
)
