# Empty compiler generated dependencies file for tfe.
# This may be replaced when dependencies are built.
