# Empty dependencies file for example_mnist_mlp.
# This may be replaced when dependencies are built.
