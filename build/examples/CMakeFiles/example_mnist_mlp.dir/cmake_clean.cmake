file(REMOVE_RECURSE
  "CMakeFiles/example_mnist_mlp.dir/mnist_mlp.cpp.o"
  "CMakeFiles/example_mnist_mlp.dir/mnist_mlp.cpp.o.d"
  "example_mnist_mlp"
  "example_mnist_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mnist_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
