file(REMOVE_RECURSE
  "CMakeFiles/example_distributed.dir/distributed.cpp.o"
  "CMakeFiles/example_distributed.dir/distributed.cpp.o.d"
  "example_distributed"
  "example_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
