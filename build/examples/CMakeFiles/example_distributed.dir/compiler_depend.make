# Empty compiler generated dependencies file for example_distributed.
# This may be replaced when dependencies are built.
