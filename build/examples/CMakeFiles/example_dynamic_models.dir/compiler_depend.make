# Empty compiler generated dependencies file for example_dynamic_models.
# This may be replaced when dependencies are built.
