file(REMOVE_RECURSE
  "CMakeFiles/example_dynamic_models.dir/dynamic_models.cpp.o"
  "CMakeFiles/example_dynamic_models.dir/dynamic_models.cpp.o.d"
  "example_dynamic_models"
  "example_dynamic_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dynamic_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
