file(REMOVE_RECURSE
  "CMakeFiles/example_multi_device.dir/multi_device.cpp.o"
  "CMakeFiles/example_multi_device.dir/multi_device.cpp.o.d"
  "example_multi_device"
  "example_multi_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
