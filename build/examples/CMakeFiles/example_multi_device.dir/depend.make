# Empty dependencies file for example_multi_device.
# This may be replaced when dependencies are built.
