file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_opt.dir/bench_graph_opt.cpp.o"
  "CMakeFiles/bench_graph_opt.dir/bench_graph_opt.cpp.o.d"
  "bench_graph_opt"
  "bench_graph_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
