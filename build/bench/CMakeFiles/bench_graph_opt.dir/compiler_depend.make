# Empty compiler generated dependencies file for bench_graph_opt.
# This may be replaced when dependencies are built.
