# Empty compiler generated dependencies file for bench_resnet_gpu.
# This may be replaced when dependencies are built.
