file(REMOVE_RECURSE
  "CMakeFiles/bench_resnet_gpu.dir/bench_resnet_gpu.cpp.o"
  "CMakeFiles/bench_resnet_gpu.dir/bench_resnet_gpu.cpp.o.d"
  "bench_resnet_gpu"
  "bench_resnet_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resnet_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
