file(REMOVE_RECURSE
  "CMakeFiles/bench_dispatch.dir/bench_dispatch.cpp.o"
  "CMakeFiles/bench_dispatch.dir/bench_dispatch.cpp.o.d"
  "bench_dispatch"
  "bench_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
