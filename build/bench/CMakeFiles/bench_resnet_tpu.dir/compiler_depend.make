# Empty compiler generated dependencies file for bench_resnet_tpu.
# This may be replaced when dependencies are built.
