file(REMOVE_RECURSE
  "CMakeFiles/bench_resnet_tpu.dir/bench_resnet_tpu.cpp.o"
  "CMakeFiles/bench_resnet_tpu.dir/bench_resnet_tpu.cpp.o.d"
  "bench_resnet_tpu"
  "bench_resnet_tpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resnet_tpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
