file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_cache.dir/bench_trace_cache.cpp.o"
  "CMakeFiles/bench_trace_cache.dir/bench_trace_cache.cpp.o.d"
  "bench_trace_cache"
  "bench_trace_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
