# Empty dependencies file for bench_trace_cache.
# This may be replaced when dependencies are built.
