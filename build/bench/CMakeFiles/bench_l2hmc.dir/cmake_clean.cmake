file(REMOVE_RECURSE
  "CMakeFiles/bench_l2hmc.dir/bench_l2hmc.cpp.o"
  "CMakeFiles/bench_l2hmc.dir/bench_l2hmc.cpp.o.d"
  "bench_l2hmc"
  "bench_l2hmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_l2hmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
