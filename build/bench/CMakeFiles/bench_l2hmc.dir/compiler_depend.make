# Empty compiler generated dependencies file for bench_l2hmc.
# This may be replaced when dependencies are built.
