# Empty dependencies file for bench_executor.
# This may be replaced when dependencies are built.
