file(REMOVE_RECURSE
  "CMakeFiles/bench_executor.dir/bench_executor.cpp.o"
  "CMakeFiles/bench_executor.dir/bench_executor.cpp.o.d"
  "bench_executor"
  "bench_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
