
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autodiff_test.cpp" "tests/CMakeFiles/tfe_tests.dir/autodiff_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/autodiff_test.cpp.o.d"
  "/root/repo/tests/control_flow_test.cpp" "tests/CMakeFiles/tfe_tests.dir/control_flow_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/control_flow_test.cpp.o.d"
  "/root/repo/tests/data_test.cpp" "tests/CMakeFiles/tfe_tests.dir/data_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/data_test.cpp.o.d"
  "/root/repo/tests/device_test.cpp" "tests/CMakeFiles/tfe_tests.dir/device_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/device_test.cpp.o.d"
  "/root/repo/tests/distrib_test.cpp" "tests/CMakeFiles/tfe_tests.dir/distrib_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/distrib_test.cpp.o.d"
  "/root/repo/tests/eager_test.cpp" "tests/CMakeFiles/tfe_tests.dir/eager_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/eager_test.cpp.o.d"
  "/root/repo/tests/executor_test.cpp" "tests/CMakeFiles/tfe_tests.dir/executor_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/executor_test.cpp.o.d"
  "/root/repo/tests/function_grad_test.cpp" "tests/CMakeFiles/tfe_tests.dir/function_grad_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/function_grad_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/tfe_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/kernels_test.cpp" "tests/CMakeFiles/tfe_tests.dir/kernels_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/kernels_test.cpp.o.d"
  "/root/repo/tests/models_test.cpp" "tests/CMakeFiles/tfe_tests.dir/models_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/models_test.cpp.o.d"
  "/root/repo/tests/ops_registry_test.cpp" "tests/CMakeFiles/tfe_tests.dir/ops_registry_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/ops_registry_test.cpp.o.d"
  "/root/repo/tests/passes_test.cpp" "tests/CMakeFiles/tfe_tests.dir/passes_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/passes_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/tfe_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/rnn_test.cpp" "tests/CMakeFiles/tfe_tests.dir/rnn_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/rnn_test.cpp.o.d"
  "/root/repo/tests/serialization_test.cpp" "tests/CMakeFiles/tfe_tests.dir/serialization_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/serialization_test.cpp.o.d"
  "/root/repo/tests/sim_device_test.cpp" "tests/CMakeFiles/tfe_tests.dir/sim_device_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/sim_device_test.cpp.o.d"
  "/root/repo/tests/staging_test.cpp" "tests/CMakeFiles/tfe_tests.dir/staging_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/staging_test.cpp.o.d"
  "/root/repo/tests/state_test.cpp" "tests/CMakeFiles/tfe_tests.dir/state_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/state_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/tfe_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/tensor_test.cpp" "tests/CMakeFiles/tfe_tests.dir/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/tensor_test.cpp.o.d"
  "/root/repo/tests/test_main.cpp" "tests/CMakeFiles/tfe_tests.dir/test_main.cpp.o" "gcc" "tests/CMakeFiles/tfe_tests.dir/test_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tfe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
