# Empty compiler generated dependencies file for tfe_tests.
# This may be replaced when dependencies are built.
