// Device-name parsing for names like "/job:training/task:2/device:GPU:0".
//
// The paper (§4.5) identifies remote devices by application-level names of
// exactly this form; local devices use job "localhost", task 0. Short forms
// such as "/gpu:0", "GPU:0", "cpu" are accepted anywhere a device name is,
// as in TensorFlow.
#ifndef TFE_DEVICE_DEVICE_NAME_H_
#define TFE_DEVICE_DEVICE_NAME_H_

#include <string>

#include "support/status.h"

namespace tfe {

enum class DeviceKind { kCpu, kGpu, kTpu };

const char* DeviceKindName(DeviceKind kind);  // "CPU" / "GPU" / "TPU"
StatusOr<DeviceKind> DeviceKindFromName(const std::string& name);

struct DeviceNameParts {
  std::string job = "localhost";
  int task = 0;
  DeviceKind kind = DeviceKind::kCpu;
  int index = 0;

  // "/job:localhost/task:0/device:CPU:0"
  std::string ToString() const;

  bool operator==(const DeviceNameParts& other) const {
    return job == other.job && task == other.task && kind == other.kind &&
           index == other.index;
  }
};

// Parses full names ("/job:j/task:2/device:GPU:1") and short forms
// ("/gpu:0", "gpu:1", "TPU", "/device:CPU:0"). Unspecified fields default to
// job=localhost, task=0, index=0.
StatusOr<DeviceNameParts> ParseDeviceName(const std::string& name);

}  // namespace tfe

#endif  // TFE_DEVICE_DEVICE_NAME_H_
