// Analytic (roofline) kernel cost model for the simulated accelerators.
//
// The paper's Figure 3 / Table 1 numbers come from real hardware we do not
// have (GTX 1080, Cloud TPU). We reproduce their *shape* mechanistically:
// per-op FLOP and byte counts are derived from the op and its shapes, and a
// device converts them to virtual nanoseconds via a roofline
//   t = launch + max(flops / (peak_flops * efficiency), bytes / bandwidth).
// DESIGN.md §2 documents this substitution; EXPERIMENTS.md records the
// calibrated constants.
#ifndef TFE_DEVICE_COST_MODEL_H_
#define TFE_DEVICE_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/shape.h"

namespace tfe {

struct OpCost {
  double flops = 0;  // floating-point operations
  double bytes = 0;  // memory traffic (reads + writes)
};

// Per-device roofline and dispatch-path constants.
struct DeviceCostParams {
  double flops_per_second = 1e12;
  double bytes_per_second = 1e11;
  double efficiency = 1.0;          // achieved fraction of peak FLOPs
  uint64_t kernel_launch_ns = 0;    // fixed per-kernel device overhead
  uint64_t executor_node_ns = 0;    // staged runtime per-node overhead
  // Eager extras (paper §4.4: per-op TPU compile & dispatch are expensive):
  uint64_t eager_dispatch_ns = 0;   // device-side per-op eager dispatch
  uint64_t per_op_compile_ns = 0;   // one-time per op signature (TPU)
  double fused_discount = 1.0;      // staged whole-function compilation gain
  // Async devices: fraction of each kernel's time the *eager* host also
  // pays (imperfect pipelining — the interpreter cannot enqueue
  // unboundedly far ahead). Staged execution is not affected.
  double eager_host_sync_fraction = 0.0;
  // Fixed cost per compiled whole-function invocation (host->accelerator
  // launch + infeed/outfeed round trip). Paper's Table 1 implies ~40 ms per
  // TPU step at batch 1.
  uint64_t compiled_call_overhead_ns = 0;
};

// Estimates FLOPs/bytes for one op execution from its name and shapes.
// Unknown ops fall back to elementwise cost (flops = output elements,
// bytes = inputs + outputs).
OpCost EstimateOpCost(const std::string& op_name,
                      const std::vector<Shape>& input_shapes,
                      const std::vector<Shape>& output_shapes,
                      size_t dtype_size);

// Roofline conversion. `compiled` applies the fused discount (staged
// whole-function execution) and skips eager dispatch overhead.
uint64_t KernelTimeNs(const OpCost& cost, const DeviceCostParams& params,
                      bool compiled);

}  // namespace tfe

#endif  // TFE_DEVICE_COST_MODEL_H_
