// RemoteDevice: a worker-resident device registered in the client's
// DeviceManager as a first-class Device (paper §4.5: "executing an operation
// on a remote device is syntactically equivalent to executing an operation
// on a local device"). Dispatching to one flows through the ordinary
// per-device OpQueue; the op is forwarded to the owning worker through a
// RemoteBackend, outputs are pending TensorHandles that the worker's
// completion callback resolves, and values stay in the worker's tensor store
// until a read fetches them (transparent copy-on-read).
//
// The backend is an abstract transport so device/ stays independent of
// distrib/: the in-process cluster binds it to a WorkerServer message queue
// (the gRPC stand-in); a real deployment would bind it to a stub.
#ifndef TFE_DEVICE_REMOTE_DEVICE_H_
#define TFE_DEVICE_REMOTE_DEVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "device/device.h"
#include "ops/attr_value.h"
#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {

// Metadata of one tensor living in a worker's store — the wire form of an
// op's output (values never travel unless fetched).
struct RemoteOutputMeta {
  int64_t handle_id = -1;
  DType dtype = DType::kInvalid;
  Shape shape;
};

// Transport to one worker. All methods are thread-safe. The *Async methods
// never block; the worker processes requests in submission order (the
// ordering guarantee the pending-handle protocol rests on: a producer's
// RunOp always reaches the worker before its consumer's, so consumers may
// reference output ids that do not exist yet). Completion callbacks run on
// the worker's service thread — or inline on the caller when the backend is
// already disconnected — and must not block.
class RemoteBackend {
 public:
  using DoneFn = std::function<void(StatusOr<std::vector<RemoteOutputMeta>>)>;

  virtual ~RemoteBackend() = default;

  // "/job:<job>/task:<task>" — the worker this backend speaks to.
  virtual const std::string& target() const = 0;

  // Reserves a store id the client may assign to a shipped input or a
  // pending output. Client-allocated ids live in a range disjoint from the
  // worker's own so the two allocators never collide.
  virtual int64_t AllocateHandleId() = 0;

  // Ships a concrete tensor into the worker store under `dst_id`
  // (fire-and-forget; a failed put surfaces as NotFound on the first op
  // that consumes the id).
  virtual void PutAsync(Tensor value, int64_t dst_id) = 0;
  // Blocking variant; returns once the tensor is stored.
  virtual Status Put(const Tensor& value, int64_t dst_id) = 0;

  // Executes one primitive op on the worker. `device` is the device part
  // relative to the worker (e.g. "/device:CPU:0"). Inputs are store ids.
  // When `output_ids` is non-empty the worker stores the results under
  // exactly those ids (pending-handle protocol); when empty it allocates
  // ids itself and reports them in the completion metas.
  virtual void RunOpAsync(const std::string& device, const std::string& op,
                          std::vector<int64_t> input_ids, AttrMap attrs,
                          std::vector<int64_t> output_ids, DoneFn done) = 0;
  // Blocking variant (built on the async RPC).
  virtual StatusOr<std::vector<RemoteOutputMeta>> RunOp(
      const std::string& device, const std::string& op,
      std::vector<int64_t> input_ids, AttrMap attrs,
      std::vector<int64_t> output_ids) = 0;

  // Executes a whole staged function as one remote op. `serialized` is the
  // function bundle to register first (empty once the function has shipped —
  // the worker then resolves `name` against its library). When
  // `append_captures` is set the worker appends the deserialized function's
  // capture values to the inputs (the blocking Cluster API's convention);
  // the dispatch path ships complete inputs instead.
  virtual void RunFunctionAsync(const std::string& device,
                                const std::string& name,
                                const std::string& serialized,
                                std::vector<int64_t> input_ids,
                                std::vector<int64_t> output_ids,
                                bool append_captures, DoneFn done) = 0;

  // Per-worker "already shipped" record for staged functions: a function is
  // serialized and attached to its first remote call only (ship-once);
  // afterwards the worker resolves the name against its own library. Marked
  // only after successful serialization, so a failure stays reportable.
  virtual bool FunctionShipped(const std::string& name) = 0;
  virtual void MarkFunctionShipped(const std::string& name) = 0;

  // Copies a stored tensor back to the client as plain host data (the
  // transparent copy-on-read behind remote value reads). Blocking.
  virtual StatusOr<Tensor> Fetch(int64_t handle_id) = 0;

  // Drops a store entry; safe after disconnect (no-op). Never blocks.
  virtual void DeleteAsync(int64_t handle_id) = 0;
};

class RemoteDevice : public Device {
 public:
  RemoteDevice(DeviceNameParts name, std::shared_ptr<RemoteBackend> backend);

  bool IsRemote() const override { return true; }

  RemoteBackend* backend() const { return backend_.get(); }
  const std::shared_ptr<RemoteBackend>& shared_backend() const {
    return backend_;
  }
  // The device part relative to the owning worker ("/device:CPU:0" etc.),
  // what the worker's own DeviceManager resolves.
  const std::string& local_device_part() const { return local_part_; }

 private:
  std::shared_ptr<RemoteBackend> backend_;
  std::string local_part_;
};

}  // namespace tfe

#endif  // TFE_DEVICE_REMOTE_DEVICE_H_
