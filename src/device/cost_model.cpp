#include "device/cost_model.h"

#include <algorithm>
#include <cmath>

namespace tfe {

namespace {

double TotalElements(const std::vector<Shape>& shapes) {
  double total = 0;
  for (const Shape& shape : shapes) {
    if (shape.IsFullyDefined()) {
      total += static_cast<double>(shape.num_elements());
    }
  }
  return total;
}

}  // namespace

OpCost EstimateOpCost(const std::string& op_name,
                      const std::vector<Shape>& input_shapes,
                      const std::vector<Shape>& output_shapes,
                      size_t dtype_size) {
  OpCost cost;
  const double in_elems = TotalElements(input_shapes);
  const double out_elems = TotalElements(output_shapes);
  cost.bytes = (in_elems + out_elems) * static_cast<double>(dtype_size);

  if (op_name == "MatMul") {
    // [m,k] x [k,n] -> [m,n]: 2*m*n*k FLOPs. Transposes do not change it.
    if (input_shapes.size() >= 2 && input_shapes[0].rank() == 2 &&
        output_shapes.size() >= 1 && output_shapes[0].rank() == 2 &&
        input_shapes[0].IsFullyDefined() && output_shapes[0].IsFullyDefined()) {
      double m = static_cast<double>(output_shapes[0].dim(0));
      double n = static_cast<double>(output_shapes[0].dim(1));
      double k0 = static_cast<double>(input_shapes[0].dim(0));
      double k1 = static_cast<double>(input_shapes[0].dim(1));
      // The contraction dim is whichever input-0 dim is not an output dim.
      double k = (k0 == m) ? k1 : k0;
      cost.flops = 2.0 * m * n * k;
    } else {
      cost.flops = out_elems * 128;  // partial shapes: coarse fallback
    }
    return cost;
  }
  if (op_name == "Conv2D" || op_name == "Conv2DBackpropInput" ||
      op_name == "Conv2DBackpropFilter") {
    // All three conv variants perform the same MAC count:
    //   2 * |output activations| * (kh * kw * cin).
    // Locate the filter [kh,kw,cin,cout] and the output-activation volume
    // for each variant (forward: output; backprops: the dy operand).
    const Shape* filter = nullptr;
    const Shape* activations = nullptr;
    if (op_name == "Conv2D" && input_shapes.size() >= 2 &&
        !output_shapes.empty()) {
      filter = &input_shapes[1];
      activations = &output_shapes[0];
    } else if (op_name == "Conv2DBackpropInput" && input_shapes.size() >= 2) {
      filter = &input_shapes[0];
      activations = &input_shapes[1];  // dy
    } else if (op_name == "Conv2DBackpropFilter" &&
               input_shapes.size() >= 2 && !output_shapes.empty()) {
      filter = &output_shapes[0];      // filter gradient
      activations = &input_shapes[1];  // dy
    }
    if (filter != nullptr && filter->rank() == 4 &&
        filter->IsFullyDefined() && activations != nullptr &&
        activations->IsFullyDefined()) {
      double window = static_cast<double>(filter->dim(0)) * filter->dim(1) *
                      filter->dim(2);
      cost.flops =
          2.0 * static_cast<double>(activations->num_elements()) * window;
    } else {
      cost.flops = out_elems * 256;
    }
    return cost;
  }
  if (op_name == "FusedBatchNorm" || op_name == "FusedBatchNormGrad") {
    cost.flops = (in_elems + out_elems) * 4;
    return cost;
  }
  if (op_name == "Softmax" || op_name == "LogSoftmax" ||
      op_name == "SparseSoftmaxCrossEntropyWithLogits") {
    cost.flops = in_elems * 6;  // exp + reductions
    return cost;
  }
  if (op_name == "MaxPool" || op_name == "AvgPool" ||
      op_name == "MaxPoolGrad" || op_name == "AvgPoolGrad") {
    cost.flops = in_elems * 2;
    return cost;
  }
  // Transcendental elementwise ops cost a few FLOPs per element.
  if (op_name == "Exp" || op_name == "Log" || op_name == "Tanh" ||
      op_name == "Sigmoid" || op_name == "Sqrt" || op_name == "Rsqrt" ||
      op_name == "Cos" || op_name == "Sin" || op_name == "Pow" ||
      op_name == "RandomNormal" || op_name == "RandomUniform") {
    cost.flops = std::max(in_elems, out_elems) * 8;
    return cost;
  }
  // Default: one FLOP per output element (elementwise / data movement).
  cost.flops = std::max(out_elems, 1.0);
  return cost;
}

uint64_t KernelTimeNs(const OpCost& cost, const DeviceCostParams& params,
                      bool compiled) {
  double compute_s =
      cost.flops / (params.flops_per_second * params.efficiency);
  double memory_s = cost.bytes / params.bytes_per_second;
  double roofline_s = std::max(compute_s, memory_s);
  if (compiled) roofline_s *= params.fused_discount;
  double total_ns = roofline_s * 1e9 + static_cast<double>(
                                           params.kernel_launch_ns);
  if (!compiled) total_ns += static_cast<double>(params.eager_dispatch_ns);
  return static_cast<uint64_t>(total_ns);
}

}  // namespace tfe
