// The Device abstraction shared by imperative and staged execution.
//
// Paper §4.4: "Imperative and staged computations use the same underlying
// Device abstraction, which makes it possible to both execute operations on
// devices and store data on them." A Device here is:
//   * a name (job/task/kind/index),
//   * an execution policy — does it run real kernels (CPU, and simulated
//     devices in numerics mode) or only model their cost (ResNet-scale
//     benchmarks on the simulated accelerators),
//   * a Timeline accumulating virtual kernel time (simulated devices),
//   * optionally a per-op-signature compile cache (the simulated TPU, §4.4:
//     "the overhead of compiling operations for TPU and dispatching the
//     generated code is significant").
#ifndef TFE_DEVICE_DEVICE_H_
#define TFE_DEVICE_DEVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "device/cost_model.h"
#include "device/device_name.h"
#include "support/timeline.h"
#include "tensor/allocator.h"

namespace tfe {

class Device {
 public:
  Device(DeviceNameParts name, DeviceCostParams cost_params,
         bool executes_kernels, bool synchronous);
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // Remote devices live on another worker: ops dispatched to them are
  // forwarded over a RemoteBackend instead of running kernels here (see
  // device/remote_device.h), but they flow through the same DeviceManager /
  // DeviceScope / OpQueue machinery as local ones (paper §4.5).
  virtual bool IsRemote() const { return false; }

  const std::string& name() const { return canonical_name_; }
  const DeviceNameParts& name_parts() const { return name_parts_; }
  DeviceKind kind() const { return name_parts_.kind; }
  bool is_accelerator() const { return kind() != DeviceKind::kCpu; }

  // Whether kernels on this device produce real numerics. When false, the
  // dispatcher allocates zeroed outputs of the inferred shapes and only the
  // cost model runs (simulation-only benchmarking mode).
  bool executes_kernels() const { return executes_kernels_; }

  // Synchronous devices (CPU, TPU) block the host until the kernel retires;
  // asynchronous devices (GPU stream) only charge the host an enqueue cost.
  bool synchronous() const { return synchronous_; }

  const DeviceCostParams& cost_params() const { return cost_params_; }
  Timeline& timeline() { return timeline_; }

  // The allocator serving this device's tensor storage (never null). Each
  // device owns its own instance — the allocator-behind-context pattern —
  // so per-device stats() separate CPU, sim, and remote allocation traffic.
  // The kind (arena vs system) is fixed at device construction from
  // TFE_ALLOCATOR / the programmatic override.
  Allocator* allocator() const { return allocator_.get(); }
  const std::shared_ptr<Allocator>& allocator_shared() const {
    return allocator_;
  }

  // Virtual cost to charge for compiling `signature` on this device
  // (simulated TPU eager mode). First call per signature pays
  // per_op_compile_ns; later calls hit the compile cache and pay nothing.
  uint64_t CompileCostNs(const std::string& signature);

  // Resets the timeline for a fresh measurement window. Compile caches are
  // deliberately preserved: the paper excludes one-time build/optimization
  // costs, so warmed-up compilations survive timer resets.
  void ResetSimulation();
  // Drops cached compilations too (full cold-start).
  void ResetCompileCache();

 private:
  DeviceNameParts name_parts_;
  std::string canonical_name_;
  DeviceCostParams cost_params_;
  bool executes_kernels_;
  bool synchronous_;
  Timeline timeline_;
  std::shared_ptr<Allocator> allocator_;

  std::mutex compile_mu_;
  std::unordered_set<std::string> compile_cache_;
};

// Preset factories. `executes_kernels` toggles numerics vs. timing-only mode
// for the simulated accelerators (CPU always executes for real).
std::unique_ptr<Device> MakeCpuDevice(DeviceNameParts name = {});
std::unique_ptr<Device> MakeSimGpuDevice(int index = 0,
                                         bool executes_kernels = true,
                                         const std::string& job = "localhost",
                                         int task = 0);
std::unique_ptr<Device> MakeSimTpuDevice(int index = 0,
                                         bool executes_kernels = true,
                                         const std::string& job = "localhost",
                                         int task = 0);

}  // namespace tfe

#endif  // TFE_DEVICE_DEVICE_H_
