#include "device/remote_device.h"

#include <utility>

#include "support/logging.h"

namespace tfe {
namespace {

std::string LocalDevicePart(DeviceNameParts parts) {
  // The name the owning worker's DeviceManager resolves: same kind/index,
  // local job/task.
  parts.job = "localhost";
  parts.task = 0;
  return parts.ToString();
}

}  // namespace

RemoteDevice::RemoteDevice(DeviceNameParts name,
                           std::shared_ptr<RemoteBackend> backend)
    // executes_kernels=false: ExecuteKernel must never run here — remote ops
    // are forwarded whole. synchronous=false: like a GPU stream, dispatch
    // only charges an enqueue; completion lands via the worker callback.
    : Device(name, DeviceCostParams{}, /*executes_kernels=*/false,
             /*synchronous=*/false),
      backend_(std::move(backend)),
      local_part_(LocalDevicePart(name)) {
  TFE_CHECK(backend_ != nullptr);
}

}  // namespace tfe
