#include "device/device.h"

namespace tfe {

// GTX-1080-class GPU (the paper's testbed): 8.9 TFLOPs fp32 peak, 320 GB/s.
// Efficiency is calibrated so that modelled ResNet-50 step times land in the
// paper's range (~130 examples/s at batch 32 for the staged/graph series —
// see EXPERIMENTS.md). The GPU is an *asynchronous* stream device: eager
// dispatch only charges the host an enqueue cost, and kernels retire on the
// device timeline — this overlap is what makes eager catch up with staged
// execution at large batch sizes (Figure 3).
std::unique_ptr<Device> MakeSimGpuDevice(int index, bool executes_kernels,
                                         const std::string& job, int task) {
  DeviceNameParts name;
  name.job = job;
  name.task = task;
  name.kind = DeviceKind::kGpu;
  name.index = index;
  DeviceCostParams params;
  params.flops_per_second = 8.9e12;
  params.bytes_per_second = 3.2e11;
  params.efficiency = 0.33;
  // Fixed cost per kernel (launch + small-kernel latency floor); ~2k
  // kernels/step puts the ResNet-50 fixed device cost near the ~15 ms the
  // paper's numbers imply (EXPERIMENTS.md has the calibration).
  params.kernel_launch_ns = 7'000;
  params.executor_node_ns = 1'000;   // staged runtime per-node cost
  params.eager_dispatch_ns = 0;      // host-side cost lives in HostProfile
  params.fused_discount = 1.0;       // no XLA fusion modelled on GPU
  params.eager_host_sync_fraction = 0.3;
  return std::make_unique<Device>(name, params, executes_kernels,
                                  /*synchronous=*/false);
}

// Cloud-TPU-class device. Eager per-op execution pays a compile cost the
// first time each op signature is seen (cached thereafter) plus a large
// per-op dispatch cost — the paper's §4.4: "the overhead of compiling
// operations for TPU and dispatching the generated code is significant.
// When amortized over a large graph function, this overhead becomes
// negligible." Staged execution runs the whole function as one compiled
// unit: per-node costs shrink by the fusion discount and no per-op dispatch
// is charged. Constants are calibrated against Table 1 (see EXPERIMENTS.md).
std::unique_ptr<Device> MakeSimTpuDevice(int index, bool executes_kernels,
                                         const std::string& job, int task) {
  DeviceNameParts name;
  name.job = job;
  name.task = task;
  name.kind = DeviceKind::kTpu;
  name.index = index;
  DeviceCostParams params;
  params.flops_per_second = 4.5e13;   // TPUv2-class peak
  params.bytes_per_second = 6.0e11;
  params.efficiency = 0.10;           // un-tuned ResNet (paper's caveat)
  params.kernel_launch_ns = 2'000;
  params.executor_node_ns = 1'000;
  params.eager_dispatch_ns = 500'000;    // per-op host<->TPU round trip
  params.per_op_compile_ns = 30'000'000; // first-use per-op XLA compile
  params.fused_discount = 0.35;          // whole-graph XLA fusion gain
  params.compiled_call_overhead_ns = 40'000'000;  // step launch + infeed
  return std::make_unique<Device>(name, params, executes_kernels,
                                  /*synchronous=*/true);
}

}  // namespace tfe
