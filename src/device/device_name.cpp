#include "device/device_name.h"

#include <algorithm>

#include "support/strings.h"

namespace tfe {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpu:
      return "CPU";
    case DeviceKind::kGpu:
      return "GPU";
    case DeviceKind::kTpu:
      return "TPU";
  }
  return "?";
}

StatusOr<DeviceKind> DeviceKindFromName(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
  if (upper == "CPU") return DeviceKind::kCpu;
  if (upper == "GPU") return DeviceKind::kGpu;
  if (upper == "TPU") return DeviceKind::kTpu;
  return InvalidArgument("Unknown device kind: " + name);
}

std::string DeviceNameParts::ToString() const {
  return strings::StrCat("/job:", job, "/task:", task,
                         "/device:", DeviceKindName(kind), ":", index);
}

StatusOr<DeviceNameParts> ParseDeviceName(const std::string& name) {
  if (name.empty()) return InvalidArgument("Empty device name");
  DeviceNameParts parts;

  // Strip a leading '/', then split on '/'.
  std::string text = name[0] == '/' ? name.substr(1) : name;
  for (const std::string& piece : strings::Split(text, '/')) {
    if (piece.empty()) continue;
    std::vector<std::string> fields = strings::Split(piece, ':');
    const std::string& head = fields[0];
    if (head == "job") {
      if (fields.size() != 2 || fields[1].empty()) {
        return InvalidArgument("Malformed job field in device name: " + name);
      }
      parts.job = fields[1];
    } else if (head == "task") {
      if (fields.size() != 2) {
        return InvalidArgument("Malformed task field in device name: " + name);
      }
      int64_t task = strings::ParseNonNegativeInt(fields[1]);
      if (task < 0) {
        return InvalidArgument("Malformed task index in device name: " + name);
      }
      parts.task = static_cast<int>(task);
    } else {
      // "device:GPU:1", "GPU:1", "gpu", "device:CPU".
      size_t kind_field = head == "device" ? 1 : 0;
      if (fields.size() <= kind_field) {
        return InvalidArgument("Malformed device field: " + name);
      }
      TFE_ASSIGN_OR_RETURN(parts.kind, DeviceKindFromName(fields[kind_field]));
      if (fields.size() > kind_field + 1) {
        int64_t index = strings::ParseNonNegativeInt(fields[kind_field + 1]);
        if (index < 0) {
          return InvalidArgument("Malformed device index: " + name);
        }
        parts.index = static_cast<int>(index);
      }
      if (fields.size() > kind_field + 2) {
        return InvalidArgument("Malformed device field: " + name);
      }
    }
  }
  return parts;
}

}  // namespace tfe
