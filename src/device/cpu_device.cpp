#include "device/device.h"

namespace tfe {

// The host CPU always executes real kernels synchronously. Its cost params
// are only used when a benchmark asks for virtual-time accounting of CPU
// kernels; by default CPU kernel time is *measured*, not modelled (the
// dispatcher records wall time into the timeline).
std::unique_ptr<Device> MakeCpuDevice(DeviceNameParts name) {
  name.kind = DeviceKind::kCpu;
  DeviceCostParams params;
  // Xeon W-2135-class single socket (the paper's testbed host): ~0.5 TFLOPs
  // achievable fp32, ~60 GB/s.
  params.flops_per_second = 5e11;
  params.bytes_per_second = 6e10;
  params.efficiency = 0.5;
  params.kernel_launch_ns = 500;  // C++ kernel call + allocator
  params.executor_node_ns = 700;  // staged per-node scheduling cost
  return std::make_unique<Device>(name, params, /*executes_kernels=*/true,
                                  /*synchronous=*/true);
}

}  // namespace tfe
