#include "device/device_manager.h"

#include "support/strings.h"

namespace tfe {

StatusOr<Device*> DeviceManager::AddDevice(std::unique_ptr<Device> device) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& existing : devices_) {
    if (existing->name() == device->name()) {
      return AlreadyExists("Device already registered: " + device->name());
    }
  }
  devices_.push_back(std::move(device));
  return devices_.back().get();
}

StatusOr<Device*> DeviceManager::FindDevice(const std::string& name) const {
  TFE_ASSIGN_OR_RETURN(DeviceNameParts parts, ParseDeviceName(name));
  return FindDevice(parts);
}

StatusOr<Device*> DeviceManager::FindDevice(
    const DeviceNameParts& parts) const {
  std::lock_guard<std::mutex> lock(mu_);
  DeviceNameParts lookup = parts;
  if (!self_job_.empty() && lookup.job == self_job_ &&
      lookup.task == self_task_) {
    // A name addressed to this runtime's own cluster identity is local.
    lookup.job = "localhost";
    lookup.task = 0;
  }
  for (const auto& device : devices_) {
    if (device->name_parts() == lookup) return device.get();
  }
  return NotFound("No device named " + parts.ToString());
}

void DeviceManager::SetSelfIdentity(std::string job, int task) {
  std::lock_guard<std::mutex> lock(mu_);
  self_job_ = std::move(job);
  self_task_ = task;
}

std::vector<Device*> DeviceManager::ListDevices() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Device*> result;
  result.reserve(devices_.size());
  for (const auto& device : devices_) result.push_back(device.get());
  return result;
}

StatusOr<Device*> DeviceManager::FirstDeviceOfKind(DeviceKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& device : devices_) {
    if (device->kind() == kind && device->name_parts().job == "localhost") {
      return device.get();
    }
  }
  return NotFound(strings::StrCat("No local device of kind ",
                                  DeviceKindName(kind)));
}

Device* DeviceManager::HostCpu() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& device : devices_) {
    if (device->kind() == DeviceKind::kCpu &&
        device->name_parts().job == "localhost") {
      return device.get();
    }
  }
  return nullptr;
}

}  // namespace tfe
