// Owns every device the runtime knows about and resolves device names.
//
// Paper §4.4: "During program startup, the runtime detects the devices that
// are available to the machine"; §4.5: remote worker servers "add their
// locally available devices to the pool of devices available to the main
// program". Both paths land here.
#ifndef TFE_DEVICE_DEVICE_MANAGER_H_
#define TFE_DEVICE_DEVICE_MANAGER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "device/device.h"
#include "support/status.h"

namespace tfe {

class DeviceManager {
 public:
  DeviceManager() = default;

  DeviceManager(const DeviceManager&) = delete;
  DeviceManager& operator=(const DeviceManager&) = delete;

  // Registers a device; fails if a device with the same canonical name
  // already exists. Returns the stable pointer.
  StatusOr<Device*> AddDevice(std::unique_ptr<Device> device);

  // Looks up by any accepted name form ("/gpu:0", full canonical name, ...).
  StatusOr<Device*> FindDevice(const std::string& name) const;
  StatusOr<Device*> FindDevice(const DeviceNameParts& parts) const;

  // This runtime's own address in a cluster ("/job:worker/task:1"). Names
  // addressed to the identity resolve to the local devices: a worker
  // executing a shipped graph whose nodes were staged under the worker's
  // full remote name places them locally instead of failing the lookup.
  void SetSelfIdentity(std::string job, int task);

  // All devices, in registration order (paper §4.4: `list_devices`).
  std::vector<Device*> ListDevices() const;

  // First local device of `kind`, or error.
  StatusOr<Device*> FirstDeviceOfKind(DeviceKind kind) const;

  // The host CPU device (always present after EagerContext construction).
  Device* HostCpu() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::string self_job_;
  int self_task_ = -1;
};

}  // namespace tfe

#endif  // TFE_DEVICE_DEVICE_MANAGER_H_
