#include "device/device.h"

namespace tfe {

Device::Device(DeviceNameParts name, DeviceCostParams cost_params,
               bool executes_kernels, bool synchronous)
    : name_parts_(name),
      canonical_name_(name.ToString()),
      cost_params_(cost_params),
      executes_kernels_(executes_kernels),
      synchronous_(synchronous),
      timeline_(canonical_name_),
      allocator_(MakeAllocator(DefaultAllocatorKind(), canonical_name_)) {}

uint64_t Device::CompileCostNs(const std::string& signature) {
  if (cost_params_.per_op_compile_ns == 0) return 0;
  std::lock_guard<std::mutex> lock(compile_mu_);
  if (compile_cache_.insert(signature).second) {
    return cost_params_.per_op_compile_ns;
  }
  return 0;
}

void Device::ResetSimulation() { timeline_.Reset(); }

void Device::ResetCompileCache() {
  std::lock_guard<std::mutex> lock(compile_mu_);
  compile_cache_.clear();
}

}  // namespace tfe
