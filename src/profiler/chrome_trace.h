// Chrome trace_event JSON serialization for collected profiler events.
// The output loads in chrome://tracing and ui.perfetto.dev: span kinds
// become "X" (complete) events, instant kinds become "i" events, and each
// thread gets an "M" thread_name metadata record.
#ifndef TFE_PROFILER_CHROME_TRACE_H_
#define TFE_PROFILER_CHROME_TRACE_H_

#include <map>
#include <string>
#include <vector>

#include "profiler/profiler.h"
#include "support/status.h"

namespace tfe {
namespace profiler {

// Renders the events as a Chrome trace_event JSON document. Timestamps are
// re-based so the earliest event starts at ts=0.
std::string ChromeTraceJson(const std::vector<CollectedEvent>& events,
                            const std::map<uint32_t, std::string>& thread_names);

// ChromeTraceJson, written to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<CollectedEvent>& events,
                        const std::map<uint32_t, std::string>& thread_names);

}  // namespace profiler
}  // namespace tfe

#endif  // TFE_PROFILER_CHROME_TRACE_H_
