#include "profiler/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "profiler/chrome_trace.h"

namespace tfe {
namespace profiler {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

// Events each thread can buffer between flushes. Power of two; at ~40 bytes
// per event a full buffer is ~2.6 MB. Overflow drops (and counts) rather
// than overwriting, so a concurrent flush never races a wrapping writer.
constexpr uint64_t kBufferCapacity = uint64_t{1} << 16;

// Single-producer (owning thread) / single-consumer (Collect, serialized by
// the registry lock) ring. head_ and tail_ are monotonically increasing;
// slot index is value % capacity. TSan-clean: the writer publishes a slot
// with a release store of head_, the reader acquires head_ before touching
// slots and releases tail_ after, which the writer acquires before reuse.
struct ThreadBuffer {
  std::vector<Event> slots{std::vector<Event>(kBufferCapacity)};
  std::atomic<uint64_t> head{0};  // next slot the writer fills
  std::atomic<uint64_t> tail{0};  // next slot the reader drains
  std::atomic<uint64_t> dropped{0};
  uint32_t tid = 0;
  std::string thread_name;
};

class BufferRegistry {
 public:
  static BufferRegistry& Get() {
    // Leaked singleton: threads may record during process teardown.
    static BufferRegistry* registry = new BufferRegistry();
    return *registry;
  }

  ThreadBuffer* RegisterCurrentThread() {
    auto buffer = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = buffer.get();
#if defined(__linux__)
    char name[64] = {0};
    if (pthread_getname_np(pthread_self(), name, sizeof(name)) == 0 &&
        name[0] != '\0') {
      raw->thread_name = name;
    }
#endif
    std::lock_guard<std::mutex> lock(mu_);
    raw->tid = static_cast<uint32_t>(buffers_.size()) + 1;
    if (raw->thread_name.empty()) {
      raw->thread_name = "thread-" + std::to_string(raw->tid);
    }
    buffers_.push_back(std::move(buffer));
    return raw;
  }

  std::vector<CollectedEvent> Collect() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<CollectedEvent> events;
    for (const auto& buffer : buffers_) {
      const uint64_t tail = buffer->tail.load(std::memory_order_relaxed);
      const uint64_t head = buffer->head.load(std::memory_order_acquire);
      for (uint64_t i = tail; i < head; ++i) {
        events.push_back({buffer->slots[i % kBufferCapacity], buffer->tid});
      }
      buffer->tail.store(head, std::memory_order_release);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const CollectedEvent& a, const CollectedEvent& b) {
                       return a.event.start_ns < b.event.start_ns;
                     });
    return events;
  }

  std::map<uint32_t, std::string> ThreadNames() {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<uint32_t, std::string> names;
    for (const auto& buffer : buffers_) {
      names.emplace(buffer->tid, buffer->thread_name);
    }
    return names;
  }

  uint64_t Dropped() {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& buffer : buffers_) {
      total += buffer->dropped.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  // Guards registration and flushing (flushes are serialized; recording is
  // lock-free against both).
  std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer* LocalBuffer() {
  if (t_buffer == nullptr) {
    t_buffer = BufferRegistry::Get().RegisterCurrentThread();
  }
  return t_buffer;
}

// Leaked string interner; ids are indices into strings_.
class Interner {
 public:
  static Interner& Get() {
    static Interner* interner = new Interner();
    return *interner;
  }

  uint32_t Intern(std::string_view s) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    strings_.push_back(std::make_unique<std::string>(s));
    const uint32_t id = static_cast<uint32_t>(strings_.size());  // 0 = none
    ids_.emplace(*strings_.back(), id);
    return id;
  }

  const std::string& Lookup(uint32_t id) {
    static const std::string empty;
    std::lock_guard<std::mutex> lock(mu_);
    if (id == 0 || id > strings_.size()) return empty;
    return *strings_[id - 1];
  }

 private:
  std::mutex mu_;
  // unique_ptr gives every string a stable address for the view keys below.
  std::vector<std::unique_ptr<std::string>> strings_;
  std::unordered_map<std::string_view, uint32_t> ids_;
};

std::string* g_export_path = nullptr;

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kDispatch: return "dispatch";
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kQueueDrain: return "queue_drain";
    case EventKind::kFusionRun: return "fusion_run";
    case EventKind::kKernel: return "kernel";
    case EventKind::kTraceCacheHit: return "trace_cache_hit";
    case EventKind::kTraceCacheMiss: return "trace_cache_miss";
    case EventKind::kTraceStage: return "trace";
    case EventKind::kVariableOp: return "variable_op";
    case EventKind::kRpcSend: return "rpc_send";
    case EventKind::kRpcRecv: return "rpc_recv";
    case EventKind::kExecutorRun: return "executor_run";
    case EventKind::kRemoteEnqueue: return "remote_enqueue";
    case EventKind::kRemoteResolve: return "remote_resolve";
    case EventKind::kAllocator: return "allocator";
    case EventKind::kServing: return "serving";
    case EventKind::kLoop: return "loop";
  }
  return "unknown";
}

bool EventKindIsSpan(EventKind kind) {
  switch (kind) {
    case EventKind::kDispatch:
    case EventKind::kQueueDrain:
    case EventKind::kKernel:
    case EventKind::kTraceStage:
    case EventKind::kRpcSend:
    case EventKind::kRpcRecv:
    case EventKind::kExecutorRun:
    case EventKind::kRemoteEnqueue:
    case EventKind::kRemoteResolve:
      return true;
    default:
      return false;
  }
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t Intern(std::string_view s) { return Interner::Get().Intern(s); }

const std::string& InternedString(uint32_t id) {
  return Interner::Get().Lookup(id);
}

void Start() {
  // Touch the leaked singletons before anyone can race a first Record.
  BufferRegistry::Get();
  Interner::Get();
  internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Stop() { internal::g_enabled.store(false, std::memory_order_relaxed); }

void Record(const Event& event) {
  if (!enabled()) return;
  ThreadBuffer* buffer = LocalBuffer();
  const uint64_t head = buffer->head.load(std::memory_order_relaxed);
  const uint64_t tail = buffer->tail.load(std::memory_order_acquire);
  if (head - tail >= kBufferCapacity) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->slots[head % kBufferCapacity] = event;
  buffer->head.store(head + 1, std::memory_order_release);
}

void RecordInstant(EventKind kind, uint32_t name, int64_t arg,
                   uint32_t detail) {
  if (!enabled()) return;
  Event event;
  event.kind = kind;
  event.name = name;
  event.arg = arg;
  event.detail = detail;
  event.start_ns = NowNs();
  Record(event);
}

std::vector<CollectedEvent> Collect() { return BufferRegistry::Get().Collect(); }

std::map<uint32_t, std::string> ThreadNames() {
  return BufferRegistry::Get().ThreadNames();
}

uint64_t DroppedEvents() { return BufferRegistry::Get().Dropped(); }

Status ExportChromeTrace(const std::string& path) {
  return WriteChromeTrace(path, Collect(), ThreadNames());
}

MetricsRegistry& Metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void InitFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("TFE_PROFILE");
    if (path == nullptr || path[0] == '\0') return;
    Start();
    g_export_path = new std::string(path);
    std::atexit([] {
      Status status = ExportChromeTrace(*g_export_path);
      if (status.ok()) {
        std::fprintf(stderr, "profiler: wrote %s\n", g_export_path->c_str());
      } else {
        std::fprintf(stderr, "profiler: export failed: %s\n",
                     status.ToString().c_str());
      }
    });
  });
}

}  // namespace profiler
}  // namespace tfe
