// MetricsRegistry: named counters, gauges, and histograms for the runtime
// observability subsystem (the numeric half of src/profiler/; the event half
// lives in profiler.h).
//
// Metric objects are allocated once per name and never move or die, so hot
// paths look a metric up once (constructor or function-local static) and
// afterwards touch only its atomics — an increment is one relaxed RMW.
// Snapshot() and Reset() may run concurrently with updates; they see values
// that are individually (not mutually) consistent, which is all a monitoring
// surface needs.
#ifndef TFE_PROFILER_METRICS_H_
#define TFE_PROFILER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tfe {
namespace profiler {

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A last-write-wins signed value (queue depth, bytes in flight) that also
// tracks the maximum it ever held since the last Reset.
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    RaiseMax(v);
  }
  void Add(int64_t delta) {
    RaiseMax(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void RaiseMax(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  // (inclusive upper bound, count) for every non-empty bucket, ascending.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Upper-bound estimate of the p-th percentile (p in [0, 100]).
  uint64_t Percentile(double p) const;
};

// Exponential (power-of-two) bucket histogram for non-negative values:
// bucket 0 holds zeros, bucket i holds [2^(i-1), 2^i). Recording is three
// relaxed atomic RMWs plus a CAS max update — cheap enough to leave on.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t v);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Nested JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {"name": {"count":..,"mean":..,"max":..}, ...}}.
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  // Get-or-create by name. Returned pointers are valid for the process
  // lifetime; cache them at instrumentation sites.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  // Zeroes every metric's value; registrations (and cached pointers) stay
  // valid. Benchmarks use this to open a fresh measurement window.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace profiler
}  // namespace tfe

#endif  // TFE_PROFILER_METRICS_H_
