#include "profiler/metrics.h"

#include <bit>
#include <sstream>

namespace tfe {
namespace profiler {

namespace {

// Bucket index for value v: 0 for 0, otherwise 1 + floor(log2(v)), clamped.
int BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  int index = std::bit_width(v);  // v in [2^(w-1), 2^w) -> bucket w
  return index < Histogram::kBuckets ? index : Histogram::kBuckets - 1;
}

// Inclusive upper bound of bucket i (see BucketIndex).
uint64_t BucketUpperBound(int i) {
  if (i == 0) return 0;
  if (i >= 63) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

}  // namespace

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t seen = 0;
  for (const auto& [bound, n] : buckets) {
    seen += n;
    if (static_cast<double>(seen) >= rank) {
      return bound < max ? bound : max;
    }
  }
  return max;
}

void Histogram::Record(uint64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count();
  snapshot.sum = sum();
  snapshot.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) snapshot.buckets.emplace_back(BucketUpperBound(i), n);
  }
  return snapshot;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "" : ",") << "\"" << name << "\":" << value;
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "" : ",") << "\"" << name << "\":" << value;
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "" : ",") << "\"" << name << "\":{\"count\":" << h.count
        << ",\"sum\":" << h.sum << ",\"mean\":" << h.mean()
        << ",\"max\":" << h.max << "}";
    first = false;
  }
  out << "}}";
  return out.str();
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->Snapshot());
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace profiler
}  // namespace tfe
