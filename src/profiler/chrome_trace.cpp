#include "profiler/chrome_trace.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace tfe {
namespace profiler {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// Microseconds with nanosecond precision, the trace_event time unit.
std::string MicrosString(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string ChromeTraceJson(
    const std::vector<CollectedEvent>& events,
    const std::map<uint32_t, std::string>& thread_names) {
  uint64_t base_ns = std::numeric_limits<uint64_t>::max();
  for (const auto& ce : events) {
    if (ce.event.start_ns < base_ns) base_ns = ce.event.start_ns;
  }
  if (events.empty()) base_ns = 0;

  std::string out;
  out.reserve(events.size() * 128 + 256);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : thread_names) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    AppendEscaped(&out, name);
    out += "\"}}";
  }
  for (const auto& ce : events) {
    const Event& e = ce.event;
    if (!first) out += ",";
    first = false;
    const std::string& name = InternedString(e.name);
    out += "{\"ph\":\"";
    out += EventKindIsSpan(e.kind) ? "X" : "i";
    out += "\",\"pid\":1,\"tid\":" + std::to_string(ce.tid) + ",\"ts\":" +
           MicrosString(e.start_ns - base_ns);
    if (EventKindIsSpan(e.kind)) {
      out += ",\"dur\":" + MicrosString(e.dur_ns);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"cat\":\"";
    out += EventKindName(e.kind);
    out += "\",\"name\":\"";
    AppendEscaped(&out, name.empty() ? EventKindName(e.kind) : name);
    out += "\",\"args\":{\"arg\":" + std::to_string(e.arg);
    if (e.detail != 0) {
      out += ",\"detail\":\"";
      AppendEscaped(&out, InternedString(e.detail));
      out += "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<CollectedEvent>& events,
                        const std::map<uint32_t, std::string>& thread_names) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return Unavailable("cannot open trace output file: " + path);
  }
  file << ChromeTraceJson(events, thread_names);
  file.close();
  if (!file) {
    return Unavailable("failed writing trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace profiler
}  // namespace tfe
