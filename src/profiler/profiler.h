// Always-compiled-in, runtime-toggled event profiler for the eager runtime.
//
// Every layer of the runtime — dispatch, the per-device op queues, the drain
// fuser, kernels, the dataflow executor, the staging trace cache, and the
// in-process cluster RPCs — records typed events here. Recording goes into a
// per-thread lock-free single-producer ring buffer (the profiler thread id
// is assigned at first use); a flush (Collect / ExportChromeTrace) is the
// single consumer and may run concurrently with recording. When profiling is
// off the entire record path is one relaxed atomic load.
//
// Exports: Chrome trace_event JSON (chrome://tracing / Perfetto loadable)
// via ExportChromeTrace, and a process-wide MetricsRegistry of counters /
// gauges / histograms via Metrics().
//
// Environment activation: TFE_PROFILE=<path> starts the profiler at the
// first EagerContext construction and writes <path> at process exit.
#ifndef TFE_PROFILER_PROFILER_H_
#define TFE_PROFILER_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "profiler/metrics.h"
#include "support/status.h"

namespace tfe {
namespace profiler {

// Event taxonomy. Kinds marked (span) carry a duration; the rest are
// instants. The Chrome exporter maps kinds to categories one-for-one.
enum class EventKind : uint8_t {
  kDispatch = 0,    // (span) one eager op through Dispatch(), host thread
  kEnqueue,         // op enqueued on a device queue (arg = queue depth)
  kQueueDrain,      // (span) one drain invocation on a pool thread
  kFusionRun,       // fused run formed on the drain (arg = run length)
  kKernel,          // (span) kernel execution (detail = device+shape,
                    //  arg = bytes touched)
  kTraceCacheHit,   // staged-function signature hit the trace cache
  kTraceCacheMiss,  // signature missed; a trace follows
  kTraceStage,      // (span) tracing a function into a graph
  kVariableOp,      // variable read/assign dispatched
  kRpcSend,         // (span) client side of a worker RPC (blocking wait)
  kRpcRecv,         // (span) service-thread execution of a worker request
  kExecutorRun,     // (span) one dataflow executor invocation (arg = nodes)
  kRemoteEnqueue,   // (span) client-side issue of a remote op over the
                    //  pending-handle protocol (detail = op name)
  kRemoteResolve,   // (span) worker completion resolving the client's
                    //  pending handles (detail = op name)
  kAllocator,       // allocator event: a fresh slab pulled from the system
                    //  ("allocator_slab", arg = bytes) or a fused-run buffer
                    //  donation ("buffer_donation", arg = bytes)
  kServing,         // serving-layer event: a cross-request batch executed
                    //  ("batched_run", arg = coalesced calls), a call ran
                    //  unbatched ("unbatched_run"), or a session opened or
                    //  closed ("session_open"/"session_close")
  kLoop,            // staged control-flow event: a While kernel finished a
                    //  loop ("staged_loop", arg = iterations) or its
                    //  gradient finished the reverse replay
                    //  ("staged_loop_grad", arg = iterations)
};

// Stable lowercase name ("dispatch", "kernel", ...) used as the Chrome
// trace category.
const char* EventKindName(EventKind kind);
bool EventKindIsSpan(EventKind kind);

struct Event {
  uint64_t start_ns = 0;  // steady-clock time (NowNs domain)
  uint64_t dur_ns = 0;    // 0 for instant events
  uint32_t name = 0;      // interned string id (Intern)
  uint32_t detail = 0;    // optional secondary label id, 0 = none
  EventKind kind = EventKind::kDispatch;
  int64_t arg = 0;        // kind-specific payload
};

// An event stamped with the profiler thread id that recorded it.
struct CollectedEvent {
  Event event;
  uint32_t tid = 0;
};

namespace internal {
extern std::atomic<bool> g_enabled;
}

// The always-on toggle every record path early-outs on.
inline bool enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

// Steady-clock nanoseconds — the profiler's (wall) clock domain. Distinct
// from the runtime's virtual clock: traces show where real time goes.
uint64_t NowNs();

// Interns a string, returning a dense id stable for the process lifetime.
// Instrumentation sites intern hot names once and reuse the id.
uint32_t Intern(std::string_view s);
const std::string& InternedString(uint32_t id);

// Enables / disables collection. Idempotent. Events recorded before Stop
// stay buffered until the next Collect/Export.
void Start();
void Stop();

// Records one event into the calling thread's ring buffer (drops and counts
// when the buffer is full). No-op when profiling is off.
void Record(const Event& event);
void RecordInstant(EventKind kind, uint32_t name, int64_t arg = 0,
                   uint32_t detail = 0);

// Drains every thread's buffer and merges across threads in start-time
// order. Consecutive calls return disjoint batches; collection keeps
// running. Safe to call concurrently with recording (never with itself).
std::vector<CollectedEvent> Collect();

// Profiler thread id -> OS thread name (best effort), for trace metadata.
std::map<uint32_t, std::string> ThreadNames();

// Events discarded because a thread buffer was full.
uint64_t DroppedEvents();

// Collects everything buffered and writes Chrome trace_event JSON.
Status ExportChromeTrace(const std::string& path);

// The process-wide metrics registry. Counters/gauges stay cheap enough to
// update unconditionally; event-derived histograms update only while
// profiling is on.
MetricsRegistry& Metrics();

// Honors TFE_PROFILE=<path>: starts the profiler and registers an at-exit
// Chrome-trace export. Called by the EagerContext constructor; idempotent.
void InitFromEnv();

// RAII span: snapshots the clock at construction when profiling is on,
// records a complete event at destruction.
class Scope {
 public:
  Scope(EventKind kind, uint32_t name_id) {
    if (!enabled()) return;
    event_.kind = kind;
    event_.name = name_id;
    start_ns_ = NowNs();
  }
  Scope(EventKind kind, std::string_view name)
      : Scope(kind, enabled() ? Intern(name) : 0) {}
  ~Scope() {
    if (start_ns_ == 0) return;
    event_.start_ns = start_ns_;
    event_.dur_ns = NowNs() - start_ns_;
    Record(event_);
  }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  // Whether this scope is live (profiling was on at construction).
  bool active() const { return start_ns_ != 0; }
  uint64_t start_ns() const { return start_ns_; }
  void set_arg(int64_t arg) { event_.arg = arg; }
  void set_detail(uint32_t detail_id) { event_.detail = detail_id; }

 private:
  uint64_t start_ns_ = 0;
  Event event_;
};

}  // namespace profiler
}  // namespace tfe

#endif  // TFE_PROFILER_PROFILER_H_
