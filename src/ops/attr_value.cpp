#include "ops/attr_value.h"

#include "support/strings.h"

namespace tfe {

std::string AttrValue::ToString() const {
  struct Visitor {
    std::string operator()(std::monostate) const { return "<unset>"; }
    std::string operator()(int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const { return strings::StrCat(v); }
    std::string operator()(bool v) const { return v ? "true" : "false"; }
    std::string operator()(const std::string& v) const { return "\"" + v + "\""; }
    std::string operator()(DType v) const { return DTypeName(v); }
    std::string operator()(const Shape& v) const { return v.ToString(); }
    std::string operator()(const std::vector<int64_t>& v) const {
      std::vector<std::string> pieces;
      pieces.reserve(v.size());
      for (int64_t x : v) pieces.push_back(std::to_string(x));
      return "(" + strings::Join(pieces, ",") + ")";
    }
    std::string operator()(const std::shared_ptr<HostFunc>& v) const {
      return strings::StrCat("host_func:", v ? v->name : "<null>");
    }
  };
  return std::visit(Visitor{}, value_);
}

bool AttrValue::operator==(const AttrValue& other) const {
  return value_ == other.value_;
}

std::string AttrMapToString(const AttrMap& attrs) {
  std::vector<std::string> pieces;
  pieces.reserve(attrs.size());
  for (const auto& [name, value] : attrs) {
    pieces.push_back(name + "=" + value.ToString());
  }
  return "{" + strings::Join(pieces, ", ") + "}";
}

}  // namespace tfe
