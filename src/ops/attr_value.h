// Operation attributes.
//
// Attributes parameterize primitive operations (axis of a reduction, strides
// of a convolution, the *name of the graph function* executed by a call op —
// paper §4.1: "graph functions are themselves executed by an operation that
// takes tensors as inputs and a function name as an attribute"). The
// host-callback attribute backs the py_func escape hatch (§4.7); it is the
// one attribute kind that cannot be serialized, exactly as graphs containing
// py_funcs "are not in general serializable".
#ifndef TFE_OPS_ATTR_VALUE_H_
#define TFE_OPS_ATTR_VALUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "support/status.h"
#include "tensor/dtype.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace tfe {

// An imperative host-language callback embedded in a graph (py_func analog).
struct HostFunc {
  std::string name;
  std::function<StatusOr<std::vector<Tensor>>(const std::vector<Tensor>&)> fn;
};

class AttrValue {
 public:
  AttrValue() = default;
  AttrValue(int64_t v) : value_(v) {}                        // NOLINT
  AttrValue(int v) : value_(static_cast<int64_t>(v)) {}      // NOLINT
  AttrValue(double v) : value_(v) {}                         // NOLINT
  AttrValue(bool v) : value_(v) {}                           // NOLINT
  AttrValue(std::string v) : value_(std::move(v)) {}         // NOLINT
  AttrValue(const char* v) : value_(std::string(v)) {}       // NOLINT
  AttrValue(DType v) : value_(v) {}                          // NOLINT
  AttrValue(Shape v) : value_(std::move(v)) {}               // NOLINT
  AttrValue(std::vector<int64_t> v) : value_(std::move(v)) {}           // NOLINT
  AttrValue(std::shared_ptr<HostFunc> v) : value_(std::move(v)) {}      // NOLINT

  bool has_value() const {
    return !std::holds_alternative<std::monostate>(value_);
  }

  template <typename T>
  bool Is() const {
    return std::holds_alternative<T>(value_);
  }

  template <typename T>
  const T& Get() const {
    return std::get<T>(value_);
  }

  // Stable rendering used in trace-cache keys and debug output.
  std::string ToString() const;

  // Host callbacks make an attribute (and the graph holding it)
  // unserializable.
  bool IsSerializable() const {
    return !std::holds_alternative<std::shared_ptr<HostFunc>>(value_);
  }

  bool operator==(const AttrValue& other) const;

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string, DType,
               Shape, std::vector<int64_t>, std::shared_ptr<HostFunc>>
      value_;
};

// Ordered so that iteration (and thus cache-key construction) is
// deterministic.
using AttrMap = std::map<std::string, AttrValue>;

std::string AttrMapToString(const AttrMap& attrs);

}  // namespace tfe

#endif  // TFE_OPS_ATTR_VALUE_H_
