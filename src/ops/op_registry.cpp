#include "ops/op_registry.h"

namespace tfe {

OpRegistry* OpRegistry::Global() {
  static OpRegistry* registry = new OpRegistry();
  return registry;
}

Status OpRegistry::Register(OpDef op_def) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = ops_.emplace(op_def.name, std::move(op_def));
  if (!inserted) {
    return AlreadyExists("Op already registered: " + it->first);
  }
  return Status::OK();
}

StatusOr<const OpDef*> OpRegistry::LookUp(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    return NotFound("Op not registered: " + name);
  }
  return &it->second;
}

bool OpRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_.count(name) > 0;
}

std::vector<std::string> OpRegistry::ListOps() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(ops_.size());
  for (const auto& [name, def] : ops_) names.push_back(name);
  return names;
}

}  // namespace tfe
