#include "ops/shape_inference.h"

namespace tfe {
namespace shape_fn {

Status UnchangedShape(InferenceContext* ctx) {
  if (ctx->num_inputs() < 1) {
    return InvalidArgument("UnchangedShape requires at least one input");
  }
  ctx->AddOutput(ctx->input_dtype(0), ctx->input_shape(0));
  return Status::OK();
}

Status BroadcastBinary(InferenceContext* ctx) {
  if (ctx->num_inputs() != 2) {
    return InvalidArgument("Binary op requires exactly two inputs");
  }
  const Shape& a = ctx->input_shape(0);
  const Shape& b = ctx->input_shape(1);
  if (!a.IsFullyDefined() || !b.IsFullyDefined()) {
    // Partial shapes: broadcast what we can; give up to unknown rank-match.
    if (a.rank() == b.rank()) {
      std::vector<int64_t> dims(a.rank());
      for (int i = 0; i < a.rank(); ++i) {
        int64_t da = a.dims()[i];
        int64_t db = b.dims()[i];
        if (da == db) {
          dims[i] = da;
        } else if (da == kUnknownDim || db == kUnknownDim) {
          dims[i] = kUnknownDim;
        } else if (da == 1) {
          dims[i] = db;
        } else if (db == 1) {
          dims[i] = da;
        } else {
          return InvalidArgument("Shapes " + a.ToString() + " and " +
                                 b.ToString() + " are not broadcastable");
        }
      }
      ctx->AddOutput(ctx->input_dtype(0), Shape(std::move(dims)));
      return Status::OK();
    }
    ctx->AddOutput(ctx->input_dtype(0),
                   a.rank() > b.rank() ? a : b);
    return Status::OK();
  }
  TFE_ASSIGN_OR_RETURN(Shape out, BroadcastShapes(a, b));
  ctx->AddOutput(ctx->input_dtype(0), std::move(out));
  return Status::OK();
}

Status ScalarOfInputDType(InferenceContext* ctx) {
  if (ctx->num_inputs() < 1) {
    return InvalidArgument("Expected at least one input");
  }
  ctx->AddOutput(ctx->input_dtype(0), Shape());
  return Status::OK();
}

}  // namespace shape_fn
}  // namespace tfe
