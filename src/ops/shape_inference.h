// Shape inference.
//
// Every op definition carries a shape function. It serves three masters:
//  1. tracing — symbolic tensors need dtypes/shapes before anything runs
//     (paper §4.1: in a graph-building context "operations return symbolic
//     representations of values to be computed");
//  2. simulation-only devices — output buffers are allocated from inferred
//     shapes when kernels are not executed;
//  3. validation — eager execution checks kernel outputs against inference
//     (exercised by the property tests).
#ifndef TFE_OPS_SHAPE_INFERENCE_H_
#define TFE_OPS_SHAPE_INFERENCE_H_

#include <functional>
#include <string>
#include <vector>

#include "ops/attr_value.h"
#include "support/status.h"
#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace tfe {

// Dtype + (possibly partial) shape of one op input or output.
struct TypeAndShape {
  DType dtype = DType::kInvalid;
  Shape shape;
};

class InferenceContext {
 public:
  InferenceContext(std::vector<TypeAndShape> inputs, const AttrMap* attrs)
      : inputs_(std::move(inputs)), attrs_(attrs) {}

  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  DType input_dtype(int i) const { return inputs_.at(i).dtype; }
  const Shape& input_shape(int i) const { return inputs_.at(i).shape; }

  // Attr access. Missing attrs produce InvalidArgument.
  template <typename T>
  StatusOr<T> GetAttr(const std::string& name) const {
    auto it = attrs_->find(name);
    if (it == attrs_->end()) {
      return InvalidArgument("Missing attr '" + name + "'");
    }
    if (!it->second.Is<T>()) {
      return InvalidArgument("Attr '" + name + "' has unexpected type");
    }
    return it->second.Get<T>();
  }

  template <typename T>
  T GetAttrOr(const std::string& name, T fallback) const {
    auto it = attrs_->find(name);
    if (it == attrs_->end() || !it->second.Is<T>()) return fallback;
    return it->second.Get<T>();
  }

  bool HasAttr(const std::string& name) const {
    return attrs_->find(name) != attrs_->end();
  }

  void AddOutput(DType dtype, Shape shape) {
    outputs_.push_back({dtype, std::move(shape)});
  }

  // Rewrites the dtype of an already-added output (e.g. comparison ops
  // reuse the broadcast shape logic but emit bool).
  void SetOutputDType(int i, DType dtype) { outputs_.at(i).dtype = dtype; }

  const std::vector<TypeAndShape>& outputs() const { return outputs_; }

 private:
  std::vector<TypeAndShape> inputs_;
  const AttrMap* attrs_;
  std::vector<TypeAndShape> outputs_;
};

using ShapeInferenceFn = std::function<Status(InferenceContext*)>;

// Common shape functions, shared across op definitions.
namespace shape_fn {

// All outputs identical to input 0.
Status UnchangedShape(InferenceContext* ctx);
// Broadcasting binary op: output = broadcast(input0, input1), dtype of
// input 0.
Status BroadcastBinary(InferenceContext* ctx);
// Scalar output of the given dtype attr (or input 0 dtype).
Status ScalarOfInputDType(InferenceContext* ctx);

}  // namespace shape_fn

}  // namespace tfe

#endif  // TFE_OPS_SHAPE_INFERENCE_H_
