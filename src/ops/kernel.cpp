#include "ops/kernel.h"

#include "graph/memory_planner.h"
#include "profiler/profiler.h"

namespace tfe {

namespace {

// A tensor whose buffer is directly readable without blocking: concrete,
// value-bearing, and not backed by an async handle (a handle-backed input
// of a shape-only kernel may still be pending; touching its buffer would
// turn an accounting probe into a sync point).
bool PlainConcrete(const Tensor& t) {
  return t.defined() && !t.is_resource() && !t.is_symbolic() &&
         !t.is_opaque() && !t.has_handle();
}

int64_t PayloadBytes(const Tensor& t) {
  return t.num_elements() * static_cast<int64_t>(DTypeSize(t.dtype()));
}

// Payload bytes a kernel actually moved: every concrete input, plus every
// concrete output that did not reuse an input's buffer. A donated in-place
// output (and any other buffer-sharing view) writes bytes already counted
// on the input side — counting it again would report traffic the memory
// system never saw. Elided fused-run temporaries are opaque and never
// counted on either side.
int64_t MovedBytes(const std::vector<Tensor>& inputs,
                   const std::vector<Tensor>& outputs) {
  int64_t bytes = 0;
  for (const Tensor& t : inputs) {
    if (t.defined() && !t.is_resource() && !t.is_symbolic() && !t.is_opaque()) {
      bytes += PayloadBytes(t);
    }
  }
  for (const Tensor& t : outputs) {
    if (!t.defined() || t.is_resource() || t.is_symbolic() || t.is_opaque()) {
      continue;
    }
    bool aliases_input = false;
    if (PlainConcrete(t)) {
      for (const Tensor& in : inputs) {
        if (PlainConcrete(in) && in.buffer().get() == t.buffer().get()) {
          aliases_input = true;
          break;
        }
      }
    }
    if (!aliases_input) bytes += PayloadBytes(t);
  }
  return bytes;
}

// The kernel observability hook (see Register). The op name is interned at
// registration so the hot path never hashes it.
KernelFn WrapKernelForProfiling(const std::string& op_name, KernelFn fn) {
  const uint32_t name_id = profiler::Intern(op_name);
  return [op_name, name_id, fn = std::move(fn)](KernelContext* ctx) -> Status {
    if (!profiler::enabled()) return fn(ctx);
    profiler::Scope span(profiler::EventKind::kKernel, name_id);
    Status status = fn(ctx);
    const int64_t bytes = MovedBytes(ctx->inputs(), ctx->outputs());
    std::string detail = ctx->device()->name();
    if (ctx->num_outputs() > 0 && ctx->outputs()[0].defined() &&
        !ctx->outputs()[0].is_resource()) {
      detail += " " + ctx->outputs()[0].shape().ToString();
    }
    span.set_arg(bytes);
    span.set_detail(profiler::Intern(detail));
    auto& metrics = profiler::Metrics();
    metrics.GetCounter("kernel." + op_name)->Increment();
    // Statics in this lambda are shared across every wrapped kernel — these
    // two metrics are process-wide aggregates, so that is exactly right.
    static profiler::Counter* invocations =
        metrics.GetCounter("kernel.invocations");
    invocations->Increment();
    static profiler::Histogram* duration =
        metrics.GetHistogram("kernel.duration_ns");
    duration->Record(profiler::NowNs() - span.start_ns());
    metrics.GetCounter("device." + ctx->device()->name() + ".bytes_moved")
        ->Increment(static_cast<uint64_t>(bytes));
    return status;
  };
}

}  // namespace

Tensor KernelContext::AllocateOutput(int i, DType dtype, const Shape& shape) {
  if (static_cast<int>(outputs_.size()) <= i) outputs_.resize(i + 1);
  // Under an active memory plan this kernel's output may have a precomputed
  // slab offset (or claim a forwarded block); otherwise allocate normally.
  // Either way the returned storage is zero-ready on this device.
  Tensor planned = memplan::TryPlannedOutput(i, dtype, shape, device_);
  outputs_[i] =
      planned.defined() ? std::move(planned) : Tensor::Empty(dtype, shape, device_);
  return outputs_[i];
}

void KernelContext::SetOutput(int i, Tensor tensor) {
  if (static_cast<int>(outputs_.size()) <= i) outputs_.resize(i + 1);
  outputs_[i] = std::move(tensor);
}

KernelRegistry* KernelRegistry::Global() {
  static KernelRegistry* registry = new KernelRegistry();
  return registry;
}

Status KernelRegistry::Register(const std::string& op_name, KernelFn fn,
                                std::vector<DeviceKind> kinds) {
  fn = WrapKernelForProfiling(op_name, std::move(fn));
  if (kinds.empty()) {
    kinds = {DeviceKind::kCpu, DeviceKind::kGpu, DeviceKind::kTpu};
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& per_kind = kernels_[op_name];
  for (DeviceKind kind : kinds) {
    if (!per_kind.emplace(kind, fn).second) {
      return AlreadyExists("Kernel already registered: " + op_name + " on " +
                           DeviceKindName(kind));
    }
  }
  return Status::OK();
}

StatusOr<const KernelFn*> KernelRegistry::LookUp(const std::string& op_name,
                                                 DeviceKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kernels_.find(op_name);
  if (it == kernels_.end()) {
    return NotFound("No kernel registered for op " + op_name);
  }
  auto kernel_it = it->second.find(kind);
  if (kernel_it == it->second.end()) {
    return NotFound("No " + std::string(DeviceKindName(kind)) +
                    " kernel for op " + op_name);
  }
  return &kernel_it->second;
}

bool KernelRegistry::HasKernel(const std::string& op_name,
                               DeviceKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kernels_.find(op_name);
  return it != kernels_.end() && it->second.count(kind) > 0;
}

}  // namespace tfe
