#include "ops/kernel.h"

namespace tfe {

Tensor KernelContext::AllocateOutput(int i, DType dtype, const Shape& shape) {
  if (static_cast<int>(outputs_.size()) <= i) outputs_.resize(i + 1);
  outputs_[i] = Tensor::Empty(dtype, shape, device_);
  return outputs_[i];
}

void KernelContext::SetOutput(int i, Tensor tensor) {
  if (static_cast<int>(outputs_.size()) <= i) outputs_.resize(i + 1);
  outputs_[i] = std::move(tensor);
}

KernelRegistry* KernelRegistry::Global() {
  static KernelRegistry* registry = new KernelRegistry();
  return registry;
}

Status KernelRegistry::Register(const std::string& op_name, KernelFn fn,
                                std::vector<DeviceKind> kinds) {
  if (kinds.empty()) {
    kinds = {DeviceKind::kCpu, DeviceKind::kGpu, DeviceKind::kTpu};
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& per_kind = kernels_[op_name];
  for (DeviceKind kind : kinds) {
    if (!per_kind.emplace(kind, fn).second) {
      return AlreadyExists("Kernel already registered: " + op_name + " on " +
                           DeviceKindName(kind));
    }
  }
  return Status::OK();
}

StatusOr<const KernelFn*> KernelRegistry::LookUp(const std::string& op_name,
                                                 DeviceKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kernels_.find(op_name);
  if (it == kernels_.end()) {
    return NotFound("No kernel registered for op " + op_name);
  }
  auto kernel_it = it->second.find(kind);
  if (kernel_it == it->second.end()) {
    return NotFound("No " + std::string(DeviceKindName(kind)) +
                    " kernel for op " + op_name);
  }
  return &kernel_it->second;
}

bool KernelRegistry::HasKernel(const std::string& op_name,
                               DeviceKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kernels_.find(op_name);
  return it != kernels_.end() && it->second.count(kind) > 0;
}

}  // namespace tfe
