#include "ops/kernel.h"

#include "profiler/profiler.h"

namespace tfe {

namespace {

// Payload bytes across the concrete (value-bearing) tensors in `tensors`.
int64_t ConcreteBytes(const std::vector<Tensor>& tensors) {
  int64_t bytes = 0;
  for (const Tensor& t : tensors) {
    if (t.defined() && !t.is_resource() && !t.is_symbolic() && !t.is_opaque()) {
      bytes += t.num_elements() * static_cast<int64_t>(DTypeSize(t.dtype()));
    }
  }
  return bytes;
}

// The kernel observability hook (see Register). The op name is interned at
// registration so the hot path never hashes it.
KernelFn WrapKernelForProfiling(const std::string& op_name, KernelFn fn) {
  const uint32_t name_id = profiler::Intern(op_name);
  return [op_name, name_id, fn = std::move(fn)](KernelContext* ctx) -> Status {
    if (!profiler::enabled()) return fn(ctx);
    profiler::Scope span(profiler::EventKind::kKernel, name_id);
    Status status = fn(ctx);
    const int64_t bytes =
        ConcreteBytes(ctx->inputs()) + ConcreteBytes(ctx->outputs());
    std::string detail = ctx->device()->name();
    if (ctx->num_outputs() > 0 && ctx->outputs()[0].defined() &&
        !ctx->outputs()[0].is_resource()) {
      detail += " " + ctx->outputs()[0].shape().ToString();
    }
    span.set_arg(bytes);
    span.set_detail(profiler::Intern(detail));
    auto& metrics = profiler::Metrics();
    metrics.GetCounter("kernel." + op_name)->Increment();
    // Statics in this lambda are shared across every wrapped kernel — these
    // two metrics are process-wide aggregates, so that is exactly right.
    static profiler::Counter* invocations =
        metrics.GetCounter("kernel.invocations");
    invocations->Increment();
    static profiler::Histogram* duration =
        metrics.GetHistogram("kernel.duration_ns");
    duration->Record(profiler::NowNs() - span.start_ns());
    metrics.GetCounter("device." + ctx->device()->name() + ".bytes_moved")
        ->Increment(static_cast<uint64_t>(bytes));
    return status;
  };
}

}  // namespace

Tensor KernelContext::AllocateOutput(int i, DType dtype, const Shape& shape) {
  if (static_cast<int>(outputs_.size()) <= i) outputs_.resize(i + 1);
  outputs_[i] = Tensor::Empty(dtype, shape, device_);
  return outputs_[i];
}

void KernelContext::SetOutput(int i, Tensor tensor) {
  if (static_cast<int>(outputs_.size()) <= i) outputs_.resize(i + 1);
  outputs_[i] = std::move(tensor);
}

KernelRegistry* KernelRegistry::Global() {
  static KernelRegistry* registry = new KernelRegistry();
  return registry;
}

Status KernelRegistry::Register(const std::string& op_name, KernelFn fn,
                                std::vector<DeviceKind> kinds) {
  fn = WrapKernelForProfiling(op_name, std::move(fn));
  if (kinds.empty()) {
    kinds = {DeviceKind::kCpu, DeviceKind::kGpu, DeviceKind::kTpu};
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& per_kind = kernels_[op_name];
  for (DeviceKind kind : kinds) {
    if (!per_kind.emplace(kind, fn).second) {
      return AlreadyExists("Kernel already registered: " + op_name + " on " +
                           DeviceKindName(kind));
    }
  }
  return Status::OK();
}

StatusOr<const KernelFn*> KernelRegistry::LookUp(const std::string& op_name,
                                                 DeviceKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kernels_.find(op_name);
  if (it == kernels_.end()) {
    return NotFound("No kernel registered for op " + op_name);
  }
  auto kernel_it = it->second.find(kind);
  if (kernel_it == it->second.end()) {
    return NotFound("No " + std::string(DeviceKindName(kind)) +
                    " kernel for op " + op_name);
  }
  return &kernel_it->second;
}

bool KernelRegistry::HasKernel(const std::string& op_name,
                               DeviceKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kernels_.find(op_name);
  return it != kernels_.end() && it->second.count(kind) > 0;
}

}  // namespace tfe
