// The op catalog: every primitive operation's OpDef + shape function.
//
// Kernels live in kernels/, gradients in autodiff/gradients.cpp; all three
// are registered together by EnsureOpsRegistered() (kernels/register_all.cpp)
// so the catalog can never be partially wired.
#include <algorithm>
#include <cmath>

#include "kernels/fused_elementwise.h"
#include "ops/op_registry.h"
#include "support/strings.h"

namespace tfe {
namespace {

Status RegisterOrDie(OpDef def) {
  Status status = OpRegistry::Global()->Register(std::move(def));
  TFE_CHECK(status.ok()) << status.ToString();
  return status;
}

// ---- generic shape helpers -------------------------------------------------

// Output spatial extent for conv/pool. `padding` is "SAME" or "VALID".
StatusOr<int64_t> WindowOutputDim(int64_t input, int64_t window,
                                  int64_t stride, const std::string& padding) {
  if (input == kUnknownDim) return kUnknownDim;
  if (stride <= 0) return InvalidArgument("stride must be positive");
  if (padding == "SAME") {
    return (input + stride - 1) / stride;
  }
  if (padding == "VALID") {
    if (window > input) {
      return InvalidArgument(
          strings::StrCat("VALID window ", window, " larger than input ",
                          input));
    }
    return (input - window) / stride + 1;
  }
  return InvalidArgument("Unknown padding: " + padding);
}

Status ReductionShape(InferenceContext* ctx, DType out_dtype) {
  if (ctx->num_inputs() != 1) return InvalidArgument("Expected one input");
  const Shape& in = ctx->input_shape(0);
  std::vector<int64_t> axes =
      ctx->GetAttrOr<std::vector<int64_t>>("axis", {});
  bool keep_dims = ctx->GetAttrOr<bool>("keep_dims", false);
  if (axes.empty()) {  // reduce all
    if (keep_dims) {
      ctx->AddOutput(out_dtype, Shape(std::vector<int64_t>(in.rank(), 1)));
    } else {
      ctx->AddOutput(out_dtype, Shape());
    }
    return Status::OK();
  }
  std::vector<bool> reduced(in.rank(), false);
  for (int64_t axis : axes) {
    if (axis < 0) axis += in.rank();
    if (axis < 0 || axis >= in.rank()) {
      return InvalidArgument(strings::StrCat("Reduction axis ", axis,
                                             " out of range for shape ",
                                             in.ToString()));
    }
    reduced[axis] = true;
  }
  std::vector<int64_t> dims;
  for (int i = 0; i < in.rank(); ++i) {
    if (reduced[i]) {
      if (keep_dims) dims.push_back(1);
    } else {
      dims.push_back(in.dims()[i]);
    }
  }
  ctx->AddOutput(out_dtype, Shape(std::move(dims)));
  return Status::OK();
}

// ---- op-specific shape functions -------------------------------------------

Status MatMulShape(InferenceContext* ctx) {
  if (ctx->num_inputs() != 2) return InvalidArgument("MatMul needs 2 inputs");
  const Shape& a = ctx->input_shape(0);
  const Shape& b = ctx->input_shape(1);
  if (a.rank() != 2 || b.rank() != 2) {
    return InvalidArgument(strings::StrCat("MatMul requires rank-2 inputs, got ",
                                           a.ToString(), " and ", b.ToString()));
  }
  bool ta = ctx->GetAttrOr<bool>("transpose_a", false);
  bool tb = ctx->GetAttrOr<bool>("transpose_b", false);
  int64_t m = a.dims()[ta ? 1 : 0];
  int64_t ka = a.dims()[ta ? 0 : 1];
  int64_t kb = b.dims()[tb ? 1 : 0];
  int64_t n = b.dims()[tb ? 0 : 1];
  if (ka != kUnknownDim && kb != kUnknownDim && ka != kb) {
    return InvalidArgument(strings::StrCat(
        "MatMul inner dimensions mismatch: ", a.ToString(), " x ",
        b.ToString()));
  }
  ctx->AddOutput(ctx->input_dtype(0), Shape({m, n}));
  return Status::OK();
}

Status Conv2DShape(InferenceContext* ctx) {
  // x: [n,h,w,cin]  filter: [kh,kw,cin,cout]  (NHWC, HWIO)
  const Shape& x = ctx->input_shape(0);
  const Shape& f = ctx->input_shape(1);
  if (x.rank() != 4 || f.rank() != 4) {
    return InvalidArgument("Conv2D requires rank-4 input and filter");
  }
  TFE_ASSIGN_OR_RETURN(auto strides,
                       ctx->GetAttr<std::vector<int64_t>>("strides"));
  TFE_ASSIGN_OR_RETURN(auto padding, ctx->GetAttr<std::string>("padding"));
  if (strides.size() != 2) {
    return InvalidArgument("Conv2D strides must be [sh, sw]");
  }
  if (x.dims()[3] != kUnknownDim && f.dims()[2] != kUnknownDim &&
      x.dims()[3] != f.dims()[2]) {
    return InvalidArgument(
        strings::StrCat("Conv2D channel mismatch: input ", x.ToString(),
                        " filter ", f.ToString()));
  }
  TFE_ASSIGN_OR_RETURN(int64_t oh,
                       WindowOutputDim(x.dims()[1], f.dims()[0], strides[0],
                                       padding));
  TFE_ASSIGN_OR_RETURN(int64_t ow,
                       WindowOutputDim(x.dims()[2], f.dims()[1], strides[1],
                                       padding));
  ctx->AddOutput(ctx->input_dtype(0), Shape({x.dims()[0], oh, ow, f.dims()[3]}));
  return Status::OK();
}

Status ShapeFromAttrShape(InferenceContext* ctx, const char* attr) {
  TFE_ASSIGN_OR_RETURN(Shape shape, ctx->GetAttr<Shape>(attr));
  DType dtype = ctx->GetAttrOr<DType>("dtype", DType::kFloat32);
  ctx->AddOutput(dtype, std::move(shape));
  return Status::OK();
}

Status PoolShape(InferenceContext* ctx) {
  const Shape& x = ctx->input_shape(0);
  if (x.rank() != 4) return InvalidArgument("Pooling requires rank-4 input");
  TFE_ASSIGN_OR_RETURN(auto ksize, ctx->GetAttr<std::vector<int64_t>>("ksize"));
  TFE_ASSIGN_OR_RETURN(auto strides,
                       ctx->GetAttr<std::vector<int64_t>>("strides"));
  TFE_ASSIGN_OR_RETURN(auto padding, ctx->GetAttr<std::string>("padding"));
  if (ksize.size() != 2 || strides.size() != 2) {
    return InvalidArgument("Pooling ksize/strides must be [h, w]");
  }
  TFE_ASSIGN_OR_RETURN(
      int64_t oh, WindowOutputDim(x.dims()[1], ksize[0], strides[0], padding));
  TFE_ASSIGN_OR_RETURN(
      int64_t ow, WindowOutputDim(x.dims()[2], ksize[1], strides[1], padding));
  ctx->AddOutput(ctx->input_dtype(0), Shape({x.dims()[0], oh, ow, x.dims()[3]}));
  return Status::OK();
}

Status ReshapeShape(InferenceContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto target,
                       ctx->GetAttr<std::vector<int64_t>>("shape"));
  const Shape& in = ctx->input_shape(0);
  int64_t known_product = 1;
  int infer_index = -1;
  for (size_t i = 0; i < target.size(); ++i) {
    if (target[i] == -1) {
      if (infer_index >= 0) {
        return InvalidArgument("Reshape allows at most one -1 dimension");
      }
      infer_index = static_cast<int>(i);
    } else if (target[i] < 0) {
      return InvalidArgument("Reshape dimensions must be >= -1");
    } else {
      known_product *= target[i];
    }
  }
  if (infer_index >= 0) {
    if (!in.IsFullyDefined()) {
      target[infer_index] = kUnknownDim;
    } else {
      if (known_product == 0 || in.num_elements() % known_product != 0) {
        return InvalidArgument(
            strings::StrCat("Cannot reshape ", in.ToString(), " to ",
                            Shape(target).ToString()));
      }
      target[infer_index] = in.num_elements() / known_product;
    }
  } else if (in.IsFullyDefined() && in.num_elements() != known_product) {
    return InvalidArgument(strings::StrCat("Cannot reshape ", in.ToString(),
                                           " (", in.num_elements(),
                                           " elements) to ",
                                           Shape(target).ToString()));
  }
  ctx->AddOutput(ctx->input_dtype(0), Shape(std::move(target)));
  return Status::OK();
}

Status TransposeShape(InferenceContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto perm, ctx->GetAttr<std::vector<int64_t>>("perm"));
  const Shape& in = ctx->input_shape(0);
  if (static_cast<int>(perm.size()) != in.rank()) {
    return InvalidArgument("Transpose perm rank mismatch");
  }
  std::vector<int64_t> dims(in.rank());
  std::vector<bool> seen(in.rank(), false);
  for (int i = 0; i < in.rank(); ++i) {
    int64_t p = perm[i];
    if (p < 0 || p >= in.rank() || seen[p]) {
      return InvalidArgument("Transpose perm is not a permutation");
    }
    seen[p] = true;
    dims[i] = in.dims()[p];
  }
  ctx->AddOutput(ctx->input_dtype(0), Shape(std::move(dims)));
  return Status::OK();
}

Status ConcatShape(InferenceContext* ctx) {
  if (ctx->num_inputs() < 1) return InvalidArgument("Concat needs inputs");
  TFE_ASSIGN_OR_RETURN(int64_t axis, ctx->GetAttr<int64_t>("axis"));
  Shape out = ctx->input_shape(0);
  if (axis < 0) axis += out.rank();
  if (axis < 0 || axis >= out.rank()) {
    return InvalidArgument("Concat axis out of range");
  }
  int64_t total = out.dims()[axis];
  for (int i = 1; i < ctx->num_inputs(); ++i) {
    const Shape& s = ctx->input_shape(i);
    if (s.rank() != out.rank()) {
      return InvalidArgument("Concat rank mismatch");
    }
    for (int d = 0; d < out.rank(); ++d) {
      if (d == axis) continue;
      if (s.dims()[d] != kUnknownDim && out.dims()[d] != kUnknownDim &&
          s.dims()[d] != out.dims()[d]) {
        return InvalidArgument("Concat non-axis dimension mismatch");
      }
    }
    total = (total == kUnknownDim || s.dims()[axis] == kUnknownDim)
                ? kUnknownDim
                : total + s.dims()[axis];
  }
  out.set_dim(static_cast<int>(axis), total);
  ctx->AddOutput(ctx->input_dtype(0), out);
  return Status::OK();
}

Status SliceShape(InferenceContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto begin, ctx->GetAttr<std::vector<int64_t>>("begin"));
  TFE_ASSIGN_OR_RETURN(auto size, ctx->GetAttr<std::vector<int64_t>>("size"));
  const Shape& in = ctx->input_shape(0);
  if (static_cast<int>(begin.size()) != in.rank() ||
      static_cast<int>(size.size()) != in.rank()) {
    return InvalidArgument("Slice begin/size rank mismatch");
  }
  std::vector<int64_t> dims(in.rank());
  for (int i = 0; i < in.rank(); ++i) {
    int64_t s = size[i];
    if (s == -1) {
      s = in.dims()[i] == kUnknownDim ? kUnknownDim : in.dims()[i] - begin[i];
    }
    if (in.dims()[i] != kUnknownDim && s != kUnknownDim &&
        (begin[i] < 0 || begin[i] + s > in.dims()[i])) {
      return InvalidArgument("Slice out of bounds");
    }
    dims[i] = s;
  }
  ctx->AddOutput(ctx->input_dtype(0), Shape(std::move(dims)));
  return Status::OK();
}

Status PadShape(InferenceContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto paddings,
                       ctx->GetAttr<std::vector<int64_t>>("paddings"));
  const Shape& in = ctx->input_shape(0);
  if (static_cast<int>(paddings.size()) != in.rank() * 2) {
    return InvalidArgument("Pad paddings must have 2 entries per dimension");
  }
  std::vector<int64_t> dims(in.rank());
  for (int i = 0; i < in.rank(); ++i) {
    if (paddings[2 * i] < 0 || paddings[2 * i + 1] < 0) {
      return InvalidArgument("Pad amounts must be non-negative");
    }
    dims[i] = in.dims()[i] == kUnknownDim
                  ? kUnknownDim
                  : in.dims()[i] + paddings[2 * i] + paddings[2 * i + 1];
  }
  ctx->AddOutput(ctx->input_dtype(0), Shape(std::move(dims)));
  return Status::OK();
}

Status TileShape(InferenceContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto multiples,
                       ctx->GetAttr<std::vector<int64_t>>("multiples"));
  const Shape& in = ctx->input_shape(0);
  if (static_cast<int>(multiples.size()) != in.rank()) {
    return InvalidArgument("Tile multiples rank mismatch");
  }
  std::vector<int64_t> dims(in.rank());
  for (int i = 0; i < in.rank(); ++i) {
    if (multiples[i] <= 0) return InvalidArgument("Tile multiples must be > 0");
    dims[i] = in.dims()[i] == kUnknownDim ? kUnknownDim
                                          : in.dims()[i] * multiples[i];
  }
  ctx->AddOutput(ctx->input_dtype(0), Shape(std::move(dims)));
  return Status::OK();
}

Status ExpandDimsShape(InferenceContext* ctx) {
  TFE_ASSIGN_OR_RETURN(int64_t axis, ctx->GetAttr<int64_t>("axis"));
  const Shape& in = ctx->input_shape(0);
  if (axis < 0) axis += in.rank() + 1;
  if (axis < 0 || axis > in.rank()) {
    return InvalidArgument("ExpandDims axis out of range");
  }
  std::vector<int64_t> dims = in.dims();
  dims.insert(dims.begin() + axis, 1);
  ctx->AddOutput(ctx->input_dtype(0), Shape(std::move(dims)));
  return Status::OK();
}

Status SqueezeShape(InferenceContext* ctx) {
  std::vector<int64_t> axes = ctx->GetAttrOr<std::vector<int64_t>>("axis", {});
  const Shape& in = ctx->input_shape(0);
  std::vector<bool> drop(in.rank(), false);
  if (axes.empty()) {
    for (int i = 0; i < in.rank(); ++i) drop[i] = in.dims()[i] == 1;
  } else {
    for (int64_t axis : axes) {
      if (axis < 0) axis += in.rank();
      if (axis < 0 || axis >= in.rank()) {
        return InvalidArgument("Squeeze axis out of range");
      }
      if (in.dims()[axis] != 1 && in.dims()[axis] != kUnknownDim) {
        return InvalidArgument("Squeeze on non-1 dimension");
      }
      drop[axis] = true;
    }
  }
  std::vector<int64_t> dims;
  for (int i = 0; i < in.rank(); ++i) {
    if (!drop[i]) dims.push_back(in.dims()[i]);
  }
  ctx->AddOutput(ctx->input_dtype(0), Shape(std::move(dims)));
  return Status::OK();
}

Status GatherShape(InferenceContext* ctx) {
  const Shape& params = ctx->input_shape(0);
  const Shape& indices = ctx->input_shape(1);
  if (params.rank() < 1) return InvalidArgument("Gather params rank >= 1");
  std::vector<int64_t> dims = indices.dims();
  for (int i = 1; i < params.rank(); ++i) dims.push_back(params.dims()[i]);
  ctx->AddOutput(ctx->input_dtype(0), Shape(std::move(dims)));
  return Status::OK();
}

Status ArgMaxShape(InferenceContext* ctx) {
  TFE_ASSIGN_OR_RETURN(int64_t axis, ctx->GetAttr<int64_t>("axis"));
  const Shape& in = ctx->input_shape(0);
  if (axis < 0) axis += in.rank();
  if (axis < 0 || axis >= in.rank()) {
    return InvalidArgument("ArgMax axis out of range");
  }
  std::vector<int64_t> dims;
  for (int i = 0; i < in.rank(); ++i) {
    if (i != axis) dims.push_back(in.dims()[i]);
  }
  ctx->AddOutput(DType::kInt64, Shape(std::move(dims)));
  return Status::OK();
}

Status SparseXentShape(InferenceContext* ctx) {
  const Shape& logits = ctx->input_shape(0);
  const Shape& labels = ctx->input_shape(1);
  if (logits.rank() != 2 || labels.rank() != 1) {
    return InvalidArgument(
        "SparseSoftmaxCrossEntropyWithLogits: logits [b,c], labels [b]");
  }
  if (logits.dims()[0] != kUnknownDim && labels.dims()[0] != kUnknownDim &&
      logits.dims()[0] != labels.dims()[0]) {
    return InvalidArgument("logits/labels batch mismatch");
  }
  ctx->AddOutput(ctx->input_dtype(0), Shape({logits.dims()[0]}));  // loss
  ctx->AddOutput(ctx->input_dtype(0), logits);                     // backprop
  return Status::OK();
}

Status FusedBatchNormShape(InferenceContext* ctx) {
  // inputs: x [n,h,w,c], scale [c], offset [c], mean [c], variance [c]
  const Shape& x = ctx->input_shape(0);
  if (x.rank() != 4) return InvalidArgument("FusedBatchNorm needs rank-4 x");
  Shape c({x.dims()[3]});
  ctx->AddOutput(ctx->input_dtype(0), x);  // y
  ctx->AddOutput(ctx->input_dtype(0), c);  // batch_mean
  ctx->AddOutput(ctx->input_dtype(0), c);  // batch_variance
  return Status::OK();
}

Status FusedBatchNormGradShape(InferenceContext* ctx) {
  // inputs: dy, x, scale, saved_mean, saved_variance
  const Shape& x = ctx->input_shape(1);
  Shape c({x.rank() == 4 ? x.dims()[3] : kUnknownDim});
  ctx->AddOutput(ctx->input_dtype(0), x);  // dx
  ctx->AddOutput(ctx->input_dtype(0), c);  // dscale
  ctx->AddOutput(ctx->input_dtype(0), c);  // doffset
  return Status::OK();
}

Status CastShape(InferenceContext* ctx) {
  TFE_ASSIGN_OR_RETURN(DType dst, ctx->GetAttr<DType>("dst"));
  ctx->AddOutput(dst, ctx->input_shape(0));
  return Status::OK();
}

Status SelectShape(InferenceContext* ctx) {
  // cond (bool), x, y — all the same shape (no broadcast for simplicity).
  const Shape& x = ctx->input_shape(1);
  if (!ctx->input_shape(0).IsCompatibleWith(x) ||
      !ctx->input_shape(2).IsCompatibleWith(x)) {
    return InvalidArgument("Select requires equal shapes");
  }
  ctx->AddOutput(ctx->input_dtype(1), x);
  return Status::OK();
}

Status ReadVariableShape(InferenceContext* ctx) {
  // dtype/shape recorded as attrs when the read op is constructed.
  TFE_ASSIGN_OR_RETURN(DType dtype, ctx->GetAttr<DType>("dtype"));
  TFE_ASSIGN_OR_RETURN(Shape shape, ctx->GetAttr<Shape>("shape"));
  ctx->AddOutput(dtype, std::move(shape));
  return Status::OK();
}

Status NoOutputs(InferenceContext* ctx) { return Status::OK(); }

// ---- registration ----------------------------------------------------------

struct Registrar {
  Registrar() {
    auto elementwise_binary = [](const char* name) {
      RegisterOrDie({.name = name,
                     .num_inputs = 2,
                     .shape_fn = shape_fn::BroadcastBinary});
    };
    for (const char* name :
         {"Add", "Sub", "Mul", "Div", "Pow", "Maximum", "Minimum",
          "SquaredDifference"}) {
      elementwise_binary(name);
    }

    auto compare = [](const char* name) {
      RegisterOrDie({.name = name,
                     .num_inputs = 2,
                     .differentiable = false,
                     .shape_fn = [](InferenceContext* ctx) {
                       TFE_RETURN_IF_ERROR(shape_fn::BroadcastBinary(ctx));
                       ctx->SetOutputDType(0, DType::kBool);
                       return Status::OK();
                     }});
    };
    for (const char* name : {"Equal", "NotEqual", "Less", "LessEqual",
                             "Greater", "GreaterEqual"}) {
      compare(name);
    }

    auto elementwise_unary = [](const char* name, bool differentiable = true) {
      RegisterOrDie({.name = name,
                     .num_inputs = 1,
                     .differentiable = differentiable,
                     .shape_fn = shape_fn::UnchangedShape});
    };
    for (const char* name :
         {"Neg", "Abs", "Exp", "Log", "Sqrt", "Rsqrt", "Square", "Tanh",
          "Sigmoid", "Relu", "Sin", "Cos", "Reciprocal"}) {
      elementwise_unary(name);
    }
    elementwise_unary("Sign", /*differentiable=*/true);  // grad is zero
    elementwise_unary("Floor", /*differentiable=*/true); // grad is zero
    elementwise_unary("ZerosLike");
    elementwise_unary("OnesLike");
    elementwise_unary("Identity");
    elementwise_unary("StopGradient");
    elementwise_unary("Softmax");
    elementwise_unary("LogSoftmax");

    RegisterOrDie({.name = "Select", .num_inputs = 3, .shape_fn = SelectShape});
    RegisterOrDie({.name = "Cast", .num_inputs = 1, .shape_fn = CastShape});

    RegisterOrDie(
        {.name = "MatMul", .num_inputs = 2, .shape_fn = MatMulShape});
    RegisterOrDie(
        {.name = "Conv2D", .num_inputs = 2, .shape_fn = Conv2DShape});
    RegisterOrDie({.name = "Conv2DBackpropInput",
                   .num_inputs = 2,  // filter, dy (input shape from attr)
                   .shape_fn =
                       [](InferenceContext* ctx) {
                         return ShapeFromAttrShape(ctx, "input_shape");
                       }});
    RegisterOrDie({.name = "Conv2DBackpropFilter",
                   .num_inputs = 2,  // x, dy (filter shape from attr)
                   .shape_fn =
                       [](InferenceContext* ctx) {
                         return ShapeFromAttrShape(ctx, "filter_shape");
                       }});

    for (const char* name : {"MaxPool", "AvgPool"}) {
      RegisterOrDie({.name = name, .num_inputs = 1, .shape_fn = PoolShape});
    }
    RegisterOrDie({.name = "MaxPoolGrad",
                   .num_inputs = 3,  // x, y, dy
                   .shape_fn = shape_fn::UnchangedShape});
    RegisterOrDie({.name = "AvgPoolGrad",
                   .num_inputs = 1,  // dy (input shape from attr)
                   .shape_fn =
                       [](InferenceContext* ctx) {
                         return ShapeFromAttrShape(ctx, "input_shape");
                       }});

    RegisterOrDie({.name = "FusedBatchNorm",
                   .num_inputs = 5,
                   .shape_fn = FusedBatchNormShape});
    RegisterOrDie({.name = "FusedBatchNormGrad",
                   .num_inputs = 5,
                   .shape_fn = FusedBatchNormGradShape});

    for (const char* name : {"Sum", "Mean", "Max", "Min"}) {
      RegisterOrDie({.name = name,
                     .num_inputs = 1,
                     .shape_fn = [](InferenceContext* ctx) {
                       return ReductionShape(ctx, ctx->input_dtype(0));
                     }});
    }
    RegisterOrDie({.name = "ArgMax",
                   .num_inputs = 1,
                   .differentiable = false,
                   .shape_fn = ArgMaxShape});
    RegisterOrDie({.name = "SparseSoftmaxCrossEntropyWithLogits",
                   .num_inputs = 2,
                   .shape_fn = SparseXentShape});

    RegisterOrDie({.name = "Reshape", .num_inputs = 1, .shape_fn = ReshapeShape});
    RegisterOrDie(
        {.name = "Transpose", .num_inputs = 1, .shape_fn = TransposeShape});
    RegisterOrDie({.name = "Concat",
                   .num_inputs = OpDef::kVariadic,
                   .shape_fn = ConcatShape});
    RegisterOrDie({.name = "Slice", .num_inputs = 1, .shape_fn = SliceShape});
    RegisterOrDie({.name = "Pad", .num_inputs = 1, .shape_fn = PadShape});
    RegisterOrDie({.name = "Tile", .num_inputs = 1, .shape_fn = TileShape});
    RegisterOrDie(
        {.name = "ExpandDims", .num_inputs = 1, .shape_fn = ExpandDimsShape});
    RegisterOrDie(
        {.name = "Squeeze", .num_inputs = 1, .shape_fn = SqueezeShape});
    RegisterOrDie({.name = "Gather", .num_inputs = 2, .shape_fn = GatherShape});
    RegisterOrDie({.name = "UnsortedSegmentSum",
                   .num_inputs = 2,  // data, segment_ids
                   .shape_fn = [](InferenceContext* ctx) {
                     TFE_ASSIGN_OR_RETURN(
                         int64_t segments,
                         ctx->GetAttr<int64_t>("num_segments"));
                     const Shape& data = ctx->input_shape(0);
                     if (data.rank() < 1) {
                       return InvalidArgument(
                           "UnsortedSegmentSum data rank >= 1");
                     }
                     std::vector<int64_t> dims = {segments};
                     for (int i = 1; i < data.rank(); ++i) {
                       dims.push_back(data.dims()[i]);
                     }
                     ctx->AddOutput(ctx->input_dtype(0),
                                    Shape(std::move(dims)));
                     return Status::OK();
                   }});

    // Random ops: stateful when seed == 0 (fresh randomness each execution —
    // exactly why tracing them, unlike tracing np.random.randn, preserves
    // semantics; paper §4.1).
    for (const char* name : {"RandomNormal", "RandomUniform"}) {
      RegisterOrDie({.name = name,
                     .num_inputs = 0,
                     .is_stateful = true,
                     .differentiable = false,
                     .shape_fn = [](InferenceContext* ctx) {
                       return ShapeFromAttrShape(ctx, "shape");
                     }});
    }

    // Range: [start, limit) with step delta, from attrs.
    RegisterOrDie({.name = "Range",
                   .num_inputs = 0,
                   .differentiable = false,
                   .shape_fn = [](InferenceContext* ctx) {
                     TFE_ASSIGN_OR_RETURN(double start,
                                          ctx->GetAttr<double>("start"));
                     TFE_ASSIGN_OR_RETURN(double limit,
                                          ctx->GetAttr<double>("limit"));
                     double delta = ctx->GetAttrOr<double>("delta", 1.0);
                     if (delta == 0.0) {
                       return InvalidArgument("Range delta must be nonzero");
                     }
                     double span = (limit - start) / delta;
                     int64_t count = span > 0
                                         ? static_cast<int64_t>(
                                               std::ceil(span))
                                         : 0;
                     ctx->AddOutput(
                         ctx->GetAttrOr<DType>("dtype", DType::kInt64),
                         Shape({count}));
                     return Status::OK();
                   }});

    // Graph-construction pseudo-ops.
    RegisterOrDie({.name = "Arg",
                   .num_inputs = 0,
                   .differentiable = false,
                   .shape_fn = [](InferenceContext* ctx) {
                     return ShapeFromAttrShape(ctx, "shape");
                   }});
    RegisterOrDie({.name = "Const",
                   .num_inputs = 0,
                   .differentiable = false,
                   // Shape comes from the node's constant payload; the
                   // tracer fills outputs directly, so this is unused.
                   .shape_fn = NoOutputs});

    // Variable (resource) ops — stateful by definition (paper §4.3).
    RegisterOrDie({.name = "ReadVariableOp",
                   .num_inputs = 1,
                   .is_stateful = true,
                   .shape_fn = ReadVariableShape});
    for (const char* name :
         {"AssignVariableOp", "AssignAddVariableOp", "AssignSubVariableOp"}) {
      RegisterOrDie({.name = name,
                     .num_inputs = 2,
                     .is_stateful = true,
                     .differentiable = false,
                     .shape_fn = NoOutputs});
    }

    // Checkpoint ops (paper §4.3: save/restore operations).
    RegisterOrDie({.name = "SaveTensor",
                   .num_inputs = 1,
                   .is_stateful = true,
                   .differentiable = false,
                   .shape_fn = NoOutputs});
    RegisterOrDie({.name = "RestoreTensor",
                   .num_inputs = 0,
                   .is_stateful = true,
                   .differentiable = false,
                   .shape_fn = [](InferenceContext* ctx) {
                     TFE_ASSIGN_OR_RETURN(DType dtype,
                                          ctx->GetAttr<DType>("dtype"));
                     TFE_ASSIGN_OR_RETURN(Shape shape,
                                          ctx->GetAttr<Shape>("shape"));
                     ctx->AddOutput(dtype, std::move(shape));
                     return Status::OK();
                   }});

    // Graph-function invocation (paper §4.1: "graph functions are themselves
    // executed by an operation that takes tensors as inputs and a function
    // name as an attribute"). Output dtypes/shapes are resolved against the
    // function library at dispatch time, so the shape_fn is a stub here.
    RegisterOrDie({.name = "Call",
                   .num_inputs = OpDef::kVariadic,
                   .is_stateful = true,
                   .shape_fn = NoOutputs});

    // Imperative escape hatch (paper §4.7). Output signature is carried in
    // attrs (num_outputs + out_dtype_<i>/out_shape_<i>) since the callback
    // is a black box.
    RegisterOrDie({.name = "HostFunc",
                   .num_inputs = OpDef::kVariadic,
                   .is_stateful = true,
                   .shape_fn = [](InferenceContext* ctx) {
                     int64_t count = ctx->GetAttrOr<int64_t>("num_outputs", 0);
                     for (int64_t i = 0; i < count; ++i) {
                       TFE_ASSIGN_OR_RETURN(
                           DType dtype,
                           ctx->GetAttr<DType>(
                               strings::StrCat("out_dtype_", i)));
                       TFE_ASSIGN_OR_RETURN(
                           Shape shape,
                           ctx->GetAttr<Shape>(
                               strings::StrCat("out_shape_", i)));
                       ctx->AddOutput(dtype, std::move(shape));
                     }
                     return Status::OK();
                   }});

    RegisterOrDie({.name = "NoOp",
                   .num_inputs = 0,
                   .is_stateful = true,
                   .differentiable = false,
                   .shape_fn = NoOutputs});

    // A fused run of elementwise/layout/reduction ops interpreting a
    // micro-op program (see kernels/fused_elementwise.h for the encodings).
    // Produced only by the op-queue drain and the FuseElementwise graph
    // pass, never by tracing — autodiff sees the original per-op graph, so
    // no gradient exists.
    RegisterOrDie({.name = "FusedElementwise",
                   .num_inputs = OpDef::kVariadic,
                   .differentiable = false,
                   .shape_fn = [](InferenceContext* ctx) {
                     TFE_ASSIGN_OR_RETURN(
                         auto encoded,
                         ctx->GetAttr<std::vector<int64_t>>("program"));
                     TFE_ASSIGN_OR_RETURN(
                         kernels::MicroProgram program,
                         kernels::MicroProgram::Decode(encoded));
                     if (ctx->num_inputs() == 0) {
                       return InvalidArgument(
                           "FusedElementwise requires inputs");
                     }
                     const DType dtype =
                         ctx->GetAttrOr<DType>("dtype", ctx->input_dtype(0));
                     if (program.extended) {
                       // v2: every output carries its own shape; the
                       // reduction epilogue's output is the extra last one.
                       for (const kernels::MicroOutputSpec& spec :
                            program.output_specs) {
                         ctx->AddOutput(dtype, Shape(spec.shape));
                       }
                       if (program.reduce.kind !=
                           kernels::MicroReduceKind::kNone) {
                         ctx->AddOutput(dtype, Shape(program.reduce.shape));
                       }
                       return Status::OK();
                     }
                     Shape out = ctx->input_shape(0);
                     for (int i = 1; i < ctx->num_inputs(); ++i) {
                       TFE_ASSIGN_OR_RETURN(
                           out, BroadcastShapes(out, ctx->input_shape(i)));
                     }
                     for (size_t o = 0; o < program.outputs.size(); ++o) {
                       ctx->AddOutput(dtype, out);
                     }
                     return Status::OK();
                   }});
  }
};

}  // namespace

void RegisterAllOpDefs() { static Registrar registrar; }

}  // namespace tfe
