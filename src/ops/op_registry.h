#ifndef TFE_OPS_OP_REGISTRY_H_
#define TFE_OPS_OP_REGISTRY_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "ops/op_def.h"
#include "support/status.h"

namespace tfe {

// Process-wide registry of op definitions. Registration happens once at
// startup (kernels/register_all.cpp); lookups are lock-free afterwards in
// practice but guarded for safety.
class OpRegistry {
 public:
  static OpRegistry* Global();

  Status Register(OpDef op_def);
  StatusOr<const OpDef*> LookUp(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> ListOps() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, OpDef> ops_;
};

// Registers the full op set + kernels + gradients exactly once; safe to call
// repeatedly. EagerContext calls this on construction.
void EnsureOpsRegistered();

// Registers only the OpDefs (ops/op_defs.cpp); called by
// EnsureOpsRegistered.
void RegisterAllOpDefs();

}  // namespace tfe

#endif  // TFE_OPS_OP_REGISTRY_H_
