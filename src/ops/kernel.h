// Kernels: device-specific implementations of operations (paper §4
// terminology), and the registry mapping (op, device kind) -> kernel.
//
// All kernels in this reproduction compute on host memory; the simulated
// accelerators reuse the CPU math (device placement still matters — it
// drives transfers, cost accounting, and kernel-availability-based
// placement, as in the paper §4.4).
#ifndef TFE_OPS_KERNEL_H_
#define TFE_OPS_KERNEL_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "device/device.h"
#include "ops/attr_value.h"
#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {

class EagerContext;

class KernelContext {
 public:
  KernelContext(EagerContext* eager_context, Device* device,
                std::vector<Tensor> inputs, const AttrMap* attrs)
      : eager_context_(eager_context),
        device_(device),
        inputs_(std::move(inputs)),
        attrs_(attrs) {}

  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  const Tensor& input(int i) const { return inputs_.at(i); }
  const std::vector<Tensor>& inputs() const { return inputs_; }

  Device* device() const { return device_; }

  // The owning runtime; used by the call kernel (to run a graph function)
  // and the host_func kernel (to execute an imperative callback).
  EagerContext* eager_context() const { return eager_context_; }

  template <typename T>
  StatusOr<T> GetAttr(const std::string& name) const {
    auto it = attrs_->find(name);
    if (it == attrs_->end()) {
      return InvalidArgument("Missing attr '" + name + "'");
    }
    if (!it->second.Is<T>()) {
      return InvalidArgument("Attr '" + name + "' has unexpected type");
    }
    return it->second.Get<T>();
  }

  template <typename T>
  T GetAttrOr(const std::string& name, T fallback) const {
    auto it = attrs_->find(name);
    if (it == attrs_->end() || !it->second.Is<T>()) return fallback;
    return it->second.Get<T>();
  }

  const AttrMap& attrs() const { return *attrs_; }

  // Allocates output `i` (zero-initialized) on this context's device.
  // Returns the handle by value — handles share state, and a reference into
  // outputs_ would be invalidated by the next allocation.
  Tensor AllocateOutput(int i, DType dtype, const Shape& shape);
  // Publishes an existing tensor (e.g. a buffer-sharing view) as output `i`.
  void SetOutput(int i, Tensor tensor);

  int num_outputs() const { return static_cast<int>(outputs_.size()); }
  const std::vector<Tensor>& outputs() const { return outputs_; }
  std::vector<Tensor> ConsumeOutputs() { return std::move(outputs_); }

  // --- virtual-time plumbing for composite kernels (Call) -------------------
  // Virtual time at which this kernel's inputs are ready.
  uint64_t start_ns() const { return start_ns_; }
  void set_start_ns(uint64_t ns) { start_ns_ = ns; }
  // A composite kernel that schedules its own device time (the Call kernel
  // drives the executor) reports its completion here; 0 means "not set" and
  // the caller schedules `device_ns` itself.
  uint64_t completion_ns() const { return completion_ns_; }
  void set_completion_ns(uint64_t ns) { completion_ns_ = ns; }
  // Whether this kernel runs inside a whole-function compilation unit.
  bool compiled() const { return compiled_; }
  void set_compiled(bool compiled) { compiled_ = compiled; }

  // Deterministic Philox stream for seed-0 random ops, assigned at dispatch
  // (program order) or per graph node — never at execution time, so thread
  // interleaving cannot change which stream an op draws from. 0 means
  // unassigned (e.g. constant folding); kernels then fall back to the
  // context's shared stateful stream.
  uint64_t rng_stream() const { return rng_stream_; }
  void set_rng_stream(uint64_t stream) { rng_stream_ = stream; }

 private:
  EagerContext* eager_context_;
  Device* device_;
  std::vector<Tensor> inputs_;
  const AttrMap* attrs_;
  std::vector<Tensor> outputs_;
  uint64_t start_ns_ = 0;
  uint64_t completion_ns_ = 0;
  bool compiled_ = false;
  uint64_t rng_stream_ = 0;
};

using KernelFn = std::function<Status(KernelContext*)>;

class KernelRegistry {
 public:
  static KernelRegistry* Global();

  // Registers `fn` for `op_name` on each kind in `kinds`. An empty `kinds`
  // registers for all device kinds (CPU + simulated GPU/TPU). Every kernel
  // is wrapped with the profiler hook: while profiling is on, each
  // invocation records a kKernel span (device, output shape, bytes touched)
  // and updates the per-op metrics; off, the hook is one relaxed load.
  Status Register(const std::string& op_name, KernelFn fn,
                  std::vector<DeviceKind> kinds = {});

  StatusOr<const KernelFn*> LookUp(const std::string& op_name,
                                   DeviceKind kind) const;
  bool HasKernel(const std::string& op_name, DeviceKind kind) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::map<DeviceKind, KernelFn>> kernels_;
};

}  // namespace tfe

#endif  // TFE_OPS_KERNEL_H_
