// Operation definitions and the process-wide op registry.
//
// An OpDef is the stage-agnostic description of a primitive operation: both
// the imperative dispatcher and the tracer consult the same registry, which
// is what gives TensorFlow Eager its "single set of primitive operations"
// shared across execution modes (paper §1, contribution 1).
#ifndef TFE_OPS_OP_DEF_H_
#define TFE_OPS_OP_DEF_H_

#include <string>

#include "ops/shape_inference.h"

namespace tfe {

struct OpDef {
  std::string name;

  // Number of tensor inputs; kVariadic means determined at call time.
  static constexpr int kVariadic = -1;
  int num_inputs = 0;

  // Stateful ops (variable reads/writes, random with stateful seed,
  // host_func, save/restore) are never pruned, folded, or CSE'd, matching
  // the paper §5: "non-stateful operations that are not reachable from the
  // outputs of a function are pruned".
  bool is_stateful = false;

  // Whether a gradient function may be registered; tapes raise an error when
  // asked to differentiate through a non-differentiable op.
  bool differentiable = true;

  ShapeInferenceFn shape_fn;
};

}  // namespace tfe

#endif  // TFE_OPS_OP_DEF_H_
