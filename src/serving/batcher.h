// Dynamic batcher: the coalescing layer of the serving subsystem.
//
// Concurrent sessions submit staged-function calls; calls that share a
// group key (same Function object, same concrete trace, same input
// signature — so identical shapes, dtypes, resource bindings, and
// non-tensor arguments) are collected into a window and handed to the
// runner as one batch once the window fills (max_batch_size) or the oldest
// call has waited max_queue_delay_us. Calls marked unbatchable bypass the
// window and dispatch immediately as singleton batches, so they pay no
// queueing delay.
//
// The batcher is a pure queueing state machine: it never looks inside a
// call. Execution (concat / run / split / future resolution) lives in the
// runner the owner supplies — see serving.h.
#ifndef TFE_SERVING_BATCHER_H_
#define TFE_SERVING_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ops/attr_value.h"
#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {

class Function;
class GraphFunction;
class TensorHandle;

namespace serving {

class Workspace;

// One staged-function call queued for (possibly batched) execution.
// Everything the runner needs travels with the call; the batcher itself
// only reads group_key / batchable / enqueue_ns.
struct PendingCall {
  int64_t session_id = -1;
  // The staged function and the concrete trace the submitting arguments
  // selected. `fn` must outlive the serving instance (it is re-entered to
  // trace the batched shape).
  Function* fn = nullptr;
  std::shared_ptr<GraphFunction> concrete;
  std::shared_ptr<Workspace> workspace;
  // Explicit arguments exactly as submitted (may be pending futures; the
  // runner materializes them per-call so one poisoned input fails only its
  // own session).
  std::vector<Tensor> args;
  AttrMap non_tensor_args;
  // Pre-created output futures, resolved by the runner.
  std::vector<std::shared_ptr<TensorHandle>> outputs;
  // Philox substream reserved for this call at submit time (satellite: a
  // session's sampled values cannot depend on who else is in the batch).
  uint64_t rng_stream = 0;
  // Leading (example) dimension shared by every tensor argument.
  int64_t rows = 0;
  bool batchable = false;
  std::string group_key;
  uint64_t enqueue_ns = 0;  // profiler::NowNs() at submit
};

class DynamicBatcher {
 public:
  struct Options {
    int max_batch_size = 8;
    int max_queue_delay_us = 200;
  };
  // The runner receives batches whose calls all share one group_key
  // (singletons for unbatchable calls). Runs on the batcher thread.
  using Runner = std::function<void(std::vector<PendingCall>)>;

  DynamicBatcher(Options options, Runner runner);
  ~DynamicBatcher();

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  // Queues a call. Unbatchable calls (or max_batch_size <= 1) dispatch on
  // the next worker wakeup without waiting for the window.
  // FailedPrecondition after Shutdown().
  Status Enqueue(PendingCall call);

  // Stops intake, drains every queued call through the runner (partial
  // windows flush immediately), and joins the worker. Idempotent.
  void Shutdown();

  // Calls currently waiting (not yet handed to the runner).
  int64_t num_pending() const;

  const Options& options() const { return options_; }

 private:
  struct Group {
    std::vector<PendingCall> calls;
    uint64_t oldest_ns = 0;
  };

  void WorkerLoop();
  // Pops the next ready batch under mu_. `force` flushes partial windows.
  bool TakeReadyBatch(std::vector<PendingCall>* batch, bool force);

  const Options options_;
  const Runner runner_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Group> groups_;
  std::deque<PendingCall> immediate_;
  bool shutdown_ = false;
  std::thread worker_;
};

}  // namespace serving
}  // namespace tfe

#endif  // TFE_SERVING_BATCHER_H_
