// Session workspaces: named, thread-safe variable scopes for multi-tenant
// serving (caffe2's Workspace registry is the exemplar: parent/child
// workspaces, shared blobs, thread-safe switch).
//
// A Workspace maps variable names to Variables. Each serving session owns a
// private workspace, optionally chained to a parent: name resolution walks
// local state first and then the parent chain, so shared model weights live
// once in the parent while activations, counters, and any other per-session
// state stay private. Creating a Variable with a name under an active
// WorkspaceScope resolves it against the scope's workspace (state/variable.cpp
// consults Workspace::Current()): a hit re-binds to the existing storage, a
// miss creates fresh storage registered locally. Outside any scope, variable
// creation behaves exactly as before workspaces existed.
//
// Workspaces are reference-counted; removing one from the registry frees its
// variables (and their arena blocks) once the last session reference dies.
#ifndef TFE_SERVING_WORKSPACE_H_
#define TFE_SERVING_WORKSPACE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "state/variable.h"
#include "support/status.h"

namespace tfe {
namespace serving {

class Workspace {
 public:
  Workspace(std::string name, std::shared_ptr<Workspace> parent = nullptr);
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  const std::string& name() const { return name_; }
  const std::shared_ptr<Workspace>& parent() const { return parent_; }

  // Resolves `name` in this workspace, then through the parent chain.
  std::optional<Variable> FindVariable(const std::string& name) const;
  // Local-only lookup (no parent fallthrough).
  std::optional<Variable> FindLocalVariable(const std::string& name) const;
  bool HasVariable(const std::string& name) const {
    return FindVariable(name).has_value();
  }

  // Registers `variable` under `name` in this workspace. Returns
  // AlreadyExists if the name is taken locally.
  Status AddVariable(const std::string& name, Variable variable);

  // Resolve-or-create: a hit (local or parent) of matching dtype/shape binds
  // to the existing storage without touching its value; a mismatched hit is
  // an InvalidArgument; a miss runs `init` and registers the result locally.
  StatusOr<Variable> GetOrCreateVariable(
      const std::string& name, const std::function<Tensor()>& init);

  // Names registered locally (sorted; parents excluded).
  std::vector<std::string> LocalVariableNames() const;
  int64_t num_local_variables() const;

  // Drops every local variable (parents untouched). Storage is freed once
  // outstanding Variable handles die.
  void Clear();

  // The innermost active scope's workspace on this thread, or null when no
  // WorkspaceScope is active (default variable semantics).
  static std::shared_ptr<Workspace> Current();

 private:
  friend class WorkspaceScope;

  const std::string name_;
  const std::shared_ptr<Workspace> parent_;
  mutable std::mutex mu_;
  std::map<std::string, Variable> variables_;
};

// RAII thread-local workspace switch (caffe2's SwitchWorkspace, scoped).
// Nestable; the innermost scope wins. A null workspace clears the scope
// within its extent.
class WorkspaceScope {
 public:
  explicit WorkspaceScope(std::shared_ptr<Workspace> workspace);
  ~WorkspaceScope();

  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;
};

// Process-wide named workspace registry. Thread-safe; names are unique.
class WorkspaceRegistry {
 public:
  static WorkspaceRegistry& Global();

  // Returns the workspace named `name`, creating it (chained to
  // `parent_name`'s workspace when non-empty) if absent. An existing
  // workspace's parent is never re-chained; a nonexistent parent is an
  // InvalidArgument.
  StatusOr<std::shared_ptr<Workspace>> GetOrCreate(
      const std::string& name, const std::string& parent_name = "");
  StatusOr<std::shared_ptr<Workspace>> Get(const std::string& name) const;
  bool Contains(const std::string& name) const;

  // Unregisters `name`; storage is freed when the last reference dies.
  // Returns false if the name was not registered.
  bool Remove(const std::string& name);

  std::vector<std::string> Names() const;  // sorted
  int64_t size() const;

 private:
  WorkspaceRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Workspace>> workspaces_;
};

}  // namespace serving
}  // namespace tfe

#endif  // TFE_SERVING_WORKSPACE_H_
