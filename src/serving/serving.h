// tfe::serving::Serving — the multi-tenant serving front end.
//
// Sessions are the unit of tenancy: each OpenSession() creates a named
// workspace (serving/workspace.h), optionally chained to a shared parent so
// model weights live once while per-session state stays private. Submit()
// stages a function call on behalf of a session and returns pending-tensor
// futures immediately; the dynamic batcher (serving/batcher.h) coalesces
// same-signature calls from concurrent sessions into one execution through
// the async executor, then splits the result back per caller.
//
// The batching contract mirrors TensorFlow Serving's: a batchable inference
// function treats the leading axis of every tensor argument and output as
// an independent example axis. The runtime proves what it can — all tensor
// arguments share the leading dimension, every output carries it, the graph
// contains no batch-unsafe state (writes, host funcs, seed-0 randomness),
// and the batched trace's inferred output shapes are exactly the row-wise
// stack of the single-call shapes; anything that fails a proof runs
// unbatched (still async) or, for dynamic output shapes, synchronously.
//
// Error isolation: a poisoned or invalid input fails only that session's
// futures and is recorded as the session's deferred error (first-wins,
// surfaced and cleared by the next Submit or SessionStatus) — batch-mates
// are unaffected. Determinism: each session draws Philox substreams
// reserved per call at submit time, so sampled values never depend on
// batching or on other tenants.
//
// Environment knobs (read at construction when options are defaulted):
//   TFE_BATCH_MAX      — window size (default 8); 1 disables coalescing.
//   TFE_BATCH_DELAY_US — max queueing delay before a partial window
//                        flushes (default 200).
#ifndef TFE_SERVING_SERVING_H_
#define TFE_SERVING_SERVING_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ops/attr_value.h"
#include "serving/batcher.h"
#include "serving/workspace.h"
#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {

class EagerContext;
class Function;
class GraphFunction;

namespace serving {

using SessionId = int64_t;

struct ServingOptions {
  // <= 0 reads TFE_BATCH_MAX (default 8). 1 disables coalescing.
  int max_batch_size = 0;
  // < 0 reads TFE_BATCH_DELAY_US (default 200).
  int max_queue_delay_us = -1;
  // Name of an existing workspace every session's workspace chains to
  // (shared model weights). Empty: sessions are fully isolated.
  std::string shared_workspace;
  // Base seed for per-session Philox substream derivation. Sessions opened
  // in the same order with the same base draw identical streams.
  uint64_t rng_seed = 0x53455256;  // "SERV"
};

class Serving {
 public:
  explicit Serving(ServingOptions options = {}, EagerContext* ctx = nullptr);
  ~Serving();  // Shutdown() + unregisters remaining session workspaces

  Serving(const Serving&) = delete;
  Serving& operator=(const Serving&) = delete;

  // Opens a session with a private workspace (chained to
  // options.shared_workspace when set). `label` is cosmetic; `rng_seed`
  // overrides the derived per-session seed (0 = derive from the base).
  StatusOr<SessionId> OpenSession(const std::string& label = "",
                                  uint64_t rng_seed = 0);

  // Drains the session's in-flight calls, then unregisters its workspace
  // from the global registry; variable storage (and its arena blocks) is
  // freed when the last reference dies.
  Status CloseSession(SessionId session);

  // Submits a staged-function call for `session`. Returns one tensor per
  // function output: pending futures for asynchronous (possibly batched)
  // execution, concrete tensors when dynamic output shapes force the
  // synchronous fallback. A recorded deferred error for the session is
  // returned (and cleared) instead of submitting. `fn` must outlive this
  // Serving instance.
  StatusOr<std::vector<Tensor>> Submit(SessionId session, Function& fn,
                                       const std::vector<Tensor>& args,
                                       const AttrMap& non_tensor_args = {});

  // Blocks until every tensor resolves; returns the first error (all
  // tensors are still waited on).
  static Status Await(const std::vector<Tensor>& outputs);

  // The session's deferred error, cleared on read (OK if none). NotFound
  // for an unknown session.
  Status SessionStatus(SessionId session);

  // The session's private workspace.
  StatusOr<std::shared_ptr<Workspace>> workspace(SessionId session) const;

  // Stops intake and drains the batcher. Idempotent; sessions stay open
  // (their workspaces remain readable) until CloseSession or destruction.
  void Shutdown();

  int64_t num_sessions() const;
  int64_t num_pending_calls() const { return batcher_->num_pending(); }
  int max_batch_size() const { return batcher_->options().max_batch_size; }
  int max_queue_delay_us() const {
    return batcher_->options().max_queue_delay_us;
  }

 private:
  struct Session {
    SessionId id = -1;
    std::string workspace_name;
    std::shared_ptr<Workspace> workspace;
    uint64_t rng_seed = 0;
    // Guarded by Serving::mu_.
    uint64_t calls_submitted = 0;
    int inflight = 0;
    Status deferred_error;
  };

  // Batch runner (batcher thread): materialize per call, concat, execute,
  // split, resolve futures.
  void RunBatch(std::vector<PendingCall> batch);
  void RunSingle(PendingCall& call);
  void FailCall(PendingCall& call, const Status& status);
  void FinishCall(SessionId session, const Status& status);

  // True when every node of `fn` (recursively through Call) is safe to
  // execute once on behalf of many coalesced calls. Memoized by name.
  bool GraphBatchSafe(const GraphFunction& fn, int depth = 0);

  EagerContext* ctx_;
  ServingOptions options_;
  std::unique_ptr<DynamicBatcher> batcher_;

  mutable std::mutex mu_;
  std::condition_variable drain_cv_;
  bool accepting_ = true;
  SessionId next_session_ = 1;
  std::map<SessionId, std::shared_ptr<Session>> sessions_;
  std::map<std::string, bool> batch_safe_;
  // Groups whose batched trace failed the stacked-output-shape proof; their
  // calls run unbatched from then on.
  std::set<std::string> unbatchable_groups_;
};

}  // namespace serving
}  // namespace tfe

#endif  // TFE_SERVING_SERVING_H_
