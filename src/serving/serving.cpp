#include "serving/serving.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "executor/executor.h"
#include "graph/passes.h"
#include "profiler/profiler.h"
#include "runtime/eager_context.h"
#include "staging/function.h"
#include "staging/signature.h"
#include "support/random.h"
#include "support/strings.h"
#include "tensor/dtype.h"
#include "tensor/tensor_handle.h"

namespace tfe {
namespace serving {

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atoi(value);
}

int NextPow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Cached interned instant names + metric handles (leaked singletons, same
// pattern as the rest of the runtime's instrumentation sites).
struct Telemetry {
  uint32_t batched_run = profiler::Intern("batched_run");
  uint32_t unbatched_run = profiler::Intern("unbatched_run");
  uint32_t session_open = profiler::Intern("session_open");
  uint32_t session_close = profiler::Intern("session_close");
  profiler::Gauge* sessions = profiler::Metrics().GetGauge("serving.sessions");
  profiler::Histogram* batch_size =
      profiler::Metrics().GetHistogram("serving.batch_size");
  profiler::Histogram* queue_delay_us =
      profiler::Metrics().GetHistogram("serving.queue_delay_us");
  profiler::Counter* batches =
      profiler::Metrics().GetCounter("serving.batches");
  profiler::Counter* batched_calls =
      profiler::Metrics().GetCounter("serving.batched_calls");
  profiler::Counter* unbatched_calls =
      profiler::Metrics().GetCounter("serving.unbatched_calls");
  profiler::Counter* call_errors =
      profiler::Metrics().GetCounter("serving.call_errors");
};

Telemetry& Telem() {
  static Telemetry* t = new Telemetry();
  return *t;
}

// Unwraps a resolved pending handle so downstream code sees plain host data.
Status Concretize(Tensor& tensor) {
  TFE_RETURN_IF_ERROR(tensor.Materialize());
  if (const auto& handle = tensor.pending_handle(); handle != nullptr) {
    tensor = handle->tensor();
  }
  return Status::OK();
}

// Executes a concrete graph function directly through the dataflow executor
// — the serving-side twin of the Call kernel (kernels/call_op.cpp): same
// fused execution variant, same inline-when-nested rule, but entered from a
// batcher or submit thread rather than an op queue.
StatusOr<std::vector<Tensor>> RunConcrete(
    EagerContext* ctx, const std::shared_ptr<GraphFunction>& concrete,
    const std::vector<Tensor>& explicit_args, uint64_t rng_stream) {
  std::vector<Tensor> call_inputs;
  call_inputs.reserve(concrete->num_args());
  for (const Tensor& arg : explicit_args) {
    if (!arg.is_resource()) call_inputs.push_back(arg);
  }
  for (const Capture& capture : concrete->captures()) {
    call_inputs.push_back(capture.tensor);
  }
  for (Tensor& input : call_inputs) {
    if (!input.is_resource()) TFE_RETURN_IF_ERROR(Concretize(input));
  }

  ctx->stats().function_calls.fetch_add(1, std::memory_order_relaxed);
  Device* device = ctx->HostCpu();
  std::shared_ptr<GraphFunction> to_run = concrete;
  if (ctx->fuse_elementwise()) {
    auto fused = concrete->GetOrBuildExecutionVariant(
        [&]() -> std::shared_ptr<GraphFunction> {
          auto variant =
              std::make_shared<GraphFunction>(concrete->name() + "__fused_ew");
          if (!CloneGraphFunctionInto(*concrete, *variant).ok()) return nullptr;
          passes::PassStats pstats;
          if (!passes::FuseElementwise(*variant, &pstats).ok()) return nullptr;
          if (pstats.fused_runs == 0) return nullptr;
          return variant;
        });
    if (fused != nullptr) to_run = std::move(fused);
  }

  Executor executor(ctx);
  TFE_ASSIGN_OR_RETURN(
      Executor::Result result,
      executor.Run(*to_run, call_inputs, device, ctx->host_now_ns(),
                   /*compiled=*/false, /*parallel=*/!Executor::InExecutor(),
                   rng_stream));
  ctx->RaiseHostNs(result.finish_ns);
  return std::move(result.outputs);
}

}  // namespace

Serving::Serving(ServingOptions options, EagerContext* ctx)
    : ctx_(ctx != nullptr ? ctx : EagerContext::Global()),
      options_(std::move(options)) {
  DynamicBatcher::Options batcher_options;
  batcher_options.max_batch_size = options_.max_batch_size > 0
                                       ? options_.max_batch_size
                                       : EnvInt("TFE_BATCH_MAX", 8);
  batcher_options.max_queue_delay_us =
      options_.max_queue_delay_us >= 0 ? options_.max_queue_delay_us
                                       : EnvInt("TFE_BATCH_DELAY_US", 200);
  batcher_options.max_batch_size = std::max(1, batcher_options.max_batch_size);
  batcher_options.max_queue_delay_us =
      std::max(0, batcher_options.max_queue_delay_us);
  batcher_ = std::make_unique<DynamicBatcher>(
      batcher_options,
      [this](std::vector<PendingCall> batch) { RunBatch(std::move(batch)); });
}

Serving::~Serving() {
  Shutdown();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, session] : sessions_) {
    WorkspaceRegistry::Global().Remove(session->workspace_name);
    Telem().sessions->Add(-1);
  }
  sessions_.clear();
}

StatusOr<SessionId> Serving::OpenSession(const std::string& label,
                                         uint64_t rng_seed) {
  auto session = std::make_shared<Session>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) {
      return FailedPrecondition("Serving is shut down");
    }
    session->id = next_session_++;
  }
  session->workspace_name = strings::StrCat(
      "serving/", label.empty() ? "session" : label, "_", session->id);
  TFE_ASSIGN_OR_RETURN(session->workspace,
                       WorkspaceRegistry::Global().GetOrCreate(
                           session->workspace_name,
                           options_.shared_workspace));
  // Per-session Philox substream base: deterministic in (base seed, open
  // order), overridable per session so tests can pin exact streams.
  session->rng_seed =
      rng_seed != 0
          ? rng_seed
          : random::SplitMix64(options_.rng_seed +
                       0x9e3779b97f4a7c15ull * static_cast<uint64_t>(
                                                   session->id));
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.emplace(session->id, session);
  }
  Telem().sessions->Add(1);
  profiler::RecordInstant(profiler::EventKind::kServing, Telem().session_open,
                          session->id);
  return session->id;
}

Status Serving::CloseSession(SessionId id) {
  std::shared_ptr<Session> session;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return NotFound(strings::StrCat("No serving session ", id));
    }
    session = it->second;
    drain_cv_.wait(lock, [&] { return session->inflight == 0; });
    sessions_.erase(id);
  }
  WorkspaceRegistry::Global().Remove(session->workspace_name);
  Telem().sessions->Add(-1);
  profiler::RecordInstant(profiler::EventKind::kServing, Telem().session_close,
                          id);
  return Status::OK();
}

Status Serving::SessionStatus(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return NotFound(strings::StrCat("No serving session ", id));
  }
  Status deferred = it->second->deferred_error;
  it->second->deferred_error = Status::OK();
  return deferred;
}

StatusOr<std::shared_ptr<Workspace>> Serving::workspace(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return NotFound(strings::StrCat("No serving session ", id));
  }
  return it->second->workspace;
}

int64_t Serving::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

void Serving::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
  }
  batcher_->Shutdown();
}

Status Serving::Await(const std::vector<Tensor>& outputs) {
  Status result;
  for (const Tensor& tensor : outputs) {
    Status status = tensor.Materialize();
    if (!status.ok() && result.ok()) result = status;
  }
  return result;
}

bool Serving::GraphBatchSafe(const GraphFunction& fn, int depth) {
  if (depth > 16) return false;  // cycle / pathological nesting guard
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = batch_safe_.find(fn.name()); it != batch_safe_.end()) {
      return it->second;
    }
  }
  bool safe = true;
  const Graph& graph = fn.graph();
  for (int i = 0; i < graph.num_nodes() && safe; ++i) {
    const Node& node = graph.node(i);
    if (!node.is_stateful()) continue;
    if (node.op == "ReadVariableOp" || node.op == "NoOp") continue;
    if (node.op == "RandomNormal" || node.op == "RandomUniform") {
      // Explicitly seeded randomness is a pure function of (seed, seed2);
      // seed-0 draws from the session's stream, which a shared batched
      // execution could not honor per-tenant.
      int64_t seed = 0, seed2 = 0;
      if (auto it = node.attrs.find("seed");
          it != node.attrs.end() && it->second.Is<int64_t>()) {
        seed = it->second.Get<int64_t>();
      }
      if (auto it = node.attrs.find("seed2");
          it != node.attrs.end() && it->second.Is<int64_t>()) {
        seed2 = it->second.Get<int64_t>();
      }
      safe = seed != 0 || seed2 != 0;
      continue;
    }
    if (node.op == "Call") {
      auto it = node.attrs.find("function");
      std::string callee_name =
          it != node.attrs.end() && it->second.Is<std::string>()
              ? it->second.Get<std::string>()
              : "";
      auto callee = ctx_->functions().Find(callee_name);
      safe = callee.ok() && GraphBatchSafe(**callee, depth + 1);
      continue;
    }
    // Assign*, HostFunc, Save/Restore, iterators: executing once on behalf
    // of many sessions would change per-session side effects.
    safe = false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  batch_safe_.emplace(fn.name(), safe);
  return safe;
}

StatusOr<std::vector<Tensor>> Serving::Submit(SessionId id, Function& fn,
                                              const std::vector<Tensor>& args,
                                              const AttrMap& non_tensor_args) {
  std::shared_ptr<Session> session;
  uint64_t rng_stream = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) return FailedPrecondition("Serving is shut down");
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return NotFound(strings::StrCat("No serving session ", id));
    }
    session = it->second;
    if (!session->deferred_error.ok()) {
      Status deferred = session->deferred_error;
      session->deferred_error = Status::OK();
      return deferred;
    }
    // Reserve this call's Philox substream now — before any batching
    // decision — so the sampled values of a session depend only on its own
    // submit order, never on batch-mates. Always burned, batched or not,
    // to keep the per-call stream sequence stable either way.
    session->calls_submitted++;
    rng_stream =
        random::SplitMix64(session->rng_seed + session->calls_submitted) | 1ull;
  }

  // Trace (or look up) the concrete function under the session's workspace
  // so named variables resolve against session state.
  StatusOr<std::shared_ptr<GraphFunction>> concrete_or =
      [&]() -> StatusOr<std::shared_ptr<GraphFunction>> {
    try {
      WorkspaceScope scope(session->workspace);
      return fn.GetConcreteFunction(args, non_tensor_args);
    } catch (const RuntimeError& e) {
      return Status(e.code(), e.what());
    }
  }();
  if (!concrete_or.ok()) {
    FinishCall(id, concrete_or.status());
    return concrete_or.status();
  }
  std::shared_ptr<GraphFunction> concrete = std::move(concrete_or).value();

  // Group key: function object + concrete trace + full input signature
  // (shapes, dtypes, resource identities, non-tensor args). Distinct
  // variable bindings or attrs can never coalesce.
  TFE_ASSIGN_OR_RETURN(std::string signature,
                       ComputeSignature(args, non_tensor_args, ""));
  std::string group_key = strings::StrCat(
      reinterpret_cast<uintptr_t>(&fn), "|", concrete->name(), "|", signature);

  // Batchability proof, part one (static, per call): every tensor argument
  // shares a leading example dimension and every output carries it.
  int64_t rows = -1;
  int tensor_args = 0;
  bool batchable = true;
  for (const Tensor& arg : args) {
    if (!arg.defined()) return InvalidArgument("Undefined tensor argument");
    if (arg.is_resource()) continue;
    tensor_args++;
    const Shape& shape = arg.shape();
    if (shape.rank() < 1) {
      batchable = false;
      break;
    }
    if (rows < 0) rows = shape.dim(0);
    if (shape.dim(0) != rows) batchable = false;
  }
  if (tensor_args == 0 || rows <= 0) batchable = false;
  bool outputs_defined = true;
  for (int i = 0; i < concrete->num_outputs(); ++i) {
    const TypeAndShape out = concrete->output_type(i);
    if (!out.shape.IsFullyDefined()) {
      outputs_defined = false;
      batchable = false;
      continue;
    }
    if (out.shape.rank() < 1 || out.shape.dim(0) != rows) batchable = false;
  }

  if (!outputs_defined) {
    // Dynamic output shapes: no future metadata to hand out — run the call
    // synchronously on the submitting thread (still under the session's
    // reserved stream, so determinism holds).
    auto result = RunConcrete(ctx_, concrete, args, rng_stream);
    profiler::RecordInstant(profiler::EventKind::kServing,
                            Telem().unbatched_run, 1);
    Telem().unbatched_calls->Increment();
    Telem().batch_size->Record(1);
    if (!result.ok()) {
      FinishCall(id, result.status());
      return result.status();
    }
    return result;
  }

  if (batchable) {
    batchable = GraphBatchSafe(*concrete);
  }
  if (batchable) {
    std::lock_guard<std::mutex> lock(mu_);
    if (unbatchable_groups_.count(group_key) != 0) batchable = false;
  }

  PendingCall call;
  call.session_id = id;
  call.fn = &fn;
  call.concrete = concrete;
  call.workspace = session->workspace;
  call.args = args;
  call.non_tensor_args = non_tensor_args;
  call.rng_stream = rng_stream;
  call.rows = rows;
  call.batchable = batchable;
  call.group_key = std::move(group_key);
  call.outputs.reserve(concrete->num_outputs());
  std::vector<Tensor> futures;
  futures.reserve(concrete->num_outputs());
  for (int i = 0; i < concrete->num_outputs(); ++i) {
    const TypeAndShape out = concrete->output_type(i);
    auto handle = TensorHandle::Pending(out.dtype, out.shape, ctx_->HostCpu(),
                                        ctx_->host_clock());
    call.outputs.push_back(handle);
    futures.push_back(Tensor::FromHandle(std::move(handle)));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    session->inflight++;
  }
  Status enqueued = batcher_->Enqueue(std::move(call));
  if (!enqueued.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    session->inflight--;
    return enqueued;
  }
  return futures;
}

void Serving::FinishCall(SessionId id, const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session& session = *it->second;
  if (!status.ok()) {
    Telem().call_errors->Increment();
    // First-wins, like the context's deferred async error.
    if (session.deferred_error.ok()) session.deferred_error = status;
  }
  if (session.inflight > 0) {
    session.inflight--;
    if (session.inflight == 0) drain_cv_.notify_all();
  }
}

void Serving::FailCall(PendingCall& call, const Status& status) {
  // Outputs resolved before the failure (earlier splits of the same call)
  // keep their values; the rest poison. Resolution is single-producer
  // (this batcher thread), so resolved() cannot race.
  for (const auto& handle : call.outputs) {
    if (!handle->resolved()) handle->SetError(status);
  }
  FinishCall(call.session_id, status);
}

void Serving::RunSingle(PendingCall& call) {
  auto result = RunConcrete(ctx_, call.concrete, call.args, call.rng_stream);
  profiler::RecordInstant(profiler::EventKind::kServing, Telem().unbatched_run,
                          1);
  Telem().unbatched_calls->Increment();
  Telem().batch_size->Record(1);
  Telem().queue_delay_us->Record((profiler::NowNs() - call.enqueue_ns) / 1000);
  if (!result.ok()) {
    FailCall(call, result.status());
    return;
  }
  std::vector<Tensor> outputs = std::move(result).value();
  const uint64_t ready_ns = ctx_->host_now_ns();
  for (size_t i = 0; i < call.outputs.size(); ++i) {
    Tensor value = outputs.at(i);
    if (Status st = Concretize(value); !st.ok()) {
      FailCall(call, st);
      return;
    }
    call.outputs[i]->SetTensor(std::move(value), ready_ns);
  }
  FinishCall(call.session_id, Status::OK());
}

void Serving::RunBatch(std::vector<PendingCall> batch) {
  // Per-call argument materialization: a poisoned future or invalid input
  // fails only its own session's futures; batch-mates proceed.
  std::vector<PendingCall> live;
  live.reserve(batch.size());
  for (PendingCall& call : batch) {
    Status status;
    for (Tensor& arg : call.args) {
      if (arg.is_resource()) continue;
      status = Concretize(arg);
      if (!status.ok()) break;
    }
    if (!status.ok()) {
      FailCall(call, status);
    } else {
      live.push_back(std::move(call));
    }
  }
  if (live.empty()) return;
  if (live.size() == 1 || !live[0].batchable) {
    for (PendingCall& call : live) RunSingle(call);
    return;
  }

  // --- Coalesced execution -------------------------------------------------
  const int k = static_cast<int>(live.size());
  const int64_t rows = live[0].rows;
  // Pad the call count to a power of two so the trace cache sees at most
  // log2(max_batch) batched shapes per group.
  const int bucket = NextPow2(k);
  PendingCall& lead = live[0];

  // Stack every tensor argument along the leading axis (row-major tensors:
  // one contiguous memcpy per member), zero-filling the padding rows.
  std::vector<Tensor> batched_args;
  batched_args.reserve(lead.args.size());
  for (size_t j = 0; j < lead.args.size(); ++j) {
    const Tensor& proto = lead.args[j];
    if (proto.is_resource()) {
      batched_args.push_back(proto);
      continue;
    }
    Shape shape = proto.shape();
    shape.set_dim(0, rows * bucket);
    Tensor stacked = Tensor::Empty(proto.dtype(), shape, ctx_->HostCpu());
    const size_t member_bytes =
        static_cast<size_t>(proto.num_elements()) * DTypeSize(proto.dtype());
    char* dst = static_cast<char*>(stacked.raw_mutable_data());
    for (int m = 0; m < k; ++m) {
      std::memcpy(dst + static_cast<size_t>(m) * member_bytes,
                  live[m].args[j].raw_data(), member_bytes);
    }
    std::memset(dst + static_cast<size_t>(k) * member_bytes, 0,
                static_cast<size_t>(bucket - k) * member_bytes);
    batched_args.push_back(std::move(stacked));
  }

  // Trace (or fetch) the batched-shape concrete function. Members share one
  // concrete trace and signature, so their workspaces agree on every name
  // the function resolves; the lead's scope stands in for all of them.
  StatusOr<std::shared_ptr<GraphFunction>> batched_or =
      [&]() -> StatusOr<std::shared_ptr<GraphFunction>> {
    try {
      WorkspaceScope scope(lead.workspace);
      return lead.fn->GetConcreteFunction(batched_args, lead.non_tensor_args);
    } catch (const RuntimeError& e) {
      return Status(e.code(), e.what());
    }
  }();
  if (!batched_or.ok()) {
    for (PendingCall& call : live) FailCall(call, batched_or.status());
    return;
  }
  std::shared_ptr<GraphFunction> batched = std::move(batched_or).value();

  // Batchability proof, part two (static, per group): the batched trace's
  // output shapes must be exactly the row-wise stack of the single-call
  // shapes. Anything else (an output mixing examples — x @ xᵀ, a cross-row
  // reduction that kept rank) disqualifies the group permanently and its
  // calls run unbatched, preserving bitwise-identical results.
  bool stackable = batched->num_outputs() == lead.concrete->num_outputs();
  for (int i = 0; stackable && i < batched->num_outputs(); ++i) {
    const TypeAndShape single = lead.concrete->output_type(i);
    const TypeAndShape whole = batched->output_type(i);
    stackable = whole.dtype == single.dtype &&
                whole.shape.IsFullyDefined() &&
                whole.shape.rank() == single.shape.rank() &&
                whole.shape.dim(0) == rows * bucket;
    for (int d = 1; stackable && d < single.shape.rank(); ++d) {
      stackable = whole.shape.dim(d) == single.shape.dim(d);
    }
  }
  if (!stackable) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      unbatchable_groups_.insert(lead.group_key);
    }
    for (PendingCall& call : live) RunSingle(call);
    return;
  }

  auto result = RunConcrete(ctx_, batched, batched_args, /*rng_stream=*/0);
  if (!result.ok()) {
    for (PendingCall& call : live) FailCall(call, result.status());
    return;
  }
  std::vector<Tensor> outputs = std::move(result).value();

  // Record the batch telemetry before resolving any future: a caller
  // unblocked by its outputs must already observe the batched_run evidence
  // (tests and the --serving gate read these right after Await).
  profiler::RecordInstant(profiler::EventKind::kServing, Telem().batched_run,
                          k, profiler::Intern(lead.fn->name()));
  Telem().batches->Increment();
  Telem().batched_calls->Increment(static_cast<uint64_t>(k));
  Telem().batch_size->Record(static_cast<uint64_t>(k));

  // Split each stacked output back into per-caller rows and resolve the
  // futures.
  const uint64_t ready_ns = ctx_->host_now_ns();
  const uint64_t now = profiler::NowNs();
  for (int m = 0; m < k; ++m) {
    PendingCall& call = live[m];
    Status status;
    for (size_t i = 0; i < call.outputs.size(); ++i) {
      Tensor whole = outputs.at(i);
      if (status = Concretize(whole); !status.ok()) break;
      const TypeAndShape single = call.concrete->output_type(i);
      Tensor piece =
          Tensor::Empty(single.dtype, single.shape, ctx_->HostCpu());
      const size_t member_bytes =
          static_cast<size_t>(single.shape.num_elements()) *
          DTypeSize(single.dtype);
      std::memcpy(piece.raw_mutable_data(),
                  static_cast<const char*>(whole.raw_data()) +
                      static_cast<size_t>(m) * member_bytes,
                  member_bytes);
      call.outputs[i]->SetTensor(std::move(piece), ready_ns);
    }
    if (!status.ok()) {
      FailCall(call, status);
      continue;
    }
    Telem().queue_delay_us->Record((now - call.enqueue_ns) / 1000);
    FinishCall(call.session_id, Status::OK());
  }
}

}  // namespace serving
}  // namespace tfe
