#include "serving/workspace.h"

#include <vector>

#include "profiler/profiler.h"
#include "support/strings.h"

namespace tfe {
namespace serving {

namespace {

// The active scope stack for this thread. A plain vector of shared_ptrs:
// scopes are strictly nested (RAII), so push/pop at the back is enough.
thread_local std::vector<std::shared_ptr<Workspace>> t_workspace_stack;

profiler::Gauge* WorkspacesGauge() {
  static profiler::Gauge* gauge =
      profiler::Metrics().GetGauge("serving.workspaces");
  return gauge;
}

}  // namespace

Workspace::Workspace(std::string name, std::shared_ptr<Workspace> parent)
    : name_(std::move(name)), parent_(std::move(parent)) {
  WorkspacesGauge()->Add(1);
}

Workspace::~Workspace() { WorkspacesGauge()->Add(-1); }

std::optional<Variable> Workspace::FindVariable(const std::string& name) const {
  if (auto local = FindLocalVariable(name); local.has_value()) return local;
  // Parent chain is immutable after construction: no lock needed to walk it.
  return parent_ != nullptr ? parent_->FindVariable(name) : std::nullopt;
}

std::optional<Variable> Workspace::FindLocalVariable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = variables_.find(name);
  if (it == variables_.end()) return std::nullopt;
  return it->second;
}

Status Workspace::AddVariable(const std::string& name, Variable variable) {
  if (!variable.defined()) {
    return InvalidArgument("Cannot register undefined variable '" + name +
                           "' in workspace '" + name_ + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = variables_.emplace(name, std::move(variable));
  if (!inserted) {
    return AlreadyExists(strings::StrCat("Variable '", name,
                                         "' already exists in workspace '",
                                         name_, "'"));
  }
  return Status::OK();
}

StatusOr<Variable> Workspace::GetOrCreateVariable(
    const std::string& name, const std::function<Tensor()>& init) {
  if (auto existing = FindVariable(name); existing.has_value()) {
    return *existing;
  }
  Tensor value = init();
  if (!value.defined()) {
    return InvalidArgument("Initializer for workspace variable '" + name +
                           "' returned an undefined tensor");
  }
  // Construct *outside* any workspace scope so the Variable constructor's
  // Workspace::Current() hook does not recurse back into this workspace.
  WorkspaceScope no_scope(nullptr);
  Variable variable(value, name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = variables_.emplace(name, variable);
    // A racing creator won: return the registered one so both callers share.
    return it->second;
  }
}

std::vector<std::string> Workspace::LocalVariableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(variables_.size());
  for (const auto& [name, variable] : variables_) names.push_back(name);
  return names;
}

int64_t Workspace::num_local_variables() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(variables_.size());
}

void Workspace::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  variables_.clear();
}

std::shared_ptr<Workspace> Workspace::Current() {
  return t_workspace_stack.empty() ? nullptr : t_workspace_stack.back();
}

WorkspaceScope::WorkspaceScope(std::shared_ptr<Workspace> workspace) {
  t_workspace_stack.push_back(std::move(workspace));
}

WorkspaceScope::~WorkspaceScope() { t_workspace_stack.pop_back(); }

WorkspaceRegistry& WorkspaceRegistry::Global() {
  static WorkspaceRegistry* registry = new WorkspaceRegistry();
  return *registry;
}

StatusOr<std::shared_ptr<Workspace>> WorkspaceRegistry::GetOrCreate(
    const std::string& name, const std::string& parent_name) {
  if (name.empty()) return InvalidArgument("Workspace name must be non-empty");
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = workspaces_.find(name); it != workspaces_.end()) {
    return it->second;
  }
  std::shared_ptr<Workspace> parent;
  if (!parent_name.empty()) {
    auto parent_it = workspaces_.find(parent_name);
    if (parent_it == workspaces_.end()) {
      return InvalidArgument("Parent workspace '" + parent_name +
                             "' does not exist");
    }
    parent = parent_it->second;
  }
  auto workspace = std::make_shared<Workspace>(name, std::move(parent));
  workspaces_.emplace(name, workspace);
  return workspace;
}

StatusOr<std::shared_ptr<Workspace>> WorkspaceRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workspaces_.find(name);
  if (it == workspaces_.end()) {
    return NotFound("Workspace '" + name + "' does not exist");
  }
  return it->second;
}

bool WorkspaceRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return workspaces_.count(name) != 0;
}

bool WorkspaceRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return workspaces_.erase(name) != 0;
}

std::vector<std::string> WorkspaceRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(workspaces_.size());
  for (const auto& [name, workspace] : workspaces_) names.push_back(name);
  return names;
}

int64_t WorkspaceRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(workspaces_.size());
}

}  // namespace serving
}  // namespace tfe
