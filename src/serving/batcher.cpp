#include "serving/batcher.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "profiler/profiler.h"

namespace tfe {
namespace serving {

DynamicBatcher::DynamicBatcher(Options options, Runner runner)
    : options_(options), runner_(std::move(runner)) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

DynamicBatcher::~DynamicBatcher() { Shutdown(); }

Status DynamicBatcher::Enqueue(PendingCall call) {
  call.enqueue_ns = profiler::NowNs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return FailedPrecondition("DynamicBatcher is shut down");
    }
    if (!call.batchable || options_.max_batch_size <= 1) {
      immediate_.push_back(std::move(call));
    } else {
      Group& group = groups_[call.group_key];
      if (group.calls.empty()) group.oldest_ns = call.enqueue_ns;
      group.calls.push_back(std::move(call));
    }
  }
  cv_.notify_one();
  return Status::OK();
}

void DynamicBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // Already shut down; the worker (if any) was joined by the first call.
    }
    shutdown_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

int64_t DynamicBatcher::num_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = static_cast<int64_t>(immediate_.size());
  for (const auto& [key, group] : groups_) {
    n += static_cast<int64_t>(group.calls.size());
  }
  return n;
}

bool DynamicBatcher::TakeReadyBatch(std::vector<PendingCall>* batch,
                                    bool force) {
  // Unbatchable calls first: they owe no window and should not queue behind
  // one. Dispatched one at a time so a slow singleton cannot poison-pill a
  // forming batch's latency budget more than necessary.
  if (!immediate_.empty()) {
    batch->push_back(std::move(immediate_.front()));
    immediate_.pop_front();
    return true;
  }
  const uint64_t now = profiler::NowNs();
  const uint64_t delay_ns =
      static_cast<uint64_t>(options_.max_queue_delay_us) * 1000;
  for (auto it = groups_.begin(); it != groups_.end(); ++it) {
    Group& group = it->second;
    const bool full =
        group.calls.size() >= static_cast<size_t>(options_.max_batch_size);
    const bool expired = now - group.oldest_ns >= delay_ns;
    if (!full && !expired && !force) continue;
    const size_t take = std::min(group.calls.size(),
                                 static_cast<size_t>(options_.max_batch_size));
    batch->assign(std::make_move_iterator(group.calls.begin()),
                  std::make_move_iterator(group.calls.begin() + take));
    group.calls.erase(group.calls.begin(), group.calls.begin() + take);
    if (group.calls.empty()) {
      groups_.erase(it);
    } else {
      group.oldest_ns = group.calls.front().enqueue_ns;
    }
    return true;
  }
  return false;
}

void DynamicBatcher::WorkerLoop() {
  const auto delay = std::chrono::microseconds(options_.max_queue_delay_us);
  for (;;) {
    std::vector<PendingCall> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (!TakeReadyBatch(&batch, shutdown_)) {
        if (shutdown_) return;  // drained
        if (groups_.empty()) {
          cv_.wait(lock);
        } else {
          // Sleep until the oldest window can expire; recheck on wakeup.
          uint64_t oldest = UINT64_MAX;
          for (const auto& [key, group] : groups_) {
            oldest = std::min(oldest, group.oldest_ns);
          }
          const uint64_t now = profiler::NowNs();
          const uint64_t deadline = oldest + static_cast<uint64_t>(
                                                 delay.count() * 1000);
          if (deadline <= now) continue;
          cv_.wait_for(lock, std::chrono::nanoseconds(deadline - now));
        }
      }
    }
    runner_(std::move(batch));
  }
}

}  // namespace serving
}  // namespace tfe
