// WorkerServer: one remote host in the simulated cluster (paper §4.5).
//
// Each worker runs its own EagerContext (its own devices, function library
// and RNG) on a dedicated service thread, and communicates with the main
// program through a message queue — the in-process stand-in for the gRPC
// transport (DESIGN.md §2 documents this substitution). The worker speaks
// three requests: run an op, run a (serialized) graph function, move a
// tensor in or out of its store.
#ifndef TFE_DISTRIB_WORKER_H_
#define TFE_DISTRIB_WORKER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "distrib/remote_tensor.h"
#include "runtime/eager_context.h"
#include "support/status.h"

namespace tfe {

class WorkerServer {
 public:
  struct Options {
    std::string job = "worker";
    int task = 0;
    bool with_sim_gpu = false;
    uint64_t random_seed = 99;
  };

  explicit WorkerServer(const Options& options);
  ~WorkerServer();

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  const std::string& job() const { return options_.job; }
  int task() const { return options_.task; }

  // Device names this worker contributes to the cluster pool.
  std::vector<std::string> DeviceNames() const;

  // ---- synchronous RPCs (thread-safe; execute on the service thread) ------

  // Executes one primitive op on `device` (a local device name relative to
  // this worker, e.g. "CPU:0"). Inputs are handle ids in this worker's
  // store; outputs are stored and returned as new handles.
  StatusOr<std::vector<RemoteTensor>> RunOp(
      const std::string& device, const std::string& op_name,
      const std::vector<int64_t>& input_handles, const AttrMap& attrs);

  // Registers a serialized graph function (idempotent per name) and calls
  // it.
  StatusOr<std::vector<RemoteTensor>> RunFunction(
      const std::string& device, const std::string& serialized_function,
      const std::vector<int64_t>& input_handles);

  // Stores a tensor shipped from the client; returns its handle.
  StatusOr<RemoteTensor> Put(const Tensor& tensor);
  // Copies a stored tensor back to the client.
  StatusOr<Tensor> Fetch(int64_t handle_id);
  // Non-blocking fetch: returns immediately with a tensor backed by a
  // pending TensorHandle carrying the RemoteTensor's dtype/shape. The
  // service thread resolves the handle (or poisons it with NotFound) when
  // it processes the request — the same future protocol local async
  // dispatch uses, so remote reads compose with local sync points.
  Tensor FetchAsync(const RemoteTensor& remote);
  // Drops a stored tensor.
  Status Delete(int64_t handle_id);

 private:
  // A queued request: runs on the service thread, fulfills its promise.
  using Request = std::function<void()>;

  // Enqueues `fn` and blocks until the service thread has run it.
  void Call(Request fn);
  // Enqueues `fn` and returns immediately; the service thread runs it in
  // arrival order (requests posted before shutdown still drain).
  void CallAsync(Request fn);
  void ServiceLoop();

  RemoteTensor Store(Tensor tensor, const std::string& device_name);

  Options options_;
  std::unique_ptr<EagerContext> ctx_;

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<Request> queue_;
  bool shutdown_ = false;
  std::thread service_thread_;

  std::mutex store_mu_;
  std::map<int64_t, Tensor> store_;
  int64_t next_handle_ = 1;
};

}  // namespace tfe

#endif  // TFE_DISTRIB_WORKER_H_
