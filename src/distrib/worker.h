// WorkerServer: one remote host in the simulated cluster (paper §4.5).
//
// Each worker runs its own EagerContext (its own devices, function library
// and RNG) on a dedicated service thread, and communicates with the main
// program through a message queue — the in-process stand-in for the gRPC
// transport (DESIGN.md §2 documents this substitution). The worker speaks
// three requests: run an op (or a serialized graph function), move a tensor
// in or out of its store, and drop a store entry.
//
// Two calling conventions share one execution path:
//   * blocking RPCs (RunOp/RunFunction/Put/Fetch) — the original API,
//     which parks the caller until the service thread answers, and
//   * pending-handle RPCs (RunOpAsync/RunFunctionAsync/PutAsync/DeleteAsync)
//     — the client pre-assigns store ids for the outputs and continues
//     immediately; a completion callback delivers metadata (or the error)
//     when the service thread retires the request. Because the service queue
//     is processed in submission order, a consumer may reference a
//     producer's pre-assigned ids before the producer has executed.
//
// Shutdown() models worker failure: queued requests complete with
// Unavailable, and later submissions fail the same way instead of crashing —
// the errors ride the usual poisoned-handle path to the client's next sync
// point.
#ifndef TFE_DISTRIB_WORKER_H_
#define TFE_DISTRIB_WORKER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "device/remote_device.h"
#include "distrib/remote_tensor.h"
#include "runtime/eager_context.h"
#include "support/status.h"

namespace tfe {

class WorkerServer {
 public:
  struct Options {
    std::string job = "worker";
    int task = 0;
    bool with_sim_gpu = false;
    uint64_t random_seed = 99;
  };

  using DoneFn = RemoteBackend::DoneFn;

  explicit WorkerServer(const Options& options);
  ~WorkerServer();

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  const std::string& job() const { return options_.job; }
  int task() const { return options_.task; }

  // Device names this worker contributes to the cluster pool.
  std::vector<std::string> DeviceNames() const;

  // Stops the service thread. Requests still queued — and any submitted
  // later — complete with Unavailable (the simulated-failure path). Safe to
  // call more than once.
  void Shutdown();

  // ---- synchronous RPCs (thread-safe; execute on the service thread) ------

  // Executes one primitive op on `device` (a local device name relative to
  // this worker, e.g. "CPU:0"). Inputs are handle ids in this worker's
  // store; outputs are stored and returned as new handles.
  StatusOr<std::vector<RemoteTensor>> RunOp(
      const std::string& device, const std::string& op_name,
      const std::vector<int64_t>& input_handles, const AttrMap& attrs);

  // Registers a serialized graph function (idempotent per name) and calls
  // it.
  StatusOr<std::vector<RemoteTensor>> RunFunction(
      const std::string& device, const std::string& serialized_function,
      const std::vector<int64_t>& input_handles);

  // Stores a tensor shipped from the client; returns its handle.
  StatusOr<RemoteTensor> Put(const Tensor& tensor);
  // Copies a stored tensor back to the client.
  StatusOr<Tensor> Fetch(int64_t handle_id);
  // Non-blocking fetch: returns immediately with a tensor backed by a
  // pending TensorHandle carrying the RemoteTensor's dtype/shape. The
  // service thread resolves the handle (or poisons it with NotFound) when
  // it processes the request — the same future protocol local async
  // dispatch uses, so remote reads compose with local sync points.
  Tensor FetchAsync(const RemoteTensor& remote);
  // Drops a stored tensor.
  Status Delete(int64_t handle_id);

  // ---- pending-handle RPCs (never block the caller) -----------------------

  // Runs one op, storing the outputs under the client-assigned `output_ids`
  // (when empty, the worker allocates ids itself). `done` fires on the
  // service thread with the output metadata, or with the op's error — or
  // inline with Unavailable when the worker is already shut down.
  void RunOpAsync(const std::string& device, const std::string& op_name,
                  std::vector<int64_t> input_ids, AttrMap attrs,
                  std::vector<int64_t> output_ids, DoneFn done);

  // Runs a whole graph function as one request. `serialized` registers the
  // function bundle first (idempotent; empty once the client knows it
  // shipped — `function_name` is then resolved against this worker's
  // library). `append_captures` preserves the blocking API's convention of
  // shipping captures inside the bundle; the dispatch path ships complete
  // inputs and passes false.
  void RunFunctionAsync(const std::string& device,
                        const std::string& function_name,
                        const std::string& serialized,
                        std::vector<int64_t> input_ids,
                        std::vector<int64_t> output_ids, bool append_captures,
                        DoneFn done);

  // Stores a shipped tensor under the client-assigned id. Writes directly
  // (the client invokes it before the op that consumes the id, and the
  // store is a map under its own lock), so it cannot fail late: a lost put
  // surfaces as NotFound on the consuming op.
  void PutAsync(Tensor tensor, int64_t dst_id);

  // Drops a store entry after every previously submitted request — the
  // delete rides the service queue so it cannot outrun the op that still
  // reads the id. Unknown ids and shut-down workers are ignored.
  void DeleteAsync(int64_t handle_id);

 private:
  // A queued request: runs on the service thread with OK, or wherever the
  // queue is being failed (shutdown drain / post-shutdown submission) with
  // the reason — each request routes a non-OK status to its caller.
  using Request = std::function<void(const Status&)>;

  // Enqueues `fn` and blocks until the service thread has run it. When shut
  // down, runs `fn` inline with Unavailable instead.
  void Call(Request fn);
  // Enqueues `fn` and returns immediately; the service thread runs it in
  // arrival order. When shut down, runs `fn` inline with Unavailable.
  void CallAsync(Request fn);
  void ServiceLoop();
  Status ShutdownStatus() const;

  RemoteTensor Store(Tensor tensor, const std::string& device_name);
  // The shared execution path behind RunOp/RunOpAsync and
  // RunFunction/RunFunctionAsync; runs on the service thread.
  StatusOr<std::vector<RemoteOutputMeta>> ExecuteOp(
      const std::string& device, const std::string& op_name,
      const std::vector<int64_t>& input_ids, const AttrMap& attrs,
      const std::vector<int64_t>& output_ids);
  StatusOr<std::vector<RemoteOutputMeta>> ExecuteFunction(
      const std::string& device, const std::string& function_name,
      const std::string& serialized, const std::vector<int64_t>& input_ids,
      bool append_captures, const std::vector<int64_t>& output_ids);
  Status LookUpInputs(const std::vector<int64_t>& input_ids,
                      std::vector<Tensor>* inputs);
  std::vector<RemoteOutputMeta> StoreOutputs(
      std::vector<Tensor> outputs, const std::vector<int64_t>& output_ids);
  std::string FullDeviceName(const std::string& device) const;

  Options options_;
  std::unique_ptr<EagerContext> ctx_;

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<Request> queue_;
  bool shutdown_ = false;
  std::thread service_thread_;

  std::mutex store_mu_;
  std::map<int64_t, Tensor> store_;
  // Worker-allocated ids count up from 1; client-assigned ids live at and
  // above RemoteBackend's base (1 << 40), so the allocators never collide.
  int64_t next_handle_ = 1;
};

}  // namespace tfe

#endif  // TFE_DISTRIB_WORKER_H_
