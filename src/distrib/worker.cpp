#include "distrib/worker.h"

#include "graph/serialization.h"
#include "profiler/profiler.h"
#include "support/strings.h"
#include "tensor/tensor_handle.h"
#include "tensor/tensor_util.h"

namespace tfe {

WorkerServer::WorkerServer(const Options& options) : options_(options) {
  EagerContext::Options ctx_options;
  ctx_options.register_sim_gpu = options.with_sim_gpu;
  ctx_options.register_sim_tpu = false;
  ctx_options.random_seed = options.random_seed;
  ctx_options.executor_threads = 2;
  ctx_ = std::make_unique<EagerContext>(ctx_options);
  service_thread_ = std::thread([this] { ServiceLoop(); });
}

WorkerServer::~WorkerServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  service_thread_.join();
}

std::vector<std::string> WorkerServer::DeviceNames() const {
  std::vector<std::string> names;
  for (Device* device : ctx_->devices().ListDevices()) {
    DeviceNameParts parts = device->name_parts();
    parts.job = options_.job;
    parts.task = options_.task;
    names.push_back(parts.ToString());
  }
  return names;
}

void WorkerServer::Call(Request fn) {
  static profiler::Counter* rpc_calls =
      profiler::Metrics().GetCounter("rpc.calls");
  rpc_calls->Increment();
  // Client-side span: covers serialization-free enqueue plus the blocking
  // wait for the service thread, i.e. the full RPC round trip.
  profiler::Scope rpc_span(profiler::EventKind::kRpcSend, "worker_call");

  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TFE_CHECK(!shutdown_);
    queue_.push_back([&] {
      fn();
      // Notify under the lock: the waiter destroys done_cv (stack storage)
      // as soon as it observes done, so an unlocked notify could touch a
      // dead condition variable.
      std::lock_guard<std::mutex> done_lock(done_mu);
      done = true;
      done_cv.notify_one();
    });
  }
  wake_.notify_one();
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done; });
  if (rpc_span.active()) {
    static profiler::Histogram* roundtrip =
        profiler::Metrics().GetHistogram("rpc.roundtrip_ns");
    roundtrip->Record(profiler::NowNs() - rpc_span.start_ns());
  }
}

void WorkerServer::CallAsync(Request fn) {
  static profiler::Counter* rpc_async_calls =
      profiler::Metrics().GetCounter("rpc.async_calls");
  rpc_async_calls->Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    TFE_CHECK(!shutdown_);
    queue_.push_back(std::move(fn));
  }
  wake_.notify_one();
}

void WorkerServer::ServiceLoop() {
  while (true) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      static profiler::Counter* served =
          profiler::Metrics().GetCounter("rpc.requests_served");
      served->Increment();
      // Service-side span: the worker thread executing one request.
      profiler::Scope recv_span(profiler::EventKind::kRpcRecv,
                                "worker_request");
      request();
    }
  }
}

RemoteTensor WorkerServer::Store(Tensor tensor,
                                 const std::string& device_name) {
  RemoteTensor remote;
  remote.device = device_name;
  remote.dtype = tensor.dtype();
  remote.shape = tensor.shape();
  std::lock_guard<std::mutex> lock(store_mu_);
  remote.handle_id = next_handle_++;
  store_.emplace(remote.handle_id, std::move(tensor));
  return remote;
}

StatusOr<std::vector<RemoteTensor>> WorkerServer::RunOp(
    const std::string& device, const std::string& op_name,
    const std::vector<int64_t>& input_handles, const AttrMap& attrs) {
  StatusOr<std::vector<RemoteTensor>> result =
      InvalidArgument("worker did not run");
  Call([&] {
    std::vector<Tensor> inputs;
    {
      std::lock_guard<std::mutex> lock(store_mu_);
      for (int64_t handle : input_handles) {
        auto it = store_.find(handle);
        if (it == store_.end()) {
          result = NotFound(strings::StrCat("No remote tensor #", handle,
                                            " on ", options_.job, "/task:",
                                            options_.task));
          return;
        }
        inputs.push_back(it->second);
      }
    }
    auto outputs = ctx_->RunPrimitive(op_name, std::move(inputs), attrs,
                                      device);
    if (!outputs.ok()) {
      result = outputs.status();
      return;
    }
    auto parts = ParseDeviceName(device);
    DeviceNameParts full = parts.ok() ? *parts : DeviceNameParts{};
    full.job = options_.job;
    full.task = options_.task;
    std::vector<RemoteTensor> handles;
    for (Tensor& output : *outputs) {
      handles.push_back(Store(std::move(output), full.ToString()));
    }
    result = std::move(handles);
  });
  return result;
}

StatusOr<std::vector<RemoteTensor>> WorkerServer::RunFunction(
    const std::string& device, const std::string& serialized_function,
    const std::vector<int64_t>& input_handles) {
  StatusOr<std::vector<RemoteTensor>> result =
      InvalidArgument("worker did not run");
  Call([&] {
    // Bundles carry the whole transitive closure of graph functions (nested
    // Call / Cond / While callees included).
    auto bundle = DeserializeFunctionBundle(serialized_function);
    if (!bundle.ok()) {
      result = bundle.status();
      return;
    }
    std::shared_ptr<GraphFunction> function = bundle->front();
    for (const auto& fn : *bundle) {
      if (!ctx_->functions().Contains(fn->name())) {
        Status status = ctx_->functions().Register(fn);
        if (!status.ok()) {
          result = status;
          return;
        }
      }
    }
    std::vector<Tensor> inputs;
    {
      std::lock_guard<std::mutex> lock(store_mu_);
      for (int64_t handle : input_handles) {
        auto it = store_.find(handle);
        if (it == store_.end()) {
          result = NotFound("Missing remote tensor handle");
          return;
        }
        inputs.push_back(it->second);
      }
    }
    // Captures ship inside the serialized function; append them.
    for (const Capture& capture : function->captures()) {
      inputs.push_back(capture.tensor);
    }
    AttrMap attrs;
    attrs["function"] = AttrValue(function->name());
    auto outputs =
        ctx_->RunPrimitive("Call", std::move(inputs), attrs, device);
    if (!outputs.ok()) {
      result = outputs.status();
      return;
    }
    auto parts = ParseDeviceName(device);
    DeviceNameParts full = parts.ok() ? *parts : DeviceNameParts{};
    full.job = options_.job;
    full.task = options_.task;
    std::vector<RemoteTensor> handles;
    for (Tensor& output : *outputs) {
      handles.push_back(Store(std::move(output), full.ToString()));
    }
    result = std::move(handles);
  });
  return result;
}

StatusOr<RemoteTensor> WorkerServer::Put(const Tensor& tensor) {
  if (!tensor.defined() || tensor.is_symbolic() || tensor.is_resource()) {
    return InvalidArgument("Only concrete value tensors can be shipped");
  }
  DeviceNameParts parts;
  parts.job = options_.job;
  parts.task = options_.task;
  // Deep copy: the wire transfer that gRPC would perform.
  return Store(tensor_util::DeepCopy(tensor), parts.ToString());
}

StatusOr<Tensor> WorkerServer::Fetch(int64_t handle_id) {
  std::lock_guard<std::mutex> lock(store_mu_);
  auto it = store_.find(handle_id);
  if (it == store_.end()) {
    return NotFound("No remote tensor with that handle");
  }
  return tensor_util::DeepCopy(it->second);
}

Tensor WorkerServer::FetchAsync(const RemoteTensor& remote) {
  // Metadata travels with the RemoteTensor, so the client-side handle is
  // fully typed before the worker has even seen the request — the remote
  // analog of shape inference priming a local pending handle.
  auto handle = TensorHandle::Pending(remote.dtype, remote.shape,
                                      /*device=*/nullptr,
                                      /*host_clock=*/nullptr);
  CallAsync([this, handle, handle_id = remote.handle_id] {
    Tensor stored;
    {
      std::lock_guard<std::mutex> lock(store_mu_);
      auto it = store_.find(handle_id);
      if (it == store_.end()) {
        handle->SetError(NotFound(strings::StrCat(
            "No remote tensor #", handle_id, " on ", options_.job,
            "/task:", options_.task)));
        return;
      }
      stored = it->second;
    }
    handle->SetTensor(tensor_util::DeepCopy(stored), /*ready_ns=*/0);
  });
  return Tensor::FromHandle(std::move(handle));
}

Status WorkerServer::Delete(int64_t handle_id) {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (store_.erase(handle_id) == 0) {
    return NotFound("No remote tensor with that handle");
  }
  return Status::OK();
}

}  // namespace tfe
