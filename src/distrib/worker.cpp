#include "distrib/worker.h"

#include "graph/serialization.h"
#include "profiler/profiler.h"
#include "support/strings.h"
#include "tensor/tensor_handle.h"
#include "tensor/tensor_util.h"

namespace tfe {

WorkerServer::WorkerServer(const Options& options) : options_(options) {
  EagerContext::Options ctx_options;
  ctx_options.register_sim_gpu = options.with_sim_gpu;
  ctx_options.register_sim_tpu = false;
  ctx_options.random_seed = options.random_seed;
  ctx_options.executor_threads = 2;
  ctx_ = std::make_unique<EagerContext>(ctx_options);
  // Shipped graphs may carry node placements staged under this worker's full
  // remote name; resolve those as local devices.
  ctx_->devices().SetSelfIdentity(options_.job, options_.task);
  service_thread_ = std::thread([this] { ServiceLoop(); });
}

WorkerServer::~WorkerServer() {
  // Graceful teardown: the service thread drains everything already queued
  // (running each request with OK) before exiting, so work posted before
  // destruction still completes. Explicit Shutdown() is the failure path.
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  if (service_thread_.joinable()) service_thread_.join();
}

void WorkerServer::Shutdown() {
  std::deque<Request> abandoned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    // Swap the queue out so the service thread sees it empty and exits; the
    // in-flight request (if any) finishes normally.
    abandoned.swap(queue_);
  }
  wake_.notify_all();
  service_thread_.join();
  // Fail everything that never reached the service thread. Callers see
  // Unavailable through the usual channels: blocking RPCs return it,
  // pending handles get poisoned with it.
  const Status status = ShutdownStatus();
  for (Request& request : abandoned) request(status);
}

Status WorkerServer::ShutdownStatus() const {
  return Unavailable(strings::StrCat("Worker /job:", options_.job,
                                     "/task:", options_.task, " shut down"));
}

std::vector<std::string> WorkerServer::DeviceNames() const {
  std::vector<std::string> names;
  for (Device* device : ctx_->devices().ListDevices()) {
    DeviceNameParts parts = device->name_parts();
    parts.job = options_.job;
    parts.task = options_.task;
    names.push_back(parts.ToString());
  }
  return names;
}

void WorkerServer::Call(Request fn) {
  static profiler::Counter* rpc_calls =
      profiler::Metrics().GetCounter("rpc.calls");
  rpc_calls->Increment();
  // Client-side span: covers serialization-free enqueue plus the blocking
  // wait for the service thread, i.e. the full RPC round trip.
  profiler::Scope rpc_span(profiler::EventKind::kRpcSend, "worker_call");

  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      rejected = true;
    } else {
      queue_.push_back([&](const Status& status) {
        fn(status);
        // Notify under the lock: the waiter destroys done_cv (stack storage)
        // as soon as it observes done, so an unlocked notify could touch a
        // dead condition variable.
        std::lock_guard<std::mutex> done_lock(done_mu);
        done = true;
        done_cv.notify_one();
      });
    }
  }
  if (rejected) {
    fn(ShutdownStatus());
    return;
  }
  wake_.notify_one();
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done; });
  if (rpc_span.active()) {
    static profiler::Histogram* roundtrip =
        profiler::Metrics().GetHistogram("rpc.roundtrip_ns");
    roundtrip->Record(profiler::NowNs() - rpc_span.start_ns());
  }
}

void WorkerServer::CallAsync(Request fn) {
  static profiler::Counter* rpc_async_calls =
      profiler::Metrics().GetCounter("rpc.async_calls");
  rpc_async_calls->Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      queue_.push_back(std::move(fn));
      wake_.notify_one();
      return;
    }
  }
  fn(ShutdownStatus());
}

void WorkerServer::ServiceLoop() {
  while (true) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      static profiler::Counter* served =
          profiler::Metrics().GetCounter("rpc.requests_served");
      served->Increment();
      // Service-side span: the worker thread executing one request.
      profiler::Scope recv_span(profiler::EventKind::kRpcRecv,
                                "worker_request");
      request(Status::OK());
    }
  }
}

RemoteTensor WorkerServer::Store(Tensor tensor,
                                 const std::string& device_name) {
  RemoteTensor remote;
  remote.device = device_name;
  remote.dtype = tensor.dtype();
  remote.shape = tensor.shape();
  std::lock_guard<std::mutex> lock(store_mu_);
  remote.handle_id = next_handle_++;
  store_.emplace(remote.handle_id, std::move(tensor));
  return remote;
}

std::string WorkerServer::FullDeviceName(const std::string& device) const {
  auto parts = ParseDeviceName(device);
  DeviceNameParts full = parts.ok() ? *parts : DeviceNameParts{};
  full.job = options_.job;
  full.task = options_.task;
  return full.ToString();
}

Status WorkerServer::LookUpInputs(const std::vector<int64_t>& input_ids,
                                  std::vector<Tensor>* inputs) {
  std::lock_guard<std::mutex> lock(store_mu_);
  for (int64_t id : input_ids) {
    auto it = store_.find(id);
    if (it == store_.end()) {
      return NotFound(strings::StrCat("No remote tensor #", id, " on ",
                                      options_.job, "/task:", options_.task));
    }
    inputs->push_back(it->second);
  }
  return Status::OK();
}

std::vector<RemoteOutputMeta> WorkerServer::StoreOutputs(
    std::vector<Tensor> outputs, const std::vector<int64_t>& output_ids) {
  std::vector<RemoteOutputMeta> metas;
  metas.reserve(outputs.size());
  std::lock_guard<std::mutex> lock(store_mu_);
  for (size_t i = 0; i < outputs.size(); ++i) {
    RemoteOutputMeta meta;
    meta.handle_id =
        output_ids.empty() ? next_handle_++ : output_ids[i];
    meta.dtype = outputs[i].dtype();
    meta.shape = outputs[i].shape();
    // insert_or_assign: re-running under a client-assigned id (retry)
    // replaces rather than leaks.
    store_.insert_or_assign(meta.handle_id, std::move(outputs[i]));
    metas.push_back(std::move(meta));
  }
  return metas;
}

StatusOr<std::vector<RemoteOutputMeta>> WorkerServer::ExecuteOp(
    const std::string& device, const std::string& op_name,
    const std::vector<int64_t>& input_ids, const AttrMap& attrs,
    const std::vector<int64_t>& output_ids) {
  std::vector<Tensor> inputs;
  TFE_RETURN_IF_ERROR(LookUpInputs(input_ids, &inputs));
  TFE_ASSIGN_OR_RETURN(
      std::vector<Tensor> outputs,
      ctx_->RunPrimitive(op_name, std::move(inputs), attrs, device));
  if (!output_ids.empty() && output_ids.size() != outputs.size()) {
    return Internal(strings::StrCat(
        "Remote op ", op_name, " produced ", outputs.size(),
        " outputs but the client pre-assigned ", output_ids.size(),
        " handle ids"));
  }
  return StoreOutputs(std::move(outputs), output_ids);
}

StatusOr<std::vector<RemoteOutputMeta>> WorkerServer::ExecuteFunction(
    const std::string& device, const std::string& function_name,
    const std::string& serialized, const std::vector<int64_t>& input_ids,
    bool append_captures, const std::vector<int64_t>& output_ids) {
  std::shared_ptr<GraphFunction> function;
  if (!serialized.empty()) {
    // Bundles carry the whole transitive closure of graph functions (nested
    // Call / Cond / While callees included).
    TFE_ASSIGN_OR_RETURN(auto bundle, DeserializeFunctionBundle(serialized));
    function = bundle.front();
    for (const auto& fn : bundle) {
      if (!ctx_->functions().Contains(fn->name())) {
        TFE_RETURN_IF_ERROR(ctx_->functions().Register(fn));
      }
    }
  } else {
    TFE_ASSIGN_OR_RETURN(function, ctx_->functions().Find(function_name));
  }
  std::vector<Tensor> inputs;
  TFE_RETURN_IF_ERROR(LookUpInputs(input_ids, &inputs));
  if (append_captures) {
    // Blocking-API convention: captures ship inside the serialized function.
    for (const Capture& capture : function->captures()) {
      inputs.push_back(capture.tensor);
    }
  }
  AttrMap attrs;
  attrs["function"] = AttrValue(function->name());
  TFE_ASSIGN_OR_RETURN(
      std::vector<Tensor> outputs,
      ctx_->RunPrimitive("Call", std::move(inputs), attrs, device));
  if (!output_ids.empty() && output_ids.size() != outputs.size()) {
    return Internal(strings::StrCat(
        "Remote function ", function->name(), " produced ", outputs.size(),
        " outputs but the client pre-assigned ", output_ids.size(),
        " handle ids"));
  }
  return StoreOutputs(std::move(outputs), output_ids);
}

StatusOr<std::vector<RemoteTensor>> WorkerServer::RunOp(
    const std::string& device, const std::string& op_name,
    const std::vector<int64_t>& input_handles, const AttrMap& attrs) {
  StatusOr<std::vector<RemoteOutputMeta>> result =
      InvalidArgument("worker did not run");
  Call([&](const Status& status) {
    if (!status.ok()) {
      result = status;
      return;
    }
    result = ExecuteOp(device, op_name, input_handles, attrs, {});
  });
  if (!result.ok()) return result.status();
  const std::string full_device = FullDeviceName(device);
  std::vector<RemoteTensor> handles;
  for (const RemoteOutputMeta& meta : *result) {
    handles.push_back({full_device, meta.handle_id, meta.dtype, meta.shape});
  }
  return handles;
}

StatusOr<std::vector<RemoteTensor>> WorkerServer::RunFunction(
    const std::string& device, const std::string& serialized_function,
    const std::vector<int64_t>& input_handles) {
  StatusOr<std::vector<RemoteOutputMeta>> result =
      InvalidArgument("worker did not run");
  Call([&](const Status& status) {
    if (!status.ok()) {
      result = status;
      return;
    }
    result = ExecuteFunction(device, /*function_name=*/"", serialized_function,
                             input_handles, /*append_captures=*/true, {});
  });
  if (!result.ok()) return result.status();
  const std::string full_device = FullDeviceName(device);
  std::vector<RemoteTensor> handles;
  for (const RemoteOutputMeta& meta : *result) {
    handles.push_back({full_device, meta.handle_id, meta.dtype, meta.shape});
  }
  return handles;
}

void WorkerServer::RunOpAsync(const std::string& device,
                              const std::string& op_name,
                              std::vector<int64_t> input_ids, AttrMap attrs,
                              std::vector<int64_t> output_ids, DoneFn done) {
  CallAsync([this, device, op_name, input_ids = std::move(input_ids),
             attrs = std::move(attrs), output_ids = std::move(output_ids),
             done = std::move(done)](const Status& status) {
    if (!status.ok()) {
      done(status);
      return;
    }
    done(ExecuteOp(device, op_name, input_ids, attrs, output_ids));
  });
}

void WorkerServer::RunFunctionAsync(const std::string& device,
                                    const std::string& function_name,
                                    const std::string& serialized,
                                    std::vector<int64_t> input_ids,
                                    std::vector<int64_t> output_ids,
                                    bool append_captures, DoneFn done) {
  CallAsync([this, device, function_name, serialized,
             input_ids = std::move(input_ids),
             output_ids = std::move(output_ids), append_captures,
             done = std::move(done)](const Status& status) {
    if (!status.ok()) {
      done(status);
      return;
    }
    done(ExecuteFunction(device, function_name, serialized, input_ids,
                         append_captures, output_ids));
  });
}

void WorkerServer::PutAsync(Tensor tensor, int64_t dst_id) {
  // Direct store write (no queue trip): the client issues the put before the
  // op that consumes `dst_id`, and map insertion under store_mu_ is ordered
  // before that op's lookup regardless of which thread performs it.
  std::lock_guard<std::mutex> lock(store_mu_);
  store_.insert_or_assign(dst_id, std::move(tensor));
}

void WorkerServer::DeleteAsync(int64_t handle_id) {
  CallAsync([this, handle_id](const Status& status) {
    if (!status.ok()) return;  // shut down: the whole store dies with it
    std::lock_guard<std::mutex> lock(store_mu_);
    store_.erase(handle_id);
  });
}

StatusOr<RemoteTensor> WorkerServer::Put(const Tensor& tensor) {
  if (!tensor.defined() || tensor.is_symbolic() || tensor.is_resource()) {
    return InvalidArgument("Only concrete value tensors can be shipped");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return ShutdownStatus();
  }
  DeviceNameParts parts;
  parts.job = options_.job;
  parts.task = options_.task;
  // Deep copy: the wire transfer that gRPC would perform.
  return Store(tensor_util::DeepCopy(tensor), parts.ToString());
}

StatusOr<Tensor> WorkerServer::Fetch(int64_t handle_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return ShutdownStatus();
  }
  std::lock_guard<std::mutex> lock(store_mu_);
  auto it = store_.find(handle_id);
  if (it == store_.end()) {
    return NotFound("No remote tensor with that handle");
  }
  return tensor_util::DeepCopy(it->second);
}

Tensor WorkerServer::FetchAsync(const RemoteTensor& remote) {
  // Metadata travels with the RemoteTensor, so the client-side handle is
  // fully typed before the worker has even seen the request — the remote
  // analog of shape inference priming a local pending handle.
  auto handle = TensorHandle::Pending(remote.dtype, remote.shape,
                                      /*device=*/nullptr,
                                      /*host_clock=*/nullptr);
  CallAsync([this, handle, handle_id = remote.handle_id](
                const Status& status) {
    if (!status.ok()) {
      handle->SetError(status);
      return;
    }
    Tensor stored;
    {
      std::lock_guard<std::mutex> lock(store_mu_);
      auto it = store_.find(handle_id);
      if (it == store_.end()) {
        handle->SetError(NotFound(strings::StrCat(
            "No remote tensor #", handle_id, " on ", options_.job,
            "/task:", options_.task)));
        return;
      }
      stored = it->second;
    }
    handle->SetTensor(tensor_util::DeepCopy(stored), /*ready_ns=*/0);
  });
  return Tensor::FromHandle(std::move(handle));
}

Status WorkerServer::Delete(int64_t handle_id) {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (store_.erase(handle_id) == 0) {
    return NotFound("No remote tensor with that handle");
  }
  return Status::OK();
}

}  // namespace tfe
