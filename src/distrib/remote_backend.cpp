#include "distrib/remote_backend.h"

#include <utility>

#include "tensor/tensor_util.h"

namespace tfe {

WorkerBackend::WorkerBackend(std::string target, WorkerServer* worker)
    : target_(std::move(target)), worker_(worker) {}

void WorkerBackend::Disconnect() {
  worker_.store(nullptr, std::memory_order_release);
}

Status WorkerBackend::Disconnected() const {
  return Unavailable("Disconnected from " + target_);
}

int64_t WorkerBackend::AllocateHandleId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void WorkerBackend::PutAsync(Tensor value, int64_t dst_id) {
  WorkerServer* worker = worker_.load(std::memory_order_acquire);
  if (worker == nullptr) return;  // the consuming op fails Unavailable anyway
  // Deep copy: the wire transfer that gRPC would perform.
  worker->PutAsync(tensor_util::DeepCopy(value), dst_id);
}

Status WorkerBackend::Put(const Tensor& value, int64_t dst_id) {
  if (!value.defined() || value.is_symbolic() || value.is_resource()) {
    return InvalidArgument("Only concrete value tensors can be shipped");
  }
  WorkerServer* worker = worker_.load(std::memory_order_acquire);
  if (worker == nullptr) return Disconnected();
  worker->PutAsync(tensor_util::DeepCopy(value), dst_id);
  return Status::OK();
}

void WorkerBackend::RunOpAsync(const std::string& device,
                               const std::string& op,
                               std::vector<int64_t> input_ids, AttrMap attrs,
                               std::vector<int64_t> output_ids, DoneFn done) {
  WorkerServer* worker = worker_.load(std::memory_order_acquire);
  if (worker == nullptr) {
    done(Disconnected());
    return;
  }
  worker->RunOpAsync(device, op, std::move(input_ids), std::move(attrs),
                     std::move(output_ids), std::move(done));
}

StatusOr<std::vector<RemoteOutputMeta>> WorkerBackend::RunOp(
    const std::string& device, const std::string& op,
    std::vector<int64_t> input_ids, AttrMap attrs,
    std::vector<int64_t> output_ids) {
  StatusOr<std::vector<RemoteOutputMeta>> result =
      Internal("remote op did not complete");
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  RunOpAsync(device, op, std::move(input_ids), std::move(attrs),
             std::move(output_ids),
             [&](StatusOr<std::vector<RemoteOutputMeta>> metas) {
               std::lock_guard<std::mutex> lock(done_mu);
               result = std::move(metas);
               done = true;
               done_cv.notify_one();
             });
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done; });
  return result;
}

void WorkerBackend::RunFunctionAsync(const std::string& device,
                                     const std::string& name,
                                     const std::string& serialized,
                                     std::vector<int64_t> input_ids,
                                     std::vector<int64_t> output_ids,
                                     bool append_captures, DoneFn done) {
  WorkerServer* worker = worker_.load(std::memory_order_acquire);
  if (worker == nullptr) {
    done(Disconnected());
    return;
  }
  worker->RunFunctionAsync(device, name, serialized, std::move(input_ids),
                           std::move(output_ids), append_captures,
                           std::move(done));
}

bool WorkerBackend::FunctionShipped(const std::string& name) {
  std::lock_guard<std::mutex> lock(shipped_mu_);
  return shipped_functions_.count(name) != 0;
}

void WorkerBackend::MarkFunctionShipped(const std::string& name) {
  std::lock_guard<std::mutex> lock(shipped_mu_);
  shipped_functions_.insert(name);
}

StatusOr<Tensor> WorkerBackend::Fetch(int64_t handle_id) {
  WorkerServer* worker = worker_.load(std::memory_order_acquire);
  if (worker == nullptr) return Disconnected();
  TFE_ASSIGN_OR_RETURN(Tensor fetched, worker->Fetch(handle_id));
  // The worker tagged the copy with its own context's device pointers; the
  // bytes are plain host memory on this side of the wire.
  if (fetched.device() != nullptr) {
    return Tensor::Concrete(fetched.dtype(), fetched.shape(), fetched.buffer(),
                            /*device=*/nullptr);
  }
  return fetched;
}

void WorkerBackend::DeleteAsync(int64_t handle_id) {
  WorkerServer* worker = worker_.load(std::memory_order_acquire);
  if (worker == nullptr) return;
  worker->DeleteAsync(handle_id);
}

}  // namespace tfe
