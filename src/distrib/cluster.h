// Cluster: the main program's view of distributed execution (paper §4.5).
//
// "The current system supports distributed execution with a single central
// server running the main program and several worker servers running on
// remote hosts. Each worker server adds its locally available devices to the
// pool of devices available to the main program." Remote devices are
// addressed by application-level names ("/job:training/task:2/device:GPU:0");
// the cluster maps them to worker instances — the analog of mapping names to
// DNS addresses when a real server joins.
#ifndef TFE_DISTRIB_CLUSTER_H_
#define TFE_DISTRIB_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "distrib/remote_backend.h"
#include "distrib/worker.h"
#include "graph/graph_function.h"

namespace tfe {

class Cluster {
 public:
  struct Options {
    // job name -> number of tasks.
    std::map<std::string, int> jobs = {{"worker", 2}};
    bool workers_have_sim_gpu = false;
  };

  explicit Cluster(const Options& options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // All remote device names in the pool.
  std::vector<std::string> ListRemoteDevices() const;

  // Registers every worker device in `ctx`'s DeviceManager as a first-class
  // RemoteDevice (paper §4.5: workers "add their locally available devices
  // to the pool of devices available to the main program"). Afterwards
  // `tfe::device("/job:worker/task:1/device:CPU:0")` scopes ops with the
  // same syntax as local execution: they flow through the ordinary
  // dispatch -> OpQueue path, return pending handles immediately, and their
  // values stay on the worker until read. Fails if a device of the same
  // canonical name is already registered (e.g. a second Connect into the
  // same context).
  Status Connect(EagerContext* ctx);

  // Simulates the failure of one worker: its service thread stops, queued
  // requests and all later RPCs complete with Unavailable. In-flight remote
  // ops surface the error as poisoned handles at the client's next sync
  // point — no crash, no hang.
  Status ShutdownWorker(const std::string& job, int task);

  // Ships a client tensor to the worker owning `device_name`.
  StatusOr<RemoteTensor> Put(const std::string& device_name,
                             const Tensor& tensor);

  // Runs one op on a remote device; the same syntax as local execution but
  // with a remote name (paper §4.5). Outputs stay remote.
  StatusOr<std::vector<RemoteTensor>> RunOp(
      const std::string& device_name, const std::string& op_name,
      const std::vector<RemoteTensor>& inputs, const AttrMap& attrs = {});

  // Runs a whole graph function remotely; the function is serialized and
  // shipped on first use.
  StatusOr<std::vector<RemoteTensor>> RunFunction(
      const std::string& device_name, const GraphFunction& function,
      const std::vector<RemoteTensor>& inputs);

  // Copies a remote tensor to the central server ("e.g. to use their value
  // in an if statement").
  StatusOr<Tensor> Fetch(const RemoteTensor& tensor);

  // Non-blocking fetch: returns a tensor backed by a pending TensorHandle
  // (dtype/shape from the RemoteTensor metadata) that the owning worker's
  // service thread resolves. Errors — unknown worker, missing handle —
  // arrive deferred through the handle and surface at the next sync point,
  // unifying remote tensors with the local async-execution protocol.
  Tensor FetchAsync(const RemoteTensor& tensor);

  Status Delete(const RemoteTensor& tensor);

 private:
  StatusOr<WorkerServer*> ResolveWorker(const std::string& device_name) const;
  // The device part relative to the worker (kind:index).
  static StatusOr<std::string> LocalDevicePart(const std::string& device_name);

  std::vector<std::unique_ptr<WorkerServer>> workers_;
  // One transport per worker, shared by that worker's RemoteDevices (created
  // on Connect). shared_ptr: registered devices may outlive the Cluster —
  // the destructor disconnects the backends, turning later dispatches into
  // deferred Unavailable errors instead of dangling pointers.
  std::vector<std::shared_ptr<WorkerBackend>> backends_;
};

}  // namespace tfe

#endif  // TFE_DISTRIB_CLUSTER_H_
