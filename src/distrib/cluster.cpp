#include "distrib/cluster.h"

#include "graph/serialization.h"
#include "profiler/profiler.h"
#include "runtime/eager_context.h"
#include "support/strings.h"
#include "tensor/tensor_handle.h"

namespace tfe {

Cluster::Cluster(const Options& options) {
  uint64_t seed = 1000;
  for (const auto& [job, tasks] : options.jobs) {
    for (int task = 0; task < tasks; ++task) {
      WorkerServer::Options worker_options;
      worker_options.job = job;
      worker_options.task = task;
      worker_options.with_sim_gpu = options.workers_have_sim_gpu;
      worker_options.random_seed = seed++;
      workers_.push_back(std::make_unique<WorkerServer>(worker_options));
    }
  }
}

Cluster::~Cluster() {
  // Sever every backend before any worker dies: RemoteDevices registered in
  // a still-living EagerContext keep the backends alive by shared_ptr, and a
  // disconnected backend answers Unavailable instead of touching a freed
  // worker.
  for (auto& backend : backends_) backend->Disconnect();
}

Status Cluster::Connect(EagerContext* ctx) {
  TFE_CHECK(ctx != nullptr);
  for (const auto& worker : workers_) {
    auto backend = std::make_shared<WorkerBackend>(
        strings::StrCat("/job:", worker->job(), "/task:", worker->task()),
        worker.get());
    for (const std::string& name : worker->DeviceNames()) {
      TFE_ASSIGN_OR_RETURN(DeviceNameParts parts, ParseDeviceName(name));
      TFE_RETURN_IF_ERROR(
          ctx->devices()
              .AddDevice(std::make_unique<RemoteDevice>(parts, backend))
              .status());
    }
    backends_.push_back(std::move(backend));
  }
  return Status::OK();
}

Status Cluster::ShutdownWorker(const std::string& job, int task) {
  for (const auto& worker : workers_) {
    if (worker->job() == job && worker->task() == task) {
      worker->Shutdown();
      return Status::OK();
    }
  }
  return NotFound(strings::StrCat("No worker /job:", job, "/task:", task));
}

std::vector<std::string> Cluster::ListRemoteDevices() const {
  std::vector<std::string> names;
  for (const auto& worker : workers_) {
    for (const std::string& name : worker->DeviceNames()) {
      names.push_back(name);
    }
  }
  return names;
}

StatusOr<WorkerServer*> Cluster::ResolveWorker(
    const std::string& device_name) const {
  TFE_ASSIGN_OR_RETURN(DeviceNameParts parts, ParseDeviceName(device_name));
  for (const auto& worker : workers_) {
    if (worker->job() == parts.job && worker->task() == parts.task) {
      return worker.get();
    }
  }
  return NotFound("No worker serving " + device_name);
}

StatusOr<std::string> Cluster::LocalDevicePart(
    const std::string& device_name) {
  TFE_ASSIGN_OR_RETURN(DeviceNameParts parts, ParseDeviceName(device_name));
  DeviceNameParts local = parts;
  local.job = "localhost";
  local.task = 0;
  return local.ToString();
}

StatusOr<RemoteTensor> Cluster::Put(const std::string& device_name,
                                    const Tensor& tensor) {
  static profiler::Counter* puts =
      profiler::Metrics().GetCounter("cluster.puts");
  puts->Increment();
  profiler::Scope rpc_span(profiler::EventKind::kRpcSend, "cluster.put");
  TFE_ASSIGN_OR_RETURN(WorkerServer * worker, ResolveWorker(device_name));
  return worker->Put(tensor);
}

StatusOr<std::vector<RemoteTensor>> Cluster::RunOp(
    const std::string& device_name, const std::string& op_name,
    const std::vector<RemoteTensor>& inputs, const AttrMap& attrs) {
  static profiler::Counter* run_ops =
      profiler::Metrics().GetCounter("cluster.run_ops");
  run_ops->Increment();
  profiler::Scope rpc_span(profiler::EventKind::kRpcSend, "cluster.run_op");
  if (rpc_span.active()) rpc_span.set_detail(profiler::Intern(op_name));
  TFE_ASSIGN_OR_RETURN(WorkerServer * worker, ResolveWorker(device_name));
  TFE_ASSIGN_OR_RETURN(std::string local_device,
                       LocalDevicePart(device_name));
  std::vector<int64_t> handles;
  handles.reserve(inputs.size());
  for (const RemoteTensor& input : inputs) {
    // Tensors do not implicitly hop between workers; the caller fetches and
    // re-puts (matching the paper's explicit-copy model).
    TFE_ASSIGN_OR_RETURN(WorkerServer * owner, ResolveWorker(input.device));
    if (owner != worker) {
      return InvalidArgument(strings::StrCat(
          "Input tensor lives on ", input.device, ", not on ", device_name,
          "; copy it explicitly via Fetch/Put"));
    }
    handles.push_back(input.handle_id);
  }
  return worker->RunOp(local_device, op_name, handles, attrs);
}

StatusOr<std::vector<RemoteTensor>> Cluster::RunFunction(
    const std::string& device_name, const GraphFunction& function,
    const std::vector<RemoteTensor>& inputs) {
  static profiler::Counter* run_functions =
      profiler::Metrics().GetCounter("cluster.run_functions");
  run_functions->Increment();
  profiler::Scope rpc_span(profiler::EventKind::kRpcSend,
                           "cluster.run_function");
  if (rpc_span.active()) rpc_span.set_detail(profiler::Intern(function.name()));
  TFE_ASSIGN_OR_RETURN(WorkerServer * worker, ResolveWorker(device_name));
  TFE_ASSIGN_OR_RETURN(std::string local_device,
                       LocalDevicePart(device_name));
  // Ship the transitive closure: nested Call/Cond/While callees included.
  TFE_ASSIGN_OR_RETURN(
      std::string serialized,
      SerializeFunctionBundle(function,
                              EagerContext::Global()->functions()));
  std::vector<int64_t> handles;
  handles.reserve(inputs.size());
  for (const RemoteTensor& input : inputs) {
    TFE_ASSIGN_OR_RETURN(WorkerServer * owner, ResolveWorker(input.device));
    if (owner != worker) {
      return InvalidArgument("Cross-worker inputs require explicit copies");
    }
    handles.push_back(input.handle_id);
  }
  return worker->RunFunction(local_device, serialized, handles);
}

StatusOr<Tensor> Cluster::Fetch(const RemoteTensor& tensor) {
  static profiler::Counter* fetches =
      profiler::Metrics().GetCounter("cluster.fetches");
  fetches->Increment();
  profiler::Scope rpc_span(profiler::EventKind::kRpcSend, "cluster.fetch");
  TFE_ASSIGN_OR_RETURN(WorkerServer * worker, ResolveWorker(tensor.device));
  return worker->Fetch(tensor.handle_id);
}

Tensor Cluster::FetchAsync(const RemoteTensor& tensor) {
  auto worker = ResolveWorker(tensor.device);
  if (!worker.ok()) {
    // Same deferred-error protocol as a failed async op: the resolution
    // failure rides in the handle and surfaces at the next sync point.
    auto handle = TensorHandle::Pending(tensor.dtype, tensor.shape,
                                        /*device=*/nullptr,
                                        /*host_clock=*/nullptr);
    handle->SetError(worker.status());
    return Tensor::FromHandle(std::move(handle));
  }
  return (*worker)->FetchAsync(tensor);
}

Status Cluster::Delete(const RemoteTensor& tensor) {
  TFE_ASSIGN_OR_RETURN(WorkerServer * worker, ResolveWorker(tensor.device));
  return worker->Delete(tensor.handle_id);
}

}  // namespace tfe
