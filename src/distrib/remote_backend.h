// WorkerBackend: the in-process RemoteBackend implementation — it binds a
// RemoteDevice registered in the client's DeviceManager to one WorkerServer's
// message queue (the gRPC stand-in). Cluster::Connect creates one per worker
// and shares it across that worker's devices.
//
// The backend may outlive its worker (RemoteDevices registered in a
// long-lived EagerContext hold it by shared_ptr while the Cluster that owns
// the worker dies first). Disconnect() severs the link: from then on every
// call completes inline with Unavailable — the same deferred poisoned-handle
// path a mid-flight worker failure takes. The worker pointer is an atomic,
// not a mutex, so severing never contends with handle releases running
// inside worker completion callbacks.
#ifndef TFE_DISTRIB_REMOTE_BACKEND_H_
#define TFE_DISTRIB_REMOTE_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "device/remote_device.h"
#include "distrib/worker.h"

namespace tfe {

class WorkerBackend : public RemoteBackend {
 public:
  // `worker` must stay valid until Disconnect() is called.
  WorkerBackend(std::string target, WorkerServer* worker);

  // Severs the link to the worker; all later calls fail with Unavailable.
  void Disconnect();
  bool connected() const {
    return worker_.load(std::memory_order_acquire) != nullptr;
  }

  // ---- RemoteBackend --------------------------------------------------------
  const std::string& target() const override { return target_; }
  int64_t AllocateHandleId() override;
  void PutAsync(Tensor value, int64_t dst_id) override;
  Status Put(const Tensor& value, int64_t dst_id) override;
  void RunOpAsync(const std::string& device, const std::string& op,
                  std::vector<int64_t> input_ids, AttrMap attrs,
                  std::vector<int64_t> output_ids, DoneFn done) override;
  StatusOr<std::vector<RemoteOutputMeta>> RunOp(
      const std::string& device, const std::string& op,
      std::vector<int64_t> input_ids, AttrMap attrs,
      std::vector<int64_t> output_ids) override;
  void RunFunctionAsync(const std::string& device, const std::string& name,
                        const std::string& serialized,
                        std::vector<int64_t> input_ids,
                        std::vector<int64_t> output_ids, bool append_captures,
                        DoneFn done) override;
  bool FunctionShipped(const std::string& name) override;
  void MarkFunctionShipped(const std::string& name) override;
  StatusOr<Tensor> Fetch(int64_t handle_id) override;
  void DeleteAsync(int64_t handle_id) override;

  // Client-assigned store ids start here; the worker's own allocator counts
  // up from 1, so the ranges never collide.
  static constexpr int64_t kClientIdBase = int64_t{1} << 40;

 private:
  Status Disconnected() const;

  const std::string target_;
  std::atomic<WorkerServer*> worker_;
  std::atomic<int64_t> next_id_{kClientIdBase};

  // Function names already registered on the worker (ship-once protocol).
  std::mutex shipped_mu_;
  std::unordered_set<std::string> shipped_functions_;
};

}  // namespace tfe

#endif  // TFE_DISTRIB_REMOTE_BACKEND_H_
