// Remote tensor handles (paper §4.5: "Tensors produced as the result of
// running an operation on a remote device stay on the remote device. Users
// can then either perform more operations on these tensors or copy them to
// the central server").
//
// Since remote devices joined the dispatch path, a RemoteTensor is just the
// *wire view* of a remote-backed value: ordinary Tensors produced under a
// remote device scope carry the same store id inside their TensorHandle, and
// View() below extracts it — so the blocking Cluster API and the async
// dispatch path interoperate on the same worker stores.
#ifndef TFE_DISTRIB_REMOTE_TENSOR_H_
#define TFE_DISTRIB_REMOTE_TENSOR_H_

#include <cstdint>
#include <string>

#include "tensor/dtype.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace tfe {

struct RemoteTensor {
  std::string device;  // full name, e.g. "/job:training/task:2/device:CPU:0"
  int64_t handle_id = -1;
  DType dtype = DType::kInvalid;
  Shape shape;

  bool defined() const { return handle_id >= 0; }
  std::string DebugString() const;

  // The wire view of a dispatch-path remote tensor (one produced by running
  // an op under a remote device scope). Undefined (handle_id == -1) when
  // `tensor` is not remote-backed; the view borrows the store entry, whose
  // lifetime stays tied to `tensor`'s handle.
  static RemoteTensor View(const Tensor& tensor);
};

}  // namespace tfe

#endif  // TFE_DISTRIB_REMOTE_TENSOR_H_
