// Remote tensor handles (paper §4.5: "Tensors produced as the result of
// running an operation on a remote device stay on the remote device. Users
// can then either perform more operations on these tensors or copy them to
// the central server").
#ifndef TFE_DISTRIB_REMOTE_TENSOR_H_
#define TFE_DISTRIB_REMOTE_TENSOR_H_

#include <cstdint>
#include <string>

#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace tfe {

struct RemoteTensor {
  std::string device;  // full name, e.g. "/job:training/task:2/device:CPU:0"
  int64_t handle_id = -1;
  DType dtype = DType::kInvalid;
  Shape shape;

  bool defined() const { return handle_id >= 0; }
  std::string DebugString() const;
};

}  // namespace tfe

#endif  // TFE_DISTRIB_REMOTE_TENSOR_H_
