#include "distrib/remote_tensor.h"

#include "support/strings.h"

namespace tfe {

std::string RemoteTensor::DebugString() const {
  if (!defined()) return "RemoteTensor(undefined)";
  return strings::StrCat("RemoteTensor(#", handle_id, " ",
                         DTypeName(dtype), shape.ToString(), " on ", device,
                         ")");
}

}  // namespace tfe
