#include "distrib/remote_tensor.h"

#include "device/device.h"
#include "support/strings.h"
#include "tensor/tensor_handle.h"

namespace tfe {

RemoteTensor RemoteTensor::View(const Tensor& tensor) {
  RemoteTensor view;
  if (!tensor.defined()) return view;
  const auto& handle = tensor.pending_handle();
  if (handle == nullptr || handle->remote_info() == nullptr) return view;
  const TensorHandle::RemoteInfo* info = handle->remote_info();
  view.device = info->device->name();
  view.handle_id = info->handle_id;
  view.dtype = handle->dtype();
  view.shape = handle->shape();
  return view;
}

std::string RemoteTensor::DebugString() const {
  if (!defined()) return "RemoteTensor(undefined)";
  return strings::StrCat("RemoteTensor(#", handle_id, " ",
                         DTypeName(dtype), shape.ToString(), " on ", device,
                         ")");
}

}  // namespace tfe
