#include "tensor/tensor_util.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace tfe {
namespace tensor_util {

Tensor Full(DType dtype, const Shape& shape, double value, Device* device) {
  Tensor tensor = Tensor::Empty(dtype, shape, device);
  for (int64_t i = 0; i < tensor.num_elements(); ++i) {
    SetElementFromDouble(tensor, i, value);
  }
  return tensor;
}

Tensor Zeros(DType dtype, const Shape& shape, Device* device) {
  return Tensor::Empty(dtype, shape, device);  // buffers are zero-initialized
}

Tensor Ones(DType dtype, const Shape& shape, Device* device) {
  return Full(dtype, shape, 1.0, device);
}

Tensor DeepCopy(const Tensor& tensor) {
  TFE_CHECK(!tensor.is_symbolic());
  TFE_CHECK(!tensor.is_resource());
  Tensor copy = Tensor::Empty(tensor.dtype(), tensor.shape(), tensor.device());
  std::memcpy(copy.raw_mutable_data(), tensor.raw_data(),
              static_cast<size_t>(tensor.num_elements()) *
                  DTypeSize(tensor.dtype()));
  return copy;
}

double ElementAsDouble(const Tensor& tensor, int64_t index) {
  TFE_CHECK_GE(index, 0);
  TFE_CHECK_LT(index, tensor.num_elements());
  switch (tensor.dtype()) {
    case DType::kFloat32:
      return tensor.data<float>()[index];
    case DType::kFloat64:
      return tensor.data<double>()[index];
    case DType::kInt32:
      return tensor.data<int32_t>()[index];
    case DType::kInt64:
      return static_cast<double>(tensor.data<int64_t>()[index]);
    case DType::kBool:
      return tensor.data<bool>()[index] ? 1.0 : 0.0;
    default:
      TFE_LOG(FATAL) << "ElementAsDouble on dtype "
                     << DTypeName(tensor.dtype());
      return 0.0;
  }
}

void SetElementFromDouble(Tensor& tensor, int64_t index, double value) {
  TFE_CHECK_GE(index, 0);
  TFE_CHECK_LT(index, tensor.num_elements());
  switch (tensor.dtype()) {
    case DType::kFloat32:
      tensor.mutable_data<float>()[index] = static_cast<float>(value);
      return;
    case DType::kFloat64:
      tensor.mutable_data<double>()[index] = value;
      return;
    case DType::kInt32:
      tensor.mutable_data<int32_t>()[index] = static_cast<int32_t>(value);
      return;
    case DType::kInt64:
      tensor.mutable_data<int64_t>()[index] = static_cast<int64_t>(value);
      return;
    case DType::kBool:
      tensor.mutable_data<bool>()[index] = value != 0.0;
      return;
    default:
      TFE_LOG(FATAL) << "SetElementFromDouble on dtype "
                     << DTypeName(tensor.dtype());
  }
}

bool AllClose(const Tensor& a, const Tensor& b, double rtol, double atol) {
  if (a.dtype() != b.dtype() || a.shape() != b.shape()) return false;
  const int64_t count = a.num_elements();
  if (!IsFloating(a.dtype())) {
    return std::memcmp(a.raw_data(), b.raw_data(),
                       static_cast<size_t>(count) * DTypeSize(a.dtype())) == 0;
  }
  for (int64_t i = 0; i < count; ++i) {
    double va = ElementAsDouble(a, i);
    double vb = ElementAsDouble(b, i);
    if (std::isnan(va) != std::isnan(vb)) return false;
    if (std::isnan(va)) continue;
    if (std::abs(va - vb) > atol + rtol * std::abs(vb)) return false;
  }
  return true;
}

std::string ToString(const Tensor& tensor, int64_t max_elements) {
  if (!tensor.defined()) return "Tensor(undefined)";
  if (tensor.is_symbolic() || tensor.is_resource()) {
    return tensor.DebugString();
  }
  std::ostringstream out;
  out << "tfe.Tensor(shape=" << tensor.shape().ToString()
      << ", dtype=" << DTypeName(tensor.dtype()) << ", values=[";
  int64_t count = std::min(tensor.num_elements(), max_elements);
  for (int64_t i = 0; i < count; ++i) {
    if (i > 0) out << ", ";
    out << ElementAsDouble(tensor, i);
  }
  if (count < tensor.num_elements()) out << ", ...";
  out << "])";
  return out.str();
}

}  // namespace tensor_util
}  // namespace tfe
