#include "tensor/shape.h"

#include <algorithm>

#include "support/logging.h"
#include "support/strings.h"

namespace tfe {

int64_t Shape::dim(int i) const {
  TFE_CHECK_GE(i, 0);
  TFE_CHECK_LT(i, rank());
  return dims_[i];
}

void Shape::set_dim(int i, int64_t value) {
  TFE_CHECK_GE(i, 0);
  TFE_CHECK_LT(i, rank());
  dims_[i] = value;
}

bool Shape::IsFullyDefined() const {
  return std::none_of(dims_.begin(), dims_.end(),
                      [](int64_t d) { return d == kUnknownDim; });
}

int64_t Shape::num_elements() const {
  int64_t count = 1;
  for (int64_t d : dims_) {
    TFE_CHECK_NE(d, kUnknownDim) << "num_elements() on partial shape "
                                 << ToString();
    count *= d;
  }
  return count;
}

bool Shape::IsCompatibleWith(const Shape& other) const {
  if (rank() != other.rank()) return false;
  for (int i = 0; i < rank(); ++i) {
    if (dims_[i] != kUnknownDim && other.dims_[i] != kUnknownDim &&
        dims_[i] != other.dims_[i]) {
      return false;
    }
  }
  return true;
}

StatusOr<Shape> Shape::Merge(const Shape& a, const Shape& b) {
  if (!a.IsCompatibleWith(b)) {
    return InvalidArgument(strings::StrCat("Incompatible shapes ",
                                           a.ToString(), " and ",
                                           b.ToString()));
  }
  std::vector<int64_t> dims(a.rank());
  for (int i = 0; i < a.rank(); ++i) {
    dims[i] = a.dims()[i] != kUnknownDim ? a.dims()[i] : b.dims()[i];
  }
  return Shape(std::move(dims));
}

std::string Shape::ToString() const {
  std::vector<std::string> pieces;
  pieces.reserve(dims_.size());
  for (int64_t d : dims_) {
    pieces.push_back(d == kUnknownDim ? "?" : std::to_string(d));
  }
  return "[" + strings::Join(pieces, ",") + "]";
}

StatusOr<Shape> BroadcastShapes(const Shape& a, const Shape& b) {
  int rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> dims(rank);
  for (int i = 0; i < rank; ++i) {
    // Align trailing dimensions.
    int ai = a.rank() - rank + i;
    int bi = b.rank() - rank + i;
    int64_t da = ai >= 0 ? a.dims()[ai] : 1;
    int64_t db = bi >= 0 ? b.dims()[bi] : 1;
    if (da == db || db == 1) {
      dims[i] = da;
    } else if (da == 1) {
      dims[i] = db;
    } else {
      return InvalidArgument(strings::StrCat("Shapes ", a.ToString(), " and ",
                                             b.ToString(),
                                             " are not broadcastable"));
    }
  }
  return Shape(std::move(dims));
}

}  // namespace tfe
