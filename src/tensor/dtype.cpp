#include "tensor/dtype.h"

#include "support/logging.h"

namespace tfe {

size_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return 4;
    case DType::kFloat64:
      return 8;
    case DType::kInt32:
      return 4;
    case DType::kInt64:
      return 8;
    case DType::kBool:
      return 1;
    case DType::kResource:
      return sizeof(void*);
    case DType::kInvalid:
      break;
  }
  TFE_LOG(FATAL) << "DTypeSize on invalid dtype";
  return 0;
}

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return "float32";
    case DType::kFloat64:
      return "float64";
    case DType::kInt32:
      return "int32";
    case DType::kInt64:
      return "int64";
    case DType::kBool:
      return "bool";
    case DType::kResource:
      return "resource";
    case DType::kInvalid:
      return "invalid";
  }
  return "invalid";
}

DType DTypeFromName(const std::string& name) {
  if (name == "float32") return DType::kFloat32;
  if (name == "float64") return DType::kFloat64;
  if (name == "int32") return DType::kInt32;
  if (name == "int64") return DType::kInt64;
  if (name == "bool") return DType::kBool;
  if (name == "resource") return DType::kResource;
  return DType::kInvalid;
}

bool IsFloating(DType dtype) {
  return dtype == DType::kFloat32 || dtype == DType::kFloat64;
}

bool IsInteger(DType dtype) {
  return dtype == DType::kInt32 || dtype == DType::kInt64;
}

}  // namespace tfe
