// TensorHandle: the future behind an asynchronously executed operation's
// output (paper §5: eager calls return immediately and the host races ahead;
// the same deferred-materialization idea drives LazyTensor).
//
// A handle is a small state machine
//
//     pending ──SetTensor──▶ concrete
//        └─────SetError────▶ error
//
// created with its dtype / shape / device already known (from shape
// inference), so non-value accessors on a pending tensor never block. Value
// reads are *sync points*: they wait for the producing op to retire and — in
// virtual time — raise the host clock to the op's completion time, which is
// exactly the overlap the GPU stream model in cost_model.h describes.
//
// A failed op poisons its outputs: the handle resolves to `error` carrying
// the op's Status, downstream ops propagate it without executing, and the
// original Status surfaces at the next sync point.
#ifndef TFE_TENSOR_TENSOR_HANDLE_H_
#define TFE_TENSOR_TENSOR_HANDLE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {

class TensorHandle {
 public:
  enum class State { kPending, kConcrete, kError };

  // Extra state of a handle whose value lives in a remote worker's tensor
  // store (paper §4.5: results of remote ops stay remote until copied). The
  // handle still runs the ordinary pending→concrete|error state machine —
  // the worker's completion callback resolves it to an *opaque* placeholder
  // tensor — and the first value read triggers `fetch` (transparent
  // copy-on-read), replacing the placeholder with host data. `release` drops
  // the worker-store entry when the last client reference dies.
  struct RemoteInfo {
    Device* device = nullptr;  // the owning RemoteDevice
    int64_t handle_id = -1;    // id in the worker's tensor store
    std::function<StatusOr<Tensor>()> fetch;
    std::function<void()> release;
  };

  // A pending handle with known output metadata. `host_clock`, when non-null,
  // is the owning runtime's virtual host clock; WaitReady raises it to the
  // producing op's completion time (the virtual cost of blocking on a read).
  // The clock must outlive the handle — handles must not outlive their
  // EagerContext, the same lifetime rule tensors already obey.
  static std::shared_ptr<TensorHandle> Pending(
      DType dtype, Shape shape, Device* device,
      std::atomic<uint64_t>* host_clock = nullptr);

  // A pending handle backed by a remote worker-store entry.
  static std::shared_ptr<TensorHandle> PendingRemote(
      DType dtype, Shape shape, RemoteInfo remote,
      std::atomic<uint64_t>* host_clock = nullptr);

  ~TensorHandle();

  // --- metadata (immutable, never blocks) -----------------------------------
  DType dtype() const { return dtype_; }
  const Shape& shape() const { return shape_; }
  Device* device() const { return device_; }

  State state() const;
  bool resolved() const { return state() != State::kPending; }

  // Non-null iff the handle's value lives (or lived) in a remote store.
  // Immutable after construction, so callers may keep the pointer.
  const RemoteInfo* remote_info() const {
    return remote_.device != nullptr ? &remote_ : nullptr;
  }

  // --- resolution (producer side; called exactly once) ----------------------
  // pending -> concrete. `ready_ns` is the virtual time at which the value
  // exists on its device timeline.
  void SetTensor(Tensor value, uint64_t ready_ns);
  // pending -> error. Poisons every read of this handle with `status`.
  void SetError(Status status);

  // --- sync point (consumer side) -------------------------------------------
  // Blocks until resolved; raises the virtual host clock to ready_ns. Returns
  // OK for a concrete value, the poisoning Status for an error. For a
  // remote-backed handle this is also the copy-on-read point: the first
  // successful wait fetches the value from the worker store and replaces the
  // opaque placeholder, so tensor() afterwards sees real host data.
  Status WaitReady() const;

  // The materialized value; requires a prior successful WaitReady().
  const Tensor& tensor() const;
  // The resolution status without blocking (OK while still pending).
  Status status() const;
  // Virtual time at which the value retires on its device (0 until concrete).
  uint64_t ready_ns() const;

  // Runs `fn` once the handle resolves — inline if it already has. Used by
  // the per-device op queues to re-arm a drain without blocking a pool
  // thread on a cross-device dependency.
  void AndThen(std::function<void()> fn);

 private:
  TensorHandle(DType dtype, Shape shape, Device* device,
               std::atomic<uint64_t>* host_clock);

  void Resolve(State state, Tensor value, Status status, uint64_t ready_ns);
  // Copy-on-read: replaces the opaque placeholder of a concrete remote
  // handle with the fetched value, exactly once. Returns the fetch status
  // (cached on repeat calls). No-op (OK) for non-remote handles.
  Status EnsureFetched() const;

  const DType dtype_;
  const Shape shape_;
  Device* const device_;
  std::atomic<uint64_t>* const host_clock_;
  RemoteInfo remote_;  // engaged iff remote_.device != nullptr

  mutable std::mutex mu_;
  mutable std::condition_variable resolved_cv_;
  State state_ = State::kPending;
  Tensor value_;
  Status error_;
  uint64_t ready_ns_ = 0;
  std::vector<std::function<void()>> callbacks_;

  // Serializes the one-shot fetch without holding mu_ across the RPC.
  mutable std::mutex fetch_mu_;
  mutable bool fetched_ = false;
  mutable Status fetch_error_;
};

}  // namespace tfe

#endif  // TFE_TENSOR_TENSOR_HANDLE_H_
