// Tensor: the single value type shared by both execution stages.
//
// A Tensor is a cheap, shared handle that is either
//   * concrete  — dtype + fully-defined shape + device-tagged buffer
//                 (imperative execution, paper §4.1), or
//   * symbolic  — dtype + (possibly partial) shape + a reference to the
//                 graph node output that will compute it (staged execution:
//                 "operations return symbolic representations of values to
//                 be computed instead of concrete values", §4.1), or
//   * resource  — a handle to mutable state (a variable's storage), which is
//                 how staged computations reference variables (§4.3), or
//   * pending   — dtype + shape + device known (from shape inference), value
//                 still being produced by an asynchronously dispatched op
//                 (§5: the imperative runtime "can execute operations
//                 asynchronously" and the host races ahead). Backed by a
//                 TensorHandle future; value reads are sync points.
//
// Every tensor carries a process-unique id used by gradient tapes to link
// op outputs to op inputs (§4.2).
#ifndef TFE_TENSOR_TENSOR_H_
#define TFE_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "support/logging.h"
#include "support/status.h"
#include "tensor/buffer.h"
#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace tfe {

class Device;
class Graph;
class TensorHandle;

// Base class for reference-counted mutable state reachable from resource
// tensors (variable storage, iterators, mutable tables).
class ResourceBase {
 public:
  ResourceBase();
  virtual ~ResourceBase() = default;
  virtual std::string TypeName() const = 0;

  // Process-unique id; staged computations reference state through it
  // (paper §4.3: "staged computations reference variables by unique
  // identifiers").
  int64_t resource_id() const { return resource_id_; }

 private:
  int64_t resource_id_;
};

class Tensor {
 public:
  Tensor() = default;  // undefined handle

  // --- Constructors -------------------------------------------------------
  static Tensor Concrete(DType dtype, Shape shape,
                         std::shared_ptr<Buffer> buffer, Device* device);
  // Allocates a zeroed concrete tensor.
  static Tensor Empty(DType dtype, const Shape& shape, Device* device);
  static Tensor MakeResource(std::shared_ptr<ResourceBase> resource,
                             Device* device);
  static Tensor Symbolic(DType dtype, Shape shape, Graph* graph, int node_id,
                         int output_index);
  // A concrete tensor with shape/dtype metadata but no materialized values
  // (backed by an empty buffer). Produced by simulated devices running in
  // timing-only mode; reading its data is a programming error.
  static Tensor Opaque(DType dtype, Shape shape, Device* device);
  // A tensor backed by an unmaterialized handle: metadata is served from the
  // handle, value reads block on it (async eager dispatch).
  static Tensor FromHandle(std::shared_ptr<TensorHandle> handle);

  // --- Common accessors ----------------------------------------------------
  bool defined() const { return state_ != nullptr; }
  bool is_symbolic() const;
  bool is_resource() const;
  bool is_opaque() const;
  // Handle-backed (produced by async dispatch). Stays true after the handle
  // resolves; use Materialize()/pending_handle()->resolved() to distinguish.
  bool has_handle() const;
  // The backing future, or null for eagerly materialized tensors.
  const std::shared_ptr<TensorHandle>& pending_handle() const;
  // Sync point without crashing: blocks until the backing handle resolves and
  // returns the producing op's Status (deferred error propagation). Concrete
  // tensors return OK immediately.
  Status Materialize() const;
  int64_t id() const;
  DType dtype() const;
  const Shape& shape() const;
  int64_t num_elements() const { return shape().num_elements(); }
  Device* device() const;
  std::string DebugString() const;

  // --- Concrete accessors (CHECK-fail on symbolic handles) -----------------
  const std::shared_ptr<Buffer>& buffer() const;
  const void* raw_data() const;
  void* raw_mutable_data();

  template <typename T>
  const T* data() const {
    TFE_CHECK(DTypeOf<T>::value == dtype())
        << "Tensor::data<" << DTypeName(DTypeOf<T>::value)
        << "> on tensor of dtype " << DTypeName(dtype());
    return static_cast<const T*>(raw_data());
  }

  template <typename T>
  T* mutable_data() {
    TFE_CHECK(DTypeOf<T>::value == dtype());
    return static_cast<T*>(raw_mutable_data());
  }

  // Value of a rank-0 (or single-element) tensor.
  template <typename T>
  T scalar() const {
    TFE_CHECK_EQ(num_elements(), 1) << "scalar() on " << shape().ToString();
    return data<T>()[0];
  }

  const std::shared_ptr<ResourceBase>& resource() const;

  // --- Symbolic accessors ---------------------------------------------------
  Graph* graph() const;
  int node_id() const;
  int output_index() const;

  bool operator==(const Tensor& other) const { return state_ == other.state_; }

  // Number of Tensor objects sharing this value's state. Used by the op-queue
  // fuser to decide whether a run-internal intermediate is observable outside
  // the run (and must be materialized) or can be elided. Inherently racy, like
  // shared_ptr::use_count — callers must only act on it in the safe direction.
  long state_use_count() const { return state_.use_count(); }

  // Implementation detail, public only so the factory helpers in tensor.cpp
  // can allocate it; never touch directly.
  struct State;

 private:
  explicit Tensor(std::shared_ptr<State> state) : state_(std::move(state)) {}

  // Blocks on the backing handle; CHECK-fails on a poisoned one. Callers that
  // need the error as a Status use Materialize() first.
  const Tensor& ResolvedValue() const;

  std::shared_ptr<State> state_;
};

}  // namespace tfe

#endif  // TFE_TENSOR_TENSOR_H_
