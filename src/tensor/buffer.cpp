#include "tensor/buffer.h"

#include <utility>

#include "support/logging.h"
#include "tensor/allocator.h"

namespace tfe {

std::shared_ptr<Buffer> Buffer::Allocate(size_t bytes) {
  return Allocate(bytes, ProcessAllocator());
}

std::shared_ptr<Buffer> Buffer::Allocate(
    size_t bytes, std::shared_ptr<Allocator> allocator) {
  TFE_CHECK(allocator != nullptr);
  void* data = allocator->AllocateRaw(bytes);
  return std::shared_ptr<Buffer>(
      new Buffer(data, bytes, std::move(allocator)));
}

Buffer::~Buffer() { allocator_->DeallocateRaw(data_, bytes_); }

}  // namespace tfe
