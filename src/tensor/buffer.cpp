#include "tensor/buffer.h"

#include <cstdlib>
#include <cstring>

#include "support/logging.h"

namespace tfe {

namespace {
constexpr size_t kAlignment = 64;
}

std::shared_ptr<Buffer> Buffer::Allocate(size_t bytes) {
  // Round up to the alignment so aligned_alloc's size precondition holds;
  // keep zero-size buffers valid (rank-0 slices of empty tensors).
  size_t alloc_bytes = ((bytes + kAlignment - 1) / kAlignment) * kAlignment;
  if (alloc_bytes == 0) alloc_bytes = kAlignment;
  void* data = std::aligned_alloc(kAlignment, alloc_bytes);
  TFE_CHECK(data != nullptr) << "Out of memory allocating " << bytes
                             << " bytes";
  std::memset(data, 0, alloc_bytes);
  return std::shared_ptr<Buffer>(new Buffer(data, bytes));
}

Buffer::~Buffer() { std::free(data_); }

}  // namespace tfe
