#include "tensor/buffer.h"

#include <utility>

#include "support/logging.h"
#include "tensor/allocator.h"

namespace tfe {

std::shared_ptr<Buffer> Buffer::Allocate(size_t bytes) {
  return Allocate(bytes, ProcessAllocator());
}

std::shared_ptr<Buffer> Buffer::Allocate(
    size_t bytes, std::shared_ptr<Allocator> allocator) {
  TFE_CHECK(allocator != nullptr);
  void* data = allocator->AllocateRaw(bytes);
  return std::shared_ptr<Buffer>(
      new Buffer(data, bytes, std::move(allocator)));
}

std::shared_ptr<Buffer> Buffer::View(std::shared_ptr<Buffer> base,
                                     size_t offset, size_t bytes) {
  TFE_CHECK(base != nullptr && !base->is_view());
  TFE_CHECK(offset + bytes <= base->bytes())
      << "Buffer view [" << offset << ", " << offset + bytes
      << ") exceeds slab of " << base->bytes() << " bytes";
  void* data = static_cast<char*>(base->data()) + offset;
  std::shared_ptr<Allocator> allocator = base->allocator();
  return std::shared_ptr<Buffer>(
      new Buffer(data, bytes, std::move(allocator), std::move(base)));
}

Buffer::~Buffer() {
  // Views borrow their slab's storage; only owning buffers return bytes.
  if (base_ == nullptr) allocator_->DeallocateRaw(data_, bytes_);
}

}  // namespace tfe
