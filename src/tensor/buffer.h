// A reference-counted block of tensor storage.
//
// All storage — including storage "on" the simulated accelerators — is host
// memory; the owning Device is a *tag* recorded on the tensor handle, and
// the simulated devices account for transfer/kernel time in virtual time
// (see device/). Buffers are immutable once published inside a tensor; ops
// that mutate state (variable assign) swap in freshly allocated buffers, so
// readers holding the old buffer are never invalidated.
#ifndef TFE_TENSOR_BUFFER_H_
#define TFE_TENSOR_BUFFER_H_

#include <cstddef>
#include <memory>

namespace tfe {

class Buffer {
 public:
  // Allocates `bytes` of 64-byte-aligned, zero-initialized storage.
  static std::shared_ptr<Buffer> Allocate(size_t bytes);

  ~Buffer();

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  void* data() { return data_; }
  const void* data() const { return data_; }
  size_t bytes() const { return bytes_; }

 private:
  Buffer(void* data, size_t bytes) : data_(data), bytes_(bytes) {}

  void* data_;
  size_t bytes_;
};

}  // namespace tfe

#endif  // TFE_TENSOR_BUFFER_H_
