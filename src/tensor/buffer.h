// A reference-counted block of tensor storage.
//
// All storage — including storage "on" the simulated accelerators — is host
// memory; the owning Device is a *tag* recorded on the tensor handle, and
// the simulated devices account for transfer/kernel time in virtual time
// (see device/). Buffers are immutable once published inside a tensor; ops
// that mutate state (variable assign) swap in freshly allocated buffers, so
// readers holding the old buffer are never invalidated.
//
// Storage comes from an Allocator (allocator.h): per-device arenas by
// default, a pass-through SystemAllocator under TFE_ALLOCATOR=system. The
// buffer keeps its allocator alive and returns the bytes through it.
#ifndef TFE_TENSOR_BUFFER_H_
#define TFE_TENSOR_BUFFER_H_

#include <cstddef>
#include <memory>

namespace tfe {

class Allocator;

class Buffer {
 public:
  // Allocates `bytes` of 64-byte-aligned, zero-initialized storage from the
  // process-default allocator (device-less buffers).
  static std::shared_ptr<Buffer> Allocate(size_t bytes);
  // Same, from a specific allocator (the owning device's).
  static std::shared_ptr<Buffer> Allocate(size_t bytes,
                                          std::shared_ptr<Allocator> allocator);

  ~Buffer();

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  void* data() { return data_; }
  const void* data() const { return data_; }
  size_t bytes() const { return bytes_; }

  // The allocator this buffer's storage came from (never null).
  const std::shared_ptr<Allocator>& allocator() const { return allocator_; }

 private:
  Buffer(void* data, size_t bytes, std::shared_ptr<Allocator> allocator)
      : data_(data), bytes_(bytes), allocator_(std::move(allocator)) {}

  void* data_;
  size_t bytes_;
  std::shared_ptr<Allocator> allocator_;
};

}  // namespace tfe

#endif  // TFE_TENSOR_BUFFER_H_
