// A reference-counted block of tensor storage.
//
// All storage — including storage "on" the simulated accelerators — is host
// memory; the owning Device is a *tag* recorded on the tensor handle, and
// the simulated devices account for transfer/kernel time in virtual time
// (see device/). Buffers are immutable once published inside a tensor; ops
// that mutate state (variable assign) swap in freshly allocated buffers, so
// readers holding the old buffer are never invalidated.
//
// Storage comes from an Allocator (allocator.h): per-device arenas by
// default, a pass-through SystemAllocator under TFE_ALLOCATOR=system. The
// buffer keeps its allocator alive and returns the bytes through it.
#ifndef TFE_TENSOR_BUFFER_H_
#define TFE_TENSOR_BUFFER_H_

#include <cstddef>
#include <memory>

namespace tfe {

class Allocator;

class Buffer {
 public:
  // Allocates `bytes` of 64-byte-aligned, zero-initialized storage from the
  // process-default allocator (device-less buffers).
  static std::shared_ptr<Buffer> Allocate(size_t bytes);
  // Same, from a specific allocator (the owning device's).
  static std::shared_ptr<Buffer> Allocate(size_t bytes,
                                          std::shared_ptr<Allocator> allocator);

  // Non-owning view of [offset, offset + bytes) of `base` — the static
  // memory planner's handout into a plan slab (graph/memory_planner.h). The
  // view holds `base`'s shared_ptr, so the slab outlives every view by
  // construction; destroying a view returns nothing to the allocator.
  // `base` must itself own its storage (no views of views).
  static std::shared_ptr<Buffer> View(std::shared_ptr<Buffer> base,
                                      size_t offset, size_t bytes);

  ~Buffer();

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  void* data() { return data_; }
  const void* data() const { return data_; }
  size_t bytes() const { return bytes_; }

  // The allocator this buffer's storage came from (never null).
  const std::shared_ptr<Allocator>& allocator() const { return allocator_; }

  // True for offset views into a plan slab. Views are never donation
  // targets and never enter the cross-run forwarding pool: their bytes
  // belong to the plan's block-reuse schedule, not to this buffer's
  // lifetime.
  bool is_view() const { return base_ != nullptr; }
  // The owning slab for views, null otherwise.
  const std::shared_ptr<Buffer>& base() const { return base_; }

 private:
  Buffer(void* data, size_t bytes, std::shared_ptr<Allocator> allocator,
         std::shared_ptr<Buffer> base = nullptr)
      : data_(data),
        bytes_(bytes),
        allocator_(std::move(allocator)),
        base_(std::move(base)) {}

  void* data_;
  size_t bytes_;
  std::shared_ptr<Allocator> allocator_;
  std::shared_ptr<Buffer> base_;
};

}  // namespace tfe

#endif  // TFE_TENSOR_BUFFER_H_
