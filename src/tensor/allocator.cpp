#include "tensor/allocator.h"

#include <cstdlib>
#include <cstring>

#include "profiler/profiler.h"
#include "support/logging.h"

namespace tfe {

namespace {

// Process-wide aggregate metrics across every allocator instance. Cached
// pointers; counters/gauges are cheap enough to update unconditionally.
struct GlobalAllocatorMetrics {
  profiler::Counter* allocations;
  // Alias of `allocations` under the name the memory-planning benches gate
  // on: calls that actually reached an allocator (planned slab views and
  // forwarded blocks never do).
  profiler::Counter* alloc_calls;
  profiler::Counter* deallocations;
  profiler::Counter* bytes_requested;
  profiler::Counter* bytes_reused;
  profiler::Counter* freelist_hits;
  profiler::Counter* freelist_misses;
  profiler::Gauge* in_use_bytes;
  profiler::Gauge* high_water_bytes;

  GlobalAllocatorMetrics() {
    auto& m = profiler::Metrics();
    allocations = m.GetCounter("allocator.allocations");
    alloc_calls = m.GetCounter("allocator.alloc_calls");
    deallocations = m.GetCounter("allocator.deallocations");
    bytes_requested = m.GetCounter("allocator.bytes_requested");
    bytes_reused = m.GetCounter("allocator.bytes_reused");
    freelist_hits = m.GetCounter("allocator.freelist_hits");
    freelist_misses = m.GetCounter("allocator.freelist_misses");
    in_use_bytes = m.GetGauge("allocator.in_use_bytes");
    high_water_bytes = m.GetGauge("allocator.high_water_bytes");
  }
};

GlobalAllocatorMetrics& GlobalMetrics() {
  static GlobalAllocatorMetrics* metrics = new GlobalAllocatorMetrics();
  return *metrics;
}

void* SystemAlloc(size_t footprint) {
  void* ptr = std::aligned_alloc(Allocator::kAlignment, footprint);
  TFE_CHECK(ptr != nullptr) << "Out of memory allocating " << footprint
                            << " bytes";
  return ptr;
}

void RaiseHighWater(profiler::Gauge* high_water, int64_t in_use) {
  // Monitoring-grade check-then-set: concurrent raises may interleave, but
  // the gauge only ever moves toward the true maximum.
  if (in_use > high_water->value()) high_water->Set(in_use);
}

std::atomic<int> g_kind_override{-1};  // -1 unset, else AllocatorKind

}  // namespace

void Allocator::NoteAlloc(size_t requested, size_t footprint, bool reused) {
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_requested.fetch_add(requested, std::memory_order_relaxed);
  if (reused) {
    stats_.bytes_reused.fetch_add(requested, std::memory_order_relaxed);
    stats_.freelist_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.freelist_misses.fetch_add(1, std::memory_order_relaxed);
  }
  int64_t in_use =
      stats_.in_use_bytes.fetch_add(static_cast<int64_t>(footprint),
                                    std::memory_order_relaxed) +
      static_cast<int64_t>(footprint);
  int64_t high = stats_.high_water_bytes.load(std::memory_order_relaxed);
  while (in_use > high && !stats_.high_water_bytes.compare_exchange_weak(
                              high, in_use, std::memory_order_relaxed)) {
  }

  auto& global = GlobalMetrics();
  global.allocations->Increment();
  global.alloc_calls->Increment();
  global.bytes_requested->Increment(requested);
  if (reused) {
    global.bytes_reused->Increment(requested);
    global.freelist_hits->Increment();
  } else {
    global.freelist_misses->Increment();
  }
  global.in_use_bytes->Add(static_cast<int64_t>(footprint));
  RaiseHighWater(global.high_water_bytes, global.in_use_bytes->value());
}

void Allocator::NoteFree(size_t footprint) {
  stats_.deallocations.fetch_add(1, std::memory_order_relaxed);
  stats_.in_use_bytes.fetch_sub(static_cast<int64_t>(footprint),
                                std::memory_order_relaxed);
  auto& global = GlobalMetrics();
  global.deallocations->Increment();
  global.in_use_bytes->Add(-static_cast<int64_t>(footprint));
}

SystemAllocator::SystemAllocator(std::string name)
    : Allocator(std::move(name)) {}

void* SystemAllocator::AllocateRaw(size_t bytes) {
  size_t footprint = RoundUp(bytes);
  void* ptr = SystemAlloc(footprint);
  std::memset(ptr, 0, footprint);
  NoteAlloc(bytes, footprint, /*reused=*/false);
  return ptr;
}

void SystemAllocator::DeallocateRaw(void* ptr, size_t bytes) {
  if (ptr == nullptr) return;
  std::free(ptr);
  NoteFree(RoundUp(bytes));
}

ArenaAllocator::ArenaAllocator(std::string name, size_t max_retained_bytes)
    : Allocator(std::move(name)), max_retained_bytes_(max_retained_bytes) {}

ArenaAllocator::~ArenaAllocator() {
  // Buffers hold a shared_ptr to their allocator, so by the time the arena
  // dies every outstanding block has already come back to the freelists.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& freelist : freelists_) {
    for (void* ptr : freelist) std::free(ptr);
    freelist.clear();
  }
  retained_bytes_ = 0;
}

int ArenaAllocator::ClassIndex(size_t footprint) {
  int cls = 0;
  size_t bytes = kAlignment;
  while (bytes < footprint && cls < kNumClasses) {
    bytes <<= 1;
    ++cls;
  }
  return cls;
}

size_t ArenaAllocator::retained_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_bytes_;
}

void* ArenaAllocator::AllocateRaw(size_t bytes) {
  const size_t rounded = RoundUp(bytes);
  const int cls = ClassIndex(rounded);
  const bool direct = cls >= kNumClasses;
  const size_t footprint = direct ? rounded : ClassBytes(cls);

  void* ptr = nullptr;
  if (!direct) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!freelists_[cls].empty()) {
      ptr = freelists_[cls].back();
      freelists_[cls].pop_back();
      retained_bytes_ -= footprint;
    }
  }
  const bool reused = ptr != nullptr;
  if (!reused) {
    ptr = SystemAlloc(footprint);
    if (profiler::enabled()) {
      static const uint32_t slab_name = profiler::Intern("allocator_slab");
      profiler::RecordInstant(profiler::EventKind::kAllocator, slab_name,
                              static_cast<int64_t>(footprint));
    }
  }
  // Re-zero even reused blocks: Buffer's contract is zero-initialized
  // storage, and the previous tenant's bytes are still in there. Planned
  // slab offsets (graph/memory_planner.*) don't come through here — the
  // planner zeroes each handout itself, and skips it only for slots whose
  // first use is a provable full-space store (MemoryPlan skip_zero).
  std::memset(ptr, 0, footprint);
  NoteAlloc(bytes, footprint, reused);
  return ptr;
}

void ArenaAllocator::DeallocateRaw(void* ptr, size_t bytes) {
  if (ptr == nullptr) return;
  const size_t rounded = RoundUp(bytes);
  const int cls = ClassIndex(rounded);
  const bool direct = cls >= kNumClasses;
  const size_t footprint = direct ? rounded : ClassBytes(cls);

  bool retain = false;
  if (!direct) {
    std::lock_guard<std::mutex> lock(mu_);
    if (retained_bytes_ + footprint <= max_retained_bytes_) {
      freelists_[cls].push_back(ptr);
      retained_bytes_ += footprint;
      retain = true;
    }
  }
  if (!retain) std::free(ptr);
  NoteFree(footprint);
}

AllocatorKind DefaultAllocatorKind() {
  int override_kind = g_kind_override.load(std::memory_order_acquire);
  if (override_kind >= 0) return static_cast<AllocatorKind>(override_kind);
  const char* env = std::getenv("TFE_ALLOCATOR");
  if (env != nullptr && std::strcmp(env, "system") == 0) {
    return AllocatorKind::kSystem;
  }
  return AllocatorKind::kArena;
}

void OverrideDefaultAllocatorKind(AllocatorKind kind) {
  g_kind_override.store(static_cast<int>(kind), std::memory_order_release);
}

void ClearAllocatorKindOverride() {
  g_kind_override.store(-1, std::memory_order_release);
}

std::shared_ptr<Allocator> MakeAllocator(AllocatorKind kind,
                                         std::string name) {
  if (kind == AllocatorKind::kSystem) {
    return std::make_shared<SystemAllocator>(std::move(name));
  }
  return std::make_shared<ArenaAllocator>(std::move(name));
}

const std::shared_ptr<Allocator>& ProcessAllocator() {
  // Leaked singletons: buffers may outlive every context and static
  // destruction order is unknowable, so the process allocators never die.
  static const auto* arena = new std::shared_ptr<Allocator>(
      std::make_shared<ArenaAllocator>("process"));
  static const auto* system = new std::shared_ptr<Allocator>(
      std::make_shared<SystemAllocator>("process"));
  return DefaultAllocatorKind() == AllocatorKind::kSystem ? *system : *arena;
}

}  // namespace tfe
