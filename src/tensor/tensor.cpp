#include "tensor/tensor.h"

#include <atomic>

#include "device/device.h"
#include "support/strings.h"
#include "tensor/allocator.h"
#include "tensor/tensor_handle.h"

namespace tfe {

namespace {
std::atomic<int64_t> g_next_tensor_id{1};
std::atomic<int64_t> g_next_resource_id{1};
}  // namespace

ResourceBase::ResourceBase()
    : resource_id_(g_next_resource_id.fetch_add(1, std::memory_order_relaxed)) {}

struct Tensor::State {
  int64_t id = 0;
  DType dtype = DType::kInvalid;
  Shape shape;
  Device* device = nullptr;

  // Concrete storage (null for symbolic tensors).
  std::shared_ptr<Buffer> buffer;
  std::shared_ptr<ResourceBase> resource;

  // Symbolic reference: output `output_index` of node `node_id` in `graph`.
  Graph* graph = nullptr;
  int node_id = -1;
  int output_index = -1;

  // Timing-only placeholder (simulated device, kernels not executed).
  bool opaque = false;

  // Async-dispatch future; when set, value accessors block on it.
  std::shared_ptr<TensorHandle> handle;
};

namespace {
std::shared_ptr<Tensor::State> NewState() {
  auto state = std::make_shared<Tensor::State>();
  state->id = g_next_tensor_id.fetch_add(1, std::memory_order_relaxed);
  return state;
}
}  // namespace

Tensor Tensor::Concrete(DType dtype, Shape shape,
                        std::shared_ptr<Buffer> buffer, Device* device) {
  TFE_CHECK(shape.IsFullyDefined())
      << "Concrete tensor requires a fully-defined shape, got "
      << shape.ToString();
  auto state = NewState();
  state->dtype = dtype;
  state->shape = std::move(shape);
  state->buffer = std::move(buffer);
  state->device = device;
  TFE_CHECK(state->buffer != nullptr);
  TFE_CHECK_NE(dtype, DType::kResource);
  TFE_CHECK_GE(static_cast<int64_t>(state->buffer->bytes()),
               state->shape.num_elements() *
                   static_cast<int64_t>(DTypeSize(dtype)));
  return Tensor(std::move(state));
}

Tensor Tensor::Empty(DType dtype, const Shape& shape, Device* device) {
  // Storage comes from the owning device's allocator so per-device arenas
  // account (and recycle) their own traffic; device-less tensors use the
  // process-wide default.
  auto buffer = Buffer::Allocate(
      static_cast<size_t>(shape.num_elements()) * DTypeSize(dtype),
      device != nullptr ? device->allocator_shared() : ProcessAllocator());
  return Concrete(dtype, shape, std::move(buffer), device);
}

Tensor Tensor::MakeResource(std::shared_ptr<ResourceBase> resource,
                            Device* device) {
  auto state = NewState();
  state->dtype = DType::kResource;
  state->shape = Shape();
  state->resource = std::move(resource);
  state->device = device;
  TFE_CHECK(state->resource != nullptr);
  return Tensor(std::move(state));
}

Tensor Tensor::Symbolic(DType dtype, Shape shape, Graph* graph, int node_id,
                        int output_index) {
  auto state = NewState();
  state->dtype = dtype;
  state->shape = std::move(shape);
  state->graph = graph;
  state->node_id = node_id;
  state->output_index = output_index;
  return Tensor(std::move(state));
}

Tensor Tensor::Opaque(DType dtype, Shape shape, Device* device) {
  TFE_CHECK(shape.IsFullyDefined());
  auto state = NewState();
  state->dtype = dtype;
  state->shape = std::move(shape);
  state->buffer = Buffer::Allocate(0);
  state->device = device;
  state->opaque = true;
  return Tensor(std::move(state));
}

Tensor Tensor::FromHandle(std::shared_ptr<TensorHandle> handle) {
  TFE_CHECK(handle != nullptr);
  auto state = NewState();
  // Metadata is known up front (shape inference); only the value is deferred.
  state->dtype = handle->dtype();
  state->shape = handle->shape();
  state->device = handle->device();
  state->handle = std::move(handle);
  return Tensor(std::move(state));
}

bool Tensor::has_handle() const { return defined() && state_->handle != nullptr; }

const std::shared_ptr<TensorHandle>& Tensor::pending_handle() const {
  static const std::shared_ptr<TensorHandle> kNull;
  return defined() && state_->handle != nullptr ? state_->handle : kNull;
}

Status Tensor::Materialize() const {
  if (!defined() || state_->handle == nullptr) return Status::OK();
  return state_->handle->WaitReady();
}

const Tensor& Tensor::ResolvedValue() const {
  Status status = state_->handle->WaitReady();
  TFE_CHECK(status.ok()) << "Reading a poisoned async tensor: "
                         << status.ToString();
  return state_->handle->tensor();
}

bool Tensor::is_opaque() const {
  if (!defined()) return false;
  if (state_->handle != nullptr) {
    const auto& handle = state_->handle;
    // Remote-backed handles resolve to opaque placeholders, but their values
    // are readable: the first read fetches from the worker store
    // (copy-on-read). Don't peek at the placeholder either — tensor() before
    // the fetch completes would race with the placeholder swap.
    if (handle->remote_info() != nullptr) return false;
    return handle->resolved() && handle->status().ok() &&
           handle->tensor().is_opaque();
  }
  return state_->opaque;
}

bool Tensor::is_symbolic() const {
  return defined() && state_->graph != nullptr;
}

bool Tensor::is_resource() const {
  return defined() && state_->dtype == DType::kResource;
}

int64_t Tensor::id() const {
  TFE_CHECK(defined());
  return state_->id;
}

DType Tensor::dtype() const {
  TFE_CHECK(defined());
  return state_->dtype;
}

const Shape& Tensor::shape() const {
  TFE_CHECK(defined());
  return state_->shape;
}

Device* Tensor::device() const {
  TFE_CHECK(defined());
  return state_->device;
}

const std::shared_ptr<Buffer>& Tensor::buffer() const {
  TFE_CHECK(defined());
  if (state_->handle != nullptr) return ResolvedValue().buffer();
  TFE_CHECK(!is_symbolic()) << "buffer() on symbolic tensor";
  TFE_CHECK(state_->buffer != nullptr) << "buffer() on resource tensor";
  return state_->buffer;
}

const void* Tensor::raw_data() const {
  TFE_CHECK(defined());
  if (state_->handle != nullptr) return ResolvedValue().raw_data();
  TFE_CHECK(!is_opaque())
      << "Reading values of an opaque (timing-only simulation) tensor";
  return buffer()->data();
}

void* Tensor::raw_mutable_data() {
  TFE_CHECK(defined());
  if (state_->handle != nullptr) {
    return const_cast<Tensor&>(ResolvedValue()).raw_mutable_data();
  }
  TFE_CHECK(!is_opaque())
      << "Writing values of an opaque (timing-only simulation) tensor";
  return buffer()->data();
}

const std::shared_ptr<ResourceBase>& Tensor::resource() const {
  TFE_CHECK(defined());
  TFE_CHECK(is_resource()) << "resource() on non-resource tensor";
  return state_->resource;
}

Graph* Tensor::graph() const {
  TFE_CHECK(is_symbolic());
  return state_->graph;
}

int Tensor::node_id() const {
  TFE_CHECK(is_symbolic());
  return state_->node_id;
}

int Tensor::output_index() const {
  TFE_CHECK(is_symbolic());
  return state_->output_index;
}

std::string Tensor::DebugString() const {
  if (!defined()) return "Tensor(undefined)";
  if (state_->handle != nullptr && !state_->handle->resolved()) {
    return strings::StrCat("PendingTensor(dtype=", DTypeName(dtype()),
                           ", shape=", shape().ToString(), ")");
  }
  if (is_symbolic()) {
    return strings::StrCat("SymbolicTensor(dtype=", DTypeName(dtype()),
                           ", shape=", shape().ToString(), ", node=",
                           state_->node_id, ":", state_->output_index, ")");
  }
  if (is_resource()) {
    return strings::StrCat("ResourceTensor(", state_->resource->TypeName(),
                           " #", state_->resource->resource_id(), ")");
  }
  return strings::StrCat("Tensor(dtype=", DTypeName(dtype()),
                         ", shape=", shape().ToString(), ")");
}

}  // namespace tfe
