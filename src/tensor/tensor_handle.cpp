#include "tensor/tensor_handle.h"

#include <utility>

#include "support/logging.h"

namespace tfe {

TensorHandle::TensorHandle(DType dtype, Shape shape, Device* device,
                           std::atomic<uint64_t>* host_clock)
    : dtype_(dtype),
      shape_(std::move(shape)),
      device_(device),
      host_clock_(host_clock) {}

std::shared_ptr<TensorHandle> TensorHandle::Pending(
    DType dtype, Shape shape, Device* device,
    std::atomic<uint64_t>* host_clock) {
  return std::shared_ptr<TensorHandle>(
      new TensorHandle(dtype, std::move(shape), device, host_clock));
}

std::shared_ptr<TensorHandle> TensorHandle::PendingRemote(
    DType dtype, Shape shape, RemoteInfo remote,
    std::atomic<uint64_t>* host_clock) {
  TFE_CHECK(remote.device != nullptr);
  auto handle = std::shared_ptr<TensorHandle>(
      new TensorHandle(dtype, std::move(shape), remote.device, host_clock));
  handle->remote_ = std::move(remote);
  return handle;
}

TensorHandle::~TensorHandle() {
  // Last client reference: drop the worker-store entry. `release` never
  // blocks (fire-and-forget delete), so running it from arbitrary dtor
  // contexts — including worker completion callbacks — is safe.
  if (remote_.release) remote_.release();
}

TensorHandle::State TensorHandle::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

void TensorHandle::Resolve(State state, Tensor value, Status status,
                           uint64_t ready_ns) {
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TFE_CHECK(state_ == State::kPending) << "TensorHandle resolved twice";
    state_ = state;
    value_ = std::move(value);
    error_ = std::move(status);
    ready_ns_ = ready_ns;
    callbacks.swap(callbacks_);
  }
  resolved_cv_.notify_all();
  for (auto& fn : callbacks) fn();
}

void TensorHandle::SetTensor(Tensor value, uint64_t ready_ns) {
  TFE_CHECK(value.defined());
  Resolve(State::kConcrete, std::move(value), Status::OK(), ready_ns);
}

void TensorHandle::SetError(Status status) {
  TFE_CHECK(!status.ok());
  Resolve(State::kError, Tensor(), std::move(status), 0);
}

Status TensorHandle::WaitReady() const {
  uint64_t ready_ns = 0;
  Status status;
  {
    std::unique_lock<std::mutex> lock(mu_);
    resolved_cv_.wait(lock, [this] { return state_ != State::kPending; });
    status = error_;
    ready_ns = ready_ns_;
  }
  // Virtual blocking: reading the value joins the host clock with the
  // producing op's completion on its device timeline.
  if (host_clock_ != nullptr && ready_ns > 0) {
    uint64_t current = host_clock_->load(std::memory_order_relaxed);
    while (current < ready_ns &&
           !host_clock_->compare_exchange_weak(current, ready_ns,
                                               std::memory_order_relaxed)) {
    }
  }
  if (!status.ok()) return status;
  // Copy-on-read for remote-backed handles: the worker callback resolved
  // this handle to an opaque placeholder; the first wait pulls the value.
  return EnsureFetched();
}

Status TensorHandle::EnsureFetched() const {
  if (remote_.device == nullptr || !remote_.fetch) return Status::OK();
  std::lock_guard<std::mutex> fetch_lock(fetch_mu_);
  if (fetched_) return fetch_error_;
  bool placeholder;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TFE_CHECK(state_ == State::kConcrete);
    placeholder = value_.is_opaque();
  }
  if (placeholder) {
    // The RPC runs outside mu_ so concurrent metadata reads never block on
    // the network. Racing readers serialize on fetch_mu_; once `fetched_`
    // is set, value_ is immutable again and lock-free references handed out
    // by tensor() stay valid.
    StatusOr<Tensor> value = remote_.fetch();
    if (value.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      const_cast<TensorHandle*>(this)->value_ = std::move(value).value();
    } else {
      fetch_error_ = value.status();
    }
  }
  fetched_ = true;
  return fetch_error_;
}

const Tensor& TensorHandle::tensor() const {
  std::lock_guard<std::mutex> lock(mu_);
  TFE_CHECK(state_ == State::kConcrete)
      << "TensorHandle::tensor() on unresolved or poisoned handle: "
      << error_.ToString();
  return value_;
}

Status TensorHandle::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

uint64_t TensorHandle::ready_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_ns_;
}

void TensorHandle::AndThen(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kPending) {
      callbacks_.push_back(std::move(fn));
      return;
    }
  }
  fn();
}

}  // namespace tfe
