// Host-side tensor construction, inspection and comparison helpers.
//
// These never dispatch ops — they operate directly on host buffers and are
// used by tests, kernels, and the public `tfe::constant` entry points.
#ifndef TFE_TENSOR_TENSOR_UTIL_H_
#define TFE_TENSOR_TENSOR_UTIL_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace tfe {
namespace tensor_util {

// Builds a concrete host tensor from a flat value list. The value count must
// match the shape.
template <typename T>
Tensor FromVector(const std::vector<T>& values, const Shape& shape,
                  Device* device = nullptr) {
  TFE_CHECK_EQ(static_cast<int64_t>(values.size()), shape.num_elements());
  Tensor tensor = Tensor::Empty(DTypeOf<T>::value, shape, device);
  std::copy(values.begin(), values.end(), tensor.mutable_data<T>());
  return tensor;
}

template <typename T>
Tensor Scalar(T value, Device* device = nullptr) {
  return FromVector<T>({value}, Shape(), device);
}

// Every element set to `value` (cast to the tensor dtype).
Tensor Full(DType dtype, const Shape& shape, double value,
            Device* device = nullptr);

Tensor Zeros(DType dtype, const Shape& shape, Device* device = nullptr);
Tensor Ones(DType dtype, const Shape& shape, Device* device = nullptr);

// Copies the tensor's values into a std::vector<T>.
template <typename T>
std::vector<T> ToVector(const Tensor& tensor) {
  const T* data = tensor.data<T>();
  return std::vector<T>(data, data + tensor.num_elements());
}

// Deep copy of a concrete tensor's storage (same device tag).
Tensor DeepCopy(const Tensor& tensor);

// Reads element `i` of a numeric tensor as double regardless of dtype.
double ElementAsDouble(const Tensor& tensor, int64_t index);
// Writes element `i`, casting from double to the tensor's dtype.
void SetElementFromDouble(Tensor& tensor, int64_t index, double value);

// Elementwise |a - b| <= atol + rtol*|b| for numeric tensors of equal
// dtype/shape. Integer/bool tensors compare exactly.
bool AllClose(const Tensor& a, const Tensor& b, double rtol = 1e-5,
              double atol = 1e-6);

// Multi-line rendering with values (truncated for large tensors), in the
// spirit of TF's `print(tensor)` output.
std::string ToString(const Tensor& tensor, int64_t max_elements = 64);

}  // namespace tensor_util
}  // namespace tfe

#endif  // TFE_TENSOR_TENSOR_UTIL_H_
