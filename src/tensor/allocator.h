// Allocator: the ownership-aware storage layer behind Buffer.
//
// Every Buffer obtains (and returns) its bytes through an Allocator. Two
// implementations exist:
//   * SystemAllocator — a pass-through over aligned_alloc/free. Every buffer
//     is a fresh system allocation, which keeps ASan/TSan byte-level
//     visibility into buffer lifetimes (a recycled block would hide
//     use-after-free behind reuse).
//   * ArenaAllocator — power-of-two size-class freelists over system slabs.
//     Freed blocks are retained (up to a cap) and handed back on the next
//     request of the same class, so steady-state eager loops allocate from
//     warm memory instead of paying mmap/munmap + page faults per tensor.
//
// Each Device owns one allocator instance (the allocator-behind-context
// pattern), so CPU, sim, and remote devices account allocations separately;
// device-less buffers go through a process-wide default. The implementation
// is selected per instance at construction from `TFE_ALLOCATOR=system|arena`
// (arena when unset) or a programmatic override for A/B benching.
//
// Observability: every instance keeps an AllocatorStats block, and all
// instances additionally aggregate into the process-wide `allocator.*`
// metric family (bytes_requested, bytes_reused, freelist_hits/misses,
// in_use_bytes, high_water_bytes, donations) surfaced in BENCH_*.json as
// `profiler.allocator.*`.
#ifndef TFE_TENSOR_ALLOCATOR_H_
#define TFE_TENSOR_ALLOCATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace tfe {

// Per-instance allocation accounting. All fields are relaxed atomics:
// individually consistent, which is all a monitoring surface needs.
struct AllocatorStats {
  std::atomic<uint64_t> allocations{0};
  std::atomic<uint64_t> deallocations{0};
  // Payload bytes callers asked for (before size-class rounding).
  std::atomic<uint64_t> bytes_requested{0};
  // Payload bytes served from a freelist instead of the system.
  std::atomic<uint64_t> bytes_reused{0};
  std::atomic<uint64_t> freelist_hits{0};
  std::atomic<uint64_t> freelist_misses{0};
  // Footprint (rounded) bytes currently handed out / the most ever out.
  std::atomic<int64_t> in_use_bytes{0};
  std::atomic<int64_t> high_water_bytes{0};
};

class Allocator {
 public:
  // Every allocation is aligned to this and sized in multiples of it.
  static constexpr size_t kAlignment = 64;

  explicit Allocator(std::string name) : name_(std::move(name)) {}
  virtual ~Allocator() = default;

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  // Returns at least `bytes` of kAlignment-aligned, zero-initialized
  // storage. CHECK-fails on OOM (matching the historical Buffer contract).
  virtual void* AllocateRaw(size_t bytes) = 0;
  // Returns storage obtained from AllocateRaw(bytes) on this instance.
  // `bytes` must be the same value passed to AllocateRaw.
  virtual void DeallocateRaw(void* ptr, size_t bytes) = 0;

  // "arena" or "system".
  virtual const char* kind() const = 0;

  // Instance label (the owning device's canonical name, or "process").
  const std::string& name() const { return name_; }
  const AllocatorStats& stats() const { return stats_; }

 protected:
  // Payload -> footprint rounding shared by both implementations.
  static size_t RoundUp(size_t bytes) {
    size_t rounded = ((bytes + kAlignment - 1) / kAlignment) * kAlignment;
    return rounded == 0 ? kAlignment : rounded;
  }

  // Update per-instance stats and the process-wide allocator.* metrics.
  // `footprint` is the rounded block size actually reserved.
  void NoteAlloc(size_t requested, size_t footprint, bool reused);
  void NoteFree(size_t footprint);

  AllocatorStats stats_;

 private:
  const std::string name_;
};

// Pass-through aligned_alloc/free. Freelist metrics count every allocation
// as a miss so arena-vs-system A/B hit rates stay comparable.
class SystemAllocator : public Allocator {
 public:
  explicit SystemAllocator(std::string name);
  ~SystemAllocator() override = default;

  void* AllocateRaw(size_t bytes) override;
  void DeallocateRaw(void* ptr, size_t bytes) override;
  const char* kind() const override { return "system"; }
};

// Thread-safe slab allocator with power-of-two size-class freelists.
// Class i serves blocks of (kAlignment << i) bytes; requests above the
// largest class fall through to the system path. Freed blocks are retained
// up to `max_retained_bytes`; overflow is released to the system. Returned
// memory is re-zeroed on every AllocateRaw, preserving Buffer's
// zero-initialized contract — the win is avoided system calls and page
// faults, not avoided memset.
class ArenaAllocator : public Allocator {
 public:
  static constexpr size_t kDefaultMaxRetainedBytes = size_t{1} << 30;  // 1 GiB

  explicit ArenaAllocator(std::string name,
                          size_t max_retained_bytes = kDefaultMaxRetainedBytes);
  ~ArenaAllocator() override;

  void* AllocateRaw(size_t bytes) override;
  void DeallocateRaw(void* ptr, size_t bytes) override;
  const char* kind() const override { return "arena"; }

  // Bytes currently parked on freelists (test introspection).
  size_t retained_bytes() const;

 private:
  // Largest class: kAlignment << 25 = 2 GiB.
  static constexpr int kNumClasses = 26;

  // Size class serving `footprint` (a RoundUp result), or kNumClasses if it
  // exceeds the largest class (direct system path).
  static int ClassIndex(size_t footprint);
  static size_t ClassBytes(int cls) { return kAlignment << cls; }

  mutable std::mutex mu_;
  std::vector<void*> freelists_[kNumClasses];
  size_t retained_bytes_ = 0;
  const size_t max_retained_bytes_;
};

enum class AllocatorKind { kArena, kSystem };

// The kind new allocator instances are built with: programmatic override if
// set, else TFE_ALLOCATOR=system|arena, else arena.
AllocatorKind DefaultAllocatorKind();
// Programmatic override for A/B benching (takes precedence over the env;
// benches flip it between ResetGlobal calls instead of racing setenv
// against allocating threads).
void OverrideDefaultAllocatorKind(AllocatorKind kind);
void ClearAllocatorKindOverride();

std::shared_ptr<Allocator> MakeAllocator(AllocatorKind kind, std::string name);

// Process-wide allocator for device-less buffers. Picks between two leaked
// singletons (one arena, one system) per the current default kind, so every
// buffer deallocates through the instance that produced it.
const std::shared_ptr<Allocator>& ProcessAllocator();

}  // namespace tfe

#endif  // TFE_TENSOR_ALLOCATOR_H_
