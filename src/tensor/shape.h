// Tensor shapes, with optional unknown dimensions.
//
// Concrete tensors always have fully-defined shapes. Symbolic tensors inside
// a trace may carry unknown dimensions (kUnknownDim) — this is how an
// explicit input signature "can handle arbitrary batch sizes or sequence
// lengths" (paper §4.6).
#ifndef TFE_TENSOR_SHAPE_H_
#define TFE_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "support/status.h"

namespace tfe {

inline constexpr int64_t kUnknownDim = -1;

class Shape {
 public:
  Shape() = default;  // scalar
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const;
  void set_dim(int i, int64_t value);
  const std::vector<int64_t>& dims() const { return dims_; }

  bool IsScalar() const { return dims_.empty(); }

  // True if no dimension is unknown.
  bool IsFullyDefined() const;

  // Product of dimensions. Requires IsFullyDefined().
  int64_t num_elements() const;

  // True if `other` could be a runtime shape for this (possibly partial)
  // shape: equal rank and every known dim matches.
  bool IsCompatibleWith(const Shape& other) const;

  // Element-wise merge of two compatible shapes, keeping known dims.
  static StatusOr<Shape> Merge(const Shape& a, const Shape& b);

  std::string ToString() const;  // e.g. "[2,?,3]" or "[]"

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

 private:
  std::vector<int64_t> dims_;
};

// NumPy-style broadcasting of two fully-defined shapes.
StatusOr<Shape> BroadcastShapes(const Shape& a, const Shape& b);

}  // namespace tfe

#endif  // TFE_TENSOR_SHAPE_H_
