// Tensor element types.
//
// The set mirrors the types the paper's models need (float32 everywhere,
// float64 for L2HMC numerics checks, integer types for labels/indices, bool
// for masks) plus kResource: the handle type through which variables are
// threaded into staged computations (paper §4.3/§4.6 — variables are
// captured *by reference*, i.e. as resource inputs).
#ifndef TFE_TENSOR_DTYPE_H_
#define TFE_TENSOR_DTYPE_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace tfe {

enum class DType : int {
  kInvalid = 0,
  kFloat32 = 1,
  kFloat64 = 2,
  kInt32 = 3,
  kInt64 = 4,
  kBool = 5,
  kResource = 6,
};

// Bytes per element. Resource handles occupy pointer-size slots.
size_t DTypeSize(DType dtype);

// Human-readable name, e.g. "float32".
const char* DTypeName(DType dtype);

// Inverse of DTypeName; returns kInvalid on unknown names.
DType DTypeFromName(const std::string& name);

bool IsFloating(DType dtype);
bool IsInteger(DType dtype);

inline std::ostream& operator<<(std::ostream& os, DType dtype) {
  return os << DTypeName(dtype);
}

// Compile-time C++ type -> DType mapping.
template <typename T>
struct DTypeOf;
template <>
struct DTypeOf<float> {
  static constexpr DType value = DType::kFloat32;
};
template <>
struct DTypeOf<double> {
  static constexpr DType value = DType::kFloat64;
};
template <>
struct DTypeOf<int32_t> {
  static constexpr DType value = DType::kInt32;
};
template <>
struct DTypeOf<int64_t> {
  static constexpr DType value = DType::kInt64;
};
template <>
struct DTypeOf<bool> {
  static constexpr DType value = DType::kBool;
};

}  // namespace tfe

#endif  // TFE_TENSOR_DTYPE_H_
