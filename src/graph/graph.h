// Dataflow graphs: the staged representation of computations.
//
// A Graph is a DAG of Nodes; each node is one primitive operation with
// tensor-valued inputs (endpoints of other nodes) and inferred output types.
// Unlike classic TensorFlow — where a graph is "the union of all the
// computations the author might be interested in" — graphs here always live
// inside a GraphFunction with named inputs and outputs, representing "the
// exact computation of interest" (paper §5).
#ifndef TFE_GRAPH_GRAPH_H_
#define TFE_GRAPH_GRAPH_H_

#include <deque>
#include <string>
#include <vector>

#include "ops/attr_value.h"
#include "ops/shape_inference.h"
#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {

// A tensor-valued graph edge source: output `index` of node `node_id`.
struct Endpoint {
  int node_id = -1;
  int index = 0;

  bool operator==(const Endpoint& other) const {
    return node_id == other.node_id && index == other.index;
  }
};

struct Node {
  int id = -1;
  std::string op;
  AttrMap attrs;
  std::vector<Endpoint> inputs;
  // Control dependencies: this node must run after these nodes. The tracer
  // chains stateful ops so program order of side effects is preserved.
  std::vector<int> control_inputs;
  std::vector<TypeAndShape> outputs;
  // Payload for Const nodes (closed-over eager tensors become constants or
  // captures; small literals become constants).
  Tensor constant_value;
  // Device override requested inside the traced code, if any (paper §4.4:
  // "operations inside the graph function explicitly placed on another
  // device override the outer device context").
  std::string requested_device;
  // Stable id for deterministic RNG stream derivation: execution-only
  // rewrites (FuseElementwise) renumber nodes, and random ops must draw the
  // same Philox stream whether or not the variant ran. -1 means "use the
  // node's current id" (the canonical post-Optimize graph).
  int rng_id = -1;

  int num_outputs() const { return static_cast<int>(outputs.size()); }
  bool is_stateful() const;  // consults the op registry
};

class Graph {
 public:
  Graph() = default;

  // Non-copyable: symbolic tensors hold stable Graph pointers.
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = delete;

  // Adds a node, running the op's shape inference to populate outputs.
  // Pre-inferred outputs can be supplied for ops whose shape function is a
  // stub (Call, HostFunc, Const).
  StatusOr<Node*> AddNode(const std::string& op, std::vector<Endpoint> inputs,
                          AttrMap attrs,
                          std::vector<TypeAndShape> inferred_outputs = {},
                          const std::string& requested_device = "");

  StatusOr<Node*> AddConst(Tensor value,
                           const std::string& requested_device = "");

  // Function parameter `index` of the enclosing GraphFunction.
  StatusOr<Node*> AddArg(int index, DType dtype, Shape shape);

  void AddControlEdge(int from_node, int to_node);

  Node& node(int id) { return nodes_.at(id); }
  const Node& node(int id) const { return nodes_.at(id); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  const TypeAndShape& endpoint_type(const Endpoint& e) const {
    return nodes_.at(e.node_id).outputs.at(e.index);
  }

  // Symbolic tensor referring to `e` in this graph.
  Tensor MakeSymbolic(const Endpoint& e);

  std::string DebugString() const;

  // Replaces the node list wholesale. Optimization passes rebuild the graph
  // with remapped ids; any outstanding symbolic tensors become invalid
  // (passes only run once a trace is finalized).
  void ResetNodes(std::deque<Node> nodes) { nodes_ = std::move(nodes); }

 private:
  // Deque so Node pointers stay valid as the graph grows during tracing.
  std::deque<Node> nodes_;
};

}  // namespace tfe

#endif  // TFE_GRAPH_GRAPH_H_
