// GraphFunction: a dataflow graph with named inputs and outputs — the unit
// of staging, compilation, composition, and serialization (paper §4.1, §4.6,
// §5).
#ifndef TFE_GRAPH_GRAPH_FUNCTION_H_
#define TFE_GRAPH_GRAPH_FUNCTION_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace tfe {

namespace memplan {
class MemoryPlan;
}  // namespace memplan

// A value the trace closed over. Lexical captures are "silently passed to
// the graph function at call-time, without programmer intervention" (§4.6):
// eager tensors are captured by value, variables by reference (their
// resource handle), and — during nested tracing — symbolic tensors of the
// enclosing graph are forwarded to the inner function's call node.
struct Capture {
  Tensor tensor;  // concrete tensor, resource handle, or outer-graph symbol
};

class GraphFunction {
 public:
  explicit GraphFunction(std::string name) : name_(std::move(name)) {}

  GraphFunction(const GraphFunction&) = delete;
  GraphFunction& operator=(const GraphFunction&) = delete;

  const std::string& name() const { return name_; }
  Graph& graph() { return graph_; }
  const Graph& graph() const { return graph_; }

  // Arg nodes in parameter order. The first num_explicit_args() parameters
  // are the user-visible ones; the rest receive captures.
  std::vector<int>& arg_nodes() { return arg_nodes_; }
  const std::vector<int>& arg_nodes() const { return arg_nodes_; }

  std::vector<Endpoint>& outputs() { return outputs_; }
  const std::vector<Endpoint>& outputs() const { return outputs_; }

  std::vector<Capture>& captures() { return captures_; }
  const std::vector<Capture>& captures() const { return captures_; }

  int num_args() const { return static_cast<int>(arg_nodes_.size()); }
  int num_explicit_args() const {
    return num_args() - static_cast<int>(captures_.size());
  }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }

  TypeAndShape output_type(int i) const {
    return graph_.endpoint_type(outputs_.at(i));
  }
  TypeAndShape arg_type(int i) const {
    return graph_.node(arg_nodes_.at(i)).outputs.at(0);
  }

  // True if any node in the body is stateful; stateful calls are never
  // pruned or folded.
  bool IsStateful() const;

  // True if the function can be serialized (no HostFunc attrs — paper §4.7:
  // "graphs with py_funcs are not in general serializable").
  bool IsSerializable() const;

  std::string DebugString() const;

  // Returns the cached execution-only rewrite of this function, building it
  // with `build` on first call; a null result ("no rewrite applies") is
  // cached too. Execution variants (e.g. the elementwise-fused clone made by
  // the Call kernel) are run directly by the caller and stay invisible to
  // autodiff, serialization, and the function library, which all see the
  // original graph.
  std::shared_ptr<GraphFunction> GetOrBuildExecutionVariant(
      const std::function<std::shared_ptr<GraphFunction>()>& build);

  // Cached static memory plan over *this* function's node order (built on
  // the execution variant the executor actually runs — same lifecycle as the
  // variant above; null, also cached, when nothing in the graph is
  // plannable). Const because the executor only holds const references:
  // the plan is derived state, invisible to autodiff and serialization.
  std::shared_ptr<const memplan::MemoryPlan> GetOrBuildMemoryPlan(
      const std::function<std::shared_ptr<const memplan::MemoryPlan>()>&
          build) const;

  // Pristine pre-optimization snapshot of the trace, attached by the tracer
  // before graph passes run. Autodiff builds forward/backward variants from
  // this graph — never the optimized one — so gradient accumulation keeps
  // the program-as-written association and stays bitwise-equal to the eager
  // tape (CSE would otherwise regroup contributions: (g1+g2)*k instead of
  // g1*k + g2*k). Null for functions built directly from graphs (e.g.
  // deserialized bundles), in which case the function's own graph is the
  // autodiff source.
  void set_autodiff_source(std::shared_ptr<const GraphFunction> source) {
    autodiff_source_ = std::move(source);
  }
  const std::shared_ptr<const GraphFunction>& autodiff_source() const {
    return autodiff_source_;
  }

 private:
  std::string name_;
  Graph graph_;
  std::vector<int> arg_nodes_;
  std::vector<Endpoint> outputs_;
  std::vector<Capture> captures_;

  std::mutex variant_mu_;
  bool variant_ready_ = false;
  std::shared_ptr<GraphFunction> execution_variant_;
  std::shared_ptr<const GraphFunction> autodiff_source_;

  mutable std::mutex plan_mu_;
  mutable bool plan_ready_ = false;
  mutable std::shared_ptr<const memplan::MemoryPlan> memory_plan_;
};

// Structural copy of `source` — nodes (ids preserved), arg nodes, captures,
// and outputs — into `target`, which must be freshly constructed. Shared by
// the forward-variant builder in autodiff and the execution-variant rewrites.
Status CloneGraphFunctionInto(const GraphFunction& source,
                              GraphFunction& target);

// A name -> function map. Each EagerContext owns one; nested function calls
// resolve their callee here at execution time.
class FunctionLibrary {
 public:
  Status Register(std::shared_ptr<GraphFunction> function);
  StatusOr<std::shared_ptr<GraphFunction>> Find(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> ListFunctions() const;

  // Returns "<prefix>_<n>" unique within this library.
  std::string UniqueName(const std::string& prefix);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<GraphFunction>> functions_;
  int next_id_ = 0;
};

}  // namespace tfe

#endif  // TFE_GRAPH_GRAPH_FUNCTION_H_
