#include "graph/passes.h"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "device/device.h"
#include "kernels/fused_elementwise.h"
#include "kernels/program_cache.h"
#include "runtime/eager_context.h"
#include "support/strings.h"

namespace tfe {
namespace passes {

namespace {

// Rebuilds `function`'s graph keeping only nodes with keep[id] true,
// remapping every endpoint/control edge/arg/output. Kept nodes preserve
// relative (topological) order.
Status RebuildKeeping(GraphFunction& function, const std::vector<bool>& keep,
                      const std::vector<int>& replace_with) {
  Graph& graph = function.graph();
  const int n = graph.num_nodes();
  std::vector<int> new_id(n, -1);

  // Resolve replacement chains (a pruned node may point at its CSE twin).
  auto resolve = [&](int id) {
    while (replace_with[id] != id) id = replace_with[id];
    return id;
  };

  std::deque<Node> nodes;
  for (int id = 0; id < n; ++id) {
    if (!keep[id]) continue;
    new_id[id] = static_cast<int>(nodes.size());
    nodes.push_back(std::move(graph.node(id)));
  }
  for (Node& node : nodes) {
    node.id = new_id[resolve(node.id)];
    for (Endpoint& e : node.inputs) {
      int target = new_id[resolve(e.node_id)];
      if (target < 0) {
        return Internal("Pass dropped a node that is still referenced");
      }
      e.node_id = target;
    }
    std::vector<int> controls;
    for (int dep : node.control_inputs) {
      int target = new_id[resolve(dep)];
      if (target >= 0 && target != node.id) controls.push_back(target);
    }
    node.control_inputs = std::move(controls);
  }
  for (int& arg : function.arg_nodes()) {
    arg = new_id[resolve(arg)];
    if (arg < 0) return Internal("Pass dropped an Arg node");
  }
  for (Endpoint& out : function.outputs()) {
    out.node_id = new_id[resolve(out.node_id)];
    if (out.node_id < 0) return Internal("Pass dropped an output node");
  }
  graph.ResetNodes(std::move(nodes));
  return Status::OK();
}

std::vector<int> IdentityMap(int n) {
  std::vector<int> map(n);
  for (int i = 0; i < n; ++i) map[i] = i;
  return map;
}

}  // namespace

Status Prune(GraphFunction& function, PassStats* stats) {
  Graph& graph = function.graph();
  const int n = graph.num_nodes();
  std::vector<bool> keep(n, false);
  std::vector<int> worklist;

  auto mark = [&](int id) {
    if (!keep[id]) {
      keep[id] = true;
      worklist.push_back(id);
    }
  };

  for (const Endpoint& out : function.outputs()) mark(out.node_id);
  for (int id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    if (node.op == "Arg" || (node.is_stateful() && node.op != "Arg")) {
      mark(id);
    }
  }
  while (!worklist.empty()) {
    int id = worklist.back();
    worklist.pop_back();
    for (const Endpoint& e : graph.node(id).inputs) mark(e.node_id);
    for (int dep : graph.node(id).control_inputs) mark(dep);
  }

  int pruned = 0;
  for (int id = 0; id < n; ++id) {
    if (!keep[id]) ++pruned;
  }
  if (stats != nullptr) stats->pruned_nodes += pruned;
  if (pruned == 0) return Status::OK();
  return RebuildKeeping(function, keep, IdentityMap(n));
}

Status EliminateCommonSubexpressions(GraphFunction& function,
                                     PassStats* stats) {
  Graph& graph = function.graph();
  const int n = graph.num_nodes();
  std::vector<int> replace_with = IdentityMap(n);
  std::vector<bool> keep(n, true);
  std::map<std::string, int> canonical;
  int merged = 0;

  for (int id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    if (node.is_stateful() || node.op == "Arg" || node.op == "Const") {
      continue;
    }
    std::string key = node.op + "|" + node.requested_device + "|" +
                      AttrMapToString(node.attrs) + "|";
    for (const Endpoint& e : node.inputs) {
      int src = e.node_id;
      while (replace_with[src] != src) src = replace_with[src];
      key += strings::StrCat(src, ":", e.index, ",");
    }
    auto [it, inserted] = canonical.emplace(key, id);
    if (!inserted) {
      replace_with[id] = it->second;
      keep[id] = false;
      ++merged;
    }
  }
  if (stats != nullptr) stats->cse_merged += merged;
  if (merged == 0) return Status::OK();
  return RebuildKeeping(function, keep, replace_with);
}

Status FoldConstants(GraphFunction& function, PassStats* stats) {
  Graph& graph = function.graph();
  EagerContext* ctx = EagerContext::Global();
  const int n = graph.num_nodes();
  int folded = 0;

  for (int id = 0; id < n; ++id) {
    Node& node = graph.node(id);
    if (node.is_stateful() || node.op == "Arg" || node.op == "Const" ||
        node.num_outputs() != 1) {
      continue;
    }
    bool all_const = !node.inputs.empty();
    std::vector<Tensor> inputs;
    for (const Endpoint& e : node.inputs) {
      const Node& src = graph.node(e.node_id);
      if (src.op != "Const") {
        all_const = false;
        break;
      }
      inputs.push_back(src.constant_value);
    }
    if (!all_const) continue;

    auto run = ctx->ExecuteKernel(node.op, inputs, node.attrs, ctx->HostCpu(),
                                  /*compiled=*/false, /*start_ns=*/0);
    if (!run.ok() || run->outputs.size() != 1) continue;  // fold is best-effort
    // Rewrite in place as a Const node.
    node.op = "Const";
    node.attrs.clear();
    node.inputs.clear();
    node.constant_value = run->outputs[0];
    node.outputs = {{node.constant_value.dtype(), node.constant_value.shape()}};
    ++folded;
  }
  if (stats != nullptr) stats->folded_constants += folded;
  return Status::OK();
}

Status Optimize(GraphFunction& function, PassStats* stats) {
  TFE_RETURN_IF_ERROR(FoldConstants(function, stats));
  TFE_RETURN_IF_ERROR(EliminateCommonSubexpressions(function, stats));
  TFE_RETURN_IF_ERROR(Prune(function, stats));
  return Status::OK();
}

Status FuseElementwise(GraphFunction& function, PassStats* stats) {
  Graph& graph = function.graph();
  const int n = graph.num_nodes();

  // Constants and arguments carry no dataflow or control inputs, so
  // floating them to the front preserves topological order while making
  // fusable spans contiguous — a mid-chain scalar Const (ops::scalar inside
  // the traced body) no longer splits a run. The drain never had this
  // problem: resolved constants are operands there, not queue entries.
  {
    auto leading = [&](int id) {
      const Node& node = graph.node(id);
      return node.op == "Const" || node.op == "Arg";
    };
    std::vector<int> order;
    order.reserve(n);
    for (int id = 0; id < n; ++id) {
      if (leading(id)) order.push_back(id);
    }
    for (int id = 0; id < n; ++id) {
      if (!leading(id)) order.push_back(id);
    }
    bool identity = true;
    for (int i = 0; i < n; ++i) identity = identity && order[i] == i;
    if (!identity) {
      std::vector<int> new_id(n);
      for (int i = 0; i < n; ++i) new_id[order[i]] = i;
      std::deque<Node> reordered;
      for (int i = 0; i < n; ++i) {
        Node& node = graph.node(order[i]);
        // Pin the RNG stream before renumbering (see the rebuild below).
        if (node.rng_id < 0) node.rng_id = order[i];
        node.id = i;
        for (Endpoint& e : node.inputs) e.node_id = new_id[e.node_id];
        for (int& dep : node.control_inputs) dep = new_id[dep];
        reordered.push_back(std::move(node));
      }
      for (int& arg : function.arg_nodes()) arg = new_id[arg];
      for (Endpoint& out : function.outputs()) {
        out.node_id = new_id[out.node_id];
      }
      graph.ResetNodes(std::move(reordered));
    }
  }

  // Mirrors the op-queue drain bound: limits the register footprint of one
  // interpreted program.
  constexpr int kMaxFusedRun = 64;

  enum class MemberKind { kCompute, kLayout, kReduce };
  struct MemberClass {
    MemberKind kind = MemberKind::kCompute;
    kernels::MicroOpCode code = kernels::MicroOpCode::kAdd;  // kCompute only
  };

  // Mirrors the drain-side FusableNode: elementwise micro-ops (Cast's single
  // "dst" attr folds into the program — the cast target is always the run
  // dtype, carried on the fused node), layout ops whose attrs the run
  // compiler folds into access descriptors, and trailing reductions.
  auto classify = [&](const Node& node, MemberClass* cls) {
    if (!node.control_inputs.empty() || node.num_outputs() != 1 ||
        !node.outputs[0].shape.IsFullyDefined()) {
      return false;
    }
    const DType dtype = node.outputs[0].dtype;
    if (kernels::MicroOpCodeFor(node.op, &cls->code)) {
      cls->kind = MemberKind::kCompute;
      if (static_cast<int>(node.inputs.size()) !=
          kernels::MicroOpArity(cls->code)) {
        return false;
      }
      if (cls->code == kernels::MicroOpCode::kCast) {
        if (node.attrs.size() != 1 || node.attrs.count("dst") == 0) {
          return false;
        }
      } else if (!node.attrs.empty()) {
        return false;
      }
      return kernels::MicroOpSupports(cls->code, dtype);
    }
    if (kernels::MicroLayoutOp(node.op)) {
      cls->kind = MemberKind::kLayout;
      if (node.inputs.size() != 1) return false;
      if (node.op == "Transpose") {
        auto it = node.attrs.find("perm");
        if (node.attrs.size() != 1 || it == node.attrs.end() ||
            !it->second.Is<std::vector<int64_t>>()) {
          return false;
        }
      } else if (node.op == "Reshape") {
        if (node.attrs.size() != 1 || node.attrs.count("shape") == 0) {
          return false;
        }
      } else if (node.op == "ExpandDims") {
        if (node.attrs.size() != 1 || node.attrs.count("axis") == 0) {
          return false;
        }
      } else {  // Squeeze: "axis" is optional
        if (!node.attrs.empty() &&
            (node.attrs.size() != 1 || node.attrs.count("axis") == 0)) {
          return false;
        }
      }
      return kernels::MicroOpSupports(kernels::MicroOpCode::kCast, dtype);
    }
    kernels::MicroReduceKind rkind;
    if (kernels::MicroReduceKindFor(node.op, &rkind)) {
      cls->kind = MemberKind::kReduce;
      if (node.inputs.size() != 1) return false;
      for (const auto& [name, value] : node.attrs) {
        if (name != "axis" && name != "keep_dims") return false;
      }
      auto it = node.attrs.find("axis");
      if (it != node.attrs.end() && !it->second.Is<std::vector<int64_t>>()) {
        return false;
      }
      return kernels::MicroOpSupports(kernels::MicroOpCode::kCast, dtype);
    }
    return false;
  };

  // Describes member `id` of a run (the ascending member-id list) to the run
  // compiler; external operands collect (deduplicated) into `operands`.
  auto member_desc = [&](int id, const std::vector<int>& members,
                         std::vector<Endpoint>& operands)
      -> kernels::FusedRunOp {
    const Node& node = graph.node(id);
    kernels::FusedRunOp op;
    op.op = node.op;
    op.dtype = node.outputs[0].dtype;
    op.shape = node.outputs[0].shape;
    if (node.op == "Transpose") {
      op.perm = node.attrs.find("perm")->second.Get<std::vector<int64_t>>();
    }
    kernels::MicroReduceKind rkind;
    if (kernels::MicroReduceKindFor(node.op, &rkind)) {
      auto it = node.attrs.find("axis");
      if (it != node.attrs.end()) {
        op.axes = it->second.Get<std::vector<int64_t>>();
      }
    }
    for (const Endpoint& e : node.inputs) {
      // An input produced by an earlier member references its position in
      // the member list (ids ascend, so any member input is earlier).
      int producer = -1;
      for (size_t k = 0; k < members.size() && members[k] < id; ++k) {
        if (members[k] == e.node_id) {
          producer = static_cast<int>(k);
          break;
        }
      }
      if (producer >= 0) {
        op.args.push_back({producer, /*operand=*/-1});
        continue;
      }
      int idx = -1;
      for (size_t k = 0; k < operands.size(); ++k) {
        if (operands[k] == e) {
          idx = static_cast<int>(k);
          break;
        }
      }
      if (idx < 0) {
        idx = static_cast<int>(operands.size());
        operands.push_back(e);
      }
      op.args.push_back({/*producer=*/-1, /*operand=*/idx});
    }
    return op;
  };

  auto build_descs = [&](const std::vector<int>& members,
                         std::vector<Endpoint>* operands,
                         std::vector<kernels::FusedRunOperand>* operand_descs)
      -> std::vector<kernels::FusedRunOp> {
    std::vector<kernels::FusedRunOp> ops;
    for (int id : members) {
      ops.push_back(member_desc(id, members, *operands));
    }
    for (const Endpoint& e : *operands) {
      const TypeAndShape& t = graph.endpoint_type(e);
      operand_descs->push_back({t.dtype, t.shape});
    }
    return ops;
  };

  // How far past a run's anchor the DAG capture scan looks for members
  // (mirrors the drain's bounded peek-plus-skip window).
  constexpr int kMaxScanWindow = 192;

  // Greedy maximal DAG segments: each run is an ascending member-id list,
  // not necessarily contiguous — the scan steps over non-joining nodes
  // (holes), so a non-fusable op interleaved in a diamond no longer cuts the
  // run. The fused node replaces the run at its *anchor* (first member)
  // position, so cycle freedom needs every external operand to precede the
  // anchor: a node whose input comes from a skipped node (id >= anchor, not
  // a member) does not join. Each candidate is trial-compiled and shrunk
  // from the tail until it compiles — the compiler is the single authority
  // on layout compatibility.
  struct Run {
    std::vector<int> members;  // ascending node ids; front() is the anchor
  };
  std::vector<Run> runs;
  std::vector<int> run_of(n, -1);
  int start = 0;
  while (start < n) {
    MemberClass start_cls;
    if (run_of[start] >= 0 || !classify(graph.node(start), &start_cls) ||
        start_cls.kind == MemberKind::kReduce) {
      ++start;
      continue;
    }
    const DType dtype = graph.node(start).outputs[0].dtype;
    std::vector<int> members{start};
    auto member_pos = [&](int id) -> int {
      for (size_t k = 0; k < members.size(); ++k) {
        if (members[k] == id) return static_cast<int>(k);
      }
      return -1;
    };
    // A cast's source operand may be any dtype the kCast micro-op converts
    // from; every other operand must already carry the run dtype. External
    // operands must precede the anchor (see above).
    auto compute_operand_ok = [&](const Endpoint& e, const Shape& member_shape,
                                  bool cast_source) {
      if (member_pos(e.node_id) >= 0) return e.index == 0;  // in-run
      if (e.node_id >= start) return false;  // skipped node: would cycle
      const TypeAndShape& t = graph.endpoint_type(e);
      if (cast_source) {
        if (!kernels::MicroOpSupports(kernels::MicroOpCode::kCast, t.dtype)) {
          return false;
        }
      } else if (t.dtype != dtype) {
        return false;
      }
      return t.shape.IsFullyDefined() &&
             (t.shape.num_elements() == 1 ||
              kernels::BroadcastsTo(t.shape, member_shape));
    };
    // The anchor's own operands are validated here (the member scan starts
    // past it); without this, a hopeless anchor would churn through the
    // shrink loop's trial compiles before being discarded.
    {
      const Node& anchor = graph.node(start);
      const Shape& anchor_shape = anchor.outputs[0].shape;
      bool anchor_ok = true;
      if (start_cls.kind == MemberKind::kLayout) {
        const TypeAndShape& t = graph.endpoint_type(anchor.inputs[0]);
        anchor_ok = t.dtype == dtype && t.shape.IsFullyDefined() &&
                    t.shape.num_elements() == anchor_shape.num_elements();
      } else {
        const bool cast_source =
            start_cls.code == kernels::MicroOpCode::kCast;
        for (const Endpoint& e : anchor.inputs) {
          if (!compute_operand_ok(e, anchor_shape, cast_source)) {
            anchor_ok = false;
            break;
          }
        }
      }
      if (!anchor_ok) {
        ++start;
        continue;
      }
    }
    int64_t run_count = graph.node(start).outputs[0].shape.num_elements();
    bool saw_reduce = false;
    for (int j = start + 1;
         j < n && j < start + kMaxScanWindow && !saw_reduce &&
         static_cast<int>(members.size()) < kMaxFusedRun;
         ++j) {
      if (run_of[j] >= 0) continue;  // claimed by an earlier run
      const Node& node = graph.node(j);
      MemberClass cls;
      if (!classify(node, &cls) || node.outputs[0].dtype != dtype) {
        continue;  // a hole: step over it
      }
      const Shape& member_shape = node.outputs[0].shape;
      const int64_t count = member_shape.num_elements();
      bool ok = true;
      if (cls.kind == MemberKind::kReduce) {
        // Joins only as the terminating epilogue of an in-run value of the
        // full evaluation count; the compiler checks the trailing-axes rule.
        const Endpoint& e = node.inputs[0];
        ok = member_pos(e.node_id) >= 0 && e.index == 0 &&
             graph.node(e.node_id).outputs[0].shape.num_elements() ==
                 run_count;
        saw_reduce = ok;
      } else if (count != run_count && count != 1 && run_count != 1) {
        ok = false;
      } else if (cls.kind == MemberKind::kLayout) {
        const Endpoint& e = node.inputs[0];
        if (member_pos(e.node_id) >= 0) {
          ok = e.index == 0;
        } else if (e.node_id >= start) {
          ok = false;  // skipped node: would cycle
        } else {
          const TypeAndShape& t = graph.endpoint_type(e);
          ok = t.dtype == dtype && t.shape.IsFullyDefined() &&
               t.shape.num_elements() == count;
        }
      } else {
        const bool cast_source = cls.code == kernels::MicroOpCode::kCast;
        for (const Endpoint& e : node.inputs) {
          if (!compute_operand_ok(e, member_shape, cast_source)) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) continue;  // a hole: step over it
      members.push_back(j);
      if (cls.kind != MemberKind::kReduce) {
        run_count = std::max(run_count, count);
      }
    }
    // Shrink from the tail until the segment compiles (trial
    // materialization: only the last member publishes — output emission
    // itself cannot fail, so a compiling trial compiles with any
    // materialize set).
    while (members.size() >= 2) {
      std::vector<Endpoint> operands;
      std::vector<kernels::FusedRunOperand> operand_descs;
      std::vector<kernels::FusedRunOp> ops =
          build_descs(members, &operands, &operand_descs);
      ops.back().materialize = true;
      if (kernels::CompileFusedRun(ops, operand_descs, dtype).ok()) break;
      members.pop_back();
    }
    if (members.size() >= 2) {
      for (int id : members) run_of[id] = static_cast<int>(runs.size());
      runs.push_back({std::move(members)});
    }
    ++start;
  }
  if (runs.empty()) return Status::OK();

  // A run member's value must materialize as a fused output when anything
  // outside its run — another node or the function's return list — reads it.
  std::vector<bool> used_outside(n, false);
  for (int id = 0; id < n; ++id) {
    for (const Endpoint& e : graph.node(id).inputs) {
      if (run_of[e.node_id] >= 0 && run_of[e.node_id] != run_of[id]) {
        used_outside[e.node_id] = true;
      }
    }
  }
  for (const Endpoint& out : function.outputs()) {
    if (run_of[out.node_id] >= 0) used_outside[out.node_id] = true;
  }
  // A fully-internal run (possible in principle, not after Prune) still
  // publishes its final value.
  for (const Run& run : runs) {
    bool any = false;
    for (int i : run.members) any = any || used_outside[i];
    if (!any) used_outside[run.members.back()] = true;
  }

  // Compile every run before any node moves out of the graph: build_descs
  // reads graph.endpoint_type() for external operands, which must happen
  // while their producer nodes are still intact.
  struct RunCompiled {
    std::vector<Endpoint> operands;
    kernels::CompiledRun compiled;
    std::vector<TypeAndShape> outputs;  // one per compiled.output_members
    DType dtype = DType::kFloat32;
  };
  std::vector<RunCompiled> run_compiled;
  run_compiled.reserve(runs.size());
  for (const Run& run : runs) {
    RunCompiled rc;
    rc.dtype = graph.node(run.members.front()).outputs[0].dtype;
    std::vector<kernels::FusedRunOperand> operand_descs;
    std::vector<kernels::FusedRunOp> ops =
        build_descs(run.members, &rc.operands, &operand_descs);
    for (size_t k = 0; k < run.members.size(); ++k) {
      ops[k].materialize = used_outside[run.members[k]];
    }
    auto compiled_or = kernels::FusedProgramCache::Global().GetOrCompile(
        ops, operand_descs, rc.dtype);
    if (!compiled_or.ok()) {
      // The trial compile accepted this segment and materialization cannot
      // introduce new failures, so this is a pass invariant violation.
      return Internal("FuseElementwise segment stopped compiling: " +
                      compiled_or.status().message());
    }
    rc.compiled = std::move(*compiled_or);
    for (int member_off : rc.compiled.output_members) {
      rc.outputs.push_back(graph.node(run.members[member_off]).outputs[0]);
    }
    run_compiled.push_back(std::move(rc));
  }

  // Rebuild the node list: non-run nodes move over; each run collapses to a
  // FusedElementwise node at its anchor position. Nodes sitting in a run's
  // holes keep their relative order, which stays topological because every
  // external operand of the run precedes the anchor.
  std::deque<Node> nodes;
  std::vector<int> new_node_id(n, -1);
  std::vector<int> fused_out_index(n, -1);
  for (int id = 0; id < n; ++id) {
    const int r = run_of[id];
    if (r >= 0 && runs[r].members.front() != id) continue;  // absorbed
    if (r < 0) {
      new_node_id[id] = static_cast<int>(nodes.size());
      Node& node = graph.node(id);
      // Pin the RNG stream to the pre-fusion id so random ops draw the same
      // stream whether or not this execution-only rewrite ran.
      if (node.rng_id < 0) node.rng_id = id;
      nodes.push_back(std::move(node));
      continue;
    }
    const Run& run = runs[r];
    RunCompiled& rc = run_compiled[r];
    Node fused;
    fused.op = "FusedElementwise";
    for (size_t k = 0; k < rc.compiled.output_members.size(); ++k) {
      const int member = run.members[rc.compiled.output_members[k]];
      fused_out_index[member] = static_cast<int>(k);
    }
    fused.outputs = std::move(rc.outputs);
    fused.attrs.emplace("program", AttrValue(rc.compiled.program.Encode()));
    // Extended programs may read operands under layout maps or foreign
    // dtypes, so the run dtype is always explicit.
    fused.attrs.emplace("dtype", AttrValue(rc.dtype));
    fused.inputs = std::move(rc.operands);
    const int fused_id = static_cast<int>(nodes.size());
    for (int i : run.members) new_node_id[i] = fused_id;
    nodes.push_back(std::move(fused));
    if (stats != nullptr) {
      stats->fused_runs += 1;
      stats->fused_nodes += static_cast<int>(run.members.size());
      if (rc.compiled.has_reduce) stats->fused_reduce_runs += 1;
      const bool contiguous =
          run.members.back() - run.members.front() + 1 ==
          static_cast<int>(run.members.size());
      if (!contiguous || rc.compiled.output_members.size() > 1) {
        stats->fused_dag_runs += 1;
      }
    }
  }

  // Remap every surviving edge, arg, and output to the new id space.
  auto remap = [&](Endpoint& e) {
    if (run_of[e.node_id] >= 0) {
      e = Endpoint{new_node_id[e.node_id], fused_out_index[e.node_id]};
    } else {
      e.node_id = new_node_id[e.node_id];
    }
  };
  int index = 0;
  for (Node& node : nodes) {
    node.id = index++;
    for (Endpoint& e : node.inputs) remap(e);
    std::vector<int> controls;
    for (int dep : node.control_inputs) {
      const int target = new_node_id[dep];
      if (target >= 0 && target != node.id &&
          std::find(controls.begin(), controls.end(), target) ==
              controls.end()) {
        controls.push_back(target);
      }
    }
    node.control_inputs = std::move(controls);
  }
  for (int& arg : function.arg_nodes()) arg = new_node_id[arg];  // never fused
  for (Endpoint& out : function.outputs()) remap(out);
  graph.ResetNodes(std::move(nodes));
  return Status::OK();
}

namespace {

// Attrs whose string value names a subfunction whose body deserves the same
// fusion treatment as the graph referencing it.
constexpr const char* kSubfunctionAttrs[] = {
    "function",      "then_function", "else_function", "cond_function",
    "body_function", "body_forward",  "body_backward"};

// Guards FusedExecutionVariant against recursive graph functions: the
// variant mutex is held while the build callback runs, so re-entering
// GetOrBuildExecutionVariant on a function already being built on this
// thread would self-deadlock.
std::set<const GraphFunction*>& VariantsInProgress() {
  thread_local std::set<const GraphFunction*> in_progress;
  return in_progress;
}

}  // namespace

std::shared_ptr<GraphFunction> FusedExecutionVariant(
    EagerContext* ctx, Device* device,
    const std::shared_ptr<GraphFunction>& function, bool* built_now) {
  if (built_now != nullptr) *built_now = false;
  if (ctx == nullptr || !ctx->fuse_elementwise() || device == nullptr ||
      device->is_accelerator() || !device->executes_kernels()) {
    return function;
  }
  auto& in_progress = VariantsInProgress();
  if (!in_progress.insert(function.get()).second) return function;

  bool ran_build = false;
  auto fused = function->GetOrBuildExecutionVariant(
      [&]() -> std::shared_ptr<GraphFunction> {
        ran_build = true;
        // Pre-build variants for every referenced subfunction so Cond
        // branches and While bodies fuse even when the *outer* graph has
        // nothing worth fusing itself.
        const Graph& graph = function->graph();
        for (int id = 0; id < graph.num_nodes(); ++id) {
          for (const char* attr : kSubfunctionAttrs) {
            auto it = graph.node(id).attrs.find(attr);
            if (it == graph.node(id).attrs.end() ||
                !it->second.Is<std::string>()) {
              continue;
            }
            auto callee = ctx->functions().Find(it->second.Get<std::string>());
            if (callee.ok()) FusedExecutionVariant(ctx, device, *callee);
          }
        }
        auto variant = std::make_shared<GraphFunction>(function->name() +
                                                       "__fused_ew");
        if (!CloneGraphFunctionInto(*function, *variant).ok()) return nullptr;
        PassStats pstats;
        if (!FuseElementwise(*variant, &pstats).ok()) return nullptr;
        if (pstats.fused_runs == 0) return nullptr;  // nothing to gain
        return variant;
      });
  in_progress.erase(function.get());
  if (built_now != nullptr) *built_now = ran_build;
  return fused != nullptr ? fused : function;
}

}  // namespace passes
}  // namespace tfe
