#include "graph/passes.h"

#include <deque>
#include <map>
#include <vector>

#include "runtime/eager_context.h"
#include "support/strings.h"

namespace tfe {
namespace passes {

namespace {

// Rebuilds `function`'s graph keeping only nodes with keep[id] true,
// remapping every endpoint/control edge/arg/output. Kept nodes preserve
// relative (topological) order.
Status RebuildKeeping(GraphFunction& function, const std::vector<bool>& keep,
                      const std::vector<int>& replace_with) {
  Graph& graph = function.graph();
  const int n = graph.num_nodes();
  std::vector<int> new_id(n, -1);

  // Resolve replacement chains (a pruned node may point at its CSE twin).
  auto resolve = [&](int id) {
    while (replace_with[id] != id) id = replace_with[id];
    return id;
  };

  std::deque<Node> nodes;
  for (int id = 0; id < n; ++id) {
    if (!keep[id]) continue;
    new_id[id] = static_cast<int>(nodes.size());
    nodes.push_back(std::move(graph.node(id)));
  }
  for (Node& node : nodes) {
    node.id = new_id[resolve(node.id)];
    for (Endpoint& e : node.inputs) {
      int target = new_id[resolve(e.node_id)];
      if (target < 0) {
        return Internal("Pass dropped a node that is still referenced");
      }
      e.node_id = target;
    }
    std::vector<int> controls;
    for (int dep : node.control_inputs) {
      int target = new_id[resolve(dep)];
      if (target >= 0 && target != node.id) controls.push_back(target);
    }
    node.control_inputs = std::move(controls);
  }
  for (int& arg : function.arg_nodes()) {
    arg = new_id[resolve(arg)];
    if (arg < 0) return Internal("Pass dropped an Arg node");
  }
  for (Endpoint& out : function.outputs()) {
    out.node_id = new_id[resolve(out.node_id)];
    if (out.node_id < 0) return Internal("Pass dropped an output node");
  }
  graph.ResetNodes(std::move(nodes));
  return Status::OK();
}

std::vector<int> IdentityMap(int n) {
  std::vector<int> map(n);
  for (int i = 0; i < n; ++i) map[i] = i;
  return map;
}

}  // namespace

Status Prune(GraphFunction& function, PassStats* stats) {
  Graph& graph = function.graph();
  const int n = graph.num_nodes();
  std::vector<bool> keep(n, false);
  std::vector<int> worklist;

  auto mark = [&](int id) {
    if (!keep[id]) {
      keep[id] = true;
      worklist.push_back(id);
    }
  };

  for (const Endpoint& out : function.outputs()) mark(out.node_id);
  for (int id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    if (node.op == "Arg" || (node.is_stateful() && node.op != "Arg")) {
      mark(id);
    }
  }
  while (!worklist.empty()) {
    int id = worklist.back();
    worklist.pop_back();
    for (const Endpoint& e : graph.node(id).inputs) mark(e.node_id);
    for (int dep : graph.node(id).control_inputs) mark(dep);
  }

  int pruned = 0;
  for (int id = 0; id < n; ++id) {
    if (!keep[id]) ++pruned;
  }
  if (stats != nullptr) stats->pruned_nodes += pruned;
  if (pruned == 0) return Status::OK();
  return RebuildKeeping(function, keep, IdentityMap(n));
}

Status EliminateCommonSubexpressions(GraphFunction& function,
                                     PassStats* stats) {
  Graph& graph = function.graph();
  const int n = graph.num_nodes();
  std::vector<int> replace_with = IdentityMap(n);
  std::vector<bool> keep(n, true);
  std::map<std::string, int> canonical;
  int merged = 0;

  for (int id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    if (node.is_stateful() || node.op == "Arg" || node.op == "Const") {
      continue;
    }
    std::string key = node.op + "|" + node.requested_device + "|" +
                      AttrMapToString(node.attrs) + "|";
    for (const Endpoint& e : node.inputs) {
      int src = e.node_id;
      while (replace_with[src] != src) src = replace_with[src];
      key += strings::StrCat(src, ":", e.index, ",");
    }
    auto [it, inserted] = canonical.emplace(key, id);
    if (!inserted) {
      replace_with[id] = it->second;
      keep[id] = false;
      ++merged;
    }
  }
  if (stats != nullptr) stats->cse_merged += merged;
  if (merged == 0) return Status::OK();
  return RebuildKeeping(function, keep, replace_with);
}

Status FoldConstants(GraphFunction& function, PassStats* stats) {
  Graph& graph = function.graph();
  EagerContext* ctx = EagerContext::Global();
  const int n = graph.num_nodes();
  int folded = 0;

  for (int id = 0; id < n; ++id) {
    Node& node = graph.node(id);
    if (node.is_stateful() || node.op == "Arg" || node.op == "Const" ||
        node.num_outputs() != 1) {
      continue;
    }
    bool all_const = !node.inputs.empty();
    std::vector<Tensor> inputs;
    for (const Endpoint& e : node.inputs) {
      const Node& src = graph.node(e.node_id);
      if (src.op != "Const") {
        all_const = false;
        break;
      }
      inputs.push_back(src.constant_value);
    }
    if (!all_const) continue;

    auto run = ctx->ExecuteKernel(node.op, inputs, node.attrs, ctx->HostCpu(),
                                  /*compiled=*/false, /*start_ns=*/0);
    if (!run.ok() || run->outputs.size() != 1) continue;  // fold is best-effort
    // Rewrite in place as a Const node.
    node.op = "Const";
    node.attrs.clear();
    node.inputs.clear();
    node.constant_value = run->outputs[0];
    node.outputs = {{node.constant_value.dtype(), node.constant_value.shape()}};
    ++folded;
  }
  if (stats != nullptr) stats->folded_constants += folded;
  return Status::OK();
}

Status Optimize(GraphFunction& function, PassStats* stats) {
  TFE_RETURN_IF_ERROR(FoldConstants(function, stats));
  TFE_RETURN_IF_ERROR(EliminateCommonSubexpressions(function, stats));
  TFE_RETURN_IF_ERROR(Prune(function, stats));
  return Status::OK();
}

}  // namespace passes
}  // namespace tfe
