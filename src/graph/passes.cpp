#include "graph/passes.h"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <vector>

#include "kernels/fused_elementwise.h"
#include "runtime/eager_context.h"
#include "support/strings.h"

namespace tfe {
namespace passes {

namespace {

// Rebuilds `function`'s graph keeping only nodes with keep[id] true,
// remapping every endpoint/control edge/arg/output. Kept nodes preserve
// relative (topological) order.
Status RebuildKeeping(GraphFunction& function, const std::vector<bool>& keep,
                      const std::vector<int>& replace_with) {
  Graph& graph = function.graph();
  const int n = graph.num_nodes();
  std::vector<int> new_id(n, -1);

  // Resolve replacement chains (a pruned node may point at its CSE twin).
  auto resolve = [&](int id) {
    while (replace_with[id] != id) id = replace_with[id];
    return id;
  };

  std::deque<Node> nodes;
  for (int id = 0; id < n; ++id) {
    if (!keep[id]) continue;
    new_id[id] = static_cast<int>(nodes.size());
    nodes.push_back(std::move(graph.node(id)));
  }
  for (Node& node : nodes) {
    node.id = new_id[resolve(node.id)];
    for (Endpoint& e : node.inputs) {
      int target = new_id[resolve(e.node_id)];
      if (target < 0) {
        return Internal("Pass dropped a node that is still referenced");
      }
      e.node_id = target;
    }
    std::vector<int> controls;
    for (int dep : node.control_inputs) {
      int target = new_id[resolve(dep)];
      if (target >= 0 && target != node.id) controls.push_back(target);
    }
    node.control_inputs = std::move(controls);
  }
  for (int& arg : function.arg_nodes()) {
    arg = new_id[resolve(arg)];
    if (arg < 0) return Internal("Pass dropped an Arg node");
  }
  for (Endpoint& out : function.outputs()) {
    out.node_id = new_id[resolve(out.node_id)];
    if (out.node_id < 0) return Internal("Pass dropped an output node");
  }
  graph.ResetNodes(std::move(nodes));
  return Status::OK();
}

std::vector<int> IdentityMap(int n) {
  std::vector<int> map(n);
  for (int i = 0; i < n; ++i) map[i] = i;
  return map;
}

}  // namespace

Status Prune(GraphFunction& function, PassStats* stats) {
  Graph& graph = function.graph();
  const int n = graph.num_nodes();
  std::vector<bool> keep(n, false);
  std::vector<int> worklist;

  auto mark = [&](int id) {
    if (!keep[id]) {
      keep[id] = true;
      worklist.push_back(id);
    }
  };

  for (const Endpoint& out : function.outputs()) mark(out.node_id);
  for (int id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    if (node.op == "Arg" || (node.is_stateful() && node.op != "Arg")) {
      mark(id);
    }
  }
  while (!worklist.empty()) {
    int id = worklist.back();
    worklist.pop_back();
    for (const Endpoint& e : graph.node(id).inputs) mark(e.node_id);
    for (int dep : graph.node(id).control_inputs) mark(dep);
  }

  int pruned = 0;
  for (int id = 0; id < n; ++id) {
    if (!keep[id]) ++pruned;
  }
  if (stats != nullptr) stats->pruned_nodes += pruned;
  if (pruned == 0) return Status::OK();
  return RebuildKeeping(function, keep, IdentityMap(n));
}

Status EliminateCommonSubexpressions(GraphFunction& function,
                                     PassStats* stats) {
  Graph& graph = function.graph();
  const int n = graph.num_nodes();
  std::vector<int> replace_with = IdentityMap(n);
  std::vector<bool> keep(n, true);
  std::map<std::string, int> canonical;
  int merged = 0;

  for (int id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    if (node.is_stateful() || node.op == "Arg" || node.op == "Const") {
      continue;
    }
    std::string key = node.op + "|" + node.requested_device + "|" +
                      AttrMapToString(node.attrs) + "|";
    for (const Endpoint& e : node.inputs) {
      int src = e.node_id;
      while (replace_with[src] != src) src = replace_with[src];
      key += strings::StrCat(src, ":", e.index, ",");
    }
    auto [it, inserted] = canonical.emplace(key, id);
    if (!inserted) {
      replace_with[id] = it->second;
      keep[id] = false;
      ++merged;
    }
  }
  if (stats != nullptr) stats->cse_merged += merged;
  if (merged == 0) return Status::OK();
  return RebuildKeeping(function, keep, replace_with);
}

Status FoldConstants(GraphFunction& function, PassStats* stats) {
  Graph& graph = function.graph();
  EagerContext* ctx = EagerContext::Global();
  const int n = graph.num_nodes();
  int folded = 0;

  for (int id = 0; id < n; ++id) {
    Node& node = graph.node(id);
    if (node.is_stateful() || node.op == "Arg" || node.op == "Const" ||
        node.num_outputs() != 1) {
      continue;
    }
    bool all_const = !node.inputs.empty();
    std::vector<Tensor> inputs;
    for (const Endpoint& e : node.inputs) {
      const Node& src = graph.node(e.node_id);
      if (src.op != "Const") {
        all_const = false;
        break;
      }
      inputs.push_back(src.constant_value);
    }
    if (!all_const) continue;

    auto run = ctx->ExecuteKernel(node.op, inputs, node.attrs, ctx->HostCpu(),
                                  /*compiled=*/false, /*start_ns=*/0);
    if (!run.ok() || run->outputs.size() != 1) continue;  // fold is best-effort
    // Rewrite in place as a Const node.
    node.op = "Const";
    node.attrs.clear();
    node.inputs.clear();
    node.constant_value = run->outputs[0];
    node.outputs = {{node.constant_value.dtype(), node.constant_value.shape()}};
    ++folded;
  }
  if (stats != nullptr) stats->folded_constants += folded;
  return Status::OK();
}

Status Optimize(GraphFunction& function, PassStats* stats) {
  TFE_RETURN_IF_ERROR(FoldConstants(function, stats));
  TFE_RETURN_IF_ERROR(EliminateCommonSubexpressions(function, stats));
  TFE_RETURN_IF_ERROR(Prune(function, stats));
  return Status::OK();
}

Status FuseElementwise(GraphFunction& function, PassStats* stats) {
  Graph& graph = function.graph();
  const int n = graph.num_nodes();

  // Mirrors the op-queue drain bound: limits the register footprint of one
  // interpreted program.
  constexpr int kMaxFusedRun = 64;

  // Mirrors the drain-side FusableNode: attr-free elementwise ops, plus Cast,
  // whose single "dst" attr is folded into the program as a kCast micro-op
  // (the cast target is always the run dtype, carried on the fused node).
  auto fusable = [&](const Node& node, kernels::MicroOpCode* code) {
    if (node.control_inputs.empty() && node.num_outputs() == 1 &&
        kernels::MicroOpCodeFor(node.op, code) &&
        static_cast<int>(node.inputs.size()) == kernels::MicroOpArity(*code) &&
        node.outputs[0].shape.IsFullyDefined() &&
        kernels::MicroOpSupports(*code, node.outputs[0].dtype)) {
      if (*code == kernels::MicroOpCode::kCast) {
        return node.attrs.size() == 1 && node.attrs.count("dst") != 0;
      }
      return node.attrs.empty();
    }
    return false;
  };

  // Greedy maximal runs of consecutive node ids. Consecutiveness guarantees
  // every external operand of a run precedes it topologically, so replacing
  // the span with one node can never create a cycle.
  struct Run {
    int begin;
    int end;  // exclusive
  };
  std::vector<Run> runs;
  std::vector<int> run_of(n, -1);
  int start = 0;
  while (start < n) {
    kernels::MicroOpCode start_code;
    if (!fusable(graph.node(start), &start_code)) {
      ++start;
      continue;
    }
    const DType dtype = graph.node(start).outputs[0].dtype;
    const Shape& shape = graph.node(start).outputs[0].shape;
    // A cast's source operand may be any dtype the kCast micro-op converts
    // from; every other operand must already carry the run dtype.
    auto operand_ok = [&](const Endpoint& e, int cur, bool cast_source) {
      if (e.node_id >= start && e.node_id < cur) return e.index == 0;  // in-run
      const TypeAndShape& t = graph.endpoint_type(e);
      if (cast_source) {
        if (!kernels::MicroOpSupports(kernels::MicroOpCode::kCast, t.dtype)) {
          return false;
        }
      } else if (t.dtype != dtype) {
        return false;
      }
      return t.shape.IsFullyDefined() &&
             (t.shape == shape || t.shape.num_elements() == 1);
    };
    int end = start;
    while (end < n && end - start < kMaxFusedRun) {
      const Node& node = graph.node(end);
      kernels::MicroOpCode code = start_code;
      if (end > start &&
          (!fusable(node, &code) || node.outputs[0].dtype != dtype ||
           !(node.outputs[0].shape == shape))) {
        break;
      }
      const bool cast_source = code == kernels::MicroOpCode::kCast;
      bool ok = true;
      for (const Endpoint& e : node.inputs) {
        if (!operand_ok(e, end, cast_source)) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
      ++end;
    }
    if (end - start >= 2) {
      for (int i = start; i < end; ++i) run_of[i] = static_cast<int>(runs.size());
      runs.push_back({start, end});
      start = end;
    } else {
      ++start;
    }
  }
  if (runs.empty()) return Status::OK();

  // A run member's value must materialize as a fused output when anything
  // outside its run — another node or the function's return list — reads it.
  std::vector<bool> used_outside(n, false);
  for (int id = 0; id < n; ++id) {
    for (const Endpoint& e : graph.node(id).inputs) {
      if (run_of[e.node_id] >= 0 && run_of[e.node_id] != run_of[id]) {
        used_outside[e.node_id] = true;
      }
    }
  }
  for (const Endpoint& out : function.outputs()) {
    if (run_of[out.node_id] >= 0) used_outside[out.node_id] = true;
  }
  // A fully-internal run (possible in principle, not after Prune) still
  // publishes its final value.
  for (const Run& run : runs) {
    bool any = false;
    for (int i = run.begin; i < run.end; ++i) any = any || used_outside[i];
    if (!any) used_outside[run.end - 1] = true;
  }

  // Rebuild the node list: non-run nodes move over; each run collapses to a
  // FusedElementwise node at its begin position.
  std::deque<Node> nodes;
  std::vector<int> new_node_id(n, -1);
  std::vector<int> fused_out_index(n, -1);
  for (int id = 0; id < n; ++id) {
    const int r = run_of[id];
    if (r >= 0 && runs[r].begin != id) continue;  // absorbed into its run
    if (r < 0) {
      new_node_id[id] = static_cast<int>(nodes.size());
      nodes.push_back(std::move(graph.node(id)));
      continue;
    }
    const Run& run = runs[r];
    const TypeAndShape run_type = graph.node(run.begin).outputs[0];
    // Pass 1: dedup external operands; record each member's argument slots as
    // operand index (>= 0) or ~producer_member for in-run values.
    kernels::MicroProgram program;
    std::vector<Endpoint> operands;
    std::vector<std::array<int64_t, 2>> args(run.end - run.begin, {0, 0});
    for (int i = run.begin; i < run.end; ++i) {
      const Node& member = graph.node(i);
      for (size_t a = 0; a < member.inputs.size(); ++a) {
        const Endpoint& e = member.inputs[a];
        if (e.node_id >= run.begin && e.node_id < i) {
          args[i - run.begin][a] = ~static_cast<int64_t>(e.node_id - run.begin);
          continue;
        }
        int idx = -1;
        for (size_t k = 0; k < operands.size(); ++k) {
          if (operands[k] == e) {
            idx = static_cast<int>(k);
            break;
          }
        }
        if (idx < 0) {
          idx = static_cast<int>(operands.size());
          operands.push_back(e);
        }
        args[i - run.begin][a] = idx;
      }
    }
    // Pass 2: emit instructions and outputs with final register numbers.
    program.num_operands = static_cast<int64_t>(operands.size());
    Node fused;
    fused.op = "FusedElementwise";
    for (int i = run.begin; i < run.end; ++i) {
      const Node& member = graph.node(i);
      kernels::MicroOpCode code;
      kernels::MicroOpCodeFor(member.op, &code);  // validated by fusable()
      kernels::MicroInst inst;
      inst.opcode = code;
      auto to_reg = [&](int64_t v) {
        return static_cast<int32_t>(v >= 0 ? v : program.num_operands + ~v);
      };
      inst.a = to_reg(args[i - run.begin][0]);
      if (member.inputs.size() > 1) inst.b = to_reg(args[i - run.begin][1]);
      program.insts.push_back(inst);
      if (used_outside[i]) {
        fused_out_index[i] = static_cast<int>(fused.outputs.size());
        program.outputs.push_back(static_cast<int32_t>(program.num_operands) +
                                  (i - run.begin));
        fused.outputs.push_back(run_type);
      }
    }
    fused.attrs.emplace("program", AttrValue(program.Encode()));
    // A program with folded casts may carry foreign-dtype operands; tell the
    // kernel the run dtype explicitly (cast-free programs infer it from
    // operand 0, so they need no attr).
    for (const kernels::MicroInst& inst : program.insts) {
      if (inst.opcode == kernels::MicroOpCode::kCast) {
        fused.attrs.emplace("dtype", AttrValue(run_type.dtype));
        break;
      }
    }
    fused.inputs = std::move(operands);
    const int fused_id = static_cast<int>(nodes.size());
    for (int i = run.begin; i < run.end; ++i) new_node_id[i] = fused_id;
    nodes.push_back(std::move(fused));
    if (stats != nullptr) {
      stats->fused_runs += 1;
      stats->fused_nodes += run.end - run.begin;
    }
  }

  // Remap every surviving edge, arg, and output to the new id space.
  auto remap = [&](Endpoint& e) {
    if (run_of[e.node_id] >= 0) {
      e = Endpoint{new_node_id[e.node_id], fused_out_index[e.node_id]};
    } else {
      e.node_id = new_node_id[e.node_id];
    }
  };
  int index = 0;
  for (Node& node : nodes) {
    node.id = index++;
    for (Endpoint& e : node.inputs) remap(e);
    std::vector<int> controls;
    for (int dep : node.control_inputs) {
      const int target = new_node_id[dep];
      if (target >= 0 && target != node.id &&
          std::find(controls.begin(), controls.end(), target) ==
              controls.end()) {
        controls.push_back(target);
      }
    }
    node.control_inputs = std::move(controls);
  }
  for (int& arg : function.arg_nodes()) arg = new_node_id[arg];  // never fused
  for (Endpoint& out : function.outputs()) remap(out);
  graph.ResetNodes(std::move(nodes));
  return Status::OK();
}

}  // namespace passes
}  // namespace tfe
