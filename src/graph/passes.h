// Graph-function optimization passes (paper §5: "This approach still allows
// for graph optimizations: for example, non-stateful operations that are not
// reachable from the outputs of a function are pruned, just as in
// TensorFlow", and §4.1: staging "allows for optimizations like
// constant-folding and buffer reuse" — buffer reuse lives in the executor's
// refcounted tensors; the structural passes live here).
#ifndef TFE_GRAPH_PASSES_H_
#define TFE_GRAPH_PASSES_H_

#include "graph/graph_function.h"
#include "support/status.h"

namespace tfe {

class Device;
class EagerContext;

namespace passes {

struct PassStats {
  int pruned_nodes = 0;
  int cse_merged = 0;
  int folded_constants = 0;
  // FuseElementwise: runs collapsed / primitive nodes absorbed into them /
  // runs that ended in a fused reduction epilogue / runs that were true DAG
  // segments (non-contiguous member ids or multiple fused outputs) rather
  // than linear chains.
  int fused_runs = 0;
  int fused_nodes = 0;
  int fused_reduce_runs = 0;
  int fused_dag_runs = 0;
};

// Dead-op pruning: removes non-stateful nodes not reachable from the
// function outputs or from stateful ops. Arg nodes are always kept (the
// call signature is fixed).
Status Prune(GraphFunction& function, PassStats* stats = nullptr);

// Common-subexpression elimination over non-stateful nodes.
Status EliminateCommonSubexpressions(GraphFunction& function,
                                     PassStats* stats = nullptr);

// Folds non-stateful nodes whose inputs are all constants by executing
// their kernels at staging time on the host.
Status FoldConstants(GraphFunction& function, PassStats* stats = nullptr);

// The standard pipeline run at the end of every trace:
// fold -> CSE -> prune.
Status Optimize(GraphFunction& function, PassStats* stats = nullptr);

// Collapses single-device DAG segments of elementwise, layout (Transpose/
// Reshape/ExpandDims/Squeeze), and trailing-reduction (Sum/Mean/Max/Min)
// nodes into single FusedElementwise nodes interpreting a micro-op
// map-reduce program (the static counterpart of the op-queue drain fusion;
// both describe runs to the fused-program cache, which compiles via
// kernels::CompileFusedRun on a miss). Segments need not be contiguous in
// node-id order: the scan steps over non-fusable nodes, and cycle freedom
// is kept by requiring every external operand to precede the segment's
// anchor. Intermediates consumed only inside a run disappear from the
// graph; intermediates used elsewhere (or returned) become extra fused
// outputs — multi-consumer intermediates and diamond joins fuse as one
// multi-output program.
//
// Deliberately NOT part of Optimize(): FusedElementwise has no gradient, so
// this pass must only run on execution-only clones (see
// GraphFunction::GetOrBuildExecutionVariant), never on the graphs autodiff
// or serialization see.
Status FuseElementwise(GraphFunction& function, PassStats* stats = nullptr);

// Returns the fused execution-only variant of `function`, building and
// caching it behind GetOrBuildExecutionVariant on first use, or `function`
// itself when the device doesn't execute kernels / is a simulated
// accelerator / fusion is off / the pass finds nothing to fuse. Recurses
// into referenced subfunctions (Call callees, Cond branches, While cond and
// body, WhileGrad's forward/backward) so loop and branch bodies get the same
// DAG fusion + program-cache treatment as top-level graphs. Re-entrancy on
// recursive functions is cut by a per-thread in-progress set (a
// self-referencing Call would otherwise deadlock on the variant mutex). If
// `built_now` is non-null it is set to whether this call built the variant
// (vs. finding it cached).
std::shared_ptr<GraphFunction> FusedExecutionVariant(
    EagerContext* ctx, Device* device,
    const std::shared_ptr<GraphFunction>& function, bool* built_now = nullptr);

}  // namespace passes
}  // namespace tfe

#endif  // TFE_GRAPH_PASSES_H_
