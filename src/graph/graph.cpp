#include "graph/graph.h"

#include <sstream>

#include "ops/op_registry.h"
#include "support/strings.h"

namespace tfe {

bool Node::is_stateful() const {
  auto def = OpRegistry::Global()->LookUp(op);
  return def.ok() && (*def)->is_stateful;
}

StatusOr<Node*> Graph::AddNode(const std::string& op,
                               std::vector<Endpoint> inputs, AttrMap attrs,
                               std::vector<TypeAndShape> inferred_outputs,
                               const std::string& requested_device) {
  TFE_ASSIGN_OR_RETURN(const OpDef* def, OpRegistry::Global()->LookUp(op));
  if (def->num_inputs != OpDef::kVariadic &&
      def->num_inputs != static_cast<int>(inputs.size())) {
    return InvalidArgument(strings::StrCat(
        "Op ", op, " expects ", def->num_inputs, " inputs, got ",
        inputs.size()));
  }
  for (const Endpoint& e : inputs) {
    if (e.node_id < 0 || e.node_id >= num_nodes() ||
        e.index >= nodes_[e.node_id].num_outputs()) {
      return InvalidArgument(strings::StrCat("Bad endpoint ", e.node_id, ":",
                                             e.index, " for op ", op));
    }
  }

  Node node;
  node.id = num_nodes();
  node.op = op;
  node.attrs = std::move(attrs);
  node.inputs = std::move(inputs);
  node.requested_device = requested_device;

  if (!inferred_outputs.empty()) {
    node.outputs = std::move(inferred_outputs);
  } else {
    std::vector<TypeAndShape> input_types;
    input_types.reserve(node.inputs.size());
    for (const Endpoint& e : node.inputs) {
      input_types.push_back(endpoint_type(e));
    }
    InferenceContext ctx(std::move(input_types), &node.attrs);
    TFE_RETURN_IF_ERROR(def->shape_fn(&ctx));
    node.outputs = ctx.outputs();
  }

  nodes_.push_back(std::move(node));
  return &nodes_.back();
}

StatusOr<Node*> Graph::AddConst(Tensor value,
                                const std::string& requested_device) {
  TFE_CHECK(value.defined());
  TFE_CHECK(!value.is_symbolic()) << "Const payload must be concrete";
  std::vector<TypeAndShape> outputs = {{value.dtype(), value.shape()}};
  TFE_ASSIGN_OR_RETURN(Node * node,
                       AddNode("Const", {}, {}, std::move(outputs),
                               requested_device));
  node->constant_value = std::move(value);
  return node;
}

StatusOr<Node*> Graph::AddArg(int index, DType dtype, Shape shape) {
  AttrMap attrs;
  attrs["index"] = AttrValue(static_cast<int64_t>(index));
  attrs["dtype"] = AttrValue(dtype);
  attrs["shape"] = AttrValue(shape);
  std::vector<TypeAndShape> outputs = {{dtype, std::move(shape)}};
  return AddNode("Arg", {}, std::move(attrs), std::move(outputs));
}

void Graph::AddControlEdge(int from_node, int to_node) {
  TFE_CHECK_GE(from_node, 0);
  TFE_CHECK_LT(from_node, num_nodes());
  TFE_CHECK_GE(to_node, 0);
  TFE_CHECK_LT(to_node, num_nodes());
  nodes_[to_node].control_inputs.push_back(from_node);
}

Tensor Graph::MakeSymbolic(const Endpoint& e) {
  const TypeAndShape& type = endpoint_type(e);
  return Tensor::Symbolic(type.dtype, type.shape, this, e.node_id, e.index);
}

std::string Graph::DebugString() const {
  std::ostringstream out;
  for (const Node& node : nodes_) {
    out << "%" << node.id << " = " << node.op << "(";
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      if (i > 0) out << ", ";
      out << "%" << node.inputs[i].node_id << ":" << node.inputs[i].index;
    }
    out << ")";
    if (!node.attrs.empty()) out << " " << AttrMapToString(node.attrs);
    if (!node.control_inputs.empty()) {
      out << " ^deps(";
      for (size_t i = 0; i < node.control_inputs.size(); ++i) {
        if (i > 0) out << ",";
        out << node.control_inputs[i];
      }
      out << ")";
    }
    out << " -> ";
    for (int i = 0; i < node.num_outputs(); ++i) {
      if (i > 0) out << ", ";
      out << DTypeName(node.outputs[i].dtype)
          << node.outputs[i].shape.ToString();
    }
    if (!node.requested_device.empty()) out << " @" << node.requested_device;
    out << "\n";
  }
  return out.str();
}

}  // namespace tfe
