#include "graph/memory_planner.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

#include "device/device.h"
#include "graph/graph_function.h"
#include "kernels/fused_elementwise.h"
#include "profiler/profiler.h"
#include "serving/workspace.h"
#include "support/logging.h"
#include "tensor/allocator.h"
#include "tensor/buffer.h"

namespace tfe {
namespace memplan {
namespace {

// Planning is O(n^2/64) in nodes (ancestor bitsets); cap it far above any
// function this runtime traces.
constexpr int kMaxPlanNodes = 4096;
// A plan's slab is one arena block, resident per cached function; beyond
// this give up rather than pin gigabytes behind a function cache.
constexpr size_t kMaxSlabBytes = size_t{1} << 30;
// Retired slabs parked per (plan, allocator) for the next run.
constexpr size_t kMaxIdleSlabs = 2;
// Cross-run forwarding pool depth: enough generations for x = step(x) loops
// (the claimable entry is one or two generations back) without pinning
// unbounded retired outputs; entries that never die (weights captured as
// outputs) rotate out over this cap.
constexpr size_t kMaxForwardPool = 8;

// --- Safety whitelists ------------------------------------------------------
//
// Fail-safe by construction: an op must be *listed* to participate. A safe
// producer allocates every output fresh through KernelContext::AllocateOutput
// (never aliases an input or pre-existing storage into an output) and writes
// it only during its kernel. A safe consumer only reads its inputs during
// kernel execution — no aliasing an input into an output (Identity, Reshape,
// StopGradient), no retaining it in state (AssignVariableOp keeps its value
// input alive inside the variable), no passing it into a subgraph that might
// do either (Call/Cond/While/WhileGrad/HostFunc). Any value produced or
// consumed by an unlisted op escapes to a normal refcounted allocation.
bool IsPlanPureOp(const std::string& op) {
  static const std::set<std::string>* const kPure = new std::set<std::string>{
      "Abs",         "Add",
      "ArgMax",      "AvgPool",
      "AvgPoolGrad", "Cast",
      "Concat",      "Conv2D",
      "Conv2DBackpropFilter",
      "Conv2DBackpropInput",
      "Cos",         "Div",
      "Equal",       "Exp",
      "Floor",       "FusedBatchNorm",
      "FusedBatchNormGrad",
      "FusedElementwise",
      "Gather",      "Greater",
      "GreaterEqual", "Less",
      "LessEqual",   "Log",
      "LogSoftmax",  "MatMul",
      "Max",         "MaxPool",
      "MaxPoolGrad", "Maximum",
      "Mean",        "Min",
      "Minimum",     "Mul",
      "Neg",         "NotEqual",
      "OnesLike",    "Pad",
      "Pow",         "Reciprocal",
      "Relu",        "Rsqrt",
      "Select",      "Sigmoid",
      "Sign",        "Sin",
      "Slice",       "Softmax",
      "SparseSoftmaxCrossEntropyWithLogits",
      "Sqrt",        "Square",
      "SquaredDifference",
      "Sub",         "Sum",
      "Tanh",        "Tile",
      "Transpose",   "UnsortedSegmentSum",
      "ZerosLike"};
  return kPure->count(op) > 0;
}

bool IsSafeProducer(const Node& node) {
  if (IsPlanPureOp(node.op)) return true;
  // Deterministic Philox draws: allocate and fill their single output.
  return node.op == "RandomNormal" || node.op == "RandomUniform" ||
         node.op == "Range";
}

bool IsSafeConsumer(const std::string& op) {
  if (IsPlanPureOp(op)) return true;
  if (op == "RandomNormal" || op == "RandomUniform" || op == "Range") {
    return true;
  }
  // Read the delta during the kernel, then swap a *freshly allocated* buffer
  // into the variable; neither the delta nor the old storage is retained.
  return op == "AssignAddVariableOp" || op == "AssignSubVariableOp";
}

// --- skip-zero proof --------------------------------------------------------
// Output k of a FusedElementwise node is fully stored before any consumer
// reads it when its store covers the whole evaluation space contiguously:
// v1 programs store every listed output over the full run shape; v2/v3 carry
// per-output store descriptors (kAuto/kContiguous cover the space iff the
// output element count equals the evaluation count). The reduce-epilogue
// output accumulates into its own zeroed state, so it never qualifies.
std::vector<bool> FullStoreOutputs(const Node& node) {
  std::vector<bool> full(node.num_outputs(), false);
  auto it = node.attrs.find("program");
  if (it == node.attrs.end() || !it->second.Is<std::vector<int64_t>>()) {
    return full;
  }
  auto decoded =
      kernels::MicroProgram::Decode(it->second.Get<std::vector<int64_t>>());
  if (!decoded.ok()) return full;
  const kernels::MicroProgram& program = decoded.value();
  if (!program.extended) {
    for (size_t k = 0; k < program.outputs.size() && k < full.size(); ++k) {
      full[k] = true;
    }
    return full;
  }
  int64_t eval_count = 1;
  for (int64_t d : program.eval_dims) eval_count *= d;
  for (size_t k = 0; k < program.output_specs.size() && k < full.size(); ++k) {
    const kernels::MicroOutputSpec& spec = program.output_specs[k];
    if (spec.store.kind != kernels::MicroAccessKind::kAuto &&
        spec.store.kind != kernels::MicroAccessKind::kContiguous) {
      continue;
    }
    int64_t out_count = 1;
    for (int64_t d : spec.shape) out_count *= d;
    full[k] = out_count == eval_count;
  }
  return full;
}

size_t AlignUp(size_t bytes) {
  return ((bytes + Allocator::kAlignment - 1) / Allocator::kAlignment) *
         Allocator::kAlignment;
}

struct PlanMetrics {
  profiler::Counter* planned_allocs;
  profiler::Counter* forwarded_buffers;
  profiler::Counter* forwarded_runs;
  profiler::Counter* runs;
  profiler::Gauge* slab_bytes;

  PlanMetrics() {
    auto& m = profiler::Metrics();
    planned_allocs = m.GetCounter("allocator.plan.planned_allocs");
    forwarded_buffers = m.GetCounter("allocator.plan.forwarded_buffers");
    forwarded_runs = m.GetCounter("allocator.plan.forwarded_runs");
    runs = m.GetCounter("allocator.plan.runs");
    slab_bytes = m.GetGauge("allocator.plan.slab_bytes");
  }
};

PlanMetrics& Metrics() {
  static PlanMetrics* metrics = new PlanMetrics();
  return *metrics;
}

std::atomic<int> g_plan_override{-1};  // -1 unset, else 0/1

// Thread-local (run, node) binding installed by the executor around each
// kernel invocation. Kernels execute synchronously on the installing thread
// (EagerContext::ExecuteKernel), so this is exact; nested executor runs
// install their own binding (possibly null) on top, masking the outer one.
struct Binding {
  RunPlan* run = nullptr;
  int node_id = -1;
};
thread_local Binding t_binding;

}  // namespace

bool PlanningEnabled() {
  int override_value = g_plan_override.load(std::memory_order_acquire);
  if (override_value >= 0) return override_value != 0;
  const char* env = std::getenv("TFE_MEMORY_PLAN");
  return env == nullptr || std::strcmp(env, "off") != 0;
}

void OverrideMemoryPlanning(bool enabled) {
  g_plan_override.store(enabled ? 1 : 0, std::memory_order_release);
}

void ClearMemoryPlanningOverride() {
  g_plan_override.store(-1, std::memory_order_release);
}

int MemoryPlan::num_skip_zero_slots() const {
  int count = 0;
  for (const PlannedSlot& slot : slots_) {
    if (slot.skip_zero) ++count;
  }
  return count;
}

const PlannedSlot* MemoryPlan::Find(int node_id, int output_index) const {
  auto it = slot_index_.find({node_id, output_index});
  return it == slot_index_.end() ? nullptr : &slots_[it->second];
}

std::shared_ptr<PlanState> MemoryPlan::StateFor(
    const std::shared_ptr<Allocator>& allocator) const {
  std::lock_guard<std::mutex> lock(states_mu_);
  std::shared_ptr<PlanState>& state = states_[allocator.get()];
  if (state == nullptr) state = std::make_shared<PlanState>();
  return state;
}

std::shared_ptr<const MemoryPlan> BuildPlan(const GraphFunction& function) {
  const Graph& graph = function.graph();
  const int n = graph.num_nodes();
  if (n == 0 || n > kMaxPlanNodes) return nullptr;

  // Everything the caller can observe stays out of the slab.
  std::set<std::pair<int, int>> escapes;
  for (const Endpoint& e : function.outputs()) {
    escapes.insert({e.node_id, e.index});
  }

  // Data consumers per endpoint; the consumer set is also a value's release
  // set (the block frees once every consumer has run).
  std::map<std::pair<int, int>, std::vector<int>> consumers;
  for (int id = 0; id < n; ++id) {
    for (const Endpoint& e : graph.node(id).inputs) {
      consumers[{e.node_id, e.index}].push_back(id);
    }
  }

  // anc[c] = nodes with a (data or control) path to c. Node ids are a
  // topological order, so one forward sweep transitively closes the
  // relation. The parallel executor may run independent nodes in any order,
  // but it always runs an ancestor before its descendant — so a freed block
  // may be reassigned to node c only if every releasing consumer is an
  // ancestor of c. Transitivity of anc extends the proof across chained
  // reuse: lifetime 1's consumers precede lifetime 2's producer, which
  // precedes lifetime 2's consumers, which precede lifetime 3's producer.
  const int words = (n + 63) / 64;
  std::vector<uint64_t> anc(static_cast<size_t>(n) * words, 0);
  auto absorb = [&](int into, int dep) {
    uint64_t* dst = &anc[static_cast<size_t>(into) * words];
    const uint64_t* src = &anc[static_cast<size_t>(dep) * words];
    for (int w = 0; w < words; ++w) dst[w] |= src[w];
    dst[dep / 64] |= uint64_t{1} << (dep % 64);
  };
  for (int id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    for (const Endpoint& e : node.inputs) absorb(id, e.node_id);
    for (int dep : node.control_inputs) absorb(id, dep);
  }
  auto all_ancestors_of = [&](const std::vector<int>& releasers,
                              int claimant) {
    const uint64_t* a = &anc[static_cast<size_t>(claimant) * words];
    for (int r : releasers) {
      if ((a[r / 64] & (uint64_t{1} << (r % 64))) == 0) return false;
    }
    return true;
  };

  struct FreeBlock {
    size_t offset;
    size_t bytes;               // aligned footprint
    std::vector<int> release;   // nodes whose completion frees it
  };
  std::vector<FreeBlock> free_blocks;

  auto plan = std::make_shared<MemoryPlan>();
  size_t high = 0;
  for (int id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    if (node.op == "Arg" || node.op == "Const") continue;  // no allocation
    // A device override means the node's kernel may run with an allocator
    // other than the run's; leave all its values unplanned.
    if (!node.requested_device.empty()) continue;
    if (!IsSafeProducer(node)) continue;
    std::vector<bool> full_store;
    if (node.op == "FusedElementwise") full_store = FullStoreOutputs(node);

    for (int k = 0; k < node.num_outputs(); ++k) {
      if (escapes.count({id, k}) > 0) continue;
      const TypeAndShape& ts = node.outputs[k];
      if (ts.dtype == DType::kInvalid || ts.dtype == DType::kResource) {
        continue;
      }
      if (!ts.shape.IsFullyDefined()) continue;
      const int64_t elems = ts.shape.num_elements();
      if (elems <= 0) continue;
      auto cit = consumers.find({id, k});
      static const std::vector<int>* const kNoConsumers =
          new std::vector<int>();
      const std::vector<int>& users =
          cit != consumers.end() ? cit->second : *kNoConsumers;
      bool safe = true;
      for (int c : users) {
        if (!IsSafeConsumer(graph.node(c).op)) {
          safe = false;
          break;
        }
      }
      if (!safe) continue;

      const size_t bytes = static_cast<size_t>(elems) * DTypeSize(ts.dtype);
      const size_t footprint = AlignUp(bytes);
      // Best fit among blocks whose releasers all precede this node.
      int best = -1;
      for (int b = 0; b < static_cast<int>(free_blocks.size()); ++b) {
        const FreeBlock& blk = free_blocks[b];
        if (blk.bytes < footprint) continue;
        if (best >= 0 && blk.bytes >= free_blocks[best].bytes) continue;
        if (!all_ancestors_of(blk.release, id)) continue;
        best = b;
      }
      size_t offset;
      if (best >= 0) {
        FreeBlock blk = std::move(free_blocks[best]);
        free_blocks.erase(free_blocks.begin() + best);
        offset = blk.offset;
        if (blk.bytes > footprint) {
          // The unused tail stays free under the same release set.
          free_blocks.push_back(
              {blk.offset + footprint, blk.bytes - footprint, blk.release});
        }
        ++plan->reused_blocks_;
      } else {
        offset = high;
        high += footprint;
        if (high > kMaxSlabBytes) return nullptr;
      }

      PlannedSlot slot;
      slot.node_id = id;
      slot.output_index = k;
      slot.dtype = ts.dtype;
      slot.offset = offset;
      slot.bytes = bytes;
      slot.skip_zero =
          k < static_cast<int>(full_store.size()) && full_store[k];
      plan->slot_index_[{id, k}] = static_cast<int>(plan->slots_.size());
      plan->slots_.push_back(slot);

      FreeBlock freed{offset, footprint, users};
      // A dead output (no consumers) frees once its own producer ran.
      if (freed.release.empty()) freed.release.push_back(id);
      free_blocks.push_back(std::move(freed));
    }
  }
  if (plan->slots_.empty()) return nullptr;
  plan->slab_bytes_ = high;
  return plan;
}

std::shared_ptr<const MemoryPlan> PlanFor(const GraphFunction& function) {
  return function.GetOrBuildMemoryPlan([&] { return BuildPlan(function); });
}

RunPlan::RunPlan(std::shared_ptr<const MemoryPlan> plan,
                 std::shared_ptr<PlanState> state,
                 std::shared_ptr<Buffer> slab, Device* device)
    : plan_(std::move(plan)),
      state_(std::move(state)),
      slab_(std::move(slab)),
      device_(device) {}

RunPlan::~RunPlan() {
  // The slab returns to the idle pool only when this handle is its sole
  // owner: every planned view holds the slab's shared_ptr, so use_count()==1
  // proves no view survived the run (the executor destroys the per-node
  // tensor states before this handle).
  std::lock_guard<std::mutex> lock(state_->mu);
  if (slab_.use_count() == 1 && state_->idle_slabs.size() < kMaxIdleSlabs) {
    state_->idle_slabs.push_back(std::move(slab_));
  }
}

std::unique_ptr<RunPlan> BeginRun(const GraphFunction& function,
                                  Device* device) {
  if (device == nullptr || !device->executes_kernels() ||
      device->is_accelerator() || device->IsRemote()) {
    return nullptr;
  }
  if (!PlanningEnabled()) return nullptr;
  // TFE_ALLOCATOR=system (or any non-arena allocator) disables planning so
  // sanitizers keep true per-buffer lifetimes.
  if (std::strcmp(device->allocator()->kind(), "arena") != 0) return nullptr;
  // Serving sessions manage storage through their workspace; stay out.
  if (serving::Workspace::Current() != nullptr) return nullptr;

  std::shared_ptr<const MemoryPlan> plan = PlanFor(function);
  if (plan == nullptr) return nullptr;
  std::shared_ptr<PlanState> state = plan->StateFor(device->allocator_shared());

  std::shared_ptr<Buffer> slab;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    while (!state->idle_slabs.empty() && slab == nullptr) {
      std::shared_ptr<Buffer> candidate = std::move(state->idle_slabs.back());
      state->idle_slabs.pop_back();
      // Pushed under a use_count()==1 proof, so this re-check only guards
      // invariant violations; a failing candidate is simply dropped.
      if (candidate.use_count() == 1 &&
          candidate->bytes() >= plan->slab_bytes()) {
        slab = std::move(candidate);
      }
    }
  }
  if (slab == nullptr) {
    slab = Buffer::Allocate(plan->slab_bytes(), device->allocator_shared());
  }

  PlanMetrics& metrics = Metrics();
  metrics.runs->Increment();
  metrics.slab_bytes->Set(static_cast<int64_t>(plan->slab_bytes()));
  if (profiler::enabled()) {
    static const uint32_t plan_name = profiler::Intern("memory_plan");
    profiler::RecordInstant(profiler::EventKind::kAllocator, plan_name,
                            static_cast<int64_t>(plan->slab_bytes()));
  }
  return std::make_unique<RunPlan>(std::move(plan), std::move(state),
                                   std::move(slab), device);
}

void FinishRun(RunPlan* run, const GraphFunction& function,
               const std::vector<Tensor>& outputs) {
  if (run == nullptr) return;
  if (run->used_forwarding()) Metrics().forwarded_runs->Increment();
  const Graph& graph = function.graph();
  PlanState* state = run->state();
  std::lock_guard<std::mutex> lock(state->mu);
  const size_t count =
      std::min(outputs.size(), function.outputs().size());
  for (size_t i = 0; i < count; ++i) {
    const Tensor& t = outputs[i];
    if (!t.defined() || t.is_symbolic() || t.is_resource() || t.is_opaque() ||
        t.has_handle()) {
      continue;
    }
    const Endpoint& e = function.outputs()[i];
    const std::string& producer_op = graph.node(e.node_id).op;
    // Arguments and cached constants are the caller's storage, not this
    // run's to retire.
    if (producer_op == "Arg" || producer_op == "Const") continue;
    const std::shared_ptr<Buffer>& buf = t.buffer();
    if (buf == nullptr || buf->is_view() || buf->bytes() == 0) continue;
    // One pool entry per buffer: duplicate entries would each hold a
    // reference and the use-count proof could never pass.
    bool duplicate = false;
    for (const std::shared_ptr<Buffer>& entry : state->forward_pool) {
      if (entry.get() == buf.get()) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    state->forward_pool.push_back(buf);
    while (state->forward_pool.size() > kMaxForwardPool) {
      state->forward_pool.pop_front();
    }
  }
}

ScopedNode::ScopedNode(RunPlan* run, int node_id)
    : prev_run_(t_binding.run), prev_node_(t_binding.node_id) {
  t_binding.run = run;
  t_binding.node_id = node_id;
}

ScopedNode::~ScopedNode() {
  t_binding.run = prev_run_;
  t_binding.node_id = prev_node_;
}

Tensor TryPlannedOutput(int output_index, DType dtype, const Shape& shape,
                        Device* device) {
  RunPlan* run = t_binding.run;
  if (run == nullptr || device != run->device()) return Tensor();
  if (!shape.IsFullyDefined()) return Tensor();
  const int64_t elems = shape.num_elements();
  if (elems <= 0) return Tensor();
  const size_t bytes = static_cast<size_t>(elems) * DTypeSize(dtype);

  const PlannedSlot* slot = run->plan().Find(t_binding.node_id, output_index);
  if (slot != nullptr) {
    // A runtime request that disagrees with the plan (a kernel computed a
    // different shape than shape inference promised) falls back safely.
    if (slot->dtype != dtype || slot->bytes != bytes) return Tensor();
    std::shared_ptr<Buffer> view =
        Buffer::View(run->slab(), slot->offset, bytes);
    // Re-establish the zero-initialized contract per block — the slab is
    // reused across runs un-zeroed — unless the plan proved the producer's
    // first use stores every byte.
    if (!slot->skip_zero) std::memset(view->data(), 0, bytes);
    Metrics().planned_allocs->Increment();
    return Tensor::Concrete(dtype, shape, std::move(view), device);
  }

  // Escaping output: claim a retired block from the forwarding pool when an
  // exact byte match has provably no other owner.
  std::shared_ptr<Buffer> forwarded;
  {
    PlanState* state = run->state();
    std::lock_guard<std::mutex> lock(state->mu);
    for (auto it = state->forward_pool.begin();
         it != state->forward_pool.end(); ++it) {
      if ((*it)->bytes() == bytes && it->use_count() == 1) {
        forwarded = std::move(*it);
        state->forward_pool.erase(it);
        break;
      }
    }
  }
  if (forwarded == nullptr) return Tensor();
  std::memset(forwarded->data(), 0, forwarded->bytes());
  run->note_forwarded();
  Metrics().forwarded_buffers->Increment();
  if (profiler::enabled()) {
    static const uint32_t forward_name = profiler::Intern("buffer_forward");
    profiler::RecordInstant(profiler::EventKind::kAllocator, forward_name,
                            static_cast<int64_t>(bytes));
  }
  return Tensor::Concrete(dtype, shape, std::move(forwarded), device);
}

}  // namespace memplan
}  // namespace tfe
