// Static memory planning for staged functions (DESIGN.md §17).
//
// Staging exposes the whole program, so allocation can be decided once per
// function instead of once per op per run: BuildPlan computes the lifetime
// of every non-escaping intermediate over a function's post-optimization
// node order and greedily packs them into byte offsets within one per-run
// "plan slab". A steady-state staged step then performs O(1) allocator
// calls — one slab acquisition, usually a reuse of the previous run's slab —
// instead of O(nodes). On top of the slab, cross-run forwarding hands a
// retired run's *escaping* output block to the next run's matching unplanned
// allocation, covering the x = step(x) training loop where generation N-1's
// output dies while generation N is still an argument.
//
// Everything is bitwise-transparent and fails safe to per-op allocation:
//   * Only ops on an explicit safe-producer whitelist get planned slots, and
//     only values all of whose consumers are on a safe-consumer whitelist
//     stay in the slab. Aliasing ops (Identity, Reshape, ReadVariableOp...),
//     state-retaining ops (AssignVariableOp retains its input), and
//     composite ops (Call/Cond/While run subgraphs that may alias arguments
//     into outputs) are on neither list, so any value they touch escapes to
//     a normal refcounted allocation. Function outputs always escape.
//   * Planned blocks are handed out as non-owning Buffer views into the
//     slab. The slab outlives every view by construction (each view holds
//     the slab's shared_ptr), and the run returns the slab to an idle pool
//     only under a use_count()==1 proof that no view survived the run.
//   * Block reuse inside the slab is safe under parallel ready-queue
//     execution: a freed block may be assigned to node c only if every
//     releasing consumer is an ancestor of c (precomputed bitsets), so
//     dataflow ordering itself serializes the writes.
//   * TFE_MEMORY_PLAN=off, TFE_ALLOCATOR=system (any non-arena device
//     allocator), serving workspaces, simulated accelerators, and remote
//     devices all disable planning entirely (ASan/TSan keep true per-buffer
//     lifetimes under the system allocator).
#ifndef TFE_GRAPH_MEMORY_PLANNER_H_
#define TFE_GRAPH_MEMORY_PLANNER_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace tfe {

class Allocator;
class Buffer;
class Device;
class GraphFunction;

namespace memplan {

// One planned allocation: output `output_index` of node `node_id` lives at
// [offset, offset + bytes) in the run's slab.
struct PlannedSlot {
  int node_id = -1;
  int output_index = 0;
  DType dtype = DType::kFloat32;
  size_t offset = 0;
  size_t bytes = 0;  // exact payload bytes (num_elements * dtype size)
  // The producer provably stores every byte before anything reads the block
  // (a FusedElementwise full-space contiguous store), so the handout memset
  // that re-establishes the zero-initialized contract can be skipped.
  bool skip_zero = false;
};

// Runtime state shared by every run of one plan on one allocator: retired
// slabs ready for reuse, and the cross-run forwarding pool of escaped output
// buffers. Guarded by `mu`; runs on different devices never share a state.
struct PlanState {
  std::mutex mu;
  // Each entry holds the pool's only reference (use_count()==1 invariant,
  // checked again at pop).
  std::vector<std::shared_ptr<Buffer>> idle_slabs;
  // Retired run outputs, oldest first. An entry is claimable once its
  // use_count()==1 (the caller's last handle died); entries whose buffers
  // never die (weights, cached constants) rotate out over the cap.
  std::deque<std::shared_ptr<Buffer>> forward_pool;
};

// The immutable product of BuildPlan, cached on the GraphFunction whose node
// order it describes (same lifecycle as the fused execution variant).
class MemoryPlan {
 public:
  size_t slab_bytes() const { return slab_bytes_; }
  int num_slots() const { return static_cast<int>(slots_.size()); }
  // Slots whose handout memset is elided (test introspection).
  int num_skip_zero_slots() const;
  // Distinct slab blocks that serve more than one lifetime (introspection).
  int reused_blocks() const { return reused_blocks_; }

  const PlannedSlot* Find(int node_id, int output_index) const;
  const std::vector<PlannedSlot>& slots() const { return slots_; }

  // The runtime state for runs drawing storage from `allocator`.
  std::shared_ptr<PlanState> StateFor(
      const std::shared_ptr<Allocator>& allocator) const;

 private:
  friend std::shared_ptr<const MemoryPlan> BuildPlan(
      const GraphFunction& function);

  size_t slab_bytes_ = 0;
  int reused_blocks_ = 0;
  std::vector<PlannedSlot> slots_;
  std::map<std::pair<int, int>, int> slot_index_;  // (node, output) -> slots_

  mutable std::mutex states_mu_;
  mutable std::map<const Allocator*, std::shared_ptr<PlanState>> states_;
};

// Per-run activation handle: owns the slab for one executor invocation. The
// executor creates it before the per-node tensor states (so every view dies
// first) and its destructor returns the slab to the idle pool under the
// use-count proof.
class RunPlan {
 public:
  RunPlan(std::shared_ptr<const MemoryPlan> plan,
          std::shared_ptr<PlanState> state, std::shared_ptr<Buffer> slab,
          Device* device);
  ~RunPlan();

  RunPlan(const RunPlan&) = delete;
  RunPlan& operator=(const RunPlan&) = delete;

  const MemoryPlan& plan() const { return *plan_; }
  PlanState* state() const { return state_.get(); }
  const std::shared_ptr<Buffer>& slab() const { return slab_; }
  Device* device() const { return device_; }

  bool used_forwarding() const {
    return used_forwarding_.load(std::memory_order_relaxed);
  }
  void note_forwarded() {
    used_forwarding_.store(true, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const MemoryPlan> plan_;
  std::shared_ptr<PlanState> state_;
  std::shared_ptr<Buffer> slab_;
  Device* device_;
  // Written from kernel threads under the parallel executor; read once at
  // FinishRun after the run's completion barrier.
  std::atomic<bool> used_forwarding_{false};
};

// True when planning is globally enabled: programmatic override if set, else
// TFE_MEMORY_PLAN != "off". (Benches flip the override between runs instead
// of racing setenv against running threads.)
bool PlanningEnabled();
void OverrideMemoryPlanning(bool enabled);
void ClearMemoryPlanningOverride();

// The graph pass: lifetime analysis + greedy offset packing over `function`'s
// node order. Returns null when nothing in the graph is plannable (also for
// oversized graphs — the pass is O(n^2/64) in nodes). Deterministic: depends
// only on the graph.
std::shared_ptr<const MemoryPlan> BuildPlan(const GraphFunction& function);

// Cached BuildPlan on the function object (null results cached too).
std::shared_ptr<const MemoryPlan> PlanFor(const GraphFunction& function);

// Activates planning for one executor run: returns null when disabled or
// inapplicable (see file comment), else acquires a slab (reusing an idle one
// when the use count proves it free) and returns the run handle.
std::unique_ptr<RunPlan> BeginRun(const GraphFunction& function,
                                  Device* device);

// Publishes the run's escaping outputs into the forwarding pool so the next
// run can claim their blocks once the caller drops them.
void FinishRun(RunPlan* run, const GraphFunction& function,
               const std::vector<Tensor>& outputs);

// RAII thread-local binding of (run, node) consulted by
// KernelContext::AllocateOutput while the node's kernel executes on this
// thread. Installing run == nullptr masks any enclosing binding, so kernels
// of a nested unplanned run never see the outer run's plan.
class ScopedNode {
 public:
  ScopedNode(RunPlan* run, int node_id);
  ~ScopedNode();

  ScopedNode(const ScopedNode&) = delete;
  ScopedNode& operator=(const ScopedNode&) = delete;

 private:
  RunPlan* prev_run_;
  int prev_node_;
};

// Consulted by KernelContext::AllocateOutput before allocating: returns a
// zero-ready view into the current run's slab (the node has a planned slot),
// a recycled buffer from the forwarding pool (escaping output with an exact
// byte match), or an undefined tensor (allocate normally). Never returns
// storage whose dtype/byte size disagrees with the request.
Tensor TryPlannedOutput(int output_index, DType dtype, const Shape& shape,
                        Device* device);

}  // namespace memplan
}  // namespace tfe

#endif  // TFE_GRAPH_MEMORY_PLANNER_H_
