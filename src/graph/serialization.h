// GraphFunction serialization — the deployment path (paper §4.3: "staging
// enables serializing the program for use without a [host interpreter]...
// serializing a trace for use in a production environment").
//
// Functions are serializable iff they contain no HostFunc callbacks (§4.7)
// and no resource captures (variables are program state, saved separately by
// Checkpoint); value captures are embedded as constants-like payloads.
#ifndef TFE_GRAPH_SERIALIZATION_H_
#define TFE_GRAPH_SERIALIZATION_H_

#include <memory>
#include <string>

#include "graph/graph_function.h"
#include "support/status.h"

namespace tfe {

StatusOr<std::string> SerializeFunction(const GraphFunction& function);

StatusOr<std::shared_ptr<GraphFunction>> DeserializeFunction(
    const std::string& data);

class FunctionLibrary;

// Serializes `function` together with every graph function it references
// transitively (nested Call / Cond / While callees), resolved against
// `library`. The main function is the bundle's first entry.
StatusOr<std::string> SerializeFunctionBundle(const GraphFunction& function,
                                              const FunctionLibrary& library);

// Inverse: returns [main, dependencies...].
StatusOr<std::vector<std::shared_ptr<GraphFunction>>> DeserializeFunctionBundle(
    const std::string& data);

}  // namespace tfe

#endif  // TFE_GRAPH_SERIALIZATION_H_
