#include "graph/graph_function.h"

#include <sstream>

#include "support/strings.h"

namespace tfe {

bool GraphFunction::IsStateful() const {
  for (int i = 0; i < graph_.num_nodes(); ++i) {
    if (graph_.node(i).is_stateful() && graph_.node(i).op != "Arg") {
      return true;
    }
  }
  return false;
}

bool GraphFunction::IsSerializable() const {
  for (int i = 0; i < graph_.num_nodes(); ++i) {
    for (const auto& [name, attr] : graph_.node(i).attrs) {
      if (!attr.IsSerializable()) return false;
    }
  }
  return true;
}

std::string GraphFunction::DebugString() const {
  std::ostringstream out;
  out << "function " << name_ << "(args=" << num_explicit_args()
      << ", captures=" << captures_.size() << ") -> " << num_outputs()
      << " outputs\n";
  out << graph_.DebugString();
  out << "returns: ";
  for (size_t i = 0; i < outputs_.size(); ++i) {
    if (i > 0) out << ", ";
    out << "%" << outputs_[i].node_id << ":" << outputs_[i].index;
  }
  out << "\n";
  return out.str();
}

std::shared_ptr<GraphFunction> GraphFunction::GetOrBuildExecutionVariant(
    const std::function<std::shared_ptr<GraphFunction>()>& build) {
  std::lock_guard<std::mutex> lock(variant_mu_);
  if (!variant_ready_) {
    execution_variant_ = build();
    variant_ready_ = true;
  }
  return execution_variant_;
}

std::shared_ptr<const memplan::MemoryPlan> GraphFunction::GetOrBuildMemoryPlan(
    const std::function<std::shared_ptr<const memplan::MemoryPlan>()>& build)
    const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  if (!plan_ready_) {
    memory_plan_ = build();
    plan_ready_ = true;
  }
  return memory_plan_;
}

Status CloneGraphFunctionInto(const GraphFunction& source,
                              GraphFunction& target) {
  const Graph& graph = source.graph();
  Graph& out = target.graph();
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    TFE_ASSIGN_OR_RETURN(
        Node * cloned,
        out.AddNode(node.op, node.inputs, node.attrs, node.outputs,
                    node.requested_device));
    cloned->constant_value = node.constant_value;
    cloned->control_inputs = node.control_inputs;
    cloned->rng_id = node.rng_id;
    TFE_CHECK_EQ(cloned->id, id);
  }
  target.arg_nodes() = source.arg_nodes();
  target.captures() = source.captures();
  target.outputs() = source.outputs();
  return Status::OK();
}

Status FunctionLibrary::Register(std::shared_ptr<GraphFunction> function) {
  TFE_CHECK(function != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = functions_.emplace(function->name(), function);
  if (!inserted) {
    return AlreadyExists("Function already registered: " + function->name());
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<GraphFunction>> FunctionLibrary::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return NotFound("Function not found: " + name);
  }
  return it->second;
}

bool FunctionLibrary::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return functions_.count(name) > 0;
}

std::vector<std::string> FunctionLibrary::ListFunctions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, fn] : functions_) names.push_back(name);
  return names;
}

std::string FunctionLibrary::UniqueName(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string name;
  do {
    name = strings::StrCat(prefix, "_", next_id_++);
  } while (functions_.count(name) > 0);
  return name;
}

}  // namespace tfe
