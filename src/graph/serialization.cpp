#include "graph/serialization.h"

#include <cstring>
#include <iomanip>
#include <set>
#include <sstream>

#include "support/strings.h"

namespace tfe {

namespace {

// ---- low-level framed writer/reader: `<kind> <payload>` tokens with
// length-prefixed strings so arbitrary bytes round-trip. -------------------

void WriteString(std::ostringstream& out, const std::string& text) {
  out << text.size() << ":" << text << " ";
}

class Reader {
 public:
  explicit Reader(const std::string& data) : in_(data) {}

  StatusOr<std::string> ReadString() {
    size_t size = 0;
    char colon = 0;
    if (!(in_ >> size) || !in_.get(colon) || colon != ':') {
      return InvalidArgument("Corrupt serialized function (string header)");
    }
    std::string text(size, '\0');
    if (!in_.read(text.data(), static_cast<std::streamsize>(size))) {
      return InvalidArgument("Corrupt serialized function (string body)");
    }
    return text;
  }

  StatusOr<int64_t> ReadInt() {
    int64_t value = 0;
    if (!(in_ >> value)) {
      return InvalidArgument("Corrupt serialized function (int)");
    }
    return value;
  }

  StatusOr<double> ReadDouble() {
    double value = 0;
    if (!(in_ >> value)) {
      return InvalidArgument("Corrupt serialized function (double)");
    }
    return value;
  }

  // Whitespace-delimited raw token (attr kind tags).
  StatusOr<std::string> ReadToken() {
    std::string token;
    if (!(in_ >> token)) {
      return InvalidArgument("Corrupt serialized function (token)");
    }
    return token;
  }

 private:
  std::istringstream in_;
};

void WriteShape(std::ostringstream& out, const Shape& shape) {
  out << shape.rank() << " ";
  for (int64_t dim : shape.dims()) out << dim << " ";
}

StatusOr<Shape> ReadShape(Reader& reader) {
  TFE_ASSIGN_OR_RETURN(int64_t rank, reader.ReadInt());
  if (rank < 0 || rank > 64) {
    return InvalidArgument("Corrupt serialized function (shape rank)");
  }
  std::vector<int64_t> dims(rank);
  for (int64_t i = 0; i < rank; ++i) {
    TFE_ASSIGN_OR_RETURN(dims[i], reader.ReadInt());
  }
  return Shape(std::move(dims));
}

void WriteTensorPayload(std::ostringstream& out, const Tensor& tensor) {
  out << static_cast<int>(tensor.dtype()) << " ";
  WriteShape(out, tensor.shape());
  size_t bytes =
      static_cast<size_t>(tensor.num_elements()) * DTypeSize(tensor.dtype());
  WriteString(out, std::string(static_cast<const char*>(tensor.raw_data()),
                               bytes));
}

StatusOr<Tensor> ReadTensorPayload(Reader& reader) {
  TFE_ASSIGN_OR_RETURN(int64_t dtype_raw, reader.ReadInt());
  DType dtype = static_cast<DType>(dtype_raw);
  if (DTypeName(dtype) == std::string("invalid") || dtype == DType::kResource) {
    return InvalidArgument("Corrupt serialized function (tensor dtype)");
  }
  TFE_ASSIGN_OR_RETURN(Shape shape, ReadShape(reader));
  TFE_ASSIGN_OR_RETURN(std::string bytes, reader.ReadString());
  size_t expected =
      static_cast<size_t>(shape.num_elements()) * DTypeSize(dtype);
  if (bytes.size() != expected) {
    return InvalidArgument("Corrupt serialized function (tensor payload)");
  }
  Tensor tensor = Tensor::Empty(dtype, shape, nullptr);
  std::memcpy(tensor.raw_mutable_data(), bytes.data(), bytes.size());
  return tensor;
}

Status WriteAttr(std::ostringstream& out, const AttrValue& attr) {
  if (attr.Is<int64_t>()) {
    out << "i " << attr.Get<int64_t>() << " ";
  } else if (attr.Is<double>()) {
    out << "d " << attr.Get<double>() << " ";
  } else if (attr.Is<bool>()) {
    out << "b " << (attr.Get<bool>() ? 1 : 0) << " ";
  } else if (attr.Is<std::string>()) {
    out << "s ";
    WriteString(out, attr.Get<std::string>());
  } else if (attr.Is<DType>()) {
    out << "t " << static_cast<int>(attr.Get<DType>()) << " ";
  } else if (attr.Is<Shape>()) {
    out << "h ";
    WriteShape(out, attr.Get<Shape>());
  } else if (attr.Is<std::vector<int64_t>>()) {
    const auto& values = attr.Get<std::vector<int64_t>>();
    out << "v " << values.size() << " ";
    for (int64_t value : values) out << value << " ";
  } else {
    return FailedPrecondition(
        "Attr is not serializable (host callbacks make graphs "
        "unserializable, as in the paper)");
  }
  return Status::OK();
}

StatusOr<AttrValue> ReadAttr(Reader& reader) {
  TFE_ASSIGN_OR_RETURN(std::string kind, reader.ReadToken());
  if (kind == "i") {
    TFE_ASSIGN_OR_RETURN(int64_t v, reader.ReadInt());
    return AttrValue(v);
  }
  if (kind == "d") {
    TFE_ASSIGN_OR_RETURN(double v, reader.ReadDouble());
    return AttrValue(v);
  }
  if (kind == "b") {
    TFE_ASSIGN_OR_RETURN(int64_t v, reader.ReadInt());
    return AttrValue(v != 0);
  }
  if (kind == "s") {
    TFE_ASSIGN_OR_RETURN(std::string v, reader.ReadString());
    return AttrValue(std::move(v));
  }
  if (kind == "t") {
    TFE_ASSIGN_OR_RETURN(int64_t v, reader.ReadInt());
    return AttrValue(static_cast<DType>(v));
  }
  if (kind == "h") {
    TFE_ASSIGN_OR_RETURN(Shape v, ReadShape(reader));
    return AttrValue(std::move(v));
  }
  if (kind == "v") {
    TFE_ASSIGN_OR_RETURN(int64_t count, reader.ReadInt());
    std::vector<int64_t> values(count);
    for (int64_t i = 0; i < count; ++i) {
      TFE_ASSIGN_OR_RETURN(values[i], reader.ReadInt());
    }
    return AttrValue(std::move(values));
  }
  return InvalidArgument("Corrupt serialized function (attr kind)");
}

}  // namespace

StatusOr<std::string> SerializeFunction(const GraphFunction& function) {
  if (!function.IsSerializable()) {
    return FailedPrecondition(
        "Function " + function.name() +
        " contains host callbacks and cannot be serialized (paper §4.7)");
  }
  for (const Capture& capture : function.captures()) {
    if (capture.tensor.is_resource()) {
      return FailedPrecondition(
          "Function " + function.name() +
          " captures variables; save program state with Checkpoint and "
          "rebind on load");
    }
    if (capture.tensor.is_symbolic()) {
      return FailedPrecondition("Nested-trace captures are not serializable");
    }
  }

  std::ostringstream out;
  out << std::setprecision(17);
  out << "tfe_function_v1 ";
  WriteString(out, function.name());
  const Graph& graph = function.graph();
  out << graph.num_nodes() << " ";
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    WriteString(out, node.op);
    out << node.inputs.size() << " ";
    for (const Endpoint& e : node.inputs) {
      out << e.node_id << " " << e.index << " ";
    }
    out << node.control_inputs.size() << " ";
    for (int dep : node.control_inputs) out << dep << " ";
    WriteString(out, node.requested_device);
    out << node.attrs.size() << " ";
    for (const auto& [name, attr] : node.attrs) {
      WriteString(out, name);
      TFE_RETURN_IF_ERROR(WriteAttr(out, attr));
    }
    out << node.num_outputs() << " ";
    for (const TypeAndShape& type : node.outputs) {
      out << static_cast<int>(type.dtype) << " ";
      WriteShape(out, type.shape);
    }
    out << (node.constant_value.defined() ? 1 : 0) << " ";
    if (node.constant_value.defined()) {
      WriteTensorPayload(out, node.constant_value);
    }
  }
  out << function.arg_nodes().size() << " ";
  for (int arg : function.arg_nodes()) out << arg << " ";
  out << function.outputs().size() << " ";
  for (const Endpoint& e : function.outputs()) {
    out << e.node_id << " " << e.index << " ";
  }
  out << function.captures().size() << " ";
  for (const Capture& capture : function.captures()) {
    WriteTensorPayload(out, capture.tensor);
  }
  return out.str();
}

StatusOr<std::shared_ptr<GraphFunction>> DeserializeFunction(
    const std::string& data) {
  {
    // Header token is space-terminated, not length-prefixed.
    std::istringstream header(data.substr(0, 16));
    std::string magic;
    header >> magic;
    if (magic != "tfe_function_v1") {
      return InvalidArgument("Not a serialized tfe function");
    }
  }
  // Re-read through the framed reader, skipping the magic.
  Reader body(data.substr(data.find(' ') + 1));
  TFE_ASSIGN_OR_RETURN(std::string name, body.ReadString());
  auto function = std::make_shared<GraphFunction>(name);
  Graph& graph = function->graph();

  TFE_ASSIGN_OR_RETURN(int64_t num_nodes, body.ReadInt());
  for (int64_t id = 0; id < num_nodes; ++id) {
    TFE_ASSIGN_OR_RETURN(std::string op, body.ReadString());
    TFE_ASSIGN_OR_RETURN(int64_t num_inputs, body.ReadInt());
    std::vector<Endpoint> inputs(num_inputs);
    for (auto& e : inputs) {
      TFE_ASSIGN_OR_RETURN(int64_t node_id, body.ReadInt());
      TFE_ASSIGN_OR_RETURN(int64_t index, body.ReadInt());
      e = {static_cast<int>(node_id), static_cast<int>(index)};
    }
    TFE_ASSIGN_OR_RETURN(int64_t num_controls, body.ReadInt());
    std::vector<int> controls(num_controls);
    for (int& dep : controls) {
      TFE_ASSIGN_OR_RETURN(int64_t value, body.ReadInt());
      dep = static_cast<int>(value);
    }
    TFE_ASSIGN_OR_RETURN(std::string device, body.ReadString());
    TFE_ASSIGN_OR_RETURN(int64_t num_attrs, body.ReadInt());
    AttrMap attrs;
    for (int64_t i = 0; i < num_attrs; ++i) {
      TFE_ASSIGN_OR_RETURN(std::string attr_name, body.ReadString());
      TFE_ASSIGN_OR_RETURN(AttrValue attr, ReadAttr(body));
      attrs.emplace(std::move(attr_name), std::move(attr));
    }
    TFE_ASSIGN_OR_RETURN(int64_t num_outputs, body.ReadInt());
    std::vector<TypeAndShape> outputs(num_outputs);
    for (auto& type : outputs) {
      TFE_ASSIGN_OR_RETURN(int64_t dtype_raw, body.ReadInt());
      type.dtype = static_cast<DType>(dtype_raw);
      TFE_ASSIGN_OR_RETURN(type.shape, ReadShape(body));
    }
    TFE_ASSIGN_OR_RETURN(Node * node,
                         graph.AddNode(op, std::move(inputs), std::move(attrs),
                                       std::move(outputs), device));
    node->control_inputs = std::move(controls);
    TFE_ASSIGN_OR_RETURN(int64_t has_const, body.ReadInt());
    if (has_const != 0) {
      TFE_ASSIGN_OR_RETURN(node->constant_value, ReadTensorPayload(body));
    }
  }
  TFE_ASSIGN_OR_RETURN(int64_t num_args, body.ReadInt());
  for (int64_t i = 0; i < num_args; ++i) {
    TFE_ASSIGN_OR_RETURN(int64_t arg, body.ReadInt());
    function->arg_nodes().push_back(static_cast<int>(arg));
  }
  TFE_ASSIGN_OR_RETURN(int64_t num_outputs, body.ReadInt());
  for (int64_t i = 0; i < num_outputs; ++i) {
    TFE_ASSIGN_OR_RETURN(int64_t node_id, body.ReadInt());
    TFE_ASSIGN_OR_RETURN(int64_t index, body.ReadInt());
    function->outputs().push_back(
        {static_cast<int>(node_id), static_cast<int>(index)});
  }
  TFE_ASSIGN_OR_RETURN(int64_t num_captures, body.ReadInt());
  for (int64_t i = 0; i < num_captures; ++i) {
    TFE_ASSIGN_OR_RETURN(Tensor capture, ReadTensorPayload(body));
    function->captures().push_back(Capture{std::move(capture)});
  }
  return function;
}


namespace {

// Attr names whose string value names another graph function.
constexpr const char* kFunctionAttrs[] = {
    "function",      "then_function", "else_function", "cond_function",
    "body_function", "body_forward",  "body_backward"};

// Names of graph functions referenced by `function`'s nodes.
std::vector<std::string> ReferencedFunctions(const GraphFunction& function) {
  std::vector<std::string> names;
  const Graph& graph = function.graph();
  for (int i = 0; i < graph.num_nodes(); ++i) {
    for (const char* attr : kFunctionAttrs) {
      auto it = graph.node(i).attrs.find(attr);
      if (it != graph.node(i).attrs.end() && it->second.Is<std::string>()) {
        names.push_back(it->second.Get<std::string>());
      }
    }
  }
  return names;
}

}  // namespace

StatusOr<std::string> SerializeFunctionBundle(const GraphFunction& function,
                                              const FunctionLibrary& library) {
  // Transitive closure, main function first, depth-first discovery order.
  std::vector<const GraphFunction*> ordered;
  std::vector<std::shared_ptr<GraphFunction>> owned;  // keep deps alive
  std::set<std::string> seen = {function.name()};
  ordered.push_back(&function);
  for (size_t i = 0; i < ordered.size(); ++i) {
    for (const std::string& name : ReferencedFunctions(*ordered[i])) {
      if (!seen.insert(name).second) continue;
      TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> dep,
                           library.Find(name));
      owned.push_back(dep);
      ordered.push_back(owned.back().get());
    }
  }
  std::ostringstream out;
  out << "tfe_bundle_v1 " << ordered.size() << " ";
  for (const GraphFunction* fn : ordered) {
    TFE_ASSIGN_OR_RETURN(std::string piece, SerializeFunction(*fn));
    WriteString(out, piece);
  }
  return out.str();
}

StatusOr<std::vector<std::shared_ptr<GraphFunction>>> DeserializeFunctionBundle(
    const std::string& data) {
  std::istringstream header(data);
  std::string magic;
  size_t count = 0;
  if (!(header >> magic >> count) || magic != "tfe_bundle_v1") {
    return InvalidArgument("Not a serialized tfe function bundle");
  }
  // Re-read through the framed reader from after "tfe_bundle_v1 <n> ".
  size_t body_offset = data.find(' ');
  body_offset = data.find(' ', body_offset + 1);
  if (body_offset == std::string::npos) {
    return InvalidArgument("Corrupt function bundle header");
  }
  Reader reader(data.substr(body_offset + 1));
  std::vector<std::shared_ptr<GraphFunction>> functions;
  for (size_t i = 0; i < count; ++i) {
    TFE_ASSIGN_OR_RETURN(std::string piece, reader.ReadString());
    TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> fn,
                         DeserializeFunction(piece));
    functions.push_back(std::move(fn));
  }
  if (functions.empty()) {
    return InvalidArgument("Empty function bundle");
  }
  return functions;
}

}  // namespace tfe
