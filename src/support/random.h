// Philox4x32-10 counter-based RNG.
//
// TensorFlow's random kernels are built on Philox so that random ops are
// *stateless functions of (seed, counter)* — which is exactly what makes
// them safe to stage: tracing a random op records the op (not a sampled
// constant), preserving semantics (paper §4.1's add_noise example). We use
// the same construction so eager and staged executions of the same seeded
// program produce identical streams.
#ifndef TFE_SUPPORT_RANDOM_H_
#define TFE_SUPPORT_RANDOM_H_

#include <array>
#include <cstdint>

namespace tfe {
namespace random {

// SplitMix64 finalizer: spreads sequential stream ids across the 64-bit
// space so derived stream ranges (base + node_id) don't overlap.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Counter-based Philox4x32-10 block cipher. Each Next4() produces four
// 32-bit outputs and advances the 128-bit counter.
class Philox {
 public:
  Philox(uint64_t seed, uint64_t stream);

  // Returns the next four uniform 32-bit values.
  std::array<uint32_t, 4> Next4();

  // Skips ahead by `count` 4-word blocks (O(1)).
  void Skip(uint64_t count);

  // Uniform in [0, 1).
  float NextFloat();
  double NextDouble();
  // Uniform in [lo, hi).
  uint64_t NextUint64();
  // Standard normal via Box-Muller.
  float NextGaussian();

 private:
  std::array<uint32_t, 4> counter_;
  std::array<uint32_t, 2> key_;
  std::array<uint32_t, 4> buffer_;
  int buffer_pos_ = 4;  // buffer exhausted
  bool have_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0f;
};

}  // namespace random
}  // namespace tfe

#endif  // TFE_SUPPORT_RANDOM_H_
