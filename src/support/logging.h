// Minimal logging + invariant-check macros.
//
// LOG(INFO/WARNING/ERROR) stream to stderr; TFE_CHECK* abort on violated
// invariants (programming errors, never user errors — those use Status).
#ifndef TFE_SUPPORT_LOGGING_H_
#define TFE_SUPPORT_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace tfe {
namespace logging {

enum class Severity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Messages below this severity are dropped. Settable via set_min_severity or
// the TFE_MIN_LOG_LEVEL environment variable (0=INFO..2=ERROR).
Severity min_severity();
void set_min_severity(Severity severity);

class LogMessage {
 public:
  LogMessage(const char* file, int line, Severity severity);
  ~LogMessage();

  std::ostream& stream() { return stream_; }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
  const char* file_;
  int line_;
  Severity severity_;
};

// Fatal variant: flushes the message then aborts.
class LogMessageFatal : public LogMessage {
 public:
  LogMessageFatal(const char* file, int line)
      : LogMessage(file, line, Severity::kFatal) {}
  [[noreturn]] ~LogMessageFatal();
};

}  // namespace logging
}  // namespace tfe

#define TFE_LOG_INFO                                        \
  ::tfe::logging::LogMessage(__FILE__, __LINE__,            \
                             ::tfe::logging::Severity::kInfo)
#define TFE_LOG_WARNING                                     \
  ::tfe::logging::LogMessage(__FILE__, __LINE__,            \
                             ::tfe::logging::Severity::kWarning)
#define TFE_LOG_ERROR                                       \
  ::tfe::logging::LogMessage(__FILE__, __LINE__,            \
                             ::tfe::logging::Severity::kError)
#define TFE_LOG_FATAL ::tfe::logging::LogMessageFatal(__FILE__, __LINE__)

#define TFE_LOG(severity) TFE_LOG_##severity.stream()

#define TFE_CHECK(condition)                                        \
  if (!(condition))                                                 \
  TFE_LOG_FATAL.stream() << "Check failed: " #condition " "

#define TFE_CHECK_BINOP(a, b, op)                                          \
  if (!((a)op(b)))                                                         \
  TFE_LOG_FATAL.stream() << "Check failed: " #a " " #op " " #b " (" << (a) \
                         << " vs " << (b) << ") "

#define TFE_CHECK_EQ(a, b) TFE_CHECK_BINOP(a, b, ==)
#define TFE_CHECK_NE(a, b) TFE_CHECK_BINOP(a, b, !=)
#define TFE_CHECK_LT(a, b) TFE_CHECK_BINOP(a, b, <)
#define TFE_CHECK_LE(a, b) TFE_CHECK_BINOP(a, b, <=)
#define TFE_CHECK_GT(a, b) TFE_CHECK_BINOP(a, b, >)
#define TFE_CHECK_GE(a, b) TFE_CHECK_BINOP(a, b, >=)

#define TFE_DCHECK(condition) TFE_CHECK(condition)

#endif  // TFE_SUPPORT_LOGGING_H_
