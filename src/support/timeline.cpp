#include "support/timeline.h"

// Timeline is header-only today; this translation unit anchors the header in
// the build so include hygiene is compiler-checked.
