#include "support/status.h"

namespace tfe {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(ErrorCodeName(code_)) + ": " + message_;
}

Status InvalidArgument(const std::string& msg) {
  return Status(ErrorCode::kInvalidArgument, msg);
}
Status NotFound(const std::string& msg) {
  return Status(ErrorCode::kNotFound, msg);
}
Status AlreadyExists(const std::string& msg) {
  return Status(ErrorCode::kAlreadyExists, msg);
}
Status FailedPrecondition(const std::string& msg) {
  return Status(ErrorCode::kFailedPrecondition, msg);
}
Status OutOfRange(const std::string& msg) {
  return Status(ErrorCode::kOutOfRange, msg);
}
Status Unimplemented(const std::string& msg) {
  return Status(ErrorCode::kUnimplemented, msg);
}
Status Internal(const std::string& msg) {
  return Status(ErrorCode::kInternal, msg);
}
Status Unavailable(const std::string& msg) {
  return Status(ErrorCode::kUnavailable, msg);
}

}  // namespace tfe
