#include "support/random.h"

#include <cmath>

namespace tfe {
namespace random {
namespace {

constexpr uint32_t kPhiloxW32A = 0x9E3779B9;
constexpr uint32_t kPhiloxW32B = 0xBB67AE85;
constexpr uint32_t kPhiloxM4x32A = 0xD2511F53;
constexpr uint32_t kPhiloxM4x32B = 0xCD9E8D57;

inline void MulHiLo(uint32_t a, uint32_t b, uint32_t* hi, uint32_t* lo) {
  uint64_t product = static_cast<uint64_t>(a) * b;
  *hi = static_cast<uint32_t>(product >> 32);
  *lo = static_cast<uint32_t>(product);
}

inline std::array<uint32_t, 4> Round(const std::array<uint32_t, 4>& counter,
                                     const std::array<uint32_t, 2>& key) {
  uint32_t hi0, lo0, hi1, lo1;
  MulHiLo(kPhiloxM4x32A, counter[0], &hi0, &lo0);
  MulHiLo(kPhiloxM4x32B, counter[2], &hi1, &lo1);
  return {hi1 ^ counter[1] ^ key[0], lo1, hi0 ^ counter[3] ^ key[1], lo0};
}

}  // namespace

Philox::Philox(uint64_t seed, uint64_t stream) {
  key_ = {static_cast<uint32_t>(seed), static_cast<uint32_t>(seed >> 32)};
  counter_ = {0, 0, static_cast<uint32_t>(stream),
              static_cast<uint32_t>(stream >> 32)};
}

std::array<uint32_t, 4> Philox::Next4() {
  std::array<uint32_t, 4> counter = counter_;
  std::array<uint32_t, 2> key = key_;
  for (int round = 0; round < 10; ++round) {
    counter = Round(counter, key);
    key[0] += kPhiloxW32A;
    key[1] += kPhiloxW32B;
  }
  Skip(1);
  return counter;
}

void Philox::Skip(uint64_t count) {
  uint64_t lo = static_cast<uint64_t>(counter_[0]) |
                (static_cast<uint64_t>(counter_[1]) << 32);
  uint64_t before = lo;
  lo += count;
  counter_[0] = static_cast<uint32_t>(lo);
  counter_[1] = static_cast<uint32_t>(lo >> 32);
  if (lo < before) {  // carry into the high 64 bits
    if (++counter_[2] == 0) ++counter_[3];
  }
}

float Philox::NextFloat() {
  if (buffer_pos_ >= 4) {
    buffer_ = Next4();
    buffer_pos_ = 0;
  }
  uint32_t bits = buffer_[buffer_pos_++];
  // 24 random mantissa bits -> [0, 1).
  return static_cast<float>(bits >> 8) * (1.0f / 16777216.0f);
}

double Philox::NextDouble() {
  uint64_t bits = NextUint64();
  return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Philox::NextUint64() {
  if (buffer_pos_ >= 3) {
    buffer_ = Next4();
    buffer_pos_ = 0;
  }
  uint64_t lo = buffer_[buffer_pos_++];
  uint64_t hi = buffer_[buffer_pos_++];
  return lo | (hi << 32);
}

float Philox::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller on two uniforms; guard against log(0).
  float u1 = NextFloat();
  float u2 = NextFloat();
  if (u1 < 1e-30f) u1 = 1e-30f;
  float radius = std::sqrt(-2.0f * std::log(u1));
  float theta = 2.0f * 3.14159265358979323846f * u2;
  cached_gaussian_ = radius * std::sin(theta);
  have_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

}  // namespace random
}  // namespace tfe
