#include "support/strings.h"

#include <cctype>

namespace tfe {
namespace strings {

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> pieces;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      pieces.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  pieces.push_back(current);
  return pieces;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int64_t ParseNonNegativeInt(const std::string& text) {
  if (text.empty()) return -1;
  int64_t value = 0;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
    value = value * 10 + (c - '0');
    if (value < 0) return -1;  // overflow
  }
  return value;
}

}  // namespace strings
}  // namespace tfe
