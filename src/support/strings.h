// Small string helpers (GCC 12 lacks full std::format).
#ifndef TFE_SUPPORT_STRINGS_H_
#define TFE_SUPPORT_STRINGS_H_

#include <sstream>
#include <string>
#include <vector>

namespace tfe {
namespace strings {

namespace internal {
inline void AppendPieces(std::ostringstream&) {}
template <typename T, typename... Rest>
void AppendPieces(std::ostringstream& out, const T& piece,
                  const Rest&... rest) {
  out << piece;
  AppendPieces(out, rest...);
}
}  // namespace internal

// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  internal::AppendPieces(out, args...);
  return out.str();
}

// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep);

// Splits `text` on the single character `sep`; keeps empty pieces.
std::vector<std::string> Split(const std::string& text, char sep);

bool StartsWith(const std::string& text, const std::string& prefix);
bool EndsWith(const std::string& text, const std::string& suffix);

// Parses a non-negative integer; returns -1 on malformed input.
int64_t ParseNonNegativeInt(const std::string& text);

}  // namespace strings
}  // namespace tfe

#endif  // TFE_SUPPORT_STRINGS_H_
