// Discrete-event virtual time, used by the simulated accelerator devices.
//
// A Timeline models one serially-executing resource: the host dispatch
// thread, a GPU stream, or a TPU core. Work is appended in submission order;
// each item starts no earlier than both its dependency time and the moment
// the resource becomes free. This is enough to reproduce the asynchronous
// enqueue/execute overlap that gives Figure 3 its shape: on a GPU, eager
// step time ~ max(sum of host dispatch costs, sum of kernel costs).
#ifndef TFE_SUPPORT_TIMELINE_H_
#define TFE_SUPPORT_TIMELINE_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>

namespace tfe {

class Timeline {
 public:
  explicit Timeline(std::string name = "") : name_(std::move(name)) {}

  // Reserves `duration_ns` of the resource, starting no earlier than
  // `earliest_start_ns`. Returns the completion time (ns). Thread-safe.
  uint64_t Schedule(uint64_t earliest_start_ns, uint64_t duration_ns) {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t begin = std::max(free_at_ns_, earliest_start_ns);
    free_at_ns_ = begin + duration_ns;
    busy_ns_ += duration_ns;
    ++items_;
    return free_at_ns_;
  }

  // The time at which the resource next becomes free.
  uint64_t free_at_ns() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_at_ns_;
  }

  // Total busy (non-idle) time scheduled so far.
  uint64_t busy_ns() const {
    std::lock_guard<std::mutex> lock(mu_);
    return busy_ns_;
  }

  uint64_t items() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    free_at_ns_ = 0;
    busy_ns_ = 0;
    items_ = 0;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  mutable std::mutex mu_;
  uint64_t free_at_ns_ = 0;
  uint64_t busy_ns_ = 0;
  uint64_t items_ = 0;
};

}  // namespace tfe

#endif  // TFE_SUPPORT_TIMELINE_H_
