#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace tfe {
namespace logging {
namespace {

std::atomic<int> g_min_severity{[] {
  const char* env = std::getenv("TFE_MIN_LOG_LEVEL");
  if (env != nullptr) {
    int level = std::atoi(env);
    if (level >= 0 && level <= 2) return level;
  }
  return 0;
}()};

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "I";
    case Severity::kWarning:
      return "W";
    case Severity::kError:
      return "E";
    case Severity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

Severity min_severity() {
  return static_cast<Severity>(g_min_severity.load(std::memory_order_relaxed));
}

void set_min_severity(Severity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogMessage::LogMessage(const char* file, int line, Severity severity)
    : file_(file), line_(line), severity_(severity) {}

LogMessage::~LogMessage() {
  if (severity_ < min_severity() && severity_ != Severity::kFatal) return;
  std::fprintf(stderr, "[tfe %s %s:%d] %s\n", SeverityName(severity_),
               Basename(file_), line_, stream_.str().c_str());
  std::fflush(stderr);
}

LogMessageFatal::~LogMessageFatal() {
  // Base destructor has not run yet; emit explicitly before aborting.
  std::fprintf(stderr, "[tfe F] %s\n", str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace logging
}  // namespace tfe
