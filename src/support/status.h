// Status / StatusOr: recoverable-error plumbing used throughout the runtime.
//
// Internal runtime code returns Status / StatusOr<T>; the public `tfe::` API
// converts failures into exceptions (tfe::RuntimeError) at the boundary so
// user code can be written linearly, mirroring how TensorFlow Eager surfaces
// C++ runtime errors as Python exceptions.
#ifndef TFE_SUPPORT_STATUS_H_
#define TFE_SUPPORT_STATUS_H_

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace tfe {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
};

// The exception type thrown at the public API boundary.
class RuntimeError : public std::runtime_error {
 public:
  RuntimeError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Throws RuntimeError if not ok. Used at the public API boundary.
  void ThrowIfError() const {
    if (!ok()) throw RuntimeError(code_, message_);
  }

  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

Status InvalidArgument(const std::string& msg);
Status NotFound(const std::string& msg);
Status AlreadyExists(const std::string& msg);
Status FailedPrecondition(const std::string& msg);
Status OutOfRange(const std::string& msg);
Status Unimplemented(const std::string& msg);
Status Internal(const std::string& msg);
Status Unavailable(const std::string& msg);

const char* ErrorCodeName(ErrorCode code);

// A value-or-error wrapper. Accessing the value of a non-ok StatusOr is a
// programming error (it throws, carrying the underlying status message).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(const T& value) : value_(value) {}             // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}       // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Internal("StatusOr constructed from OK status without value");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  T& value() & {
    EnsureOk();
    return *value_;
  }
  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return std::move(*value_);
  }

  // Throws on error; used at the public API boundary.
  T ValueOrThrow() && {
    status_.ThrowIfError();
    return std::move(*value_);
  }

  T* operator->() {
    EnsureOk();
    return &*value_;
  }
  const T* operator->() const {
    EnsureOk();
    return &*value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  void EnsureOk() const {
    if (!value_.has_value()) {
      throw RuntimeError(status_.code(),
                         "StatusOr access without value: " + status_.message());
    }
  }

  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace tfe

// Error-propagation macros, following the usual ML-systems idiom.
#define TFE_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::tfe::Status _tfe_status = (expr);          \
    if (!_tfe_status.ok()) return _tfe_status;   \
  } while (0)

#define TFE_CONCAT_IMPL(a, b) a##b
#define TFE_CONCAT(a, b) TFE_CONCAT_IMPL(a, b)

#define TFE_ASSIGN_OR_RETURN(lhs, expr)                      \
  auto TFE_CONCAT(_tfe_sor_, __LINE__) = (expr);             \
  if (!TFE_CONCAT(_tfe_sor_, __LINE__).ok())                 \
    return TFE_CONCAT(_tfe_sor_, __LINE__).status();         \
  lhs = std::move(TFE_CONCAT(_tfe_sor_, __LINE__)).value()

#endif  // TFE_SUPPORT_STATUS_H_
