#include "support/threadpool.h"

#include "support/logging.h"

namespace tfe {

ThreadPool::ThreadPool(std::string name, int num_threads)
    : name_(std::move(name)) {
  TFE_CHECK_GE(num_threads, 1);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TFE_CHECK(!shutdown_) << "Schedule() on shut-down pool " << name_;
    queue_.push_back(std::move(fn));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with drained queue
      fn = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace tfe
