// A fixed-size work-stealing-free thread pool with a shared queue.
//
// Used by the dataflow executor for inter-op parallelism (paper §5: the
// staged runtime "runs kernels in parallel when possible, across multiple
// CPU cores").
#ifndef TFE_SUPPORT_THREADPOOL_H_
#define TFE_SUPPORT_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tfe {

class ThreadPool {
 public:
  // `num_threads` must be >= 1.
  ThreadPool(std::string name, int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` for asynchronous execution. Never blocks.
  void Schedule(std::function<void()> fn);

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Blocks until the queue is empty and all workers are idle. Only safe when
  // no other thread is concurrently scheduling work.
  void WaitIdle();

 private:
  void WorkerLoop();

  std::string name_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace tfe

#endif  // TFE_SUPPORT_THREADPOOL_H_
