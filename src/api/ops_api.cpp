#include "api/ops_api.h"

#include "runtime/dispatch.h"
#include "staging/trace_context.h"

namespace tfe {
namespace ops {

namespace {

Tensor Run(OpCall call) {
  auto result = DispatchSingle(std::move(call));
  result.status().ThrowIfError();
  return std::move(result).value();
}

std::vector<Tensor> RunMulti(OpCall call) {
  auto result = Dispatch(std::move(call));
  result.status().ThrowIfError();
  return std::move(result).value();
}

Tensor Binary(const char* op, const Tensor& a, const Tensor& b) {
  return Run({.op_name = op, .inputs = {a, b}});
}

Tensor Unary(const char* op, const Tensor& x) {
  return Run({.op_name = op, .inputs = {x}});
}

Tensor Reduction(const char* op, const Tensor& x,
                 const std::vector<int64_t>& axes, bool keep_dims) {
  AttrMap attrs;
  attrs["axis"] = AttrValue(axes);
  attrs["keep_dims"] = AttrValue(keep_dims);
  return Run({.op_name = op, .inputs = {x}, .attrs = std::move(attrs)});
}

}  // namespace

template <typename T>
Tensor constant(const std::vector<T>& values, const Shape& shape) {
  Tensor host = tensor_util::FromVector<T>(values, shape);
  if (TraceContext* trace = TraceContext::Current(); trace != nullptr) {
    auto result = trace->AddConstant(host);
    result.status().ThrowIfError();
    return std::move(result).value();
  }
  return host;
}

template Tensor constant<float>(const std::vector<float>&, const Shape&);
template Tensor constant<double>(const std::vector<double>&, const Shape&);
template Tensor constant<int32_t>(const std::vector<int32_t>&, const Shape&);
template Tensor constant<int64_t>(const std::vector<int64_t>&, const Shape&);
template Tensor constant<bool>(const std::vector<bool>&, const Shape&);

Tensor zeros(DType dtype, const Shape& shape) { return fill(dtype, shape, 0); }
Tensor ones(DType dtype, const Shape& shape) { return fill(dtype, shape, 1); }

Tensor fill(DType dtype, const Shape& shape, double value) {
  Tensor host = tensor_util::Full(dtype, shape, value);
  if (TraceContext* trace = TraceContext::Current(); trace != nullptr) {
    auto result = trace->AddConstant(host);
    result.status().ThrowIfError();
    return std::move(result).value();
  }
  return host;
}

namespace {
Tensor Random(const char* op, const Shape& shape, double p0, double p1,
              int64_t seed, DType dtype, const char* name0,
              const char* name1) {
  AttrMap attrs;
  attrs["shape"] = AttrValue(shape);
  attrs["dtype"] = AttrValue(dtype);
  attrs["seed"] = AttrValue(seed);
  attrs[name0] = AttrValue(p0);
  attrs[name1] = AttrValue(p1);
  return Run({.op_name = op, .attrs = std::move(attrs)});
}
}  // namespace

Tensor random_normal(const Shape& shape, double mean, double stddev,
                     int64_t seed, DType dtype) {
  return Random("RandomNormal", shape, mean, stddev, seed, dtype, "mean",
                "stddev");
}

Tensor random_uniform(const Shape& shape, double minval, double maxval,
                      int64_t seed, DType dtype) {
  return Random("RandomUniform", shape, minval, maxval, seed, dtype, "minval",
                "maxval");
}

Tensor add(const Tensor& a, const Tensor& b) { return Binary("Add", a, b); }
Tensor sub(const Tensor& a, const Tensor& b) { return Binary("Sub", a, b); }
Tensor mul(const Tensor& a, const Tensor& b) { return Binary("Mul", a, b); }
Tensor div(const Tensor& a, const Tensor& b) { return Binary("Div", a, b); }
Tensor pow(const Tensor& a, const Tensor& b) { return Binary("Pow", a, b); }
Tensor maximum(const Tensor& a, const Tensor& b) {
  return Binary("Maximum", a, b);
}
Tensor minimum(const Tensor& a, const Tensor& b) {
  return Binary("Minimum", a, b);
}
Tensor squared_difference(const Tensor& a, const Tensor& b) {
  return Binary("SquaredDifference", a, b);
}

Tensor equal(const Tensor& a, const Tensor& b) { return Binary("Equal", a, b); }
Tensor not_equal(const Tensor& a, const Tensor& b) {
  return Binary("NotEqual", a, b);
}
Tensor less(const Tensor& a, const Tensor& b) { return Binary("Less", a, b); }
Tensor less_equal(const Tensor& a, const Tensor& b) {
  return Binary("LessEqual", a, b);
}
Tensor greater(const Tensor& a, const Tensor& b) {
  return Binary("Greater", a, b);
}
Tensor greater_equal(const Tensor& a, const Tensor& b) {
  return Binary("GreaterEqual", a, b);
}

Tensor neg(const Tensor& x) { return Unary("Neg", x); }
Tensor abs(const Tensor& x) { return Unary("Abs", x); }
Tensor exp(const Tensor& x) { return Unary("Exp", x); }
Tensor log(const Tensor& x) { return Unary("Log", x); }
Tensor sqrt(const Tensor& x) { return Unary("Sqrt", x); }
Tensor rsqrt(const Tensor& x) { return Unary("Rsqrt", x); }
Tensor square(const Tensor& x) { return Unary("Square", x); }
Tensor tanh(const Tensor& x) { return Unary("Tanh", x); }
Tensor sigmoid(const Tensor& x) { return Unary("Sigmoid", x); }
Tensor relu(const Tensor& x) { return Unary("Relu", x); }
Tensor sin(const Tensor& x) { return Unary("Sin", x); }
Tensor cos(const Tensor& x) { return Unary("Cos", x); }
Tensor sign(const Tensor& x) { return Unary("Sign", x); }
Tensor reciprocal(const Tensor& x) { return Unary("Reciprocal", x); }
Tensor floor(const Tensor& x) { return Unary("Floor", x); }

Tensor select(const Tensor& cond, const Tensor& x, const Tensor& y) {
  return Run({.op_name = "Select", .inputs = {cond, x, y}});
}

Tensor cast(const Tensor& x, DType dst) {
  AttrMap attrs;
  attrs["dst"] = AttrValue(dst);
  return Run({.op_name = "Cast", .inputs = {x}, .attrs = std::move(attrs)});
}

Tensor identity(const Tensor& x) { return Unary("Identity", x); }
Tensor stop_gradient(const Tensor& x) { return Unary("StopGradient", x); }
Tensor zeros_like(const Tensor& x) { return Unary("ZerosLike", x); }
Tensor ones_like(const Tensor& x) { return Unary("OnesLike", x); }

Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a,
              bool transpose_b) {
  AttrMap attrs;
  attrs["transpose_a"] = AttrValue(transpose_a);
  attrs["transpose_b"] = AttrValue(transpose_b);
  return Run({.op_name = "MatMul", .inputs = {a, b},
              .attrs = std::move(attrs)});
}

Tensor conv2d(const Tensor& x, const Tensor& filter,
              const std::vector<int64_t>& strides,
              const std::string& padding) {
  AttrMap attrs;
  attrs["strides"] = AttrValue(strides);
  attrs["padding"] = AttrValue(padding);
  return Run({.op_name = "Conv2D", .inputs = {x, filter},
              .attrs = std::move(attrs)});
}

namespace {
Tensor Pool(const char* op, const Tensor& x, const std::vector<int64_t>& ksize,
            const std::vector<int64_t>& strides, const std::string& padding) {
  AttrMap attrs;
  attrs["ksize"] = AttrValue(ksize);
  attrs["strides"] = AttrValue(strides);
  attrs["padding"] = AttrValue(padding);
  return Run({.op_name = op, .inputs = {x}, .attrs = std::move(attrs)});
}
}  // namespace

Tensor max_pool(const Tensor& x, const std::vector<int64_t>& ksize,
                const std::vector<int64_t>& strides,
                const std::string& padding) {
  return Pool("MaxPool", x, ksize, strides, padding);
}

Tensor avg_pool(const Tensor& x, const std::vector<int64_t>& ksize,
                const std::vector<int64_t>& strides,
                const std::string& padding) {
  return Pool("AvgPool", x, ksize, strides, padding);
}

BatchNormResult fused_batch_norm(const Tensor& x, const Tensor& scale,
                                 const Tensor& offset, const Tensor& mean,
                                 const Tensor& variance, bool is_training,
                                 double epsilon) {
  AttrMap attrs;
  attrs["is_training"] = AttrValue(is_training);
  attrs["epsilon"] = AttrValue(epsilon);
  std::vector<Tensor> outputs =
      RunMulti({.op_name = "FusedBatchNorm",
                .inputs = {x, scale, offset, mean, variance},
                .attrs = std::move(attrs)});
  return {outputs[0], outputs[1], outputs[2]};
}

Tensor softmax(const Tensor& logits) { return Unary("Softmax", logits); }
Tensor log_softmax(const Tensor& logits) {
  return Unary("LogSoftmax", logits);
}

Tensor sparse_softmax_cross_entropy_with_logits(const Tensor& logits,
                                                const Tensor& labels) {
  std::vector<Tensor> outputs =
      RunMulti({.op_name = "SparseSoftmaxCrossEntropyWithLogits",
                .inputs = {logits, labels}});
  return outputs[0];
}

Tensor reduce_sum(const Tensor& x, const std::vector<int64_t>& axes,
                  bool keep_dims) {
  return Reduction("Sum", x, axes, keep_dims);
}
Tensor reduce_mean(const Tensor& x, const std::vector<int64_t>& axes,
                   bool keep_dims) {
  return Reduction("Mean", x, axes, keep_dims);
}
Tensor reduce_max(const Tensor& x, const std::vector<int64_t>& axes,
                  bool keep_dims) {
  return Reduction("Max", x, axes, keep_dims);
}
Tensor reduce_min(const Tensor& x, const std::vector<int64_t>& axes,
                  bool keep_dims) {
  return Reduction("Min", x, axes, keep_dims);
}

Tensor argmax(const Tensor& x, int64_t axis) {
  AttrMap attrs;
  attrs["axis"] = AttrValue(axis);
  return Run({.op_name = "ArgMax", .inputs = {x}, .attrs = std::move(attrs)});
}

Tensor reshape(const Tensor& x, const std::vector<int64_t>& shape) {
  AttrMap attrs;
  attrs["shape"] = AttrValue(shape);
  return Run({.op_name = "Reshape", .inputs = {x},
              .attrs = std::move(attrs)});
}

Tensor transpose(const Tensor& x, const std::vector<int64_t>& perm) {
  AttrMap attrs;
  attrs["perm"] = AttrValue(perm);
  return Run({.op_name = "Transpose", .inputs = {x},
              .attrs = std::move(attrs)});
}

Tensor concat(const std::vector<Tensor>& xs, int64_t axis) {
  AttrMap attrs;
  attrs["axis"] = AttrValue(axis);
  return Run({.op_name = "Concat", .inputs = xs, .attrs = std::move(attrs)});
}

Tensor slice(const Tensor& x, const std::vector<int64_t>& begin,
             const std::vector<int64_t>& size) {
  AttrMap attrs;
  attrs["begin"] = AttrValue(begin);
  attrs["size"] = AttrValue(size);
  return Run({.op_name = "Slice", .inputs = {x}, .attrs = std::move(attrs)});
}

Tensor pad(const Tensor& x, const std::vector<int64_t>& paddings) {
  AttrMap attrs;
  attrs["paddings"] = AttrValue(paddings);
  return Run({.op_name = "Pad", .inputs = {x}, .attrs = std::move(attrs)});
}

Tensor tile(const Tensor& x, const std::vector<int64_t>& multiples) {
  AttrMap attrs;
  attrs["multiples"] = AttrValue(multiples);
  return Run({.op_name = "Tile", .inputs = {x}, .attrs = std::move(attrs)});
}

Tensor expand_dims(const Tensor& x, int64_t axis) {
  AttrMap attrs;
  attrs["axis"] = AttrValue(axis);
  return Run({.op_name = "ExpandDims", .inputs = {x},
              .attrs = std::move(attrs)});
}

Tensor squeeze(const Tensor& x, const std::vector<int64_t>& axes) {
  AttrMap attrs;
  attrs["axis"] = AttrValue(axes);
  return Run({.op_name = "Squeeze", .inputs = {x},
              .attrs = std::move(attrs)});
}

Tensor gather(const Tensor& params, const Tensor& indices) {
  return Run({.op_name = "Gather", .inputs = {params, indices}});
}

Tensor range(double start, double limit, double delta, DType dtype) {
  AttrMap attrs;
  attrs["start"] = AttrValue(start);
  attrs["limit"] = AttrValue(limit);
  attrs["delta"] = AttrValue(delta);
  attrs["dtype"] = AttrValue(dtype);
  return Run({.op_name = "Range", .attrs = std::move(attrs)});
}

Tensor stack(const std::vector<Tensor>& xs, int64_t axis) {
  TFE_CHECK(!xs.empty());
  std::vector<Tensor> expanded;
  expanded.reserve(xs.size());
  for (const Tensor& x : xs) expanded.push_back(expand_dims(x, axis));
  return concat(expanded, axis);
}

std::vector<Tensor> unstack(const Tensor& x, int64_t axis) {
  if (axis < 0) axis += x.shape().rank();
  TFE_CHECK_GE(axis, 0);
  TFE_CHECK_LT(axis, x.shape().rank());
  const int64_t count = x.shape().dim(static_cast<int>(axis));
  std::vector<Tensor> pieces;
  pieces.reserve(count);
  std::vector<int64_t> begin(x.shape().rank(), 0);
  std::vector<int64_t> size(x.shape().rank(), -1);
  size[axis] = 1;
  for (int64_t i = 0; i < count; ++i) {
    begin[axis] = i;
    pieces.push_back(squeeze(slice(x, begin, size), {axis}));
  }
  return pieces;
}

std::vector<Tensor> split(const Tensor& x, int64_t num, int64_t axis) {
  if (axis < 0) axis += x.shape().rank();
  TFE_CHECK_GE(axis, 0);
  TFE_CHECK_LT(axis, x.shape().rank());
  const int64_t extent = x.shape().dim(static_cast<int>(axis));
  TFE_CHECK_GT(num, 0);
  TFE_CHECK_EQ(extent % num, 0)
      << "split axis extent " << extent << " not divisible by " << num;
  const int64_t piece = extent / num;
  std::vector<int64_t> begin(x.shape().rank(), 0);
  std::vector<int64_t> size(x.shape().rank(), -1);
  size[axis] = piece;
  std::vector<Tensor> pieces;
  pieces.reserve(num);
  for (int64_t i = 0; i < num; ++i) {
    begin[axis] = i * piece;
    pieces.push_back(slice(x, begin, size));
  }
  return pieces;
}

Tensor one_hot(const Tensor& indices, int64_t depth, DType dtype,
               double on_value, double off_value) {
  // equal(indices[..., None], range(depth)) selected between on/off.
  Tensor wide =
      expand_dims(cast(indices, DType::kInt64), indices.shape().rank());
  Tensor classes = range(0, static_cast<double>(depth), 1.0, DType::kInt64);
  Tensor hits = cast(equal(wide, classes), dtype);
  Tensor on = fill(dtype, {}, on_value);
  Tensor off = fill(dtype, {}, off_value);
  return add(mul(hits, sub(on, off)), off);
}

}  // namespace ops
}  // namespace tfe
