#include "api/tfe.h"

#include "runtime/dispatch.h"
#include "support/strings.h"

namespace tfe {

std::vector<Device*> list_devices() {
  return EagerContext::Global()->devices().ListDevices();
}

Tensor copy_to(const Tensor& tensor, Device* device) {
  auto result = EagerContext::Global()->CopyTo(tensor, device);
  result.status().ThrowIfError();
  return std::move(result).value();
}

Tensor copy_to(const Tensor& tensor, const std::string& device_name) {
  auto device = EagerContext::Global()->devices().FindDevice(device_name);
  device.status().ThrowIfError();
  return copy_to(tensor, device.value());
}

std::vector<Tensor> gradient(GradientTape& tape, const Tensor& target,
                             const std::vector<Variable>& variables) {
  std::vector<Tensor> sources;
  sources.reserve(variables.size());
  for (const Variable& variable : variables) {
    TFE_CHECK(variable.defined());
    sources.push_back(variable.handle());
  }
  auto result = tape.gradient(target, sources);
  result.status().ThrowIfError();
  return std::move(result).value();
}

std::vector<Tensor> host_func(
    const std::string& name,
    std::function<StatusOr<std::vector<Tensor>>(const std::vector<Tensor>&)>
        fn,
    const std::vector<Tensor>& inputs,
    const std::vector<TypeAndShape>& output_types) {
  auto callback = std::make_shared<HostFunc>();
  callback->name = name;
  callback->fn = std::move(fn);
  AttrMap attrs;
  attrs["func"] = AttrValue(callback);
  attrs["num_outputs"] = AttrValue(static_cast<int64_t>(output_types.size()));
  for (size_t i = 0; i < output_types.size(); ++i) {
    attrs[strings::StrCat("out_dtype_", i)] = AttrValue(output_types[i].dtype);
    attrs[strings::StrCat("out_shape_", i)] = AttrValue(output_types[i].shape);
  }
  auto result = Dispatch({.op_name = "HostFunc", .inputs = inputs,
                          .attrs = std::move(attrs)});
  result.status().ThrowIfError();
  return std::move(result).value();
}

uint64_t SyncVirtualClock(EagerContext* ctx) {
  if (ctx == nullptr) ctx = EagerContext::Global();
  return ctx->SyncAllDevices();
}

void set_async(bool enable, EagerContext* ctx) {
  if (ctx == nullptr) ctx = EagerContext::Global();
  ctx->set_async(enable);
}

Status sync(EagerContext* ctx) {
  if (ctx == nullptr) ctx = EagerContext::Global();
  return ctx->Sync();
}

}  // namespace tfe
