// tfe.h — the single public entry point of the library.
//
//   #include "api/tfe.h"
//
//   tfe::Tensor x = tfe::ops::constant<float>({2.0f, -2.0f}, {2, 1});
//   tfe::GradientTape tape;
//   ...
//   auto f = tfe::function([](const std::vector<tfe::Tensor>& args) { ... });
//
// See README.md for a guided tour and examples/ for runnable programs.
#ifndef TFE_API_TFE_H_
#define TFE_API_TFE_H_

#include "api/ops_api.h"
#include "autodiff/tape.h"
#include "data/dataset.h"
#include "profiler/profiler.h"
#include "runtime/eager_context.h"
#include "serving/serving.h"
#include "serving/workspace.h"
#include "staging/control_flow.h"
#include "staging/function.h"
#include "staging/trace_context.h"
#include "state/checkpoint.h"
#include "state/hash_table.h"
#include "state/variable.h"
#include "support/status.h"
#include "tensor/tensor.h"
#include "tensor/tensor_util.h"

namespace tfe {

// Devices the runtime is aware of (paper §4.4's `list_devices`).
std::vector<Device*> list_devices();

// `tfe::device("/job:worker/task:1/device:CPU:0")` — the `with tf.device`
// analog. Remote names scope work to a connected worker with the same
// syntax as local devices (paper §4.5); ops dispatched under the scope
// return pending handles immediately and their values stay remote until
// read.
using device = DeviceScope;

// Explicit tensor move (paper §4.5's explicit-copy model): places `tensor`'s
// value on the named device. Local targets behave like the runtime's
// transparent input copy; remote targets ship the value into the worker's
// store and return a remote-backed handle — the sanctioned way to move a
// tensor between workers (implicit cross-worker hops are errors). Throws on
// failure (unknown device, poisoned source, opaque source).
Tensor copy_to(const Tensor& tensor, const std::string& device_name);
Tensor copy_to(const Tensor& tensor, Device* device);

// d(target)/d(variables) convenience: resolves variables to their resource
// handles. Throws on failure. Entries are undefined when `target` does not
// depend on the corresponding variable.
std::vector<Tensor> gradient(GradientTape& tape, const Tensor& target,
                             const std::vector<Variable>& variables);

// Embeds an imperative host callback as an operation (the py_func analog,
// paper §4.7). Eagerly this just invokes `fn`; inside a trace it records a
// HostFunc node whose outputs have the declared types.
std::vector<Tensor> host_func(
    const std::string& name,
    std::function<StatusOr<std::vector<Tensor>>(const std::vector<Tensor>&)>
        fn,
    const std::vector<Tensor>& inputs,
    const std::vector<TypeAndShape>& output_types);

// Synchronizes virtual time with all devices and returns elapsed virtual
// nanoseconds (benchmark harness helper).
uint64_t SyncVirtualClock(EagerContext* ctx = nullptr);

// Toggles asynchronous eager execution (paper §5): when enabled, primitive
// ops return immediately with future-backed tensors and retire in order on
// per-device queues. Disabling drains all queues first.
void set_async(bool enable, EagerContext* ctx = nullptr);

// Blocks until every per-device op queue is empty and returns the first
// deferred async error (clearing it, so the context stays usable) — the
// explicit barrier of the paper's async API.
Status sync(EagerContext* ctx = nullptr);

}  // namespace tfe

#endif  // TFE_API_TFE_H_
