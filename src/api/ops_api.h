// The public operation surface — the `tf.*` library-function analog.
//
// Every helper builds an OpCall and hands it to the multi-stage dispatcher,
// so the same call executes immediately in eager mode and records a node
// under tracing (paper §4.1: library functions "construct operations and
// then immediately execute their kernels" imperatively, or stage them in a
// graph-building context). Helpers throw tfe::RuntimeError on failure.
#ifndef TFE_API_OPS_API_H_
#define TFE_API_OPS_API_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "tensor/tensor_util.h"

namespace tfe {
namespace ops {

// ---- construction -----------------------------------------------------------

// Creates a constant. Eagerly: a host tensor; under tracing: a Const node
// (so literals written inside staged code are embedded in the graph).
template <typename T>
Tensor constant(const std::vector<T>& values, const Shape& shape);
template <typename T>
Tensor scalar(T value) {
  return constant<T>({value}, Shape());
}

Tensor zeros(DType dtype, const Shape& shape);
Tensor ones(DType dtype, const Shape& shape);
Tensor fill(DType dtype, const Shape& shape, double value);

// Stateful when seed == 0, deterministic otherwise.
Tensor random_normal(const Shape& shape, double mean = 0.0,
                     double stddev = 1.0, int64_t seed = 0,
                     DType dtype = DType::kFloat32);
Tensor random_uniform(const Shape& shape, double minval = 0.0,
                      double maxval = 1.0, int64_t seed = 0,
                      DType dtype = DType::kFloat32);

// ---- elementwise ------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor pow(const Tensor& a, const Tensor& b);
Tensor maximum(const Tensor& a, const Tensor& b);
Tensor minimum(const Tensor& a, const Tensor& b);
Tensor squared_difference(const Tensor& a, const Tensor& b);

Tensor equal(const Tensor& a, const Tensor& b);
Tensor not_equal(const Tensor& a, const Tensor& b);
Tensor less(const Tensor& a, const Tensor& b);
Tensor less_equal(const Tensor& a, const Tensor& b);
Tensor greater(const Tensor& a, const Tensor& b);
Tensor greater_equal(const Tensor& a, const Tensor& b);

Tensor neg(const Tensor& x);
Tensor abs(const Tensor& x);
Tensor exp(const Tensor& x);
Tensor log(const Tensor& x);
Tensor sqrt(const Tensor& x);
Tensor rsqrt(const Tensor& x);
Tensor square(const Tensor& x);
Tensor tanh(const Tensor& x);
Tensor sigmoid(const Tensor& x);
Tensor relu(const Tensor& x);
Tensor sin(const Tensor& x);
Tensor cos(const Tensor& x);
Tensor sign(const Tensor& x);
Tensor reciprocal(const Tensor& x);
Tensor floor(const Tensor& x);

Tensor select(const Tensor& cond, const Tensor& x, const Tensor& y);
Tensor cast(const Tensor& x, DType dst);
Tensor identity(const Tensor& x);
Tensor stop_gradient(const Tensor& x);
Tensor zeros_like(const Tensor& x);
Tensor ones_like(const Tensor& x);

// ---- linear algebra / nn ----------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a = false,
              bool transpose_b = false);

Tensor conv2d(const Tensor& x, const Tensor& filter,
              const std::vector<int64_t>& strides = {1, 1},
              const std::string& padding = "SAME");
Tensor max_pool(const Tensor& x, const std::vector<int64_t>& ksize,
                const std::vector<int64_t>& strides,
                const std::string& padding = "VALID");
Tensor avg_pool(const Tensor& x, const std::vector<int64_t>& ksize,
                const std::vector<int64_t>& strides,
                const std::string& padding = "VALID");

struct BatchNormResult {
  Tensor y;
  Tensor batch_mean;
  Tensor batch_variance;
};
BatchNormResult fused_batch_norm(const Tensor& x, const Tensor& scale,
                                 const Tensor& offset, const Tensor& mean,
                                 const Tensor& variance,
                                 bool is_training = true,
                                 double epsilon = 1e-3);

Tensor softmax(const Tensor& logits);
Tensor log_softmax(const Tensor& logits);
// Returns the per-example loss [batch]; the fused backprop output rides
// along on the tape.
Tensor sparse_softmax_cross_entropy_with_logits(const Tensor& logits,
                                                const Tensor& labels);

// ---- reductions / shape ------------------------------------------------------

Tensor reduce_sum(const Tensor& x, const std::vector<int64_t>& axes = {},
                  bool keep_dims = false);
Tensor reduce_mean(const Tensor& x, const std::vector<int64_t>& axes = {},
                   bool keep_dims = false);
Tensor reduce_max(const Tensor& x, const std::vector<int64_t>& axes = {},
                  bool keep_dims = false);
Tensor reduce_min(const Tensor& x, const std::vector<int64_t>& axes = {},
                  bool keep_dims = false);
Tensor argmax(const Tensor& x, int64_t axis);

Tensor reshape(const Tensor& x, const std::vector<int64_t>& shape);
Tensor transpose(const Tensor& x, const std::vector<int64_t>& perm);
Tensor concat(const std::vector<Tensor>& xs, int64_t axis);
Tensor slice(const Tensor& x, const std::vector<int64_t>& begin,
             const std::vector<int64_t>& size);
Tensor pad(const Tensor& x, const std::vector<int64_t>& paddings);
Tensor tile(const Tensor& x, const std::vector<int64_t>& multiples);
Tensor expand_dims(const Tensor& x, int64_t axis);
Tensor squeeze(const Tensor& x, const std::vector<int64_t>& axes = {});
Tensor gather(const Tensor& params, const Tensor& indices);

// [start, limit) stepping by delta.
Tensor range(double start, double limit, double delta = 1.0,
             DType dtype = DType::kInt64);
// Stacks equal-shaped tensors along a new `axis` (composed from
// expand_dims + concat, so it is differentiable for free).
Tensor stack(const std::vector<Tensor>& xs, int64_t axis = 0);
// Inverse of stack: splits along `axis` and squeezes it away.
std::vector<Tensor> unstack(const Tensor& x, int64_t axis = 0);
// Splits `x` into `num` equal parts along `axis`.
std::vector<Tensor> split(const Tensor& x, int64_t num, int64_t axis);
// indices [..] (integer) -> [..., depth] with on/off values.
Tensor one_hot(const Tensor& indices, int64_t depth,
               DType dtype = DType::kFloat32, double on_value = 1.0,
               double off_value = 0.0);

// ---- operator sugar ----------------------------------------------------------

inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return div(a, b); }
inline Tensor operator-(const Tensor& x) { return neg(x); }

}  // namespace ops
}  // namespace tfe

#endif  // TFE_API_OPS_API_H_
