// Input pipelines: datasets and iterators with serializable position
// (paper §4.3: besides variables, checkpointable state includes "an
// iterator over input data whose position in a dataset is serialized").
//
// A Dataset is an immutable description (tensor slices + shuffle / repeat /
// batch transformations). An Iterator is a host object whose mutable state
// — (epoch, offset) — lives in an int64 Variable, so it checkpoints and
// restores through the ordinary graph-based state matching machinery and
// resumes mid-epoch. Advancing the iterator is a stateful primitive
// operation (IteratorNext), so input pipelines work inside staged
// computations: each execution of the graph draws the next batch.
#ifndef TFE_DATA_DATASET_H_
#define TFE_DATA_DATASET_H_

#include <memory>
#include <vector>

#include "state/object_graph.h"
#include "state/variable.h"
#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {
namespace data {

class Dataset {
 public:
  // Elements are the rows (dim 0 slices) of each component; all components
  // must share dim 0. Components must be concrete host tensors.
  static Dataset FromTensors(std::vector<Tensor> components);

  // Deterministic per-epoch shuffle: epoch e uses permutation
  // philox(seed, e), so a restored iterator replays the identical stream.
  Dataset Shuffle(uint64_t seed) const;

  // Groups `batch_size` consecutive elements into one element with a
  // leading batch dimension. Partial trailing batches are dropped
  // (shapes stay static, as staging requires).
  Dataset Batch(int64_t batch_size) const;

  // Repeats for `count` epochs; -1 repeats forever.
  Dataset Repeat(int64_t count = -1) const;

  // Elements per epoch (after batching).
  int64_t cardinality() const;
  int num_components() const {
    return static_cast<int>(components_.size());
  }
  // dtype/shape of component `i` of one element (with batch dim applied).
  DType component_dtype(int i) const;
  Shape element_shape(int i) const;

  const std::vector<Tensor>& components() const { return components_; }
  int64_t batch_size() const { return batch_size_; }
  bool shuffled() const { return shuffle_; }
  uint64_t shuffle_seed() const { return shuffle_seed_; }
  int64_t repeat_count() const { return repeat_count_; }
  int64_t num_rows() const;

 private:
  std::vector<Tensor> components_;
  int64_t batch_size_ = 1;
  bool shuffle_ = false;
  uint64_t shuffle_seed_ = 0;
  int64_t repeat_count_ = 1;
};

// The mutable iteration state, reachable from a resource tensor. Position
// is an int64[2] Variable {epoch, offset}.
class IteratorResource : public ResourceBase {
 public:
  IteratorResource(Dataset dataset, Variable position);

  std::string TypeName() const override { return "Iterator"; }

  const Dataset& dataset() const { return dataset_; }
  const Variable& position() const { return position_; }

  // Produces the next element and advances the position; OutOfRange at the
  // end of the final epoch.
  StatusOr<std::vector<Tensor>> Next();

 private:
  Dataset dataset_;
  Variable position_;
  std::mutex mu_;
};

// User-facing handle (checkpointable: tracks its position variable).
class Iterator : public Checkpointable {
 public:
  Iterator() = default;
  explicit Iterator(const Dataset& dataset);

  bool defined() const { return resource_ != nullptr; }

  // Dispatches the stateful IteratorNext op (usable inside traces). Throws
  // tfe::RuntimeError with kOutOfRange at end of data.
  std::vector<Tensor> Next() const;
  // Status-returning variant for loop-until-exhausted driving.
  StatusOr<std::vector<Tensor>> TryNext() const;

  const Tensor& handle() const { return handle_; }

 private:
  std::shared_ptr<IteratorResource> resource_;
  Tensor handle_;
};

// Registers the IteratorNext op + kernel (called by EnsureOpsRegistered).
void RegisterDataOps();

}  // namespace data
}  // namespace tfe

#endif  // TFE_DATA_DATASET_H_
