#include "data/dataset.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "kernels/kernel_util.h"
#include "ops/op_registry.h"
#include "runtime/dispatch.h"
#include "support/random.h"
#include "support/strings.h"
#include "tensor/tensor_util.h"

namespace tfe {
namespace data {

Dataset Dataset::FromTensors(std::vector<Tensor> components) {
  TFE_CHECK(!components.empty());
  int64_t rows = -1;
  for (const Tensor& component : components) {
    TFE_CHECK(component.defined() && !component.is_symbolic() &&
              !component.is_resource())
        << "Dataset components must be concrete tensors";
    TFE_CHECK_GE(component.shape().rank(), 1);
    if (rows < 0) rows = component.shape().dim(0);
    TFE_CHECK_EQ(component.shape().dim(0), rows)
        << "Dataset components must share dimension 0";
  }
  Dataset dataset;
  dataset.components_ = std::move(components);
  return dataset;
}

Dataset Dataset::Shuffle(uint64_t seed) const {
  Dataset dataset = *this;
  dataset.shuffle_ = true;
  dataset.shuffle_seed_ = seed;
  return dataset;
}

Dataset Dataset::Batch(int64_t batch_size) const {
  TFE_CHECK_GE(batch_size, 1);
  Dataset dataset = *this;
  dataset.batch_size_ = batch_size;
  return dataset;
}

Dataset Dataset::Repeat(int64_t count) const {
  TFE_CHECK(count == -1 || count >= 1);
  Dataset dataset = *this;
  dataset.repeat_count_ = count;
  return dataset;
}

int64_t Dataset::num_rows() const { return components_[0].shape().dim(0); }

int64_t Dataset::cardinality() const { return num_rows() / batch_size_; }

DType Dataset::component_dtype(int i) const {
  return components_.at(i).dtype();
}

Shape Dataset::element_shape(int i) const {
  std::vector<int64_t> dims = components_.at(i).shape().dims();
  dims[0] = batch_size_;
  return Shape(std::move(dims));
}

IteratorResource::IteratorResource(Dataset dataset, Variable position)
    : dataset_(std::move(dataset)), position_(std::move(position)) {}

StatusOr<std::vector<Tensor>> IteratorResource::Next() {
  std::lock_guard<std::mutex> lock(mu_);
  Tensor state = position_.storage()->value();
  int64_t epoch = state.data<int64_t>()[0];
  int64_t offset = state.data<int64_t>()[1];

  const int64_t batches_per_epoch = dataset_.cardinality();
  if (batches_per_epoch == 0) return OutOfRange("Dataset is empty");
  if (offset >= batches_per_epoch) {
    ++epoch;
    offset = 0;
  }
  if (dataset_.repeat_count() != -1 && epoch >= dataset_.repeat_count()) {
    return OutOfRange("End of dataset");
  }

  // The epoch's row order: identity, or the deterministic philox
  // permutation for (seed, epoch) — a restored position replays exactly.
  const int64_t rows = dataset_.num_rows();
  std::vector<int64_t> order(rows);
  std::iota(order.begin(), order.end(), 0);
  if (dataset_.shuffled()) {
    random::Philox gen(dataset_.shuffle_seed(),
                       static_cast<uint64_t>(epoch) + 1);
    for (int64_t i = rows - 1; i > 0; --i) {
      int64_t j = static_cast<int64_t>(gen.NextUint64() %
                                       static_cast<uint64_t>(i + 1));
      std::swap(order[i], order[j]);
    }
  }

  const int64_t batch = dataset_.batch_size();
  const int64_t begin = offset * batch;
  std::vector<Tensor> element;
  element.reserve(dataset_.num_components());
  for (int c = 0; c < dataset_.num_components(); ++c) {
    const Tensor& source = dataset_.components()[c];
    Tensor out = Tensor::Empty(source.dtype(), dataset_.element_shape(c),
                               source.device());
    const size_t row_bytes = static_cast<size_t>(source.num_elements() /
                                                 source.shape().dim(0)) *
                             DTypeSize(source.dtype());
    const char* src = static_cast<const char*>(source.raw_data());
    char* dst = static_cast<char*>(out.raw_mutable_data());
    for (int64_t b = 0; b < batch; ++b) {
      std::memcpy(dst + b * row_bytes, src + order[begin + b] * row_bytes,
                  row_bytes);
    }
    element.push_back(std::move(out));
  }

  Tensor next_state = tensor_util::FromVector<int64_t>({epoch, offset + 1},
                                                       Shape({2}));
  TFE_RETURN_IF_ERROR(position_.storage()->Assign(std::move(next_state)));
  return element;
}

Iterator::Iterator(const Dataset& dataset) {
  Variable position(tensor_util::FromVector<int64_t>({0, 0}, Shape({2})),
                    "iterator_position");
  resource_ = std::make_shared<IteratorResource>(dataset, position);
  handle_ = Tensor::MakeResource(resource_, nullptr);
  TrackVariable("position", position);
}

StatusOr<std::vector<Tensor>> Iterator::TryNext() const {
  TFE_CHECK(defined());
  AttrMap attrs;
  attrs["num_outputs"] = AttrValue(
      static_cast<int64_t>(resource_->dataset().num_components()));
  for (int i = 0; i < resource_->dataset().num_components(); ++i) {
    attrs[strings::StrCat("out_dtype_", i)] =
        AttrValue(resource_->dataset().component_dtype(i));
    attrs[strings::StrCat("out_shape_", i)] =
        AttrValue(resource_->dataset().element_shape(i));
  }
  return Dispatch({.op_name = "IteratorNext", .inputs = {handle_},
                   .attrs = std::move(attrs)});
}

std::vector<Tensor> Iterator::Next() const {
  auto result = TryNext();
  result.status().ThrowIfError();
  return std::move(result).value();
}

namespace {

Status IteratorNextKernel(KernelContext* ctx) {
  const Tensor& handle = ctx->input(0);
  if (!handle.is_resource()) {
    return InvalidArgument("IteratorNext expects an iterator resource");
  }
  auto* iterator = dynamic_cast<IteratorResource*>(handle.resource().get());
  if (iterator == nullptr) {
    return InvalidArgument("Resource is not an iterator");
  }
  TFE_ASSIGN_OR_RETURN(std::vector<Tensor> element, iterator->Next());
  for (size_t i = 0; i < element.size(); ++i) {
    ctx->SetOutput(static_cast<int>(i), std::move(element[i]));
  }
  return Status::OK();
}

}  // namespace

void RegisterDataOps() {
  OpDef def;
  def.name = "IteratorNext";
  def.num_inputs = 1;
  def.is_stateful = true;
  def.differentiable = false;
  def.shape_fn = [](InferenceContext* ctx) {
    int64_t count = ctx->GetAttrOr<int64_t>("num_outputs", 0);
    for (int64_t i = 0; i < count; ++i) {
      TFE_ASSIGN_OR_RETURN(
          DType dtype,
          ctx->GetAttr<DType>(strings::StrCat("out_dtype_", i)));
      TFE_ASSIGN_OR_RETURN(
          Shape shape, ctx->GetAttr<Shape>(strings::StrCat("out_shape_", i)));
      ctx->AddOutput(dtype, std::move(shape));
    }
    return Status::OK();
  };
  TFE_CHECK(OpRegistry::Global()->Register(std::move(def)).ok());
  kernels::RegisterKernel("IteratorNext", IteratorNextKernel);
}

}  // namespace data
}  // namespace tfe
